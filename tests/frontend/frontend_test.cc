// Front-door tests: thread-decoupled logical sessions over a bounded worker
// pool. Covers the accept/dispatch bounds (global + per resource group), the
// shed contract (retryable kUnavailable with a retry-after hint, never a
// block), transaction continuations being exempt from shedding, idle/login
// sweeps, queued-state observability in gp_stat_activity / gp_metrics, the
// no-pipelining rule, and a connection storm riding the chaos fault schedule
// (seeds 42 / 1337 / 7).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/gphtap.h"
#include "common/clock.h"
#include "common/fault_injector.h"
#include "workload/chaos.h"
#include "workload/driver.h"
#include "workload/tpcb.h"

namespace gphtap {
namespace {

ClusterOptions FrontDoorCluster(int workers = 4) {
  ClusterOptions o;
  o.num_segments = 2;
  o.frontend.enabled = true;
  o.frontend.workers = workers;
  return o;
}

// Polls until `pred` holds or ~2s pass; front-door state transitions are
// worker-driven, so tests wait for them instead of assuming scheduling.
template <typename Pred>
bool WaitFor(Pred pred, int64_t budget_us = 2'000'000) {
  int64_t deadline = MonotonicMicros() + budget_us;
  while (MonotonicMicros() < deadline) {
    if (pred()) return true;
    PreciseSleepUs(1000);
  }
  return pred();
}

TEST(FrontendTest, ExecutesStatementsThroughThePool) {
  Cluster cluster(FrontDoorCluster());
  auto fs = cluster.ConnectLogical();
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();

  ASSERT_TRUE((*fs)->Execute("CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)").ok());
  ASSERT_TRUE((*fs)->Execute("INSERT INTO t VALUES (1, 10), (2, 20)").ok());
  auto r = (*fs)->Execute("SELECT sum(b) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].int_val(), 30);

  FrontDoor::Stats s = cluster.frontend()->stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_GE(s.executed, 3u);
  EXPECT_EQ(s.live_sessions, 1);
  EXPECT_GT(s.busy_us, 0);
}

TEST(FrontendTest, TransactionsSpanStatementsAcrossWorkers) {
  // With multiple workers, consecutive statements of one transaction land on
  // whatever worker is free — the attach/detach handoff must preserve the
  // transaction (and the mutex handoff must make it race-free; the TSan run
  // of this test is the real assertion).
  Cluster cluster(FrontDoorCluster(/*workers=*/4));
  auto fs = cluster.ConnectLogical();
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Execute("CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)").ok());

  ASSERT_TRUE((*fs)->Execute("BEGIN").ok());
  ASSERT_TRUE((*fs)->Execute("INSERT INTO t VALUES (1, 100)").ok());
  ASSERT_TRUE((*fs)->Execute("INSERT INTO t VALUES (2, 200)").ok());
  ASSERT_TRUE((*fs)->Execute("ROLLBACK").ok());
  auto gone = (*fs)->Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->rows[0][0].int_val(), 0);

  ASSERT_TRUE((*fs)->Execute("BEGIN").ok());
  ASSERT_TRUE((*fs)->Execute("INSERT INTO t VALUES (3, 300)").ok());
  ASSERT_TRUE((*fs)->Execute("COMMIT").ok());
  auto kept = (*fs)->Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->rows[0][0].int_val(), 1);
}

TEST(FrontendTest, NoPipeliningOneStatementInFlight) {
  Cluster cluster(FrontDoorCluster(/*workers=*/1));
  auto fs = cluster.ConnectLogical();
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Execute("CREATE TABLE t (a int) DISTRIBUTED BY (a)").ok());

  cluster.faults().ArmDelay(fault_points::kFrontendWorkerStall, 100'000);
  std::atomic<bool> first_done{false};
  ASSERT_TRUE((*fs)
                  ->Submit("INSERT INTO t VALUES (1)",
                           [&](StatusOr<QueryResult> r) {
                             EXPECT_TRUE(r.ok()) << r.status().ToString();
                             first_done.store(true);
                           })
                  .ok());
  Status second = (*fs)->Submit("INSERT INTO t VALUES (2)", [](StatusOr<QueryResult>) {});
  EXPECT_EQ(second.code(), StatusCode::kInvalidArgument);
  cluster.faults().Disarm(fault_points::kFrontendWorkerStall);
  EXPECT_TRUE(WaitFor([&] { return first_done.load(); }));
}

TEST(FrontendTest, ConnectShedsOverMaxSessionsWithRetryAfter) {
  ClusterOptions o = FrontDoorCluster();
  o.frontend.max_sessions = 2;
  Cluster cluster(o);

  auto a = cluster.ConnectLogical();
  auto b = cluster.ConnectLogical();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto c = cluster.ConnectLogical();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(c.status().retry_after_us(), 0);
  EXPECT_TRUE(IsShedFailure(c.status()));
  EXPECT_EQ(cluster.frontend()->stats().shed_connects, 1u);

  // Shed is a capacity signal, not a ban: capacity freed -> connect admitted.
  (*a)->Close();
  EXPECT_TRUE(WaitFor([&] { return cluster.frontend()->stats().live_sessions == 1; }));
  auto d = cluster.ConnectLogical();
  EXPECT_TRUE(d.ok()) << d.status().ToString();
}

TEST(FrontendTest, AcceptDropFaultPointShedsConnects) {
  Cluster cluster(FrontDoorCluster());
  cluster.faults().ArmOneShot(fault_points::kFrontendAcceptDrop);
  auto dropped = cluster.ConnectLogical();
  ASSERT_FALSE(dropped.ok());
  EXPECT_TRUE(IsShedFailure(dropped.status())) << dropped.status().ToString();
  auto ok = cluster.ConnectLogical();
  EXPECT_TRUE(ok.ok());
}

TEST(FrontendTest, DispatchQueueBoundShedsOpeners) {
  ClusterOptions o = FrontDoorCluster(/*workers=*/1);
  o.frontend.max_dispatch_queue = 1;
  Cluster cluster(o);

  auto a = cluster.ConnectLogical();
  auto b = cluster.ConnectLogical();
  auto c = cluster.ConnectLogical();
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE((*a)->Execute("CREATE TABLE t (x int) DISTRIBUTED BY (x)").ok());

  // Occupy the only worker (stalled), then fill the one-slot open queue.
  cluster.faults().ArmDelay(fault_points::kFrontendWorkerStall, 200'000);
  std::atomic<int> done{0};
  auto count_done = [&](StatusOr<QueryResult>) { done.fetch_add(1); };
  ASSERT_TRUE((*a)->Submit("INSERT INTO t VALUES (1)", count_done).ok());
  ASSERT_TRUE(WaitFor([&] { return cluster.frontend()->stats().busy_workers == 1; }));
  ASSERT_TRUE((*b)->Submit("INSERT INTO t VALUES (2)", count_done).ok());

  Status shed = (*c)->Submit("INSERT INTO t VALUES (3)", count_done);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(IsShedFailure(shed)) << shed.ToString();
  EXPECT_GE(shed.retry_after_us(), cluster.frontend()->options().retry_after_us);
  EXPECT_EQ(cluster.frontend()->stats().shed_statements, 1u);

  cluster.faults().Disarm(fault_points::kFrontendWorkerStall);
  EXPECT_TRUE(WaitFor([&] { return done.load() == 2; }));

  // Pressure gone: the shed statement's retry is admitted.
  EXPECT_TRUE((*c)->Execute("INSERT INTO t VALUES (3)").ok());
}

TEST(FrontendTest, TransactionContinuationsAreNeverShed) {
  ClusterOptions o = FrontDoorCluster(/*workers=*/1);
  o.frontend.max_dispatch_queue = 1;
  Cluster cluster(o);

  auto txn = cluster.ConnectLogical();
  auto filler = cluster.ConnectLogical();
  auto queued = cluster.ConnectLogical();
  ASSERT_TRUE(txn.ok() && filler.ok() && queued.ok());
  ASSERT_TRUE((*txn)->Execute("CREATE TABLE t (x int) DISTRIBUTED BY (x)").ok());
  ASSERT_TRUE((*txn)->Execute("BEGIN").ok());
  ASSERT_TRUE((*txn)->Execute("INSERT INTO t VALUES (1)").ok());

  // Saturate: worker stalled on filler's statement, open queue full.
  cluster.faults().ArmDelay(fault_points::kFrontendWorkerStall, 200'000);
  std::atomic<int> done{0};
  auto count_done = [&](StatusOr<QueryResult>) { done.fetch_add(1); };
  ASSERT_TRUE((*filler)->Submit("INSERT INTO t VALUES (2)", count_done).ok());
  ASSERT_TRUE(WaitFor([&] { return cluster.frontend()->stats().busy_workers == 1; }));
  ASSERT_TRUE((*queued)->Submit("INSERT INTO t VALUES (3)", count_done).ok());
  ASSERT_FALSE((*queued)->Submit("INSERT INTO t VALUES (9)", count_done).ok());

  // The open transaction's COMMIT must be admitted anyway — shedding it would
  // strand its locks behind a saturated queue forever.
  std::atomic<bool> committed{false};
  Status commit = (*txn)->Submit("COMMIT", [&](StatusOr<QueryResult> r) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    committed.store(true);
  });
  EXPECT_TRUE(commit.ok()) << commit.ToString();

  cluster.faults().Disarm(fault_points::kFrontendWorkerStall);
  EXPECT_TRUE(WaitFor([&] { return committed.load() && done.load() == 2; }));
}

TEST(FrontendTest, GroupBackpressureShedsPerResourceGroup) {
  ClusterOptions o = FrontDoorCluster(/*workers=*/4);
  o.resource_groups_enabled = true;
  o.frontend.group_queue_overflow = 1;
  Cluster cluster(o);
  ResourceGroupConfig tight;
  tight.name = "tight";
  tight.concurrency = 1;  // DispatchBound = 1 + 1*1 = 2 queued-or-running
  ASSERT_TRUE(cluster.resgroups().CreateGroup(tight).ok());
  ASSERT_TRUE(cluster.resgroups().AssignRole("stormy", "tight").ok());

  auto s1 = cluster.ConnectLogical("stormy");
  auto s2 = cluster.ConnectLogical("stormy");
  auto s3 = cluster.ConnectLogical("stormy");
  auto other = cluster.ConnectLogical();
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok() && other.ok());
  ASSERT_TRUE((*other)->Execute("CREATE TABLE t (x int) DISTRIBUTED BY (x)").ok());

  cluster.faults().ArmDelay(fault_points::kFrontendWorkerStall, 200'000);
  std::atomic<int> done{0};
  auto count_done = [&](StatusOr<QueryResult>) { done.fetch_add(1); };
  ASSERT_TRUE((*s1)->Submit("INSERT INTO t VALUES (1)", count_done).ok());
  ASSERT_TRUE((*s2)->Submit("INSERT INTO t VALUES (2)", count_done).ok());

  Status shed = (*s3)->Submit("INSERT INTO t VALUES (3)", count_done);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(IsShedFailure(shed)) << shed.ToString();

  // A session of a different group is not caught in tight's backpressure.
  std::atomic<bool> other_done{false};
  EXPECT_TRUE((*other)
                  ->Submit("INSERT INTO t VALUES (4)",
                           [&](StatusOr<QueryResult>) { other_done.store(true); })
                  .ok());

  cluster.faults().Disarm(fault_points::kFrontendWorkerStall);
  EXPECT_TRUE(WaitFor([&] { return done.load() == 2 && other_done.load(); }));
}

TEST(FrontendTest, IdleAndLoginTimeoutsReapSessions) {
  ClusterOptions o = FrontDoorCluster();
  o.frontend.idle_timeout_us = 30'000;
  o.frontend.login_timeout_us = 30'000;
  o.frontend.sweep_period_us = 5'000;
  Cluster cluster(o);

  auto idle = cluster.ConnectLogical();
  auto fresh = cluster.ConnectLogical();
  ASSERT_TRUE(idle.ok() && fresh.ok());
  // `idle` runs one statement, then goes quiet; `fresh` never runs anything.
  ASSERT_TRUE((*idle)->Execute("CREATE TABLE t (x int) DISTRIBUTED BY (x)").ok());

  // `idle` exceeds idle_timeout, `fresh` never runs and exceeds login_timeout.
  EXPECT_TRUE(WaitFor([&] { return (*idle)->closed() && (*fresh)->closed(); }));
  EXPECT_GE(cluster.frontend()->stats().idle_closed, 2u);
  EXPECT_EQ(cluster.frontend()->stats().live_sessions, 0);
  EXPECT_EQ(cluster.sessions().Snapshot().size(), 0u);  // unregistered too

  // A closed handle sheds with a hint: the client's cue to reconnect.
  Status late = (*idle)->Submit("SELECT count(*) FROM t", [](StatusOr<QueryResult>) {});
  EXPECT_TRUE(IsShedFailure(late)) << late.ToString();
}

TEST(FrontendTest, QueuedSessionsVisibleInStatActivityAndMetrics) {
  Cluster cluster(FrontDoorCluster(/*workers=*/1));
  auto a = cluster.ConnectLogical();
  auto b = cluster.ConnectLogical();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Execute("CREATE TABLE t (x int) DISTRIBUTED BY (x)").ok());

  cluster.faults().ArmDelay(fault_points::kFrontendWorkerStall, 200'000);
  std::atomic<int> done{0};
  auto count_done = [&](StatusOr<QueryResult>) { done.fetch_add(1); };
  ASSERT_TRUE((*a)->Submit("INSERT INTO t VALUES (1)", count_done).ok());
  ASSERT_TRUE(WaitFor([&] { return cluster.frontend()->stats().busy_workers == 1; }));
  ASSERT_TRUE((*b)->Submit("INSERT INTO t VALUES (2)", count_done).ok());

  // While b waits for dispatch, a direct session sees it as queued.
  auto direct = cluster.Connect();
  auto rows = direct->Execute(
      "SELECT sess_id, wait_event_class, wait_event, queue_depth "
      "FROM gp_stat_activity WHERE state = 'queued'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].int_val(), (*b)->id());
  EXPECT_EQ(rows->rows[0][1].string_val(), "frontend");
  EXPECT_EQ(rows->rows[0][2].string_val(), "dispatch");
  EXPECT_GE(rows->rows[0][3].int_val(), 1);

  cluster.faults().Disarm(fault_points::kFrontendWorkerStall);
  EXPECT_TRUE(WaitFor([&] { return done.load() == 2; }));

  // The dispatch wait is accumulated per event class, and the frontend.*
  // counters surface through gp_metrics.
  auto waits = direct->Execute(
      "SELECT count(*) FROM gp_wait_events WHERE wait_event = 'dispatch'");
  ASSERT_TRUE(waits.ok());
  EXPECT_GE(waits->rows[0][0].int_val(), 1);
  auto metrics = direct->Execute(
      "SELECT name, value FROM gp_metrics WHERE name = 'frontend.queued'");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->rows.size(), 1u);
  EXPECT_GE(metrics->rows[0][1].int_val(), 2);
}

TEST(FrontendTest, RetryAfterHintScalesWithQueuePressure) {
  ClusterOptions o = FrontDoorCluster(/*workers=*/1);
  o.frontend.max_dispatch_queue = 4;
  Cluster cluster(o);
  FrontDoor* door = cluster.frontend();
  int64_t relaxed = door->RetryAfterHintUs();
  EXPECT_EQ(relaxed, o.frontend.retry_after_us);

  auto a = cluster.ConnectLogical();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->Execute("CREATE TABLE t (x int) DISTRIBUTED BY (x)").ok());
  cluster.faults().ArmDelay(fault_points::kFrontendWorkerStall, 150'000);
  std::atomic<int> done{0};
  auto count_done = [&](StatusOr<QueryResult>) { done.fetch_add(1); };
  std::vector<std::shared_ptr<FrontendSession>> fillers;
  ASSERT_TRUE((*a)->Submit("INSERT INTO t VALUES (0)", count_done).ok());
  ASSERT_TRUE(WaitFor([&] { return door->stats().busy_workers == 1; }));
  for (int i = 0; i < 4; ++i) {
    auto fs = cluster.ConnectLogical();
    ASSERT_TRUE(fs.ok());
    fillers.push_back(*fs);
    ASSERT_TRUE(
        fillers.back()
            ->Submit("INSERT INTO t VALUES (" + std::to_string(i + 1) + ")", count_done)
            .ok());
  }
  EXPECT_GT(door->RetryAfterHintUs(), relaxed);  // pressure stretches the hint
  cluster.faults().Disarm(fault_points::kFrontendWorkerStall);
  EXPECT_TRUE(WaitFor([&] { return done.load() == 5; }));
}

TEST(FrontendTest, ManyLogicalSessionsOverAFixedPool) {
  // 300 logical sessions over 4 workers: no per-session OS thread exists by
  // construction (the driver's clients are callback chains). The run must
  // make progress and keep the TPC-B invariant.
  ClusterOptions o = FrontDoorCluster(/*workers=*/4);
  Cluster cluster(o);
  TpcbConfig tpcb;
  tpcb.scale = 4;
  tpcb.accounts_per_branch = 50;
  ASSERT_TRUE(LoadTpcb(&cluster, tpcb).ok());

  FrontendWorkloadOptions w;
  w.logical_sessions = 300;
  w.duration_ms = 400;
  w.seed = 7;
  w.session_init = TpcbPrepareScript();
  FrontendWorkloadResult r = RunFrontendWorkload(
      &cluster, w, [&tpcb](Rng& rng) { return TpcbTransactionScript(rng, tpcb); });

  EXPECT_TRUE(r.fatal.ok()) << r.fatal.ToString();
  EXPECT_EQ(r.connect_ok, 300u);
  EXPECT_GT(r.committed, 0u);
  EXPECT_TRUE(CheckTpcbInvariant(&cluster).ok());

  FrontDoor::Stats s = cluster.frontend()->stats();
  EXPECT_EQ(s.accepted, 300u);
  EXPECT_GE(s.executed, r.committed);
}

TEST(FrontendTest, StopFailsQueuedWorkCleanly) {
  Cluster cluster(FrontDoorCluster(/*workers=*/1));
  auto a = cluster.ConnectLogical();
  auto b = cluster.ConnectLogical();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Execute("CREATE TABLE t (x int) DISTRIBUTED BY (x)").ok());

  cluster.faults().ArmDelay(fault_points::kFrontendWorkerStall, 100'000);
  std::atomic<int> callbacks{0};
  auto count = [&](StatusOr<QueryResult>) { callbacks.fetch_add(1); };
  ASSERT_TRUE((*a)->Submit("INSERT INTO t VALUES (1)", count).ok());
  ASSERT_TRUE((*b)->Submit("INSERT INTO t VALUES (2)", count).ok());

  cluster.frontend()->Stop();  // idempotent; ~Cluster calls it again
  EXPECT_EQ(callbacks.load(), 2);  // every accepted Submit got its callback
  EXPECT_TRUE((*a)->closed());
  EXPECT_TRUE((*b)->closed());
  Status late = (*a)->Submit("SELECT count(*) FROM t", [](StatusOr<QueryResult>) {});
  EXPECT_FALSE(late.ok());
}

// --- Connection storm under the chaos fault schedule (satellite 3) ---------
// A moderate storm rides the full crash/failover schedule; run_tier1's bench
// covers the 50k-session scale. Invariants: balance conservation, no lost or
// ghost writes from the direct transfer sessions, every shed connect
// classified as a retryable kUnavailable-with-hint (anything else lands in
// report.violations via the engine's `fatal`).
void RunStormSeed(uint64_t seed) {
  ClusterOptions o;
  o.num_segments = 3;
  o.gdd_enabled = true;
  o.mirrors_enabled = true;
  o.crash_recovery_enabled = true;
  o.fts_enabled = true;
  o.breaker_enabled = true;
  o.commit_retry_deadline_us = 2'000'000;
  o.frontend.enabled = true;
  o.frontend.workers = 6;
  o.frontend.max_sessions = 600;  // the ramp overshoots this: connects shed
  Cluster cluster(o);

  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.duration_ms = 2000;
  cfg.transfer_sessions = 4;
  cfg.scan_sessions = 2;
  cfg.statement_timeout_ms = 1500;
  cfg.storm_sessions = 800;
  cfg.storm_ramp_threads = 4;
  // Keep the accept path itself under fire while the storm ramps.
  cluster.faults().ArmProbability(fault_points::kFrontendAcceptDrop, 0.05, seed);
  cluster.faults().ArmDelay(fault_points::kFrontendWorkerStall, 200);

  ASSERT_TRUE(SetupChaosTables(&cluster, cfg).ok());
  ChaosReport report = RunChaosWorkload(&cluster, cfg);
  SCOPED_TRACE(report.ToString());

  EXPECT_TRUE(report.invariants_ok()) << report.ToString();
  EXPECT_GT(report.storm_connect_ok, 0u);
  EXPECT_GT(report.storm_connect_shed, 0u);  // max_sessions < ramp: sheds happen
  EXPECT_GT(report.storm_committed, 0u);
  EXPECT_GT(report.faults_injected, 0u);
}

TEST(FrontendStormTest, InvariantsHoldSeed42) { RunStormSeed(42); }

TEST(FrontendStormTest, InvariantsHoldSeed1337) { RunStormSeed(1337); }

TEST(FrontendStormTest, InvariantsHoldSeed7) { RunStormSeed(7); }

}  // namespace
}  // namespace gphtap
