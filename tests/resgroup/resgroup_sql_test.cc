// Resource groups end-to-end through SQL: the paper's DDL, role assignment,
// admission control on sessions, and vmem-driven query cancellation.
#include <gtest/gtest.h>

#include <thread>

#include "api/gphtap.h"
#include "integration/actor.h"

namespace gphtap {
namespace {

ClusterOptions RgCluster() {
  ClusterOptions o;
  o.num_segments = 2;
  o.resource_groups_enabled = true;
  o.global_shared_mem_mb = 1;  // tiny global pool: vmem tests bite
  return o;
}

TEST(ResgroupSqlTest, PaperDdlRoundTrip) {
  Cluster cluster(RgCluster());
  auto s = cluster.Connect();
  // Verbatim from Section 6 of the paper.
  ASSERT_TRUE(s->Execute("CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, "
                         "MEMORY_LIMIT=35, MEMORY_SHARED_QUOTA=20, CPU_RATE_LIMIT=20)")
                  .ok());
  ASSERT_TRUE(s->Execute("CREATE RESOURCE GROUP oltp_group WITH (CONCURRENCY=50, "
                         "MEMORY_LIMIT=15, MEMORY_SHARED_QUOTA=20, CPU_RATE_LIMIT=60)")
                  .ok());
  ASSERT_TRUE(s->Execute("CREATE ROLE dev1 RESOURCE GROUP olap_group").ok());
  ASSERT_TRUE(s->Execute("ALTER ROLE dev1 RESOURCE GROUP oltp_group").ok());
  auto g = cluster.resgroups().GroupForRole("dev1");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->name(), "oltp_group");
  EXPECT_EQ(g->config().concurrency, 50);
  EXPECT_DOUBLE_EQ(g->config().cpu_rate_limit, 60);

  // Duplicate and missing groups error.
  EXPECT_FALSE(s->Execute("CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=1)").ok());
  EXPECT_FALSE(s->Execute("CREATE ROLE dev2 RESOURCE GROUP missing").ok());
  ASSERT_TRUE(s->Execute("DROP RESOURCE GROUP olap_group").ok());
  EXPECT_FALSE(s->Execute("DROP RESOURCE GROUP olap_group").ok());
}

TEST(ResgroupSqlTest, CpusetDdlParsesRanges) {
  Cluster cluster(RgCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE RESOURCE GROUP g WITH (CONCURRENCY=5, CPU_SET=4-31)")
                  .ok());
  auto g = cluster.resgroups().Get("g");
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->config().uses_cpuset());
  EXPECT_EQ(g->config().cpuset_begin, 4);
  EXPECT_EQ(g->config().cpuset_end, 31);
}

TEST(ResgroupSqlTest, ConcurrencyLimitQueuesSessions) {
  Cluster cluster(RgCluster());
  auto admin = cluster.Connect();
  ASSERT_TRUE(
      admin->Execute("CREATE RESOURCE GROUP tight WITH (CONCURRENCY=1, MEMORY_LIMIT=8)")
          .ok());
  ASSERT_TRUE(admin->Execute("CREATE ROLE app RESOURCE GROUP tight").ok());
  ASSERT_TRUE(admin->Execute("CREATE TABLE t (k int, v int)").ok());

  Actor a(&cluster, "app"), b(&cluster, "app");
  ASSERT_TRUE(a.RunSync("BEGIN").ok());  // takes the single slot
  auto b_blocked = b.Run("BEGIN");       // queued behind the concurrency limit
  EXPECT_TRUE(StillBlocked(b_blocked, 100));
  ASSERT_TRUE(a.RunSync("COMMIT").ok());  // frees the slot
  EXPECT_TRUE(b_blocked.get().ok());
  ASSERT_TRUE(b.RunSync("COMMIT").ok());
}

TEST(ResgroupSqlTest, VmemLimitCancelsOversizedQuery) {
  Cluster cluster(RgCluster());
  auto admin = cluster.Connect();
  // 1 MB group, no shared headroom to speak of.
  ASSERT_TRUE(admin->Execute("CREATE RESOURCE GROUP small WITH (CONCURRENCY=2, "
                             "MEMORY_LIMIT=1, MEMORY_SHARED_QUOTA=10)")
                  .ok());
  ASSERT_TRUE(admin->Execute("CREATE ROLE analyst RESOURCE GROUP small").ok());
  ASSERT_TRUE(admin->Execute("CREATE TABLE big (k int, v text)").ok());
  {
    // Load ~6 MB of strings.
    auto def = cluster.LookupTable("big");
    std::vector<Row> rows;
    for (int64_t i = 0; i < 20000; ++i) {
      rows.push_back(Row{Datum(i), Datum(std::string(300, 'x'))});
    }
    ASSERT_TRUE(admin->ExecuteInsert(*def, rows).ok());
  }
  auto analyst = cluster.Connect("analyst");
  // The sort must materialize ~6 MB through a ~1 MB budget: cancelled.
  auto r = analyst->Execute("SELECT v FROM big ORDER BY v");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted) << r.status().ToString();
  // The admin (default group, bigger pools) can still run small queries.
  EXPECT_TRUE(admin->Execute("SELECT count(*) FROM big").ok());
  // And the analyst's next (small) query works: the account was released.
  EXPECT_TRUE(analyst->Execute("SELECT count(*) FROM big").ok());
}

TEST(ResgroupSqlTest, SetRoleSwitchesGroups) {
  Cluster cluster(RgCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE RESOURCE GROUP g1 WITH (CONCURRENCY=5)").ok());
  ASSERT_TRUE(s->Execute("CREATE ROLE r1 RESOURCE GROUP g1").ok());
  ASSERT_TRUE(s->Execute("SET ROLE r1").ok());
  EXPECT_EQ(s->role(), "r1");
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_EQ(cluster.resgroups().Get("g1")->active(), 0);  // released after txn
}

}  // namespace
}  // namespace gphtap
