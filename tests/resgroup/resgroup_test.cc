#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "resgroup/cpu_governor.h"
#include "resgroup/resource_group.h"
#include "resgroup/vmem_tracker.h"

namespace gphtap {
namespace {

// ---------- CPU governor ----------

TEST(CpuGovernorTest, UnknownGroupUnthrottled) {
  CpuGovernor gov(4);
  Stopwatch sw;
  for (int i = 0; i < 100; ++i) gov.Charge("nobody", 10'000);
  EXPECT_LT(sw.ElapsedMicros(), 50'000);
}

TEST(CpuGovernorTest, HardGroupThrottlesToBudget) {
  CpuGovernor gov(8);
  gov.ConfigureGroup("g", /*cores=*/1.0, /*hard=*/true);
  // Burn past the burst capacity (20ms/core), then measure throttling.
  gov.Charge("g", 100'000);
  Stopwatch sw;
  gov.Charge("g", 50'000);  // 50ms of work at 1 core => ~50ms wall
  int64_t wall = sw.ElapsedMicros();
  EXPECT_GT(wall, 30'000) << "hard cpuset group was not throttled";
}

TEST(CpuGovernorTest, SoftGroupBurstsWhenIdle) {
  CpuGovernor gov(8);
  gov.ConfigureGroup("g", /*cores=*/0.5, /*hard=*/false);
  // No other load: a soft group may exceed its share freely.
  Stopwatch sw;
  for (int i = 0; i < 50; ++i) gov.Charge("g", 10'000);
  EXPECT_LT(sw.ElapsedMicros(), 100'000) << "soft group throttled while system idle";
}

TEST(CpuGovernorTest, BiggerHardBudgetRunsFaster) {
  auto run = [&](double cores) {
    CpuGovernor gov(32);
    gov.ConfigureGroup("g", cores, true);
    gov.Charge("g", static_cast<int64_t>(cores * 20'000));  // drain burst capacity
    Stopwatch sw;
    for (int i = 0; i < 20; ++i) gov.Charge("g", 10'000);  // 200ms of work
    return sw.ElapsedMicros();
  };
  int64_t slow = run(2);   // 200ms work / 2 cores = ~100ms
  int64_t fast = run(16);  // 200ms work / 16 cores = ~12ms
  EXPECT_GT(slow, fast * 2) << "slow=" << slow << " fast=" << fast;
}

TEST(CpuGovernorTest, ChargeAccounting) {
  CpuGovernor gov(4);
  gov.ConfigureGroup("a", 4, false);
  gov.Charge("a", 1000);
  gov.Charge("a", 2000);
  EXPECT_EQ(gov.GroupChargedUs("a"), 3000);
  EXPECT_EQ(gov.TotalChargedUs(), 3000);
}

// ---------- Vmem tracker ----------

TEST(VmemTrackerTest, SlotThenGroupSharedThenGlobal) {
  VmemTracker tracker(/*global shared=*/1 << 20);  // 1 MB global
  // Group: 10 MB limit, 20% shared => 8 MB non-shared, slot = 8MB/4 = 2 MB.
  auto group = std::make_shared<GroupMemory>("g", 10 << 20, 20, 4);
  QueryMemoryAccount acct(&tracker, group);

  EXPECT_EQ(group->slot_quota_bytes(), 2 << 20);
  // First 2 MB from the slot.
  ASSERT_TRUE(acct.Reserve(2 << 20).ok());
  EXPECT_EQ(acct.slot_used(), 2 << 20);
  EXPECT_EQ(acct.group_shared_used(), 0);
  // Next 2 MB spills into group shared pool (2 MB available).
  ASSERT_TRUE(acct.Reserve(2 << 20).ok());
  EXPECT_EQ(acct.group_shared_used(), 2 << 20);
  // Next 1 MB must come from global shared.
  ASSERT_TRUE(acct.Reserve(1 << 20).ok());
  EXPECT_EQ(acct.global_used(), 1 << 20);
  // All three layers exhausted -> cancellation signal.
  Status s = acct.Reserve(1 << 20);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(VmemTrackerTest, ReleaseReturnsToPools) {
  VmemTracker tracker(1 << 20);
  auto group = std::make_shared<GroupMemory>("g", 4 << 20, 50, 1);
  {
    QueryMemoryAccount acct(&tracker, group);
    // slot 2MB + group shared 2MB + global 1MB.
    ASSERT_TRUE(acct.Reserve(5 << 20).ok());
    EXPECT_GT(tracker.global_shared_used(), 0);
  }  // destructor releases
  EXPECT_EQ(tracker.global_shared_used(), 0);
  QueryMemoryAccount acct2(&tracker, group);
  EXPECT_TRUE(acct2.Reserve(5 << 20).ok());
}

TEST(VmemTrackerTest, GroupsCompeteForSharedPools) {
  VmemTracker tracker(0);  // no global shared
  auto group = std::make_shared<GroupMemory>("g", 2 << 20, 50, 2);  // 1MB shared
  QueryMemoryAccount a(&tracker, group), b(&tracker, group);
  // Each slot = 512 KB. a eats its slot + entire group shared pool.
  ASSERT_TRUE(a.Reserve((512 << 10) + (1 << 20)).ok());
  // b still has its slot...
  ASSERT_TRUE(b.Reserve(512 << 10).ok());
  // ... but the shared pool is gone.
  EXPECT_EQ(b.Reserve(1 << 10).code(), StatusCode::kResourceExhausted);
}

// ---------- Resource group admission ----------

TEST(ResourceGroupTest, ConcurrencyAdmission) {
  CpuGovernor gov(4);
  VmemTracker vmem(64 << 20);
  ResourceGroupConfig config;
  config.name = "g";
  config.concurrency = 2;
  config.cpu_rate_limit = 50;
  ResourceGroup group(config, &gov, &vmem);

  ASSERT_TRUE(group.Admit().ok());
  ASSERT_TRUE(group.Admit().ok());
  EXPECT_EQ(group.active(), 2);

  std::atomic<bool> third_admitted{false};
  std::thread waiter([&] {
    EXPECT_TRUE(group.Admit().ok());
    third_admitted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_admitted.load());
  group.Leave();
  waiter.join();
  EXPECT_TRUE(third_admitted.load());
  group.Leave();
  group.Leave();
  EXPECT_EQ(group.active(), 0);
}

TEST(ResourceGroupTest, AdmitCancellable) {
  CpuGovernor gov(4);
  VmemTracker vmem(64 << 20);
  ResourceGroupConfig config;
  config.name = "g";
  config.concurrency = 1;
  ResourceGroup group(config, &gov, &vmem);
  ASSERT_TRUE(group.Admit().ok());
  std::atomic<bool> cancelled{false};
  Status got;
  std::thread waiter([&] { got = group.Admit(&cancelled); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cancelled = true;
  waiter.join();
  EXPECT_EQ(got.code(), StatusCode::kAborted);
  group.Leave();
}

TEST(ResourceGroupTest, RegistryCreateAssignResolve) {
  CpuGovernor gov(32);
  VmemTracker vmem(256 << 20);
  ResourceGroupRegistry registry(&gov, &vmem);
  ResourceGroupConfig olap;
  olap.name = "olap_group";
  olap.concurrency = 10;
  olap.cpu_rate_limit = 20;
  ASSERT_TRUE(registry.CreateGroup(olap).ok());
  EXPECT_EQ(registry.CreateGroup(olap).code(), StatusCode::kAlreadyExists);

  ASSERT_TRUE(registry.AssignRole("dev1", "olap_group").ok());
  EXPECT_EQ(registry.AssignRole("dev1", "missing").code(), StatusCode::kNotFound);
  auto g = registry.GroupForRole("dev1");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->name(), "olap_group");
  EXPECT_EQ(registry.GroupForRole("other"), nullptr);

  ASSERT_TRUE(registry.DropGroup("olap_group").ok());
  EXPECT_EQ(registry.GroupForRole("dev1"), nullptr);  // assignment dropped too
}

TEST(ResourceGroupTest, CpusetConfigGivesHardCores) {
  ResourceGroupConfig config;
  config.cpuset_begin = 4;
  config.cpuset_end = 31;
  EXPECT_TRUE(config.uses_cpuset());
  EXPECT_DOUBLE_EQ(config.cores(32), 28.0);
  ResourceGroupConfig rate;
  rate.cpu_rate_limit = 20;
  EXPECT_FALSE(rate.uses_cpuset());
  EXPECT_DOUBLE_EQ(rate.cores(32), 6.4);
}

}  // namespace
}  // namespace gphtap
