// Verifies the lock-mode conflict matrix against Table 1 of the paper.
#include <gtest/gtest.h>

#include "lock/lock_defs.h"

namespace gphtap {
namespace {

// Table 1, "Conflict lock level" column, indexed by lock level 1..8.
const std::vector<std::vector<int>> kPaperConflicts = {
    /*1 AccessShare*/ {8},
    /*2 RowShare*/ {7, 8},
    /*3 RowExclusive*/ {5, 6, 7, 8},
    /*4 ShareUpdateExclusive*/ {4, 5, 6, 7, 8},
    /*5 Share*/ {3, 4, 6, 7, 8},
    /*6 ShareRowExclusive*/ {3, 4, 5, 6, 7, 8},
    /*7 Exclusive*/ {2, 3, 4, 5, 6, 7, 8},
    /*8 AccessExclusive*/ {1, 2, 3, 4, 5, 6, 7, 8},
};

TEST(LockModesTest, MatrixMatchesTable1Exactly) {
  for (int held = 1; held <= 8; ++held) {
    const auto& conflicts = kPaperConflicts[static_cast<size_t>(held - 1)];
    for (int req = 1; req <= 8; ++req) {
      bool expected =
          std::find(conflicts.begin(), conflicts.end(), req) != conflicts.end();
      EXPECT_EQ(LockConflicts(static_cast<LockMode>(held), static_cast<LockMode>(req)),
                expected)
          << "held=" << held << " req=" << req;
    }
  }
}

TEST(LockModesTest, MatrixIsSymmetric) {
  for (int a = 1; a <= 8; ++a) {
    for (int b = 1; b <= 8; ++b) {
      EXPECT_EQ(LockConflicts(static_cast<LockMode>(a), static_cast<LockMode>(b)),
                LockConflicts(static_cast<LockMode>(b), static_cast<LockMode>(a)))
          << a << " vs " << b;
    }
  }
}

TEST(LockModesTest, HigherLevelsConflictWithSupersets) {
  // AccessExclusive conflicts with everything; AccessShare only with level 8.
  for (int m = 1; m <= 8; ++m) {
    EXPECT_TRUE(LockConflicts(LockMode::kAccessExclusive, static_cast<LockMode>(m)));
  }
  for (int m = 1; m <= 7; ++m) {
    EXPECT_FALSE(LockConflicts(LockMode::kAccessShare, static_cast<LockMode>(m)));
  }
}

TEST(LockModesTest, RowExclusiveSelfCompatible) {
  // The GDD optimization hinges on this: concurrent UPDATEs take RowExclusive,
  // which does not conflict with itself (unlike Exclusive, the pre-GDD level).
  EXPECT_FALSE(LockConflicts(LockMode::kRowExclusive, LockMode::kRowExclusive));
  EXPECT_TRUE(LockConflicts(LockMode::kExclusive, LockMode::kExclusive));
  EXPECT_TRUE(LockConflicts(LockMode::kExclusive, LockMode::kRowExclusive));
}

TEST(LockModesTest, NamesMatchPaper) {
  EXPECT_STREQ(LockModeName(LockMode::kAccessShare), "AccessShareLock");
  EXPECT_STREQ(LockModeName(LockMode::kRowExclusive), "RowExclusiveLock");
  EXPECT_STREQ(LockModeName(LockMode::kAccessExclusive), "AccessExclusiveLock");
}

TEST(LockTagTest, EqualityAndHash) {
  LockTag a = LockTag::Relation(7);
  LockTag b = LockTag::Relation(7);
  LockTag c = LockTag::Tuple(7, 3);
  LockTag d = LockTag::Transaction(99);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(c == d);
  LockTagHash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));
}

TEST(LockTagTest, ToStringIsReadable) {
  EXPECT_EQ(LockTag::Relation(5).ToString(), "relation(rel=5)");
  EXPECT_EQ(LockTag::Tuple(5, 9).ToString(), "tuple(rel=5,tup=9)");
  EXPECT_EQ(LockTag::Transaction(3).ToString(), "transaction(xid=3)");
}

}  // namespace
}  // namespace gphtap
