#include "lock/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace gphtap {
namespace {

std::shared_ptr<LockOwner> MakeOwner(uint64_t gxid) {
  return std::make_shared<LockOwner>(gxid);
}

TEST(LockManagerTest, GrantAndRelease) {
  LockManager lm(0);
  auto t1 = MakeOwner(1);
  LockTag tag = LockTag::Relation(10);
  EXPECT_TRUE(lm.Acquire(t1, tag, LockMode::kRowExclusive).ok());
  EXPECT_TRUE(lm.Holds(*t1, tag, LockMode::kRowExclusive));
  lm.Release(*t1, tag, LockMode::kRowExclusive);
  EXPECT_FALSE(lm.Holds(*t1, tag, LockMode::kRowExclusive));
}

TEST(LockManagerTest, CompatibleModesShareGrant) {
  LockManager lm(0);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2);
  LockTag tag = LockTag::Relation(10);
  EXPECT_TRUE(lm.Acquire(t1, tag, LockMode::kRowExclusive).ok());
  // RowExclusive is self-compatible (the GDD-enabled DML level).
  EXPECT_TRUE(lm.TryAcquire(t2, tag, LockMode::kRowExclusive));
}

TEST(LockManagerTest, ConflictingModeBlocks) {
  LockManager lm(0);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2);
  LockTag tag = LockTag::Relation(10);
  EXPECT_TRUE(lm.Acquire(t1, tag, LockMode::kExclusive).ok());
  EXPECT_FALSE(lm.TryAcquire(t2, tag, LockMode::kExclusive));
}

TEST(LockManagerTest, WaiterIsGrantedOnRelease) {
  LockManager lm(0);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2);
  LockTag tag = LockTag::Relation(10);
  ASSERT_TRUE(lm.Acquire(t1, tag, LockMode::kExclusive).ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Acquire(t2, tag, LockMode::kExclusive).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());
  EXPECT_TRUE(lm.IsWaiting(2));
  lm.ReleaseAll(*t1);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_TRUE(lm.Holds(*t2, tag, LockMode::kExclusive));
}

TEST(LockManagerTest, ReentrantAcquireSameMode) {
  LockManager lm(0);
  auto t1 = MakeOwner(1);
  LockTag tag = LockTag::Relation(10);
  EXPECT_TRUE(lm.Acquire(t1, tag, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(t1, tag, LockMode::kExclusive).ok());
  lm.Release(*t1, tag, LockMode::kExclusive);
  EXPECT_TRUE(lm.Holds(*t1, tag, LockMode::kExclusive));
  lm.Release(*t1, tag, LockMode::kExclusive);
  EXPECT_FALSE(lm.Holds(*t1, tag, LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeJumpsQueue) {
  LockManager lm(0);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2);
  LockTag tag = LockTag::Relation(10);
  ASSERT_TRUE(lm.Acquire(t1, tag, LockMode::kRowExclusive).ok());
  // t2 queues for AccessExclusive behind t1.
  std::thread waiter([&] { lm.Acquire(t2, tag, LockMode::kAccessExclusive); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // t1 upgrades to Exclusive: must not deadlock against the queued t2.
  EXPECT_TRUE(lm.Acquire(t1, tag, LockMode::kExclusive).ok());
  lm.ReleaseAll(*t1);
  waiter.join();
  lm.ReleaseAll(*t2);
}

TEST(LockManagerTest, FairnessNoJumpOverConflictingWaiter) {
  LockManager lm(0);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2), t3 = MakeOwner(3);
  LockTag tag = LockTag::Relation(10);
  ASSERT_TRUE(lm.Acquire(t1, tag, LockMode::kAccessShare).ok());
  std::thread waiter([&] { lm.Acquire(t2, tag, LockMode::kAccessExclusive); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // t3's AccessShare does not conflict with granted (t1) but does conflict with
  // the queued AccessExclusive request: it must queue behind t2, not starve it.
  EXPECT_FALSE(lm.TryAcquire(t3, tag, LockMode::kAccessShare));
  lm.ReleaseAll(*t1);
  waiter.join();
  lm.ReleaseAll(*t2);
}

TEST(LockManagerTest, CancelWakesWaiterWithReason) {
  LockManager lm(0);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2);
  LockTag tag = LockTag::Relation(10);
  ASSERT_TRUE(lm.Acquire(t1, tag, LockMode::kExclusive).ok());

  Status got;
  std::thread waiter([&] { got = lm.Acquire(t2, tag, LockMode::kExclusive); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  t2->Cancel(Status::DeadlockDetected("victim"));
  EXPECT_TRUE(lm.WakeWaitersOf(2));
  waiter.join();
  EXPECT_EQ(got.code(), StatusCode::kDeadlockDetected);
  EXPECT_FALSE(lm.IsWaiting(2));
  // t1 still holds; the cancelled waiter left no residue.
  lm.ReleaseAll(*t1);
  EXPECT_TRUE(lm.TryAcquire(t2, tag, LockMode::kExclusive));
}

TEST(LockManagerTest, WaitGraphReportsSolidEdgeForRelation) {
  LockManager lm(3);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2);
  LockTag tag = LockTag::Relation(10);
  ASSERT_TRUE(lm.Acquire(t1, tag, LockMode::kExclusive).ok());
  std::thread waiter([&] { lm.Acquire(t2, tag, LockMode::kExclusive); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  LocalWaitGraph g = lm.CollectWaitGraph();
  EXPECT_EQ(g.node_id, 3);
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_EQ(g.edges[0].waiter, 2u);
  EXPECT_EQ(g.edges[0].holder, 1u);
  EXPECT_FALSE(g.edges[0].dotted);

  lm.ReleaseAll(*t1);
  waiter.join();
  lm.ReleaseAll(*t2);
  EXPECT_TRUE(lm.CollectWaitGraph().edges.empty());
}

TEST(LockManagerTest, WaitGraphReportsDottedEdgeForTuple) {
  LockManager lm(0);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2);
  LockTag tag = LockTag::Tuple(10, 77);
  ASSERT_TRUE(lm.Acquire(t1, tag, LockMode::kExclusive).ok());
  std::thread waiter([&] { lm.Acquire(t2, tag, LockMode::kExclusive); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  LocalWaitGraph g = lm.CollectWaitGraph();
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_TRUE(g.edges[0].dotted);
  lm.ReleaseAll(*t1);
  waiter.join();
  lm.ReleaseAll(*t2);
}

TEST(LockManagerTest, LocalDeadlockDetectedByTimeoutCheck) {
  LockManager::Options opts;
  opts.local_deadlock_timeout_us = 30'000;
  LockManager lm(0, opts);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2);
  LockTag a = LockTag::Relation(1), b = LockTag::Relation(2);
  ASSERT_TRUE(lm.Acquire(t1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(t2, b, LockMode::kExclusive).ok());

  Status s1, s2;
  // On abort each "session" rolls back (releases its locks), unblocking the peer.
  std::thread th1([&] {
    s1 = lm.Acquire(t1, b, LockMode::kExclusive);
    if (!s1.ok()) lm.ReleaseAll(*t1);
  });
  std::thread th2([&] {
    s2 = lm.Acquire(t2, a, LockMode::kExclusive);
    if (!s2.ok()) lm.ReleaseAll(*t2);
  });
  th1.join();
  th2.join();
  // At least one must have been aborted by local deadlock detection; if one
  // succeeded, the other was the one that detected.
  bool one_deadlocked = s1.code() == StatusCode::kDeadlockDetected ||
                        s2.code() == StatusCode::kDeadlockDetected;
  EXPECT_TRUE(one_deadlocked) << s1.ToString() << " / " << s2.ToString();
  EXPECT_GE(lm.stats().local_deadlocks, 1u);
  lm.ReleaseAll(*t1);
  lm.ReleaseAll(*t2);
}

TEST(LockManagerTest, StatsCountWaits) {
  LockManager lm(0);
  auto t1 = MakeOwner(1), t2 = MakeOwner(2);
  LockTag tag = LockTag::Relation(10);
  ASSERT_TRUE(lm.Acquire(t1, tag, LockMode::kExclusive).ok());
  std::thread waiter([&] { lm.Acquire(t2, tag, LockMode::kExclusive); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  lm.ReleaseAll(*t1);
  waiter.join();
  auto st = lm.stats();
  EXPECT_GE(st.acquires, 2u);
  EXPECT_GE(st.waits, 1u);
  EXPECT_GT(st.total_wait_us, 10'000);
  lm.ReleaseAll(*t2);
}

TEST(LockManagerTest, ReleaseAllUnblocksMultipleWaiters) {
  LockManager lm(0);
  auto holder = MakeOwner(1);
  LockTag tag = LockTag::Relation(10);
  ASSERT_TRUE(lm.Acquire(holder, tag, LockMode::kAccessExclusive).ok());
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<LockOwner>> owners;
  for (int i = 2; i <= 5; ++i) owners.push_back(MakeOwner(static_cast<uint64_t>(i)));
  for (auto& o : owners) {
    threads.emplace_back([&, o] {
      if (lm.Acquire(o, tag, LockMode::kAccessShare).ok()) granted++;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(granted.load(), 0);
  lm.ReleaseAll(*holder);
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), 4);  // all shares granted together
}

}  // namespace
}  // namespace gphtap
