#include "plan/planner.h"

#include <gtest/gtest.h>

namespace gphtap {
namespace {

TableDef MakeTable(TableId id, const std::string& name,
                   DistributionPolicy dist = DistributionPolicy::Hash({0})) {
  TableDef def;
  def.id = id;
  def.name = name;
  def.schema = Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}});
  def.distribution = std::move(dist);
  return def;
}

PlannerOptions Opts(int segments, bool orca = false) {
  PlannerOptions o;
  o.num_segments = segments;
  o.use_orca = orca;
  static int counter = 0;
  o.next_motion_id = [] { return counter++; };
  return o;
}

SelectItem ColItem(int col, const std::string& name) {
  SelectItem i;
  i.expr = Expr::Column(col);
  i.name = name;
  return i;
}

const PlanNode* FindNode(const PlanNode& root, PlanKind kind) {
  if (root.kind == kind) return &root;
  for (const auto& c : root.children) {
    const PlanNode* f = FindNode(*c, kind);
    if (f != nullptr) return f;
  }
  return nullptr;
}

int CountNodes(const PlanNode& root, PlanKind kind) {
  int n = root.kind == kind ? 1 : 0;
  for (const auto& c : root.children) n += CountNodes(*c, kind);
  return n;
}

TEST(PlannerTest, SimpleScanGathers) {
  SelectQuery q;
  q.tables = {MakeTable(1, "t")};
  q.items = {ColItem(0, "k")};
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_EQ(planned->gang.size(), 4u);
  const PlanNode* motion = FindNode(*planned->root, PlanKind::kMotion);
  ASSERT_NE(motion, nullptr);
  EXPECT_EQ(motion->motion, MotionKind::kGather);
  EXPECT_NE(FindNode(*planned->root, PlanKind::kSeqScan), nullptr);
  EXPECT_EQ(planned->columns[0], "k");
}

TEST(PlannerTest, DirectDispatchOnPinnedKey) {
  SelectQuery q;
  q.tables = {MakeTable(1, "t")};
  q.quals = {Expr::Binary(BinOp::kEq, Expr::Column(0), Expr::Const(Datum(int64_t{7})))};
  q.items = {ColItem(1, "v")};
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->gang.size(), 1u);  // routed to exactly one segment
  int expected = static_cast<int>(Datum(int64_t{7}).Hash() % 4);
  // DirectDispatchSegment hashes the key row, which for a single int key equals
  // HashRowKey of that one datum.
  Row key = {Datum(int64_t{7})};
  EXPECT_EQ(planned->gang[0], static_cast<int>(HashRowKey(key, {0}) % 4));
  (void)expected;
}

TEST(PlannerTest, NoDirectDispatchOnNonKeyPredicate) {
  SelectQuery q;
  q.tables = {MakeTable(1, "t")};
  q.quals = {Expr::Binary(BinOp::kEq, Expr::Column(1), Expr::Const(Datum(int64_t{7})))};
  q.items = {ColItem(0, "k")};
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->gang.size(), 4u);
}

TEST(PlannerTest, DirectDispatchDisabled) {
  SelectQuery q;
  q.tables = {MakeTable(1, "t")};
  q.quals = {Expr::Binary(BinOp::kEq, Expr::Column(0), Expr::Const(Datum(int64_t{7})))};
  q.items = {ColItem(0, "k")};
  PlannerOptions opts = Opts(4);
  opts.direct_dispatch = false;
  auto planned = PlanSelect(q, opts);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->gang.size(), 4u);
}

TEST(PlannerTest, CollocatedJoinHasSingleMotion) {
  // Both distributed by the join key: only the final gather moves data.
  SelectQuery q;
  q.tables = {MakeTable(1, "a"), MakeTable(2, "b")};
  q.quals = {Expr::Binary(BinOp::kEq, Expr::Column(0), Expr::Column(2))};
  q.items = {ColItem(0, "k")};
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(CountNodes(*planned->root, PlanKind::kMotion), 1);  // gather only
  EXPECT_NE(FindNode(*planned->root, PlanKind::kHashJoin), nullptr);
}

TEST(PlannerTest, MismatchedJoinKeyRedistributes) {
  // Join a.v = b.k: a is distributed by a.k, so a must move.
  SelectQuery q;
  q.tables = {MakeTable(1, "a"), MakeTable(2, "b")};
  q.quals = {Expr::Binary(BinOp::kEq, Expr::Column(1), Expr::Column(2))};
  q.items = {ColItem(0, "k")};
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok());
  int motions = CountNodes(*planned->root, PlanKind::kMotion);
  EXPECT_EQ(motions, 2);  // one redistribute + final gather
  // Find the redistribute.
  bool found_redistribute = false;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.kind == PlanKind::kMotion && n.motion == MotionKind::kRedistribute) {
      found_redistribute = true;
    }
    for (const auto& c : n.children) walk(*c);
  };
  walk(*planned->root);
  EXPECT_TRUE(found_redistribute);
}

TEST(PlannerTest, ReplicatedTableNeedsNoMotion) {
  SelectQuery q;
  q.tables = {MakeTable(1, "facts"),
              MakeTable(2, "dims", DistributionPolicy::Replicated())};
  q.quals = {Expr::Binary(BinOp::kEq, Expr::Column(1), Expr::Column(2))};
  q.items = {ColItem(0, "k")};
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(CountNodes(*planned->root, PlanKind::kMotion), 1);  // gather only
}

TEST(PlannerTest, OrcaBroadcastsSmallBuildSide) {
  SelectQuery q;
  q.tables = {MakeTable(1, "big"), MakeTable(2, "small")};
  // Join on big.v = small.v: neither side collocated.
  q.quals = {Expr::Binary(BinOp::kEq, Expr::Column(1), Expr::Column(3))};
  q.items = {ColItem(0, "k")};
  PlannerOptions opts = Opts(4, /*orca=*/true);
  opts.row_estimate = [](TableId id) -> uint64_t { return id == 1 ? 1'000'000 : 10; };
  auto planned = PlanSelect(q, opts);
  ASSERT_TRUE(planned.ok());
  bool found_broadcast = false;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.kind == PlanKind::kMotion && n.motion == MotionKind::kBroadcast) {
      found_broadcast = true;
    }
    for (const auto& c : n.children) walk(*c);
  };
  walk(*planned->root);
  EXPECT_TRUE(found_broadcast) << planned->root->ToString();
}

TEST(PlannerTest, HeuristicNeverBroadcasts) {
  SelectQuery q;
  q.tables = {MakeTable(1, "big"), MakeTable(2, "small")};
  q.quals = {Expr::Binary(BinOp::kEq, Expr::Column(1), Expr::Column(3))};
  q.items = {ColItem(0, "k")};
  PlannerOptions opts = Opts(4, /*orca=*/false);
  opts.row_estimate = [](TableId id) -> uint64_t { return id == 1 ? 1'000'000 : 10; };
  auto planned = PlanSelect(q, opts);
  ASSERT_TRUE(planned.ok());
  std::function<int(const PlanNode&)> count_bc = [&](const PlanNode& n) -> int {
    int c = n.kind == PlanKind::kMotion && n.motion == MotionKind::kBroadcast ? 1 : 0;
    for (const auto& ch : n.children) c += count_bc(*ch);
    return c;
  };
  EXPECT_EQ(count_bc(*planned->root), 0);
}

TEST(PlannerTest, AggregationIsTwoPhase) {
  SelectQuery q;
  q.tables = {MakeTable(1, "t")};
  SelectItem agg;
  agg.is_agg = true;
  agg.agg.fn = AggFunc::kSum;
  agg.agg.arg = Expr::Column(1);
  agg.name = "sum";
  q.items = {ColItem(0, "k"), agg};
  q.group_by = {0};
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_EQ(CountNodes(*planned->root, PlanKind::kHashAgg), 2);  // partial + final
  // The partial agg must sit BELOW the gather motion.
  const PlanNode* motion = FindNode(*planned->root, PlanKind::kMotion);
  ASSERT_NE(motion, nullptr);
  EXPECT_NE(FindNode(*motion->children[0], PlanKind::kHashAgg), nullptr);
}

TEST(PlannerTest, UngroupedColumnWithAggregateRejected) {
  SelectQuery q;
  q.tables = {MakeTable(1, "t")};
  SelectItem agg;
  agg.is_agg = true;
  agg.agg.fn = AggFunc::kCountStar;
  agg.name = "n";
  q.items = {ColItem(1, "v"), agg};  // v not grouped
  q.group_by = {0};
  auto planned = PlanSelect(q, Opts(4));
  EXPECT_FALSE(planned.ok());
}

TEST(PlannerTest, IndexScanChosenForPinnedIndexedColumn) {
  TableDef t = MakeTable(1, "t");
  t.indexed_cols = {0};
  SelectQuery q;
  q.tables = {t};
  q.quals = {Expr::Binary(BinOp::kEq, Expr::Column(0), Expr::Const(Datum(int64_t{5})))};
  q.items = {ColItem(1, "v")};
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok());
  EXPECT_NE(FindNode(*planned->root, PlanKind::kIndexScan), nullptr);
  EXPECT_EQ(FindNode(*planned->root, PlanKind::kSeqScan), nullptr);
}

TEST(PlannerTest, SortAndLimitOnTop) {
  SelectQuery q;
  q.tables = {MakeTable(1, "t")};
  q.items = {ColItem(0, "k")};
  q.order_by = {{0, false}};
  q.limit = 10;
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->root->kind, PlanKind::kLimit);
  EXPECT_EQ(planned->root->children[0]->kind, PlanKind::kSort);
  EXPECT_FALSE(planned->root->children[0]->sort_keys[0].ascending);
}

TEST(PlannerTest, AllReplicatedRunsOnOneSegment) {
  SelectQuery q;
  q.tables = {MakeTable(1, "dims", DistributionPolicy::Replicated())};
  q.items = {ColItem(0, "k")};
  auto planned = PlanSelect(q, Opts(4));
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->gang.size(), 1u);
}

TEST(PlannerTest, EmptyFromRejected) {
  SelectQuery q;
  q.items = {ColItem(0, "k")};
  EXPECT_FALSE(PlanSelect(q, Opts(4)).ok());
}

}  // namespace
}  // namespace gphtap
