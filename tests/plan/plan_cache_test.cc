// Plan cache: LRU + catalog-version invalidation unit tests, and end-to-end
// coverage that repeated SELECT texts skip planning (hits), DDL invalidates,
// and cached plans still return correct results.
#include "plan/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/session.h"

namespace gphtap {
namespace {

std::shared_ptr<const CachedPlan> MakePlan(uint64_t version) {
  auto p = std::make_shared<CachedPlan>();
  p->catalog_version = version;
  return p;
}

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache(4, nullptr);
  EXPECT_EQ(cache.Lookup("SELECT 1", 1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert("SELECT 1", MakePlan(1));
  auto hit = cache.Lookup("SELECT 1", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, StaleCatalogVersionInvalidates) {
  PlanCache cache(4, nullptr);
  cache.Insert("SELECT 1", MakePlan(1));
  // Catalog moved (DDL): the stamped plan must not be served.
  EXPECT_EQ(cache.Lookup("SELECT 1", 2), nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.size(), 0u);  // evicted eagerly on the stale lookup
}

TEST(PlanCacheTest, LruEvictsOldest) {
  PlanCache cache(2, nullptr);
  cache.Insert("a", MakePlan(1));
  cache.Insert("b", MakePlan(1));
  ASSERT_NE(cache.Lookup("a", 1), nullptr);  // touch a: b is now oldest
  cache.Insert("c", MakePlan(1));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  EXPECT_EQ(cache.Lookup("b", 1), nullptr);
  EXPECT_NE(cache.Lookup("c", 1), nullptr);
}

TEST(PlanCacheTest, ZeroCapacityDisables) {
  PlanCache cache(0, nullptr);
  cache.Insert("a", MakePlan(1));
  EXPECT_EQ(cache.Lookup("a", 1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, ReinsertReplacesEntry) {
  PlanCache cache(4, nullptr);
  cache.Insert("a", MakePlan(1));
  cache.Insert("a", MakePlan(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Lookup("a", 2), nullptr);  // replaced entry is the live one
  EXPECT_EQ(cache.Lookup("a", 1), nullptr);  // old stamp is stale (and evicts)
  EXPECT_EQ(cache.size(), 0u);
}

class PlanCacheEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_segments = 2;
    cluster_ = std::make_unique<Cluster>(options);
    session_ = cluster_->Connect();
    ASSERT_TRUE(session_
                    ->Execute("CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
                    .ok());
    ASSERT_TRUE(session_
                    ->Execute("INSERT INTO t SELECT i, i * 2 "
                              "FROM generate_series(1, 100) i")
                    .ok());
  }

  uint64_t Counter(const std::string& name) {
    return cluster_->StatsSnapshot().counter(name);
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Session> session_;
};

TEST_F(PlanCacheEndToEndTest, RepeatedSelectHitsCache) {
  const std::string sql = "SELECT sum(b) FROM t WHERE a <= 50";
  auto first = session_->Execute(sql);
  ASSERT_TRUE(first.ok());
  uint64_t hits_before = Counter("plan_cache.hits");
  auto second = session_->Execute(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Counter("plan_cache.hits"), hits_before + 1);
  // The cached plan must produce the same answer.
  ASSERT_EQ(second->rows.size(), 1u);
  EXPECT_EQ(second->rows[0][0].int_val(), first->rows[0][0].int_val());
}

TEST_F(PlanCacheEndToEndTest, CachedPlanServesOtherSessions) {
  const std::string sql = "SELECT count(*) FROM t";
  ASSERT_TRUE(session_->Execute(sql).ok());
  auto other = cluster_->Connect();
  uint64_t hits_before = Counter("plan_cache.hits");
  auto r = other->Execute(sql);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Counter("plan_cache.hits"), hits_before + 1);
  EXPECT_EQ(r->rows[0][0].int_val(), 100);
}

TEST_F(PlanCacheEndToEndTest, DdlInvalidatesCachedPlans) {
  const std::string sql = "SELECT count(*) FROM t WHERE b > 0";
  ASSERT_TRUE(session_->Execute(sql).ok());
  // Any catalog change bumps the version; the next lookup must re-plan.
  ASSERT_TRUE(session_->Execute("CREATE TABLE other (x int)").ok());
  uint64_t invalidations_before = Counter("plan_cache.invalidations");
  auto r = session_->Execute(sql);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Counter("plan_cache.invalidations"), invalidations_before + 1);
  EXPECT_EQ(r->rows[0][0].int_val(), 100);
}

TEST_F(PlanCacheEndToEndTest, DroppedTableDoesNotServeStalePlan) {
  const std::string sql = "SELECT count(*) FROM t";
  ASSERT_TRUE(session_->Execute(sql).ok());
  ASSERT_TRUE(session_->Execute("DROP TABLE t").ok());
  // Version bumped: the cached plan for the dropped table must not run.
  auto r = session_->Execute(sql);
  EXPECT_FALSE(r.ok());
}

TEST_F(PlanCacheEndToEndTest, WritesSeenThroughCachedPlan) {
  const std::string sql = "SELECT sum(b) FROM t";
  auto before = session_->Execute(sql);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(session_->Execute("UPDATE t SET b = b + 1 WHERE a <= 10").ok());
  // DML does not bump the catalog version; the cached plan is reused but must
  // observe the new data (plans cache structure, not results).
  uint64_t hits_before = Counter("plan_cache.hits");
  auto after = session_->Execute(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Counter("plan_cache.hits"), hits_before + 1);
  EXPECT_EQ(after->rows[0][0].int_val(), before->rows[0][0].int_val() + 10);
}

}  // namespace
}  // namespace gphtap
