#include "plan/expr.h"

#include <gtest/gtest.h>

namespace gphtap {
namespace {

Datum I(int64_t v) { return Datum(v); }

TEST(ExprTest, ConstAndColumn) {
  Row row = {I(7), Datum(std::string("x"))};
  EXPECT_EQ(EvalExpr(*Expr::Const(I(5)), row)->int_val(), 5);
  EXPECT_EQ(EvalExpr(*Expr::Column(0), row)->int_val(), 7);
  EXPECT_EQ(EvalExpr(*Expr::Column(1), row)->string_val(), "x");
  EXPECT_FALSE(EvalExpr(*Expr::Column(9), row).ok());
}

TEST(ExprTest, IntArithmetic) {
  Row row;
  auto eval = [&](BinOp op, int64_t a, int64_t b) {
    return EvalExpr(*Expr::Binary(op, Expr::Const(I(a)), Expr::Const(I(b))), row);
  };
  EXPECT_EQ(eval(BinOp::kAdd, 2, 3)->int_val(), 5);
  EXPECT_EQ(eval(BinOp::kSub, 2, 3)->int_val(), -1);
  EXPECT_EQ(eval(BinOp::kMul, 4, 3)->int_val(), 12);
  EXPECT_EQ(eval(BinOp::kDiv, 7, 2)->int_val(), 3);
  EXPECT_EQ(eval(BinOp::kMod, 7, 2)->int_val(), 1);
  EXPECT_FALSE(eval(BinOp::kDiv, 1, 0).ok());
  EXPECT_FALSE(eval(BinOp::kMod, 1, 0).ok());
}

TEST(ExprTest, MixedArithmeticWidens) {
  Row row;
  auto r = EvalExpr(
      *Expr::Binary(BinOp::kAdd, Expr::Const(I(1)), Expr::Const(Datum(0.5))), row);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->double_val(), 1.5);
}

TEST(ExprTest, StringConcat) {
  Row row;
  auto r = EvalExpr(*Expr::Binary(BinOp::kAdd, Expr::Const(Datum(std::string("ab"))),
                                  Expr::Const(Datum(std::string("cd")))),
                    row);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->string_val(), "abcd");
}

TEST(ExprTest, Comparisons) {
  Row row;
  auto cmp = [&](BinOp op, int64_t a, int64_t b) {
    return EvalExpr(*Expr::Binary(op, Expr::Const(I(a)), Expr::Const(I(b))),
                    row)->int_val();
  };
  EXPECT_EQ(cmp(BinOp::kEq, 1, 1), 1);
  EXPECT_EQ(cmp(BinOp::kNe, 1, 1), 0);
  EXPECT_EQ(cmp(BinOp::kLt, 1, 2), 1);
  EXPECT_EQ(cmp(BinOp::kLe, 2, 2), 1);
  EXPECT_EQ(cmp(BinOp::kGt, 1, 2), 0);
  EXPECT_EQ(cmp(BinOp::kGe, 2, 3), 0);
}

TEST(ExprTest, NullPropagation) {
  Row row;
  auto add_null = EvalExpr(
      *Expr::Binary(BinOp::kAdd, Expr::Const(I(1)), Expr::Const(Datum::Null())), row);
  EXPECT_TRUE(add_null->is_null());
  auto eq_null = EvalExpr(
      *Expr::Binary(BinOp::kEq, Expr::Const(Datum::Null()), Expr::Const(Datum::Null())),
      row);
  EXPECT_TRUE(eq_null->is_null());  // NULL = NULL is NULL, not true
}

TEST(ExprTest, ThreeValuedLogic) {
  Row row;
  ExprPtr null_e = Expr::Const(Datum::Null());
  ExprPtr t = Expr::Const(I(1));
  ExprPtr f = Expr::Const(I(0));
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_EQ(EvalExpr(*Expr::Binary(BinOp::kAnd, f, null_e), row)->int_val(), 0);
  EXPECT_TRUE(EvalExpr(*Expr::Binary(BinOp::kAnd, t, null_e), row)->is_null());
  // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
  EXPECT_EQ(EvalExpr(*Expr::Binary(BinOp::kOr, t, null_e), row)->int_val(), 1);
  EXPECT_TRUE(EvalExpr(*Expr::Binary(BinOp::kOr, f, null_e), row)->is_null());
  // NOT NULL = NULL.
  EXPECT_TRUE(EvalExpr(*Expr::Not(null_e), row)->is_null());
}

TEST(ExprTest, IsNull) {
  Row row = {Datum::Null(), I(1)};
  EXPECT_EQ(EvalExpr(*Expr::IsNull(Expr::Column(0)), row)->int_val(), 1);
  EXPECT_EQ(EvalExpr(*Expr::IsNull(Expr::Column(1)), row)->int_val(), 0);
}

TEST(ExprTest, PredicateTreatsNullAsFalse) {
  Row row = {Datum::Null()};
  ExprPtr pred = Expr::Binary(BinOp::kGt, Expr::Column(0), Expr::Const(I(5)));
  auto r = EvalPredicate(*pred, row);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(ExprTest, ExtractEqualityConst) {
  // c0 = 42 AND c1 > 5
  ExprPtr pred = Expr::Binary(
      BinOp::kAnd, Expr::Binary(BinOp::kEq, Expr::Column(0), Expr::Const(I(42))),
      Expr::Binary(BinOp::kGt, Expr::Column(1), Expr::Const(I(5))));
  Datum out;
  EXPECT_TRUE(ExtractEqualityConst(*pred, 0, &out));
  EXPECT_EQ(out.int_val(), 42);
  EXPECT_FALSE(ExtractEqualityConst(*pred, 1, &out));  // inequality doesn't pin

  // Reversed: 42 = c0.
  ExprPtr rev = Expr::Binary(BinOp::kEq, Expr::Const(I(42)), Expr::Column(0));
  EXPECT_TRUE(ExtractEqualityConst(*rev, 0, &out));

  // OR disjunction must NOT pin.
  ExprPtr disj = Expr::Binary(
      BinOp::kOr, Expr::Binary(BinOp::kEq, Expr::Column(0), Expr::Const(I(1))),
      Expr::Binary(BinOp::kEq, Expr::Column(0), Expr::Const(I(2))));
  EXPECT_FALSE(ExtractEqualityConst(*disj, 0, &out));
}

TEST(ExprTest, ShortCircuitSkipsErrors) {
  Row row;
  // FALSE AND (1/0 = 1): short circuit means no error.
  ExprPtr div0 = Expr::Binary(BinOp::kEq,
                              Expr::Binary(BinOp::kDiv, Expr::Const(I(1)),
                                           Expr::Const(I(0))),
                              Expr::Const(I(1)));
  ExprPtr pred = Expr::Binary(BinOp::kAnd, Expr::Const(I(0)), div0);
  auto r = EvalExpr(*pred, row);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->int_val(), 0);
}

TEST(ExprTest, ToStringReadable) {
  ExprPtr e = Expr::Binary(BinOp::kAnd,
                           Expr::Binary(BinOp::kEq, Expr::Column(0), Expr::Const(I(1))),
                           Expr::IsNull(Expr::Column(1)));
  EXPECT_EQ(e->ToString(), "(($0 = 1) AND $1 IS NULL)");
}

TEST(ExprTest, ReadsColumns) {
  EXPECT_FALSE(ExprReadsColumns(*Expr::Const(I(1))));
  EXPECT_TRUE(ExprReadsColumns(*Expr::Column(0)));
  EXPECT_TRUE(ExprReadsColumns(
      *Expr::Binary(BinOp::kAdd, Expr::Const(I(1)), Expr::Column(2))));
}

}  // namespace
}  // namespace gphtap
