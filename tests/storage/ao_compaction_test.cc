// Row-group reclamation and dead-heavy compaction bookkeeping on the
// append-optimized storage kinds: GroupInfos occupancy (the gp_segment_status
// bloat source and the VACUUM compaction trigger), whole-group reclamation
// under the "dead to every snapshot" predicate, tid stability across freed
// slots, and kFreeGroup change-record emission.
#include <gtest/gtest.h>

#include <set>

#include "storage/ao_table.h"
#include "storage/column_store.h"
#include "txn/local_txn_manager.h"

namespace gphtap {
namespace {

class AoCompactionTest : public ::testing::Test {
 protected:
  AoCompactionTest() : mgr_(&clog_, &dlog_, &wal_) {}

  LocalXid BeginCommitted() {
    Gxid g = next_gxid_++;
    LocalXid x = *mgr_.AssignXid(g);
    mgr_.Commit(g);
    return x;
  }

  LocalXid BeginAborted() {
    Gxid g = next_gxid_++;
    LocalXid x = *mgr_.AssignXid(g);
    mgr_.Abort(g);
    return x;
  }

  VisibilityContext Ctx() {
    VisibilityContext c;
    c.clog = &clog_;
    c.dlog = &dlog_;
    c.dsnap = nullptr;  // utility mode: local rules only
    c.lsnap = nullptr;
    return c;
  }

  // The reporting predicate: aborted creator, or committed deleter.
  AoRowDeadFn Dead() {
    return [this](LocalXid xmin, LocalXid xmax) {
      if (clog_.GetState(xmin) == TxnState::kAborted) return true;
      return xmax != kInvalidLocalXid && clog_.IsCommitted(xmax);
    };
  }

  TableDef RowDef() {
    TableDef def;
    def.id = 1;
    def.name = "ao";
    def.schema = Schema({{"k", TypeId::kInt64}});
    def.storage = StorageKind::kAoRow;
    return def;
  }

  TableDef ColDef() {
    TableDef def = RowDef();
    def.name = "aoc";
    def.storage = StorageKind::kAoColumn;
    return def;
  }

  std::set<int64_t> Keys(Table* t) {
    std::set<int64_t> out;
    EXPECT_TRUE(t->Scan(Ctx(), [&](TupleId, const Row& r) {
                   out.insert(r[0].int_val());
                   return true;
                 }).ok());
    return out;
  }

  CommitLog clog_;
  DistributedLog dlog_;
  WalStub wal_{0};
  LocalTxnManager mgr_;
  Gxid next_gxid_ = 100;
};

TEST_F(AoCompactionTest, GroupInfosTrackLiveAndDeadPerGroup) {
  AoRowTable t(RowDef());
  LocalXid w = BeginCommitted();
  for (size_t i = 0; i < AoRowTable::kGroupSize + 10; ++i) {
    ASSERT_TRUE(t.Insert(w, Row{Datum(static_cast<int64_t>(i))}).ok());
  }
  // Kill 100 rows of group 0 with a committed deleter, 5 with an aborted one.
  LocalXid d = BeginCommitted();
  for (TupleId tid = 0; tid < 100; ++tid) ASSERT_TRUE(t.MarkDeleted(tid, d).ok());
  LocalXid a = BeginAborted();
  for (TupleId tid = 100; tid < 105; ++tid) ASSERT_TRUE(t.MarkDeleted(tid, a).ok());

  std::vector<AoGroupInfo> infos = t.GroupInfos(Dead());
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_TRUE(infos[0].sealed);
  EXPECT_FALSE(infos[0].freed);
  EXPECT_EQ(infos[0].rows, AoRowTable::kGroupSize);
  EXPECT_EQ(infos[0].dead, 100u);  // the aborted deleter does not count
  EXPECT_EQ(infos[0].live, AoRowTable::kGroupSize - 100);
  EXPECT_FALSE(infos[1].sealed);
  EXPECT_EQ(infos[1].rows, 10u);
  EXPECT_EQ(infos[1].live, 10u);
}

TEST_F(AoCompactionTest, ReclaimFreesOnlyFullyDeadSealedGroups) {
  AoRowTable t(RowDef());
  LocalXid w = BeginCommitted();
  for (size_t i = 0; i < 2 * AoRowTable::kGroupSize + 1; ++i) {
    ASSERT_TRUE(t.Insert(w, Row{Datum(static_cast<int64_t>(i))}).ok());
  }
  // Group 0 fully dead; group 1 all but one row dead; group 2 open.
  LocalXid d = BeginCommitted();
  for (TupleId tid = 0; tid < 2 * AoRowTable::kGroupSize - 1; ++tid) {
    ASSERT_TRUE(t.MarkDeleted(tid, d).ok());
  }

  AoReclaimResult r = t.ReclaimDeadGroups(Dead());
  EXPECT_EQ(r.groups_freed, 1u);
  EXPECT_EQ(r.rows_freed, AoRowTable::kGroupSize);

  // The freed group keeps its slot: surviving tids are unchanged.
  std::set<int64_t> keys = Keys(&t);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_TRUE(keys.count(static_cast<int64_t>(2 * AoRowTable::kGroupSize - 1)));
  EXPECT_TRUE(keys.count(static_cast<int64_t>(2 * AoRowTable::kGroupSize)));

  std::vector<AoGroupInfo> infos = t.GroupInfos(Dead());
  EXPECT_TRUE(infos[0].freed);
  EXPECT_EQ(infos[0].rows, 0u);
  EXPECT_FALSE(infos[1].freed);

  // A second pass finds nothing new (group 1 still has its survivor).
  r = t.ReclaimDeadGroups(Dead());
  EXPECT_EQ(r.groups_freed, 0u);
}

TEST_F(AoCompactionTest, ReclaimEmitsFreeGroupChangeRecord) {
  ChangeLog log;
  AoRowTable t(RowDef());
  t.SetChangeLog(&log);
  LocalXid w = BeginCommitted();
  for (size_t i = 0; i < AoRowTable::kGroupSize; ++i) {
    ASSERT_TRUE(t.Insert(w, Row{Datum(static_cast<int64_t>(i))}).ok());
  }
  LocalXid d = BeginCommitted();
  for (TupleId tid = 0; tid < AoRowTable::kGroupSize; ++tid) {
    ASSERT_TRUE(t.MarkDeleted(tid, d).ok());
  }
  const size_t before = log.size();
  AoReclaimResult r = t.ReclaimDeadGroups(Dead());
  EXPECT_EQ(r.groups_freed, 1u);
  std::vector<ChangeRecord> delta = log.SnapshotFrom(before);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].kind, ChangeKind::kFreeGroup);
  EXPECT_EQ(delta[0].tid, 0u);  // group index rides in the tid field

  // Replay-side application frees without re-emitting.
  AoRowTable replica(RowDef());
  for (size_t i = 0; i < AoRowTable::kGroupSize; ++i) {
    ASSERT_TRUE(replica.Insert(w, Row{Datum(static_cast<int64_t>(i))}).ok());
  }
  ASSERT_TRUE(replica.ApplyFreeGroup(0).ok());
  EXPECT_EQ(replica.StoredVersionCount(), 0u);
}

TEST_F(AoCompactionTest, ColumnStoreReclaimAndOccupancy) {
  AoColumnTable t(ColDef());
  LocalXid w = BeginCommitted();
  for (size_t i = 0; i < AoColumnTable::kRowGroupSize + 7; ++i) {
    ASSERT_TRUE(t.Insert(w, Row{Datum(static_cast<int64_t>(i))}).ok());
  }
  LocalXid d = BeginCommitted();
  for (TupleId tid = 0; tid < AoColumnTable::kRowGroupSize; ++tid) {
    ASSERT_TRUE(t.MarkDeleted(tid, d).ok());
  }

  std::vector<AoGroupInfo> infos = t.GroupInfos(Dead());
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].dead, AoColumnTable::kRowGroupSize);
  EXPECT_EQ(infos[0].live, 0u);

  AoReclaimResult r = t.ReclaimDeadGroups(Dead());
  EXPECT_EQ(r.groups_freed, 1u);
  EXPECT_EQ(r.rows_freed, AoColumnTable::kRowGroupSize);

  std::set<int64_t> keys = Keys(&t);
  ASSERT_EQ(keys.size(), 7u);
  EXPECT_TRUE(keys.count(static_cast<int64_t>(AoColumnTable::kRowGroupSize)));

  infos = t.GroupInfos(Dead());
  EXPECT_TRUE(infos[0].freed);
  EXPECT_EQ(infos[0].rows, 0u);
}

}  // namespace
}  // namespace gphtap
