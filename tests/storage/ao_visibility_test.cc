// Regression tests for the ScanColumns / ScanBatches / MarkDeleted visibility
// interaction on AO-column tables: partially-filled open groups, fully-deleted
// sealed groups, aborted deleters, and row-vs-batch scan equivalence (both
// paths share AoColumnTable::GroupVisibility).
#include <gtest/gtest.h>

#include <set>

#include "storage/column_store.h"
#include "txn/local_txn_manager.h"

namespace gphtap {
namespace {

class AoVisibilityTest : public ::testing::Test {
 protected:
  AoVisibilityTest() : mgr_(&clog_, &dlog_, &wal_) {}

  LocalXid BeginCommitted() {
    Gxid g = next_gxid_++;
    LocalXid x = *mgr_.AssignXid(g);
    mgr_.Commit(g);
    return x;
  }

  VisibilityContext Ctx() {
    VisibilityContext c;
    c.clog = &clog_;
    c.dlog = &dlog_;
    c.dsnap = nullptr;  // utility mode: local rules only
    c.lsnap = nullptr;
    return c;
  }

  TableDef Def() {
    TableDef def;
    def.id = 1;
    def.name = "t";
    def.schema = Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}});
    def.storage = StorageKind::kAoColumn;
    return def;
  }

  // Collects (tid, k) over a row scan of both columns.
  std::vector<std::pair<TupleId, int64_t>> RowScan(AoColumnTable* t) {
    std::vector<std::pair<TupleId, int64_t>> out;
    EXPECT_TRUE(t->ScanColumns(Ctx(), {0, 1}, [&](TupleId tid, const Row& r) {
                   out.emplace_back(tid, r[0].int_val());
                   return true;
                 }).ok());
    return out;
  }

  // Collects k over the live rows of a batch scan.
  std::vector<int64_t> BatchScan(AoColumnTable* t, int* batches = nullptr) {
    std::vector<int64_t> out;
    EXPECT_TRUE(t->ScanBatches(Ctx(), {0, 1}, [&](ColumnBatch&& b) {
                   if (batches != nullptr) ++(*batches);
                   for (int32_t r : b.sel) {
                     out.push_back(b.columns[0].GetDatum(static_cast<size_t>(r)).int_val());
                   }
                   return true;
                 }).ok());
    return out;
  }

  CommitLog clog_;
  DistributedLog dlog_;
  WalStub wal_{0};
  LocalTxnManager mgr_;
  Gxid next_gxid_ = 1;
};

constexpr size_t kGroup = AoColumnTable::kRowGroupSize;

TEST_F(AoVisibilityTest, BatchScanMatchesRowScan) {
  AoColumnTable t(Def());
  LocalXid x = BeginCommitted();
  // 2.5 row groups: two sealed groups plus a partially-filled open tail.
  const int64_t n = static_cast<int64_t>(kGroup * 2 + kGroup / 2);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert(x, Row{Datum(i), Datum(i * 3)}).ok());
  }
  // Delete a scattering: group 0 head, a mid-group run, and open-tail rows.
  LocalXid deleter = BeginCommitted();
  std::set<int64_t> deleted = {0, 1, 700, 701, 702, static_cast<int64_t>(kGroup) + 5,
                               static_cast<int64_t>(2 * kGroup) + 1};
  for (int64_t d : deleted) {
    ASSERT_TRUE(t.MarkDeleted(static_cast<TupleId>(d), deleter).ok());
  }

  auto rows = RowScan(&t);
  int batches = 0;
  auto batch_keys = BatchScan(&t, &batches);
  ASSERT_EQ(rows.size(), batch_keys.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].second, batch_keys[i]) << "row " << i;
    EXPECT_FALSE(deleted.count(rows[i].second)) << "deleted row leaked";
  }
  EXPECT_EQ(rows.size(), static_cast<size_t>(n) - deleted.size());
  EXPECT_EQ(batches, 3);  // two sealed groups + the open tail
}

TEST_F(AoVisibilityTest, PartiallyFilledOpenGroupEdges) {
  AoColumnTable t(Def());
  LocalXid x = BeginCommitted();
  // Open group only — no sealed groups at all.
  for (int64_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(t.Insert(x, Row{Datum(i), Datum(i)}).ok());
  }
  LocalXid deleter = BeginCommitted();
  ASSERT_TRUE(t.MarkDeleted(0, deleter).ok());
  ASSERT_TRUE(t.MarkDeleted(6, deleter).ok());  // last row of the tail
  auto keys = BatchScan(&t);
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(RowScan(&t).size(), 5u);
  // Deleting past the end is NotFound, not silent corruption.
  EXPECT_FALSE(t.MarkDeleted(7, deleter).ok());
}

TEST_F(AoVisibilityTest, FullyDeletedSealedGroupNeverEmitsABatch) {
  AoColumnTable t(Def());
  LocalXid x = BeginCommitted();
  const int64_t n = static_cast<int64_t>(kGroup * 2);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert(x, Row{Datum(i), Datum(i)}).ok());
  }
  LocalXid deleter = BeginCommitted();
  for (size_t r = 0; r < kGroup; ++r) {
    ASSERT_TRUE(t.MarkDeleted(static_cast<TupleId>(r), deleter).ok());
  }
  int batches = 0;
  auto keys = BatchScan(&t, &batches);
  EXPECT_EQ(batches, 1) << "fully-deleted group must be skipped, not emitted empty";
  EXPECT_EQ(keys.size(), kGroup);
  EXPECT_EQ(keys.front(), static_cast<int64_t>(kGroup));
  EXPECT_EQ(RowScan(&t).size(), kGroup);
}

TEST_F(AoVisibilityTest, AbortedDeleterLeavesTuplesVisible) {
  AoColumnTable t(Def());
  LocalXid x = BeginCommitted();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert(x, Row{Datum(i), Datum(i)}).ok());
  }
  Gxid g = next_gxid_++;
  LocalXid aborted = *mgr_.AssignXid(g);
  ASSERT_TRUE(t.MarkDeleted(3, aborted).ok());
  mgr_.Abort(g);
  EXPECT_EQ(BatchScan(&t).size(), 10u);
  EXPECT_EQ(RowScan(&t).size(), 10u);
}

TEST_F(AoVisibilityTest, AbortedInsertInvisibleOnBothPaths) {
  AoColumnTable t(Def());
  LocalXid committed = BeginCommitted();
  ASSERT_TRUE(t.Insert(committed, Row{Datum(int64_t{1}), Datum(int64_t{1})}).ok());
  Gxid g = next_gxid_++;
  LocalXid aborted = *mgr_.AssignXid(g);
  ASSERT_TRUE(t.Insert(aborted, Row{Datum(int64_t{2}), Datum(int64_t{2})}).ok());
  mgr_.Abort(g);
  auto keys = BatchScan(&t);
  EXPECT_EQ(keys, (std::vector<int64_t>{1}));
  EXPECT_EQ(RowScan(&t).size(), 1u);
}

TEST_F(AoVisibilityTest, ProjectedBatchScanReadsOnlyRequestedColumns) {
  AoColumnTable t(Def());
  LocalXid x = BeginCommitted();
  const int64_t n = static_cast<int64_t>(kGroup + 3);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert(x, Row{Datum(i), Datum(i * 2)}).ok());
  }
  int64_t sum = 0;
  ASSERT_TRUE(t.ScanBatches(Ctx(), {1}, [&](ColumnBatch&& b) {
                 EXPECT_EQ(b.NumColumns(), 1u);
                 for (int32_t r : b.sel) sum += b.columns[0].GetDatum(static_cast<size_t>(r)).int_val();
                 return true;
               }).ok());
  EXPECT_EQ(sum, n * (n - 1));  // sum of 2*i for i in [0, n)
}

}  // namespace
}  // namespace gphtap
