#include "storage/compression.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gphtap {
namespace {

std::vector<Datum> Ints(std::initializer_list<int64_t> vs) {
  std::vector<Datum> out;
  for (int64_t v : vs) out.push_back(Datum(v));
  return out;
}

void ExpectRoundTrip(CompressionKind kind, TypeId type, const std::vector<Datum>& vals) {
  CompressedBlock block;
  ASSERT_TRUE(CompressColumn(kind, type, vals, &block).ok());
  auto back = DecompressColumn(block);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ((*back)[i].is_null(), vals[i].is_null()) << i;
    if (!vals[i].is_null()) EXPECT_EQ((*back)[i].Compare(vals[i]), 0) << i;
  }
}

class CodecRoundTripTest : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(CodecRoundTripTest, EmptyBlock) { ExpectRoundTrip(GetParam(), TypeId::kInt64, {}); }

TEST_P(CodecRoundTripTest, SmallInts) {
  ExpectRoundTrip(GetParam(), TypeId::kInt64, Ints({1, 2, 3, -4, 0, 1 << 20}));
}

TEST_P(CodecRoundTripTest, IntsWithNulls) {
  std::vector<Datum> vals = Ints({5, 5, 5});
  vals.insert(vals.begin() + 1, Datum::Null());
  vals.push_back(Datum::Null());
  ExpectRoundTrip(GetParam(), TypeId::kInt64, vals);
}

TEST_P(CodecRoundTripTest, AllNulls) {
  ExpectRoundTrip(GetParam(), TypeId::kInt64,
                  {Datum::Null(), Datum::Null(), Datum::Null()});
}

TEST_P(CodecRoundTripTest, Strings) {
  std::vector<Datum> vals = {Datum(std::string("alpha")), Datum(std::string("beta")),
                             Datum(std::string("alpha")), Datum(std::string("")),
                             Datum::Null()};
  ExpectRoundTrip(GetParam(), TypeId::kString, vals);
}

TEST_P(CodecRoundTripTest, Doubles) {
  std::vector<Datum> vals = {Datum(1.5), Datum(-2.25), Datum(0.0), Datum(1e300)};
  ExpectRoundTrip(GetParam(), TypeId::kDouble, vals);
}

TEST_P(CodecRoundTripTest, RandomIntFuzz) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<Datum> vals;
    size_t n = rng.Uniform(500);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Chance(0.1)) {
        vals.push_back(Datum::Null());
      } else if (rng.Chance(0.5)) {
        vals.push_back(Datum(static_cast<int64_t>(rng.Uniform(16))));  // runs likely
      } else {
        vals.push_back(Datum(static_cast<int64_t>(rng.Next())));
      }
    }
    ExpectRoundTrip(GetParam(), TypeId::kInt64, vals);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTripTest,
                         ::testing::Values(CompressionKind::kNone, CompressionKind::kRle,
                                           CompressionKind::kDelta, CompressionKind::kDict,
                                           CompressionKind::kLz),
                         [](const auto& info) {
                           return CompressionKindName(info.param);
                         });

TEST(CompressionTest, RleShrinksRuns) {
  std::vector<Datum> vals(10000, Datum(int64_t{7}));
  CompressedBlock rle, raw;
  ASSERT_TRUE(CompressColumn(CompressionKind::kRle, TypeId::kInt64, vals, &rle).ok());
  ASSERT_TRUE(CompressColumn(CompressionKind::kNone, TypeId::kInt64, vals, &raw).ok());
  EXPECT_LT(rle.bytes.size() * 5, raw.bytes.size());
}

TEST(CompressionTest, DeltaShrinksSortedSequences) {
  std::vector<Datum> vals;
  for (int64_t i = 0; i < 10000; ++i) vals.push_back(Datum(1'000'000'000 + i));
  CompressedBlock delta, raw;
  ASSERT_TRUE(CompressColumn(CompressionKind::kDelta, TypeId::kInt64, vals, &delta).ok());
  ASSERT_TRUE(CompressColumn(CompressionKind::kNone, TypeId::kInt64, vals, &raw).ok());
  EXPECT_LT(delta.bytes.size() * 2, raw.bytes.size());
}

TEST(CompressionTest, DictShrinksLowCardinalityStrings) {
  std::vector<Datum> vals;
  const char* names[] = {"frequent_flyer", "occasional", "rare_visitor"};
  for (int i = 0; i < 3000; ++i) vals.push_back(Datum(std::string(names[i % 3])));
  CompressedBlock dict, raw;
  ASSERT_TRUE(CompressColumn(CompressionKind::kDict, TypeId::kString, vals, &dict).ok());
  ASSERT_TRUE(CompressColumn(CompressionKind::kNone, TypeId::kString, vals, &raw).ok());
  EXPECT_LT(dict.bytes.size() * 4, raw.bytes.size());
}

TEST(CompressionTest, DeltaOnStringsFallsBackToRaw) {
  std::vector<Datum> vals = {Datum(std::string("a")), Datum(std::string("b"))};
  CompressedBlock block;
  ASSERT_TRUE(CompressColumn(CompressionKind::kDelta, TypeId::kString, vals, &block).ok());
  EXPECT_EQ(block.kind, CompressionKind::kNone);
  auto back = DecompressColumn(block);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[1].string_val(), "b");
}

TEST(LzTest, RoundTripEmpty) {
  auto out = LzDecompress(LzCompress({}));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(LzTest, RoundTripRepetitive) {
  std::vector<uint8_t> in;
  for (int i = 0; i < 5000; ++i) in.push_back(static_cast<uint8_t>("abcabcab"[i % 8]));
  auto packed = LzCompress(in);
  EXPECT_LT(packed.size(), in.size() / 4);
  auto out = LzDecompress(packed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(LzTest, RoundTripRandom) {
  Rng rng(5);
  std::vector<uint8_t> in;
  for (int i = 0; i < 10000; ++i) in.push_back(static_cast<uint8_t>(rng.Next()));
  auto out = LzDecompress(LzCompress(in));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(LzTest, OverlappingMatch) {
  // "aaaa..." forces distance-1 overlapping copies.
  std::vector<uint8_t> in(1000, 'a');
  auto out = LzDecompress(LzCompress(in));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(LzTest, CorruptInputRejected) {
  std::vector<uint8_t> bogus = {0xff, 0xff, 0xff, 0x01, 0x80};
  EXPECT_FALSE(LzDecompress(bogus).ok());
}

}  // namespace
}  // namespace gphtap
