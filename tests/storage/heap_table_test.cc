#include "storage/heap_table.h"

#include <gtest/gtest.h>

#include "lock/lock_owner.h"
#include "txn/distributed_txn_manager.h"
#include "txn/local_txn_manager.h"
#include "txn/wal.h"

namespace gphtap {
namespace {

class HeapTableTest : public ::testing::Test {
 protected:
  HeapTableTest() : mgr_(&clog_, &dlog_, &wal_) {
    TableDef def;
    def.id = 1;
    def.name = "t";
    def.schema = Schema({{"c1", TypeId::kInt64}, {"c2", TypeId::kInt64}});
    def.distribution = DistributionPolicy::Hash({0});
    def.indexed_cols = {0};
    table_ = std::make_unique<HeapTable>(def, &clog_);
  }

  // Starts a new txn; returns its local xid.
  LocalXid Begin() {
    Gxid g = dtm_.Begin(owner_);
    gxids_.push_back(g);
    return *mgr_.AssignXid(g);
  }
  void Commit(LocalXid xid) {
    for (Gxid g : gxids_) {
      if (mgr_.LookupXid(g) == std::optional<LocalXid>(xid)) {
        mgr_.Commit(g);
        dtm_.MarkCommitted(g);
        return;
      }
    }
    FAIL() << "unknown xid";
  }
  void Abort(LocalXid xid) {
    for (Gxid g : gxids_) {
      if (mgr_.LookupXid(g) == std::optional<LocalXid>(xid)) {
        mgr_.Abort(g);
        dtm_.MarkAborted(g);
        return;
      }
    }
  }

  VisibilityContext Ctx(const DistributedSnapshot* snap, LocalXid my = 0) {
    VisibilityContext c;
    c.clog = &clog_;
    c.dlog = &dlog_;
    c.dsnap = snap;
    c.my_xid = my;
    return c;
  }

  std::vector<Row> VisibleRows(LocalXid my = 0) {
    DistributedSnapshot snap = dtm_.TakeSnapshot();
    std::vector<Row> rows;
    table_->Scan(Ctx(&snap, my), [&](TupleId, const Row& r) {
      rows.push_back(r);
      return true;
    });
    return rows;
  }

  Row R(int64_t a, int64_t b) { return Row{Datum(a), Datum(b)}; }

  CommitLog clog_;
  DistributedLog dlog_;
  WalStub wal_{0};
  LocalTxnManager mgr_;
  DistributedTxnManager dtm_;
  std::shared_ptr<LockOwner> owner_ = std::make_shared<LockOwner>(0);
  std::vector<Gxid> gxids_;
  std::unique_ptr<HeapTable> table_;
};

TEST_F(HeapTableTest, InsertCommitScan) {
  LocalXid x = Begin();
  ASSERT_TRUE(table_->Insert(x, R(1, 10)).ok());
  ASSERT_TRUE(table_->Insert(x, R(2, 20)).ok());
  Commit(x);
  auto rows = VisibleRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].int_val(), 1);
  EXPECT_EQ(rows[1][1].int_val(), 20);
}

TEST_F(HeapTableTest, UncommittedInvisibleToOthers) {
  LocalXid x = Begin();
  ASSERT_TRUE(table_->Insert(x, R(1, 10)).ok());
  EXPECT_TRUE(VisibleRows().empty());
  EXPECT_EQ(VisibleRows(x).size(), 1u);  // visible to self
  Commit(x);
  EXPECT_EQ(VisibleRows().size(), 1u);
}

TEST_F(HeapTableTest, AbortedInsertInvisible) {
  LocalXid x = Begin();
  ASSERT_TRUE(table_->Insert(x, R(1, 10)).ok());
  Abort(x);
  EXPECT_TRUE(VisibleRows().empty());
}

TEST_F(HeapTableTest, SchemaRejected) {
  LocalXid x = Begin();
  EXPECT_FALSE(table_->Insert(x, Row{Datum(int64_t{1})}).ok());
  EXPECT_FALSE(table_->Insert(x, Row{Datum(std::string("a")), Datum(int64_t{1})}).ok());
}

TEST_F(HeapTableTest, UpdateChainVisibility) {
  LocalXid x1 = Begin();
  TupleId t0 = *table_->Insert(x1, R(1, 10));
  Commit(x1);

  // Update: mark old deleted, insert new version, link.
  LocalXid x2 = Begin();
  auto mark = table_->TryMarkDeleted(t0, x2);
  ASSERT_EQ(mark.outcome, MarkDeleteOutcome::kOk);
  TupleId t1 = *table_->Insert(x2, R(1, 11));
  table_->LinkNewVersion(t0, t1);

  // Before commit: others see the old value, the updater sees the new one.
  {
    auto rows = VisibleRows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][1].int_val(), 10);
    auto mine = VisibleRows(x2);
    ASSERT_EQ(mine.size(), 1u);
    EXPECT_EQ(mine[0][1].int_val(), 11);
  }
  Commit(x2);
  auto rows = VisibleRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].int_val(), 11);
}

TEST_F(HeapTableTest, MarkDeletedOutcomes) {
  LocalXid x1 = Begin();
  TupleId t0 = *table_->Insert(x1, R(1, 10));
  Commit(x1);

  // In-progress deleter blocks a second writer.
  LocalXid x2 = Begin();
  ASSERT_EQ(table_->TryMarkDeleted(t0, x2).outcome, MarkDeleteOutcome::kOk);
  LocalXid x3 = Begin();
  auto r = table_->TryMarkDeleted(t0, x3);
  EXPECT_EQ(r.outcome, MarkDeleteOutcome::kWait);
  EXPECT_EQ(r.wait_xid, x2);
  // Self re-delete reports kSelfUpdated.
  EXPECT_EQ(table_->TryMarkDeleted(t0, x2).outcome, MarkDeleteOutcome::kSelfUpdated);

  // After the deleter commits with a linked successor, followers get kFollow.
  TupleId t1 = *table_->Insert(x2, R(1, 11));
  table_->LinkNewVersion(t0, t1);
  Commit(x2);
  auto r2 = table_->TryMarkDeleted(t0, x3);
  EXPECT_EQ(r2.outcome, MarkDeleteOutcome::kFollow);
  EXPECT_EQ(r2.next, t1);

  // Aborted deleter's xmax is overwritable.
  Abort(x3);
  LocalXid x4 = Begin();
  auto r3 = table_->TryMarkDeleted(t1, x4);
  EXPECT_EQ(r3.outcome, MarkDeleteOutcome::kOk);
  Abort(x4);
  LocalXid x5 = Begin();
  EXPECT_EQ(table_->TryMarkDeleted(t1, x5).outcome, MarkDeleteOutcome::kOk);
}

TEST_F(HeapTableTest, IndexLookupFindsVersions) {
  LocalXid x = Begin();
  TupleId t0 = *table_->Insert(x, R(7, 70));
  *table_->Insert(x, R(8, 80));
  Commit(x);
  EXPECT_TRUE(table_->HasIndexOn(0));
  EXPECT_FALSE(table_->HasIndexOn(1));
  auto tids = table_->IndexLookup(0, Datum(int64_t{7}));
  ASSERT_EQ(tids.size(), 1u);
  EXPECT_EQ(tids[0], t0);
  EXPECT_TRUE(table_->IndexLookup(0, Datum(int64_t{99})).empty());
  EXPECT_TRUE(table_->IndexLookup(1, Datum(int64_t{70})).empty());  // not indexed
}

TEST_F(HeapTableTest, IndexCoversNewVersionsAfterUpdate) {
  LocalXid x1 = Begin();
  TupleId t0 = *table_->Insert(x1, R(7, 70));
  Commit(x1);
  LocalXid x2 = Begin();
  table_->TryMarkDeleted(t0, x2);
  TupleId t1 = *table_->Insert(x2, R(7, 71));
  table_->LinkNewVersion(t0, t1);
  Commit(x2);
  auto tids = table_->IndexLookup(0, Datum(int64_t{7}));
  EXPECT_EQ(tids.size(), 2u);  // both versions; visibility filters later
}

TEST_F(HeapTableTest, VacuumReclaimsDeadVersionsAndReusesSlots) {
  LocalXid x1 = Begin();
  TupleId t0 = *table_->Insert(x1, R(1, 10));
  Commit(x1);
  LocalXid x2 = Begin();
  table_->TryMarkDeleted(t0, x2);
  TupleId t1 = *table_->Insert(x2, R(1, 11));
  table_->LinkNewVersion(t0, t1);
  Commit(x2);

  EXPECT_EQ(table_->StoredVersionCount(), 2u);
  LocalXid horizon = Begin();  // everything before this xid is globally visible
  uint64_t freed = table_->Vacuum(horizon);
  EXPECT_EQ(freed, 1u);
  EXPECT_EQ(table_->StoredVersionCount(), 1u);
  EXPECT_EQ(table_->FreeSlots(), 1u);
  // Dead version no longer findable via index.
  EXPECT_EQ(table_->IndexLookup(0, Datum(int64_t{1})).size(), 1u);
  // The freed slot is reused by the next insert.
  TupleId t2 = *table_->Insert(horizon, R(2, 20));
  EXPECT_EQ(t2, t0);
  EXPECT_EQ(table_->FreeSlots(), 0u);
}

TEST_F(HeapTableTest, VacuumKeepsVersionsVisibleToOldSnapshots) {
  LocalXid x1 = Begin();
  TupleId t0 = *table_->Insert(x1, R(1, 10));
  Commit(x1);
  LocalXid x2 = Begin();  // old transaction still running
  table_->TryMarkDeleted(t0, x2);
  // x2 still in progress: its delete is not final, nothing to reclaim.
  EXPECT_EQ(table_->Vacuum(x2), 0u);
}

TEST_F(HeapTableTest, GetReturnsHeaderAndRow) {
  LocalXid x = Begin();
  TupleId t = *table_->Insert(x, R(5, 50));
  auto v = table_->Get(t);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->header.xmin, x);
  EXPECT_EQ(v->header.xmax, kInvalidLocalXid);
  EXPECT_EQ(v->row[1].int_val(), 50);
  EXPECT_FALSE(table_->Get(9999).ok());
}

TEST_F(HeapTableTest, BufferPoolChargesPages) {
  BufferPool pool({.capacity_pages = 2, .miss_cost_us = 0});
  TableDef def;
  def.id = 9;
  def.name = "b";
  def.schema = Schema({{"c1", TypeId::kInt64}, {"c2", TypeId::kInt64}});
  HeapTable t(def, &clog_, &pool);
  LocalXid x = Begin();
  // Fill 4 pages (64 slots each).
  for (int i = 0; i < 256; ++i) ASSERT_TRUE(t.Insert(x, R(i, i)).ok());
  Commit(x);
  auto before = pool.stats();
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  t.Scan(Ctx(&snap), [](TupleId, const Row&) { return true; });
  auto after = pool.stats();
  // Scanning 4 pages through a 2-page pool must miss repeatedly.
  EXPECT_GE(after.misses, before.misses + 2);
  EXPECT_LE(pool.resident_pages(), 2u);
}

TEST_F(HeapTableTest, ScanEarlyStop) {
  LocalXid x = Begin();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(table_->Insert(x, R(i, i)).ok());
  Commit(x);
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  int seen = 0;
  table_->Scan(Ctx(&snap), [&](TupleId, const Row&) { return ++seen < 3; });
  EXPECT_EQ(seen, 3);
}

TEST_F(HeapTableTest, ProjectedScanDefaultImpl) {
  LocalXid x = Begin();
  ASSERT_TRUE(table_->Insert(x, R(1, 10)).ok());
  Commit(x);
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  table_->ScanColumns(Ctx(&snap), {1}, [&](TupleId, const Row& r) {
    EXPECT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].int_val(), 10);
    return true;
  });
}

}  // namespace
}  // namespace gphtap
