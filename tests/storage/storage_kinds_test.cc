// AO-row, AO-column, external, and partitioned tables through the Table API.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/ao_table.h"
#include "storage/column_store.h"
#include "storage/external_table.h"
#include "storage/partitioned_table.h"
#include "storage/table_factory.h"
#include "txn/local_txn_manager.h"

namespace gphtap {
namespace {

class StorageKindsTest : public ::testing::Test {
 protected:
  StorageKindsTest() : mgr_(&clog_, &dlog_, &wal_) {}

  LocalXid BeginCommitted() {
    Gxid g = next_gxid_++;
    LocalXid x = *mgr_.AssignXid(g);
    mgr_.Commit(g);
    return x;
  }

  VisibilityContext Ctx() {
    VisibilityContext c;
    c.clog = &clog_;
    c.dlog = &dlog_;
    c.dsnap = nullptr;  // utility mode: local rules only
    c.lsnap = nullptr;
    return c;
  }

  TableDef Def(StorageKind storage, CompressionKind comp = CompressionKind::kNone) {
    TableDef def;
    def.id = 1;
    def.name = "t";
    def.schema = Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}});
    def.storage = storage;
    def.compression = comp;
    return def;
  }

  CommitLog clog_;
  DistributedLog dlog_;
  WalStub wal_{0};
  LocalTxnManager mgr_;
  Gxid next_gxid_ = 1;
};

TEST_F(StorageKindsTest, AoRowInsertAndScan) {
  AoRowTable t(Def(StorageKind::kAoRow));
  LocalXid x = BeginCommitted();
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Insert(x, Row{Datum(i), Datum(i * 10)}).ok());
  }
  int count = 0;
  ASSERT_TRUE(t.Scan(Ctx(), [&](TupleId, const Row& r) {
                 EXPECT_EQ(r[1].int_val(), r[0].int_val() * 10);
                 ++count;
                 return true;
               }).ok());
  EXPECT_EQ(count, 100);
  EXPECT_EQ(t.StoredVersionCount(), 100u);
  EXPECT_FALSE(t.SupportsMvccWrite());
}

TEST_F(StorageKindsTest, AoRowAbortedInsertInvisible) {
  AoRowTable t(Def(StorageKind::kAoRow));
  Gxid g = next_gxid_++;
  LocalXid x = *mgr_.AssignXid(g);
  ASSERT_TRUE(t.Insert(x, Row{Datum(int64_t{1}), Datum(int64_t{2})}).ok());
  mgr_.Abort(g);
  int count = 0;
  t.Scan(Ctx(), [&](TupleId, const Row&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST_F(StorageKindsTest, AoColumnSealsGroupsAndRoundTrips) {
  AoColumnTable t(Def(StorageKind::kAoColumn, CompressionKind::kRle));
  LocalXid x = BeginCommitted();
  const int n = static_cast<int>(AoColumnTable::kRowGroupSize) * 2 + 100;
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert(x, Row{Datum(i), Datum(i % 3)}).ok());
  }
  int64_t sum = 0;
  int count = 0;
  ASSERT_TRUE(t.Scan(Ctx(), [&](TupleId, const Row& r) {
                 sum += r[0].int_val();
                 ++count;
                 return true;
               }).ok());
  EXPECT_EQ(count, n);
  EXPECT_EQ(sum, static_cast<int64_t>(n) * (n - 1) / 2);
}

TEST_F(StorageKindsTest, AoColumnProjectedScanReadsFewerBytes) {
  AoColumnTable wide(TableDef{
      2,
      "wide",
      Schema({{"a", TypeId::kInt64},
              {"b", TypeId::kString},
              {"c", TypeId::kInt64}}),
      DistributionPolicy::Hash({0}),
      StorageKind::kAoColumn,
      CompressionKind::kNone,
      std::nullopt,
      "",
      {}});
  LocalXid x = BeginCommitted();
  for (int64_t i = 0; i < static_cast<int64_t>(AoColumnTable::kRowGroupSize) * 2; ++i) {
    ASSERT_TRUE(
        wide.Insert(x, Row{Datum(i), Datum(std::string(100, 'x')), Datum(i)}).ok());
  }
  uint64_t before = wide.BytesScanned();
  wide.ScanColumns(Ctx(), {0}, [](TupleId, const Row&) { return true; });
  uint64_t narrow_cost = wide.BytesScanned() - before;
  before = wide.BytesScanned();
  wide.Scan(Ctx(), [](TupleId, const Row&) { return true; });
  uint64_t full_cost = wide.BytesScanned() - before;
  // The string column dominates: projecting it away must save >5x.
  EXPECT_LT(narrow_cost * 5, full_cost);
}

TEST_F(StorageKindsTest, AoColumnCompressionReducesFootprint) {
  AoColumnTable rle(Def(StorageKind::kAoColumn, CompressionKind::kRle));
  AoColumnTable raw(Def(StorageKind::kAoColumn, CompressionKind::kNone));
  LocalXid x = BeginCommitted();
  for (int64_t i = 0; i < static_cast<int64_t>(AoColumnTable::kRowGroupSize) * 4; ++i) {
    Row r{Datum(int64_t{7}), Datum(int64_t{7})};  // constant: RLE's best case
    ASSERT_TRUE(rle.Insert(x, r).ok());
    ASSERT_TRUE(raw.Insert(x, r).ok());
  }
  EXPECT_LT(rle.ColumnCompressedBytes(0) * 4, raw.ColumnCompressedBytes(0));
}

TEST_F(StorageKindsTest, ExternalTableRoundTrip) {
  std::string path = ::testing::TempDir() + "/gphtap_ext_test.csv";
  std::remove(path.c_str());
  TableDef def = Def(StorageKind::kExternal);
  def.external_path = path;
  ExternalTable t(def);
  LocalXid x = BeginCommitted();
  ASSERT_TRUE(t.Insert(x, Row{Datum(int64_t{1}), Datum(int64_t{10})}).ok());
  ASSERT_TRUE(t.Insert(x, Row{Datum(int64_t{2}), Datum::Null()}).ok());
  std::vector<Row> rows;
  ASSERT_TRUE(t.Scan(Ctx(), [&](TupleId, const Row& r) {
                 rows.push_back(r);
                 return true;
               }).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].int_val(), 10);
  EXPECT_TRUE(rows[1][1].is_null());
  EXPECT_EQ(t.StoredVersionCount(), 2u);
  std::remove(path.c_str());
}

TEST_F(StorageKindsTest, ExternalTableMissingFileIsEmpty) {
  TableDef def = Def(StorageKind::kExternal);
  def.external_path = "/nonexistent/dir/never.csv";
  ExternalTable t(def);
  int count = 0;
  EXPECT_TRUE(t.Scan(Ctx(), [&](TupleId, const Row&) {
                 ++count;
                 return true;
               }).ok());
  EXPECT_EQ(count, 0);
}

TEST_F(StorageKindsTest, CsvParseErrors) {
  Schema s({{"k", TypeId::kInt64}});
  EXPECT_FALSE(ExternalTable::ParseCsvLine("notanint", s).ok());
  EXPECT_FALSE(ExternalTable::ParseCsvLine("1,2", s).ok());
  auto ok = ExternalTable::ParseCsvLine("42", s);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0].int_val(), 42);
}

TEST_F(StorageKindsTest, PartitionedPolymorphicStorageRoutesAndScans) {
  // Figure 5 shape: hot heap partition, cold AO-column partition.
  TableDef def = Def(StorageKind::kHeap);
  PartitionSpec spec;
  spec.partition_col = 0;
  spec.ranges.push_back({"hot", Datum(int64_t{100}), Datum::Null(), StorageKind::kHeap, ""});
  spec.ranges.push_back(
      {"cold", Datum::Null(), Datum(int64_t{100}), StorageKind::kAoColumn, ""});
  def.partitions = spec;
  auto table = CreateTable(def, &clog_, nullptr);
  auto* part = dynamic_cast<PartitionedTable*>(table.get());
  ASSERT_NE(part, nullptr);
  ASSERT_EQ(part->num_leaves(), 2u);

  LocalXid x = BeginCommitted();
  ASSERT_TRUE(table->Insert(x, Row{Datum(int64_t{500}), Datum(int64_t{1})}).ok());
  ASSERT_TRUE(table->Insert(x, Row{Datum(int64_t{5}), Datum(int64_t{2})}).ok());

  EXPECT_EQ(part->leaf(0)->StoredVersionCount(), 1u);  // hot heap got 500
  EXPECT_EQ(part->leaf(1)->StoredVersionCount(), 1u);  // cold AO-col got 5
  EXPECT_TRUE(part->leaf(0)->SupportsMvccWrite());
  EXPECT_FALSE(part->leaf(1)->SupportsMvccWrite());

  int count = 0;
  ASSERT_TRUE(table->Scan(Ctx(), [&](TupleId, const Row&) {
                 ++count;
                 return true;
               }).ok());
  EXPECT_EQ(count, 2);

  // Out-of-range value is rejected.
  EXPECT_FALSE(table->Insert(x, Row{Datum::Null(), Datum(int64_t{0})}).ok());
}

TEST_F(StorageKindsTest, AoVisimapDeleteHidesRows) {
  AoRowTable t(Def(StorageKind::kAoRow));
  LocalXid x = BeginCommitted();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert(x, Row{Datum(i), Datum(i)}).ok());
  }
  LocalXid deleter = BeginCommitted();
  ASSERT_TRUE(t.MarkDeleted(3, deleter).ok());
  ASSERT_TRUE(t.MarkDeleted(7, deleter).ok());
  EXPECT_FALSE(t.MarkDeleted(99, deleter).ok());  // out of range
  int count = 0;
  t.Scan(Ctx(), [&](TupleId tid, const Row&) {
    EXPECT_NE(tid, 3u);
    EXPECT_NE(tid, 7u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 8);
  EXPECT_EQ(t.VisimapSize(), 2u);
}

TEST_F(StorageKindsTest, AoVisimapDeleteByAbortedTxnStaysVisible) {
  AoRowTable t(Def(StorageKind::kAoRow));
  LocalXid x = BeginCommitted();
  ASSERT_TRUE(t.Insert(x, Row{Datum(int64_t{1}), Datum(int64_t{1})}).ok());
  // Deleter aborts: the visimap entry must not hide the row.
  Gxid g = next_gxid_++;
  LocalXid aborted = *mgr_.AssignXid(g);
  ASSERT_TRUE(t.MarkDeleted(0, aborted).ok());
  mgr_.Abort(g);
  int count = 0;
  t.Scan(Ctx(), [&](TupleId, const Row&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST_F(StorageKindsTest, AoColumnVisimapAcrossSealedGroups) {
  AoColumnTable t(Def(StorageKind::kAoColumn, CompressionKind::kRle));
  LocalXid x = BeginCommitted();
  const int64_t n = static_cast<int64_t>(AoColumnTable::kRowGroupSize) + 100;
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert(x, Row{Datum(i), Datum(i)}).ok());
  }
  LocalXid deleter = BeginCommitted();
  // One tid in a sealed group, one in the open tail.
  ASSERT_TRUE(t.MarkDeleted(5, deleter).ok());
  ASSERT_TRUE(t.MarkDeleted(static_cast<TupleId>(n - 1), deleter).ok());
  int64_t count = 0;
  t.Scan(Ctx(), [&](TupleId, const Row&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, n - 2);
}

TEST_F(StorageKindsTest, FactoryCreatesEveryKind) {
  EXPECT_NE(CreateTable(Def(StorageKind::kHeap), &clog_, nullptr), nullptr);
  EXPECT_NE(CreateTable(Def(StorageKind::kAoRow), &clog_, nullptr), nullptr);
  EXPECT_NE(CreateTable(Def(StorageKind::kAoColumn), &clog_, nullptr), nullptr);
  TableDef e = Def(StorageKind::kExternal);
  e.external_path = "/tmp/x.csv";
  EXPECT_NE(CreateTable(e, &clog_, nullptr), nullptr);
}

}  // namespace
}  // namespace gphtap
