#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"

namespace gphtap {
namespace {

TEST(BufferPoolTest, FirstAccessMissesSecondHits) {
  BufferPool pool({.capacity_pages = 10, .miss_cost_us = 0});
  pool.Access(1, 0);
  pool.Access(1, 0);
  auto s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_DOUBLE_EQ(s.HitRate(), 0.5);
}

TEST(BufferPoolTest, EvictsLru) {
  BufferPool pool({.capacity_pages = 2, .miss_cost_us = 0});
  pool.Access(1, 0);  // miss
  pool.Access(1, 1);  // miss
  pool.Access(1, 0);  // hit, 0 becomes MRU
  pool.Access(1, 2);  // miss, evicts page 1 (LRU)
  pool.Access(1, 0);  // hit (still resident)
  pool.Access(1, 1);  // miss (was evicted)
  auto s = pool.stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(pool.resident_pages(), 2u);
}

TEST(BufferPoolTest, DistinctTablesDistinctPages) {
  BufferPool pool({.capacity_pages = 10, .miss_cost_us = 0});
  pool.Access(1, 0);
  pool.Access(2, 0);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPoolTest, MissCostIsCharged) {
  BufferPool pool({.capacity_pages = 4, .miss_cost_us = 2000});
  Stopwatch sw;
  pool.Access(1, 0);  // miss -> ~2ms
  int64_t miss_time = sw.ElapsedMicros();
  sw.Restart();
  pool.Access(1, 0);  // hit -> fast
  int64_t hit_time = sw.ElapsedMicros();
  EXPECT_GE(miss_time, 1500);
  EXPECT_LT(hit_time, 1500);
}

TEST(BufferPoolTest, WorkingSetLargerThanPoolKeepsMissing) {
  BufferPool pool({.capacity_pages = 8, .miss_cost_us = 0});
  // Cycle through 16 pages twice: with LRU, every access misses.
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = 0; p < 16; ++p) pool.Access(1, p);
  }
  EXPECT_EQ(pool.stats().misses, 32u);
  // Working set that fits stays hot.
  BufferPool small({.capacity_pages = 32, .miss_cost_us = 0});
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = 0; p < 16; ++p) small.Access(1, p);
  }
  EXPECT_EQ(small.stats().misses, 16u);
  EXPECT_EQ(small.stats().hits, 16u);
}

TEST(BufferPoolTest, SingleDeviceQueueSerializesFaults) {
  BufferPool::Options opts;
  opts.capacity_pages = 2;
  opts.miss_cost_us = 20'000;
  opts.single_device = true;
  BufferPool pool(opts);
  // Four concurrent faults on one device: ~4 x 20ms sequential.
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (uint64_t p = 0; p < 4; ++p) {
    threads.emplace_back([&pool, p] { pool.Access(1, p); });
  }
  for (auto& t : threads) t.join();
  int64_t serialized = sw.ElapsedMicros();
  EXPECT_GE(serialized, 70'000);

  opts.single_device = false;
  BufferPool parallel_pool(opts);
  sw.Restart();
  threads.clear();
  for (uint64_t p = 0; p < 4; ++p) {
    threads.emplace_back([&parallel_pool, p] { parallel_pool.Access(1, p); });
  }
  for (auto& t : threads) t.join();
  // Overlapping faults: well under the serialized time.
  EXPECT_LT(sw.ElapsedMicros(), serialized);
}

}  // namespace
}  // namespace gphtap
