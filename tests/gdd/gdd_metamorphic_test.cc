// Metamorphic properties of Algorithm 1: transformations whose effect on the
// verdict is known a priori, applied to random graphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "gdd/gdd_algorithm.h"

namespace gphtap {
namespace {

std::vector<LocalWaitGraph> RandomAcyclic(Rng& rng, int nodes, int edges_per_node) {
  std::vector<LocalWaitGraph> graphs;
  for (int n = 0; n < nodes; ++n) {
    LocalWaitGraph g;
    g.node_id = n;
    for (int e = 0; e < edges_per_node; ++e) {
      uint64_t a = 1 + rng.Uniform(12);
      uint64_t b = 1 + rng.Uniform(12);
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      g.edges.push_back(WaitEdge{a, b, rng.Chance(0.4)});
    }
    graphs.push_back(std::move(g));
  }
  return graphs;
}

class GddMetamorphicTest : public ::testing::TestWithParam<int> {};

// Removing any edge from a non-deadlocked graph keeps it non-deadlocked
// (edge-monotonicity of the verdict).
TEST_P(GddMetamorphicTest, EdgeRemovalNeverCreatesDeadlock) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 20; ++iter) {
    auto graphs = RandomAcyclic(rng, 3, 8);
    ASSERT_FALSE(RunGddAlgorithm(graphs).deadlock);
    for (size_t n = 0; n < graphs.size(); ++n) {
      if (graphs[n].edges.empty()) continue;
      auto copy = graphs;
      copy[n].edges.erase(copy[n].edges.begin() +
                          static_cast<long>(rng.Uniform(copy[n].edges.size())));
      EXPECT_FALSE(RunGddAlgorithm(copy).deadlock);
    }
  }
}

// Renaming transactions consistently (an order-preserving gxid shift) must not
// change the verdict, and must shift the victim by the same amount.
TEST_P(GddMetamorphicTest, GxidShiftInvariance) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31);
  for (int iter = 0; iter < 20; ++iter) {
    auto graphs = RandomAcyclic(rng, 2, 6);
    // Plant a cycle half the time.
    bool planted = rng.Chance(0.5);
    if (planted) {
      graphs[0].edges.push_back(WaitEdge{100, 101, false});
      graphs[0].edges.push_back(WaitEdge{101, 100, false});
    }
    GddResult base = RunGddAlgorithm(graphs);
    auto shifted = graphs;
    constexpr uint64_t kShift = 1000;
    for (auto& g : shifted) {
      for (auto& e : g.edges) {
        e.waiter += kShift;
        e.holder += kShift;
      }
    }
    GddResult after = RunGddAlgorithm(shifted);
    EXPECT_EQ(base.deadlock, after.deadlock);
    if (base.deadlock) EXPECT_EQ(base.victim + kShift, after.victim);
  }
}

// Merging two independent clusters of transactions (disjoint gxid ranges) into
// one collection: deadlock iff either side deadlocks.
TEST_P(GddMetamorphicTest, DisjointUnionPreservesVerdict) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 77);
  for (int iter = 0; iter < 20; ++iter) {
    auto a = RandomAcyclic(rng, 2, 6);
    auto b = RandomAcyclic(rng, 2, 6);
    for (auto& g : b) {
      g.node_id += 10;  // different segments
      for (auto& e : g.edges) {
        e.waiter += 500;  // disjoint gxids
        e.holder += 500;
      }
    }
    bool plant_in_b = rng.Chance(0.5);
    if (plant_in_b) {
      b[0].edges.push_back(WaitEdge{900, 901, false});
      b[0].edges.push_back(WaitEdge{901, 900, false});
    }
    std::vector<LocalWaitGraph> merged = a;
    merged.insert(merged.end(), b.begin(), b.end());
    GddResult ra = RunGddAlgorithm(a);
    GddResult rb = RunGddAlgorithm(b);
    GddResult rm = RunGddAlgorithm(merged);
    EXPECT_EQ(rm.deadlock, ra.deadlock || rb.deadlock);
    if (plant_in_b) {
      EXPECT_TRUE(rm.deadlock);
      EXPECT_EQ(rm.victim, rb.victim);
    }
  }
}

// Turning a dotted edge into a solid one can only make deadlock MORE likely,
// never less (solid edges are strictly harder to remove).
TEST_P(GddMetamorphicTest, SolidifyingEdgesIsMonotone) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<LocalWaitGraph> graphs;
    LocalWaitGraph g;
    g.node_id = 0;
    for (int e = 0; e < 10; ++e) {
      uint64_t x = 1 + rng.Uniform(6), y = 1 + rng.Uniform(6);
      if (x == y) continue;
      g.edges.push_back(WaitEdge{x, y, rng.Chance(0.6)});
    }
    graphs.push_back(g);
    bool before = RunGddAlgorithm(graphs).deadlock;
    for (auto& e : graphs[0].edges) e.dotted = false;
    bool after = RunGddAlgorithm(graphs).deadlock;
    EXPECT_TRUE(!before || after) << "solidifying edges removed a deadlock";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GddMetamorphicTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace gphtap
