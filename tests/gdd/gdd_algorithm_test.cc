// Tests Algorithm 1 against the paper's worked examples (Figures 6, 7, 8, 19)
// plus randomized properties.
#include "gdd/gdd_algorithm.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace gphtap {
namespace {

constexpr uint64_t A = 1, B = 2, C = 3, D = 4;

LocalWaitGraph Node(int id, std::vector<WaitEdge> edges) {
  LocalWaitGraph g;
  g.node_id = id;
  g.edges = std::move(edges);
  return g;
}

WaitEdge Solid(uint64_t w, uint64_t h) { return WaitEdge{w, h, false}; }
WaitEdge Dotted(uint64_t w, uint64_t h) { return WaitEdge{w, h, true}; }

TEST(GddAlgorithmTest, EmptyGraphNoDeadlock) {
  GddResult r = RunGddAlgorithm({});
  EXPECT_FALSE(r.deadlock);
  EXPECT_TRUE(r.remaining.empty());
}

TEST(GddAlgorithmTest, SingleWaitNoDeadlock) {
  GddResult r = RunGddAlgorithm({Node(0, {Solid(A, B)})});
  EXPECT_FALSE(r.deadlock);
}

// Figure 6: A updates on seg0 then waits on seg1; B updates on seg1 then waits
// on seg0. seg0: B -> A, seg1: A -> B. Global deadlock.
TEST(GddAlgorithmTest, PaperFigure6UpdateAcrossSegments) {
  GddResult r = RunGddAlgorithm({
      Node(0, {Solid(B, A)}),
      Node(1, {Solid(A, B)}),
  });
  EXPECT_TRUE(r.deadlock);
  std::vector<uint64_t> expect = {A, B};
  EXPECT_EQ(r.cycle_vertices, expect);
  EXPECT_EQ(r.victim, B);  // youngest = largest gxid
}

// Figure 7: four transactions, coordinator (-1) involved.
//   seg1: A -> B,  seg0: B -> D,  coordinator: D -> C,  seg0: C -> A.
TEST(GddAlgorithmTest, PaperFigure7CoordinatorInvolved) {
  GddResult r = RunGddAlgorithm({
      Node(-1, {Solid(D, C)}),
      Node(0, {Solid(B, D), Solid(C, A)}),
      Node(1, {Solid(A, B)}),
  });
  EXPECT_TRUE(r.deadlock);
  std::vector<uint64_t> expect = {A, B, C, D};
  EXPECT_EQ(r.cycle_vertices, expect);
  EXPECT_EQ(r.victim, D);
}

// Figure 8: dotted edges on segments; reduces to empty — NOT a deadlock.
//   seg0: B -> A (solid);  seg1: B -> C (solid), A -> B (dotted tuple lock).
TEST(GddAlgorithmTest, PaperFigure8DottedNonDeadlock) {
  GddResult r = RunGddAlgorithm({
      Node(0, {Solid(B, A)}),
      Node(1, {Solid(B, C), Dotted(A, B)}),
  });
  EXPECT_FALSE(r.deadlock);
  EXPECT_TRUE(r.remaining.empty()) << r.ToString();
}

// Figure 19 (Appendix A): mixed edge types, reduces to empty.
//   seg0: B -> A (solid);  seg1: A -> B (dotted), D -> B (solid), B -> C (solid).
TEST(GddAlgorithmTest, PaperFigure19MixedNonDeadlock) {
  GddResult r = RunGddAlgorithm({
      Node(0, {Solid(B, A)}),
      Node(1, {Dotted(A, B), Solid(D, B), Solid(B, C)}),
  });
  EXPECT_FALSE(r.deadlock);
  EXPECT_TRUE(r.remaining.empty()) << r.ToString();
}

// Same topology as Figure 19 but with the A->B edge SOLID: now the reduction
// cannot drop it before B's other edges, yet the greedy order still unwinds:
// C leaves, then B->A ... actually A->B solid with B->A solid forms a cycle.
TEST(GddAlgorithmTest, Figure19WithSolidEdgeBecomesDeadlock) {
  GddResult r = RunGddAlgorithm({
      Node(0, {Solid(B, A)}),
      Node(1, {Solid(A, B), Solid(D, B), Solid(B, C)}),
  });
  EXPECT_TRUE(r.deadlock);
  EXPECT_TRUE(std::find(r.cycle_vertices.begin(), r.cycle_vertices.end(), A) !=
              r.cycle_vertices.end());
  EXPECT_TRUE(std::find(r.cycle_vertices.begin(), r.cycle_vertices.end(), B) !=
              r.cycle_vertices.end());
}

// A dotted cycle on a single segment is a real deadlock: neither holder can
// release mid-transaction because each is itself blocked on that segment.
TEST(GddAlgorithmTest, DottedCycleSameSegmentIsDeadlock) {
  GddResult r = RunGddAlgorithm({Node(0, {Dotted(A, B), Dotted(B, A)})});
  EXPECT_TRUE(r.deadlock);
}

// A dotted "cycle" split across segments is NOT a deadlock: on each segment the
// holder has zero local out-degree, so it can release its tuple lock there.
TEST(GddAlgorithmTest, DottedCycleAcrossSegmentsNotDeadlock) {
  GddResult r = RunGddAlgorithm({
      Node(0, {Dotted(A, B)}),
      Node(1, {Dotted(B, A)}),
  });
  EXPECT_FALSE(r.deadlock) << r.ToString();
}

// Solid cycle across segments plus an unrelated waiter chain hanging off it:
// the chain is pruned, the cycle stays, the victim is on the cycle.
TEST(GddAlgorithmTest, VictimChosenFromCycleNotFromChain) {
  constexpr uint64_t E = 99;  // youngest overall but NOT on the cycle
  GddResult r = RunGddAlgorithm({
      Node(0, {Solid(B, A), Solid(E, A)}),
      Node(1, {Solid(A, B)}),
  });
  ASSERT_TRUE(r.deadlock);
  EXPECT_EQ(r.victim, B);  // E waits on the cycle but is not part of it
  EXPECT_TRUE(std::find(r.cycle_vertices.begin(), r.cycle_vertices.end(), E) ==
              r.cycle_vertices.end());
}

TEST(GddAlgorithmTest, SelfLoopIsDeadlock) {
  // Degenerate but must not crash: a self-wait counts as a cycle.
  GddResult r = RunGddAlgorithm({Node(0, {Solid(A, A)})});
  EXPECT_TRUE(r.deadlock);
  EXPECT_EQ(r.victim, A);
}

TEST(VerticesOnCyclesTest, FindsAllSccMembers) {
  std::vector<WaitEdge> edges = {Solid(1, 2), Solid(2, 3), Solid(3, 1),
                                 Solid(4, 1),  // dangles into the cycle
                                 Solid(5, 6)};
  auto verts = VerticesOnCycles(edges);
  std::vector<uint64_t> expect = {1, 2, 3};
  EXPECT_EQ(verts, expect);
}

TEST(VerticesOnCyclesTest, TwoDisjointCycles) {
  auto verts = VerticesOnCycles({Solid(1, 2), Solid(2, 1), Solid(7, 8), Solid(8, 7)});
  std::vector<uint64_t> expect = {1, 2, 7, 8};
  EXPECT_EQ(verts, expect);
}

// ---------- Property-based sweeps ----------

class GddRandomTest : public ::testing::TestWithParam<int> {};

// Random DAG edges (waiter < holder ordering guarantees acyclicity): the
// algorithm must never report a deadlock, and must reduce the graph fully.
TEST_P(GddRandomTest, AcyclicGraphsNeverReportDeadlock) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<LocalWaitGraph> locals;
    int num_nodes = 1 + static_cast<int>(rng.Uniform(4));
    for (int n = 0; n < num_nodes; ++n) {
      LocalWaitGraph g;
      g.node_id = n;
      int num_edges = static_cast<int>(rng.Uniform(10));
      for (int e = 0; e < num_edges; ++e) {
        uint64_t a = 1 + rng.Uniform(9);
        uint64_t b = 1 + rng.Uniform(9);
        if (a == b) continue;
        if (a > b) std::swap(a, b);  // edges always point to larger gxid => acyclic
        g.edges.push_back(WaitEdge{a, b, rng.Chance(0.5)});
      }
      locals.push_back(std::move(g));
    }
    GddResult r = RunGddAlgorithm(locals);
    EXPECT_FALSE(r.deadlock);
    EXPECT_TRUE(r.remaining.empty()) << r.ToString();
  }
}

// Plant a solid cycle on one segment among random acyclic noise: the algorithm
// must report a deadlock and the victim must be a member of the planted cycle
// (or of some other cycle created by the noise — but noise is acyclic and only
// ever points "upward" away from the cycle ids, so the planted one is it).
TEST_P(GddRandomTest, PlantedSolidCycleAlwaysDetected) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<LocalWaitGraph> locals;
    // Planted cycle over gxids 100..100+k on segment 0 (ids above all noise).
    int k = 2 + static_cast<int>(rng.Uniform(4));
    LocalWaitGraph g0;
    g0.node_id = 0;
    for (int i = 0; i < k; ++i) {
      g0.edges.push_back(Solid(100 + static_cast<uint64_t>(i),
                               100 + static_cast<uint64_t>((i + 1) % k)));
    }
    locals.push_back(g0);
    // Acyclic noise on segment 1 among gxids 1..9.
    LocalWaitGraph g1;
    g1.node_id = 1;
    for (int e = 0; e < 8; ++e) {
      uint64_t a = 1 + rng.Uniform(9), b = 1 + rng.Uniform(9);
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      g1.edges.push_back(WaitEdge{a, b, rng.Chance(0.5)});
    }
    locals.push_back(g1);

    GddResult r = RunGddAlgorithm(locals);
    ASSERT_TRUE(r.deadlock);
    EXPECT_GE(r.victim, 100u);
    EXPECT_LT(r.victim, 100u + static_cast<uint64_t>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GddRandomTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace gphtap
