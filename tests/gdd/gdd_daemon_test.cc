#include "gdd/gdd_daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

namespace gphtap {
namespace {

WaitEdge Solid(uint64_t w, uint64_t h) { return WaitEdge{w, h, false}; }

struct FakeCluster {
  std::mutex mu;
  std::vector<LocalWaitGraph> graphs;
  std::set<uint64_t> running;
  std::vector<uint64_t> killed;

  GddDaemon::Hooks MakeHooks() {
    GddDaemon::Hooks hooks;
    hooks.collect = [this] {
      std::lock_guard<std::mutex> g(mu);
      return graphs;
    };
    hooks.txn_running = [this](uint64_t gxid) {
      std::lock_guard<std::mutex> g(mu);
      return running.count(gxid) > 0;
    };
    hooks.kill = [this](uint64_t gxid, Status) {
      std::lock_guard<std::mutex> g(mu);
      killed.push_back(gxid);
      running.erase(gxid);
      // Killing the victim dissolves the cycle.
      for (auto& lg : graphs) {
        auto& es = lg.edges;
        es.erase(std::remove_if(es.begin(), es.end(),
                                [&](const WaitEdge& e) {
                                  return e.waiter == gxid || e.holder == gxid;
                                }),
                 es.end());
      }
    };
    return hooks;
  }
};

TEST(GddDaemonTest, NoDeadlockNoKill) {
  FakeCluster fc;
  fc.graphs = {{0, {Solid(1, 2)}}};
  fc.running = {1, 2};
  GddDaemon d(fc.MakeHooks(), 10'000);
  auto r = d.RunOnce();
  EXPECT_FALSE(r.deadlock);
  EXPECT_TRUE(fc.killed.empty());
  EXPECT_EQ(d.stats().runs, 1u);
}

TEST(GddDaemonTest, DeadlockKillsYoungest) {
  FakeCluster fc;
  fc.graphs = {{0, {Solid(2, 1)}}, {1, {Solid(1, 2)}}};
  fc.running = {1, 2};
  GddDaemon d(fc.MakeHooks(), 10'000);
  auto r = d.RunOnce();
  EXPECT_TRUE(r.deadlock);
  ASSERT_EQ(fc.killed.size(), 1u);
  EXPECT_EQ(fc.killed[0], 2u);
  EXPECT_EQ(d.stats().victims_killed, 1u);
}

TEST(GddDaemonTest, StaleDetectionDiscardedWhenTxnFinished) {
  FakeCluster fc;
  fc.graphs = {{0, {Solid(2, 1)}}, {1, {Solid(1, 2)}}};
  fc.running = {1};  // txn 2 already finished: the graph is stale
  GddDaemon d(fc.MakeHooks(), 10'000);
  d.RunOnce();
  EXPECT_TRUE(fc.killed.empty());
  EXPECT_EQ(d.stats().stale_discards, 1u);
  EXPECT_EQ(d.stats().victims_killed, 0u);
}

TEST(GddDaemonTest, SecondCollectionClearsFalsePositive) {
  // First collect shows a cycle, but by the validation pass the edges are gone.
  FakeCluster fc;
  fc.graphs = {{0, {Solid(2, 1)}}, {1, {Solid(1, 2)}}};
  fc.running = {1, 2};
  GddDaemon::Hooks hooks = fc.MakeHooks();
  std::atomic<int> collects{0};
  auto inner = hooks.collect;
  hooks.collect = [&, inner] {
    if (collects.fetch_add(1) >= 1) {
      return std::vector<LocalWaitGraph>{};  // cycle vanished
    }
    return inner();
  };
  GddDaemon d(hooks, 10'000);
  auto r = d.RunOnce();
  EXPECT_FALSE(r.deadlock);
  EXPECT_TRUE(fc.killed.empty());
  EXPECT_EQ(d.stats().stale_discards, 1u);
}

TEST(GddDaemonTest, BackgroundThreadRunsPeriodically) {
  FakeCluster fc;
  fc.running = {};
  GddDaemon d(fc.MakeHooks(), 5'000);  // 5ms period
  d.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  d.Stop();
  EXPECT_GE(d.stats().runs, 3u);
}

TEST(GddDaemonTest, BackgroundThreadBreaksLiveDeadlock) {
  FakeCluster fc;
  fc.graphs = {{0, {Solid(2, 1)}}, {1, {Solid(1, 2)}}};
  fc.running = {1, 2};
  GddDaemon d(fc.MakeHooks(), 2'000);
  d.Start();
  // Wait until the daemon notices and kills.
  for (int i = 0; i < 200; ++i) {
    {
      std::lock_guard<std::mutex> g(fc.mu);
      if (!fc.killed.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  d.Stop();
  ASSERT_EQ(fc.killed.size(), 1u);
  EXPECT_EQ(fc.killed[0], 2u);
  // After the kill the remaining graph has no cycle; further runs are quiet.
  auto r = d.RunOnce();
  EXPECT_FALSE(r.deadlock);
}

TEST(GddDaemonTest, StartStopIdempotent) {
  FakeCluster fc;
  GddDaemon d(fc.MakeHooks(), 5'000);
  d.Start();
  d.Start();
  d.Stop();
  d.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace gphtap
