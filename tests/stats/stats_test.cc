// Unit tests for the stats subsystem: fingerprint normalization (literals,
// $N params, whitespace/case, PREPARE unwrapping), the cumulative
// per-fingerprint statement registry, the metrics-history ring, and the
// maintenance-progress registry.
#include <gtest/gtest.h>

#include "stats/fingerprint.h"
#include "stats/metrics_history.h"
#include "stats/progress.h"
#include "stats/statement_stats.h"

namespace gphtap {
namespace {

// ---------------------------------------------------------------------------
// FingerprintSql
// ---------------------------------------------------------------------------

TEST(FingerprintTest, LiteralsBecomeNumberedPlaceholders) {
  EXPECT_EQ(FingerprintSql("SELECT * FROM t WHERE a = 5 AND b = 'x'"),
            "select * from t where a = $1 and b = $2");
  EXPECT_EQ(FingerprintSql("INSERT INTO t VALUES (1, 2.5, 'three')"),
            "insert into t values($1, $2, $3)");
}

TEST(FingerprintTest, WhitespaceAndCaseDoNotMatter) {
  std::string canonical = FingerprintSql("select c1 from t1 where c1 = 7");
  EXPECT_EQ(FingerprintSql("SELECT   c1\n FROM\tT1  WHERE c1 = 99"), canonical);
  EXPECT_EQ(FingerprintSql("Select C1 From t1 Where C1 = 0;"), canonical);
}

TEST(FingerprintTest, DifferentLiteralsCollideDifferentShapesDoNot) {
  std::string a = FingerprintSql("UPDATE t SET c = 1 WHERE k = 10");
  std::string b = FingerprintSql("UPDATE t SET c = 2 WHERE k = 20");
  std::string c = FingerprintSql("UPDATE t SET c = 1 WHERE k = 10 AND j = 0");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FingerprintTest, DollarParamsRenumberIntoTheSameSequence) {
  // $N params and literals share one placeholder sequence, so the literal and
  // prepared forms of the same statement produce the same fingerprint.
  EXPECT_EQ(FingerprintSql("select * from t where a = $2 and b = $1"),
            "select * from t where a = $1 and b = $2");
  EXPECT_EQ(FingerprintSql("select * from t where a = $1 and b = 42"),
            FingerprintSql("select * from t where a = 7 and b = $1"));
}

TEST(FingerprintTest, PrepareFingerprintsAsTheInnerStatement) {
  EXPECT_EQ(FingerprintSql("PREPARE p1 AS SELECT * FROM t WHERE a = $1"),
            FingerprintSql("SELECT * FROM t WHERE a = 42"));
  EXPECT_EQ(FingerprintSql("prepare plan2 as insert into t values ($1, $2)"),
            FingerprintSql("INSERT INTO t VALUES (5, 6)"));
}

TEST(FingerprintTest, LexerRejectedInputFallsBackToCollapsedRaw) {
  // Unterminated string literal: the lexer refuses, so the fingerprint is the
  // lowercased, whitespace-collapsed raw text (stable, just not normalized).
  std::string fp = FingerprintSql("SELECT  'oops");
  EXPECT_EQ(fp, "select 'oops");
}

// ---------------------------------------------------------------------------
// StatementStatsRegistry
// ---------------------------------------------------------------------------

TEST(StatementStatsTest, AccumulatesCallsRowsAndLatency) {
  StatementStatsRegistry reg;
  StatementStatsRegistry::Sample s1;
  s1.rows = 10;
  s1.elapsed_us = 100;
  reg.Record("select $1", s1);

  StatementStatsRegistry::Sample s2;
  s2.rows = 5;
  s2.elapsed_us = 300;
  s2.plan_cache_hit = true;
  s2.retries = 2;
  reg.Record("select $1", s2);

  auto entries = reg.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  const auto& e = entries[0];
  EXPECT_EQ(e.fingerprint, "select $1");
  EXPECT_EQ(e.calls, 2u);
  EXPECT_EQ(e.rows, 15u);
  EXPECT_EQ(e.total_us, 400);
  EXPECT_EQ(e.min_us, 100);
  EXPECT_EQ(e.max_us, 300);
  EXPECT_GT(e.p95_us, 0);
  EXPECT_EQ(e.plan_cache_hits, 1u);
  EXPECT_EQ(e.retries, 2u);
  EXPECT_EQ(e.errors, 0u);
}

TEST(StatementStatsTest, ErrorsAndTimeoutsAreBucketed) {
  StatementStatsRegistry reg;
  StatementStatsRegistry::Sample err;
  err.ok = false;
  reg.Record("f", err);
  StatementStatsRegistry::Sample to;
  to.ok = false;
  to.timed_out = true;
  reg.Record("f", to);

  auto entries = reg.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].calls, 2u);
  EXPECT_EQ(entries[0].errors, 2u);
  EXPECT_EQ(entries[0].timeouts, 1u);
}

TEST(StatementStatsTest, GangResourcesAndTopWaitAggregate) {
  StatementStatsRegistry reg;
  StatementResources res;
  res.exec_cpu_ns.fetch_add(1'000'000);
  res.net_bytes.fetch_add(4096);
  res.buffer_hits.fetch_add(8);
  res.buffer_misses.fetch_add(2);
  res.vec_batches.fetch_add(3);
  res.vec_fallbacks.fetch_add(1);
  res.RecordSliceUs(50);
  res.RecordSliceUs(500);

  StatementStatsRegistry::Sample s;
  s.elapsed_us = 600;
  s.resources = &res;
  s.top_waits.push_back({WaitEvent::kLockRelation, 3, 900});
  s.top_waits.push_back({WaitEvent::kMotionSend, 1, 100});
  reg.Record("q", s);
  reg.Record("q", s);  // second call doubles everything

  auto entries = reg.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  const auto& e = entries[0];
  EXPECT_EQ(e.exec_cpu_ns, 2'000'000u);
  EXPECT_EQ(e.net_bytes, 8192u);
  EXPECT_EQ(e.buffer_hits, 16u);
  EXPECT_EQ(e.buffer_misses, 4u);
  EXPECT_EQ(e.vec_batches, 6u);
  EXPECT_EQ(e.vec_fallbacks, 2u);
  // Per-slice wall times merged across calls via Histogram::Merge: the p95
  // reflects the slow slice, not the per-call average.
  EXPECT_GE(e.gang_p95_us, 400);
  EXPECT_EQ(e.top_wait, WaitEvent::kLockRelation);
  EXPECT_EQ(e.top_wait_us, 1800);
}

TEST(StatementStatsTest, CapacityOverflowSpillsIntoOneBucket) {
  StatementStatsRegistry reg(/*capacity=*/2);
  StatementStatsRegistry::Sample s;
  s.elapsed_us = 1;
  reg.Record("a", s);
  reg.Record("b", s);
  reg.Record("c", s);
  reg.Record("d", s);

  auto entries = reg.Snapshot();
  ASSERT_EQ(entries.size(), 3u);  // a, b, <overflow>
  uint64_t overflow_calls = 0;
  for (const auto& e : entries) {
    if (e.fingerprint == "<overflow>") overflow_calls = e.calls;
  }
  EXPECT_EQ(overflow_calls, 2u);
}

TEST(StatementStatsTest, SnapshotSortsByTotalTimeDescending) {
  StatementStatsRegistry reg;
  StatementStatsRegistry::Sample cheap;
  cheap.elapsed_us = 10;
  StatementStatsRegistry::Sample expensive;
  expensive.elapsed_us = 10'000;
  reg.Record("cheap", cheap);
  reg.Record("expensive", expensive);
  auto entries = reg.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].fingerprint, "expensive");
  EXPECT_EQ(entries[1].fingerprint, "cheap");
}

TEST(StatementStatsTest, ResetClears) {
  StatementStatsRegistry reg;
  StatementStatsRegistry::Sample s;
  reg.Record("x", s);
  reg.Reset();
  EXPECT_TRUE(reg.Snapshot().empty());
}

// ---------------------------------------------------------------------------
// MetricsHistory
// ---------------------------------------------------------------------------

TEST(MetricsHistoryTest, DeltasAreComputedAgainstThePreviousTick) {
  MetricsHistory hist(/*capacity=*/10);
  MetricsSnapshot snap;
  snap.counters["txn.commits"] = 5;
  hist.Capture(snap, 1000);
  snap.counters["txn.commits"] = 12;
  hist.Capture(snap, 2000);

  auto rows = hist.Rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tick, 0u);
  EXPECT_EQ(rows[0].value, 5);
  EXPECT_EQ(rows[0].delta, 5);
  EXPECT_EQ(rows[1].tick, 1u);
  EXPECT_EQ(rows[1].at_us, 2000);
  EXPECT_EQ(rows[1].value, 12);
  EXPECT_EQ(rows[1].delta, 7);
}

TEST(MetricsHistoryTest, ZeroAndUnchangedZeroMetricsAreSkipped) {
  MetricsHistory hist;
  MetricsSnapshot snap;
  snap.counters["always_zero"] = 0;
  snap.counters["live"] = 1;
  hist.Capture(snap, 1);
  auto rows = hist.Rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].metric, "live");
}

TEST(MetricsHistoryTest, GaugesArePrefixedAndMayGoNegative) {
  MetricsHistory hist;
  MetricsSnapshot snap;
  snap.gauges["pool.free"] = 100;
  hist.Capture(snap, 1);
  snap.gauges["pool.free"] = 40;
  hist.Capture(snap, 2);
  auto rows = hist.Rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].metric, "gauge:pool.free");
  EXPECT_EQ(rows[1].value, 40);
  EXPECT_EQ(rows[1].delta, -60);
}

TEST(MetricsHistoryTest, RingEvictsOldestButDeltasStayCorrect) {
  MetricsHistory hist(/*capacity=*/2);
  MetricsSnapshot snap;
  for (int i = 1; i <= 4; ++i) {
    snap.counters["c"] = static_cast<uint64_t>(10 * i);
    hist.Capture(snap, i);
  }
  auto rows = hist.Rows();
  ASSERT_EQ(rows.size(), 2u);  // ticks 2 and 3 retained
  EXPECT_EQ(rows[0].tick, 2u);
  EXPECT_EQ(rows[0].value, 30);
  EXPECT_EQ(rows[0].delta, 10);  // vs the evicted tick 1
  EXPECT_EQ(rows[1].tick, 3u);
  EXPECT_EQ(hist.ticks(), 4u);
}

TEST(MetricsHistoryTest, CsvDumpHasHeaderAndRows) {
  MetricsHistory hist;
  MetricsSnapshot snap;
  snap.counters["c"] = 3;
  hist.Capture(snap, 77);
  std::string csv = hist.ToCsv();
  EXPECT_EQ(csv.rfind("tick,at_us,metric,value,delta\n", 0), 0u) << csv;
  EXPECT_NE(csv.find("0,77,c,3,3"), std::string::npos) << csv;
}

// ---------------------------------------------------------------------------
// ProgressRegistry
// ---------------------------------------------------------------------------

TEST(ProgressTest, LiveHandleIsVisibleAndRetiresIntoFinishedRing) {
  ProgressRegistry reg;
  {
    ProgressRegistry::Handle h = reg.Begin(ProgressOp::kVacuum, "t1");
    h.SetTotal(3);
    h.SetPhase("heap");
    h.SetNode(1);
    h.Advance(2);

    auto live = reg.SnapshotAll();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_FALSE(live[0].finished);
    EXPECT_EQ(live[0].op, ProgressOp::kVacuum);
    EXPECT_EQ(live[0].target, "t1");
    EXPECT_EQ(live[0].phase, "heap");
    EXPECT_EQ(live[0].node, 1);
    EXPECT_EQ(live[0].units_done, 2);
    EXPECT_EQ(live[0].units_total, 3);
  }
  auto after = reg.SnapshotAll();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(after[0].finished);
  EXPECT_EQ(after[0].units_done, 2);
}

TEST(ProgressTest, PhaseHistoryKeepsOrderAndDedupsConsecutive) {
  ProgressRegistry reg;
  {
    ProgressRegistry::Handle h = reg.Begin(ProgressOp::kRebalance, "t");
    h.SetPhase("copy");
    h.SetPhase("copy");  // consecutive duplicate collapses
    h.SetPhase("cutover");
    h.SetPhase("horizon-wait");
  }
  auto all = reg.SnapshotAll();
  ASSERT_EQ(all.size(), 1u);
  ASSERT_EQ(all[0].phase_history.size(), 3u);
  EXPECT_EQ(all[0].phase_history[0], "copy");
  EXPECT_EQ(all[0].phase_history[1], "cutover");
  EXPECT_EQ(all[0].phase_history[2], "horizon-wait");
}

TEST(ProgressTest, MovedFromHandleIsInertAndOpNamesAreStable) {
  ProgressRegistry reg;
  ProgressRegistry::Handle a = reg.Begin(ProgressOp::kDeltaSeal, "");
  ProgressRegistry::Handle b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  a.Advance();  // must be a harmless no-op
  b.SetPhase("seal");

  EXPECT_STREQ(ProgressOpName(ProgressOp::kVacuum), "vacuum");
  EXPECT_STREQ(ProgressOpName(ProgressOp::kCluster), "cluster");
  EXPECT_STREQ(ProgressOpName(ProgressOp::kRebalance), "rebalance");
  EXPECT_STREQ(ProgressOpName(ProgressOp::kDeltaSeal), "delta-seal");
}

}  // namespace
}  // namespace gphtap
