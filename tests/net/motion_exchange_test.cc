#include "net/motion_exchange.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace gphtap {
namespace {

Row R(int64_t v) { return Row{Datum(v)}; }

TEST(MotionExchangeTest, SingleSenderSingleReceiver) {
  MotionExchange ex(1, 1, 16);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ex.Send(0, R(i)));
  ex.CloseSender();
  for (int i = 0; i < 5; ++i) {
    auto row = ex.Recv(0);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ((*row)[0].int_val(), i);
  }
  EXPECT_FALSE(ex.Recv(0).has_value());
}

TEST(MotionExchangeTest, EosWaitsForAllSenders) {
  MotionExchange ex(3, 1, 16);
  ex.Send(0, R(1));
  ex.CloseSender();
  ex.CloseSender();
  // Third sender still open: after draining, Recv must block, not EOS.
  auto row = ex.Recv(0);
  ASSERT_TRUE(row.has_value());
  std::atomic<bool> got_eos{false};
  std::thread t([&] {
    EXPECT_FALSE(ex.Recv(0).has_value());
    got_eos = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got_eos.load());
  ex.CloseSender();
  t.join();
  EXPECT_TRUE(got_eos.load());
}

TEST(MotionExchangeTest, RedistributionByReceiverIndex) {
  MotionExchange ex(1, 3, 16);
  ex.Send(0, R(10));
  ex.Send(1, R(11));
  ex.Send(2, R(12));
  ex.CloseSender();
  EXPECT_EQ((*ex.Recv(0))[0].int_val(), 10);
  EXPECT_EQ((*ex.Recv(1))[0].int_val(), 11);
  EXPECT_EQ((*ex.Recv(2))[0].int_val(), 12);
}

TEST(MotionExchangeTest, BroadcastDeliversToAll) {
  MotionExchange ex(1, 3, 16);
  EXPECT_TRUE(ex.SendToAll(R(7)));
  ex.CloseSender();
  for (int r = 0; r < 3; ++r) {
    auto row = ex.Recv(r);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ((*row)[0].int_val(), 7);
  }
}

TEST(MotionExchangeTest, FullBufferBlocksSenderUntilRecv) {
  MotionExchange ex(1, 1, 2);
  EXPECT_TRUE(ex.Send(0, R(1)));
  EXPECT_TRUE(ex.Send(0, R(2)));
  std::atomic<bool> third_sent{false};
  std::thread sender([&] {
    EXPECT_TRUE(ex.Send(0, R(3)));
    third_sent = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_sent.load()) << "bounded buffer did not apply backpressure";
  ex.Recv(0);
  sender.join();
  EXPECT_TRUE(third_sent.load());
}

TEST(MotionExchangeTest, AbortUnblocksEveryone) {
  MotionExchange ex(1, 2, 1);
  EXPECT_TRUE(ex.Send(0, R(1)));
  std::atomic<int> released{0};
  std::thread blocked_sender([&] {
    ex.Send(0, R(2));  // buffer full -> blocks until abort
    released++;
  });
  std::thread blocked_receiver([&] {
    ex.Recv(1);  // nothing for receiver 1 -> blocks until abort
    released++;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(released.load(), 0);
  ex.Abort();
  blocked_sender.join();
  blocked_receiver.join();
  EXPECT_EQ(released.load(), 2);
  EXPECT_FALSE(ex.Send(0, R(9)));
  EXPECT_TRUE(ex.aborted());
}

TEST(MotionExchangeTest, NetChargedPerMessageBatch) {
  SimNet net(0);
  MotionExchange ex(1, 1, 1 << 16, &net);
  for (uint64_t i = 0; i < MotionExchange::kRowsPerMessage * 3; ++i) {
    ASSERT_TRUE(ex.Send(0, R(static_cast<int64_t>(i))));
  }
  EXPECT_EQ(net.count(MsgKind::kTupleData), 3u);
}

BatchPtr MakeBatch(int64_t start, int64_t n) {
  auto b = std::make_shared<ColumnBatch>();
  b->Reset(1, static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) b->AppendRow(R(start + i));
  return b;
}

TEST(MotionExchangeTest, BatchNetChargedByActualRows) {
  SimNet net(0);
  MotionExchange ex(1, 1, 1 << 16, &net);
  // 256 live rows = 4 message windows, not 1 per SendBatch call.
  ASSERT_TRUE(ex.SendBatch(0, MakeBatch(0, 256)));
  EXPECT_EQ(net.count(MsgKind::kTupleData), 4u);
  // A small batch opens the next 64-row window: exactly one more message.
  ASSERT_TRUE(ex.SendBatch(0, MakeBatch(256, 3)));
  EXPECT_EQ(net.count(MsgKind::kTupleData), 5u);
  // 61 more rows stay inside that window: no extra charge.
  ASSERT_TRUE(ex.SendBatch(0, MakeBatch(259, 61)));
  EXPECT_EQ(net.count(MsgKind::kTupleData), 5u);
}

TEST(MotionExchangeTest, BatchWithDeletedRowsChargesLiveRowsOnly) {
  SimNet net(0);
  MotionExchange ex(1, 1, 1 << 16, &net);
  BatchPtr b = MakeBatch(0, 200);
  b->sel.resize(10);  // only 10 rows survive the selection vector
  ASSERT_TRUE(ex.SendBatch(0, b));
  EXPECT_EQ(net.count(MsgKind::kTupleData), 1u);
  // Empty batches ship nothing and charge nothing.
  BatchPtr empty = MakeBatch(0, 5);
  empty->sel.clear();
  ASSERT_TRUE(ex.SendBatch(0, empty));
  EXPECT_EQ(net.count(MsgKind::kTupleData), 1u);
}

TEST(MotionExchangeTest, RowAndBatchShareOneAccountingWindow) {
  SimNet net(0);
  MotionExchange ex(1, 1, 1 << 16, &net);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ex.Send(0, R(i)));
  EXPECT_EQ(net.count(MsgKind::kTupleData), 1u);
  // Rows 10..109: crosses exactly the 64-row boundary.
  ASSERT_TRUE(ex.SendBatch(0, MakeBatch(10, 100)));
  EXPECT_EQ(net.count(MsgKind::kTupleData), 2u);
}

TEST(MotionExchangeTest, RowPathAccountingUnchanged) {
  SimNet net(0);
  MetricsRegistry metrics;
  net.set_metrics(&metrics);
  MotionExchange ex(1, 1, 1 << 16, &net);
  for (uint64_t i = 0; i < MotionExchange::kRowsPerMessage * 2 + 1; ++i) {
    ASSERT_TRUE(ex.Send(0, R(static_cast<int64_t>(i))));
  }
  EXPECT_EQ(net.count(MsgKind::kTupleData), 3u);
  EXPECT_EQ(metrics.counter("net.tuple_rows")->value(),
            MotionExchange::kRowsPerMessage * 2 + 1);
  EXPECT_EQ(metrics.counter("net.tuple_batches")->value(), 0u);
}

TEST(MotionExchangeTest, BatchCountersTallyRowsAndBatches) {
  SimNet net(0);
  MetricsRegistry metrics;
  net.set_metrics(&metrics);
  MotionExchange ex(1, 1, 1 << 16, &net);
  ASSERT_TRUE(ex.SendBatch(0, MakeBatch(0, 100)));
  ASSERT_TRUE(ex.SendBatch(0, MakeBatch(100, 28)));
  EXPECT_EQ(metrics.counter("net.tuple_rows")->value(), 128u);
  EXPECT_EQ(metrics.counter("net.tuple_batches")->value(), 2u);
}

TEST(MotionExchangeTest, RecvExplodesBatchesIntoRows) {
  MotionExchange ex(1, 1, 16);
  ASSERT_TRUE(ex.SendBatch(0, MakeBatch(0, 5)));
  ASSERT_TRUE(ex.Send(0, R(99)));
  ex.CloseSender();
  for (int64_t i = 0; i < 5; ++i) {
    auto row = ex.Recv(0);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ((*row)[0].int_val(), i);
  }
  EXPECT_EQ((*ex.Recv(0))[0].int_val(), 99);
  EXPECT_FALSE(ex.Recv(0).has_value());
}

TEST(MotionExchangeTest, RecvBatchWrapsRowsAndPassesBatches) {
  MotionExchange ex(1, 1, 16);
  ASSERT_TRUE(ex.Send(0, R(7)));
  ASSERT_TRUE(ex.SendBatch(0, MakeBatch(0, 3)));
  ex.CloseSender();
  auto b1 = ex.RecvBatch(0);
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->ActiveRows(), 1u);
  EXPECT_EQ(b1->columns[0].GetDatum(0).int_val(), 7);
  auto b2 = ex.RecvBatch(0);
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->ActiveRows(), 3u);
  EXPECT_FALSE(ex.RecvBatch(0).has_value());
}

TEST(MotionExchangeTest, BroadcastBatchReachesEveryReceiver) {
  MotionExchange ex(1, 3, 16);
  ASSERT_TRUE(ex.SendBatchToAll(MakeBatch(0, 4)));
  ex.CloseSender();
  for (int r = 0; r < 3; ++r) {
    auto b = ex.RecvBatch(r);
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(b->ActiveRows(), 4u);
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_EQ(b->columns[0].GetDatum(static_cast<size_t>(i)).int_val(), i);
    }
  }
}

TEST(MotionExchangeTest, ManySendersManyReceiversStress) {
  constexpr int kSenders = 4, kReceivers = 4, kRows = 2000;
  MotionExchange ex(kSenders, kReceivers, 64);
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kRows; ++i) {
        int64_t v = s * kRows + i;
        ex.Send(static_cast<int>(v % kReceivers), R(v));
      }
      ex.CloseSender();
    });
  }
  for (int r = 0; r < kReceivers; ++r) {
    threads.emplace_back([&, r] {
      while (auto row = ex.Recv(r)) sum += (*row)[0].int_val();
    });
  }
  for (auto& t : threads) t.join();
  long expected = 0;
  for (long v = 0; v < kSenders * kRows; ++v) expected += v;
  EXPECT_EQ(sum.load(), expected);
}

TEST(SimNetTest, CountsAndLatency) {
  SimNet net(1000);
  Stopwatch sw;
  net.Deliver(MsgKind::kPrepare);
  net.Deliver(MsgKind::kPrepareAck);
  EXPECT_GE(sw.ElapsedMicros(), 1800);
  EXPECT_EQ(net.count(MsgKind::kPrepare), 1u);
  EXPECT_EQ(net.TotalMessages(), 2u);
}

}  // namespace
}  // namespace gphtap
