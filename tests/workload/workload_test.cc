// Workload generators and the concurrency property the paper's OLTP claims
// rest on: TPC-B money conservation under many concurrent clients with GDD on.
#include <gtest/gtest.h>

#include "workload/chbench.h"
#include "workload/driver.h"
#include "workload/tpcb.h"

namespace gphtap {
namespace {

ClusterOptions FastCluster(int segments = 3) {
  ClusterOptions o;
  o.num_segments = segments;
  o.gdd_period_us = 10'000;
  return o;
}

TEST(TpcbTest, LoadPopulatesTables) {
  Cluster cluster(FastCluster());
  TpcbConfig config;
  config.scale = 2;
  config.accounts_per_branch = 500;
  ASSERT_TRUE(LoadTpcb(&cluster, config).ok());
  auto s = cluster.Connect();
  EXPECT_EQ(s->Execute("SELECT count(*) FROM pgbench_accounts")->rows[0][0].int_val(),
            1000);
  EXPECT_EQ(s->Execute("SELECT count(*) FROM pgbench_branches")->rows[0][0].int_val(), 2);
  EXPECT_EQ(s->Execute("SELECT count(*) FROM pgbench_tellers")->rows[0][0].int_val(), 20);
}

TEST(TpcbTest, SingleTransactionKeepsInvariant) {
  Cluster cluster(FastCluster());
  TpcbConfig config;
  config.accounts_per_branch = 100;
  ASSERT_TRUE(LoadTpcb(&cluster, config).ok());
  auto session = cluster.Connect();
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(RunTpcbTransaction(session.get(), rng, config).ok());
  }
  EXPECT_TRUE(CheckTpcbInvariant(&cluster).ok());
  auto s = cluster.Connect();
  EXPECT_EQ(s->Execute("SELECT count(*) FROM pgbench_history")->rows[0][0].int_val(), 20);
}

// The paper's core OLTP claim exercised as a property: many concurrent
// sessions hammering the same rows with GDD enabled must neither lose updates
// nor corrupt balances, no matter how the tuple-lock dances interleave.
TEST(TpcbTest, ConcurrentClientsPreserveInvariant) {
  Cluster cluster(FastCluster());
  TpcbConfig config;
  config.scale = 2;
  config.accounts_per_branch = 50;  // small: plenty of conflicts
  ASSERT_TRUE(LoadTpcb(&cluster, config).ok());

  DriverOptions opts;
  opts.num_clients = 8;
  opts.duration_ms = 1500;
  DriverResult result = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
    return RunTpcbTransaction(s, rng, config);
  });
  EXPECT_GT(result.committed, 50u);
  Status invariant = CheckTpcbInvariant(&cluster);
  EXPECT_TRUE(invariant.ok()) << invariant.ToString();
  // History rows == committed transactions (no lost or phantom commits).
  auto s = cluster.Connect();
  EXPECT_EQ(
      s->Execute("SELECT count(*) FROM pgbench_history")->rows[0][0].int_val(),
      static_cast<int64_t>(result.committed));
}

TEST(TpcbTest, ConcurrentInvariantHoldsInGpdb5ModeToo) {
  ClusterOptions o = FastCluster();
  o.gdd_enabled = false;
  o.one_phase_commit_enabled = false;
  Cluster cluster(o);
  TpcbConfig config;
  config.accounts_per_branch = 50;
  ASSERT_TRUE(LoadTpcb(&cluster, config).ok());
  DriverOptions opts;
  opts.num_clients = 4;
  opts.duration_ms = 800;
  DriverResult result = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
    return RunTpcbTransaction(s, rng, config);
  });
  EXPECT_GT(result.committed, 5u);
  EXPECT_TRUE(CheckTpcbInvariant(&cluster).ok());
}

TEST(TpcbTest, UpdateOnlyAndInsertOnlyRun) {
  Cluster cluster(FastCluster());
  TpcbConfig config;
  config.accounts_per_branch = 100;
  ASSERT_TRUE(LoadTpcb(&cluster, config).ok());
  auto session = cluster.Connect();
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(RunUpdateOnlyTransaction(session.get(), rng, config).ok());
    ASSERT_TRUE(RunInsertOnlyTransaction(session.get(), rng, config).ok());
    ASSERT_TRUE(RunSelectOnlyTransaction(session.get(), rng, config).ok());
  }
  // Insert-only rows land on exactly one segment each => 1PC commits.
  EXPECT_GE(session->stats().one_phase_commits, 10u);
}

TEST(ChBenchTest, LoadAndOltpMix) {
  Cluster cluster(FastCluster());
  ChBenchConfig config;
  config.warehouses = 2;
  config.items = 200;
  config.customers_per_district = 20;
  config.initial_orders_per_district = 5;
  ASSERT_TRUE(LoadChBench(&cluster, config).ok());

  auto session = cluster.Connect();
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Status s = RunChOltpTransaction(session.get(), rng, config);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  // NewOrder allocated fresh order ids; order count grew.
  auto r = cluster.Connect()->Execute("SELECT count(*) FROM orders");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->rows[0][0].int_val(),
            static_cast<int64_t>(config.warehouses) * config.districts_per_warehouse *
                config.initial_orders_per_district);
}

TEST(ChBenchTest, NewOrderIdsUniquePerDistrictUnderConcurrency) {
  Cluster cluster(FastCluster());
  ChBenchConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;  // heavy contention on d_next_o_id
  config.items = 100;
  ASSERT_TRUE(LoadChBench(&cluster, config).ok());
  DriverOptions opts;
  opts.num_clients = 6;
  opts.duration_ms = 800;
  DriverResult result = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
    return RunNewOrderTransaction(s, rng, config);
  });
  EXPECT_GT(result.committed, 10u);
  // No duplicate (w, d, o_id): group by and compare counts.
  auto session = cluster.Connect();
  auto total = session->Execute("SELECT count(*) FROM orders");
  ASSERT_TRUE(total.ok());
  auto grouped = session->Execute(
      "SELECT o_w_id, o_d_id, o_id, count(*) AS n FROM orders "
      "GROUP BY o_w_id, o_d_id, o_id");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(static_cast<int64_t>(grouped->rows.size()), total->rows[0][0].int_val());
  for (const Row& r : grouped->rows) {
    EXPECT_EQ(r[3].int_val(), 1) << "duplicate order id allocated";
  }
}

TEST(ChBenchTest, AllAnalyticalQueriesRun) {
  Cluster cluster(FastCluster());
  ChBenchConfig config;
  config.warehouses = 2;
  config.items = 200;
  config.customers_per_district = 20;
  config.initial_orders_per_district = 10;
  ASSERT_TRUE(LoadChBench(&cluster, config).ok());
  auto session = cluster.Connect();
  for (size_t i = 0; i < ChAnalyticalQueries().size(); ++i) {
    Status s = RunChAnalyticalQuery(session.get(), i);
    EXPECT_TRUE(s.ok()) << "query " << i << ": " << s.ToString() << "\n"
                        << ChAnalyticalQueries()[i];
  }
}

TEST(ChBenchTest, Q1AggregatesMatchManualComputation) {
  Cluster cluster(FastCluster());
  ChBenchConfig config;
  config.warehouses = 1;
  config.items = 50;
  config.initial_orders_per_district = 4;
  ASSERT_TRUE(LoadChBench(&cluster, config).ok());
  auto session = cluster.Connect();
  auto q1 = session->Execute(ChAnalyticalQueries()[0]);
  ASSERT_TRUE(q1.ok());
  ASSERT_EQ(q1->rows.size(), static_cast<size_t>(config.lines_per_order));
  // Every (district, order) contributes exactly one line per ol_number.
  int64_t expected_per_number =
      config.districts_per_warehouse * config.initial_orders_per_district;
  for (const Row& r : q1->rows) {
    EXPECT_EQ(r[5].int_val(), expected_per_number);
  }
}

TEST(DriverTest, StopFlagEndsRunEarly) {
  Cluster cluster(FastCluster(2));
  auto setup = cluster.Connect();
  ASSERT_TRUE(setup->Execute("CREATE TABLE t (k int, v int)").ok());
  std::atomic<bool> stop{false};
  DriverOptions opts;
  opts.num_clients = 2;
  opts.duration_ms = 60'000;  // would run a minute...
  opts.stop = &stop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop = true;
  });
  Stopwatch sw;
  DriverResult r = RunWorkload(&cluster, opts, [](Session* s, Rng& rng) {
    return s->Execute("INSERT INTO t VALUES (" +
                      std::to_string(rng.UniformRange(1, 100)) + ", 1)")
        .status();
  });
  stopper.join();
  EXPECT_LT(sw.ElapsedSeconds(), 10.0);  // ... but stops in ~0.2s
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.latency_us.count(), 0);
}

}  // namespace
}  // namespace gphtap
