// DeltaStore / DeltaIndex unit tests: log application + MVCC visibility,
// positional seal boundaries, tid reuse after vacuum, reclamation, and the
// replay-ordering fix — a seal-daemon kFreeGroup arriving before the replica
// has sealed the group it frees (pending_free_) and across a truncate
// (epoch-stamped frees).
#include "delta/delta_store.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "delta/delta_index.h"
#include "storage/change_log.h"
#include "txn/clog.h"
#include "txn/visibility.h"

namespace gphtap {
namespace {

TableDef MakeDef(TableId id = 7) {
  TableDef def;
  def.id = id;
  def.name = "t";
  def.schema = Schema({{"a", TypeId::kInt64}, {"b", TypeId::kString}});
  def.storage = StorageKind::kHeap;
  return def;
}

Row MakeRow(int64_t a, const std::string& b) { return Row{Datum(a), Datum(b)}; }

// Collects every visible row (as pairs) from a full-store scan.
std::vector<std::pair<int64_t, std::string>> ScanAll(const DeltaStore& ds,
                                                     const VisibilityContext& ctx,
                                                     uint64_t* sealed = nullptr,
                                                     uint64_t* open = nullptr) {
  std::vector<std::pair<int64_t, std::string>> out;
  Status s = ds.ScanBatches(
      ctx, {0, 1},
      [&](ColumnBatch&& batch) {
        for (int32_t r : batch.sel) {
          out.emplace_back(batch.columns[0].GetDatum(static_cast<size_t>(r)).int_val(),
                           batch.columns[1].GetDatum(static_cast<size_t>(r)).string_val());
        }
        return true;
      },
      sealed, open);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(DeltaStoreTest, VisibilityFollowsCommitLog) {
  DeltaStore ds(MakeDef());
  CommitLog clog;
  clog.Register(10);
  clog.Register(11);
  ds.ApplyInsert(1, 10, MakeRow(1, "committed"));
  ds.ApplyInsert(2, 11, MakeRow(2, "in-progress"));
  clog.SetState(10, TxnState::kCommitted);

  VisibilityContext ctx;
  ctx.clog = &clog;
  auto rows = ScanAll(ds, ctx);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, 1);

  // The straggler commits: now both rows are visible.
  clog.SetState(11, TxnState::kCommitted);
  EXPECT_EQ(ScanAll(ds, ctx).size(), 2u);

  // A committed delete hides its row.
  clog.Register(12);
  clog.SetState(12, TxnState::kCommitted);
  ds.ApplyDelete(1, 12);
  rows = ScanAll(ds, ctx);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, 2);
  EXPECT_EQ(ds.Stats().deletes, 1u);
}

TEST(DeltaStoreTest, SealBoundariesArePositional) {
  DeltaStore ds(MakeDef());
  CommitLog clog;
  clog.Register(5);
  clog.SetState(5, TxnState::kCommitted);
  const size_t n = DeltaStore::kGroupRows + 500;
  for (size_t i = 0; i < n; ++i) {
    ds.ApplyInsert(static_cast<TupleId>(i), 5, MakeRow(static_cast<int64_t>(i), "r"));
  }
  DeltaSealResult sealed = ds.SealCold(&clog);
  EXPECT_EQ(sealed.groups_sealed, 1u);
  EXPECT_EQ(sealed.rows_sealed, DeltaStore::kGroupRows);
  DeltaStoreStats st = ds.Stats();
  EXPECT_EQ(st.sealed_groups, 1u);
  EXPECT_EQ(st.open_rows, 500u);

  VisibilityContext ctx;
  ctx.clog = &clog;
  uint64_t from_sealed = 0, from_open = 0;
  auto rows = ScanAll(ds, ctx, &from_sealed, &from_open);
  ASSERT_EQ(rows.size(), n);
  EXPECT_EQ(from_sealed, DeltaStore::kGroupRows);
  EXPECT_EQ(from_open, 500u);
  // Scan preserves log-apply order: sealed groups first, then the open run.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(rows[i].first, static_cast<int64_t>(i));
  }

  // A delete landing after the seal still finds its (sealed) row.
  clog.Register(6);
  clog.SetState(6, TxnState::kCommitted);
  ds.ApplyDelete(0, 6);
  EXPECT_EQ(ScanAll(ds, ctx).size(), n - 1);
}

TEST(DeltaStoreTest, SealWaitsForUndecidedTransactions) {
  DeltaStore ds(MakeDef());
  CommitLog clog;
  clog.Register(9);
  for (size_t i = 0; i < DeltaStore::kGroupRows; ++i) {
    ds.ApplyInsert(static_cast<TupleId>(i), 9, MakeRow(static_cast<int64_t>(i), "x"));
  }
  // Creating transaction still in progress: the group is not cold yet.
  EXPECT_EQ(ds.SealCold(&clog).groups_sealed, 0u);
  clog.SetState(9, TxnState::kCommitted);
  EXPECT_EQ(ds.SealCold(&clog).groups_sealed, 1u);
}

TEST(DeltaStoreTest, TidReuseAfterVacuumKeepsLatestRow) {
  DeltaStore ds(MakeDef());
  CommitLog clog;
  clog.Register(3);
  clog.Register(4);
  clog.SetState(3, TxnState::kCommitted);
  clog.SetState(4, TxnState::kCommitted);

  ds.ApplyInsert(42, 3, MakeRow(1, "old"));
  ds.ApplyFreeSlot(42);  // heap vacuum reclaimed the slot
  ds.ApplyInsert(42, 4, MakeRow(2, "new"));

  VisibilityContext ctx;
  ctx.clog = &clog;
  auto rows = ScanAll(ds, ctx);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second, "new");

  // A later delete of the reused tid must hit the new row, not the corpse.
  clog.Register(5);
  clog.SetState(5, TxnState::kCommitted);
  ds.ApplyDelete(42, 5);
  EXPECT_TRUE(ScanAll(ds, ctx).empty());
}

TEST(DeltaStoreTest, ReclaimEmitsReplayableFreeGroup) {
  DeltaStore ds(MakeDef(11));
  CommitLog clog;
  clog.Register(2);
  clog.Register(3);
  clog.SetState(2, TxnState::kCommitted);
  clog.SetState(3, TxnState::kCommitted);
  for (size_t i = 0; i < DeltaStore::kGroupRows; ++i) {
    ds.ApplyInsert(static_cast<TupleId>(i), 2, MakeRow(static_cast<int64_t>(i), "d"));
  }
  ASSERT_EQ(ds.SealCold(&clog).groups_sealed, 1u);
  for (size_t i = 0; i < DeltaStore::kGroupRows; ++i) {
    ds.ApplyDelete(static_cast<TupleId>(i), 3);
  }

  ChangeLog log;
  AoReclaimResult res = ds.ReclaimDeadGroups(
      [](LocalXid, LocalXid xmax) { return xmax != kInvalidLocalXid; }, &log);
  EXPECT_EQ(res.groups_freed, 1u);
  EXPECT_EQ(res.rows_freed, DeltaStore::kGroupRows);
  EXPECT_EQ(ds.Stats().freed_groups, 1u);

  ASSERT_EQ(log.size(), 1u);
  ChangeRecord rec = *log.Read(0);
  EXPECT_EQ(rec.kind, ChangeKind::kFreeGroup);
  EXPECT_EQ(rec.table, 11u);
  EXPECT_EQ(rec.tid, 0u);   // group index
  EXPECT_EQ(rec.tid2, 0u);  // truncate epoch at emit time

  VisibilityContext ctx;
  ctx.clog = &clog;
  EXPECT_TRUE(ScanAll(ds, ctx).empty());
}

// The satellite regression: a mirror replaying a captured seal-window log sees
// the kFreeGroup *before* it has sealed the group (seals are local decisions,
// never logged). The free must defer, then land at seal time.
TEST(DeltaStoreTest, FreeGroupBeforeSealDefersUntilGroupForms) {
  // Primary side: insert a cold group, seal, delete everything, reclaim —
  // capturing the change stream the way live execution would emit it.
  TableDef def = MakeDef(21);
  ChangeLog log;
  CommitLog clog;
  clog.Register(2);
  clog.Register(3);
  clog.SetState(2, TxnState::kCommitted);
  clog.SetState(3, TxnState::kCommitted);

  DeltaStore primary(def);
  for (size_t i = 0; i < DeltaStore::kGroupRows; ++i) {
    Row row = MakeRow(static_cast<int64_t>(i), "p");
    primary.ApplyInsert(static_cast<TupleId>(i), 2, row);
    log.Append(ChangeRecord{ChangeKind::kInsert, def.id, static_cast<TupleId>(i),
                            kInvalidTupleId, 2, std::move(row), kInvalidGxid});
  }
  ASSERT_EQ(primary.SealCold(&clog).groups_sealed, 1u);
  for (size_t i = 0; i < DeltaStore::kGroupRows; ++i) {
    primary.ApplyDelete(static_cast<TupleId>(i), 3);
    log.Append(ChangeRecord{ChangeKind::kSetXmax, def.id, static_cast<TupleId>(i),
                            kInvalidTupleId, 3, {}, kInvalidGxid});
  }
  ASSERT_EQ(primary
                .ReclaimDeadGroups(
                    [](LocalXid, LocalXid xmax) { return xmax != kInvalidLocalXid; },
                    &log)
                .groups_freed,
            1u);

  // Mirror side: replay the captured log in order into a fresh store that has
  // never sealed. The kFreeGroup arrives while group 0 is still open.
  DeltaStore mirror(def);
  for (const ChangeRecord& rec : log.Snapshot(log.size())) {
    switch (rec.kind) {
      case ChangeKind::kInsert:
        mirror.ApplyInsert(rec.tid, rec.xid, rec.row);
        break;
      case ChangeKind::kSetXmax:
        mirror.ApplyDelete(rec.tid, rec.xid);
        break;
      case ChangeKind::kFreeGroup:
        mirror.ApplyFreeGroup(static_cast<size_t>(rec.tid), rec.tid2);
        break;
      default:
        break;
    }
  }
  // The free deferred: nothing sealed yet, one free pending.
  DeltaStoreStats st = mirror.Stats();
  EXPECT_EQ(st.sealed_groups, 0u);
  EXPECT_EQ(st.pending_frees, 1u);
  EXPECT_EQ(st.freed_groups, 0u);

  // Sealing forms group 0 with identical positional boundaries; the pending
  // free lands immediately and the replica converges with the primary.
  mirror.SealCold(nullptr);
  st = mirror.Stats();
  EXPECT_EQ(st.sealed_groups, 1u);
  EXPECT_EQ(st.pending_frees, 0u);
  EXPECT_EQ(st.freed_groups, 1u);

  VisibilityContext ctx;
  ctx.clog = &clog;
  EXPECT_TRUE(ScanAll(mirror, ctx).empty());
}

TEST(DeltaStoreTest, StaleEpochFreeIgnoredAcrossTruncate) {
  TableDef def = MakeDef(31);
  CommitLog clog;
  clog.Register(2);
  clog.SetState(2, TxnState::kCommitted);

  DeltaStore ds(def);
  // A free stamped with epoch 0 that was emitted before a truncate...
  ds.ApplyTruncate();  // epoch is now 1
  for (size_t i = 0; i < DeltaStore::kGroupRows; ++i) {
    ds.ApplyInsert(static_cast<TupleId>(i), 2, MakeRow(static_cast<int64_t>(i), "e"));
  }
  ASSERT_EQ(ds.SealCold(&clog).groups_sealed, 1u);
  // ...must not free the post-truncate group of the same index.
  ds.ApplyFreeGroup(0, /*epoch=*/0);
  EXPECT_EQ(ds.Stats().freed_groups, 0u);

  VisibilityContext ctx;
  ctx.clog = &clog;
  EXPECT_EQ(ScanAll(ds, ctx).size(), DeltaStore::kGroupRows);

  // A current-epoch free does land.
  ds.ApplyFreeGroup(0, /*epoch=*/1);
  EXPECT_EQ(ds.Stats().freed_groups, 1u);
  EXPECT_TRUE(ScanAll(ds, ctx).empty());
}

TEST(DeltaIndexTest, FeedAppliesLogAndWaitForAppliedBlocks) {
  TableDef def = MakeDef(5);
  MetricsRegistry metrics;
  DeltaIndex di(0, [&](TableId id) -> StatusOr<TableDef> {
    if (id == def.id) return def;
    return Status::NotFound("no table");
  }, &metrics);

  ChangeLog log;
  di.Start(&log);
  CommitLog clog;
  clog.Register(2);
  clog.SetState(2, TxnState::kCommitted);

  for (int i = 0; i < 10; ++i) {
    log.Append(ChangeRecord{ChangeKind::kInsert, def.id, static_cast<TupleId>(i),
                            kInvalidTupleId, 2, MakeRow(i, "f"), kInvalidGxid});
  }
  ASSERT_TRUE(di.WaitForApplied(log.size(), 2'000'000).ok());
  EXPECT_GE(di.applied(), 10u);

  DeltaStore* ds = di.store(def.id);
  ASSERT_NE(ds, nullptr);
  VisibilityContext ctx;
  ctx.clog = &clog;
  EXPECT_EQ(ScanAll(*ds, ctx).size(), 10u);

  auto statuses = di.TableStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].name, "t");
  EXPECT_EQ(statuses[0].stats.open_rows, 10u);

  // An unreasonable target times out rather than hanging.
  EXPECT_EQ(di.WaitForApplied(log.size() + 100, 20'000).code(),
            StatusCode::kTimedOut);
  di.Stop();
}

}  // namespace
}  // namespace gphtap
