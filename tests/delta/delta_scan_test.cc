// End-to-end delta-merged scans: analytics over heap rows committed in the
// same run are served vectorized from the columnar delta store, snapshot-exact
// (freshness wait), with EXPLAIN/EXPLAIN ANALYZE labeling the serving store,
// gp_delta_status exposing feed lag and store shape, manual sealing via
// Cluster::SealDeltaNow, and survival across crash recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/session.h"

namespace gphtap {
namespace {

std::string RowText(const Row& row) {
  std::string s;
  for (const Datum& d : row) {
    s += d.is_null() ? "NULL" : d.ToString();
    s += "|";
  }
  return s;
}

std::vector<std::string> SortedRows(const QueryResult& r) {
  std::vector<std::string> out;
  for (const Row& row : r.rows) out.push_back(RowText(row));
  std::sort(out.begin(), out.end());
  return out;
}

std::string ResultText(const QueryResult& r) {
  std::string text;
  for (const Row& row : r.rows) text += RowText(row) + "\n";
  return text;
}

class DeltaScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_segments = 2;
    options.vectorized_execution_enabled = true;
    options.delta_store_enabled = true;
    options.delta_seal_period_us = 0;  // seal manually for determinism
    cluster_ = std::make_unique<Cluster>(options);
    session_ = cluster_->Connect();
  }

  uint64_t Counter(const std::string& name) {
    return cluster_->StatsSnapshot().counter(name);
  }

  void SealAll() {
    for (int i = 0; i < cluster_->num_segments(); ++i) {
      ASSERT_TRUE(cluster_->SealDeltaNow(i).ok()) << "segment " << i;
    }
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Session> session_;
};

TEST_F(DeltaScanTest, SameRunCommittedRowsReturnVectorized) {
  ASSERT_TRUE(session_
                  ->Execute("CREATE TABLE orders (k int, grp int, v int) "
                            "DISTRIBUTED BY (k)")
                  .ok());
  ASSERT_TRUE(session_
                  ->Execute("INSERT INTO orders SELECT i, i % 7, i % 101 "
                            "FROM generate_series(0, 2999) i")
                  .ok());

  // CH-benCH shape over rows committed milliseconds ago: grouped aggregate
  // over the freshly loaded heap table, served from the delta store.
  auto r = session_->Execute(
      "EXPLAIN ANALYZE SELECT grp, count(*) AS n, sum(v) AS s "
      "FROM orders GROUP BY grp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text = ResultText(*r);
  EXPECT_NE(text.find("delta-merged (vectorized) batches="), std::string::npos)
      << text;
  EXPECT_NE(text.find("stores:"), std::string::npos) << text;
  // Per-store visible rows accumulate across the gang on the scan node.
  EXPECT_NE(text.find("delta-merged=3000"), std::string::npos) << text;
  EXPECT_GT(Counter("delta.merged_scans"), 0u);

  // And the answer is the row engine's answer.
  auto agg = session_->Execute("SELECT count(*) AS n, sum(v) AS s FROM orders");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->rows[0][0].int_val(), 3000);
}

TEST_F(DeltaScanTest, ExplainLabelsStores) {
  ASSERT_TRUE(session_->Execute("CREATE TABLE h (a int, b int) DISTRIBUTED BY (a)").ok());
  ASSERT_TRUE(session_
                  ->Execute("CREATE TABLE c (a int, b int) WITH (storage=ao_column) "
                            "DISTRIBUTED BY (a)")
                  .ok());

  auto hp = session_->Execute("EXPLAIN SELECT b FROM h WHERE a > 3");
  ASSERT_TRUE(hp.ok());
  EXPECT_NE(ResultText(*hp).find("store=delta-merged (vectorized)"),
            std::string::npos)
      << ResultText(*hp);

  auto cp = session_->Execute("EXPLAIN SELECT b FROM c WHERE a > 3");
  ASSERT_TRUE(cp.ok());
  EXPECT_NE(ResultText(*cp).find("store=ao-column"), std::string::npos)
      << ResultText(*cp);

  // Session override: the same heap scan drops back to the row engine and the
  // plan says so.
  ASSERT_TRUE(session_->Execute("SET vectorized_execution = off").ok());
  auto rp = session_->Execute("EXPLAIN SELECT b FROM h WHERE a > 3");
  ASSERT_TRUE(rp.ok());
  std::string text = ResultText(*rp);
  EXPECT_NE(text.find("store=heap"), std::string::npos) << text;
  EXPECT_EQ(text.find("delta-merged"), std::string::npos) << text;
  ASSERT_TRUE(session_->Execute("SET vectorized_execution = default").ok());
}

TEST_F(DeltaScanTest, RowEngineOverrideMatchesDeltaMergedResults) {
  ASSERT_TRUE(session_->Execute("CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)").ok());
  ASSERT_TRUE(session_
                  ->Execute("INSERT INTO t SELECT i, i * 3 "
                            "FROM generate_series(1, 2000) i")
                  .ok());
  ASSERT_TRUE(session_->Execute("DELETE FROM t WHERE a % 5 = 0").ok());

  const std::string sql = "SELECT a, b FROM t WHERE b % 2 = 0";
  auto merged = session_->Execute(sql);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  ASSERT_TRUE(session_->Execute("SET vectorized_execution = off").ok());
  auto row = session_->Execute(sql);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  ASSERT_TRUE(session_->Execute("SET vectorized_execution = default").ok());

  EXPECT_EQ(SortedRows(*merged), SortedRows(*row));
  EXPECT_FALSE(merged->rows.empty());
}

TEST_F(DeltaScanTest, SessionOverrideBypassesPlanCache) {
  ASSERT_TRUE(session_->Execute("CREATE TABLE pc (a int) DISTRIBUTED BY (a)").ok());
  ASSERT_TRUE(
      session_->Execute("INSERT INTO pc SELECT i FROM generate_series(1, 50) i").ok());
  const std::string sql = "SELECT count(*) FROM pc";
  ASSERT_TRUE(session_->Execute(sql).ok());  // caches the delta-merged plan

  // With the override active the cached (vectorized) plan must not be served:
  // no new hit, and the row-engine result is still correct.
  ASSERT_TRUE(session_->Execute("SET vectorized_execution = off").ok());
  uint64_t hits_before = Counter("plan_cache.hits");
  auto r = session_->Execute(sql);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Counter("plan_cache.hits"), hits_before);
  EXPECT_EQ(r->rows[0][0].int_val(), 50);
  ASSERT_TRUE(session_->Execute("SET vectorized_execution = default").ok());
}

TEST_F(DeltaScanTest, SealedGroupsKeepServingAndStatusViewReports) {
  ASSERT_TRUE(session_->Execute("CREATE TABLE big (a int, b int) DISTRIBUTED BY (a)").ok());
  // Enough rows per segment to seal multiple 1024-row groups.
  ASSERT_TRUE(session_
                  ->Execute("INSERT INTO big SELECT i, i % 13 "
                            "FROM generate_series(0, 9999) i")
                  .ok());
  auto before = session_->Execute("SELECT sum(b) FROM big");
  ASSERT_TRUE(before.ok());
  SealAll();
  EXPECT_GT(Counter("delta.sealed_groups"), 0u);

  // Sealed groups + open tail still add up to the same answer.
  auto after = session_->Execute("SELECT sum(b) FROM big");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].int_val(), before->rows[0][0].int_val());

  auto status = session_->Execute(
      "SELECT segment, table_name, lag, sealed_groups, sealed_rows, open_rows "
      "FROM gp_delta_status");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  ASSERT_FALSE(status->rows.empty());
  int64_t sealed_rows = 0;
  int64_t open_rows = 0;
  for (const Row& row : status->rows) {
    EXPECT_EQ(row[1].string_val(), "big");
    sealed_rows += row[4].int_val();
    open_rows += row[5].int_val();
  }
  EXPECT_GT(sealed_rows, 0);
  EXPECT_EQ(sealed_rows + open_rows, 10000);

  // Delete everything; after the creating/deleting txns are globally old the
  // seal pass reclaims whole dead groups and logs the frees.
  ASSERT_TRUE(session_->Execute("DELETE FROM big").ok());
  auto empty = session_->Execute("SELECT count(*) FROM big");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->rows[0][0].int_val(), 0);
  SealAll();
  auto still_empty = session_->Execute("SELECT count(*) FROM big");
  ASSERT_TRUE(still_empty.ok());
  EXPECT_EQ(still_empty->rows[0][0].int_val(), 0);
}

TEST_F(DeltaScanTest, DeltaScanSurvivesCrashRecovery) {
  ASSERT_TRUE(session_->Execute("CREATE TABLE cr (a int, b int) DISTRIBUTED BY (a)").ok());
  ASSERT_TRUE(session_
                  ->Execute("INSERT INTO cr SELECT i, i FROM generate_series(1, 1000) i")
                  .ok());
  ASSERT_TRUE(session_->Execute("DELETE FROM cr WHERE a <= 100").ok());

  ASSERT_TRUE(cluster_->CrashSegment(0).ok());
  ASSERT_TRUE(cluster_->RecoverSegment(0).ok());

  auto r = session_->Execute("SELECT count(*) AS n, sum(b) AS s FROM cr");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].int_val(), 900);
  EXPECT_EQ(r->rows[0][1].int_val(), (1000 * 1001 / 2) - (100 * 101 / 2));

  // Fresh writes after recovery keep flowing into the delta store.
  ASSERT_TRUE(session_->Execute("INSERT INTO cr VALUES (2000, 7)").ok());
  auto r2 = session_->Execute("SELECT count(*) FROM cr WHERE b = 7");
  ASSERT_TRUE(r2.ok());
  EXPECT_GE(r2->rows[0][0].int_val(), 1);
  EXPECT_GT(Counter("delta.merged_scans"), 0u);
}

TEST_F(DeltaScanTest, UncommittedRowsOfOtherSessionsStayInvisible) {
  ASSERT_TRUE(session_->Execute("CREATE TABLE iso (a int) DISTRIBUTED BY (a)").ok());
  ASSERT_TRUE(session_->Execute("INSERT INTO iso VALUES (1), (2), (3)").ok());

  auto writer = cluster_->Connect();
  ASSERT_TRUE(writer->Execute("BEGIN").ok());
  ASSERT_TRUE(writer->Execute("INSERT INTO iso VALUES (100)").ok());

  // The open transaction's insert is in the delta store (records append at
  // execution time) but must not be visible to another snapshot.
  auto r = session_->Execute("SELECT count(*) FROM iso");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].int_val(), 3);

  ASSERT_TRUE(writer->Execute("COMMIT").ok());
  auto r2 = session_->Execute("SELECT count(*) FROM iso");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows[0][0].int_val(), 4);
}

}  // namespace
}  // namespace gphtap
