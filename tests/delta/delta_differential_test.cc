// Randomized differential test (seeds 42 / 1337 / 7): a heap table under
// concurrent inserts, deletes, and seal passes, compared at quiesce points —
// the vectorized delta-merged scan must return exactly the rows the row
// engine returns. READ COMMITTED takes a fresh snapshot per statement, so
// writers are paused at each compare point to make the two statements read
// the same database state.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/session.h"

namespace gphtap {
namespace {

std::string RowText(const Row& row) {
  std::string s;
  for (const Datum& d : row) {
    s += d.is_null() ? "NULL" : d.ToString();
    s += "|";
  }
  return s;
}

std::vector<std::string> SortedRows(const QueryResult& r) {
  std::vector<std::string> out;
  for (const Row& row : r.rows) out.push_back(RowText(row));
  std::sort(out.begin(), out.end());
  return out;
}

void RunSeed(uint32_t seed) {
  ClusterOptions options;
  options.num_segments = 2;
  options.vectorized_execution_enabled = true;
  options.delta_store_enabled = true;
  options.delta_seal_period_us = 2'000;  // aggressive background sealing
  auto cluster = std::make_unique<Cluster>(options);

  auto setup = cluster->Connect();
  ASSERT_TRUE(setup
                  ->Execute("CREATE TABLE d (k int, grp int, v int) "
                            "DISTRIBUTED BY (k)")
                  .ok());

  constexpr int kWriters = 3;
  constexpr int kRounds = 6;
  constexpr int kOpsPerBurst = 120;

  std::atomic<int64_t> next_key{0};
  // One session per writer; each burst mixes inserts and deletes.
  std::vector<std::shared_ptr<Session>> writers;
  for (int w = 0; w < kWriters; ++w) writers.push_back(cluster->Connect());

  auto reader = cluster->Connect();
  std::mt19937 rng(seed);

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> burst;
    for (int w = 0; w < kWriters; ++w) {
      uint32_t wseed = rng();
      burst.emplace_back([&, w, wseed] {
        std::mt19937 wrng(wseed);
        for (int op = 0; op < kOpsPerBurst; ++op) {
          if (wrng() % 4 != 0) {
            int64_t k = next_key.fetch_add(1, std::memory_order_relaxed);
            std::string sql = "INSERT INTO d VALUES (" + std::to_string(k) + ", " +
                              std::to_string(wrng() % 7) + ", " +
                              std::to_string(wrng() % 100) + ")";
            EXPECT_TRUE(writers[static_cast<size_t>(w)]->Execute(sql).ok());
          } else {
            int64_t k = static_cast<int64_t>(
                wrng() % std::max<int64_t>(1, next_key.load(std::memory_order_relaxed)));
            std::string sql = "DELETE FROM d WHERE k = " + std::to_string(k);
            EXPECT_TRUE(writers[static_cast<size_t>(w)]->Execute(sql).ok());
          }
        }
      });
    }
    // Interleave explicit seal passes with the writing burst.
    std::thread sealer([&] {
      for (int i = 0; i < 5; ++i) {
        for (int s = 0; s < cluster->num_segments(); ++s) {
          (void)cluster->SealDeltaNow(s);
        }
      }
    });
    for (auto& t : burst) t.join();
    sealer.join();

    // Quiesce point: writers are parked, so both engines read the same state.
    const std::string sql = "SELECT k, grp, v FROM d WHERE v % 3 != 1";
    auto merged = reader->Execute(sql);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ASSERT_TRUE(reader->Execute("SET vectorized_execution = off").ok());
    auto row = reader->Execute(sql);
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    ASSERT_TRUE(reader->Execute("SET vectorized_execution = default").ok());
    EXPECT_EQ(SortedRows(*merged), SortedRows(*row))
        << "seed " << seed << " round " << round;
  }

  // The vectorized side must actually have run delta-merged scans.
  MetricsSnapshot snap = cluster->StatsSnapshot();
  EXPECT_GT(snap.counter("delta.merged_scans"), 0u) << "seed " << seed;
  EXPECT_GT(snap.counter("vec.batches"), 0u) << "seed " << seed;
}

TEST(DeltaDifferentialTest, Seed42) { RunSeed(42); }
TEST(DeltaDifferentialTest, Seed1337) { RunSeed(1337); }
TEST(DeltaDifferentialTest, Seed7) { RunSeed(7); }

}  // namespace
}  // namespace gphtap
