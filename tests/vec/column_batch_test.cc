// ColumnBatch mechanics and kernel-vs-row-engine scalar parity: every kernel
// must agree with EvalExpr/EvalPredicate/AggUpdateValue on the same inputs,
// including NULL propagation, three-valued AND/OR, short-circuit error
// suppression, and redistribution hash routing.
#include "vec/column_batch.h"

#include <gtest/gtest.h>

#include "exec/agg_ops.h"
#include "vec/vec_kernels.h"

namespace gphtap {
namespace {

ColumnBatch TestBatch() {
  // col0: ints with a NULL; col1: ints incl. zero (division hazard);
  // col2: doubles; col3: strings with a NULL.
  std::vector<Row> rows = {
      {Datum(int64_t{10}), Datum(int64_t{2}), Datum(1.5), Datum("a")},
      {Datum(int64_t{-3}), Datum(int64_t{0}), Datum(-0.5), Datum("b")},
      {Datum::Null(), Datum(int64_t{7}), Datum(2.25), Datum("c")},
      {Datum(int64_t{42}), Datum(int64_t{6}), Datum(0.0), Datum::Null()},
      {Datum(int64_t{5}), Datum(int64_t{5}), Datum(9.75), Datum("ee")},
  };
  return ColumnBatch::FromRows(rows);
}

TEST(ColumnBatchTest, AppendMaterializeRoundTrip) {
  ColumnBatch b = TestBatch();
  EXPECT_EQ(b.rows, 5u);
  EXPECT_EQ(b.ActiveRows(), 5u);
  EXPECT_EQ(b.NumColumns(), 4u);
  Row r2 = b.MaterializeRow(2);
  EXPECT_TRUE(r2[0].is_null());
  EXPECT_EQ(r2[1].int_val(), 7);
  EXPECT_EQ(r2[3].string_val(), "c");
}

TEST(ColumnBatchTest, CompactDropsUnselectedRows) {
  ColumnBatch b = TestBatch();
  b.sel = {0, 3};
  b.Compact();
  EXPECT_EQ(b.rows, 2u);
  EXPECT_EQ(b.ActiveRows(), 2u);
  EXPECT_EQ(b.columns[0].GetDatum(0).int_val(), 10);
  EXPECT_EQ(b.columns[0].GetDatum(1).int_val(), 42);
  EXPECT_EQ(b.sel, (std::vector<int32_t>{0, 1}));
}

TEST(ColumnBatchTest, FootprintCountsLiveRowsOnly) {
  ColumnBatch b = TestBatch();
  int64_t full = b.FootprintBytes();
  b.sel = {1};
  int64_t one = b.FootprintBytes();
  EXPECT_GT(full, one);
  EXPECT_GT(one, 0);
}

// Every expression here is evaluated by both engines over every row; results
// (value, NULL-ness, or error) must match exactly.
void ExpectParity(const ExprPtr& e, const ColumnBatch& b) {
  ColumnVector out;
  Status vs = VecEval(*e, b, b.sel, &out);
  // The batch kernel fails the whole batch if ANY live row errors; the row
  // engine errors per row. At the query level both abort, so parity means:
  // vec errors iff at least one row errors.
  bool any_row_error = false;
  for (int32_t r : b.sel) {
    if (!EvalExpr(*e, b.MaterializeRow(r)).ok()) any_row_error = true;
  }
  EXPECT_EQ(!vs.ok(), any_row_error)
      << e->ToString() << ": engines disagree on whether evaluation errors ("
      << vs.ToString() << ")";
  if (!vs.ok() || any_row_error) return;
  for (int32_t r : b.sel) {
    auto rowv = EvalExpr(*e, b.MaterializeRow(r));
    ASSERT_TRUE(rowv.ok());
    Datum vecd = out.GetDatum(static_cast<size_t>(r));
    EXPECT_EQ(rowv->is_null(), vecd.is_null()) << e->ToString() << " row " << r;
    if (!rowv->is_null()) {
      EXPECT_EQ(rowv->Compare(vecd), 0)
          << e->ToString() << " row " << r << ": " << rowv->ToString() << " vs "
          << vecd.ToString();
    }
  }
}

TEST(VecKernelsTest, EvalParityWithRowEngine) {
  ColumnBatch b = TestBatch();
  auto c = [](int i) { return Expr::Column(i); };
  auto k = [](int64_t v) { return Expr::Const(Datum(v)); };
  std::vector<ExprPtr> exprs = {
      Expr::Binary(BinOp::kAdd, c(0), c(1)),
      Expr::Binary(BinOp::kSub, c(0), k(1)),
      Expr::Binary(BinOp::kMul, c(2), c(2)),
      Expr::Binary(BinOp::kAdd, c(0), c(2)),  // int + double promotion
      Expr::Binary(BinOp::kAdd, c(3), c(3)),  // string concat with NULL row
      Expr::Binary(BinOp::kLt, c(0), c(1)),
      Expr::Binary(BinOp::kGe, c(2), Expr::Const(Datum(1.0))),
      Expr::Binary(BinOp::kEq, c(3), Expr::Const(Datum("b"))),
      Expr::Binary(BinOp::kNe, c(0), k(42)),
      Expr::Not(Expr::Binary(BinOp::kGt, c(0), k(0))),
      Expr::IsNull(c(0)),
      Expr::IsNull(c(3)),
      Expr::Binary(BinOp::kAnd, Expr::Binary(BinOp::kGt, c(0), k(0)),
                   Expr::Binary(BinOp::kLt, c(1), k(6))),
      Expr::Binary(BinOp::kOr, Expr::IsNull(c(0)),
                   Expr::Binary(BinOp::kEq, c(1), k(5))),
      Expr::Binary(BinOp::kMod, c(0), k(3)),
  };
  for (const ExprPtr& e : exprs) ExpectParity(e, b);
}

TEST(VecKernelsTest, ShortCircuitSuppressesDivisionByZero) {
  ColumnBatch b = TestBatch();
  // Row 1 has col1 == 0. "col1 != 0 AND 10 / col1 > 1": the row engine
  // short-circuits the division away; the vec kernel must too.
  ExprPtr guarded = Expr::Binary(
      BinOp::kAnd,
      Expr::Binary(BinOp::kNe, Expr::Column(1), Expr::Const(Datum(int64_t{0}))),
      Expr::Binary(BinOp::kGt,
                   Expr::Binary(BinOp::kDiv, Expr::Const(Datum(int64_t{10})),
                                Expr::Column(1)),
                   Expr::Const(Datum(int64_t{1}))));
  ColumnVector out;
  ASSERT_TRUE(VecEval(*guarded, b, b.sel, &out).ok());
  ExpectParity(guarded, b);

  // OR with a true left arm likewise skips the poisoned right arm.
  ExprPtr or_guard = Expr::Binary(
      BinOp::kOr,
      Expr::Binary(BinOp::kEq, Expr::Column(1), Expr::Const(Datum(int64_t{0}))),
      Expr::Binary(BinOp::kGt,
                   Expr::Binary(BinOp::kDiv, Expr::Const(Datum(int64_t{10})),
                                Expr::Column(1)),
                   Expr::Const(Datum(int64_t{0}))));
  ExpectParity(or_guard, b);

  // Unguarded division must error on both engines.
  ExprPtr unguarded = Expr::Binary(BinOp::kDiv, Expr::Const(Datum(int64_t{1})),
                                   Expr::Column(1));
  ExpectParity(unguarded, b);
}

TEST(VecKernelsTest, FilterMatchesEvalPredicate) {
  ColumnBatch b = TestBatch();
  ExprPtr pred = Expr::Binary(
      BinOp::kOr,
      Expr::Binary(BinOp::kGt, Expr::Column(0), Expr::Const(Datum(int64_t{4}))),
      Expr::IsNull(Expr::Column(3)));
  std::vector<int32_t> expect;
  for (int32_t r = 0; r < static_cast<int32_t>(b.rows); ++r) {
    auto keep = EvalPredicate(*pred, b.MaterializeRow(r));
    ASSERT_TRUE(keep.ok());
    if (*keep) expect.push_back(r);
  }
  ASSERT_TRUE(VecFilterBatch(*pred, &b).ok());
  EXPECT_EQ(b.sel, expect);
  // NULL predicate results reject the row (row 2: NULL > 4 is unknown), so
  // row 2 must be gone unless col3 was NULL there (it wasn't).
  for (int32_t r : b.sel) EXPECT_NE(r, 2);
}

TEST(VecKernelsTest, FilterOnAlreadyFilteredBatchComposes) {
  ColumnBatch b = TestBatch();
  ExprPtr p1 = Expr::Binary(BinOp::kGt, Expr::Column(0),
                            Expr::Const(Datum(int64_t{0})));  // rows 0,3,4
  ExprPtr p2 = Expr::Binary(BinOp::kLt, Expr::Column(0),
                            Expr::Const(Datum(int64_t{42})));  // then rows 0,4
  ASSERT_TRUE(VecFilterBatch(*p1, &b).ok());
  EXPECT_EQ(b.sel, (std::vector<int32_t>{0, 3, 4}));
  ASSERT_TRUE(VecFilterBatch(*p2, &b).ok());
  EXPECT_EQ(b.sel, (std::vector<int32_t>{0, 4}));
}

TEST(VecKernelsTest, ProjectionMatchesRowEngine) {
  ColumnBatch b = TestBatch();
  b.sel = {0, 2, 4};  // project a filtered batch
  std::vector<ExprPtr> exprs = {
      Expr::Binary(BinOp::kMul, Expr::Column(1), Expr::Const(Datum(int64_t{2}))),
      Expr::Column(3),
  };
  ColumnBatch out;
  ASSERT_TRUE(VecProjectBatch(exprs, b, &out).ok());
  ASSERT_EQ(out.ActiveRows(), 3u);
  EXPECT_EQ(out.rows, 3u);  // dense output
  size_t i = 0;
  for (int32_t r : std::vector<int32_t>{0, 2, 4}) {
    Row row = b.MaterializeRow(r);
    for (size_t e = 0; e < exprs.size(); ++e) {
      auto want = EvalExpr(*exprs[e], row);
      ASSERT_TRUE(want.ok());
      Datum got = out.columns[e].GetDatum(i);
      EXPECT_EQ(want->is_null(), got.is_null());
      if (!want->is_null()) EXPECT_EQ(want->Compare(got), 0);
    }
    ++i;
  }
}

TEST(VecKernelsTest, PartitionRoutesLikeHashRowKey) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) {
    rows.push_back(Row{Datum(i), Datum(i % 7), Datum("s" + std::to_string(i))});
  }
  ColumnBatch b = ColumnBatch::FromRows(rows);
  const std::vector<int> hash_cols = {1, 2};
  const int targets = 4;
  std::vector<ColumnBatch> parts;
  ASSERT_TRUE(VecPartitionBatch(b, hash_cols, targets, &parts).ok());
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  for (int t = 0; t < targets; ++t) {
    for (int32_t r : parts[static_cast<size_t>(t)].sel) {
      Row row = parts[static_cast<size_t>(t)].MaterializeRow(r);
      EXPECT_EQ(static_cast<int>(HashRowKey(row, hash_cols) %
                                 static_cast<uint64_t>(targets)),
                t);
      ++total;
    }
  }
  EXPECT_EQ(total, rows.size());
}

TEST(VecKernelsTest, AggUpdateMatchesRowAccumulation) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 50; ++i) {
    rows.push_back(Row{i % 9 == 0 ? Datum::Null() : Datum(i),
                       Datum(static_cast<double>(i) * 0.25)});
  }
  ColumnBatch b = ColumnBatch::FromRows(rows);
  for (AggFunc fn : {AggFunc::kCountStar, AggFunc::kCount, AggFunc::kSum,
                     AggFunc::kAvg, AggFunc::kMin, AggFunc::kMax}) {
    for (size_t col : {size_t{0}, size_t{1}}) {
      AggState vec_state, row_state;
      VecAggUpdate(fn, b.columns[col], b.sel, &vec_state);
      for (int32_t r : b.sel) {
        AggUpdateValue(fn, &row_state,
                       b.columns[col].GetDatum(static_cast<size_t>(r)));
      }
      Row vec_emit, row_emit;
      AggEmitFinal(AggSpec{fn, nullptr}, vec_state, &vec_emit);
      AggEmitFinal(AggSpec{fn, nullptr}, row_state, &row_emit);
      ASSERT_EQ(vec_emit.size(), row_emit.size());
      for (size_t i = 0; i < vec_emit.size(); ++i) {
        EXPECT_EQ(vec_emit[i].is_null(), row_emit[i].is_null())
            << AggFuncName(fn) << " col " << col;
        if (!vec_emit[i].is_null()) {
          EXPECT_EQ(vec_emit[i].Compare(row_emit[i]), 0)
              << AggFuncName(fn) << " col " << col;
        }
      }
    }
  }
}

// Regression: VecEval's output vector used to be grow-only — evaluating a big
// batch then a smaller one left stale tail entries visible to consumers that
// sized their loops off the output. The contract is now size == batch.rows,
// exactly, on every call.
TEST(VecKernelsTest, EvalOutputSizedToEachBatchNotGrowOnly) {
  ExprPtr e = Expr::Binary(BinOp::kAdd, Expr::Column(0),
                           Expr::Const(Datum(int64_t{1})));
  ColumnBatch big = TestBatch();  // 5 rows
  ColumnVector out;
  ASSERT_TRUE(VecEval(*e, big, big.sel, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.GetDatum(4).int_val(), 6);

  std::vector<Row> small_rows = {{Datum(int64_t{100})}, {Datum(int64_t{200})}};
  ColumnBatch small = ColumnBatch::FromRows(small_rows);
  ASSERT_TRUE(VecEval(*e, small, small.sel, &out).ok());
  EXPECT_EQ(out.size(), 2u);  // shrank with the batch; no stale row 2..4
  EXPECT_EQ(out.GetDatum(0).int_val(), 101);
  EXPECT_EQ(out.GetDatum(1).int_val(), 201);
}

// Typed columns must keep exact row-engine semantics when every row is
// filtered out: kernels see an empty position list and must not touch state.
TEST(VecKernelsTest, AllFilteredBatchLeavesAggUntouched) {
  ColumnBatch b = TestBatch();
  ExprPtr none = Expr::Binary(BinOp::kGt, Expr::Column(0),
                              Expr::Const(Datum(int64_t{1000})));
  ASSERT_TRUE(VecFilterBatch(*none, &b).ok());
  EXPECT_TRUE(b.sel.empty());
  AggState st;
  VecAggUpdate(AggFunc::kSum, b.columns[0], b.sel, &st);
  VecAggUpdate(AggFunc::kCountStar, b.columns[0], b.sel, &st);
  Row emit;
  AggEmitFinal(AggSpec{AggFunc::kSum, nullptr}, st, &emit);
  EXPECT_TRUE(emit[0].is_null());  // sum over zero rows is NULL, not 0
}

// Int sum overflowing into mixed int/double accumulation: the tight int loop
// must bail to the generic path at the first non-int datum.
TEST(VecKernelsTest, SumSwitchesToDoubleMidColumn) {
  std::vector<Row> rows = {{Datum(int64_t{1})}, {Datum(int64_t{2})},
                           {Datum(2.5)},        {Datum(int64_t{4})}};
  ColumnBatch b = ColumnBatch::FromRows(rows);
  AggState vec_state, row_state;
  VecAggUpdate(AggFunc::kSum, b.columns[0], b.sel, &vec_state);
  for (int32_t r : b.sel) {
    AggUpdateValue(AggFunc::kSum, &row_state,
                   b.columns[0].GetDatum(static_cast<size_t>(r)));
  }
  Row ve, re;
  AggEmitFinal(AggSpec{AggFunc::kSum, nullptr}, vec_state, &ve);
  AggEmitFinal(AggSpec{AggFunc::kSum, nullptr}, row_state, &re);
  ASSERT_EQ(ve.size(), 1u);
  EXPECT_EQ(ve[0].Compare(re[0]), 0);
  EXPECT_DOUBLE_EQ(ve[0].AsDouble(), 9.5);
}

}  // namespace
}  // namespace gphtap
