// End-to-end vectorized execution: identical results with the batch engine on
// and off, EXPLAIN/EXPLAIN ANALYZE surfacing, vec.* metrics, batched motion
// transport, and row-engine fallback for non-vectorizable plan shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/session.h"

namespace gphtap {
namespace {

std::string RowText(const Row& row) {
  std::string s;
  for (const Datum& d : row) {
    s += d.is_null() ? "NULL" : d.ToString();
    s += "|";
  }
  return s;
}

std::vector<std::string> SortedRows(const QueryResult& r) {
  std::vector<std::string> out;
  for (const Row& row : r.rows) out.push_back(RowText(row));
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Cluster> MakeCluster(bool vectorized) {
  ClusterOptions options;
  options.num_segments = 3;
  options.vectorized_execution_enabled = vectorized;
  return std::make_unique<Cluster>(options);
}

// Loads the same dataset into a cluster: an AO-column fact table spanning
// multiple row groups (with deletes), plus a small heap dimension table.
void Load(Cluster* cluster) {
  auto s = cluster->Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE fact (k int, grp int, v int, w double) "
                         "WITH (storage=ao_column) DISTRIBUTED BY (k)")
                  .ok());
  ASSERT_TRUE(
      s->Execute("CREATE TABLE dim (grp int, name text) DISTRIBUTED BY (grp)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO fact SELECT i, i % 10, i % 97, i * 0.5 "
                         "FROM generate_series(0, 4999) i")
                  .ok());
  ASSERT_TRUE(s->Execute("INSERT INTO dim SELECT i, 'g' FROM generate_series(0, 9) i")
                  .ok());
  // Punch visibility holes so batch selection vectors are non-trivial.
  ASSERT_TRUE(s->Execute("DELETE FROM fact WHERE v = 13").ok());
}

void ExpectSameResults(const std::string& sql) {
  auto vec_cluster = MakeCluster(true);
  auto row_cluster = MakeCluster(false);
  Load(vec_cluster.get());
  Load(row_cluster.get());
  auto vec = vec_cluster->Connect()->Execute(sql);
  auto row = row_cluster->Connect()->Execute(sql);
  ASSERT_TRUE(vec.ok()) << sql << ": " << vec.status().ToString();
  ASSERT_TRUE(row.ok()) << sql << ": " << row.status().ToString();
  EXPECT_EQ(SortedRows(*vec), SortedRows(*row)) << sql;
  // The vectorized cluster must actually have used the batch engine.
  EXPECT_GT(vec_cluster->StatsSnapshot().counter("vec.batches"), 0u) << sql;
  EXPECT_EQ(row_cluster->StatsSnapshot().counter("vec.batches"), 0u) << sql;
}

TEST(VecExecutorTest, ScanFilterMatchesRowEngine) {
  ExpectSameResults("SELECT k, v FROM fact WHERE v > 50 AND k % 3 = 0");
}

TEST(VecExecutorTest, GlobalAggregateMatchesRowEngine) {
  ExpectSameResults(
      "SELECT count(*) AS n, sum(v) AS s, min(w) AS lo, max(w) AS hi, avg(v) AS m "
      "FROM fact WHERE v < 90");
}

TEST(VecExecutorTest, GroupedAggregateMatchesRowEngine) {
  ExpectSameResults(
      "SELECT grp, count(*) AS n, sum(v) AS s FROM fact GROUP BY grp "
      "ORDER BY grp");
}

TEST(VecExecutorTest, ProjectionExpressionsMatchRowEngine) {
  ExpectSameResults("SELECT k + v AS a, w * 2.0 AS b FROM fact WHERE grp = 4");
}

TEST(VecExecutorTest, LimitStopsBatchProduction) {
  auto cluster = MakeCluster(true);
  Load(cluster.get());
  auto r = cluster->Connect()->Execute("SELECT k FROM fact LIMIT 17");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 17u);
}

TEST(VecExecutorTest, JoinFallsBackWithVectorizedLeaves) {
  // dim is a heap table, so the join itself stays on the row engine; the
  // AO-column scan under it is still marked, exercising the batch->row
  // boundary inside a join pipeline.
  ExpectSameResults(
      "SELECT f.grp, count(*) AS n, sum(f.v) AS s FROM fact f "
      "JOIN dim d ON f.grp = d.grp GROUP BY f.grp ORDER BY f.grp");
}

TEST(VecExecutorTest, ExplainAnalyzeShowsVectorizedHashJoin) {
  // CH-benCH shape: AO-column fact joined to an AO-column dimension with a
  // grouped aggregate on top — the whole pipeline runs on the batch engine,
  // and EXPLAIN ANALYZE must say so on the HashJoin line itself.
  auto cluster = MakeCluster(true);
  Load(cluster.get());
  auto s = cluster->Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE item (grp int, price int) "
                         "WITH (storage=ao_column) DISTRIBUTED BY (grp)")
                  .ok());
  ASSERT_TRUE(s->Execute("INSERT INTO item SELECT i, i * 3 "
                         "FROM generate_series(0, 9) i")
                  .ok());
  auto r = s->Execute(
      "EXPLAIN ANALYZE SELECT f.grp, count(*) AS n, sum(i.price) AS rev "
      "FROM fact f JOIN item i ON f.grp = i.grp GROUP BY f.grp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text;
  for (const Row& row : r->rows) text += RowText(row) + "\n";
  bool join_vectorized_with_batches = false;
  size_t pos = 0;
  while ((pos = text.find("HashJoin", pos)) != std::string::npos) {
    std::string line = text.substr(pos, text.find('\n', pos) - pos);
    if (line.find("(vectorized)") != std::string::npos &&
        line.find("batches=") != std::string::npos) {
      join_vectorized_with_batches = true;
    }
    pos += 1;
  }
  EXPECT_TRUE(join_vectorized_with_batches)
      << "no vectorized HashJoin with batch counts in:\n"
      << text;
}

TEST(VecExecutorTest, DistinctOverVectorizedScan) {
  ExpectSameResults("SELECT DISTINCT grp FROM fact ORDER BY grp");
}

TEST(VecExecutorTest, ExplainMarksVectorizedNodes) {
  auto cluster = MakeCluster(true);
  Load(cluster.get());
  auto s = cluster->Connect();
  auto plan = s->Execute("EXPLAIN SELECT grp, sum(v) AS s FROM fact GROUP BY grp");
  ASSERT_TRUE(plan.ok());
  std::string text;
  for (const Row& row : plan->rows) text += RowText(row) + "\n";
  EXPECT_NE(text.find("(vectorized)"), std::string::npos) << text;
  EXPECT_NE(text.find("SeqScan"), std::string::npos) << text;

  // Heap tables never vectorize.
  auto heap_plan = s->Execute("EXPLAIN SELECT grp FROM dim");
  ASSERT_TRUE(heap_plan.ok());
  std::string heap_text;
  for (const Row& row : heap_plan->rows) heap_text += RowText(row) + "\n";
  EXPECT_EQ(heap_text.find("(vectorized)"), std::string::npos) << heap_text;
}

TEST(VecExecutorTest, ExplainRespectsClusterSwitch) {
  auto cluster = MakeCluster(false);
  Load(cluster.get());
  auto plan = cluster->Connect()->Execute("EXPLAIN SELECT sum(v) AS s FROM fact");
  ASSERT_TRUE(plan.ok());
  std::string text;
  for (const Row& row : plan->rows) text += RowText(row) + "\n";
  EXPECT_EQ(text.find("(vectorized)"), std::string::npos) << text;
}

TEST(VecExecutorTest, ExplainAnalyzeReportsBatchCounts) {
  auto cluster = MakeCluster(true);
  Load(cluster.get());
  auto r = cluster->Connect()->Execute(
      "EXPLAIN ANALYZE SELECT grp, sum(v) AS s FROM fact WHERE v > 10 GROUP BY grp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text;
  for (const Row& row : r->rows) text += RowText(row) + "\n";
  EXPECT_NE(text.find("(vectorized)"), std::string::npos) << text;
  EXPECT_NE(text.find("batches="), std::string::npos) << text;
  EXPECT_NE(text.find("actual rows="), std::string::npos) << text;
}

TEST(VecExecutorTest, VecMetricsAndBatchedMotionTraffic) {
  auto cluster = MakeCluster(true);
  Load(cluster.get());
  auto s = cluster->Connect();
  ASSERT_TRUE(s->Execute("SELECT grp, count(*) AS n FROM fact GROUP BY grp").ok());
  MetricsSnapshot snap = cluster->StatsSnapshot();
  EXPECT_GT(snap.counter("vec.batches"), 0u);
  EXPECT_GT(snap.counter("vec.rows"), 0u);
  // Partial-agg results ride the gather motion as ColumnBatches.
  EXPECT_GT(snap.counter("net.tuple_batches"), 0u);
}

TEST(VecExecutorTest, RowEngineClusterShipsNoBatches) {
  auto cluster = MakeCluster(false);
  Load(cluster.get());
  auto s = cluster->Connect();
  ASSERT_TRUE(s->Execute("SELECT grp, count(*) AS n FROM fact GROUP BY grp").ok());
  MetricsSnapshot snap = cluster->StatsSnapshot();
  EXPECT_EQ(snap.counter("vec.batches"), 0u);
  EXPECT_EQ(snap.counter("net.tuple_batches"), 0u);
}

TEST(VecExecutorTest, DeleteVisibilityRespectedAfterBatchScan) {
  auto cluster = MakeCluster(true);
  Load(cluster.get());
  auto s = cluster->Connect();
  auto before = s->Execute("SELECT count(*) AS n FROM fact WHERE grp = 7");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(s->Execute("DELETE FROM fact WHERE grp = 7").ok());
  auto after = s->Execute("SELECT count(*) AS n FROM fact WHERE grp = 7");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(before->rows[0][0].int_val(), 0);
  EXPECT_EQ(after->rows[0][0].int_val(), 0);
}

}  // namespace
}  // namespace gphtap
