// Randomized differential testing: the same generated queries run on two
// clusters that differ only in vectorized_execution_enabled must return
// identical row sets. Predicates are built from a small grammar over the
// fact table's columns, covering arithmetic, comparisons, NULL handling,
// and nested AND/OR/NOT — the surface where the two engines could diverge.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/session.h"
#include "common/rng.h"

namespace gphtap {
namespace {

std::string RowText(const Row& row) {
  std::string s;
  for (const Datum& d : row) {
    s += d.is_null() ? "NULL" : d.ToString();
    s += "|";
  }
  return s;
}

std::vector<std::string> SortedRows(const QueryResult& r) {
  std::vector<std::string> out;
  for (const Row& row : r.rows) out.push_back(RowText(row));
  std::sort(out.begin(), out.end());
  return out;
}

// Random arithmetic term over the int columns (k, grp, v). Division and modulus
// use non-zero constants so generated predicates stay error-free — error parity
// is covered deterministically in column_batch_test.
std::string Term(Rng& rng) {
  static const char* cols[] = {"k", "grp", "v"};
  switch (rng.Uniform(6)) {
    case 0:
    case 1:
      return cols[rng.Uniform(3)];
    case 2:
      return std::to_string(rng.UniformRange(-50, 150));
    case 3:
      return std::string(cols[rng.Uniform(3)]) + " + " +
             std::to_string(rng.UniformRange(0, 40));
    case 4:
      return std::string(cols[rng.Uniform(3)]) + " * " +
             std::to_string(rng.UniformRange(1, 5));
    default:
      return std::string(cols[rng.Uniform(3)]) + " % " +
             std::to_string(rng.UniformRange(2, 9));
  }
}

std::string Comparison(Rng& rng) {
  static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
  return Term(rng) + " " + ops[rng.Uniform(6)] + " " + Term(rng);
}

std::string Predicate(Rng& rng, int depth) {
  if (depth <= 0 || rng.Chance(0.4)) return Comparison(rng);
  switch (rng.Uniform(3)) {
    case 0:
      return "(" + Predicate(rng, depth - 1) + " AND " + Predicate(rng, depth - 1) +
             ")";
    case 1:
      return "(" + Predicate(rng, depth - 1) + " OR " + Predicate(rng, depth - 1) +
             ")";
    default:
      return "NOT (" + Predicate(rng, depth - 1) + ")";
  }
}

TEST(VecDifferentialTest, RandomPredicatesAgreeAcrossEngines) {
  auto make = [](bool vectorized) {
    ClusterOptions options;
    options.num_segments = 3;
    options.vectorized_execution_enabled = vectorized;
    return std::make_unique<Cluster>(options);
  };
  auto vec_cluster = make(true);
  auto row_cluster = make(false);
  for (Cluster* c : {vec_cluster.get(), row_cluster.get()}) {
    auto s = c->Connect();
    ASSERT_TRUE(s->Execute("CREATE TABLE fact (k int, grp int, v int) "
                           "WITH (storage=ao_column) DISTRIBUTED BY (k)")
                    .ok());
    ASSERT_TRUE(s->Execute("INSERT INTO fact SELECT i, i % 13, (i * 7) % 101 "
                           "FROM generate_series(0, 2999) i")
                    .ok());
    ASSERT_TRUE(s->Execute("DELETE FROM fact WHERE v = 42").ok());
  }
  auto vec_session = vec_cluster->Connect();
  auto row_session = row_cluster->Connect();

  Rng rng(20260805);
  int compared = 0;
  for (int i = 0; i < 60; ++i) {
    std::string where = Predicate(rng, 3);
    std::string sql;
    switch (i % 3) {
      case 0:
        sql = "SELECT k, grp, v FROM fact WHERE " + where;
        break;
      case 1:
        sql = "SELECT count(*) AS n, sum(v) AS s FROM fact WHERE " + where;
        break;
      default:
        sql = "SELECT grp, count(*) AS n, min(v) AS lo, max(v) AS hi FROM fact "
              "WHERE " +
              where + " GROUP BY grp";
        break;
    }
    auto vec = vec_session->Execute(sql);
    auto row = row_session->Execute(sql);
    ASSERT_EQ(vec.ok(), row.ok()) << sql << "\nvec: " << vec.status().ToString()
                                  << "\nrow: " << row.status().ToString();
    if (!vec.ok()) continue;  // both rejected (e.g. parse limits) — still parity
    EXPECT_EQ(SortedRows(*vec), SortedRows(*row)) << sql;
    ++compared;
  }
  EXPECT_GT(compared, 40) << "too few queries executed to be meaningful";
  EXPECT_GT(vec_cluster->StatsSnapshot().counter("vec.batches"), 0u);
}

}  // namespace
}  // namespace gphtap
