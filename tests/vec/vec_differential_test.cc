// Randomized differential testing: the same generated queries run on two
// clusters that differ only in vectorized_execution_enabled must return
// identical row sets. Predicates are built from a small grammar over the
// fact table's columns, covering arithmetic, comparisons, NULL handling,
// and nested AND/OR/NOT — the surface where the two engines could diverge.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/session.h"
#include "common/rng.h"

namespace gphtap {
namespace {

std::string RowText(const Row& row) {
  std::string s;
  for (const Datum& d : row) {
    s += d.is_null() ? "NULL" : d.ToString();
    s += "|";
  }
  return s;
}

std::vector<std::string> SortedRows(const QueryResult& r) {
  std::vector<std::string> out;
  for (const Row& row : r.rows) out.push_back(RowText(row));
  std::sort(out.begin(), out.end());
  return out;
}

// Random arithmetic term over the int columns (k, grp, v). Division and modulus
// use non-zero constants so generated predicates stay error-free — error parity
// is covered deterministically in column_batch_test.
std::string Term(Rng& rng) {
  static const char* cols[] = {"k", "grp", "v"};
  switch (rng.Uniform(6)) {
    case 0:
    case 1:
      return cols[rng.Uniform(3)];
    case 2:
      return std::to_string(rng.UniformRange(-50, 150));
    case 3:
      return std::string(cols[rng.Uniform(3)]) + " + " +
             std::to_string(rng.UniformRange(0, 40));
    case 4:
      return std::string(cols[rng.Uniform(3)]) + " * " +
             std::to_string(rng.UniformRange(1, 5));
    default:
      return std::string(cols[rng.Uniform(3)]) + " % " +
             std::to_string(rng.UniformRange(2, 9));
  }
}

std::string Comparison(Rng& rng) {
  static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
  return Term(rng) + " " + ops[rng.Uniform(6)] + " " + Term(rng);
}

std::string Predicate(Rng& rng, int depth) {
  if (depth <= 0 || rng.Chance(0.4)) return Comparison(rng);
  switch (rng.Uniform(3)) {
    case 0:
      return "(" + Predicate(rng, depth - 1) + " AND " + Predicate(rng, depth - 1) +
             ")";
    case 1:
      return "(" + Predicate(rng, depth - 1) + " OR " + Predicate(rng, depth - 1) +
             ")";
    default:
      return "NOT (" + Predicate(rng, depth - 1) + ")";
  }
}

TEST(VecDifferentialTest, RandomPredicatesAgreeAcrossEngines) {
  auto make = [](bool vectorized) {
    ClusterOptions options;
    options.num_segments = 3;
    options.vectorized_execution_enabled = vectorized;
    return std::make_unique<Cluster>(options);
  };
  auto vec_cluster = make(true);
  auto row_cluster = make(false);
  for (Cluster* c : {vec_cluster.get(), row_cluster.get()}) {
    auto s = c->Connect();
    ASSERT_TRUE(s->Execute("CREATE TABLE fact (k int, grp int, v int) "
                           "WITH (storage=ao_column) DISTRIBUTED BY (k)")
                    .ok());
    ASSERT_TRUE(s->Execute("INSERT INTO fact SELECT i, i % 13, (i * 7) % 101 "
                           "FROM generate_series(0, 2999) i")
                    .ok());
    ASSERT_TRUE(s->Execute("DELETE FROM fact WHERE v = 42").ok());
  }
  auto vec_session = vec_cluster->Connect();
  auto row_session = row_cluster->Connect();

  Rng rng(20260805);
  int compared = 0;
  for (int i = 0; i < 60; ++i) {
    std::string where = Predicate(rng, 3);
    std::string sql;
    switch (i % 3) {
      case 0:
        sql = "SELECT k, grp, v FROM fact WHERE " + where;
        break;
      case 1:
        sql = "SELECT count(*) AS n, sum(v) AS s FROM fact WHERE " + where;
        break;
      default:
        sql = "SELECT grp, count(*) AS n, min(v) AS lo, max(v) AS hi FROM fact "
              "WHERE " +
              where + " GROUP BY grp";
        break;
    }
    auto vec = vec_session->Execute(sql);
    auto row = row_session->Execute(sql);
    ASSERT_EQ(vec.ok(), row.ok()) << sql << "\nvec: " << vec.status().ToString()
                                  << "\nrow: " << row.status().ToString();
    if (!vec.ok()) continue;  // both rejected (e.g. parse limits) — still parity
    EXPECT_EQ(SortedRows(*vec), SortedRows(*row)) << sql;
    ++compared;
  }
  EXPECT_GT(compared, 40) << "too few queries executed to be meaningful";
  EXPECT_GT(vec_cluster->StatsSnapshot().counter("vec.batches"), 0u);
}

// NULLs in every column type (int, double, string): the typed vectors carry
// a null mask per payload kind, and each kind has its own kernel path.
TEST(VecDifferentialTest, NullsInEveryColumnTypeAgreeAcrossEngines) {
  auto make = [](bool vectorized) {
    ClusterOptions options;
    options.num_segments = 3;
    options.vectorized_execution_enabled = vectorized;
    return std::make_unique<Cluster>(options);
  };
  auto vec_cluster = make(true);
  auto row_cluster = make(false);
  for (Cluster* c : {vec_cluster.get(), row_cluster.get()}) {
    auto s = c->Connect();
    ASSERT_TRUE(s->Execute("CREATE TABLE mixed (k int, i int, d double, t text) "
                           "WITH (storage=ao_column) DISTRIBUTED BY (k)")
                    .ok());
    // Every third int NULL, every fourth double NULL, every fifth string NULL.
    for (int base = 0; base < 2000; base += 500) {
      std::string values;
      for (int k = base; k < base + 500; ++k) {
        if (!values.empty()) values += ", ";
        std::string i = k % 3 == 0 ? "NULL" : std::to_string(k % 41);
        std::string d = k % 4 == 0 ? "NULL" : std::to_string(k % 17) + ".5";
        std::string t = k % 5 == 0 ? "NULL" : "'s" + std::to_string(k % 11) + "'";
        values += "(" + std::to_string(k) + ", " + i + ", " + d + ", " + t + ")";
      }
      ASSERT_TRUE(s->Execute("INSERT INTO mixed VALUES " + values).ok());
    }
  }
  auto vec_session = vec_cluster->Connect();
  auto row_session = row_cluster->Connect();
  const char* queries[] = {
      "SELECT k, i, d, t FROM mixed WHERE i IS NULL",
      "SELECT k, i, d, t FROM mixed WHERE d IS NOT NULL AND i > 20",
      "SELECT k, t FROM mixed WHERE t IS NULL OR i IS NULL",
      "SELECT count(*), count(i), count(d), count(t) FROM mixed",
      "SELECT sum(i), sum(d), min(i), max(d) FROM mixed",
      "SELECT i, count(*), sum(d) FROM mixed GROUP BY i",
      "SELECT k, i + 1, d * 2 FROM mixed WHERE k % 7 = 0",
      "SELECT count(*) FROM mixed WHERE i = i",  // NULL = NULL is not true
  };
  for (const char* sql : queries) {
    auto vec = vec_session->Execute(sql);
    auto row = row_session->Execute(sql);
    ASSERT_EQ(vec.ok(), row.ok()) << sql;
    if (!vec.ok()) continue;
    EXPECT_EQ(SortedRows(*vec), SortedRows(*row)) << sql;
  }
  EXPECT_GT(vec_cluster->StatsSnapshot().counter("vec.batches"), 0u);
}

// A vectorized AO-column scan feeding a join against a heap table: the heap
// side cannot vectorize, so the join bridges engines mid-stream. The counted
// fallback is the boundary where batches re-materialize into rows.
TEST(VecDifferentialTest, MidStreamFallbackAtJoinBoundaryAgrees) {
  auto make = [](bool vectorized) {
    ClusterOptions options;
    options.num_segments = 3;
    options.vectorized_execution_enabled = vectorized;
    return std::make_unique<Cluster>(options);
  };
  auto vec_cluster = make(true);
  auto row_cluster = make(false);
  for (Cluster* c : {vec_cluster.get(), row_cluster.get()}) {
    auto s = c->Connect();
    ASSERT_TRUE(s->Execute("CREATE TABLE fact (k int, dim_id int, v int) "
                           "WITH (storage=ao_column) DISTRIBUTED BY (k)")
                    .ok());
    ASSERT_TRUE(s->Execute("CREATE TABLE dim (id int, label text) "
                           "DISTRIBUTED BY (id)")  // heap: not vectorizable
                    .ok());
    ASSERT_TRUE(s->Execute("INSERT INTO fact SELECT i, i % 20, i * 3 "
                           "FROM generate_series(0, 2999) i")
                    .ok());
    ASSERT_TRUE(s->Execute("INSERT INTO dim SELECT i, 'd' FROM "
                           "generate_series(0, 19) i")
                    .ok());
  }
  auto vec_session = vec_cluster->Connect();
  auto row_session = row_cluster->Connect();
  const char* queries[] = {
      "SELECT fact.k, dim.label FROM fact JOIN dim ON fact.dim_id = dim.id "
      "WHERE fact.v % 5 = 0",
      "SELECT dim.id, count(*), sum(fact.v) FROM fact JOIN dim "
      "ON fact.dim_id = dim.id GROUP BY dim.id",
  };
  for (const char* sql : queries) {
    auto vec = vec_session->Execute(sql);
    auto row = row_session->Execute(sql);
    ASSERT_TRUE(vec.ok()) << sql << ": " << vec.status().ToString();
    ASSERT_TRUE(row.ok()) << sql << ": " << row.status().ToString();
    EXPECT_EQ(SortedRows(*vec), SortedRows(*row)) << sql;
  }
  // The vec cluster both ran batches and bridged at least one boundary.
  EXPECT_GT(vec_cluster->StatsSnapshot().counter("vec.batches"), 0u);
  EXPECT_GT(vec_cluster->StatsSnapshot().counter("vec.fallbacks"), 0u);
}

// Morsel-parallel scans must be indistinguishable from serial ones: same
// rows, and (per segment slice) the same order after the reorder buffer.
TEST(VecDifferentialTest, MorselParallelScanMatchesSerial) {
  for (uint64_t seed : {42u, 1337u, 7u}) {
    auto make = [&](int workers) {
      ClusterOptions options;
      options.num_segments = 2;
      options.vectorized_execution_enabled = true;
      options.vec_morsel_workers = workers;
      return std::make_unique<Cluster>(options);
    };
    auto parallel_cluster = make(4);
    auto serial_cluster = make(1);
    Rng rng(seed);
    // Same generated data on both clusters: enough rows per segment to seal
    // multiple 1024-row groups, with NULLs and deletes in the mix.
    std::vector<std::string> inserts;
    for (int base = 0; base < 10000; base += 1000) {
      std::string values;
      for (int k = base; k < base + 1000; ++k) {
        if (!values.empty()) values += ", ";
        int64_t v = rng.UniformRange(-100, 1000);
        std::string sv = rng.Chance(0.05) ? "NULL" : std::to_string(v);
        values += "(" + std::to_string(k) + ", " + std::to_string(k % 31) +
                  ", " + sv + ")";
      }
      inserts.push_back("INSERT INTO fact VALUES " + values);
    }
    for (Cluster* c : {parallel_cluster.get(), serial_cluster.get()}) {
      auto s = c->Connect();
      ASSERT_TRUE(s->Execute("CREATE TABLE fact (k int, grp int, v int) "
                             "WITH (storage=ao_column) DISTRIBUTED BY (k)")
                      .ok());
      for (const std::string& ins : inserts) ASSERT_TRUE(s->Execute(ins).ok());
      ASSERT_TRUE(s->Execute("DELETE FROM fact WHERE grp = 13").ok());
    }
    auto par = parallel_cluster->Connect();
    auto ser = serial_cluster->Connect();
    const char* queries[] = {
        "SELECT k, grp, v FROM fact WHERE v > 500",
        "SELECT count(*), sum(v), min(v), max(v) FROM fact",
        "SELECT grp, count(*), sum(v) FROM fact GROUP BY grp",
        "SELECT k, v FROM fact WHERE v IS NULL",
        "SELECT k FROM fact WHERE k % 2 = 0 ORDER BY k LIMIT 100",
    };
    for (const char* sql : queries) {
      auto p = par->Execute(sql);
      auto s = ser->Execute(sql);
      ASSERT_TRUE(p.ok()) << "seed " << seed << ": " << sql << ": "
                          << p.status().ToString();
      ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << sql;
      EXPECT_EQ(SortedRows(*p), SortedRows(*s)) << "seed " << seed << ": " << sql;
    }
    // ORDER BY results must match exactly (not just as sets).
    auto p_ord = par->Execute("SELECT k, v FROM fact ORDER BY k");
    auto s_ord = ser->Execute("SELECT k, v FROM fact ORDER BY k");
    ASSERT_TRUE(p_ord.ok() && s_ord.ok());
    ASSERT_EQ(p_ord->rows.size(), s_ord->rows.size());
    for (size_t i = 0; i < p_ord->rows.size(); ++i) {
      ASSERT_EQ(RowText(p_ord->rows[i]), RowText(s_ord->rows[i])) << "row " << i;
    }
    EXPECT_GT(parallel_cluster->StatsSnapshot().counter("vec.morsels"), 0u)
        << "seed " << seed << ": morsel path never engaged";
    EXPECT_EQ(serial_cluster->StatsSnapshot().counter("vec.morsels"), 0u);
  }
}

}  // namespace
}  // namespace gphtap
