#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace gphtap {
namespace {

std::vector<Token> Lex(const std::string& sql) {
  auto r = Tokenize(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, IdentifiersLowercased) {
  auto tokens = Lex("SELECT FooBar _x9");
  ASSERT_EQ(tokens.size(), 4u);  // + end
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "foobar");
  EXPECT_EQ(tokens[2].text, "_x9");
  EXPECT_TRUE(tokens[3].Is(TokenType::kEnd));
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = Lex("1 23.5 0.5 1e3 2E-2 7");
  EXPECT_TRUE(tokens[0].Is(TokenType::kInt));
  EXPECT_TRUE(tokens[1].Is(TokenType::kFloat));
  EXPECT_TRUE(tokens[2].Is(TokenType::kFloat));
  EXPECT_TRUE(tokens[3].Is(TokenType::kFloat));
  EXPECT_TRUE(tokens[4].Is(TokenType::kFloat));
  EXPECT_TRUE(tokens[5].Is(TokenType::kInt));
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  auto tokens = Lex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, TwoCharSymbols) {
  auto tokens = Lex("<= >= <> != = < >");
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "<>");
  EXPECT_EQ(tokens[3].text, "!=");
  EXPECT_EQ(tokens[4].text, "=");
}

TEST(LexerTest, LineComments) {
  auto tokens = Lex("a -- comment with ' and stuff\n b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, KeywordMatchingIsCaseInsensitive) {
  auto tokens = Lex("SeLeCt");
  EXPECT_TRUE(tokens[0].IsWord("select"));
  EXPECT_TRUE(tokens[0].IsWord("SELECT"));
  EXPECT_FALSE(tokens[0].IsWord("selec"));
  EXPECT_FALSE(tokens[0].IsWord("selects"));
}

TEST(LexerTest, ErrorsSurface) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Lex("ab  cd");
  EXPECT_EQ(tokens[0].pos, 0u);
  EXPECT_EQ(tokens[1].pos, 4u);
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kEnd));
}

}  // namespace
}  // namespace gphtap
