// PREPARE / EXECUTE / DEALLOCATE: parameter binding, generic vs custom plan
// selection, catalog-version replanning, and parity with the equivalent
// literal statements.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/session.h"

namespace gphtap {
namespace {

class PrepareExecuteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_segments = 3;
    cluster_ = std::make_unique<Cluster>(options);
    session_ = cluster_->Connect();
    ASSERT_TRUE(session_
                    ->Execute("CREATE TABLE acct (id int, grp int, bal int) "
                              "DISTRIBUTED BY (id)")
                    .ok());
    ASSERT_TRUE(session_
                    ->Execute("INSERT INTO acct SELECT i, i % 7, i * 10 "
                              "FROM generate_series(1, 200) i")
                    .ok());
  }

  std::unique_ptr<Cluster> cluster_;
  std::shared_ptr<Session> session_;
};

TEST_F(PrepareExecuteTest, SelectWithParamsMatchesLiteralStatement) {
  ASSERT_TRUE(
      session_->Execute("PREPARE q AS SELECT bal FROM acct WHERE id = $1").ok());
  for (int id : {1, 42, 200}) {
    auto prepared = session_->Execute("EXECUTE q(" + std::to_string(id) + ")");
    auto literal = session_->Execute("SELECT bal FROM acct WHERE id = " +
                                     std::to_string(id));
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    ASSERT_TRUE(literal.ok());
    ASSERT_EQ(prepared->rows.size(), 1u);
    EXPECT_EQ(prepared->rows[0][0].int_val(), literal->rows[0][0].int_val());
  }
}

TEST_F(PrepareExecuteTest, GenericPlanReusedForNonKeyPredicate) {
  // grp is neither indexed nor the distribution key: the generic plan is as
  // good as a custom one, so PREPARE plans once and EXECUTE only substitutes.
  ASSERT_TRUE(session_
                  ->Execute("PREPARE byg AS SELECT count(*), sum(bal) FROM acct "
                            "WHERE grp = $1")
                  .ok());
  for (int g = 0; g < 7; ++g) {
    auto r = session_->Execute("EXECUTE byg(" + std::to_string(g) + ")");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto lit = session_->Execute("SELECT count(*), sum(bal) FROM acct WHERE grp = " +
                                 std::to_string(g));
    ASSERT_TRUE(lit.ok());
    EXPECT_EQ(r->rows[0][0].int_val(), lit->rows[0][0].int_val());
    EXPECT_EQ(r->rows[0][1].int_val(), lit->rows[0][1].int_val());
  }
}

TEST_F(PrepareExecuteTest, NoParamsPreparedStatement) {
  ASSERT_TRUE(
      session_->Execute("PREPARE total AS SELECT sum(bal) FROM acct").ok());
  auto r1 = session_->Execute("EXECUTE total");
  ASSERT_TRUE(r1.ok());
  auto r2 = session_->Execute("EXECUTE total");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->rows[0][0].int_val(), r2->rows[0][0].int_val());
}

TEST_F(PrepareExecuteTest, DmlThroughExecute) {
  ASSERT_TRUE(session_
                  ->Execute("PREPARE upd AS UPDATE acct SET bal = bal + $1 "
                            "WHERE id = $2")
                  .ok());
  ASSERT_TRUE(session_
                  ->Execute("PREPARE ins AS INSERT INTO acct (id, grp, bal) "
                            "VALUES ($1, $2, $3)")
                  .ok());
  auto upd = session_->Execute("EXECUTE upd(5, 1)");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->affected, 1);
  auto check = session_->Execute("SELECT bal FROM acct WHERE id = 1");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].int_val(), 15);

  ASSERT_TRUE(session_->Execute("EXECUTE ins(1000, 1, -7)").ok());
  auto inserted = session_->Execute("SELECT bal FROM acct WHERE id = 1000");
  ASSERT_TRUE(inserted.ok());
  ASSERT_EQ(inserted->rows.size(), 1u);
  EXPECT_EQ(inserted->rows[0][0].int_val(), -7);

  // Negative argument through the EXECUTE arg list (unary minus path).
  ASSERT_TRUE(session_->Execute("EXECUTE upd(-5, 1)").ok());
  check = session_->Execute("SELECT bal FROM acct WHERE id = 1");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].int_val(), 10);
}

TEST_F(PrepareExecuteTest, WrongArityRejected) {
  ASSERT_TRUE(
      session_->Execute("PREPARE q AS SELECT bal FROM acct WHERE id = $1").ok());
  EXPECT_FALSE(session_->Execute("EXECUTE q").ok());
  EXPECT_FALSE(session_->Execute("EXECUTE q(1, 2)").ok());
  EXPECT_TRUE(session_->Execute("EXECUTE q(1)").ok());
}

TEST_F(PrepareExecuteTest, UnknownAndDeallocatedStatementsRejected) {
  EXPECT_FALSE(session_->Execute("EXECUTE nope").ok());
  ASSERT_TRUE(
      session_->Execute("PREPARE q AS SELECT count(*) FROM acct").ok());
  ASSERT_TRUE(session_->Execute("EXECUTE q").ok());
  ASSERT_TRUE(session_->Execute("DEALLOCATE q").ok());
  EXPECT_FALSE(session_->Execute("EXECUTE q").ok());
  EXPECT_FALSE(session_->Execute("DEALLOCATE q").ok());
}

TEST_F(PrepareExecuteTest, DeallocateAllClearsEverything) {
  ASSERT_TRUE(session_->Execute("PREPARE a AS SELECT count(*) FROM acct").ok());
  ASSERT_TRUE(session_->Execute("PREPARE b AS SELECT sum(bal) FROM acct").ok());
  ASSERT_TRUE(session_->Execute("DEALLOCATE ALL").ok());
  EXPECT_FALSE(session_->Execute("EXECUTE a").ok());
  EXPECT_FALSE(session_->Execute("EXECUTE b").ok());
}

TEST_F(PrepareExecuteTest, PreparedStatementsAreSessionLocal) {
  ASSERT_TRUE(session_->Execute("PREPARE q AS SELECT count(*) FROM acct").ok());
  auto other = cluster_->Connect();
  EXPECT_FALSE(other->Execute("EXECUTE q").ok());
}

TEST_F(PrepareExecuteTest, CatalogChangeReplansGenericPlan) {
  ASSERT_TRUE(session_
                  ->Execute("PREPARE byg AS SELECT count(*) FROM acct "
                            "WHERE grp = $1")
                  .ok());
  auto before = session_->Execute("EXECUTE byg(3)");
  ASSERT_TRUE(before.ok());
  // DDL bumps the catalog version: the generic plan is stamped stale and the
  // next EXECUTE must replan (and still answer correctly).
  ASSERT_TRUE(session_->Execute("CREATE TABLE unrelated (x int)").ok());
  auto after = session_->Execute("EXECUTE byg(3)");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows[0][0].int_val(), before->rows[0][0].int_val());
}

TEST_F(PrepareExecuteTest, ExecuteSeesLaterWrites) {
  ASSERT_TRUE(session_
                  ->Execute("PREPARE byg AS SELECT count(*) FROM acct "
                            "WHERE grp = $1")
                  .ok());
  auto before = session_->Execute("EXECUTE byg(0)");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(
      session_->Execute("INSERT INTO acct (id, grp, bal) VALUES (999, 0, 1)").ok());
  auto after = session_->Execute("EXECUTE byg(0)");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].int_val(), before->rows[0][0].int_val() + 1);
}

TEST_F(PrepareExecuteTest, ParamInArithmeticAndProjection) {
  ASSERT_TRUE(session_
                  ->Execute("PREPARE p AS SELECT bal + $1, grp FROM acct "
                            "WHERE id = $2")
                  .ok());
  auto r = session_->Execute("EXECUTE p(100, 2)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].int_val(), 120);  // bal(id=2)=20, +100
}

TEST_F(PrepareExecuteTest, PrepareInsideTransactionRollsBackDmlOnly) {
  ASSERT_TRUE(session_
                  ->Execute("PREPARE upd AS UPDATE acct SET bal = bal + $1 "
                            "WHERE id = $2")
                  .ok());
  ASSERT_TRUE(session_->Execute("BEGIN").ok());
  ASSERT_TRUE(session_->Execute("EXECUTE upd(7, 3)").ok());
  ASSERT_TRUE(session_->Execute("ROLLBACK").ok());
  auto check = session_->Execute("SELECT bal FROM acct WHERE id = 3");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].int_val(), 30);  // update rolled back
  // The prepared statement survives the rollback (session state, not txn).
  EXPECT_TRUE(session_->Execute("EXECUTE upd(1, 3)").ok());
}

}  // namespace
}  // namespace gphtap
