#include "sql/parser.h"

#include <gtest/gtest.h>

namespace gphtap {
namespace {

using sql_ast::Statement;
using sql_ast::StatementKind;

Statement Parse(const std::string& sql) {
  auto r = ParseStatement(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? *r : Statement{};
}

TEST(ParserTest, SelectBasics) {
  Statement s = Parse("SELECT c1, c2 FROM t WHERE c1 = 1 ORDER BY c2 DESC LIMIT 5;");
  ASSERT_EQ(s.kind, StatementKind::kSelect);
  EXPECT_EQ(s.select->items.size(), 2u);
  EXPECT_EQ(s.select->from.size(), 1u);
  EXPECT_EQ(s.select->from[0].name, "t");
  ASSERT_NE(s.select->where, nullptr);
  EXPECT_EQ(s.select->order_by.size(), 1u);
  EXPECT_FALSE(s.select->order_by[0].ascending);
  EXPECT_EQ(s.select->limit, 5);
}

TEST(ParserTest, SelectStarAndAliases) {
  Statement s = Parse("SELECT *, c1 AS total FROM t alias_name");
  EXPECT_EQ(s.select->items.size(), 2u);
  EXPECT_EQ(s.select->items[1].alias, "total");
  EXPECT_EQ(s.select->from[0].alias, "alias_name");
}

TEST(ParserTest, JoinWithOn) {
  Statement s = Parse(
      "SELECT a.x FROM a JOIN b ON a.k = b.k INNER JOIN c ON b.j = c.j WHERE a.x > 0");
  EXPECT_EQ(s.select->from.size(), 3u);
  EXPECT_EQ(s.select->join_quals.size(), 2u);
}

TEST(ParserTest, CommaJoin) {
  Statement s = Parse("SELECT 1 FROM a, b WHERE a.k = b.k");
  EXPECT_EQ(s.select->from.size(), 2u);
}

TEST(ParserTest, Aggregates) {
  Statement s = Parse("SELECT region, count(*), sum(x + 1) FROM t GROUP BY region");
  EXPECT_EQ(s.select->items.size(), 3u);
  EXPECT_EQ(s.select->items[1].expr->func, "count");
  EXPECT_EQ(s.select->group_by.size(), 1u);
}

TEST(ParserTest, GenerateSeriesInFrom) {
  Statement s = Parse("SELECT i, i FROM generate_series(1, 100) i");
  ASSERT_EQ(s.select->from.size(), 1u);
  EXPECT_TRUE(s.select->from[0].is_function);
  EXPECT_EQ(s.select->from[0].alias, "i");
  EXPECT_EQ(s.select->from[0].func_args.size(), 2u);
}

TEST(ParserTest, SelectWithoutFrom) {
  Statement s = Parse("SELECT 1, generate_series(1,10)");
  EXPECT_TRUE(s.select->from.empty());
  EXPECT_EQ(s.select->items.size(), 2u);
}

TEST(ParserTest, InsertValues) {
  Statement s = Parse("INSERT INTO t (c1, c2) VALUES (1, 'x'), (2, NULL)");
  ASSERT_EQ(s.kind, StatementKind::kInsert);
  EXPECT_EQ(s.insert->columns.size(), 2u);
  EXPECT_EQ(s.insert->rows.size(), 2u);
}

TEST(ParserTest, InsertSelect) {
  Statement s = Parse("INSERT INTO t SELECT i, i FROM generate_series(1, 10) i");
  ASSERT_EQ(s.kind, StatementKind::kInsert);
  ASSERT_NE(s.insert->select, nullptr);
}

TEST(ParserTest, UpdateAndDelete) {
  Statement u = Parse("UPDATE t SET c2 = c2 + 1, c3 = 0 WHERE c1 = 5");
  ASSERT_EQ(u.kind, StatementKind::kUpdate);
  EXPECT_EQ(u.update->sets.size(), 2u);
  ASSERT_NE(u.update->where, nullptr);

  Statement d = Parse("DELETE FROM t WHERE c1 < 0");
  ASSERT_EQ(d.kind, StatementKind::kDelete);
}

TEST(ParserTest, CreateTableWithEverything) {
  Statement s = Parse(
      "CREATE TABLE sales (day int, region text, amount double precision) "
      "WITH (appendonly=true, orientation=column, compresstype=rle) "
      "DISTRIBUTED BY (day, region)");
  ASSERT_EQ(s.kind, StatementKind::kCreateTable);
  EXPECT_EQ(s.create_table->columns.size(), 3u);
  EXPECT_EQ(s.create_table->with_options.size(), 3u);
  EXPECT_EQ(s.create_table->distributed_by.size(), 2u);
}

TEST(ParserTest, CreateTablePartitioned) {
  Statement s = Parse(
      "CREATE TABLE sales (day int, amount int) DISTRIBUTED BY (day) "
      "PARTITION BY RANGE (day) ("
      "PARTITION hot START 100 END 200, "
      "PARTITION cold START 0 END 100 WITH (appendonly=true, orientation=column), "
      "PARTITION archive EXTERNAL '/tmp/archive.csv')");
  ASSERT_EQ(s.kind, StatementKind::kCreateTable);
  ASSERT_EQ(s.create_table->partitions.size(), 3u);
  EXPECT_EQ(s.create_table->partitions[0].name, "hot");
  EXPECT_EQ(s.create_table->partitions[0].start->int_val(), 100);
  EXPECT_EQ(s.create_table->partitions[2].external_path, "/tmp/archive.csv");
}

TEST(ParserTest, TransactionControl) {
  EXPECT_EQ(Parse("BEGIN").kind, StatementKind::kBegin);
  EXPECT_EQ(Parse("START TRANSACTION").kind, StatementKind::kBegin);
  EXPECT_EQ(Parse("COMMIT").kind, StatementKind::kCommit);
  EXPECT_EQ(Parse("ROLLBACK").kind, StatementKind::kRollback);
  EXPECT_EQ(Parse("ABORT").kind, StatementKind::kRollback);
}

TEST(ParserTest, LockTableModes) {
  Statement s = Parse("LOCK t2 IN ACCESS EXCLUSIVE MODE");
  ASSERT_EQ(s.kind, StatementKind::kLockTable);
  EXPECT_EQ(s.lock_table->mode, LockMode::kAccessExclusive);
  Statement s2 = Parse("LOCK TABLE t2 IN SHARE UPDATE EXCLUSIVE MODE");
  EXPECT_EQ(s2.lock_table->mode, LockMode::kShareUpdateExclusive);
  Statement s3 = Parse("LOCK TABLE t2");  // defaults to AccessExclusive
  EXPECT_EQ(s3.lock_table->mode, LockMode::kAccessExclusive);
  EXPECT_FALSE(ParseStatement("LOCK t IN NONSENSE MODE").ok());
}

TEST(ParserTest, ResourceGroupDdl) {
  Statement s = Parse(
      "CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, MEMORY_LIMIT=35, "
      "MEMORY_SHARED_QUOTA=20, CPU_RATE_LIMIT=20)");
  ASSERT_EQ(s.kind, StatementKind::kCreateResourceGroup);
  EXPECT_EQ(s.create_resource_group->options.size(), 4u);

  Statement cpuset = Parse("CREATE RESOURCE GROUP g WITH (CONCURRENCY=50, CPU_SET=4-31)");
  bool found = false;
  for (const auto& [k, v] : cpuset.create_resource_group->options) {
    if (k == "cpu_set") {
      EXPECT_EQ(v, "4-31");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ParserTest, RolesAndSet) {
  Statement c = Parse("CREATE ROLE dev1 RESOURCE GROUP olap_group");
  ASSERT_EQ(c.kind, StatementKind::kCreateRole);
  EXPECT_EQ(c.role_resource_group->group, "olap_group");
  Statement a = Parse("ALTER ROLE dev1 RESOURCE GROUP oltp_group");
  ASSERT_EQ(a.kind, StatementKind::kAlterRole);
  Statement s = Parse("SET ROLE dev1");
  ASSERT_EQ(s.kind, StatementKind::kSet);
  EXPECT_EQ(s.set->value, "dev1");
}

TEST(ParserTest, VacuumAndDrop) {
  EXPECT_EQ(Parse("VACUUM t").kind, StatementKind::kVacuum);
  Statement d = Parse("DROP TABLE IF EXISTS t");
  EXPECT_TRUE(d.drop_table->if_exists);
}

TEST(ParserTest, DistinctAndHaving) {
  Statement s = Parse(
      "SELECT DISTINCT region, sum(x) AS total FROM t GROUP BY region "
      "HAVING total > 10 AND count(*) > 2 ORDER BY region");
  EXPECT_TRUE(s.select->distinct);
  ASSERT_NE(s.select->having, nullptr);
  EXPECT_EQ(s.select->having->op, "and");
  EXPECT_EQ(s.select->order_by.size(), 1u);
  Statement plain = Parse("SELECT a FROM t");
  EXPECT_FALSE(plain.select->distinct);
  EXPECT_EQ(plain.select->having, nullptr);
}

TEST(ParserTest, ExplainParses) {
  Statement s = Parse("EXPLAIN SELECT a FROM t WHERE a = 1");
  EXPECT_EQ(s.kind, StatementKind::kExplain);
  ASSERT_NE(s.select, nullptr);
}

TEST(ParserTest, ExpressionPrecedence) {
  // 1 + 2 * 3 = 7 must parse as 1 + (2*3).
  Statement s = Parse("SELECT 1 + 2 * 3 = 7");
  const auto& e = *s.select->items[0].expr;
  EXPECT_EQ(e.op, "=");
  EXPECT_EQ(e.args[0]->op, "+");
  EXPECT_EQ(e.args[0]->args[1]->op, "*");
}

TEST(ParserTest, AndOrPrecedence) {
  Statement s = Parse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
  // OR binds loosest: (a=1) OR ((b=2) AND (c=3)).
  EXPECT_EQ(s.select->where->op, "or");
  EXPECT_EQ(s.select->where->args[1]->op, "and");
}

TEST(ParserTest, StringEscapes) {
  Statement s = Parse("SELECT 'it''s'");
  EXPECT_EQ(s.select->items[0].expr->literal.string_val(), "it's");
}

TEST(ParserTest, Comments) {
  Statement s = Parse("SELECT 1 -- trailing comment\n FROM t");
  EXPECT_EQ(s.kind, StatementKind::kSelect);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("SELECT").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO").ok());
  EXPECT_FALSE(ParseStatement("UPDATE t SET").ok());
  EXPECT_FALSE(ParseStatement("SELECT 'unterminated").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1; SELECT 2").ok());  // one statement only
  EXPECT_FALSE(ParseStatement("SELECT 1 @ 2").ok());
}

}  // namespace
}  // namespace gphtap
