#include "sql/analyzer.h"

#include <gtest/gtest.h>

#include "cluster/session.h"
#include "sql/parser.h"

namespace gphtap {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() {
    ClusterOptions o;
    o.num_segments = 2;
    cluster_ = std::make_unique<Cluster>(o);
    auto s = cluster_->Connect();
    EXPECT_TRUE(
        s->Execute("CREATE TABLE t (a int, b int, c text) DISTRIBUTED BY (a)").ok());
    EXPECT_TRUE(s->Execute("CREATE TABLE u (a int, d int) DISTRIBUTED BY (a)").ok());
  }

  StatusOr<SelectQuery> Bind(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    Analyzer analyzer(cluster_.get());
    return analyzer.BindSelect(*stmt->select);
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(AnalyzerTest, ResolvesColumnsInCombinedLayout) {
  auto q = Bind("SELECT t.b, u.d FROM t JOIN u ON t.a = u.a");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->items.size(), 2u);
  EXPECT_EQ(q->items[0].expr->column, 1);  // t.b
  EXPECT_EQ(q->items[1].expr->column, 4);  // u.d (offset 3 + 1)
  EXPECT_EQ(q->quals.size(), 1u);
}

TEST_F(AnalyzerTest, AmbiguousColumnRejected) {
  auto q = Bind("SELECT a FROM t, u");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(AnalyzerTest, UnknownColumnAndTableRejected) {
  EXPECT_EQ(Bind("SELECT nope FROM t").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Bind("SELECT a FROM missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Bind("SELECT t.b FROM t x").status().code(), StatusCode::kNotFound)
      << "alias replaces the table name";
}

TEST_F(AnalyzerTest, AliasesResolve) {
  auto q = Bind("SELECT x.b FROM t x WHERE x.a = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->items[0].expr->column, 1);
}

TEST_F(AnalyzerTest, WhereSplitsConjuncts) {
  auto q = Bind("SELECT b FROM t WHERE a > 1 AND b < 5 AND c = 'x'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->quals.size(), 3u);
  // OR stays as one qual.
  auto q2 = Bind("SELECT b FROM t WHERE a > 1 OR b < 5");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->quals.size(), 1u);
}

TEST_F(AnalyzerTest, AggregatesAndGroupByBind) {
  auto q = Bind("SELECT b, count(*) AS n, sum(a + 1) FROM t GROUP BY b");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->HasAggregates());
  ASSERT_EQ(q->items.size(), 3u);
  EXPECT_FALSE(q->items[0].is_agg);
  EXPECT_TRUE(q->items[1].is_agg);
  EXPECT_EQ(q->items[1].name, "n");
  EXPECT_EQ(q->items[2].agg.fn, AggFunc::kSum);
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0], 1);
}

TEST_F(AnalyzerTest, UngroupedColumnRejected) {
  auto q = Bind("SELECT a, count(*) FROM t GROUP BY b");
  EXPECT_FALSE(q.ok());
}

TEST_F(AnalyzerTest, GroupByExpressionRejected) {
  auto q = Bind("SELECT count(*) FROM t GROUP BY a + 1");
  EXPECT_EQ(q.status().code(), StatusCode::kNotSupported);
}

TEST_F(AnalyzerTest, OrderByPositionAndName) {
  auto q = Bind("SELECT a, b FROM t ORDER BY 2 DESC, a");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_EQ(q->order_by[0].select_index, 1);
  EXPECT_FALSE(q->order_by[0].ascending);
  EXPECT_EQ(q->order_by[1].select_index, 0);
  EXPECT_FALSE(Bind("SELECT a FROM t ORDER BY 5").ok());
  EXPECT_FALSE(Bind("SELECT a FROM t ORDER BY b").ok())
      << "ORDER BY column must be in the select list";
}

TEST_F(AnalyzerTest, StarExpansion) {
  auto q = Bind("SELECT * FROM t JOIN u ON t.a = u.a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->items.size(), 5u);
  EXPECT_EQ(q->items[3].name, "a");  // u.a
}

TEST_F(AnalyzerTest, InsertBinding) {
  Analyzer analyzer(cluster_.get());
  auto stmt = ParseStatement("INSERT INTO t (b, a) VALUES (2, 1), (4, 3)");
  ASSERT_TRUE(stmt.ok());
  auto bound = analyzer.BindInsert(*stmt->insert);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->rows.size(), 2u);
  // Column list reorders: a=1, b=2, c=NULL.
  EXPECT_EQ(bound->rows[0][0].int_val(), 1);
  EXPECT_EQ(bound->rows[0][1].int_val(), 2);
  EXPECT_TRUE(bound->rows[0][2].is_null());
}

TEST_F(AnalyzerTest, InsertConstantExpressionsFold) {
  Analyzer analyzer(cluster_.get());
  auto stmt = ParseStatement("INSERT INTO t VALUES (1 + 2, 3 * 4, 'a')");
  ASSERT_TRUE(stmt.ok());
  auto bound = analyzer.BindInsert(*stmt->insert);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->rows[0][0].int_val(), 3);
  EXPECT_EQ(bound->rows[0][1].int_val(), 12);
}

TEST_F(AnalyzerTest, InsertArityMismatchRejected) {
  Analyzer analyzer(cluster_.get());
  auto stmt = ParseStatement("INSERT INTO t (a, b) VALUES (1)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(analyzer.BindInsert(*stmt->insert).ok());
}

TEST_F(AnalyzerTest, UpdateBinding) {
  Analyzer analyzer(cluster_.get());
  auto stmt = ParseStatement("UPDATE t SET b = b + 1 WHERE a = 5");
  ASSERT_TRUE(stmt.ok());
  auto bound = analyzer.BindUpdate(*stmt->update);
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->sets.size(), 1u);
  EXPECT_EQ(bound->sets[0].first, 1);
  ASSERT_NE(bound->where, nullptr);
  Datum key;
  EXPECT_TRUE(ExtractEqualityConst(*bound->where, 0, &key));
  EXPECT_EQ(key.int_val(), 5);
}

TEST_F(AnalyzerTest, AggregateInWhereRejected) {
  auto q = Bind("SELECT a FROM t WHERE count(*) > 1");
  EXPECT_FALSE(q.ok());
}

}  // namespace
}  // namespace gphtap
