#include <gtest/gtest.h>

#include "lock/lock_owner.h"
#include "txn/clog.h"
#include "txn/distributed_log.h"
#include "txn/distributed_txn_manager.h"
#include "txn/local_txn_manager.h"
#include "txn/wal.h"

namespace gphtap {
namespace {

struct SegmentFixture {
  CommitLog clog;
  DistributedLog dlog;
  WalStub wal{0};
  LocalTxnManager mgr{&clog, &dlog, &wal};
};

TEST(LocalTxnManagerTest, AssignXidIsStablePerGxid) {
  SegmentFixture f;
  LocalXid x1 = *f.mgr.AssignXid(100);
  LocalXid x2 = *f.mgr.AssignXid(100);
  EXPECT_EQ(x1, x2);
  LocalXid x3 = *f.mgr.AssignXid(101);
  EXPECT_NE(x1, x3);
  EXPECT_TRUE(f.mgr.HasWritten(100));
  EXPECT_FALSE(f.mgr.HasWritten(999));
}

TEST(LocalTxnManagerTest, MappingRecorded) {
  SegmentFixture f;
  LocalXid x = *f.mgr.AssignXid(42);
  auto g = f.dlog.Lookup(x);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, 42u);
}

TEST(LocalTxnManagerTest, CommitFlipsClogAndLeavesRunningSet) {
  SegmentFixture f;
  LocalXid x = *f.mgr.AssignXid(1);
  EXPECT_EQ(f.clog.GetState(x), TxnState::kInProgress);
  EXPECT_TRUE(f.mgr.Commit(1).ok());
  EXPECT_EQ(f.clog.GetState(x), TxnState::kCommitted);
  EXPECT_EQ(f.mgr.NumRunning(), 0u);
  EXPECT_FALSE(f.mgr.GxidOfRunning(x).has_value());
}

TEST(LocalTxnManagerTest, AbortFlipsClog) {
  SegmentFixture f;
  LocalXid x = *f.mgr.AssignXid(1);
  EXPECT_TRUE(f.mgr.Abort(1).ok());
  EXPECT_EQ(f.clog.GetState(x), TxnState::kAborted);
}

TEST(LocalTxnManagerTest, PrepareThenCommitPrepared) {
  SegmentFixture f;
  LocalXid x = *f.mgr.AssignXid(1);
  EXPECT_TRUE(f.mgr.Prepare(1).ok());
  EXPECT_EQ(f.clog.GetState(x), TxnState::kPrepared);
  EXPECT_EQ(f.mgr.NumRunning(), 1u);  // still running until phase 2
  EXPECT_TRUE(f.mgr.CommitPrepared(1).ok());
  EXPECT_EQ(f.clog.GetState(x), TxnState::kCommitted);
}

TEST(LocalTxnManagerTest, PrepareThenAbort) {
  SegmentFixture f;
  LocalXid x = *f.mgr.AssignXid(1);
  EXPECT_TRUE(f.mgr.Prepare(1).ok());
  EXPECT_TRUE(f.mgr.Abort(1).ok());
  EXPECT_EQ(f.clog.GetState(x), TxnState::kAborted);
}

TEST(LocalTxnManagerTest, PrepareUnknownFails) {
  SegmentFixture f;
  EXPECT_FALSE(f.mgr.Prepare(77).ok());
}

TEST(LocalTxnManagerTest, CommitWithoutWriteIsNoop) {
  SegmentFixture f;
  EXPECT_TRUE(f.mgr.Commit(5).ok());
  EXPECT_EQ(f.wal.records(), 0u);
}

TEST(LocalTxnManagerTest, WalCountsFsyncs) {
  SegmentFixture f;
  *f.mgr.AssignXid(1);
  f.mgr.Prepare(1);
  f.mgr.CommitPrepared(1);
  // Begin is not fsynced; prepare and commit-prepared are.
  EXPECT_EQ(f.wal.records(), 3u);
  EXPECT_EQ(f.wal.fsyncs(), 2u);
}

TEST(LocalTxnManagerTest, LocalSnapshotSeesRunning) {
  SegmentFixture f;
  LocalXid x1 = *f.mgr.AssignXid(1);
  LocalXid x2 = *f.mgr.AssignXid(2);
  f.mgr.Commit(1);
  LocalSnapshot snap = f.mgr.TakeLocalSnapshot();
  EXPECT_FALSE(snap.IsRunning(x1));
  EXPECT_TRUE(snap.IsRunning(x2));
  EXPECT_TRUE(snap.IsRunning(x2 + 100));  // future xids treated as running
}

TEST(DistributedTxnManagerTest, GxidsMonotonic) {
  DistributedTxnManager m;
  auto o1 = std::make_shared<LockOwner>(0);
  Gxid g1 = m.Begin(o1);
  Gxid g2 = m.Begin(o1);
  EXPECT_LT(g1, g2);
}

TEST(DistributedTxnManagerTest, SnapshotTracksInProgress) {
  DistributedTxnManager m;
  auto o = std::make_shared<LockOwner>(0);
  Gxid g1 = m.Begin(o);
  Gxid g2 = m.Begin(o);
  DistributedSnapshot snap = m.TakeSnapshot();
  EXPECT_TRUE(snap.IsRunning(g1));
  EXPECT_TRUE(snap.IsRunning(g2));
  EXPECT_TRUE(snap.IsRunning(g2 + 1));  // future
  m.MarkCommitted(g1);
  DistributedSnapshot snap2 = m.TakeSnapshot();
  EXPECT_FALSE(snap2.IsRunning(g1));
  EXPECT_TRUE(snap2.IsRunning(g2));
  EXPECT_EQ(snap2.max_committed, g1);
  // The earlier snapshot still sees g1 as running (repeatable reads).
  EXPECT_TRUE(snap.IsRunning(g1));
}

TEST(DistributedTxnManagerTest, OwnerLookup) {
  DistributedTxnManager m;
  auto o = std::make_shared<LockOwner>(123);
  Gxid g = m.Begin(o);
  EXPECT_EQ(m.OwnerOf(g).get(), o.get());
  EXPECT_TRUE(m.IsRunning(g));
  m.MarkAborted(g);
  EXPECT_EQ(m.OwnerOf(g), nullptr);
  EXPECT_FALSE(m.IsRunning(g));
}

TEST(DistributedTxnManagerTest, OldestVisibleRespectsPinnedSnapshots) {
  DistributedTxnManager m;
  auto o = std::make_shared<LockOwner>(0);
  Gxid g1 = m.Begin(o);
  DistributedSnapshot s1 = m.TakeSnapshot();
  m.PinSnapshot(g1, s1.gxmin);
  Gxid g2 = m.Begin(o);
  DistributedSnapshot s2 = m.TakeSnapshot();
  m.PinSnapshot(g2, s2.gxmin);
  // g1 is the oldest running txn; nothing below it is needed.
  EXPECT_EQ(m.OldestVisibleGxid(), g1);
  m.MarkCommitted(g1);
  // g2's snapshot was taken while g1 ran, so g2 can still "see" g1 as running:
  // the horizon must stay at g1 until g2 ends.
  EXPECT_EQ(m.OldestVisibleGxid(), g1);
  m.MarkCommitted(g2);
  EXPECT_GT(m.OldestVisibleGxid(), g2);
}

TEST(DistributedLogTest, TruncateBelowDropsOldEntries) {
  DistributedLog dlog;
  dlog.Record(1, 10);
  dlog.Record(2, 20);
  dlog.Record(3, 30);
  EXPECT_EQ(dlog.TruncateBelow(25), 2u);
  EXPECT_FALSE(dlog.Lookup(1).has_value());
  EXPECT_FALSE(dlog.Lookup(2).has_value());
  ASSERT_TRUE(dlog.Lookup(3).has_value());
  EXPECT_EQ(*dlog.Lookup(3), 30u);
}

}  // namespace
}  // namespace gphtap
