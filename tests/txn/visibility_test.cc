// Visibility truth tables for the distributed-snapshot + local-clog rules of
// Section 5.1, including the one-phase-commit timing guarantee of Section 5.2.
#include "txn/visibility.h"

#include <gtest/gtest.h>

#include "lock/lock_owner.h"
#include "txn/distributed_txn_manager.h"
#include "txn/local_txn_manager.h"
#include "txn/wal.h"

namespace gphtap {
namespace {

class VisibilityTest : public ::testing::Test {
 protected:
  VisibilityTest() : mgr_(&clog_, &dlog_, &wal_) {}

  VisibilityContext Ctx(const DistributedSnapshot* ds, LocalXid my_xid = 0) {
    VisibilityContext c;
    c.clog = &clog_;
    c.dlog = &dlog_;
    c.dsnap = ds;
    c.lsnap = nullptr;
    c.my_xid = my_xid;
    return c;
  }

  CommitLog clog_;
  DistributedLog dlog_;
  WalStub wal_{0};
  LocalTxnManager mgr_;
  DistributedTxnManager dtm_;
  std::shared_ptr<LockOwner> owner_ = std::make_shared<LockOwner>(0);
};

TEST_F(VisibilityTest, InvalidXidNeverVisible) {
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  EXPECT_FALSE(XidCommittedForSnapshot(kInvalidLocalXid, Ctx(&snap)));
}

TEST_F(VisibilityTest, OwnWritesVisible) {
  Gxid g = dtm_.Begin(owner_);
  LocalXid x = *mgr_.AssignXid(g);
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  EXPECT_TRUE(XidCommittedForSnapshot(x, Ctx(&snap, x)));
  EXPECT_FALSE(XidCommittedForSnapshot(x, Ctx(&snap, /*my=*/0)));
}

TEST_F(VisibilityTest, CommittedBeforeSnapshotVisible) {
  Gxid g = dtm_.Begin(owner_);
  LocalXid x = *mgr_.AssignXid(g);
  mgr_.Commit(g);
  dtm_.MarkCommitted(g);
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  EXPECT_TRUE(XidCommittedForSnapshot(x, Ctx(&snap)));
}

TEST_F(VisibilityTest, CommittedAfterSnapshotInvisible) {
  Gxid g = dtm_.Begin(owner_);
  LocalXid x = *mgr_.AssignXid(g);
  DistributedSnapshot snap = dtm_.TakeSnapshot();  // g still in progress here
  mgr_.Commit(g);
  dtm_.MarkCommitted(g);
  // Snapshot isolation: the old snapshot keeps treating g as running.
  EXPECT_FALSE(XidCommittedForSnapshot(x, Ctx(&snap)));
  DistributedSnapshot fresh = dtm_.TakeSnapshot();
  EXPECT_TRUE(XidCommittedForSnapshot(x, Ctx(&fresh)));
}

TEST_F(VisibilityTest, AbortedNeverVisible) {
  Gxid g = dtm_.Begin(owner_);
  LocalXid x = *mgr_.AssignXid(g);
  mgr_.Abort(g);
  dtm_.MarkAborted(g);
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  EXPECT_FALSE(XidCommittedForSnapshot(x, Ctx(&snap)));
}

// The Section 5.2 guarantee: a one-phase-commit transaction appears in-progress
// to concurrent snapshots until the coordinator gets "Commit Ok" — modeled by
// the segment committing locally BEFORE the coordinator marks it committed.
TEST_F(VisibilityTest, OnePhaseCommitWindowHidesLocalCommit) {
  Gxid g = dtm_.Begin(owner_);
  LocalXid x = *mgr_.AssignXid(g);
  mgr_.Commit(g);  // segment side done; Commit Ok still "in flight"
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  EXPECT_TRUE(snap.IsRunning(g));
  EXPECT_FALSE(XidCommittedForSnapshot(x, Ctx(&snap)))
      << "locally committed tuple leaked before coordinator acknowledged";
  dtm_.MarkCommitted(g);  // Commit Ok received
  DistributedSnapshot after = dtm_.TakeSnapshot();
  EXPECT_TRUE(XidCommittedForSnapshot(x, Ctx(&after)));
}

TEST_F(VisibilityTest, PreparedTransactionInvisible) {
  Gxid g = dtm_.Begin(owner_);
  LocalXid x = *mgr_.AssignXid(g);
  mgr_.Prepare(g);
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  EXPECT_FALSE(XidCommittedForSnapshot(x, Ctx(&snap)));
}

TEST_F(VisibilityTest, TruncatedMappingFallsBackToLocalRules) {
  Gxid g = dtm_.Begin(owner_);
  LocalXid x = *mgr_.AssignXid(g);
  mgr_.Commit(g);
  dtm_.MarkCommitted(g);
  // Truncate the mapping (as the background horizon maintenance would).
  dlog_.TruncateBelow(g + 1);
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  VisibilityContext c = Ctx(&snap);
  LocalSnapshot lsnap = mgr_.TakeLocalSnapshot();
  c.lsnap = &lsnap;
  EXPECT_TRUE(XidCommittedForSnapshot(x, c));
}

TEST_F(VisibilityTest, TupleVisibleMatrix) {
  // Committed insert, no delete -> visible.
  Gxid g1 = dtm_.Begin(owner_);
  LocalXid ins = *mgr_.AssignXid(g1);
  mgr_.Commit(g1);
  dtm_.MarkCommitted(g1);
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  EXPECT_TRUE(TupleVisible(ins, kInvalidLocalXid, Ctx(&snap)));

  // Deleted by a committed txn -> invisible.
  Gxid g2 = dtm_.Begin(owner_);
  LocalXid del = *mgr_.AssignXid(g2);
  mgr_.Commit(g2);
  dtm_.MarkCommitted(g2);
  DistributedSnapshot snap2 = dtm_.TakeSnapshot();
  EXPECT_FALSE(TupleVisible(ins, del, Ctx(&snap2)));

  // Deleted by an in-progress txn -> still visible to others.
  Gxid g3 = dtm_.Begin(owner_);
  LocalXid del2 = *mgr_.AssignXid(g3);
  DistributedSnapshot snap3 = dtm_.TakeSnapshot();
  EXPECT_TRUE(TupleVisible(ins, del2, Ctx(&snap3)));
  // ... but invisible to the deleter itself.
  EXPECT_FALSE(TupleVisible(ins, del2, Ctx(&snap3, del2)));
  mgr_.Abort(g3);
  dtm_.MarkAborted(g3);

  // Deleted by an aborted txn -> visible again.
  DistributedSnapshot snap4 = dtm_.TakeSnapshot();
  EXPECT_TRUE(TupleVisible(ins, del2, Ctx(&snap4)));
}

TEST_F(VisibilityTest, UncommittedInsertInvisibleToOthersVisibleToSelf) {
  Gxid g = dtm_.Begin(owner_);
  LocalXid x = *mgr_.AssignXid(g);
  DistributedSnapshot snap = dtm_.TakeSnapshot();
  EXPECT_FALSE(TupleVisible(x, kInvalidLocalXid, Ctx(&snap)));
  EXPECT_TRUE(TupleVisible(x, kInvalidLocalXid, Ctx(&snap, x)));
}

// Sequential oracle property: simulate a random interleaving of begin/commit/
// abort and verify visibility equals "committed before my snapshot".
TEST_F(VisibilityTest, RandomizedMatchesOracle) {
  struct TxnRec {
    Gxid g;
    LocalXid x;
    int state = 0;  // 0=running 1=committed 2=aborted
  };
  std::vector<TxnRec> txns;
  uint64_t seed = 12345;
  auto next = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  for (int step = 0; step < 300; ++step) {
    uint64_t r = next() % 3;
    if (r == 0 || txns.empty()) {
      Gxid g = dtm_.Begin(owner_);
      txns.push_back({g, *mgr_.AssignXid(g), 0});
    } else {
      TxnRec& t = txns[next() % txns.size()];
      if (t.state == 0) {
        if (r == 1) {
          mgr_.Commit(t.g);
          dtm_.MarkCommitted(t.g);
          t.state = 1;
        } else {
          mgr_.Abort(t.g);
          dtm_.MarkAborted(t.g);
          t.state = 2;
        }
      }
    }
    // Take a snapshot now and check every txn against the oracle.
    DistributedSnapshot snap = dtm_.TakeSnapshot();
    for (const TxnRec& t : txns) {
      bool expected = t.state == 1;  // committed as of now == committed before snap
      EXPECT_EQ(XidCommittedForSnapshot(t.x, Ctx(&snap)), expected)
          << "gxid=" << t.g << " state=" << t.state;
    }
  }
}

}  // namespace
}  // namespace gphtap
