#include "common/histogram.h"

#include <gtest/gtest.h>

namespace gphtap {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 100.0);
  EXPECT_EQ(h.Percentile(50), 100);
}

TEST(HistogramTest, PercentilesAreApproximatelyRight) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(i);
  // Log-bucketed: accept 20% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 5000, 1200);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 9500, 2000);
  EXPECT_EQ(h.Percentile(100), 10000);
  EXPECT_DOUBLE_EQ(h.Mean(), 5000.5);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_DOUBLE_EQ(a.Mean(), 505.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ZeroAndNegativeGoToFirstBucket) {
  Histogram h;
  h.Record(0);
  h.Record(-5);
  EXPECT_EQ(h.count(), 2);
  EXPECT_LE(h.Percentile(50), 0);  // both land in the first bucket
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  for (int i = 0; i < 42; ++i) h.Record(7);
  EXPECT_NE(h.Summary().find("count=42"), std::string::npos);
}

// Percentile must never report a value outside the observed [min, max], no
// matter how the log buckets round. Single-value: every percentile IS the
// value (a bucket's range is much wider than one point).
TEST(HistogramTest, SingleValuePercentilesEqualTheValue) {
  Histogram h;
  h.Record(777);
  for (double p : {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 777) << "p=" << p;
  }
}

TEST(HistogramTest, TwoBucketDistributionStaysWithinBounds) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  for (double p : {0.0, 10.0, 50.0, 89.0, 90.0, 91.0, 95.0, 99.0, 100.0}) {
    int64_t v = h.Percentile(p);
    EXPECT_GE(v, h.min()) << "p=" << p;
    EXPECT_LE(v, h.max()) << "p=" << p;
  }
  // p50 is in the low mode, p99+ in the high mode.
  EXPECT_LE(h.Percentile(50), 100);
  EXPECT_GE(h.Percentile(99), 100);
  EXPECT_EQ(h.Percentile(100), 1000);
}

TEST(HistogramTest, SkewedDistributionPercentilesWithinMinMax) {
  Histogram h;
  for (int i = 0; i < 9990; ++i) h.Record(50 + (i % 3));
  for (int i = 0; i < 10; ++i) h.Record(5'000'000);  // 0.1% huge outliers
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    int64_t v = h.Percentile(p);
    EXPECT_GE(v, h.min()) << "p=" << p;
    EXPECT_LE(v, h.max()) << "p=" << p;
  }
  EXPECT_LE(h.Percentile(50), 128);  // median stays in the low mode
  EXPECT_EQ(h.Percentile(100), 5'000'000);
}

// The max-side clamp: a bucket's upper bound can exceed the largest recorded
// value, so the top percentile must clamp to max(), not the bucket bound.
TEST(HistogramTest, TopPercentileClampsToObservedMax) {
  Histogram h;
  h.Record(1000);  // log bucket containing 1000 spans beyond it
  h.Record(1001);
  for (double p : {99.0, 99.9, 100.0}) {
    EXPECT_LE(h.Percentile(p), 1001) << "p=" << p;
  }
  EXPECT_GE(h.Percentile(1), 1000);
}

}  // namespace
}  // namespace gphtap
