#include "common/histogram.h"

#include <gtest/gtest.h>

namespace gphtap {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 100.0);
  EXPECT_EQ(h.Percentile(50), 100);
}

TEST(HistogramTest, PercentilesAreApproximatelyRight) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(i);
  // Log-bucketed: accept 20% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 5000, 1200);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 9500, 2000);
  EXPECT_EQ(h.Percentile(100), 10000);
  EXPECT_DOUBLE_EQ(h.Mean(), 5000.5);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_DOUBLE_EQ(a.Mean(), 505.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ZeroAndNegativeGoToFirstBucket) {
  Histogram h;
  h.Record(0);
  h.Record(-5);
  EXPECT_EQ(h.count(), 2);
  EXPECT_LE(h.Percentile(50), 0);  // both land in the first bucket
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  for (int i = 0; i < 42; ++i) h.Record(7);
  EXPECT_NE(h.Summary().find("count=42"), std::string::npos);
}

}  // namespace
}  // namespace gphtap
