#include "common/status.h"

#include <gtest/gtest.h>

namespace gphtap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table t1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table t1");
  EXPECT_EQ(s.ToString(), "NotFound: table t1");
}

TEST(StatusTest, AbortLikeClassification) {
  EXPECT_TRUE(Status::Aborted("x").IsAbortLike());
  EXPECT_TRUE(Status::DeadlockDetected("x").IsAbortLike());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsAbortLike());
  EXPECT_FALSE(Status::NotFound("x").IsAbortLike());
  EXPECT_FALSE(Status::OK().IsAbortLike());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kNotSupported); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int v) {
  GPHTAP_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

TEST(StatusOrTest, ValueAndError) {
  auto ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  auto err = ParsePositive(0);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> UseAssignOr(int v) {
  GPHTAP_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  return doubled + 1;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto ok = UseAssignOr(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_FALSE(UseAssignOr(-5).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> so(std::make_unique<int>(7));
  ASSERT_TRUE(so.ok());
  std::unique_ptr<int> p = std::move(so).value();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace gphtap
