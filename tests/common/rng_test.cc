#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace gphtap {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[rng.Uniform(8)]++;
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [v, c] : counts) EXPECT_GT(c, 10000 / 8 / 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(11);
  Zipf z(1000, 0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Sample(rng), 1000u);
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  Rng rng(13);
  Zipf z(1000, 0.99);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (z.Sample(rng) < 100) ++low;
  }
  // With theta=0.99 far more than 10% of mass is on the first 10% of keys.
  EXPECT_GT(low, 4000);
}

}  // namespace
}  // namespace gphtap
