// Wait-event plumbing: the ambient WaitContext, RAII scopes publishing live
// state, and the (event, node, group)-keyed registry — including concurrent
// recording from many threads (the TSan build exercises the locking).
#include "common/wait_event.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"

namespace gphtap {
namespace {

TEST(WaitEventNamesTest, EveryEventHasClassAndName) {
  for (WaitEvent e :
       {WaitEvent::kLockRelation, WaitEvent::kLockTuple, WaitEvent::kLockTransaction,
        WaitEvent::kMotionSend, WaitEvent::kMotionRecv, WaitEvent::kWalFsync,
        WaitEvent::kBufferRead, WaitEvent::kPrepareAck, WaitEvent::kCommitPreparedAck,
        WaitEvent::kResGroupSlot}) {
    EXPECT_NE(ClassOfEvent(e), WaitEventClass::kNone);
    EXPECT_STRNE(WaitEventName(e), "");
    EXPECT_STRNE(WaitEventClassName(ClassOfEvent(e)), "None");
  }
  EXPECT_EQ(ClassOfEvent(WaitEvent::kLockTuple), WaitEventClass::kLock);
  EXPECT_EQ(ClassOfEvent(WaitEvent::kMotionRecv), WaitEventClass::kNet);
  EXPECT_EQ(ClassOfEvent(WaitEvent::kPrepareAck), WaitEventClass::kIpc);
}

TEST(WaitEventScopeTest, NoContextInstalledIsANoop) {
  ASSERT_EQ(CurrentWaitContext(), nullptr);
  { WaitEventScope scope(WaitEvent::kLockRelation); }
  EXPECT_EQ(CurrentWaitContext(), nullptr);
}

TEST(WaitEventScopeTest, PublishesLiveStateAndRecordsOnExit) {
  WaitEventRegistry registry;
  SessionWaitState session;
  QueryWaitProfile profile;
  WaitContext ctx;
  ctx.registry = &registry;
  ctx.session = &session;
  ctx.profile = &profile;
  ctx.node = 2;
  ctx.group = "oltp";
  WaitContextGuard guard(ctx);

  {
    WaitEventScope scope(WaitEvent::kLockTuple);
    // Live state is visible while blocked.
    EXPECT_EQ(session.event.load(), static_cast<int>(WaitEvent::kLockTuple));
    PreciseSleepUs(500);
  }
  // Cleared on resume.
  EXPECT_EQ(session.event.load(), 0);

  std::vector<WaitEventRegistry::Entry> entries = registry.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].event, WaitEvent::kLockTuple);
  EXPECT_EQ(entries[0].node, 2);
  EXPECT_EQ(entries[0].group, "oltp");
  EXPECT_EQ(entries[0].count, 1u);
  EXPECT_GE(entries[0].total_us, 400);
  EXPECT_GE(entries[0].max_us, 400);

  std::vector<QueryWaitProfile::Item> top = profile.Top(3);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].event, WaitEvent::kLockTuple);
  EXPECT_EQ(top[0].count, 1u);
}

TEST(WaitEventScopeTest, NodeOverrideAndNestedScopesRestore) {
  WaitEventRegistry registry;
  SessionWaitState session;
  WaitContext ctx;
  ctx.registry = &registry;
  ctx.session = &session;
  ctx.node = -1;
  WaitContextGuard guard(ctx);

  {
    WaitEventScope outer(WaitEvent::kCommitPreparedAck, /*node_override=*/1);
    {
      WaitEventScope inner(WaitEvent::kWalFsync, /*node_override=*/1);
      EXPECT_EQ(session.event.load(), static_cast<int>(WaitEvent::kWalFsync));
    }
    // The outer event is republished when the nested wait ends.
    EXPECT_EQ(session.event.load(), static_cast<int>(WaitEvent::kCommitPreparedAck));
  }
  EXPECT_EQ(session.event.load(), 0);

  std::vector<WaitEventRegistry::Entry> entries = registry.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  for (const auto& e : entries) EXPECT_EQ(e.node, 1);
}

TEST(WaitEventScopeTest, WaitIntervalsBecomeTraceSpans) {
  Trace trace(7);
  uint64_t parent = trace.StartSpan("query");
  WaitContext ctx;
  ctx.trace = &trace;
  ctx.parent_span = parent;
  WaitContextGuard guard(ctx);

  { WaitEventScope scope(WaitEvent::kMotionRecv); }
  trace.EndSpan(parent);

  bool found = false;
  for (const TraceSpan& span : trace.Spans()) {
    if (span.name.find("motion_recv") != std::string::npos) {
      found = true;
      EXPECT_EQ(span.parent_id, parent);
      EXPECT_NE(span.end_us, 0);
    }
  }
  EXPECT_TRUE(found) << "no wait span recorded";
}

TEST(WaitContextGuardTest, OnlyIfAbsentKeepsTheOuterContext) {
  WaitEventRegistry outer_registry, inner_registry;
  WaitContext outer;
  outer.registry = &outer_registry;
  WaitContextGuard outer_guard(outer);
  {
    WaitContext inner;
    inner.registry = &inner_registry;
    WaitContextGuard inner_guard(inner, /*only_if_absent=*/true);
    { WaitEventScope scope(WaitEvent::kBufferRead); }
  }
  // The nested entry point must NOT have shadowed the session's context.
  EXPECT_EQ(outer_registry.Snapshot().size(), 1u);
  EXPECT_TRUE(inner_registry.Snapshot().empty());
}

TEST(WaitEventRegistryTest, ConcurrentRecordingAccumulates) {
  WaitEventRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kWaitsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      WaitContext ctx;
      ctx.registry = &registry;
      ctx.node = t % 3;
      ctx.group = t % 2 == 0 ? "oltp" : "olap";
      WaitContextGuard guard(ctx);
      for (int i = 0; i < kWaitsPerThread; ++i) {
        WaitEventScope scope(i % 2 == 0 ? WaitEvent::kLockTuple
                                        : WaitEvent::kMotionSend);
      }
    });
  }
  for (auto& t : threads) t.join();

  uint64_t total = 0;
  for (const auto& e : registry.Snapshot()) total += e.count;
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads * kWaitsPerThread));
}

TEST(QueryWaitProfileTest, TopSortsByTotalTimeAndResetClears) {
  QueryWaitProfile profile;
  profile.Record(WaitEvent::kLockTuple, 10);
  profile.Record(WaitEvent::kLockTuple, 10);
  profile.Record(WaitEvent::kMotionRecv, 500);
  profile.Record(WaitEvent::kWalFsync, 100);
  profile.Record(WaitEvent::kBufferRead, 1);

  std::vector<QueryWaitProfile::Item> top = profile.Top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].event, WaitEvent::kMotionRecv);
  EXPECT_EQ(top[1].event, WaitEvent::kWalFsync);
  EXPECT_EQ(top[2].event, WaitEvent::kLockTuple);
  EXPECT_EQ(top[2].count, 2u);

  profile.Reset();
  EXPECT_TRUE(profile.Top(3).empty());
}

}  // namespace
}  // namespace gphtap
