#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/trace.h"

namespace gphtap {
namespace {

TEST(MetricsTest, CounterSemantics) {
  MetricsRegistry reg;
  Counter* c = reg.counter("txn.committed");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(MetricsTest, GetOrCreateReturnsSamePointer) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("a"), reg.counter("a"));
  EXPECT_NE(reg.counter("a"), reg.counter("b"));
  EXPECT_EQ(reg.gauge("g"), reg.gauge("g"));
  EXPECT_EQ(reg.histogram("h"), reg.histogram("h"));
}

TEST(MetricsTest, GaugeGoesUpAndDown) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("lock.queue_depth");
  g->Add(5);
  g->Add(-3);
  EXPECT_EQ(g->value(), 2);
  g->Set(-7);
  EXPECT_EQ(g->value(), -7);
}

TEST(MetricsTest, HistogramMetricRecordsThroughSnapshot) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.histogram("lat");
  for (int i = 0; i < 100; ++i) h->Record(100);
  Histogram snap = h->snapshot();
  EXPECT_EQ(snap.count(), 100);
  EXPECT_EQ(snap.Percentile(50), 100);
}

TEST(MetricsTest, SnapshotCopiesValuesAndLookupDefaultsToZero) {
  MetricsRegistry reg;
  reg.counter("x")->Add(7);
  reg.gauge("y")->Set(-3);
  reg.histogram("z")->Record(10);
  MetricsSnapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("x"), 7u);
  EXPECT_EQ(snap.gauge("y"), -3);
  EXPECT_EQ(snap.histograms.at("z").count(), 1);
  EXPECT_EQ(snap.counter("never.registered"), 0u);
  EXPECT_EQ(snap.gauge("never.registered"), 0);
  // The snapshot is a copy: later updates don't retroactively change it.
  reg.counter("x")->Add(100);
  EXPECT_EQ(snap.counter("x"), 7u);
}

TEST(MetricsTest, ToStringListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("net.sent.dispatch")->Add(3);
  reg.gauge("txn.running")->Set(2);
  std::string dump = reg.TakeSnapshot().ToString();
  EXPECT_NE(dump.find("net.sent.dispatch = 3"), std::string::npos);
  EXPECT_NE(dump.find("txn.running = 2"), std::string::npos);
}

// Registry concurrency: get-or-create races on the same names must converge
// on one shared metric with no lost updates.
TEST(MetricsTest, ConcurrentGetOrCreateAndIncrement) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIncrements; ++i) {
        reg.counter("shared.counter")->Add(1);
        reg.gauge("shared.gauge")->Add(1);
        if (i % 100 == 0) reg.histogram("shared.hist")->Record(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  MetricsSnapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("shared.counter"),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snap.gauge("shared.gauge"), int64_t{kThreads} * kIncrements);
  EXPECT_EQ(snap.histograms.at("shared.hist").count(), kThreads * (kIncrements / 100));
}

// ---- Trace primitives (the cluster-level integration lives in
// tests/cluster/observability_test.cc) ----

TEST(TraceTest, SpanTreeParentChildOrdering) {
  Trace trace(7);
  EXPECT_EQ(trace.trace_id(), 7u);
  uint64_t root = trace.StartSpan("query");
  uint64_t child = trace.StartSpan("slice:top", root, Trace::kCoordinatorNode);
  uint64_t seg = trace.StartSpan("slice:motion1", root, /*node=*/2);
  trace.EndSpan(seg, 10);
  trace.EndSpan(child, 10);
  trace.EndSpan(root, 10);

  auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, root);
  EXPECT_EQ(spans[2].parent_id, root);
  EXPECT_EQ(spans[2].node, 2);
  for (const auto& s : spans) {
    EXPECT_GT(s.end_us, 0);
    EXPECT_GE(s.end_us, s.start_us);
  }
  EXPECT_NE(trace.ToString().find("slice:motion1"), std::string::npos);
}

TEST(OperatorStatsTest, AccumulatesRowsKeepsMaxTime) {
  OperatorStatsCollector c;
  c.Record(3, 100, 50);
  c.Record(3, 200, 80);
  auto s = c.Get(3);
  EXPECT_EQ(s.rows, 300);
  EXPECT_EQ(s.executions, 2);
  EXPECT_EQ(s.total_time_us, 130);
  EXPECT_EQ(s.max_time_us, 80);
  EXPECT_EQ(c.Get(99).rows, 0);
}

TEST(SlowQueryLogTest, RingDropsOldest) {
  SlowQueryLog log(/*capacity=*/2);
  log.Record("q1", 100, 1);
  log.Record("q2", 200, 2);
  log.Record("q3", 300, 3);
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].sql, "q2");
  EXPECT_EQ(entries[1].sql, "q3");
}

}  // namespace
}  // namespace gphtap
