#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gphtap {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushFullFails) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedPopper) {
  BoundedQueue<int> q(1);
  std::thread t([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  t.join();
}

TEST(BoundedQueueTest, BlockedPusherUnblocksOnPop) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    EXPECT_TRUE(q.Push(2));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 1000;
  BoundedQueue<int> q(16);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        popped++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (int c = kProducers; c < kProducers + kConsumers; ++c) threads[c].join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(), 4L * kPerProducer * (kPerProducer + 1) / 2);
}

}  // namespace
}  // namespace gphtap
