#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace gphtap {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] { done++; }));
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = ++running;
      int old = peak.load();
      while (now > old && !peak.compare_exchange_weak(old, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --running;
    });
  }
  pool.Shutdown();
  EXPECT_GE(peak.load(), 2) << "tasks never overlapped";
}

TEST(ThreadPoolTest, ShutdownDrainsQueueThenRejects) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done++;
    });
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 20);  // queued tasks completed before join
  EXPECT_FALSE(pool.Submit([&] { done++; }));
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, DestructorJoins) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.Submit([&] { done++; });
  }
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, NumThreadsReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  pool.Shutdown();
  EXPECT_EQ(pool.num_threads(), 0u);
}

}  // namespace
}  // namespace gphtap
