#include "common/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace gphtap {
namespace {

TEST(FaultInjectorTest, NothingArmedNeverFires) {
  FaultInjector fi;
  EXPECT_FALSE(fi.AnyArmed());
  EXPECT_FALSE(fi.Evaluate("some.point"));
  EXPECT_EQ(fi.EvaluateDelay("some.point"), 0);
  EXPECT_EQ(fi.FireCount("some.point"), 0u);
}

TEST(FaultInjectorTest, OneShotFiresExactlyOnce) {
  FaultInjector fi;
  fi.ArmOneShot("p");
  EXPECT_TRUE(fi.AnyArmed());
  EXPECT_TRUE(fi.Evaluate("p"));
  EXPECT_FALSE(fi.Evaluate("p"));
  EXPECT_FALSE(fi.AnyArmed());
  // The fire count survives the implicit disarm.
  EXPECT_EQ(fi.FireCount("p"), 1u);
}

TEST(FaultInjectorTest, AlwaysFiresUntilDisarmed) {
  FaultInjector fi;
  fi.ArmAlways("p");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fi.Evaluate("p"));
  EXPECT_EQ(fi.FireCount("p"), 5u);
  fi.Disarm("p");
  EXPECT_FALSE(fi.Evaluate("p"));
  EXPECT_EQ(fi.FireCount("p"), 5u);
}

TEST(FaultInjectorTest, ScopeFiltering) {
  FaultInjector fi;
  fi.ArmAlways("p", /*scope=*/1);
  EXPECT_FALSE(fi.Evaluate("p", 0));
  EXPECT_FALSE(fi.Evaluate("p", 2));
  EXPECT_TRUE(fi.Evaluate("p", 1));
  // kAnyScope on the evaluation side matches any armed scope.
  EXPECT_TRUE(fi.Evaluate("p", FaultInjector::kAnyScope));
  fi.DisarmAll();

  // An armed kAnyScope matches every evaluated scope.
  fi.ArmAlways("q");
  EXPECT_TRUE(fi.Evaluate("q", 0));
  EXPECT_TRUE(fi.Evaluate("q", 7));
}

TEST(FaultInjectorTest, OneShotWithScopeNotConsumedByMismatch) {
  FaultInjector fi;
  fi.ArmOneShot("p", /*scope=*/2);
  EXPECT_FALSE(fi.Evaluate("p", 0));  // mismatch must not consume the shot
  EXPECT_TRUE(fi.Evaluate("p", 2));
  EXPECT_FALSE(fi.Evaluate("p", 2));
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicBySeed) {
  auto run = [](uint64_t seed) {
    FaultInjector fi;
    fi.ArmProbability("p", 0.5, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fi.Evaluate("p"));
    return fired;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
  // p=0 never fires; p=1 always fires.
  FaultInjector fi;
  fi.ArmProbability("never", 0.0, 1);
  fi.ArmProbability("always", 1.0, 1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(fi.Evaluate("never"));
    EXPECT_TRUE(fi.Evaluate("always"));
  }
}

TEST(FaultInjectorTest, DelayPoint) {
  FaultInjector fi;
  fi.ArmDelay("slow", 1500);
  EXPECT_EQ(fi.EvaluateDelay("slow"), 1500);
  EXPECT_EQ(fi.EvaluateDelay("slow"), 1500);  // not consumed
  EXPECT_EQ(fi.EvaluateDelay("other"), 0);
  fi.Disarm("slow");
  EXPECT_EQ(fi.EvaluateDelay("slow"), 0);
}

TEST(FaultInjectorTest, IsArmedDoesNotConsume) {
  FaultInjector fi;
  fi.ArmOneShot("p");
  EXPECT_TRUE(fi.IsArmed("p"));
  EXPECT_TRUE(fi.IsArmed("p"));
  EXPECT_TRUE(fi.Evaluate("p"));
  EXPECT_FALSE(fi.IsArmed("p"));
}

TEST(FaultInjectorTest, DisarmAllClearsEverything) {
  FaultInjector fi;
  fi.ArmAlways("a");
  fi.ArmOneShot("b");
  fi.ArmDelay("c", 10);
  EXPECT_TRUE(fi.AnyArmed());
  fi.DisarmAll();
  EXPECT_FALSE(fi.AnyArmed());
  EXPECT_FALSE(fi.Evaluate("a"));
  EXPECT_FALSE(fi.Evaluate("b"));
  EXPECT_EQ(fi.EvaluateDelay("c"), 0);
}

}  // namespace
}  // namespace gphtap
