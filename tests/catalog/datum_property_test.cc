// Property sweeps over Datum: the algebraic contracts the executor relies on
// (hash/equality consistency, comparison ordering laws, routing stability).
#include <gtest/gtest.h>

#include <algorithm>

#include "catalog/datum.h"
#include "common/rng.h"

namespace gphtap {
namespace {

Datum RandomDatum(Rng& rng) {
  switch (rng.Uniform(4)) {
    case 0:
      return Datum::Null();
    case 1:
      return Datum(static_cast<int64_t>(rng.UniformRange(-100, 100)));
    case 2:
      return Datum(static_cast<double>(rng.UniformRange(-100, 100)) +
                   (rng.Chance(0.5) ? 0.5 : 0.0));
    default: {
      std::string s;
      for (uint64_t i = 0, n = rng.Uniform(6); i < n; ++i) {
        s += static_cast<char>('a' + rng.Uniform(4));
      }
      return Datum(std::move(s));
    }
  }
}

class DatumPropertyTest : public ::testing::TestWithParam<int> {};

// Equal values (Compare == 0) must co-hash — hash joins and hash distribution
// both break otherwise. This includes the int-vs-integral-double case.
TEST_P(DatumPropertyTest, EqualImpliesSameHash) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 3000; ++i) {
    Datum a = RandomDatum(rng);
    Datum b = RandomDatum(rng);
    if (a.is_null() || b.is_null()) continue;
    if (a.Compare(b) == 0) {
      EXPECT_EQ(a.Hash(), b.Hash()) << a.ToString() << " vs " << b.ToString();
    }
  }
}

// Compare must be a strict weak ordering: antisymmetric and transitive.
TEST_P(DatumPropertyTest, ComparisonLaws) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17);
  for (int i = 0; i < 1000; ++i) {
    Datum a = RandomDatum(rng), b = RandomDatum(rng), c = RandomDatum(rng);
    EXPECT_EQ(a.Compare(b), -b.Compare(a)) << a.ToString() << " / " << b.ToString();
    EXPECT_EQ(a.Compare(a), 0);
    if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
      EXPECT_LE(a.Compare(c), 0)
          << a.ToString() << " <= " << b.ToString() << " <= " << c.ToString();
    }
  }
}

// Sorting with Compare terminates and yields an ordered sequence.
TEST_P(DatumPropertyTest, SortableSequences) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31);
  std::vector<Datum> values;
  for (int i = 0; i < 500; ++i) values.push_back(RandomDatum(rng));
  std::sort(values.begin(), values.end(),
            [](const Datum& a, const Datum& b) { return a.Compare(b) < 0; });
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(values[i - 1].Compare(values[i]), 0);
  }
  // NULLs sort to the end.
  bool seen_null = false;
  for (const Datum& d : values) {
    if (d.is_null()) {
      seen_null = true;
    } else {
      EXPECT_FALSE(seen_null) << "non-NULL after NULL";
    }
  }
}

// Distribution routing must be stable: the same key always routes to the same
// segment index regardless of surrounding row contents.
TEST_P(DatumPropertyTest, RoutingDependsOnlyOnKeyColumns) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101);
  for (int i = 0; i < 1000; ++i) {
    Datum key = RandomDatum(rng);
    Row r1 = {key, RandomDatum(rng), RandomDatum(rng)};
    Row r2 = {key, RandomDatum(rng), RandomDatum(rng)};
    EXPECT_EQ(HashRowKey(r1, {0}) % 16, HashRowKey(r2, {0}) % 16);
  }
}

// Hashes of small int domains must spread across segments (no pathological
// skew that would put every row on one segment).
TEST_P(DatumPropertyTest, HashSpreadsAcrossSegments) {
  constexpr int kSegments = 8;
  std::vector<int> counts(kSegments, 0);
  for (int64_t v = 0; v < 8000; ++v) {
    counts[Datum(v).Hash() % kSegments]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 8000 / kSegments / 2);
    EXPECT_LT(c, 8000 / kSegments * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatumPropertyTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace gphtap
