#include "catalog/schema.h"

#include <gtest/gtest.h>

namespace gphtap {
namespace {

Schema TwoColSchema() {
  return Schema({{"c1", TypeId::kInt64}, {"c2", TypeId::kInt64}});
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.FindColumn("c1"), 0);
  EXPECT_EQ(s.FindColumn("C2"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

TEST(SchemaTest, CheckRowArity) {
  Schema s = TwoColSchema();
  EXPECT_TRUE(s.CheckRow({Datum(int64_t{1}), Datum(int64_t{2})}).ok());
  EXPECT_FALSE(s.CheckRow({Datum(int64_t{1})}).ok());
}

TEST(SchemaTest, CheckRowTypes) {
  Schema s({{"i", TypeId::kInt64}, {"d", TypeId::kDouble}, {"t", TypeId::kString}});
  EXPECT_TRUE(
      s.CheckRow({Datum(int64_t{1}), Datum(1.5), Datum(std::string("x"))}).ok());
  // Int widens to double.
  EXPECT_TRUE(
      s.CheckRow({Datum(int64_t{1}), Datum(int64_t{2}), Datum(std::string("x"))}).ok());
  // String where int expected fails.
  EXPECT_FALSE(
      s.CheckRow({Datum(std::string("no")), Datum(1.5), Datum(std::string("x"))}).ok());
  // NULLs always pass.
  EXPECT_TRUE(s.CheckRow({Datum::Null(), Datum::Null(), Datum::Null()}).ok());
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TwoColSchema().ToString(), "(c1 INT, c2 INT)");
}

TEST(PartitionSpecTest, RouteValueRespectsBounds) {
  PartitionSpec spec;
  spec.partition_col = 0;
  spec.ranges.push_back({"p_low", Datum::Null(), Datum(int64_t{10}), StorageKind::kHeap, ""});
  spec.ranges.push_back(
      {"p_mid", Datum(int64_t{10}), Datum(int64_t{20}), StorageKind::kAoColumn, ""});
  spec.ranges.push_back(
      {"p_high", Datum(int64_t{20}), Datum::Null(), StorageKind::kExternal, "/tmp/x.csv"});

  EXPECT_EQ(spec.RouteValue(Datum(int64_t{-5})), 0);
  EXPECT_EQ(spec.RouteValue(Datum(int64_t{9})), 0);
  EXPECT_EQ(spec.RouteValue(Datum(int64_t{10})), 1);  // lower inclusive
  EXPECT_EQ(spec.RouteValue(Datum(int64_t{19})), 1);
  EXPECT_EQ(spec.RouteValue(Datum(int64_t{20})), 2);  // upper exclusive
  EXPECT_EQ(spec.RouteValue(Datum(int64_t{1000})), 2);
}

TEST(PartitionSpecTest, GapReturnsMinusOne) {
  PartitionSpec spec;
  spec.partition_col = 0;
  spec.ranges.push_back(
      {"p1", Datum(int64_t{0}), Datum(int64_t{10}), StorageKind::kHeap, ""});
  spec.ranges.push_back(
      {"p2", Datum(int64_t{20}), Datum(int64_t{30}), StorageKind::kHeap, ""});
  EXPECT_EQ(spec.RouteValue(Datum(int64_t{15})), -1);
  EXPECT_EQ(spec.RouteValue(Datum(int64_t{-1})), -1);
}

TEST(StorageKindTest, Names) {
  EXPECT_STREQ(StorageKindName(StorageKind::kHeap), "heap");
  EXPECT_STREQ(StorageKindName(StorageKind::kAoRow), "ao_row");
  EXPECT_STREQ(StorageKindName(StorageKind::kAoColumn), "ao_column");
  EXPECT_STREQ(StorageKindName(StorageKind::kExternal), "external");
}

}  // namespace
}  // namespace gphtap
