#include "catalog/datum.h"

#include <gtest/gtest.h>

namespace gphtap {
namespace {

TEST(DatumTest, NullBasics) {
  Datum d;
  EXPECT_TRUE(d.is_null());
  EXPECT_EQ(d.ToString(), "NULL");
  EXPECT_EQ(Datum::Null().Compare(Datum::Null()), 0);
}

TEST(DatumTest, TypedAccessors) {
  EXPECT_EQ(Datum(int64_t{42}).int_val(), 42);
  EXPECT_DOUBLE_EQ(Datum(2.5).double_val(), 2.5);
  EXPECT_EQ(Datum(std::string("hi")).string_val(), "hi");
}

TEST(DatumTest, CompareInts) {
  EXPECT_LT(Datum(int64_t{1}).Compare(Datum(int64_t{2})), 0);
  EXPECT_GT(Datum(int64_t{5}).Compare(Datum(int64_t{2})), 0);
  EXPECT_EQ(Datum(int64_t{3}).Compare(Datum(int64_t{3})), 0);
}

TEST(DatumTest, CompareCrossNumeric) {
  EXPECT_EQ(Datum(int64_t{2}).Compare(Datum(2.0)), 0);
  EXPECT_LT(Datum(int64_t{2}).Compare(Datum(2.5)), 0);
  EXPECT_GT(Datum(3.5).Compare(Datum(int64_t{3})), 0);
}

TEST(DatumTest, CompareStrings) {
  EXPECT_LT(Datum(std::string("abc")).Compare(Datum(std::string("abd"))), 0);
  EXPECT_EQ(Datum(std::string("x")).Compare(Datum(std::string("x"))), 0);
}

TEST(DatumTest, NullsSortLast) {
  EXPECT_GT(Datum::Null().Compare(Datum(int64_t{1})), 0);
  EXPECT_LT(Datum(int64_t{1}).Compare(Datum::Null()), 0);
}

TEST(DatumTest, EqualValuesHashEqual) {
  EXPECT_EQ(Datum(int64_t{7}).Hash(), Datum(int64_t{7}).Hash());
  EXPECT_EQ(Datum(std::string("abc")).Hash(), Datum(std::string("abc")).Hash());
  // Integral double co-hashes with the equal int (needed for join/distribution keys).
  EXPECT_EQ(Datum(int64_t{7}).Hash(), Datum(7.0).Hash());
}

TEST(DatumTest, HashSpreads) {
  // Consecutive ints should not collide pathologically.
  std::vector<uint64_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) hashes.push_back(Datum(i).Hash());
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::unique(hashes.begin(), hashes.end()), hashes.end());
}

TEST(DatumTest, RowKeyHashUsesListedColumns) {
  Row r1 = {Datum(int64_t{1}), Datum(int64_t{100})};
  Row r2 = {Datum(int64_t{1}), Datum(int64_t{200})};
  EXPECT_EQ(HashRowKey(r1, {0}), HashRowKey(r2, {0}));
  EXPECT_NE(HashRowKey(r1, {0, 1}), HashRowKey(r2, {0, 1}));
}

TEST(DatumTest, RowToString) {
  Row r = {Datum(int64_t{1}), Datum(std::string("a")), Datum::Null()};
  EXPECT_EQ(RowToString(r), "(1, a, NULL)");
}

TEST(DatumTest, FootprintLargerForStrings) {
  EXPECT_GT(Datum(std::string(100, 'x')).FootprintBytes(),
            Datum(int64_t{1}).FootprintBytes());
}

}  // namespace
}  // namespace gphtap
