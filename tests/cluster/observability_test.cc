// Cluster-level observability: StatsSnapshot counters after a mixed workload,
// per-query tracing spans, EXPLAIN ANALYZE, and the slow-query log.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cluster/cluster.h"
#include "cluster/session.h"
#include "common/rng.h"
#include "workload/driver.h"
#include "workload/tpcb.h"

namespace gphtap {
namespace {

TEST(StatsSnapshotTest, MixedWorkloadPopulatesSubsystemCounters) {
  ClusterOptions options;
  options.num_segments = 4;
  options.gdd_period_us = 5'000;
  Cluster cluster(options);

  TpcbConfig config;
  config.scale = 4;
  config.accounts_per_branch = 100;
  ASSERT_TRUE(LoadTpcb(&cluster, config).ok());

  // OLTP side: the full TPC-B mix (explicit multi-segment txns -> 2PC) plus
  // single-segment inserts (-> 1PC).
  DriverOptions opts;
  opts.num_clients = 4;
  opts.duration_ms = 300;
  Rng rng(1);
  DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& client_rng) {
    return client_rng.Chance(0.5) ? RunTpcbTransaction(s, client_rng, config)
                                  : RunInsertOnlyTransaction(s, client_rng, config);
  });
  ASSERT_GT(r.committed, 0u);

  // Analytic side: a full-table aggregate over every segment.
  auto session = cluster.Connect();
  ASSERT_TRUE(session->Execute("SELECT count(*) FROM pgbench_accounts").ok());

  MetricsSnapshot snap = cluster.StatsSnapshot();
  EXPECT_GT(snap.counter("gdd.rounds"), 0u);
  EXPECT_GT(snap.counter("lock.acquires"), 0u);
  EXPECT_GT(snap.counter("txn.one_phase_commits"), 0u);
  EXPECT_GT(snap.counter("txn.two_phase_commits"), 0u);
  EXPECT_GT(snap.counter("txn.committed"), 0u);
  EXPECT_GT(snap.counter("txn.statements"), 0u);
  EXPECT_GT(snap.counter("net.sent.dispatch"), 0u);
  EXPECT_GT(snap.counter("net.tuple_rows"), 0u);
  EXPECT_GT(snap.counter("txn.commit_fsyncs"), 0u);
  EXPECT_GT(snap.counter("bufferpool.hits"), 0u);

  std::string dump = cluster.StatsDump();
  EXPECT_NE(dump.find("lock.acquires"), std::string::npos);
  EXPECT_NE(dump.find("txn.committed"), std::string::npos);
}

TEST(TracingTest, TwoSegmentSelectProducesCoordinatorAndSegmentSpans) {
  ClusterOptions options;
  options.num_segments = 2;
  Cluster cluster(options);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)").ok());
  ASSERT_TRUE(
      s->Execute("INSERT INTO t SELECT i, i * 2 FROM generate_series(1, 100) i").ok());

  s->set_trace_enabled(true);
  auto result = s->Execute("SELECT v FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 100u);

  auto trace = s->last_trace();
  ASSERT_NE(trace, nullptr);
  auto spans = trace->Spans();
  ASSERT_GE(spans.size(), 4u);  // query + slice:top + one per segment

  const TraceSpan* root = nullptr;
  const TraceSpan* top = nullptr;
  std::vector<const TraceSpan*> segment_spans;
  for (const auto& span : spans) {
    if (span.name == "query") root = &span;
    if (span.name == "slice:top") top = &span;
    if (span.name.rfind("slice:motion", 0) == 0) segment_spans.push_back(&span);
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->node, Trace::kCoordinatorNode);
  EXPECT_EQ(root->rows, 100);
  EXPECT_EQ(top->parent_id, root->span_id);
  EXPECT_EQ(top->node, Trace::kCoordinatorNode);
  EXPECT_EQ(top->rows, 100);

  // One producer span per segment, both children of the root span.
  ASSERT_EQ(segment_spans.size(), 2u);
  std::vector<int> nodes;
  for (const TraceSpan* span : segment_spans) {
    EXPECT_EQ(span->parent_id, root->span_id);
    nodes.push_back(span->node);
  }
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<int>{0, 1}));

  // Consistent ordering: every span closed, children within the root window.
  for (const auto& span : spans) {
    EXPECT_GT(span.end_us, 0) << span.name;
    EXPECT_GE(span.end_us, span.start_us) << span.name;
    EXPECT_GE(span.start_us, root->start_us) << span.name;
  }
  EXPECT_NE(trace->ToString().find("query"), std::string::npos);

  // Tracing off: a new query does not replace the trace with a fresh one.
  s->set_trace_enabled(false);
  ASSERT_TRUE(s->Execute("SELECT v FROM t").ok());
  EXPECT_EQ(s->last_trace(), trace);
}

TEST(TracingTest, ClusterWideFlagTracesEverySession) {
  ClusterOptions options;
  options.num_segments = 2;
  options.trace_queries = true;
  Cluster cluster(options);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t SELECT i FROM generate_series(1, 10) i").ok());
  ASSERT_TRUE(s->Execute("SELECT k FROM t").ok());
  ASSERT_NE(s->last_trace(), nullptr);
  EXPECT_FALSE(s->last_trace()->Spans().empty());
}

TEST(ExplainAnalyzeTest, ReportsActualRowsPerOperator) {
  ClusterOptions options;
  options.num_segments = 2;
  Cluster cluster(options);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)").ok());
  ASSERT_TRUE(
      s->Execute("INSERT INTO t SELECT i, i FROM generate_series(1, 50) i").ok());

  auto result = s->Execute("EXPLAIN ANALYZE SELECT v FROM t WHERE v <= 10");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rows.empty());

  std::string all;
  for (const Row& row : result->rows) all += RowToString(row) + "\n";
  EXPECT_NE(all.find("gang:"), std::string::npos) << all;
  EXPECT_NE(all.find("actual rows="), std::string::npos) << all;
  EXPECT_NE(all.find("Execution time:"), std::string::npos) << all;
  // The gather motion delivers exactly the 10 matching rows to the top slice.
  EXPECT_NE(all.find("actual rows=10"), std::string::npos) << all;

  // Plain EXPLAIN still works and does NOT carry actuals.
  auto plain = s->Execute("EXPLAIN SELECT v FROM t");
  ASSERT_TRUE(plain.ok());
  std::string plain_text;
  for (const Row& row : plain->rows) plain_text += RowToString(row) + "\n";
  EXPECT_EQ(plain_text.find("actual rows="), std::string::npos) << plain_text;
}

TEST(SlowQueryLogTest, StatementsOverThresholdAreRecorded) {
  ClusterOptions options;
  options.num_segments = 2;
  options.slow_query_threshold_us = 1;  // everything is "slow"
  Cluster cluster(options);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t SELECT i FROM generate_series(1, 20) i").ok());
  ASSERT_TRUE(s->Execute("SELECT count(*) FROM t").ok());

  auto entries = cluster.slow_query_log().Entries();
  ASSERT_FALSE(entries.empty());
  bool found = false;
  for (const auto& e : entries) {
    EXPECT_GT(e.duration_us, 0);
    if (e.sql.find("SELECT count(*)") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SlowQueryLogTest, DisabledByDefault) {
  ClusterOptions options;
  options.num_segments = 2;
  Cluster cluster(options);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int)").ok());
  EXPECT_TRUE(cluster.slow_query_log().Entries().empty());
}

}  // namespace
}  // namespace gphtap
