// Mirror replication (Section 3.1): mirrors replay the primaries' change
// streams on the fly and must converge to identical visible contents.
#include <gtest/gtest.h>

#include <memory>

#include "api/gphtap.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/tpcb.h"

namespace gphtap {
namespace {

ClusterOptions MirroredCluster() {
  ClusterOptions o;
  o.num_segments = 3;
  o.mirrors_enabled = true;
  return o;
}

TEST(MirrorTest, InsertsReplicate) {
  Cluster cluster(MirroredCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t SELECT i, i FROM generate_series(1, 200) i").ok());
  ASSERT_TRUE(cluster.CatchUpMirrors().ok());
  TableDef def = *cluster.LookupTable("t");
  for (int i = 0; i < cluster.num_segments(); ++i) {
    EXPECT_EQ(cluster.mirror(i)->GetTable(def.id)->StoredVersionCount(),
              cluster.segment(i)->GetTable(def.id)->StoredVersionCount());
  }
  EXPECT_TRUE(cluster.VerifyMirrorsConsistent().ok());
}

TEST(MirrorTest, UpdatesAndDeletesReplicate) {
  Cluster cluster(MirroredCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t SELECT i, 0 FROM generate_series(1, 100) i").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = v + 7 WHERE k <= 50").ok());
  ASSERT_TRUE(s->Execute("DELETE FROM t WHERE k > 90").ok());
  Status consistent = cluster.VerifyMirrorsConsistent();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

TEST(MirrorTest, AbortedTransactionsReplicateAsAborted) {
  Cluster cluster(MirroredCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 1)").ok());
  ASSERT_TRUE(s->Execute("BEGIN").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (2, 2)").ok());
  ASSERT_TRUE(s->Execute("ROLLBACK").ok());
  // The aborted insert reached the mirror but must be invisible there too.
  Status consistent = cluster.VerifyMirrorsConsistent();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

TEST(MirrorTest, VacuumReplicates) {
  Cluster cluster(MirroredCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t SELECT i, 0 FROM generate_series(1, 50) i").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 1").ok());
  ASSERT_TRUE(s->Execute("VACUUM t").ok());
  Status consistent = cluster.VerifyMirrorsConsistent();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

TEST(MirrorTest, AoTablesReplicate) {
  Cluster cluster(MirroredCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE ao (k int, v int) "
                         "WITH (appendonly=true, orientation=column)")
                  .ok());
  ASSERT_TRUE(
      s->Execute("INSERT INTO ao SELECT i, i FROM generate_series(1, 500) i").ok());
  // Visibility-map deletes and updates replicate too.
  ASSERT_TRUE(s->Execute("DELETE FROM ao WHERE k <= 100").ok());
  ASSERT_TRUE(s->Execute("UPDATE ao SET v = 0 WHERE k > 450").ok());
  Status consistent = cluster.VerifyMirrorsConsistent();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

// The paper's mirrors replay continuously under live load: hammer the cluster
// with concurrent TPC-B transactions (including aborts and tuple-lock dances),
// then verify byte-for-byte convergence.
TEST(MirrorTest, ConvergesUnderConcurrentLoad) {
  ClusterOptions o = MirroredCluster();
  o.gdd_period_us = 10'000;
  Cluster cluster(o);
  TpcbConfig config;
  config.scale = 2;
  config.accounts_per_branch = 50;
  ASSERT_TRUE(LoadTpcb(&cluster, config).ok());

  DriverOptions opts;
  opts.num_clients = 6;
  opts.duration_ms = 800;
  DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
    return RunTpcbTransaction(s, rng, config);
  });
  EXPECT_GT(r.committed, 20u);
  Status consistent = cluster.VerifyMirrorsConsistent();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
  for (int i = 0; i < cluster.num_segments(); ++i) {
    EXPECT_TRUE(cluster.mirror(i)->health().ok());
    EXPECT_GT(cluster.mirror(i)->applied(), 0u);
  }
}

TEST(MirrorTest, TruncateReplicates) {
  Cluster cluster(MirroredCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t SELECT i, i FROM generate_series(1, 50) i").ok());
  ASSERT_TRUE(s->Execute("TRUNCATE t").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 1)").ok());
  Status consistent = cluster.VerifyMirrorsConsistent();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

// The FTS probe loop sleeps on a condition variable, so Stop() must return
// promptly even with a probe period far longer than any acceptable shutdown.
TEST(MirrorTest, FtsStopsPromptlyDespiteLongProbePeriod) {
  ClusterOptions o = MirroredCluster();
  o.fts_enabled = true;
  o.fts_period_us = 2'000'000;  // 2 s between probe rounds
  auto cluster = std::make_unique<Cluster>(o);
  auto s = cluster->Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int)").ok());
  s.reset();
  Stopwatch sw;
  cluster.reset();  // joins the FTS thread via FtsDaemon::Stop()
  EXPECT_LT(sw.ElapsedMicros(), 500'000) << "FTS shutdown waited out its period";
}

TEST(MirrorTest, DisabledByDefault) {
  ClusterOptions o;
  o.num_segments = 2;
  Cluster cluster(o);
  EXPECT_EQ(cluster.mirror(0), nullptr);
  EXPECT_EQ(cluster.segment(0)->change_log(), nullptr);
  // Catch-up/verify are no-ops without mirrors.
  EXPECT_TRUE(cluster.CatchUpMirrors().ok());
  EXPECT_TRUE(cluster.VerifyMirrorsConsistent().ok());
}

}  // namespace
}  // namespace gphtap
