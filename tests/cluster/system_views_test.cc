// System views over live cluster state, queried through the normal SQL path:
// gp_stat_activity shows a blocked session's wait event while it is blocked,
// gp_locks exposes the lock tables, gp_dist_deadlocks replays the GDD's
// merged wait-for graph, and Cluster::DumpChromeTrace exports retained query
// traces as Chrome trace_event JSON.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "catalog/datum.h"
#include "integration/actor.h"

namespace gphtap {
namespace {

class SystemViewsTest : public ::testing::Test {
 protected:
  void StartCluster(ClusterOptions options) {
    cluster_ = std::make_unique<Cluster>(options);
  }

  void StartCluster() {
    ClusterOptions options;
    options.num_segments = 3;
    options.gdd_period_us = 10'000;
    StartCluster(options);
  }

  /// Smallest positive int whose hash routes to `segment` and is not in `used`.
  int64_t KeyOnSegment(int segment, std::vector<int64_t>* used) {
    for (int64_t v = 1;; ++v) {
      if (std::find(used->begin(), used->end(), v) != used->end()) continue;
      if (cluster_->SegmentForHash(Datum(v).Hash()) == segment) {
        used->push_back(v);
        return v;
      }
    }
  }

  std::unique_ptr<Cluster> cluster_;
};

// The acceptance scenario: while session B is queued behind session A's
// relation lock, `SELECT ... FROM gp_stat_activity` from a THIRD session (the
// normal SQL path, no locks taken) returns B with wait_event_class='Lock'.
TEST_F(SystemViewsTest, StatActivityShowsBlockedSessionWaitingOnLock) {
  StartCluster();
  Actor a(cluster_.get()), b(cluster_.get());
  ASSERT_TRUE(a.RunSync("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(a.RunSync("LOCK t1 IN ACCESS EXCLUSIVE MODE").ok());

  auto b_blocked = b.Run("LOCK t1 IN ACCESS EXCLUSIVE MODE");
  ASSERT_TRUE(StillBlocked(b_blocked)) << "B should queue behind A's lock";

  auto observer = cluster_->Connect();
  auto r = observer->Execute(
      "SELECT sess_id, state, wait_event_class, wait_event, wait_us "
      "FROM gp_stat_activity WHERE wait_event_class = 'Lock'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u) << "exactly one session is lock-blocked";
  EXPECT_EQ(r->rows[0][1].string_val(), "active");
  EXPECT_EQ(r->rows[0][2].string_val(), "Lock");
  EXPECT_EQ(r->rows[0][3].string_val(), "relation");
  EXPECT_GE(r->rows[0][4].int_val(), 0);

  // The observer itself appears as active, running this very statement.
  r = observer->Execute(
      "SELECT query FROM gp_stat_activity WHERE state = 'active' "
      "AND wait_event_class = ''");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_NE(r->rows[0][0].string_val().find("gp_stat_activity"), std::string::npos);

  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  EXPECT_TRUE(b_blocked.get().ok());
}

TEST_F(SystemViewsTest, GpLocksShowsGrantedAndWaitingEntries) {
  StartCluster();
  Actor a(cluster_.get()), b(cluster_.get());
  ASSERT_TRUE(a.RunSync("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(a.RunSync("LOCK t1 IN ACCESS EXCLUSIVE MODE").ok());
  auto b_blocked = b.Run("LOCK t1 IN ACCESS EXCLUSIVE MODE");
  ASSERT_TRUE(StillBlocked(b_blocked));

  auto observer = cluster_->Connect();
  // A holds the relation everywhere: coordinator (node -1) + every segment.
  auto held = observer->Execute(
      "SELECT node, locktype, mode FROM gp_locks WHERE granted = 1");
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_GE(held->rows.size(), 4u);
  // B waits on the coordinator lock (parse-analyze ordering).
  auto waiting = observer->Execute("SELECT node, locktype FROM gp_locks WHERE granted = 0");
  ASSERT_TRUE(waiting.ok()) << waiting.status().ToString();
  ASSERT_GE(waiting->rows.size(), 1u);
  EXPECT_EQ(waiting->rows[0][1].string_val(), "relation");

  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  EXPECT_TRUE(b_blocked.get().ok());
}

TEST_F(SystemViewsTest, AggregatesAndFiltersOverSystemViews) {
  StartCluster();
  auto s = cluster_->Connect();
  // Single-phase aggregate over a coordinator-only virtual scan.
  auto r = s->Execute("SELECT count(*) FROM gp_segment_status");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].int_val(), 3);

  r = s->Execute("SELECT count(*) FROM gp_segment_status WHERE up = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].int_val(), 3);

  r = s->Execute("SELECT name, concurrency FROM gp_resgroup_status");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r->rows.size(), 1u);
  bool default_group = false;
  for (const Row& row : r->rows) {
    if (row[0].string_val() == "default_group") default_group = true;
  }
  EXPECT_TRUE(default_group);
}

TEST_F(SystemViewsTest, JoiningSystemViewsWithTablesIsRejected) {
  StartCluster();
  auto s = cluster_->Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int) DISTRIBUTED BY (c1)").ok());
  auto r = s->Execute("SELECT * FROM gp_locks, t1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(SystemViewsTest, WaitEventsViewAccumulatesLockWaits) {
  StartCluster();
  Actor a(cluster_.get()), b(cluster_.get());
  ASSERT_TRUE(a.RunSync("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(a.RunSync("LOCK t1 IN ACCESS EXCLUSIVE MODE").ok());
  auto b_blocked = b.Run("LOCK t1 IN ACCESS EXCLUSIVE MODE");
  ASSERT_TRUE(StillBlocked(b_blocked));
  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  ASSERT_TRUE(b_blocked.get().ok());
  ASSERT_TRUE(b.RunSync("COMMIT").ok());

  auto observer = cluster_->Connect();
  auto r = observer->Execute(
      "SELECT wait_event_class, wait_event, count, total_us, p95_us "
      "FROM gp_wait_events WHERE wait_event = 'relation'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].string_val(), "Lock");
  EXPECT_GE(r->rows[0][2].int_val(), 1);
  EXPECT_GT(r->rows[0][3].int_val(), 0);
}

// Figure 6 deadlock, then introspection: the killed transaction, the merged
// wait-for graph edges, and the Graphviz dump must all be inspectable.
TEST_F(SystemViewsTest, DistDeadlocksViewRecordsVictimAndGraph) {
  ClusterOptions options;
  options.num_segments = 3;
  options.gdd_enabled = true;
  options.gdd_period_us = 10'000;
  options.locks.local_deadlock_timeout_us = 200'000;
  StartCluster(options);
  std::vector<int64_t> used;
  int64_t k0 = KeyOnSegment(0, &used);
  int64_t k1 = KeyOnSegment(1, &used);

  Actor a(cluster_.get()), b(cluster_.get());
  ASSERT_TRUE(a.RunSync("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  for (int64_t k : {k0, k1}) {
    ASSERT_TRUE(a.RunSync("INSERT INTO t1 VALUES (" + std::to_string(k) + ", " +
                          std::to_string(k) + ")")
                    .ok());
  }
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(b.RunSync("BEGIN").ok());
  uint64_t b_gxid = b.session()->current_gxid();
  ASSERT_TRUE(a.RunSync("UPDATE t1 SET c2 = 10 WHERE c1 = " + std::to_string(k0)).ok());
  ASSERT_TRUE(b.RunSync("UPDATE t1 SET c2 = 20 WHERE c1 = " + std::to_string(k1)).ok());
  auto b_blocked = b.Run("UPDATE t1 SET c2 = 30 WHERE c1 = " + std::to_string(k0));
  ASSERT_TRUE(StillBlocked(b_blocked));
  auto a_blocked = a.Run("UPDATE t1 SET c2 = 40 WHERE c1 = " + std::to_string(k1));

  EXPECT_EQ(b_blocked.get().code(), StatusCode::kDeadlockDetected);
  EXPECT_TRUE(a_blocked.get().ok());
  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  ASSERT_TRUE(b.RunSync("ROLLBACK").ok());

  // The ring buffer: one record, one row per merged-graph edge.
  auto observer = cluster_->Connect();
  auto r = observer->Execute(
      "SELECT seq, victim, waiter, holder, edge, on_cycle, iterations, reason "
      "FROM gp_dist_deadlocks");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r->rows.size(), 2u) << "a 2-cycle has at least two edges";
  bool victim_on_cycle = false;
  for (const Row& row : r->rows) {
    EXPECT_GE(row[0].int_val(), 1);  // seq
    EXPECT_EQ(static_cast<uint64_t>(row[1].int_val()), b_gxid) << "youngest dies";
    EXPECT_TRUE(row[4].string_val() == "solid" || row[4].string_val() == "dotted");
    EXPECT_GE(row[6].int_val(), 1);  // reduction iterations
    EXPECT_FALSE(row[7].string_val().empty());
    if (static_cast<uint64_t>(row[2].int_val()) == b_gxid && row[5].int_val() == 1) {
      victim_on_cycle = true;
    }
  }
  EXPECT_TRUE(victim_on_cycle) << "the victim must appear as a waiter on the cycle";

  // Filtering by victim works through the normal planner.
  r = observer->Execute("SELECT count(*) FROM gp_dist_deadlocks WHERE on_cycle = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->rows[0][0].int_val(), 2);

  // Graphviz export of the same graph.
  std::string dot = cluster_->gdd()->DumpDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find(std::to_string(b_gxid)), std::string::npos);
}

TEST_F(SystemViewsTest, ChromeTraceExportIsWellFormedAndMarksAborts) {
  ClusterOptions options;
  options.num_segments = 3;
  options.trace_queries = true;
  StartCluster(options);
  auto s = cluster_->Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (1, 1), (2, 2), (3, 3)").ok());
  ASSERT_TRUE(s->Execute("SELECT count(*) FROM t1").ok());
  // A runtime error mid-execution: its spans must be closed and flagged, not
  // leaked open.
  ASSERT_FALSE(s->Execute("SELECT c1 / (c1 - c1) FROM t1").ok());

  ASSERT_GE(cluster_->RetainedTraces().size(), 2u);
  bool saw_aborted = false;
  for (const auto& trace : cluster_->RetainedTraces()) {
    for (const TraceSpan& span : trace->Spans()) {
      EXPECT_NE(span.end_us, 0) << "span '" << span.name << "' leaked open";
      saw_aborted |= span.aborted;
    }
  }
  EXPECT_TRUE(saw_aborted) << "the failed query's spans must be flagged";

  std::string path = ::testing::TempDir() + "/gphtap_trace.json";
  ASSERT_TRUE(cluster_->DumpChromeTrace(path).ok());
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::stringstream buf;
  buf << f.rdbuf();
  std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"aborted\":true"), std::string::npos);
}

TEST_F(SystemViewsTest, SlowQueryLogReportsTopWaitEvents) {
  ClusterOptions options;
  options.num_segments = 3;
  options.slow_query_threshold_us = 20'000;
  StartCluster(options);
  Actor a(cluster_.get()), b(cluster_.get());
  ASSERT_TRUE(a.RunSync("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(a.RunSync("LOCK t1 IN ACCESS EXCLUSIVE MODE").ok());
  auto b_blocked = b.Run("LOCK t1 IN ACCESS EXCLUSIVE MODE");
  ASSERT_TRUE(StillBlocked(b_blocked));  // > threshold by construction
  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  ASSERT_TRUE(b_blocked.get().ok());
  ASSERT_TRUE(b.RunSync("COMMIT").ok());

  bool found = false;
  for (const SlowQueryLog::Entry& e : cluster_->slow_query_log().Entries()) {
    for (const SlowQueryLog::WaitItem& w : e.top_waits) {
      if (w.event == "Lock:relation") {
        found = true;
        EXPECT_GE(w.count, 1u);
        EXPECT_GT(w.total_us, 0);
      }
    }
  }
  EXPECT_TRUE(found) << "the blocked LOCK statement must log its lock wait";
}

TEST_F(SystemViewsTest, ExplainAnalyzeReportsMotionWaitsSeparately) {
  StartCluster();
  auto s = cluster_->Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (" + std::to_string(i) + ", 1)").ok());
  }
  auto r = s->Execute("EXPLAIN ANALYZE SELECT c1, c2 FROM t1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool motion_wait = false;
  for (const Row& row : r->rows) {
    if (row[0].string_val().find("motion wait: send=") != std::string::npos) {
      motion_wait = true;
    }
  }
  EXPECT_TRUE(motion_wait) << "gather motion must report send/recv waits";
}

}  // namespace
}  // namespace gphtap
