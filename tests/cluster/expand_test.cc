// Online cluster expansion: AddSegments at runtime, per-table incremental
// rebalancing (snapshot copy + change-log catchup + brief cutover), correct
// reads in the mixed pre-rebalance state, a crash during the rebalance copy
// phase recovering into a clean coordinator-driven retry, and new segments
// actually serving data afterwards.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/fault_injector.h"
#include "integration/actor.h"

namespace gphtap {
namespace {

class ExpandTest : public ::testing::Test {
 protected:
  void StartCluster(int num_segments = 2) {
    ClusterOptions options;
    options.num_segments = num_segments;
    options.crash_recovery_enabled = true;  // rebalance retry after a crash
    cluster_ = std::make_unique<Cluster>(options);
    session_ = cluster_->Connect();
  }

  QueryResult Exec(const std::string& sql) {
    auto r = session_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::set<int64_t> Keys(const std::string& table) {
    std::set<int64_t> out;
    auto r = session_->Execute("SELECT k FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      for (const Row& row : r->rows) out.insert(row[0].int_val());
    }
    return out;
  }

  int64_t Sum(const std::string& table) {
    auto r = session_->Execute("SELECT sum(v) FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && !r->rows.empty() ? r->rows[0][0].int_val() : -1;
  }

  uint64_t RowsOnSegment(int seg, const std::string& table) {
    auto def = cluster_->LookupTable(table);
    EXPECT_TRUE(def.ok());
    Table* t = cluster_->segment(seg)->GetTable(def->id);
    return t == nullptr ? 0 : t->StoredVersionCount();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Session> session_;
};

TEST_F(ExpandTest, AddSegmentsKeepsExistingTablesRoutedToOldSpan) {
  StartCluster(2);
  Exec("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)");
  for (int i = 0; i < 50; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
  }
  std::set<int64_t> before = Keys("t");

  auto n = cluster_->AddSegments(2);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 4);

  // Pre-rebalance: reads are complete and writes still route to the old span
  // (the new segments would never be probed by hash routing on span 2).
  EXPECT_EQ(Keys("t"), before);
  Exec("INSERT INTO t VALUES (100, 1)");
  EXPECT_EQ(Sum("t"), 51);
  EXPECT_EQ(RowsOnSegment(2, "t") + RowsOnSegment(3, "t"), 0u);

  // New tables created after the expansion span all four segments.
  Exec("CREATE TABLE t2 (k int, v int) DISTRIBUTED BY (k)");
  for (int i = 0; i < 64; ++i) {
    Exec("INSERT INTO t2 VALUES (" + std::to_string(i) + ", 1)");
  }
  EXPECT_GT(RowsOnSegment(2, "t2") + RowsOnSegment(3, "t2"), 0u);
}

TEST_F(ExpandTest, RebalanceMovesHashTableOntoNewSegments) {
  StartCluster(2);
  Exec("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)");
  for (int i = 0; i < 80; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
         std::to_string(i) + ")");
  }
  std::set<int64_t> before = Keys("t");
  int64_t sum = Sum("t");

  ASSERT_TRUE(cluster_->AddSegments(2).ok());
  auto report = session_->RebalanceTable("t");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->cutover_complete);
  EXPECT_GT(report->rows_moved, 0u);

  // Same data, now with live rows on the added segments.
  EXPECT_EQ(Keys("t"), before);
  EXPECT_EQ(Sum("t"), sum);
  EXPECT_GT(RowsOnSegment(2, "t") + RowsOnSegment(3, "t"), 0u);

  // Routing follows the new span: direct-dispatch point reads still find
  // every key, and new writes land on the widened modulus.
  for (int i = 0; i < 80; i += 7) {
    auto r = Exec("SELECT v FROM t WHERE k = " + std::to_string(i));
    ASSERT_EQ(r.rows.size(), 1u) << "k=" << i;
    EXPECT_EQ(r.rows[0][0].int_val(), i);
  }
  // Idempotent: a second rebalance is a no-op.
  auto again = session_->RebalanceTable("t");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows_moved, 0u);
  EXPECT_EQ(Sum("t"), sum);
}

TEST_F(ExpandTest, RebalanceRunsUnderConcurrentWrites) {
  StartCluster(2);
  Exec("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)");
  for (int i = 0; i < 60; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
  }
  ASSERT_TRUE(cluster_->AddSegments(1).ok());

  // Writers keep inserting while the rebalance copies; every row must survive
  // the cutover exactly once, whether it moved, arrived mid-copy (change-log
  // catchup), or landed after the span flipped.
  Actor writer(cluster_.get());
  std::vector<std::future<Status>> writes;
  for (int i = 100; i < 160; ++i) {
    writes.push_back(
        writer.Run("INSERT INTO t VALUES (" + std::to_string(i) + ", 1)"));
  }
  auto report = session_->RebalanceTable("t");
  for (auto& w : writes) ASSERT_TRUE(w.get().ok());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(Keys("t").size(), 120u);
  EXPECT_EQ(Sum("t"), 120);
}

TEST_F(ExpandTest, CrashDuringRebalanceCopyRecoversAndRetries) {
  StartCluster(2);
  Exec("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)");
  for (int i = 0; i < 60; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
  }
  ASSERT_TRUE(cluster_->AddSegments(2).ok());

  // Segment 1 dies while the copy phase reads it: the statement aborts, the
  // staged copies never commit, and the table stays in the pre-cutover state
  // (rebalancing flag up, reads full fan-out, writes on the old span).
  cluster_->faults().ArmOneShot(fault_points::kCrashDuringRebalanceCopy, 1);
  auto failed = session_->RebalanceTable("t");
  ASSERT_FALSE(failed.ok());

  ASSERT_TRUE(cluster_->RecoverSegment(1).ok());
  EXPECT_EQ(Keys("t").size(), 60u);
  EXPECT_EQ(Sum("t"), 60);

  // Coordinator-driven retry completes the migration.
  auto retry = session_->RebalanceTable("t");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(retry->cutover_complete);
  EXPECT_EQ(Keys("t").size(), 60u);
  EXPECT_EQ(Sum("t"), 60);
  EXPECT_GT(RowsOnSegment(2, "t") + RowsOnSegment(3, "t"), 0u);
}

TEST_F(ExpandTest, RebalanceReplicatedTableCopiesToNewSegments) {
  StartCluster(2);
  Exec("CREATE TABLE dims (k int, v int) DISTRIBUTED REPLICATED");
  Exec("CREATE TABLE facts (k int, v int) DISTRIBUTED BY (k)");
  for (int i = 0; i < 20; ++i) {
    Exec("INSERT INTO dims VALUES (" + std::to_string(i) + ", " +
         std::to_string(i) + ")");
    Exec("INSERT INTO facts VALUES (" + std::to_string(i) + ", 1)");
  }
  ASSERT_TRUE(cluster_->AddSegments(2).ok());

  // Expansion runbook order: sync replicated tables first, then hash tables
  // (a collocated join on the widened gang needs the dims copy everywhere).
  auto rep = session_->RebalanceTable("dims");
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(RowsOnSegment(2, "dims"), 20u);
  EXPECT_EQ(RowsOnSegment(3, "dims"), 20u);
  auto hash = session_->RebalanceTable("facts");
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();

  auto r = Exec(
      "SELECT sum(dims.v) FROM facts JOIN dims ON facts.k = dims.k");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_val(), 190);  // 0+1+...+19
}

TEST_F(ExpandTest, RebalanceSqlStatementAndTxnBlockRejection) {
  StartCluster(2);
  Exec("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)");
  for (int i = 0; i < 30; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 1)");
  }
  ASSERT_TRUE(cluster_->AddSegments(1).ok());

  // Inside an explicit block the command is rejected outright.
  Exec("BEGIN");
  auto blocked = session_->Execute("REBALANCE TABLE t");
  EXPECT_FALSE(blocked.ok());
  Exec("ROLLBACK");

  auto r = Exec("REBALANCE TABLE t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(Sum("t"), 30);
}

}  // namespace
}  // namespace gphtap
