// Seeded chaos smoke: concurrent transfer + scan sessions under a random (but
// seed-determined) schedule of segment crashes, mirror failovers, message
// delays and drops. The four safety invariants (balance conservation, no lost
// writes, no ghost writes, classified termination) must hold for every seed;
// run_tier1.sh runs a longer schedule, this keeps CI fast.
#include <gtest/gtest.h>

#include "api/gphtap.h"
#include "workload/chaos.h"

namespace gphtap {
namespace {

ClusterOptions ChaosCluster() {
  ClusterOptions o;
  o.num_segments = 3;
  o.gdd_enabled = true;
  o.mirrors_enabled = true;
  o.crash_recovery_enabled = true;
  o.fts_enabled = true;
  o.breaker_enabled = true;
  // Bound commit-retry so an ambiguous commit resolves within the run's
  // classified-termination slack instead of the 10 s default horizon.
  o.commit_retry_deadline_us = 2'000'000;
  return o;
}

ChaosConfig SmokeConfig(uint64_t seed) {
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.duration_ms = 2000;
  cfg.transfer_sessions = 6;
  cfg.scan_sessions = 2;  // >= 8 sessions total
  cfg.statement_timeout_ms = 1500;
  return cfg;
}

void RunSeed(uint64_t seed) {
  Cluster cluster(ChaosCluster());
  ASSERT_TRUE(SetupChaosTables(&cluster, SmokeConfig(seed)).ok());
  ChaosReport report = RunChaosWorkload(&cluster, SmokeConfig(seed));
  SCOPED_TRACE(report.ToString());

  EXPECT_TRUE(report.invariants_ok()) << report.ToString();

  // The run exercised real work and real faults.
  EXPECT_GT(report.transfers_attempted, 0u);
  EXPECT_GT(report.transfers_committed, 0u);
  EXPECT_GT(report.scans_attempted, 0u);
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_GE(report.crashes, 1u);
  EXPECT_EQ(report.recoveries, report.crashes);

  // Every attempt is classified into exactly one bucket (the failure buckets
  // cover both transfer and scan failures).
  EXPECT_EQ(report.transfers_committed + report.transfers_ambiguous + report.scans_ok +
                report.deadlock_victims + report.timeouts + report.shed +
                report.unavailable + report.aborted_other,
            report.transfers_attempted + report.scans_attempted);
}

TEST(ChaosTest, InvariantsHoldSeed42) { RunSeed(42); }

TEST(ChaosTest, InvariantsHoldSeed1337) { RunSeed(1337); }

// Online reorg + elastic expansion ride the chaos schedule: a maintenance
// session interleaves VACUUM / CLUSTER (with deliberate BEGIN; CLUSTER; ABORT
// cycles), and mid-run the cluster grows by two segments and rebalances both
// chaos tables onto the new width — all while transfers, scans, crashes,
// delays, and drops keep coming. Every safety invariant must still hold, and
// the expansion must converge.
void RunReorgExpandSeed(uint64_t seed) {
  Cluster cluster(ChaosCluster());
  ChaosConfig cfg = SmokeConfig(seed);
  cfg.reorg_enabled = true;
  cfg.expand_segments = 2;
  // Hammer the stats views (gp_stat_statements / gp_stat_history /
  // gp_stat_progress / gp_metrics) while VACUUM, CLUSTER, and the rebalance
  // publish progress under the fault schedule.
  cfg.views_reader_enabled = true;
  ASSERT_TRUE(SetupChaosTables(&cluster, cfg).ok());
  ChaosReport report = RunChaosWorkload(&cluster, cfg);
  SCOPED_TRACE(report.ToString());

  EXPECT_TRUE(report.invariants_ok()) << report.ToString();
  EXPECT_GT(report.transfers_committed, 0u);
  EXPECT_GT(report.scans_ok, 0u);
  EXPECT_GT(report.view_reads, 0u);
  EXPECT_LT(report.view_read_failures, report.view_reads)
      << "every stats-view read failed under chaos";
  EXPECT_TRUE(report.expanded);
  EXPECT_TRUE(report.rebalanced);
  EXPECT_GT(report.reorg_ops + report.reorg_failures, 0u);
  EXPECT_EQ(cluster.num_segments(), 5);

  // The new segments actually serve data after the cutover.
  auto def = cluster.LookupTable("chaos_history");
  ASSERT_TRUE(def.ok());
  uint64_t on_new = 0;
  for (int seg = 3; seg < 5; ++seg) {
    Table* t = cluster.segment(seg)->GetTable(def->id);
    if (t != nullptr) on_new += t->StoredVersionCount();
  }
  EXPECT_GT(on_new, 0u);
}

TEST(ChaosTest, ReorgAndExpansionInvariantsSeed42) { RunReorgExpandSeed(42); }

TEST(ChaosTest, ReorgAndExpansionInvariantsSeed1337) { RunReorgExpandSeed(1337); }

TEST(ChaosTest, ReorgAndExpansionInvariantsSeed7) { RunReorgExpandSeed(7); }

// Delta-store seal-under-crash: the chaos tables are heap tables, so with the
// delta store enabled every transfer feeds the columnar delta and the
// invariant scans are served by delta-merged vectorized scans — while a seal
// worker forces seal passes on random segments racing the crash schedule. A
// seal pass landing on a downed segment fails cleanly; a successful one must
// never change sum(balance) or lose/invent history markers.
void RunSealUnderCrashSeed(uint64_t seed) {
  ClusterOptions o = ChaosCluster();
  o.vectorized_execution_enabled = true;
  o.delta_store_enabled = true;
  o.delta_seal_period_us = 5'000;  // background daemon races the forced passes
  Cluster cluster(o);
  ChaosConfig cfg = SmokeConfig(seed);
  cfg.delta_seal_enabled = true;
  ASSERT_TRUE(SetupChaosTables(&cluster, cfg).ok());
  ChaosReport report = RunChaosWorkload(&cluster, cfg);
  SCOPED_TRACE(report.ToString());

  EXPECT_TRUE(report.invariants_ok()) << report.ToString();
  EXPECT_GT(report.transfers_committed, 0u);
  EXPECT_GT(report.scans_ok, 0u);
  EXPECT_GE(report.crashes, 1u);
  EXPECT_GT(report.seal_passes, 0u);

  // The invariant scans really went through the delta-merged path.
  MetricsSnapshot snap = cluster.StatsSnapshot();
  EXPECT_GT(snap.counter("delta.merged_scans"), 0u);
}

TEST(ChaosTest, SealUnderCrashInvariantsSeed42) { RunSealUnderCrashSeed(42); }

TEST(ChaosTest, SealUnderCrashInvariantsSeed1337) { RunSealUnderCrashSeed(1337); }

TEST(ChaosTest, SealUnderCrashInvariantsSeed7) { RunSealUnderCrashSeed(7); }

// Overload shedding composes with the chaos schedule: a tight bounded queue
// sheds rather than stalls, and shedding never breaks a safety invariant.
TEST(ChaosTest, InvariantsHoldUnderSheddingConfig) {
  ClusterOptions o = ChaosCluster();
  o.resgroup_max_queue = 2;
  o.resgroup_shed_on_saturation = false;
  Cluster cluster(o);
  ChaosConfig cfg = SmokeConfig(7);
  cfg.duration_ms = 1500;
  ASSERT_TRUE(SetupChaosTables(&cluster, cfg).ok());
  ChaosReport report = RunChaosWorkload(&cluster, cfg);
  EXPECT_TRUE(report.invariants_ok()) << report.ToString();
  EXPECT_GT(report.transfers_committed, 0u);
}

}  // namespace
}  // namespace gphtap
