// Seeded chaos smoke: concurrent transfer + scan sessions under a random (but
// seed-determined) schedule of segment crashes, mirror failovers, message
// delays and drops. The four safety invariants (balance conservation, no lost
// writes, no ghost writes, classified termination) must hold for every seed;
// run_tier1.sh runs a longer schedule, this keeps CI fast.
#include <gtest/gtest.h>

#include "api/gphtap.h"
#include "workload/chaos.h"

namespace gphtap {
namespace {

ClusterOptions ChaosCluster() {
  ClusterOptions o;
  o.num_segments = 3;
  o.gdd_enabled = true;
  o.mirrors_enabled = true;
  o.crash_recovery_enabled = true;
  o.fts_enabled = true;
  o.breaker_enabled = true;
  // Bound commit-retry so an ambiguous commit resolves within the run's
  // classified-termination slack instead of the 10 s default horizon.
  o.commit_retry_deadline_us = 2'000'000;
  return o;
}

ChaosConfig SmokeConfig(uint64_t seed) {
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.duration_ms = 2000;
  cfg.transfer_sessions = 6;
  cfg.scan_sessions = 2;  // >= 8 sessions total
  cfg.statement_timeout_ms = 1500;
  return cfg;
}

void RunSeed(uint64_t seed) {
  Cluster cluster(ChaosCluster());
  ASSERT_TRUE(SetupChaosTables(&cluster, SmokeConfig(seed)).ok());
  ChaosReport report = RunChaosWorkload(&cluster, SmokeConfig(seed));
  SCOPED_TRACE(report.ToString());

  EXPECT_TRUE(report.invariants_ok()) << report.ToString();

  // The run exercised real work and real faults.
  EXPECT_GT(report.transfers_attempted, 0u);
  EXPECT_GT(report.transfers_committed, 0u);
  EXPECT_GT(report.scans_attempted, 0u);
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_GE(report.crashes, 1u);
  EXPECT_EQ(report.recoveries, report.crashes);

  // Every attempt is classified into exactly one bucket (the failure buckets
  // cover both transfer and scan failures).
  EXPECT_EQ(report.transfers_committed + report.transfers_ambiguous + report.scans_ok +
                report.deadlock_victims + report.timeouts + report.shed +
                report.unavailable + report.aborted_other,
            report.transfers_attempted + report.scans_attempted);
}

TEST(ChaosTest, InvariantsHoldSeed42) { RunSeed(42); }

TEST(ChaosTest, InvariantsHoldSeed1337) { RunSeed(1337); }

// Overload shedding composes with the chaos schedule: a tight bounded queue
// sheds rather than stalls, and shedding never breaks a safety invariant.
TEST(ChaosTest, InvariantsHoldUnderSheddingConfig) {
  ClusterOptions o = ChaosCluster();
  o.resgroup_max_queue = 2;
  o.resgroup_shed_on_saturation = false;
  Cluster cluster(o);
  ChaosConfig cfg = SmokeConfig(7);
  cfg.duration_ms = 1500;
  ASSERT_TRUE(SetupChaosTables(&cluster, cfg).ok());
  ChaosReport report = RunChaosWorkload(&cluster, cfg);
  EXPECT_TRUE(report.invariants_ok()) << report.ToString();
  EXPECT_GT(report.transfers_committed, 0u);
}

}  // namespace
}  // namespace gphtap
