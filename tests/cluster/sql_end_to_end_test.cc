// End-to-end SQL tests through the full stack: parser -> analyzer -> planner ->
// distributed executor -> storage, with real transactions.
#include <gtest/gtest.h>

#include <future>

#include "api/gphtap.h"

namespace gphtap {
namespace {

class SqlEndToEndTest : public ::testing::Test {
 protected:
  SqlEndToEndTest() {
    ClusterOptions options;
    options.num_segments = 3;
    options.gdd_period_us = 20'000;
    cluster_ = std::make_unique<Cluster>(options);
    session_ = cluster_->Connect();
  }

  QueryResult Exec(const std::string& sql) {
    auto r = session_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Status ExecErr(const std::string& sql) {
    auto r = session_->Execute(sql);
    EXPECT_FALSE(r.ok()) << sql << " unexpectedly succeeded";
    return r.ok() ? Status::OK() : r.status();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Session> session_;
};

TEST_F(SqlEndToEndTest, CreateInsertSelect) {
  Exec("CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)");
  QueryResult ins = Exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  EXPECT_EQ(ins.affected, 3);
  QueryResult sel = Exec("SELECT c1, c2 FROM t ORDER BY 1");
  ASSERT_EQ(sel.rows.size(), 3u);
  EXPECT_EQ(sel.rows[0][0].int_val(), 1);
  EXPECT_EQ(sel.rows[2][1].int_val(), 30);
  EXPECT_EQ(sel.columns[0], "c1");
}

TEST_F(SqlEndToEndTest, RowsSpreadAcrossSegments) {
  Exec("CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)");
  Exec("INSERT INTO t SELECT i, i FROM generate_series(1, 300) i");
  // Hash distribution should land rows on every segment.
  TableDef def = *cluster_->LookupTable("t");
  int nonempty = 0;
  uint64_t total = 0;
  for (int s = 0; s < cluster_->num_segments(); ++s) {
    uint64_t n = cluster_->segment(s)->GetTable(def.id)->StoredVersionCount();
    total += n;
    if (n > 0) ++nonempty;
  }
  EXPECT_EQ(total, 300u);
  EXPECT_EQ(nonempty, 3);
  QueryResult sel = Exec("SELECT count(*) FROM t");
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(sel.rows[0][0].int_val(), 300);
}

TEST_F(SqlEndToEndTest, GenerateSeriesInSelectList) {
  // The paper's own example (Section 5.2).
  Exec("CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)");
  QueryResult ins = Exec("INSERT INTO t (c1, c2) SELECT 1, generate_series(1,10)");
  EXPECT_EQ(ins.affected, 10);
  // All ten rows share distribution key 1 -> exactly one segment holds them.
  TableDef def = *cluster_->LookupTable("t");
  int nonempty = 0;
  for (int s = 0; s < cluster_->num_segments(); ++s) {
    if (cluster_->segment(s)->GetTable(def.id)->StoredVersionCount() > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 1);
}

TEST_F(SqlEndToEndTest, WhereFilterAndExpressions) {
  Exec("CREATE TABLE t (c1 int, c2 int)");
  Exec("INSERT INTO t SELECT i, i * 2 FROM generate_series(1, 100) i");
  QueryResult sel = Exec("SELECT c1 + c2 AS s FROM t WHERE c1 > 95 ORDER BY s");
  ASSERT_EQ(sel.rows.size(), 5u);
  EXPECT_EQ(sel.rows[0][0].int_val(), 96 * 3);
  EXPECT_EQ(sel.columns[0], "s");
}

TEST_F(SqlEndToEndTest, UpdateAndDelete) {
  Exec("CREATE TABLE accounts (aid int, balance int) DISTRIBUTED BY (aid)");
  Exec("INSERT INTO accounts SELECT i, 100 FROM generate_series(1, 50) i");
  QueryResult upd = Exec("UPDATE accounts SET balance = balance + 5 WHERE aid = 7");
  EXPECT_EQ(upd.affected, 1);
  QueryResult sel = Exec("SELECT balance FROM accounts WHERE aid = 7");
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(sel.rows[0][0].int_val(), 105);

  QueryResult del = Exec("DELETE FROM accounts WHERE aid <= 10");
  EXPECT_EQ(del.affected, 10);
  QueryResult count = Exec("SELECT count(*) FROM accounts");
  EXPECT_EQ(count.rows[0][0].int_val(), 40);
}

TEST_F(SqlEndToEndTest, UpdateAllRows) {
  Exec("CREATE TABLE t (c1 int, c2 int)");
  Exec("INSERT INTO t SELECT i, 0 FROM generate_series(1, 30) i");
  QueryResult upd = Exec("UPDATE t SET c2 = 1");
  EXPECT_EQ(upd.affected, 30);
  QueryResult sum = Exec("SELECT sum(c2) FROM t");
  EXPECT_EQ(sum.rows[0][0].int_val(), 30);
}

TEST_F(SqlEndToEndTest, AggregatesAndGroupBy) {
  Exec("CREATE TABLE sales (region int, amount int)");
  Exec("INSERT INTO sales SELECT i % 3, i FROM generate_series(1, 99) i");
  QueryResult agg = Exec(
      "SELECT region, count(*) AS n, sum(amount) AS total, min(amount), max(amount), "
      "avg(amount) FROM sales GROUP BY region ORDER BY region");
  ASSERT_EQ(agg.rows.size(), 3u);
  // region 0: 3,6,...,99 -> 33 rows, sum = 3*(1..33)=1683
  EXPECT_EQ(agg.rows[0][0].int_val(), 0);
  EXPECT_EQ(agg.rows[0][1].int_val(), 33);
  EXPECT_EQ(agg.rows[0][2].int_val(), 1683);
  EXPECT_EQ(agg.rows[0][3].int_val(), 3);
  EXPECT_EQ(agg.rows[0][4].int_val(), 99);
  EXPECT_DOUBLE_EQ(agg.rows[0][5].double_val(), 51.0);
}

TEST_F(SqlEndToEndTest, JoinRedistributes) {
  Exec("CREATE TABLE student (id int, class_id int) DISTRIBUTED BY (id)");
  Exec("CREATE TABLE class (cid int, size int) DISTRIBUTED BY (cid)");
  Exec("INSERT INTO student SELECT i, i % 10 FROM generate_series(1, 100) i");
  Exec("INSERT INTO class SELECT i, i * 100 FROM generate_series(0, 9) i");
  // Join on class_id = cid: student is NOT distributed by class_id, so a
  // redistribute motion is required.
  QueryResult join = Exec(
      "SELECT count(*) FROM student JOIN class ON student.class_id = class.cid");
  EXPECT_EQ(join.rows[0][0].int_val(), 100);

  QueryResult join2 = Exec(
      "SELECT s.id, c.size FROM student s JOIN class c ON s.class_id = c.cid "
      "WHERE s.id = 42");
  ASSERT_EQ(join2.rows.size(), 1u);
  EXPECT_EQ(join2.rows[0][1].int_val(), 200);  // 42 % 10 = 2 -> size 200
}

TEST_F(SqlEndToEndTest, CollocatedJoinOnDistributionKey) {
  Exec("CREATE TABLE a (k int, v int) DISTRIBUTED BY (k)");
  Exec("CREATE TABLE b (k int, w int) DISTRIBUTED BY (k)");
  Exec("INSERT INTO a SELECT i, i FROM generate_series(1, 60) i");
  Exec("INSERT INTO b SELECT i, -i FROM generate_series(31, 90) i");
  QueryResult join = Exec("SELECT count(*) FROM a JOIN b ON a.k = b.k");
  EXPECT_EQ(join.rows[0][0].int_val(), 30);
}

TEST_F(SqlEndToEndTest, ReplicatedTableJoin) {
  Exec("CREATE TABLE facts (k int, v int) DISTRIBUTED BY (k)");
  Exec("CREATE TABLE dims (k int, name text) DISTRIBUTED REPLICATED");
  Exec("INSERT INTO facts SELECT i, i FROM generate_series(1, 40) i");
  Exec("INSERT INTO dims VALUES (0, 'even'), (1, 'odd')");
  QueryResult join = Exec(
      "SELECT d.name, count(*) AS n FROM facts f JOIN dims d ON f.k % 2 = d.k "
      "GROUP BY d.name ORDER BY d.name");
  // Non-equi-ish: f.k % 2 = d.k is an equality between an expression and a
  // column — our planner treats it as residual, so this still must work via
  // broadcast nest loop.
  ASSERT_EQ(join.rows.size(), 2u);
  EXPECT_EQ(join.rows[0][1].int_val(), 20);
  EXPECT_EQ(join.rows[1][1].int_val(), 20);
}

TEST_F(SqlEndToEndTest, LimitStopsEarly) {
  Exec("CREATE TABLE big (c1 int, c2 int)");
  Exec("INSERT INTO big SELECT i, i FROM generate_series(1, 1000) i");
  QueryResult sel = Exec("SELECT c1 FROM big LIMIT 7");
  EXPECT_EQ(sel.rows.size(), 7u);
  QueryResult sorted = Exec("SELECT c1 FROM big ORDER BY c1 DESC LIMIT 3");
  ASSERT_EQ(sorted.rows.size(), 3u);
  EXPECT_EQ(sorted.rows[0][0].int_val(), 1000);
}

TEST_F(SqlEndToEndTest, ExplicitTransactionCommitAndRollback) {
  Exec("CREATE TABLE t (c1 int, c2 int)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1, 1)");
  Exec("COMMIT");
  EXPECT_EQ(Exec("SELECT count(*) FROM t").rows[0][0].int_val(), 1);

  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (2, 2)");
  EXPECT_EQ(Exec("SELECT count(*) FROM t").rows[0][0].int_val(), 2);  // own write
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT count(*) FROM t").rows[0][0].int_val(), 1);
}

TEST_F(SqlEndToEndTest, SnapshotIsolationAcrossSessions) {
  Exec("CREATE TABLE t (c1 int, c2 int)");
  Exec("INSERT INTO t VALUES (1, 1)");
  auto other = cluster_->Connect();

  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (2, 2)");
  // Uncommitted insert invisible to the other session.
  auto r = other->Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].int_val(), 1);
  Exec("COMMIT");
  r = other->Execute("SELECT count(*) FROM t");
  EXPECT_EQ(r->rows[0][0].int_val(), 2);
}

TEST_F(SqlEndToEndTest, FailedStatementAbortsTransaction) {
  Exec("CREATE TABLE t (c1 int, c2 int)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1, 1)");
  ExecErr("SELECT c1 FROM missing_table");
  // Transaction is now failed: further statements are rejected.
  Status s = ExecErr("INSERT INTO t VALUES (2, 2)");
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  Exec("COMMIT");  // commit of a failed txn = rollback
  EXPECT_EQ(Exec("SELECT count(*) FROM t").rows[0][0].int_val(), 0);
}

TEST_F(SqlEndToEndTest, OnePhaseVsTwoPhaseCommitCounting) {
  Exec("CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)");
  // Single-segment write: 1PC.
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1, 1)");
  Exec("COMMIT");
  // Multi-segment write: 2PC (series spreads across segments).
  Exec("BEGIN");
  Exec("INSERT INTO t SELECT i, i FROM generate_series(1, 30) i");
  Exec("COMMIT");
  // Session stats must show one of each.
  // (stats() is accumulated on the session)
  EXPECT_GE(session_->stats().one_phase_commits, 1u);
  EXPECT_GE(session_->stats().two_phase_commits, 1u);
}

TEST_F(SqlEndToEndTest, AoAndColumnTablesThroughSql) {
  Exec("CREATE TABLE ao (k int, v int) WITH (appendonly=true, orientation=row)");
  Exec("CREATE TABLE aoc (k int, v int) WITH (appendonly=true, orientation=column, "
       "compresstype=rle)");
  Exec("INSERT INTO ao SELECT i, i FROM generate_series(1, 100) i");
  Exec("INSERT INTO aoc SELECT i, i FROM generate_series(1, 100) i");
  EXPECT_EQ(Exec("SELECT count(*) FROM ao").rows[0][0].int_val(), 100);
  EXPECT_EQ(Exec("SELECT sum(v) FROM aoc").rows[0][0].int_val(), 5050);
  // AO DML goes through the visibility map (serialized by ExclusiveLock).
  EXPECT_EQ(Exec("UPDATE ao SET v = 0 WHERE k = 1").affected, 1);
  EXPECT_EQ(Exec("SELECT sum(v) FROM ao").rows[0][0].int_val(), 5050 - 1);
  EXPECT_EQ(Exec("DELETE FROM aoc WHERE k <= 10").affected, 10);
  EXPECT_EQ(Exec("SELECT count(*) FROM aoc").rows[0][0].int_val(), 90);
}

TEST_F(SqlEndToEndTest, AoDmlTransactional) {
  Exec("CREATE TABLE ao (k int, v int) WITH (appendonly=true) DISTRIBUTED BY (k)");
  Exec("INSERT INTO ao SELECT i, i FROM generate_series(1, 50) i");
  // Rolled-back AO delete leaves the rows visible.
  Exec("BEGIN");
  EXPECT_EQ(Exec("DELETE FROM ao WHERE k <= 25").affected, 25);
  EXPECT_EQ(Exec("SELECT count(*) FROM ao").rows[0][0].int_val(), 25);  // own view
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT count(*) FROM ao").rows[0][0].int_val(), 50);
  // Committed AO update replaces the row.
  Exec("UPDATE ao SET v = v + 100 WHERE k = 7");
  auto r = Exec("SELECT v FROM ao WHERE k = 7");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_val(), 107);
  // AO writers serialize at the coordinator even with GDD on.
  auto other = cluster_->Connect();
  Exec("BEGIN");
  Exec("UPDATE ao SET v = 0 WHERE k = 8");
  auto blocked = std::async(std::launch::async, [&] {
    return other->Execute("UPDATE ao SET v = 1 WHERE k = 9").status();
  });
  EXPECT_EQ(blocked.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout)
      << "AO writers must serialize on the relation lock";
  Exec("COMMIT");
  EXPECT_TRUE(blocked.get().ok());
}

TEST_F(SqlEndToEndTest, HavingFiltersGroups) {
  Exec("CREATE TABLE s (region int, amount int)");
  Exec("INSERT INTO s SELECT i % 4, i FROM generate_series(1, 40) i");
  // Sums: region 1: 1+5+...+37=190? compute: region r sum = sum of i in 1..40 with i%4==r.
  QueryResult r = Exec(
      "SELECT region, sum(amount) AS total FROM s GROUP BY region "
      "HAVING total > 200 ORDER BY region");
  // region sums: r0: 4+8+...+40 = 220; r1: 1+5+...+37 = 190; r2: 2+6+...+38 = 200;
  // r3: 3+7+...+39 = 210. HAVING > 200 keeps r0 and r3.
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_val(), 0);
  EXPECT_EQ(r.rows[1][0].int_val(), 3);

  // HAVING with an aggregate not in the select list (hidden item).
  QueryResult r2 = Exec(
      "SELECT region FROM s GROUP BY region HAVING count(*) > 9 ORDER BY region");
  EXPECT_EQ(r2.rows.size(), 4u);
  ASSERT_EQ(r2.columns.size(), 1u);  // the hidden count(*) is chopped
  QueryResult r3 = Exec(
      "SELECT region FROM s GROUP BY region HAVING min(amount) >= 3 ORDER BY region");
  ASSERT_EQ(r3.rows.size(), 2u);  // regions 3 (min 3) and 0 (min 4)
}

TEST_F(SqlEndToEndTest, HavingErrors) {
  Exec("CREATE TABLE s (region int, amount int)");
  ExecErr("SELECT region FROM s GROUP BY region HAVING amount > 1");  // not grouped
  ExecErr("SELECT amount FROM s HAVING amount > 1");                  // no grouping
}

TEST_F(SqlEndToEndTest, DistinctDeduplicates) {
  Exec("CREATE TABLE d (a int, b int)");
  Exec("INSERT INTO d SELECT i % 3, i % 2 FROM generate_series(1, 60) i");
  QueryResult r = Exec("SELECT DISTINCT a, b FROM d ORDER BY a, b");
  EXPECT_EQ(r.rows.size(), 6u);
  QueryResult r2 = Exec("SELECT DISTINCT a FROM d WHERE b = 1 ORDER BY a");
  EXPECT_EQ(r2.rows.size(), 3u);
  // DISTINCT + LIMIT.
  QueryResult r3 = Exec("SELECT DISTINCT a FROM d LIMIT 2");
  EXPECT_EQ(r3.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, CreateIndexSpeedsLookupPath) {
  Exec("CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)");
  Exec("INSERT INTO t SELECT i, i FROM generate_series(1, 200) i");
  Exec("CREATE INDEX ON t (c1)");
  QueryResult sel = Exec("SELECT c2 FROM t WHERE c1 = 123");
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(sel.rows[0][0].int_val(), 123);
  // Index stays consistent across updates.
  Exec("UPDATE t SET c2 = 999 WHERE c1 = 123");
  sel = Exec("SELECT c2 FROM t WHERE c1 = 123");
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(sel.rows[0][0].int_val(), 999);
}

TEST_F(SqlEndToEndTest, VacuumReclaimsAfterUpdates) {
  Exec("CREATE TABLE t (c1 int, c2 int)");
  Exec("INSERT INTO t SELECT i, 0 FROM generate_series(1, 50) i");
  for (int i = 0; i < 3; ++i) Exec("UPDATE t SET c2 = c2 + 1");
  QueryResult v = Exec("VACUUM t");
  EXPECT_GE(v.affected, 100);  // 3 updates x 50 rows leave >= 150 dead versions
  EXPECT_EQ(Exec("SELECT count(*) FROM t").rows[0][0].int_val(), 50);
  EXPECT_EQ(Exec("SELECT sum(c2) FROM t").rows[0][0].int_val(), 150);
}

TEST_F(SqlEndToEndTest, PartitionedTableThroughSql) {
  Exec("CREATE TABLE sales (day int, amount int) DISTRIBUTED BY (day) "
       "PARTITION BY RANGE (day) ("
       "PARTITION hot START 100 END 200, "
       "PARTITION cold START 0 END 100 WITH (appendonly=true, orientation=column))");
  Exec("INSERT INTO sales SELECT i, i FROM generate_series(0, 199) i");
  EXPECT_EQ(Exec("SELECT count(*) FROM sales").rows[0][0].int_val(), 200);
  EXPECT_EQ(Exec("SELECT sum(amount) FROM sales WHERE day >= 100").rows[0][0].int_val(),
            (100 + 199) * 100 / 2);
}

TEST_F(SqlEndToEndTest, TruncateDiscardsEverything) {
  Exec("CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)");
  Exec("CREATE INDEX ON t (c1)");
  Exec("INSERT INTO t SELECT i, i FROM generate_series(1, 100) i");
  EXPECT_EQ(Exec("SELECT count(*) FROM t").rows[0][0].int_val(), 100);
  Exec("TRUNCATE t");
  EXPECT_EQ(Exec("SELECT count(*) FROM t").rows[0][0].int_val(), 0);
  // Table and index remain usable.
  Exec("INSERT INTO t VALUES (5, 50)");
  auto r = Exec("SELECT c2 FROM t WHERE c1 = 5");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_val(), 50);
  // AO tables truncate too.
  Exec("CREATE TABLE ao (k int) WITH (appendonly=true)");
  Exec("INSERT INTO ao SELECT i FROM generate_series(1, 20) i");
  Exec("TRUNCATE TABLE ao");
  EXPECT_EQ(Exec("SELECT count(*) FROM ao").rows[0][0].int_val(), 0);
  ExecErr("TRUNCATE missing_table");
}

TEST_F(SqlEndToEndTest, DropTableAndIfExists) {
  Exec("CREATE TABLE t (c1 int)");
  Exec("DROP TABLE t");
  ExecErr("SELECT * FROM t");
  Exec("DROP TABLE IF EXISTS t");
  ExecErr("DROP TABLE t");
}

TEST_F(SqlEndToEndTest, SelectStar) {
  Exec("CREATE TABLE t (c1 int, c2 text)");
  Exec("INSERT INTO t VALUES (1, 'hello')");
  QueryResult sel = Exec("SELECT * FROM t");
  ASSERT_EQ(sel.rows.size(), 1u);
  ASSERT_EQ(sel.columns.size(), 2u);
  EXPECT_EQ(sel.rows[0][1].string_val(), "hello");
}

TEST_F(SqlEndToEndTest, ShowTables) {
  Exec("CREATE TABLE t1 (c1 int)");
  Exec("CREATE TABLE t2 (c1 int) WITH (appendonly=true, orientation=column)");
  QueryResult r = Exec("SHOW TABLES");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, SyntaxErrorsSurface) {
  ExecErr("SELEC 1");
  ExecErr("SELECT FROM t");
  ExecErr("CREATE TABLE (c1 int)");
  ExecErr("INSERT INTO t VALUES (1,)");
}

TEST_F(SqlEndToEndTest, DistributionKeyUpdateRejected) {
  Exec("CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)");
  Exec("INSERT INTO t VALUES (1, 1)");
  auto r = session_->Execute("UPDATE t SET c1 = 2 WHERE c1 = 1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace gphtap
