// Transactional CLUSTER (VACUUM FULL-style reorg) across storage kinds:
// BEGIN; CLUSTER; ABORT leaves the table intact, the retry succeeds, readers
// keep flowing during the rewrite, and VACUUM compacts dead-heavy AO row
// groups (observable through gp_segment_status bloat columns).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "integration/actor.h"

namespace gphtap {
namespace {

class ReorgTest : public ::testing::Test {
 protected:
  void StartCluster(int num_segments = 3) {
    ClusterOptions options;
    options.num_segments = num_segments;
    cluster_ = std::make_unique<Cluster>(options);
    session_ = cluster_->Connect();
  }

  QueryResult Exec(const std::string& sql) {
    auto r = session_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::set<int64_t> Keys(const std::string& table) {
    std::set<int64_t> out;
    auto r = session_->Execute("SELECT k FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      for (const Row& row : r->rows) out.insert(row[0].int_val());
    }
    return out;
  }

  int64_t Sum(const std::string& table) {
    auto r = session_->Execute("SELECT sum(v) FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && !r->rows.empty() ? r->rows[0][0].int_val() : -1;
  }

  // One table per storage kind, same contents.
  void CreateAndFill(const std::string& name, const std::string& with) {
    Exec("CREATE TABLE " + name + " (k int, v int) " + with +
         " DISTRIBUTED BY (k)");
    for (int i = 0; i < 40; ++i) {
      Exec("INSERT INTO " + name + " VALUES (" + std::to_string(i) + ", " +
           std::to_string(i * 10) + ")");
    }
  }

  void AbortThenRetry(const std::string& name) {
    std::set<int64_t> before = Keys(name);
    int64_t sum_before = Sum(name);

    Exec("BEGIN");
    Exec("CLUSTER " + name + " USING k");
    Exec("ROLLBACK");
    EXPECT_EQ(Keys(name), before) << name << ": ABORTed CLUSTER changed data";
    EXPECT_EQ(Sum(name), sum_before);

    // Retry outside a block commits; contents are unchanged either way.
    Exec("CLUSTER " + name + " USING k");
    EXPECT_EQ(Keys(name), before) << name << ": committed CLUSTER changed data";
    EXPECT_EQ(Sum(name), sum_before);

    // And the table still takes writes afterwards.
    Exec("INSERT INTO " + name + " VALUES (1000, 1)");
    EXPECT_EQ(Sum(name), sum_before + 1);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Session> session_;
};

TEST_F(ReorgTest, ClusterAbortAndRetryHeap) {
  StartCluster();
  CreateAndFill("h", "");
  AbortThenRetry("h");
}

TEST_F(ReorgTest, ClusterAbortAndRetryAoRow) {
  StartCluster();
  CreateAndFill("ao", "WITH (appendonly=true, orientation=row)");
  AbortThenRetry("ao");
}

TEST_F(ReorgTest, ClusterAbortAndRetryAoColumn) {
  StartCluster();
  CreateAndFill("aoc", "WITH (appendonly=true, orientation=column)");
  AbortThenRetry("aoc");
}

TEST_F(ReorgTest, ClusterRejectsPartitionedAndSystemTables) {
  StartCluster();
  Exec("CREATE TABLE pt (k int, v int) DISTRIBUTED BY (k) "
       "PARTITION BY RANGE (v) (PARTITION p0 START 0 END 100, "
       "PARTITION p1 START 100 END 200)");
  auto r = session_->Execute("CLUSTER pt");
  EXPECT_FALSE(r.ok());
  r = session_->Execute("CLUSTER gp_segment_status");
  EXPECT_FALSE(r.ok());
}

// Readers are not blocked by an in-flight CLUSTER (ExclusiveLock admits
// AccessShare), and see the pre-rewrite state.
TEST_F(ReorgTest, ReadersFlowDuringCluster) {
  StartCluster();
  CreateAndFill("h", "");
  std::set<int64_t> before = Keys("h");

  Actor a(cluster_.get());
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(a.RunSync("CLUSTER h USING k").ok());

  // The rewrite is uncommitted: this session scans the old versions, now.
  EXPECT_EQ(Keys("h"), before);
  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  EXPECT_EQ(Keys("h"), before);
}

// VACUUM on an AO table frees all-dead sealed groups and compacts dead-heavy
// ones; gp_segment_status's ao_dead_rows drops accordingly.
TEST_F(ReorgTest, VacuumCompactsDeadHeavyAoGroups) {
  StartCluster(2);
  Exec("CREATE TABLE ao (k int, v int) WITH (appendonly=true, orientation=row) "
       "DISTRIBUTED BY (k)");
  // Enough rows to seal at least one 256-row group per segment.
  Exec("INSERT INTO ao SELECT i, 1 FROM generate_series(0, 599) i");
  // Kill ~half: every sealed group goes well past the 10% dead-heavy bar.
  Exec("DELETE FROM ao WHERE k < 300");

  auto bloat = [&]() -> std::pair<int64_t, int64_t> {
    auto r = Exec(
        "SELECT sum(ao_live_rows), sum(ao_dead_rows) FROM gp_segment_status");
    return {r.rows[0][0].int_val(), r.rows[0][1].int_val()};
  };
  auto [live_before, dead_before] = bloat();
  EXPECT_EQ(live_before, 300);
  EXPECT_EQ(dead_before, 300);

  Exec("VACUUM ao");
  // The first pass rewrites live rows out of dead-heavy groups (the rewrite
  // marks the old copies dead); the second frees the now-fully-dead groups.
  Exec("VACUUM ao");

  auto [live_after, dead_after] = bloat();
  EXPECT_EQ(live_after, 300);
  EXPECT_LT(dead_after, dead_before);
  EXPECT_EQ(Keys("ao").size(), 300u);
  EXPECT_EQ(Sum("ao"), 300);
}

}  // namespace
}  // namespace gphtap
