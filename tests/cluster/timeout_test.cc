// Query-lifecycle timeout enforcement: the statement deadline must fire while
// a statement is parked at each of the four blocking points — (a) a lock
// queue, (b) motion recv, (c) resource-group admission, (d) WAL fsync — and
// each firing must abort cleanly: locks released, no orphan gang state, the
// session immediately reusable. Plus the cancellation-propagation regressions:
// a receiver blocked on an idle sender wakes on exchange abort / deadline, and
// CancelTxn wakes a parked lock waiter.
//
// Timing bounds are deliberately asymmetric: the lower bound proves the
// deadline was honored (never fires early), the upper bound proves the parked
// thread actually woke near the deadline instead of waiting out the block
// (granularity contract: within ~2x kInterruptPollUs, asserted here with CI
// headroom on top).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "api/gphtap.h"
#include "common/clock.h"
#include "common/wait_event.h"
#include "integration/actor.h"
#include "lock/lock_owner.h"
#include "net/motion_exchange.h"
#include "net/sim_net.h"

namespace gphtap {
namespace {

ClusterOptions Base(int segments = 2) {
  ClusterOptions o;
  o.num_segments = segments;
  return o;
}

// ---------------------------------------------------------------------------
// (a) Statement timeout while parked in a lock queue.
// ---------------------------------------------------------------------------

TEST(TimeoutTest, StatementTimeoutInLockQueue) {
  Cluster cluster(Base());
  auto admin = cluster.Connect();
  ASSERT_TRUE(admin->Execute("CREATE TABLE t (k int, v int)").ok());
  ASSERT_TRUE(admin->Execute("INSERT INTO t VALUES (1, 0), (2, 0)").ok());

  Actor holder(&cluster);
  ASSERT_TRUE(holder.RunSync("BEGIN").ok());
  ASSERT_TRUE(holder.RunSync("UPDATE t SET v = 1 WHERE k = 1").ok());

  auto victim = cluster.Connect();
  victim->set_statement_timeout_us(200'000);
  int64_t t0 = MonotonicMicros();
  auto r = victim->Execute("UPDATE t SET v = 2 WHERE k = 1");
  int64_t elapsed = MonotonicMicros() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut) << r.status().ToString();
  EXPECT_GE(elapsed, 190'000);
  EXPECT_LT(elapsed, 200'000 + 400'000);  // woke near the deadline, not at commit
  EXPECT_EQ(victim->stats().statement_timeouts, 1u);
  EXPECT_FALSE(victim->in_txn());  // implicit txn rolled back

  // The victim's locks are gone: the holder commits, a fresh session and the
  // victim itself can both take the contended row.
  ASSERT_TRUE(holder.RunSync("COMMIT").ok());
  auto third = cluster.Connect();
  EXPECT_TRUE(third->Execute("UPDATE t SET v = 3 WHERE k = 1").ok());
  victim->set_statement_timeout_us(0);
  EXPECT_TRUE(victim->Execute("UPDATE t SET v = 4 WHERE k = 1").ok());
}

TEST(TimeoutTest, LockTimeoutIsIndependentOfStatementTimeout) {
  Cluster cluster(Base());
  auto admin = cluster.Connect();
  ASSERT_TRUE(admin->Execute("CREATE TABLE t (k int, v int)").ok());
  ASSERT_TRUE(admin->Execute("INSERT INTO t VALUES (1, 0)").ok());

  Actor holder(&cluster);
  ASSERT_TRUE(holder.RunSync("BEGIN").ok());
  ASSERT_TRUE(holder.RunSync("UPDATE t SET v = 1 WHERE k = 1").ok());

  // lock_timeout alone (no statement deadline) bounds the lock wait.
  auto victim = cluster.Connect();
  victim->set_lock_timeout_us(120'000);
  int64_t t0 = MonotonicMicros();
  auto r = victim->Execute("UPDATE t SET v = 2 WHERE k = 1");
  int64_t elapsed = MonotonicMicros() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut) << r.status().ToString();
  EXPECT_GE(elapsed, 110'000);
  EXPECT_LT(elapsed, 120'000 + 400'000);

  ASSERT_TRUE(holder.RunSync("COMMIT").ok());
  // Uncontended statements are untouched by lock_timeout.
  EXPECT_TRUE(victim->Execute("UPDATE t SET v = 3 WHERE k = 1").ok());
}

// ---------------------------------------------------------------------------
// (b) Statement timeout while parked in motion recv.
// ---------------------------------------------------------------------------

TEST(TimeoutTest, StatementTimeoutInMotionRecv) {
  Cluster cluster(Base());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE big (k int, v int)").ok());
  {
    auto def = cluster.LookupTable("big");
    ASSERT_TRUE(def.ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 2000; ++i) rows.push_back(Row{Datum(i), Datum(i * 2)});
    ASSERT_TRUE(s->ExecuteInsert(*def, rows).ok());
  }

  // 120 ms per 64-row tuple message: a full scan would stream for seconds,
  // so the receiver spends nearly all its time parked in motion recv.
  cluster.faults().ArmDelay(NetDelayPoint(MsgKind::kTupleData), 120'000);
  s->set_statement_timeout_us(250'000);
  int64_t t0 = MonotonicMicros();
  auto r = s->Execute("SELECT k, v FROM big");
  int64_t elapsed = MonotonicMicros() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut) << r.status().ToString();
  EXPECT_GE(elapsed, 240'000);
  // Full delivery would take ~16 delayed messages per sender (~1.9 s); the
  // receiver must wake at the deadline plus at most one in-flight delay.
  EXPECT_LT(elapsed, 1'200'000);

  // No orphan gang: disarm and the same session scans the whole table.
  cluster.faults().DisarmAll();
  s->set_statement_timeout_us(0);
  auto ok = s->Execute("SELECT k, v FROM big");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows.size(), 2000u);
}

// ---------------------------------------------------------------------------
// (c) Statement / admission timeout while parked in resource-group admission,
//     and shed-on-saturation.
// ---------------------------------------------------------------------------

ClusterOptions RgBase() {
  ClusterOptions o = Base();
  o.resource_groups_enabled = true;
  return o;
}

void MakeTightGroup(Session* admin) {
  ASSERT_TRUE(
      admin->Execute("CREATE RESOURCE GROUP tight WITH (CONCURRENCY=1, MEMORY_LIMIT=8)")
          .ok());
  ASSERT_TRUE(admin->Execute("CREATE ROLE app RESOURCE GROUP tight").ok());
}

TEST(TimeoutTest, StatementTimeoutInAdmissionQueue) {
  Cluster cluster(RgBase());
  auto admin = cluster.Connect();
  MakeTightGroup(admin.get());

  Actor holder(&cluster, "app");
  ASSERT_TRUE(holder.RunSync("BEGIN").ok());  // takes the single slot

  auto victim = cluster.Connect("app");
  victim->set_statement_timeout_us(200'000);
  int64_t t0 = MonotonicMicros();
  auto r = victim->Execute("BEGIN");
  int64_t elapsed = MonotonicMicros() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut) << r.status().ToString();
  EXPECT_GE(elapsed, 190'000);
  EXPECT_LT(elapsed, 200'000 + 400'000);
  EXPECT_FALSE(victim->in_txn());

  // Slot freed -> the victim admits normally afterwards.
  ASSERT_TRUE(holder.RunSync("COMMIT").ok());
  victim->set_statement_timeout_us(0);
  EXPECT_TRUE(victim->Execute("BEGIN").ok());
  EXPECT_TRUE(victim->Execute("COMMIT").ok());
}

TEST(TimeoutTest, AdmissionTimeoutGucFiresWithoutStatementTimeout) {
  Cluster cluster(RgBase());
  auto admin = cluster.Connect();
  MakeTightGroup(admin.get());

  Actor holder(&cluster, "app");
  ASSERT_TRUE(holder.RunSync("BEGIN").ok());

  auto victim = cluster.Connect("app");
  victim->set_admission_timeout_us(150'000);
  int64_t t0 = MonotonicMicros();
  auto r = victim->Execute("BEGIN");
  int64_t elapsed = MonotonicMicros() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut) << r.status().ToString();
  EXPECT_GE(elapsed, 140'000);
  EXPECT_LT(elapsed, 150'000 + 400'000);

  ASSERT_TRUE(holder.RunSync("COMMIT").ok());
  EXPECT_TRUE(victim->Execute("BEGIN").ok());
  EXPECT_TRUE(victim->Execute("COMMIT").ok());
}

TEST(TimeoutTest, SaturatedAdmissionQueueSheds) {
  ClusterOptions o = RgBase();
  o.resgroup_max_queue = 1;  // one waiter may queue; the next arrival is shed
  Cluster cluster(o);
  auto admin = cluster.Connect();
  MakeTightGroup(admin.get());

  Actor holder(&cluster, "app");
  ASSERT_TRUE(holder.RunSync("BEGIN").ok());  // slot taken

  Actor queued(&cluster, "app");
  auto queued_f = queued.Run("BEGIN");  // fills the single queue position
  auto group = cluster.resgroups().GroupForRole("app");
  ASSERT_NE(group, nullptr);
  for (int i = 0; i < 400 && group->overload_stats().queued_now < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(group->overload_stats().queued_now, 1);

  // Queue full -> the next arrival is shed immediately, not parked.
  auto shed = cluster.Connect("app");
  int64_t t0 = MonotonicMicros();
  auto r = shed->Execute("BEGIN");
  int64_t elapsed = MonotonicMicros() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted) << r.status().ToString();
  EXPECT_LT(elapsed, 150'000);  // fail-fast, no queue wait
  EXPECT_GE(group->overload_stats().shed, 1u);

  ASSERT_TRUE(holder.RunSync("COMMIT").ok());
  EXPECT_TRUE(queued_f.get().ok());
  ASSERT_TRUE(queued.RunSync("COMMIT").ok());
  EXPECT_TRUE(shed->Execute("BEGIN").ok());
  EXPECT_TRUE(shed->Execute("COMMIT").ok());

  // The overload counters surface through the system view (satellite check).
  auto view = admin->Execute(
      "SELECT queued, queued_total, shed, admission_timeouts FROM gp_resgroup_status");
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  auto activity = admin->Execute(
      "SELECT deadline_remaining_us, retries FROM gp_stat_activity");
  EXPECT_TRUE(activity.ok()) << activity.status().ToString();
}

TEST(TimeoutTest, ShedOnSaturationFailsFastWithoutQueueing) {
  ClusterOptions o = RgBase();
  o.resgroup_shed_on_saturation = true;  // no queue at all: saturated => shed
  Cluster cluster(o);
  auto admin = cluster.Connect();
  MakeTightGroup(admin.get());

  Actor holder(&cluster, "app");
  ASSERT_TRUE(holder.RunSync("BEGIN").ok());  // slot taken

  auto victim = cluster.Connect("app");
  int64_t t0 = MonotonicMicros();
  auto r = victim->Execute("BEGIN");
  int64_t elapsed = MonotonicMicros() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted) << r.status().ToString();
  EXPECT_LT(elapsed, 150'000);  // immediate, never parked
  auto group = cluster.resgroups().GroupForRole("app");
  ASSERT_NE(group, nullptr);
  EXPECT_GE(group->overload_stats().shed, 1u);

  ASSERT_TRUE(holder.RunSync("COMMIT").ok());
  EXPECT_TRUE(victim->Execute("BEGIN").ok());
  EXPECT_TRUE(victim->Execute("COMMIT").ok());
}

// ---------------------------------------------------------------------------
// (d) Statement timeout while parked in a WAL fsync (2PC prepare).
// ---------------------------------------------------------------------------

TEST(TimeoutTest, StatementTimeoutInWalFsync) {
  ClusterOptions o = Base();
  o.fsync_cost_us = 400'000;  // every commit-path fsync parks for 400 ms
  Cluster cluster(o);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int)").ok());

  // Multi-segment write -> 2PC -> the statement parks in the prepare fsync.
  s->set_statement_timeout_us(150'000);
  int64_t t0 = MonotonicMicros();
  auto r = s->Execute(
      "INSERT INTO t VALUES (1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (7, 7), (8, 8)");
  int64_t elapsed = MonotonicMicros() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut) << r.status().ToString();
  EXPECT_GE(elapsed, 140'000);
  // Interrupted well before the 400 ms fsync would have completed: the parked
  // fsync was cut short at the deadline and the transaction aborted pre-commit.
  EXPECT_LT(elapsed, 360'000);

  // Clean abort: no ghost rows, and the same session can write afterwards.
  s->set_statement_timeout_us(0);
  auto count = s->Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0].int_val(), 0);
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 1)").ok());
  count = s->Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].int_val(), 1);
}

// ---------------------------------------------------------------------------
// Cancellation-propagation regressions.
// ---------------------------------------------------------------------------

// A receiver parked on an idle sender (no traffic at all) must wake promptly
// when the exchange is aborted — the CancelTxn path.
TEST(MotionWakeTest, IdleSenderReceiverWakesOnAbort) {
  MotionExchange ex(1, 1, 8);
  std::atomic<bool> woke{false};
  std::thread receiver([&] {
    auto r = ex.Recv(0);  // sender never sends anything
    EXPECT_FALSE(r.has_value());
    woke.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(woke.load(std::memory_order_acquire));  // genuinely parked
  int64_t t0 = MonotonicMicros();
  ex.Abort();
  receiver.join();
  EXPECT_LT(MonotonicMicros() - t0, 500'000);
}

// Same parked receiver, woken by the ambient statement deadline instead: it
// must observe the expiry within the poll-granularity contract.
TEST(MotionWakeTest, IdleSenderReceiverWakesOnStatementDeadline) {
  MotionExchange ex(1, 1, 8);
  LockOwner owner(/*gxid=*/1);
  owner.set_deadline_us(MonotonicMicros() + 150'000);
  int64_t elapsed = 0;
  std::thread receiver([&] {
    WaitContext ctx;
    ctx.owner = &owner;
    WaitContextGuard guard(ctx);
    int64_t t0 = MonotonicMicros();
    auto r = ex.Recv(0);
    elapsed = MonotonicMicros() - t0;
    EXPECT_FALSE(r.has_value());
  });
  receiver.join();
  EXPECT_GE(elapsed, 140'000);
  // Contract: within ~2x kInterruptPollUs of the deadline (plus CI headroom).
  EXPECT_LT(elapsed, 150'000 + 20 * kInterruptPollUs);
  EXPECT_TRUE(owner.cancelled());
  EXPECT_EQ(owner.cancel_reason().code(), StatusCode::kTimedOut);
}

TEST(TimeoutTest, CancelTxnWakesLockWaiter) {
  Cluster cluster(Base());
  auto admin = cluster.Connect();
  ASSERT_TRUE(admin->Execute("CREATE TABLE t (k int, v int)").ok());
  ASSERT_TRUE(admin->Execute("INSERT INTO t VALUES (1, 0)").ok());

  Actor holder(&cluster);
  ASSERT_TRUE(holder.RunSync("BEGIN").ok());
  ASSERT_TRUE(holder.RunSync("UPDATE t SET v = 1 WHERE k = 1").ok());

  Actor victim(&cluster);
  auto blocked = victim.Run("UPDATE t SET v = 2 WHERE k = 1");
  ASSERT_TRUE(StillBlocked(blocked, 100));

  // Find the waiter's gxid through gp_locks (granted = 0).
  uint64_t waiter_gxid = 0;
  for (int i = 0; i < 400 && waiter_gxid == 0; ++i) {
    auto locks = admin->Execute("SELECT gxid, granted FROM gp_locks");
    ASSERT_TRUE(locks.ok()) << locks.status().ToString();
    for (const Row& row : locks->rows) {
      if (row[1].int_val() == 0) {
        waiter_gxid = static_cast<uint64_t>(row[0].int_val());
        break;
      }
    }
    if (waiter_gxid == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(waiter_gxid, 0u);

  cluster.CancelTxn(waiter_gxid, Status::Aborted("user requested cancel"));
  ASSERT_EQ(blocked.wait_for(std::chrono::seconds(2)), std::future_status::ready)
      << "cancelled lock waiter did not wake";
  Status s = blocked.get();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted) << s.ToString();

  ASSERT_TRUE(holder.RunSync("COMMIT").ok());
  EXPECT_TRUE(victim.RunSync("UPDATE t SET v = 3 WHERE k = 1").ok());
}

// ---------------------------------------------------------------------------
// SET <timeout-guc> SQL surface.
// ---------------------------------------------------------------------------

TEST(TimeoutGucTest, SetStatementTimeoutParsesMilliseconds) {
  Cluster cluster(Base());
  auto s = cluster.Connect();
  EXPECT_TRUE(s->Execute("SET statement_timeout = 150").ok());
  EXPECT_EQ(s->statement_timeout_us(), 150'000);
  EXPECT_TRUE(s->Execute("SET lock_timeout to 75").ok());
  EXPECT_EQ(s->lock_timeout_us(), 75'000);
  EXPECT_TRUE(s->Execute("SET admission_timeout = 200").ok());
  EXPECT_EQ(s->admission_timeout_us(), 200'000);
  EXPECT_TRUE(s->Execute("SET statement_timeout = 0").ok());
  EXPECT_EQ(s->statement_timeout_us(), 0);

  // And the GUC actually bites through SQL alone.
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 0)").ok());
  Actor holder(&cluster);
  ASSERT_TRUE(holder.RunSync("BEGIN").ok());
  ASSERT_TRUE(holder.RunSync("UPDATE t SET v = 1 WHERE k = 1").ok());
  ASSERT_TRUE(s->Execute("SET statement_timeout = 150").ok());
  auto r = s->Execute("UPDATE t SET v = 2 WHERE k = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut) << r.status().ToString();
  ASSERT_TRUE(holder.RunSync("COMMIT").ok());
}

}  // namespace
}  // namespace gphtap
