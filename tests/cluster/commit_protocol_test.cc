// Commit protocol behaviour (Section 5.2 / Figure 10): participant selection,
// message and fsync counts, cross-segment atomicity, and the read-only path.
#include <gtest/gtest.h>

#include <thread>

#include "api/gphtap.h"

namespace gphtap {
namespace {

class CommitProtocolTest : public ::testing::Test {
 protected:
  void Start(bool one_phase) {
    ClusterOptions o;
    o.num_segments = 4;
    o.one_phase_commit_enabled = one_phase;
    cluster_ = std::make_unique<Cluster>(o);
    session_ = cluster_->Connect();
    ASSERT_TRUE(
        session_->Execute("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)").ok());
  }

  uint64_t TotalFsyncs() {
    uint64_t total = cluster_->coordinator_wal().fsyncs();
    for (int i = 0; i < cluster_->num_segments(); ++i) {
      total += cluster_->segment(i)->wal().fsyncs();
    }
    return total;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Session> session_;
};

TEST_F(CommitProtocolTest, SingleSegmentWriteUsesOnePhase) {
  Start(/*one_phase=*/true);
  uint64_t prepares = cluster_->net().count(MsgKind::kPrepare);
  uint64_t fsyncs = TotalFsyncs();
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (1, 1)").ok());
  EXPECT_EQ(cluster_->net().count(MsgKind::kPrepare), prepares);  // no PREPARE
  // One segment commit fsync; no coordinator commit record.
  EXPECT_EQ(TotalFsyncs(), fsyncs + 1);
  EXPECT_EQ(session_->stats().one_phase_commits, 1u);
  EXPECT_EQ(session_->stats().two_phase_commits, 0u);
}

TEST_F(CommitProtocolTest, MultiSegmentWriteUsesTwoPhase) {
  Start(/*one_phase=*/true);
  ASSERT_TRUE(session_->Execute("BEGIN").ok());
  // Spread writes across segments.
  ASSERT_TRUE(
      session_->Execute("INSERT INTO t SELECT i, i FROM generate_series(1, 40) i").ok());
  uint64_t prepares = cluster_->net().count(MsgKind::kPrepare);
  uint64_t fsyncs = TotalFsyncs();
  ASSERT_TRUE(session_->Execute("COMMIT").ok());
  uint64_t participants = cluster_->net().count(MsgKind::kPrepare) - prepares;
  EXPECT_EQ(participants, 4u);  // every segment got data
  // fsyncs: one PREPARE per participant + coordinator record + one COMMIT
  // PREPARED per participant.
  EXPECT_EQ(TotalFsyncs() - fsyncs, 2 * participants + 1);
  EXPECT_EQ(session_->stats().two_phase_commits, 1u);
}

TEST_F(CommitProtocolTest, OnePhaseDisabledAlwaysTwoPhase) {
  Start(/*one_phase=*/false);
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (1, 1)").ok());
  EXPECT_EQ(session_->stats().one_phase_commits, 0u);
  EXPECT_EQ(session_->stats().two_phase_commits, 1u);
  EXPECT_GE(cluster_->net().count(MsgKind::kPrepare), 1u);
}

TEST_F(CommitProtocolTest, ReadOnlyCommitTouchesNoWal) {
  Start(/*one_phase=*/true);
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (1, 1)").ok());
  uint64_t fsyncs = TotalFsyncs();
  ASSERT_TRUE(session_->Execute("BEGIN").ok());
  ASSERT_TRUE(session_->Execute("SELECT v FROM t WHERE k = 1").ok());
  ASSERT_TRUE(session_->Execute("COMMIT").ok());
  EXPECT_EQ(TotalFsyncs(), fsyncs);
  EXPECT_EQ(session_->stats().one_phase_commits, 1u);  // only the insert
}

// Cross-segment atomicity: a multi-segment transaction must become visible to
// other sessions all-or-nothing, never partially.
TEST_F(CommitProtocolTest, MultiSegmentCommitIsAtomicToReaders) {
  Start(/*one_phase=*/true);
  // Writer repeatedly replaces the table contents with N rows (spread over all
  // segments) in one transaction; readers must always see a multiple of N.
  constexpr int kRows = 16;
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};

  std::thread writer([&] {
    auto w = cluster_->Connect();
    for (int round = 0; round < 30; ++round) {
      w->Execute("BEGIN");
      w->Execute("INSERT INTO t SELECT i, " + std::to_string(round) +
                 " FROM generate_series(1, " + std::to_string(kRows) + ") i");
      w->Execute("COMMIT");
    }
    stop = true;
  });
  std::thread reader([&] {
    auto r = cluster_->Connect();
    while (!stop.load()) {
      auto result = r->Execute("SELECT count(*) FROM t");
      if (!result.ok()) continue;
      int64_t n = result->rows[0][0].int_val();
      if (n % kRows != 0) anomalies++;
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(anomalies.load(), 0)
      << "a reader observed a partially committed multi-segment transaction";
  auto final_count = session_->Execute("SELECT count(*) FROM t");
  EXPECT_EQ(final_count->rows[0][0].int_val(), 30 * kRows);
}

// Figure 11(b): an implicit single-segment transaction's COMMIT rides on the
// statement dispatch — zero extra commit messages.
TEST_F(CommitProtocolTest, PiggybackedOnePhaseCommitSkipsTheRoundTrip) {
  ClusterOptions o;
  o.num_segments = 4;
  o.onephase_piggyback_enabled = true;
  cluster_ = std::make_unique<Cluster>(o);
  session_ = cluster_->Connect();
  ASSERT_TRUE(
      session_->Execute("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)").ok());
  uint64_t commits_before = cluster_->net().count(MsgKind::kCommit);
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (1, 1)").ok());
  EXPECT_EQ(cluster_->net().count(MsgKind::kCommit), commits_before);
  EXPECT_EQ(session_->stats().piggybacked_commits, 1u);
  // Explicit transactions cannot piggyback (the commit decision comes later).
  ASSERT_TRUE(session_->Execute("BEGIN").ok());
  ASSERT_TRUE(session_->Execute("INSERT INTO t VALUES (2, 1)").ok());
  ASSERT_TRUE(session_->Execute("COMMIT").ok());
  EXPECT_EQ(session_->stats().piggybacked_commits, 1u);
  EXPECT_GT(cluster_->net().count(MsgKind::kCommit), commits_before);
  // Data is still there and still atomic.
  EXPECT_EQ(session_->Execute("SELECT count(*) FROM t")->rows[0][0].int_val(), 2);
}

// Figure 11(a): implicit multi-segment transactions prepare without the
// coordinator's PREPARE broadcast.
TEST_F(CommitProtocolTest, AutoPrepareSkipsPrepareBroadcast) {
  ClusterOptions o;
  o.num_segments = 4;
  o.auto_prepare_enabled = true;
  cluster_ = std::make_unique<Cluster>(o);
  session_ = cluster_->Connect();
  ASSERT_TRUE(
      session_->Execute("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)").ok());
  uint64_t prepares_before = cluster_->net().count(MsgKind::kPrepare);
  uint64_t acks_before = cluster_->net().count(MsgKind::kPrepareAck);
  // Implicit multi-segment insert: prepared without PREPARE messages.
  ASSERT_TRUE(
      session_->Execute("INSERT INTO t SELECT i, i FROM generate_series(1, 40) i").ok());
  EXPECT_EQ(cluster_->net().count(MsgKind::kPrepare), prepares_before);
  EXPECT_GT(cluster_->net().count(MsgKind::kPrepareAck), acks_before);
  EXPECT_EQ(session_->stats().auto_prepares, 1u);
  EXPECT_EQ(session_->Execute("SELECT count(*) FROM t")->rows[0][0].int_val(), 40);
}

TEST_F(CommitProtocolTest, ExplainReportsDirectDispatch) {
  Start(true);
  auto plan = session_->Execute("EXPLAIN SELECT v FROM t WHERE k = 7");
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->rows.empty());
  EXPECT_NE(plan->rows[0][0].string_val().find("direct dispatch"), std::string::npos);
  auto full = session_->Execute("EXPLAIN SELECT v FROM t");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->rows[0][0].string_val().find("direct dispatch"), std::string::npos);
}

}  // namespace
}  // namespace gphtap
