// End-to-end tests for the stats system views, queried through the normal SQL
// path: gp_stat_statements accumulates normalized fingerprints with latency +
// gang-aggregated resources, gp_stat_history snapshots the metrics registry
// on a period, gp_stat_progress reports live + finished maintenance ops, and
// gp_metrics dumps the raw registry. Includes a concurrent-sessions hammer
// (writers + view readers) sized for the TSan tier-1 subset.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "api/gphtap.h"
#include "common/clock.h"

namespace gphtap {
namespace {

ClusterOptions StatsCluster() {
  ClusterOptions o;
  o.num_segments = 3;
  return o;
}

int64_t SingleInt(const StatusOr<QueryResult>& r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok() || r->rows.empty() || r->rows[0][0].is_null()) return -1;
  return r->rows[0][0].int_val();
}

TEST(StatsViewsTest, StatStatementsAccumulatesNormalizedFingerprints) {
  Cluster cluster(StatsCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  // Same statement shape, different literals and spacing: one fingerprint.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (" + std::to_string(i) + ", " +
                           std::to_string(i * 2) + ")")
                    .ok());
  }
  ASSERT_TRUE(s->Execute("SELECT count(*) FROM t1 WHERE c1 > 3").ok());
  ASSERT_TRUE(s->Execute("select COUNT(*)  from t1 where c1 > 7").ok());

  auto r = s->Execute(
      "SELECT fingerprint, calls, rows, total_us, p95_us, errors "
      "FROM gp_stat_statements");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool saw_insert = false, saw_select = false;
  for (const Row& row : r->rows) {
    const std::string& fp = row[0].string_val();
    if (fp == "insert into t1 values($1, $2)") {
      saw_insert = true;
      EXPECT_EQ(row[1].int_val(), 10);  // calls
      EXPECT_EQ(row[2].int_val(), 10);  // one affected row per insert
      EXPECT_GT(row[3].int_val(), 0);   // total_us
      EXPECT_GE(row[4].int_val(), 0);   // p95_us
      EXPECT_EQ(row[5].int_val(), 0);   // errors
    }
    if (fp == "select count(*) from t1 where c1 > $1") {
      saw_select = true;
      EXPECT_EQ(row[1].int_val(), 2) << "case/space variants must collide";
      EXPECT_EQ(row[2].int_val(), 2);  // one result row per call
    }
  }
  EXPECT_TRUE(saw_insert) << "no insert fingerprint found";
  EXPECT_TRUE(saw_select) << "no select fingerprint found";

  // A failing statement lands in the errors column under its own fingerprint.
  ASSERT_FALSE(s->Execute("SELECT c1 / (c1 - c1) FROM t1").ok());
  r = s->Execute("SELECT errors FROM gp_stat_statements "
                 "WHERE fingerprint = 'select c1 /(c1 - c1) from t1'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u) << "failed statement must still be fingerprinted";
  EXPECT_EQ(r->rows[0][0].int_val(), 1);
}

TEST(StatsViewsTest, GangResourcesAreNonZeroAfterDistributedWork) {
  Cluster cluster(StatsCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE big (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO big VALUES (" + std::to_string(i) + ", 1)").ok());
  }
  // Distributed scans: every segment runs a slice and motions rows up.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s->Execute("SELECT c1, c2 FROM big").ok());
  }

  auto r = s->Execute(
      "SELECT calls, exec_cpu_ns, net_bytes, gang_p95_us "
      "FROM gp_stat_statements WHERE fingerprint = 'select c1, c2 from big'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].int_val(), 5);
  EXPECT_GT(r->rows[0][1].int_val(), 0) << "gang CPU must be attributed";
  EXPECT_GT(r->rows[0][2].int_val(), 0) << "motion bytes must be attributed";
  EXPECT_GE(r->rows[0][3].int_val(), 0);
}

TEST(StatsViewsTest, PreparedStatementsMapOntoTheLiteralFingerprint) {
  Cluster cluster(StatsCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (1, 10), (2, 20), (3, 30)").ok());

  // Literal form once, then PREPARE + repeated EXECUTE: all five calls must
  // accumulate under one fingerprint. The predicate targets c2 (not the
  // distribution key), so PREPARE takes the generic plan and every EXECUTE
  // reuses it — the prepared-statement analogue of a plan-cache hit.
  ASSERT_TRUE(s->Execute("SELECT c1 FROM t1 WHERE c2 = 10").ok());
  ASSERT_TRUE(s->Execute("PREPARE q AS SELECT c1 FROM t1 WHERE c2 = $1").ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(s->Execute("EXECUTE q(" + std::to_string(i * 10) + ")").ok());
  }

  auto r = s->Execute(
      "SELECT calls, plan_cache_hits FROM gp_stat_statements "
      "WHERE fingerprint = 'select c1 from t1 where c2 = $1'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u) << "EXECUTE must share the literal row";
  // 1 literal + 1 PREPARE + 3 EXECUTE = 5 calls on the shared fingerprint.
  EXPECT_EQ(r->rows[0][0].int_val(), 5);
  EXPECT_EQ(r->rows[0][1].int_val(), 3) << "every EXECUTE reuses the generic plan";
}

TEST(StatsViewsTest, StatsDisabledRecordsNothing) {
  ClusterOptions o = StatsCluster();
  o.stats_enabled = false;
  Cluster cluster(o);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int) DISTRIBUTED BY (c1)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (1)").ok());
  EXPECT_EQ(SingleInt(s->Execute("SELECT count(*) FROM gp_stat_statements")), 0);
}

TEST(StatsViewsTest, MetricsViewDumpsCountersAndGauges) {
  Cluster cluster(StatsCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int) DISTRIBUTED BY (c1)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (1)").ok());

  EXPECT_GT(SingleInt(s->Execute("SELECT count(*) FROM gp_metrics")), 0);
  EXPECT_GT(SingleInt(s->Execute(
                "SELECT count(*) FROM gp_metrics WHERE kind = 'counter'")),
            0);
  // The commit just made must be visible as a nonzero counter.
  auto r = s->Execute("SELECT value FROM gp_metrics WHERE name = 'txn.committed'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_GT(r->rows[0][0].int_val(), 0);
}

TEST(StatsViewsTest, HistoryDaemonSnapshotsOnPeriodAndDumpsCsv) {
  ClusterOptions o = StatsCluster();
  o.stats_history_period_us = 10'000;
  Cluster cluster(o);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int) DISTRIBUTED BY (c1)").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (" + std::to_string(i) + ")").ok());
  }
  // Let the daemon take a few ticks.
  const int64_t deadline = MonotonicMicros() + 2'000'000;
  while (cluster.metrics_history().ticks() < 3 && MonotonicMicros() < deadline) {
    PreciseSleepUs(5'000);
  }
  ASSERT_GE(cluster.metrics_history().ticks(), 3u) << "history daemon never ticked";

  EXPECT_GT(SingleInt(s->Execute("SELECT count(*) FROM gp_stat_history")), 0);
  // The commit counter's trajectory is queryable: some tick recorded a
  // positive delta while the inserts were running.
  EXPECT_GT(SingleInt(s->Execute(
                "SELECT count(*) FROM gp_stat_history "
                "WHERE metric = 'txn.committed' AND delta > 0")),
            0);

  std::string path = ::testing::TempDir() + "/gphtap_history.csv";
  ASSERT_TRUE(cluster.DumpHistoryCsv(path).ok());
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "tick,at_us,metric,value,delta");
  std::stringstream rest;
  rest << f.rdbuf();
  EXPECT_NE(rest.str().find("txn.committed"), std::string::npos);
}

TEST(StatsViewsTest, ManualHistoryTicksWorkWithoutDaemon) {
  Cluster cluster(StatsCluster());  // stats_history_period_us = 0: no daemon
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int) DISTRIBUTED BY (c1)").ok());
  cluster.CaptureHistoryTick();
  ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (1)").ok());
  cluster.CaptureHistoryTick();
  auto r = s->Execute(
      "SELECT tick, value, delta FROM gp_stat_history "
      "WHERE metric = 'txn.committed' AND tick = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_GT(r->rows[0][2].int_val(), 0);
}

TEST(StatsViewsTest, VacuumAndClusterReportFinishedProgress) {
  Cluster cluster(StatsCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (" + std::to_string(i) + ", 1)").ok());
  }
  ASSERT_TRUE(s->Execute("DELETE FROM t1 WHERE c1 < 10").ok());
  ASSERT_TRUE(s->Execute("VACUUM t1").ok());
  ASSERT_TRUE(s->Execute("CLUSTER t1 USING c1").ok());

  auto r = s->Execute(
      "SELECT kind, target, phase, units_done, units_total, finished "
      "FROM gp_stat_progress WHERE finished = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool saw_vacuum = false, saw_cluster = false;
  for (const Row& row : r->rows) {
    const std::string& kind = row[0].string_val();
    if (kind == "vacuum" && row[1].string_val() == "t1") {
      saw_vacuum = true;
      EXPECT_EQ(row[3].int_val(), cluster.num_segments());  // units_done
      EXPECT_EQ(row[4].int_val(), cluster.num_segments());  // units_total
      EXPECT_FALSE(row[2].string_val().empty()) << "vacuum must record a phase";
    }
    if (kind == "cluster" && row[1].string_val() == "t1") {
      saw_cluster = true;
      EXPECT_EQ(row[2].string_val(), "rewrite");
      EXPECT_EQ(row[3].int_val(), cluster.num_segments());
    }
  }
  EXPECT_TRUE(saw_vacuum) << "VACUUM left no finished progress entry";
  EXPECT_TRUE(saw_cluster) << "CLUSTER left no finished progress entry";
}

// Mid-flight progress: poll gp_stat_progress from a second session while a
// large REBALANCE TABLE runs, and require (a) at least one unfinished
// rebalance sample and (b) visibly advancing units across samples.
TEST(StatsViewsTest, RebalanceProgressAdvancesWhileRunning) {
  Cluster cluster(StatsCluster());
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE big (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
  {
    auto def = cluster.LookupTable("big");
    ASSERT_TRUE(def.ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 40'000; ++i) {
      rows.push_back(Row{Datum(i), Datum(i % 97)});
    }
    ASSERT_TRUE(s->ExecuteInsert(*def, rows).ok());
  }
  ASSERT_TRUE(cluster.AddSegments(2).ok());

  std::atomic<bool> done{false};
  std::thread mover([&] {
    auto worker = cluster.Connect();
    auto report = worker->RebalanceTable("big");
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    done.store(true);
  });

  auto observer = cluster.Connect();
  std::vector<int64_t> live_units;
  std::vector<std::string> live_phases;
  while (!done.load()) {
    auto r = observer->Execute(
        "SELECT units_done, phase FROM gp_stat_progress "
        "WHERE kind = 'rebalance' AND finished = 0");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (const Row& row : r->rows) {
      live_units.push_back(row[0].int_val());
      live_phases.push_back(row[1].string_val());
    }
  }
  mover.join();

  ASSERT_FALSE(live_units.empty()) << "never observed the rebalance mid-flight";
  // Units advanced while we watched: the max sample exceeds the min.
  EXPECT_GT(*std::max_element(live_units.begin(), live_units.end()),
            *std::min_element(live_units.begin(), live_units.end()))
      << "units_done never advanced across " << live_units.size() << " samples";

  // The finished entry retired with the full copy -> cutover -> horizon-wait
  // phase trail and a nonzero unit count.
  bool finished_seen = false;
  for (const auto& snap : cluster.progress().SnapshotAll()) {
    if (snap.op != ProgressOp::kRebalance || !snap.finished) continue;
    finished_seen = true;
    EXPECT_GT(snap.units_done, 0);
    ASSERT_GE(snap.phase_history.size(), 2u);
    EXPECT_EQ(snap.phase_history[0], "copy");
    EXPECT_EQ(snap.phase_history.back(), "horizon-wait");
  }
  EXPECT_TRUE(finished_seen);
}

TEST(StatsViewsTest, DeltaSealDaemonPublishesLiveProgress) {
  ClusterOptions o = StatsCluster();
  o.delta_store_enabled = true;
  o.delta_seal_period_us = 5'000;
  Cluster cluster(o);
  auto s = cluster.Connect();
  // The daemon thread registers its progress handle on startup; poll briefly
  // so the assertion does not race the thread's first instructions.
  const std::string q =
      "SELECT kind, phase, finished FROM gp_stat_progress "
      "WHERE kind = 'delta-seal'";
  auto r = s->Execute(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const int64_t deadline = MonotonicMicros() + 2'000'000;
  while (r->rows.empty() && MonotonicMicros() < deadline) {
    PreciseSleepUs(1'000);
    r = s->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_GE(r->rows.size(), 1u) << "seal daemon must be registered while running";
  EXPECT_EQ(r->rows[0][1].string_val(), "seal");
  EXPECT_EQ(r->rows[0][2].int_val(), 0) << "daemon-lifetime op is never finished";
}

TEST(StatsViewsTest, SlowQueryLogCarriesFingerprintAndCacheBit) {
  ClusterOptions o = StatsCluster();
  o.slow_query_threshold_us = 1;  // everything is "slow"
  Cluster cluster(o);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int) DISTRIBUTED BY (c1)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (1)").ok());
  // Identical text twice: the second run hits the plan cache (keyed on raw
  // statement text) and the slow log must record that bit.
  ASSERT_TRUE(s->Execute("SELECT c1 FROM t1 WHERE c1 = 1").ok());
  ASSERT_TRUE(s->Execute("SELECT c1 FROM t1 WHERE c1 = 1").ok());

  bool saw_fingerprint = false, saw_cache_hit = false;
  for (const SlowQueryLog::Entry& e : cluster.slow_query_log().Entries()) {
    if (e.fingerprint == "select c1 from t1 where c1 = $1") {
      saw_fingerprint = true;
      saw_cache_hit |= e.plan_cache_hit;
    }
  }
  EXPECT_TRUE(saw_fingerprint) << "slow-log entries must carry the fingerprint";
  EXPECT_TRUE(saw_cache_hit) << "the repeated shape must log a plan-cache hit";
}

// Concurrency hammer (sized for the TSan tier-1 subset): writer sessions run
// TPC-B-style transfers while reader sessions hammer all four stats views and
// the history daemon ticks — no crashes, no errors, and the statements view
// must show the write traffic when the dust settles.
TEST(StatsViewsTest, ConcurrentViewReadsUnderWriteLoad) {
  ClusterOptions o = StatsCluster();
  o.stats_history_period_us = 5'000;
  Cluster cluster(o);
  auto setup = cluster.Connect();
  ASSERT_TRUE(
      setup->Execute("CREATE TABLE accts (aid int, bal int) DISTRIBUTED BY (aid)").ok());
  for (int i = 1; i <= 32; ++i) {
    ASSERT_TRUE(
        setup->Execute("INSERT INTO accts VALUES (" + std::to_string(i) + ", 0)").ok());
  }

  const int64_t end_us = MonotonicMicros() + 1'500'000;
  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  std::atomic<uint64_t> writes{0}, reads{0}, read_errors{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto s = cluster.Connect();
      int64_t i = 0;
      while (MonotonicMicros() < end_us) {
        int64_t aid = (w * 8 + i++) % 32 + 1;
        if (s->Execute("UPDATE accts SET bal = bal + 1 WHERE aid = " +
                       std::to_string(aid))
                .ok()) {
          writes.fetch_add(1);
        }
      }
    });
  }
  const char* views[] = {"gp_stat_statements", "gp_stat_history",
                         "gp_stat_progress", "gp_metrics"};
  for (int v = 0; v < kReaders; ++v) {
    threads.emplace_back([&, v] {
      auto s = cluster.Connect();
      int64_t i = 0;
      while (MonotonicMicros() < end_us) {
        const char* view = views[(v + i++) % 4];
        auto r = s->Execute(std::string("SELECT count(*) FROM ") + view);
        reads.fetch_add(1);
        if (!r.ok()) read_errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(writes.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(read_errors.load(), 0u) << "stats views must answer under load";

  auto r = setup->Execute(
      "SELECT calls FROM gp_stat_statements "
      "WHERE fingerprint = 'update accts set bal = bal + $1 where aid = $2'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  // calls counts failed attempts too, so it can only exceed the OK count.
  EXPECT_GE(static_cast<uint64_t>(r->rows[0][0].int_val()), writes.load());
}

}  // namespace
}  // namespace gphtap
