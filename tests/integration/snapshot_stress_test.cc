// Distributed snapshot stress: concurrent readers, writers, vacuum and the
// xid-map truncation horizon all running together must never produce torn
// reads, resurrected rows, or crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/gphtap.h"
#include "common/rng.h"

namespace gphtap {
namespace {

// Writers move money between two fixed rows in one transaction; readers must
// always see the same total (the classic bank-transfer isolation check),
// while vacuum churns dead versions underneath them.
TEST(SnapshotStressTest, TransfersLookAtomicUnderVacuumChurn) {
  ClusterOptions o;
  o.num_segments = 3;
  o.gdd_period_us = 10'000;
  o.maintenance_period_us = 5'000;  // aggressive xid-map truncation
  Cluster cluster(o);
  auto setup = cluster.Connect();
  ASSERT_TRUE(setup->Execute("CREATE TABLE acct (k int, bal int) DISTRIBUTED BY (k)").ok());
  ASSERT_TRUE(setup->Execute("INSERT INTO acct VALUES (1, 500), (2, 500)").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::atomic<long> transfers{0};

  std::thread writer([&] {
    auto w = cluster.Connect();
    Rng rng(1);
    while (!stop.load()) {
      int64_t amount = rng.UniformRange(1, 50);
      w->Execute("BEGIN");
      auto s1 = w->Execute("UPDATE acct SET bal = bal - " + std::to_string(amount) +
                           " WHERE k = 1");
      auto s2 = w->Execute("UPDATE acct SET bal = bal + " + std::to_string(amount) +
                           " WHERE k = 2");
      if (s1.ok() && s2.ok()) {
        if (w->Execute("COMMIT").ok()) transfers++;
      } else {
        w->Rollback();
      }
    }
  });

  std::thread vacuumer([&] {
    auto v = cluster.Connect();
    while (!stop.load()) {
      v->Execute("VACUUM acct");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      auto rd = cluster.Connect();
      while (!stop.load()) {
        auto result = rd->Execute("SELECT sum(bal), count(*) FROM acct");
        if (!result.ok()) continue;
        const Datum& total = result->rows[0][0];
        int64_t n = result->rows[0][1].int_val();
        if (n != 2 || total.is_null() || total.int_val() != 1000) torn_reads++;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop = true;
  writer.join();
  vacuumer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn_reads.load(), 0) << "a reader saw a partially applied transfer";
  EXPECT_GT(transfers.load(), 10);
  // Final state is exact.
  auto final_total = cluster.Connect()->Execute("SELECT sum(bal) FROM acct");
  EXPECT_EQ(final_total->rows[0][0].int_val(), 1000);
}

// The truncation horizon must actually shrink the xid maps without breaking
// visibility for long-running snapshots.
TEST(SnapshotStressTest, XidMapTruncationKeepsOldSnapshotsCorrect) {
  ClusterOptions o;
  o.num_segments = 2;
  Cluster cluster(o);
  auto s = cluster.Connect();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (k int, v int)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t SELECT i, 0 FROM generate_series(1, 20) i").ok());

  // A long transaction opens a snapshot now.
  auto old_txn = cluster.Connect();
  ASSERT_TRUE(old_txn->Execute("BEGIN").ok());
  ASSERT_TRUE(old_txn->Execute("SELECT count(*) FROM t").ok());

  // Lots of churn afterwards.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(s->Execute("UPDATE t SET v = v + 1 WHERE k = " +
                           std::to_string(1 + i % 20))
                    .ok());
  }
  // The old transaction pins the horizon: churn entries (newer gxids) must
  // survive this truncation so its statements can still judge them.
  uint64_t removed_while_open = cluster.TruncateXidMaps();
  size_t map_entries_while_open = 0;
  for (int i = 0; i < cluster.num_segments(); ++i) {
    map_entries_while_open += cluster.segment(i)->dlog().size();
  }
  EXPECT_GT(map_entries_while_open, 0u)
      << "truncation advanced past a live transaction's snapshot";
  // Read committed: each statement takes a fresh snapshot, so the open
  // transaction sees the committed churn.
  auto old_view = old_txn->Execute("SELECT sum(v) FROM t");
  ASSERT_TRUE(old_view.ok());
  EXPECT_EQ(old_view->rows[0][0].int_val(), 30);
  ASSERT_TRUE(old_txn->Execute("COMMIT").ok());

  // Once the old transaction ends the horizon advances and entries vanish.
  uint64_t removed_after_close = cluster.TruncateXidMaps();
  EXPECT_GT(removed_after_close, 0u);
  size_t map_entries_after = 0;
  for (int i = 0; i < cluster.num_segments(); ++i) {
    map_entries_after += cluster.segment(i)->dlog().size();
  }
  EXPECT_LT(map_entries_after, map_entries_while_open);
  (void)removed_while_open;
  auto fresh = s->Execute("SELECT sum(v) FROM t");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows[0][0].int_val(), 30);
  // Visibility still works after truncation (clog fallback path).
  EXPECT_EQ(s->Execute("SELECT count(*) FROM t")->rows[0][0].int_val(), 20);
}

// One-phase commits must offer the same atomic appearance as two-phase ones
// while racing snapshot creation (the Section 5.2 window).
TEST(SnapshotStressTest, OnePhaseCommitWindowNeverLeaks) {
  ClusterOptions o;
  o.num_segments = 3;
  Cluster cluster(o);
  auto setup = cluster.Connect();
  ASSERT_TRUE(setup->Execute("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  // Writer: single-row inserts (1PC) with strictly increasing v.
  std::thread writer([&] {
    auto w = cluster.Connect();
    for (int i = 1; i <= 300 && !stop.load(); ++i) {
      ASSERT_TRUE(w->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                             std::to_string(i) + ")")
                      .ok());
    }
    stop = true;
  });
  // Reader: count must never decrease (commits are monotonic and atomic).
  std::thread reader([&] {
    auto r = cluster.Connect();
    int64_t last = 0;
    while (!stop.load()) {
      auto result = r->Execute("SELECT count(*) FROM t");
      if (!result.ok()) continue;
      int64_t n = result->rows[0][0].int_val();
      if (n < last) anomalies++;
      last = n;
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(anomalies.load(), 0) << "a committed 1PC insert disappeared from view";
  EXPECT_EQ(setup->Execute("SELECT count(*) FROM t")->rows[0][0].int_val(), 300);
}

}  // namespace
}  // namespace gphtap
