// Appendix B: the interconnect (network) deadlock. A join slice that consumes
// one outer tuple and then turns to the inner side can deadlock with the
// senders' bounded buffers; prefetching (materializing) the inner side first
// breaks the cycle. We reproduce the exact 4-process wait cycle of Figure 21
// on two motion exchanges with small buffers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/motion_exchange.h"

namespace gphtap {
namespace {

constexpr int kRowsPerSender = 200;
constexpr size_t kSmallBuffer = 4;

Row R(int64_t v) { return Row{Datum(v)}; }

// Sender: a redistribute motion whose data is SKEWED — the first half of the
// stream hashes to receiver 0, the second half to receiver 1. This is the
// paper's setup: p_seg1^slice1 has produced no tuple for segment 1 yet when
// its send buffer towards segment 0 fills up.
void RunSender(MotionExchange* ex, int sender_id) {
  for (int i = 0; i < kRowsPerSender; ++i) {
    int receiver = i < kRowsPerSender / 2 ? 0 : 1;
    if (!ex->Send(receiver, R(sender_id * kRowsPerSender + i))) break;
  }
  ex->CloseSender();
}

// Join slice, SAFE order: drain inner fully (materialize), then outer.
void JoinWithPrefetch(MotionExchange* outer, MotionExchange* inner, int receiver,
                      std::atomic<long>* joined) {
  long inner_count = 0;
  while (inner->Recv(receiver)) ++inner_count;
  while (outer->Recv(receiver)) *joined += inner_count > 0 ? 1 : 0;
}

// Join slice, DEADLOCK-PRONE order: one outer tuple first, then the inner.
void JoinWithoutPrefetch(MotionExchange* outer, MotionExchange* inner, int receiver,
                         std::atomic<long>* joined) {
  auto first_outer = outer->Recv(receiver);  // p^slice3 waits for its first outer
  if (!first_outer.has_value()) return;
  long inner_count = 0;
  while (inner->Recv(receiver)) ++inner_count;  // ... then turns to the inner side
  *joined += 1;
  while (outer->Recv(receiver)) *joined += 1;
  (void)inner_count;
}

TEST(NetworkDeadlockTest, PrefetchInnerCompletes) {
  MotionExchange outer(2, 2, kSmallBuffer), inner(2, 2, kSmallBuffer);
  std::atomic<long> joined{0};
  std::vector<std::thread> threads;
  threads.emplace_back(RunSender, &outer, 0);
  threads.emplace_back(RunSender, &outer, 1);
  threads.emplace_back(RunSender, &inner, 0);
  threads.emplace_back(RunSender, &inner, 1);
  threads.emplace_back(JoinWithPrefetch, &outer, &inner, 0, &joined);
  threads.emplace_back(JoinWithPrefetch, &outer, &inner, 1, &joined);
  for (auto& t : threads) t.join();
  EXPECT_EQ(joined.load(), 2 * kRowsPerSender);
}

TEST(NetworkDeadlockTest, NoPrefetchDeadlocksAndAbortRecovers) {
  MotionExchange outer(2, 2, kSmallBuffer), inner(2, 2, kSmallBuffer);
  std::atomic<long> joined{0};
  std::vector<std::thread> threads;
  threads.emplace_back(RunSender, &outer, 0);
  threads.emplace_back(RunSender, &outer, 1);
  threads.emplace_back(RunSender, &inner, 0);
  threads.emplace_back(RunSender, &inner, 1);
  threads.emplace_back(JoinWithoutPrefetch, &outer, &inner, 0, &joined);
  threads.emplace_back(JoinWithoutPrefetch, &outer, &inner, 1, &joined);

  // The cycle from Figure 21 forms: receiver 0 waits for inner EOS while the
  // inner senders are stuck on receiver 1's full buffer; receiver 1 waits for
  // its first outer tuple while the outer senders are stuck on receiver 0's
  // full buffer. Nothing completes.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  long progress = joined.load();
  EXPECT_EQ(progress, 0) << "expected a network deadlock, but the join progressed";

  // Recovery (what query cancel does): abort the exchanges.
  outer.Abort();
  inner.Abort();
  for (auto& t : threads) t.join();
  EXPECT_LT(joined.load(), 2 * kRowsPerSender);
}

TEST(NetworkDeadlockTest, LargeBuffersHideTheProblem) {
  // With buffers big enough for the whole stream, even the bad order works —
  // which is why the bug is insidious in practice.
  MotionExchange outer(2, 2, 4096), inner(2, 2, 4096);
  std::atomic<long> joined{0};
  std::vector<std::thread> threads;
  threads.emplace_back(RunSender, &outer, 0);
  threads.emplace_back(RunSender, &outer, 1);
  threads.emplace_back(RunSender, &inner, 0);
  threads.emplace_back(RunSender, &inner, 1);
  threads.emplace_back(JoinWithoutPrefetch, &outer, &inner, 0, &joined);
  threads.emplace_back(JoinWithoutPrefetch, &outer, &inner, 1, &joined);
  for (auto& t : threads) t.join();
  EXPECT_EQ(joined.load(), 2 * kRowsPerSender);
}

}  // namespace
}  // namespace gphtap
