// The paper's global-deadlock case studies (Figures 6, 7, 8) reproduced live:
// concurrent sessions on real threads, blocking on the segment lock tables,
// with the GDD daemon deciding who dies.
#include <gtest/gtest.h>

#include "catalog/datum.h"
#include "integration/actor.h"

namespace gphtap {
namespace {

class GddCasesTest : public ::testing::Test {
 protected:
  void StartCluster(bool gdd_enabled) {
    ClusterOptions options;
    options.num_segments = 3;
    options.gdd_enabled = gdd_enabled;
    options.gdd_period_us = 10'000;
    options.locks.local_deadlock_timeout_us = 200'000;
    cluster_ = std::make_unique<Cluster>(options);
  }

  /// Smallest positive int whose hash routes to `segment` and is not in `used`.
  int64_t KeyOnSegment(int segment, std::vector<int64_t>* used) {
    for (int64_t v = 1;; ++v) {
      if (std::find(used->begin(), used->end(), v) != used->end()) continue;
      if (cluster_->SegmentForHash(Datum(v).Hash()) == segment) {
        used->push_back(v);
        return v;
      }
    }
  }

  // Creates t1(c1,c2) with one row per requested key.
  void Setup(const std::vector<int64_t>& keys) {
    auto s = cluster_->Connect();
    ASSERT_TRUE(s->Execute("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
    ASSERT_TRUE(s->Execute("CREATE TABLE t2 (c1 int, c2 int) DISTRIBUTED BY (c1)").ok());
    for (int64_t k : keys) {
      ASSERT_TRUE(s->Execute("INSERT INTO t1 VALUES (" + std::to_string(k) + ", " +
                             std::to_string(k) + ")")
                      .ok());
    }
  }

  std::unique_ptr<Cluster> cluster_;
};

// Figure 6: A updates on seg0 then seg1; B updates on seg1 then seg0.
// A global deadlock the local detectors cannot see; the GDD must break it by
// killing the youngest transaction (B).
TEST_F(GddCasesTest, Figure6GlobalDeadlockBrokenByGdd) {
  StartCluster(/*gdd_enabled=*/true);
  std::vector<int64_t> used;
  int64_t k0 = KeyOnSegment(0, &used);
  int64_t k1 = KeyOnSegment(1, &used);
  Setup({k0, k1});

  Actor a(cluster_.get()), b(cluster_.get());
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(b.RunSync("BEGIN").ok());

  // (1) A locks the tuple on segment 0.
  ASSERT_TRUE(
      a.RunSync("UPDATE t1 SET c2 = 10 WHERE c1 = " + std::to_string(k0)).ok());
  // (2) B locks the tuple on segment 1.
  ASSERT_TRUE(
      b.RunSync("UPDATE t1 SET c2 = 20 WHERE c1 = " + std::to_string(k1)).ok());
  // (3) B waits for A on segment 0.
  auto b_blocked = b.Run("UPDATE t1 SET c2 = 30 WHERE c1 = " + std::to_string(k0));
  ASSERT_TRUE(StillBlocked(b_blocked)) << "B should wait on A";
  // (4) A waits for B on segment 1 -> global deadlock.
  auto a_blocked = a.Run("UPDATE t1 SET c2 = 40 WHERE c1 = " + std::to_string(k1));

  // The GDD must kill exactly one of them — the youngest (B began later).
  Status b_status = b_blocked.get();
  Status a_status = a_blocked.get();
  EXPECT_EQ(b_status.code(), StatusCode::kDeadlockDetected) << b_status.ToString();
  EXPECT_TRUE(a_status.ok()) << a_status.ToString();

  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  ASSERT_TRUE(b.RunSync("ROLLBACK").ok());

  // A's updates won; B's all rolled back.
  auto check = cluster_->Connect();
  auto r = check->Execute("SELECT c2 FROM t1 WHERE c1 = " + std::to_string(k0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].int_val(), 10);
  r = check->Execute("SELECT c2 FROM t1 WHERE c1 = " + std::to_string(k1));
  EXPECT_EQ(r->rows[0][0].int_val(), 40);
  EXPECT_GE(cluster_->gdd()->stats().victims_killed, 1u);
}

// The same schedule with GDD *disabled* cannot even be constructed: the
// pre-GPDB6 locking takes table-level ExclusiveLock, so B's first UPDATE
// blocks on the whole relation and no tuple-level cross-segment waits arise.
TEST_F(GddCasesTest, Figure6WithGddDisabledWritersSerialize) {
  StartCluster(/*gdd_enabled=*/false);
  std::vector<int64_t> used;
  int64_t k0 = KeyOnSegment(0, &used);
  int64_t k1 = KeyOnSegment(1, &used);
  Setup({k0, k1});

  Actor a(cluster_.get()), b(cluster_.get());
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(b.RunSync("BEGIN").ok());
  ASSERT_TRUE(
      a.RunSync("UPDATE t1 SET c2 = 10 WHERE c1 = " + std::to_string(k0)).ok());
  // B's update of a DIFFERENT tuple blocks at the relation lock.
  auto b_blocked = b.Run("UPDATE t1 SET c2 = 20 WHERE c1 = " + std::to_string(k1));
  EXPECT_TRUE(StillBlocked(b_blocked)) << "GPDB5 mode must serialize writers";
  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  EXPECT_TRUE(b_blocked.get().ok());
  ASSERT_TRUE(b.RunSync("COMMIT").ok());
}

// Figure 7: four transactions, the coordinator participates via LOCK TABLE.
// Cycle: A -> B (seg1), B -> D (seg0), D -> C (coordinator), C -> A (seg0).
TEST_F(GddCasesTest, Figure7CoordinatorDeadlockBrokenByGdd) {
  StartCluster(/*gdd_enabled=*/true);
  std::vector<int64_t> used;
  int64_t k2 = KeyOnSegment(0, &used);  // paper's c1=2 (segment 0)
  int64_t k1 = KeyOnSegment(1, &used);  // paper's c1=1 (segment 1)
  int64_t k3 = KeyOnSegment(0, &used);  // paper's c1=3 (segment 0)
  Setup({k2, k1, k3});

  Actor a(cluster_.get()), b(cluster_.get()), c(cluster_.get()), d(cluster_.get());
  for (Actor* t : {&a, &b, &c, &d}) ASSERT_TRUE(t->RunSync("BEGIN").ok());

  // (1) A locks tuple k2 on seg0.
  ASSERT_TRUE(a.RunSync("UPDATE t1 SET c2 = 10 WHERE c1 = " + std::to_string(k2)).ok());
  // (2) B locks tuple k1 on seg1.
  ASSERT_TRUE(b.RunSync("UPDATE t1 SET c2 = 20 WHERE c1 = " + std::to_string(k1)).ok());
  // (3) C locks relation t2 everywhere.
  ASSERT_TRUE(c.RunSync("LOCK t2 IN ACCESS EXCLUSIVE MODE").ok());
  // (4) C waits for A's tuple on seg0.
  auto c_blocked = c.Run("UPDATE t1 SET c2 = 30 WHERE c1 = " + std::to_string(k2));
  ASSERT_TRUE(StillBlocked(c_blocked));
  // (5) A waits for B's tuple on seg1.
  auto a_blocked = a.Run("UPDATE t1 SET c2 = 10 WHERE c1 = " + std::to_string(k1));
  ASSERT_TRUE(StillBlocked(a_blocked));
  // (6) D locks tuple k3 on seg0.
  ASSERT_TRUE(d.RunSync("UPDATE t1 SET c2 = 50 WHERE c1 = " + std::to_string(k3)).ok());
  // (7) D waits for C's relation lock on the coordinator.
  auto d_blocked = d.Run("LOCK t2 IN ACCESS EXCLUSIVE MODE");
  ASSERT_TRUE(StillBlocked(d_blocked));
  // (8) B waits for D's tuple on seg0 -> the cycle closes.
  auto b_blocked = b.Run("UPDATE t1 SET c2 = 40 WHERE c1 = " + std::to_string(k3));

  // Youngest on the cycle is D.
  Status d_status = d_blocked.get();
  EXPECT_EQ(d_status.code(), StatusCode::kDeadlockDetected) << d_status.ToString();
  ASSERT_TRUE(d.RunSync("ROLLBACK").ok());

  // With D gone: B gets k3, then A gets k1 after B commits, etc. Unwind.
  Status b_status = b_blocked.get();
  EXPECT_TRUE(b_status.ok()) << b_status.ToString();
  ASSERT_TRUE(b.RunSync("COMMIT").ok());
  Status a_status = a_blocked.get();
  EXPECT_TRUE(a_status.ok()) << a_status.ToString();
  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  Status c_status = c_blocked.get();
  EXPECT_TRUE(c_status.ok()) << c_status.ToString();
  ASSERT_TRUE(c.RunSync("COMMIT").ok());

  EXPECT_EQ(cluster_->gdd()->stats().victims_killed, 1u);
}

// Figure 8: the dotted-edge case. B blocks behind A (seg0) and C (seg1) while
// holding tuple locks; A then blocks on B's TUPLE lock (a dotted edge). The
// GDD must NOT kill anyone: C can finish and everything unwinds.
TEST_F(GddCasesTest, Figure8DottedEdgesNoVictim) {
  StartCluster(/*gdd_enabled=*/true);
  std::vector<int64_t> used;
  int64_t k3 = KeyOnSegment(0, &used);  // paper's c1=3 on segment 0
  int64_t k1 = KeyOnSegment(1, &used);  // paper's c1=1 on segment 1
  Setup({k3, k1});

  Actor a(cluster_.get()), b(cluster_.get()), c(cluster_.get());
  for (Actor* t : {&a, &b, &c}) ASSERT_TRUE(t->RunSync("BEGIN").ok());

  // (1) A locks tuple k3 on seg0 (the paper matches it via c2 = 3).
  ASSERT_TRUE(a.RunSync("UPDATE t1 SET c2 = 10 WHERE c2 = " + std::to_string(k3)).ok());
  // (2) C locks tuple k1 on seg1.
  ASSERT_TRUE(c.RunSync("UPDATE t1 SET c2 = 30 WHERE c1 = " + std::to_string(k1)).ok());
  // (3) B tries both tuples: waits for A on seg0 and C on seg1, holding tuple
  //     locks on both segments.
  auto b_blocked = b.Run("UPDATE t1 SET c2 = 20 WHERE c1 = " + std::to_string(k1) +
                         " OR c2 = " + std::to_string(k3));
  ASSERT_TRUE(StillBlocked(b_blocked));
  // (4) A tries tuple k1 on seg1: blocked by B's tuple lock (dotted edge).
  auto a_blocked = a.Run("UPDATE t1 SET c2 = 10 WHERE c1 = " + std::to_string(k1));
  ASSERT_TRUE(StillBlocked(a_blocked, 150));

  // Run several GDD periods: nobody may be killed.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(cluster_->gdd()->stats().victims_killed, 0u)
      << "GDD killed a victim in a non-deadlock scenario";
  EXPECT_TRUE(StillBlocked(a_blocked, 10));
  EXPECT_TRUE(StillBlocked(b_blocked, 10));

  // Unwind: cancel A (user Ctrl-C) -> its statement aborts and its locks are
  // released, so B can take seg0; commit C -> B can take seg1.
  cluster_->CancelTxn(a.session()->current_gxid(), Status::Aborted("user cancel"));
  Status a_status = a_blocked.get();
  EXPECT_TRUE(a_status.IsAbortLike()) << a_status.ToString();
  ASSERT_TRUE(a.RunSync("ROLLBACK").ok());
  ASSERT_TRUE(c.RunSync("COMMIT").ok());
  Status b_status = b_blocked.get();
  EXPECT_TRUE(b_status.ok()) << b_status.ToString();
  ASSERT_TRUE(b.RunSync("COMMIT").ok());
  EXPECT_EQ(cluster_->gdd()->stats().victims_killed, 0u);
}

// Figure 19 (Appendix A): mixed solid and dotted edges across four
// transactions — NOT a deadlock. B holds a tuple it updated earlier (solid
// edge from D), waits for A and C on two segments while holding tuple locks
// (dotted edge from A). The greedy reduction must unwind it all.
TEST_F(GddCasesTest, Figure19MixedEdgesNoVictim) {
  StartCluster(/*gdd_enabled=*/true);
  std::vector<int64_t> used;
  int64_t k3 = KeyOnSegment(0, &used);  // paper's c2=3 tuple, lives on segment 0
  int64_t k2 = KeyOnSegment(1, &used);  // paper's c1=2 on segment 1
  int64_t k4 = KeyOnSegment(1, &used);  // paper's c1=4 on segment 1
  Setup({k3, k2, k4});

  Actor a(cluster_.get()), b(cluster_.get()), c(cluster_.get()), d(cluster_.get());
  for (Actor* t : {&a, &b, &c, &d}) ASSERT_TRUE(t->RunSync("BEGIN").ok());

  // (1) A locks the c2=k3 tuple on segment 0 (non-key predicate: full scan).
  ASSERT_TRUE(a.RunSync("UPDATE t1 SET c2 = 10 WHERE c2 = " + std::to_string(k3)).ok());
  // (2) C locks tuple k2 on segment 1.
  ASSERT_TRUE(c.RunSync("UPDATE t1 SET c2 = 30 WHERE c1 = " + std::to_string(k2)).ok());
  // (3) B locks tuple k4 on segment 1.
  ASSERT_TRUE(b.RunSync("UPDATE t1 SET c2 = 20 WHERE c1 = " + std::to_string(k4)).ok());
  // (4) B tries the A-held tuple (seg0) and the C-held tuple (seg1) at once.
  auto b_blocked = b.Run("UPDATE t1 SET c2 = 21 WHERE c2 = " + std::to_string(k3) +
                         " OR c1 = " + std::to_string(k2));
  ASSERT_TRUE(StillBlocked(b_blocked));
  // (5) A tries tuple k2: blocked by B's TUPLE lock on segment 1 (dotted edge).
  auto a_blocked = a.Run("UPDATE t1 SET c2 = 10 WHERE c1 = " + std::to_string(k2));
  ASSERT_TRUE(StillBlocked(a_blocked, 150));
  // (6) D tries tuple k4: blocked by B's transaction lock (solid edge).
  auto d_blocked = d.Run("UPDATE t1 SET c2 = 50 WHERE c1 = " + std::to_string(k4));
  ASSERT_TRUE(StillBlocked(d_blocked, 150));

  // Several GDD periods: no victim may be chosen.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(cluster_->gdd()->stats().victims_killed, 0u)
      << "GDD killed a victim in the paper's non-deadlock Figure 19";

  // Unwind: cancel A (it sits between B and C), then commit C; B finishes,
  // then D gets the k4 tuple once B commits.
  cluster_->CancelTxn(a.session()->current_gxid(), Status::Aborted("user cancel"));
  EXPECT_TRUE(a_blocked.get().IsAbortLike());
  ASSERT_TRUE(a.RunSync("ROLLBACK").ok());
  ASSERT_TRUE(c.RunSync("COMMIT").ok());
  Status b_status = b_blocked.get();
  EXPECT_TRUE(b_status.ok()) << b_status.ToString();
  ASSERT_TRUE(b.RunSync("COMMIT").ok());
  Status d_status = d_blocked.get();
  EXPECT_TRUE(d_status.ok()) << d_status.ToString();
  ASSERT_TRUE(d.RunSync("COMMIT").ok());
  EXPECT_EQ(cluster_->gdd()->stats().victims_killed, 0u);
}

// Concurrent updates of DIFFERENT tuples on the same table must proceed in
// parallel under GDD (the whole point of downgrading the lock level).
TEST_F(GddCasesTest, ConcurrentUpdatesDifferentTuplesDoNotBlock) {
  StartCluster(/*gdd_enabled=*/true);
  std::vector<int64_t> used;
  int64_t k0 = KeyOnSegment(0, &used);
  int64_t k1 = KeyOnSegment(1, &used);
  Setup({k0, k1});

  Actor a(cluster_.get()), b(cluster_.get());
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(b.RunSync("BEGIN").ok());
  ASSERT_TRUE(a.RunSync("UPDATE t1 SET c2 = 1 WHERE c1 = " + std::to_string(k0)).ok());
  // B updates a different tuple: must NOT block.
  auto b_fut = b.Run("UPDATE t1 SET c2 = 2 WHERE c1 = " + std::to_string(k1));
  EXPECT_FALSE(StillBlocked(b_fut, 300));
  EXPECT_TRUE(b_fut.get().ok());
  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  ASSERT_TRUE(b.RunSync("COMMIT").ok());
}

// Writers of the SAME tuple serialize and both changes apply (second waits for
// the first, then follows the version chain).
TEST_F(GddCasesTest, SameTupleWritersSerializeAndBothApply) {
  StartCluster(/*gdd_enabled=*/true);
  std::vector<int64_t> used;
  int64_t k = KeyOnSegment(0, &used);
  Setup({k});

  Actor a(cluster_.get()), b(cluster_.get());
  ASSERT_TRUE(a.RunSync("BEGIN").ok());
  ASSERT_TRUE(
      a.RunSync("UPDATE t1 SET c2 = c2 + 100 WHERE c1 = " + std::to_string(k)).ok());
  auto b_fut = b.Run("UPDATE t1 SET c2 = c2 + 10 WHERE c1 = " + std::to_string(k));
  ASSERT_TRUE(StillBlocked(b_fut));
  ASSERT_TRUE(a.RunSync("COMMIT").ok());
  EXPECT_TRUE(b_fut.get().ok());

  auto check = cluster_->Connect();
  auto r = check->Execute("SELECT c2 FROM t1 WHERE c1 = " + std::to_string(k));
  ASSERT_TRUE(r.ok());
  // Initial value = k; both increments applied.
  EXPECT_EQ(r->rows[0][0].int_val(), k + 110);
}

}  // namespace
}  // namespace gphtap
