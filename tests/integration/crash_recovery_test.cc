// Crash matrix (tentpole): every commit-path fault point, under both commit
// protocols, must leave the database all-or-nothing after the crashed segment
// recovers. Exercises FaultInjector, Segment::Crash/Recover, in-doubt
// resolution from the coordinator's distributed commit record, and the
// coordinator's COMMIT PREPARED retry loop.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/gphtap.h"
#include "common/clock.h"
#include "common/fault_injector.h"

namespace gphtap {
namespace {

ClusterOptions BaseOptions() {
  ClusterOptions o;
  o.num_segments = 3;
  o.crash_recovery_enabled = true;
  o.commit_retry_initial_backoff_us = 200;
  o.commit_retry_max_backoff_us = 5'000;
  o.commit_retry_deadline_us = 5'000'000;
  return o;
}

QueryResult MustExec(Session* s, const std::string& sql) {
  auto r = s->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? std::move(r).value() : QueryResult{};
}

int64_t CountRows(Session* s) {
  auto r = s->Execute("SELECT count(*) FROM t");
  if (!r.ok()) {
    ADD_FAILURE() << "count failed: " << r.status().ToString();
    return -1;
  }
  return r.value().rows[0][0].int_val();
}

void RecoverAllDown(Cluster* cluster) {
  for (int i = 0; i < cluster->num_segments(); ++i) {
    if (!cluster->segment(i)->up()) {
      ASSERT_TRUE(cluster->RecoverSegment(i).ok()) << "segment " << i;
    }
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void Start(ClusterOptions o = BaseOptions()) {
    cluster_ = std::make_unique<Cluster>(o);
    session_ = cluster_->Connect();
    MustExec(session_.get(), "CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)");
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Session> session_;
};

// --- Abort-side fault points: the transaction must be lost entirely. ---

TEST_F(CrashRecoveryTest, CrashBeforePrepareAbortsTransaction) {
  Start();
  cluster_->faults().ArmOneShot(fault_points::kCrashBeforePrepare, /*scope=*/1);
  MustExec(session_.get(), "BEGIN");
  MustExec(session_.get(),
           "INSERT INTO t SELECT i, i FROM generate_series(1, 30) i");
  auto commit = session_->Execute("COMMIT");
  EXPECT_FALSE(commit.ok());
  EXPECT_FALSE(cluster_->segment(1)->up());
  ASSERT_TRUE(cluster_->RecoverSegment(1).ok());
  EXPECT_EQ(CountRows(session_.get()), 0);
  // The cluster is fully serviceable again.
  MustExec(session_.get(), "INSERT INTO t SELECT i, i FROM generate_series(1, 30) i");
  EXPECT_EQ(CountRows(session_.get()), 30);
}

TEST_F(CrashRecoveryTest, CrashBeforePrepareAckAbortsTransaction) {
  Start();
  cluster_->faults().ArmOneShot(fault_points::kCrashBeforePrepareAck, /*scope=*/1);
  MustExec(session_.get(), "BEGIN");
  MustExec(session_.get(),
           "INSERT INTO t SELECT i, i FROM generate_series(1, 30) i");
  auto commit = session_->Execute("COMMIT");
  EXPECT_FALSE(commit.ok());
  // The segment crashed with a durable PREPARE; recovery must resolve it as
  // aborted because the coordinator never wrote its commit record.
  ASSERT_TRUE(cluster_->RecoverSegment(1).ok());
  EXPECT_EQ(CountRows(session_.get()), 0);
}

// --- Retry-side fault points: the commit record exists, so the coordinator
// --- retries COMMIT PREPARED until the segment comes back; no data is lost.

TEST_F(CrashRecoveryTest, CrashAfterPrepareCommitsAfterRecovery) {
  Start();
  cluster_->faults().ArmOneShot(fault_points::kCrashAfterPrepare, /*scope=*/1);
  MustExec(session_.get(), "BEGIN");
  MustExec(session_.get(),
           "INSERT INTO t SELECT i, i FROM generate_series(1, 30) i");
  Gxid gxid = session_->current_gxid();
  std::atomic<bool> committed{false};
  Status commit_status;
  std::thread committer([&] {
    auto r = session_->Execute("COMMIT");
    commit_status = r.status();
    committed.store(true);
  });
  // Wait for the injected crash, then bring the segment back while the
  // coordinator is retrying.
  while (cluster_->segment(1)->up()) PreciseSleepUs(200);
  ASSERT_TRUE(cluster_->RecoverSegment(1).ok());
  committer.join();
  EXPECT_TRUE(commit_status.ok()) << commit_status.ToString();
  EXPECT_TRUE(cluster_->HasDistributedCommitRecord(gxid));
  EXPECT_GT(session_->stats().commit_retries, 0u);
  EXPECT_EQ(CountRows(session_.get()), 30);
}

TEST_F(CrashRecoveryTest, CrashBeforeCommitPreparedAckIsIdempotent) {
  Start();
  cluster_->faults().ArmOneShot(fault_points::kCrashBeforeCommitPreparedAck,
                                /*scope=*/1);
  MustExec(session_.get(), "BEGIN");
  MustExec(session_.get(),
           "INSERT INTO t SELECT i, i FROM generate_series(1, 30) i");
  Status commit_status;
  std::thread committer([&] { commit_status = session_->Execute("COMMIT").status(); });
  while (cluster_->segment(1)->up()) PreciseSleepUs(200);
  ASSERT_TRUE(cluster_->RecoverSegment(1).ok());
  committer.join();
  // COMMIT PREPARED was durable before the crash; the retry must be a no-op.
  EXPECT_TRUE(commit_status.ok()) << commit_status.ToString();
  EXPECT_EQ(CountRows(session_.get()), 30);
}

// --- 1PC fault points. ---

TEST_F(CrashRecoveryTest, OnePhaseCrashBeforeCommitLosesTransaction) {
  Start();
  cluster_->faults().ArmOneShot(fault_points::kCrashBeforeCommit);
  Status st;
  std::thread committer(
      [&] { st = session_->Execute("INSERT INTO t VALUES (1, 1)").status(); });
  auto any_down = [&] {
    for (int i = 0; i < cluster_->num_segments(); ++i) {
      if (!cluster_->segment(i)->up()) return true;
    }
    return false;
  };
  while (!any_down()) PreciseSleepUs(200);
  RecoverAllDown(cluster_.get());
  committer.join();
  // The COMMIT never became durable: recovery aborted the transaction and the
  // coordinator's retry learns it cannot be replayed.
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(CountRows(session_.get()), 0);
}

TEST_F(CrashRecoveryTest, OnePhaseCrashBeforeCommitAckRetriesToSuccess) {
  Start();
  cluster_->faults().ArmOneShot(fault_points::kCrashBeforeCommitAck);
  Status st;
  std::thread committer(
      [&] { st = session_->Execute("INSERT INTO t VALUES (1, 1)").status(); });
  auto any_down = [&] {
    for (int i = 0; i < cluster_->num_segments(); ++i) {
      if (!cluster_->segment(i)->up()) return true;
    }
    return false;
  };
  while (!any_down()) PreciseSleepUs(200);
  RecoverAllDown(cluster_.get());
  committer.join();
  // The single-phase COMMIT was durable; the resent COMMIT is a no-op.
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(CountRows(session_.get()), 1);
}

// --- The full matrix: every fault point under both protocols must preserve
// --- all-or-nothing visibility, whatever the commit outcome.

TEST_F(CrashRecoveryTest, CrashMatrixAllOrNothing) {
  const char* points[] = {
      fault_points::kCrashBeforePrepare,
      fault_points::kCrashBeforePrepareAck,
      fault_points::kCrashAfterPrepare,
      fault_points::kCrashBeforeCommitPreparedAck,
      fault_points::kCrashBeforeCommit,
      fault_points::kCrashBeforeCommitAck,
  };
  for (const char* point : points) {
    for (bool two_phase : {true, false}) {
      SCOPED_TRACE(std::string(point) + (two_phase ? " / 2PC" : " / 1PC"));
      Start();
      cluster_->faults().ArmOneShot(point);
      const int64_t expected_on_commit = two_phase ? 30 : 1;
      Status st;
      std::atomic<bool> done{false};
      std::thread committer([&] {
        if (two_phase) {
          st = session_->Execute("BEGIN").status();
          if (st.ok()) {
            st = session_->Execute(
                         "INSERT INTO t SELECT i, i FROM generate_series(1, 30) i")
                     .status();
            if (st.ok()) {
              st = session_->Execute("COMMIT").status();
            } else {
              session_->Rollback();
            }
          }
        } else {
          st = session_->Execute("INSERT INTO t VALUES (1, 1)").status();
        }
        done.store(true);
      });
      // Recover any crashed segment so retrying commits can finish. Stop once
      // the transaction resolved: some (point, protocol) pairs never fire.
      while (true) {
        bool recovered = false;
        for (int i = 0; i < cluster_->num_segments(); ++i) {
          if (!cluster_->segment(i)->up()) {
            ASSERT_TRUE(cluster_->RecoverSegment(i).ok());
            recovered = true;
          }
        }
        if (recovered || done.load()) break;
        PreciseSleepUs(200);
      }
      committer.join();
      RecoverAllDown(cluster_.get());
      int64_t count = CountRows(session_.get());
      if (st.ok()) {
        EXPECT_EQ(count, expected_on_commit);
      } else {
        EXPECT_EQ(count, 0);
      }
      session_.reset();
      cluster_.reset();
    }
  }
}

// --- Crash interactions beyond the commit path. ---

TEST_F(CrashRecoveryTest, CommittedDataSurvivesCrash) {
  Start();
  MustExec(session_.get(), "INSERT INTO t SELECT i, i FROM generate_series(1, 30) i");
  Gxid gxid = kInvalidGxid;
  {
    MustExec(session_.get(), "BEGIN");
    MustExec(session_.get(), "INSERT INTO t SELECT i, i FROM generate_series(31, 60) i");
    gxid = session_->current_gxid();
    MustExec(session_.get(), "COMMIT");
  }
  EXPECT_TRUE(cluster_->HasDistributedCommitRecord(gxid));
  ASSERT_TRUE(cluster_->CrashSegment(1).ok());
  // Queries against a down segment fail with a retryable error.
  auto r = session_->Execute("SELECT count(*) FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable) << r.status().ToString();
  ASSERT_TRUE(cluster_->RecoverSegment(1).ok());
  EXPECT_EQ(CountRows(session_.get()), 60);
}

TEST_F(CrashRecoveryTest, CrashCancelsLockWaiters) {
  ClusterOptions o = BaseOptions();
  o.num_segments = 1;  // the contended row is then certainly on segment 0
  Start(o);
  MustExec(session_.get(), "INSERT INTO t VALUES (1, 0)");
  MustExec(session_.get(), "BEGIN");
  MustExec(session_.get(), "UPDATE t SET v = 1 WHERE k = 1");

  auto blocked = cluster_->Connect();
  Status blocked_status;
  std::atomic<bool> started{false};
  std::thread waiter([&] {
    started.store(true);
    blocked_status = blocked->Execute("UPDATE t SET v = 2 WHERE k = 1").status();
  });
  while (!started.load()) PreciseSleepUs(100);
  // Wait until the update is actually parked in a lock wait on the segment.
  auto waiting = [&] {
    for (const auto& g : cluster_->CollectWaitGraphs()) {
      if (!g.edges.empty()) return true;
    }
    return false;
  };
  while (!waiting()) PreciseSleepUs(500);
  ASSERT_TRUE(cluster_->CrashSegment(0).ok());
  waiter.join();
  EXPECT_FALSE(blocked_status.ok());

  ASSERT_TRUE(cluster_->RecoverSegment(0).ok());
  // The crash wiped the first session's uncommitted update; its commit fails.
  EXPECT_FALSE(session_->Execute("COMMIT").ok());
  auto v = MustExec(session_.get(), "SELECT v FROM t WHERE k = 1");
  ASSERT_EQ(v.rows.size(), 1u);
  EXPECT_EQ(v.rows[0][0].int_val(), 0);
}

// A crash+recovery landing *between* statements of an explicit transaction
// aborts that transaction's local writes on the recovered segment — but the
// coordinator doesn't hear about it. A later statement of the same transaction
// touching that segment again must fail rather than silently open a fresh
// local transaction there: otherwise PREPARE/COMMIT would see a healthy
// participant and commit the transaction with its earlier statements' effects
// missing (a torn, half-applied transaction).
TEST_F(CrashRecoveryTest, MidTxnCrashRecoveryRefusesToReviveTransaction) {
  Start();
  MustExec(session_.get(), "INSERT INTO t SELECT i, 0 FROM generate_series(1, 30) i");

  MustExec(session_.get(), "BEGIN");
  MustExec(session_.get(), "UPDATE t SET v = v + 1 WHERE k = 1");
  // Find the segment the update actually wrote to.
  Gxid gxid = session_->current_gxid();
  int target = -1;
  for (int i = 0; i < cluster_->num_segments(); ++i) {
    if (cluster_->segment(i)->txns().HasWritten(gxid)) target = i;
  }
  ASSERT_GE(target, 0);
  ASSERT_TRUE(cluster_->CrashSegment(target).ok());
  ASSERT_TRUE(cluster_->RecoverSegment(target).ok());

  // Recovery aborted the in-progress local transaction; re-touching the same
  // segment must fail instead of handing the transaction a fresh local xid.
  auto second = session_->Execute("UPDATE t SET v = v + 100 WHERE k = 1");
  EXPECT_FALSE(second.ok()) << "statement revived a crash-aborted transaction";
  // The failed block rolls back; COMMIT just closes it (PostgreSQL semantics).
  session_->Execute("COMMIT");

  // All-or-nothing: neither update half-applied.
  auto v = MustExec(session_.get(), "SELECT v FROM t WHERE k = 1");
  ASSERT_EQ(v.rows.size(), 1u);
  EXPECT_EQ(v.rows[0][0].int_val(), 0);
}

TEST_F(CrashRecoveryTest, RecoverRequiresCrashAndChangeLog) {
  Start();
  // Recovering an up segment is rejected.
  EXPECT_FALSE(cluster_->RecoverSegment(0).ok());
  // Without crash_recovery_enabled (or mirrors), crash is one-way.
  ClusterOptions o;
  o.num_segments = 2;
  Cluster bare(o);
  ASSERT_TRUE(bare.CrashSegment(0).ok());
  EXPECT_EQ(bare.RecoverSegment(0).code(), StatusCode::kNotSupported);
}

TEST_F(CrashRecoveryTest, CrashIsIdempotentAndBoundsChecked) {
  Start();
  EXPECT_FALSE(cluster_->CrashSegment(-1).ok());
  EXPECT_FALSE(cluster_->CrashSegment(99).ok());
  ASSERT_TRUE(cluster_->CrashSegment(2).ok());
  ASSERT_TRUE(cluster_->CrashSegment(2).ok());  // already down: no-op
  ASSERT_TRUE(cluster_->RecoverSegment(2).ok());
  EXPECT_TRUE(cluster_->segment(2)->up());
}

}  // namespace
}  // namespace gphtap
