// Liveness property: under a chaotic workload engineered to deadlock
// constantly (multi-statement transactions updating a tiny key space in random
// orders), the GDD must keep the system making progress — every transaction
// either commits or aborts in bounded time, no client hangs, and the database
// stays consistent.
#include <gtest/gtest.h>

#include "api/gphtap.h"
#include "workload/driver.h"

namespace gphtap {
namespace {

class GddLivenessTest : public ::testing::TestWithParam<int> {};

TEST_P(GddLivenessTest, ChaoticCrossSegmentUpdatesAlwaysTerminate) {
  ClusterOptions o;
  o.num_segments = 3;
  o.gdd_period_us = 5'000;
  Cluster cluster(o);
  auto setup = cluster.Connect();
  ASSERT_TRUE(setup->Execute("CREATE TABLE hot (k int, v int) DISTRIBUTED BY (k)").ok());
  // A tiny table: every transaction collides with someone.
  constexpr int kKeys = 6;
  ASSERT_TRUE(setup->Execute("INSERT INTO hot SELECT i, 0 FROM generate_series(1, " +
                             std::to_string(kKeys) + ") i")
                  .ok());

  DriverOptions opts;
  opts.num_clients = 8;
  opts.duration_ms = 1200;
  opts.seed = static_cast<uint64_t>(GetParam());
  DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
    // Update 2-3 random keys in random order inside one transaction: the
    // classic recipe for cross-segment deadlocks (Figure 6 at scale).
    GPHTAP_RETURN_IF_ERROR(s->Execute("BEGIN").status());
    int updates = 2 + static_cast<int>(rng.Uniform(2));
    for (int i = 0; i < updates; ++i) {
      int64_t k = rng.UniformRange(1, kKeys);
      Status st = s->Execute("UPDATE hot SET v = v + 1 WHERE k = " + std::to_string(k))
                      .status();
      if (!st.ok()) {
        s->Rollback();
        return st;
      }
    }
    return s->Execute("COMMIT").status();
  });

  // Progress: plenty of commits, and deadlocks did occur and were broken.
  EXPECT_GT(r.committed, 50u) << r.Summary();
  EXPECT_GT(cluster.gdd()->stats().victims_killed, 0u)
      << "chaos workload produced no deadlocks — the test is too tame";
  // The run returning at all proves no client hung; the driver would still be
  // blocked otherwise. Consistency: sum(v) == total successful updates is not
  // tracked per-txn here, but every row must exist and be non-negative.
  auto check = cluster.Connect();
  auto rows = check->Execute("SELECT count(*), min(v) FROM hot");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].int_val(), kKeys);
  EXPECT_GE(rows->rows[0][1].int_val(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GddLivenessTest, ::testing::Values(1, 2, 3));

// The same chaos with GDD disabled cannot deadlock at all (GPDB5 serializes
// writers) — slower, but still always terminating and consistent.
TEST(GddLivenessTest, Gpdb5ModeSerializesButTerminates) {
  ClusterOptions o;
  o.num_segments = 3;
  o.gdd_enabled = false;
  Cluster cluster(o);
  auto setup = cluster.Connect();
  ASSERT_TRUE(setup->Execute("CREATE TABLE hot (k int, v int) DISTRIBUTED BY (k)").ok());
  ASSERT_TRUE(setup->Execute("INSERT INTO hot SELECT i, 0 FROM generate_series(1, 6) i")
                  .ok());
  DriverOptions opts;
  opts.num_clients = 6;
  opts.duration_ms = 600;
  DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
    GPHTAP_RETURN_IF_ERROR(s->Execute("BEGIN").status());
    for (int i = 0; i < 2; ++i) {
      Status st = s->Execute("UPDATE hot SET v = v + 1 WHERE k = " +
                             std::to_string(rng.UniformRange(1, 6)))
                      .status();
      if (!st.ok()) {
        s->Rollback();
        return st;
      }
    }
    return s->Execute("COMMIT").status();
  });
  EXPECT_GT(r.committed, 10u);
  EXPECT_EQ(r.aborted, 0u);  // no deadlock aborts: writers serialized
}

// Total-update conservation: sum(v) must equal the number of committed
// single-update transactions even while deadlock victims retry around them.
TEST(GddLivenessTest, NoLostUpdatesUnderDeadlockChurn) {
  ClusterOptions o;
  o.num_segments = 3;
  o.gdd_period_us = 5'000;
  Cluster cluster(o);
  auto setup = cluster.Connect();
  ASSERT_TRUE(setup->Execute("CREATE TABLE hot (k int, v int) DISTRIBUTED BY (k)").ok());
  ASSERT_TRUE(
      setup->Execute("INSERT INTO hot SELECT i, 0 FROM generate_series(1, 4) i").ok());

  std::atomic<long> committed_updates{0};
  DriverOptions opts;
  opts.num_clients = 6;
  opts.duration_ms = 1000;
  RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
    GPHTAP_RETURN_IF_ERROR(s->Execute("BEGIN").status());
    int n = 2;
    for (int i = 0; i < n; ++i) {
      Status st = s->Execute("UPDATE hot SET v = v + 1 WHERE k = " +
                             std::to_string(rng.UniformRange(1, 4)))
                      .status();
      if (!st.ok()) {
        s->Rollback();
        return st;
      }
    }
    Status c = s->Execute("COMMIT").status();
    if (c.ok()) committed_updates += n;
    return c;
  });

  auto sum = cluster.Connect()->Execute("SELECT sum(v) FROM hot");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->rows[0][0].int_val(), committed_updates.load())
      << "updates lost or duplicated across deadlock aborts";
}

}  // namespace
}  // namespace gphtap
