// Mirror failover: FTS detects a dead primary over the simulated interconnect
// and promotes its mirror; sessions see clean retryable errors during the
// outage and identical data afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "api/gphtap.h"
#include "common/clock.h"
#include "common/fault_injector.h"
#include "workload/driver.h"
#include "workload/tpcb.h"

namespace gphtap {
namespace {

ClusterOptions MirroredOptions() {
  ClusterOptions o;
  o.num_segments = 3;
  o.mirrors_enabled = true;
  o.crash_recovery_enabled = true;
  o.commit_retry_initial_backoff_us = 200;
  o.commit_retry_max_backoff_us = 5'000;
  return o;
}

QueryResult MustExec(Session* s, const std::string& sql) {
  auto r = s->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? std::move(r).value() : QueryResult{};
}

// Polls Health() until `pred` holds or ~`timeout_ms` passes.
template <typename Pred>
bool WaitForHealth(Cluster* cluster, const Pred& pred, int64_t timeout_ms = 5000) {
  for (int64_t waited = 0; waited < timeout_ms * 1000; waited += 1000) {
    if (pred(cluster->Health())) return true;
    PreciseSleepUs(1000);
  }
  return pred(cluster->Health());
}

TEST(FailoverTest, FtsPromotesMirrorUnderTpcb) {
  ClusterOptions o = MirroredOptions();
  o.fts_enabled = true;
  o.fts_period_us = 5'000;
  o.fts_misses_before_failover = 2;
  Cluster cluster(o);
  TpcbConfig tpcb;
  tpcb.accounts_per_branch = 400;
  ASSERT_TRUE(LoadTpcb(&cluster, tpcb).ok());

  DriverOptions d;
  d.num_clients = 4;
  d.duration_ms = 2'500;
  DriverResult result;
  std::thread load([&] {
    result = RunWorkload(&cluster, d,
                         [&tpcb](Session* s, Rng& rng) {
                           return RunTpcbTransaction(s, rng, tpcb);
                         });
  });

  PreciseSleepUs(500'000);  // let the workload get going
  ASSERT_TRUE(cluster.CrashSegment(1).ok());
  // FTS must notice within misses_before_failover probe rounds and promote.
  bool promoted = WaitForHealth(&cluster, [](const ClusterHealth& h) {
    return h.segments[1].up && h.segments[1].mirror_promoted;
  });
  load.join();
  EXPECT_TRUE(promoted);
  ClusterHealth health = cluster.Health();
  EXPECT_GE(health.fts.failovers, 1u);
  EXPECT_GT(health.fts.probes, 0u);

  // The outage surfaced as retryable errors, not as wrong results or hangs.
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.retryable, 0u);
  Status invariant = CheckTpcbInvariant(&cluster);
  EXPECT_TRUE(invariant.ok()) << invariant.ToString();

  // The promoted cluster keeps serving transactions.
  auto session = cluster.Connect();
  Rng rng(7);
  EXPECT_TRUE(RunTpcbTransaction(session.get(), rng, tpcb).ok());
}

TEST(FailoverTest, PromotedMirrorServesIdenticalData) {
  Cluster cluster(MirroredOptions());
  auto session = cluster.Connect();
  MustExec(session.get(), "CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)");
  MustExec(session.get(), "INSERT INTO t SELECT i, i * 10 FROM generate_series(1, 90) i");
  MustExec(session.get(), "UPDATE t SET v = 0 WHERE k % 7 = 0");
  MustExec(session.get(), "DELETE FROM t WHERE k % 11 = 0");
  const std::string probe = "SELECT k, v FROM t ORDER BY k";
  std::string before = MustExec(session.get(), probe).ToString();

  ASSERT_TRUE(cluster.CatchUpMirrors().ok());
  ASSERT_TRUE(cluster.FailoverToMirror(1).ok());
  EXPECT_TRUE(cluster.segment(1)->up());
  EXPECT_TRUE(cluster.mirror(1)->promoted());

  std::string after = MustExec(session.get(), probe).ToString();
  EXPECT_EQ(before, after);
  // A consumed mirror cannot be promoted twice.
  EXPECT_EQ(cluster.FailoverToMirror(1).code(), StatusCode::kNotSupported);
  // The rebuilt segment accepts new writes.
  MustExec(session.get(), "INSERT INTO t VALUES (1000, 1)");
}

TEST(FailoverTest, FtsDetectsProbeTimeout) {
  ClusterOptions o = MirroredOptions();
  o.fts_enabled = true;
  o.fts_period_us = 3'000;
  o.fts_misses_before_failover = 2;
  Cluster cluster(o);
  auto session = cluster.Connect();
  MustExec(session.get(), "CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)");
  MustExec(session.get(), "INSERT INTO t SELECT i, i FROM generate_series(1, 30) i");
  ASSERT_TRUE(cluster.CatchUpMirrors().ok());

  // The segment process is healthy but its probe responses time out — FTS must
  // treat it as dead and promote the mirror.
  cluster.faults().ArmAlways(fault_points::kFtsProbeTimeout, /*scope=*/2);
  bool promoted = WaitForHealth(&cluster, [](const ClusterHealth& h) {
    return h.segments[2].mirror_promoted && h.segments[2].up;
  });
  cluster.faults().Disarm(fault_points::kFtsProbeTimeout);
  EXPECT_TRUE(promoted);
  EXPECT_GE(cluster.Health().fts.failovers, 1u);
  EXPECT_EQ(MustExec(session.get(), "SELECT count(*) FROM t").rows[0][0].int_val(), 30);
}

TEST(FailoverTest, MirrorStallShowsLagInHealth) {
  Cluster cluster(MirroredOptions());
  auto session = cluster.Connect();
  MustExec(session.get(), "CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)");
  cluster.faults().ArmAlways(fault_points::kMirrorReplayStall, /*scope=*/1);
  MustExec(session.get(), "INSERT INTO t SELECT i, i FROM generate_series(1, 60) i");

  ClusterHealth health = cluster.Health();
  const SegmentHealthInfo& seg1 = health.segments[1];
  EXPECT_TRUE(seg1.has_mirror);
  EXPECT_TRUE(seg1.mirror_health.ok()) << seg1.mirror_health.ToString();
  EXPECT_LT(seg1.mirror_applied, seg1.change_log_size);

  cluster.faults().Disarm(fault_points::kMirrorReplayStall);
  ASSERT_TRUE(cluster.CatchUpMirrors().ok());
  Status consistent = cluster.VerifyMirrorsConsistent();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

TEST(FailoverTest, FailoverWithoutMirrorIsRejected) {
  ClusterOptions o;
  o.num_segments = 2;
  o.crash_recovery_enabled = true;
  Cluster cluster(o);
  EXPECT_EQ(cluster.FailoverToMirror(0).code(), StatusCode::kNotSupported);
  EXPECT_FALSE(cluster.FailoverToMirror(-1).ok());
  EXPECT_FALSE(cluster.FailoverToMirror(9).ok());
}

}  // namespace
}  // namespace gphtap
