// The mixed-workload runner used by the HTAP figures, and the interference
// shape it must reproduce: OLTP load slows OLAP on GPDB6 but not on GPDB5.
#include <gtest/gtest.h>

#include "workload/htap.h"

namespace gphtap {
namespace {

ChBenchConfig SmallCh() {
  ChBenchConfig c;
  c.warehouses = 2;
  c.districts_per_warehouse = 4;
  c.customers_per_district = 20;
  c.items = 200;
  c.initial_orders_per_district = 10;
  return c;
}

TEST(HtapRunnerTest, BothClassesMakeProgress) {
  ClusterOptions o;
  o.num_segments = 2;
  Cluster cluster(o);
  HtapConfig config;
  config.chbench = SmallCh();
  ASSERT_TRUE(LoadChBench(&cluster, config.chbench).ok());
  config.olap_clients = 2;
  config.oltp_clients = 4;
  config.duration_ms = 600;
  HtapResult r = RunHtapWorkload(&cluster, config);
  EXPECT_GT(r.olap.committed, 5u);
  EXPECT_GT(r.oltp.committed, 10u);
  EXPECT_GT(r.OlapQph(), 0);
  EXPECT_GT(r.OltpQpm(), 0);
}

TEST(HtapRunnerTest, ZeroClientPoolsAreAllowed) {
  ClusterOptions o;
  o.num_segments = 2;
  Cluster cluster(o);
  HtapConfig config;
  config.chbench = SmallCh();
  ASSERT_TRUE(LoadChBench(&cluster, config.chbench).ok());
  config.olap_clients = 2;
  config.oltp_clients = 0;
  config.duration_ms = 300;
  HtapResult r = RunHtapWorkload(&cluster, config);
  EXPECT_GT(r.olap.committed, 0u);
  EXPECT_EQ(r.oltp.committed, 0u);
}

// The Figure 16/17 mechanism in miniature: with simulated CPU and a saturated
// default group, adding OLTP clients must cost the OLAP side throughput on
// GPDB6, while GPDB5's serialized OLTP barely registers.
TEST(HtapRunnerTest, OltpLoadInterferesOnGpdb6NotGpdb5) {
  auto run = [&](bool gdd, int oltp_clients) {
    ClusterOptions o;
    o.num_segments = 2;
    o.gdd_enabled = gdd;
    o.one_phase_commit_enabled = gdd;
    o.exec_cpu_ns_per_row = 20'000;
    o.total_cores = 4;  // small machine: interference bites fast
    Cluster cluster(o);
    HtapConfig config;
    config.chbench = SmallCh();
    EXPECT_TRUE(LoadChBench(&cluster, config.chbench).ok());
    config.olap_clients = 3;
    config.oltp_clients = oltp_clients;
    config.duration_ms = 900;
    return RunHtapWorkload(&cluster, config);
  };

  HtapResult gpdb6_idle = run(true, 0);
  HtapResult gpdb6_busy = run(true, 12);
  HtapResult gpdb5_busy = run(false, 12);

  // GPDB6's OLTP side does real damage...
  EXPECT_LT(gpdb6_busy.OlapQph(), gpdb6_idle.OlapQph() * 0.8)
      << "idle=" << gpdb6_idle.OlapQph() << " busy=" << gpdb6_busy.OlapQph();
  // ... because it pushes far more transactions than GPDB5's serialized mode.
  EXPECT_GT(gpdb6_busy.OltpQpm(), gpdb5_busy.OltpQpm() * 2);
}

}  // namespace
}  // namespace gphtap
