// Test helper: a session driven on its own thread, so scenarios can interleave
// blocking statements across concurrent transactions.
#ifndef GPHTAP_TESTS_INTEGRATION_ACTOR_H_
#define GPHTAP_TESTS_INTEGRATION_ACTOR_H_

#include <future>
#include <memory>
#include <string>
#include <thread>

#include "api/gphtap.h"
#include "common/bounded_queue.h"

namespace gphtap {

class Actor {
 public:
  explicit Actor(Cluster* cluster, const std::string& role = "")
      : session_(cluster->Connect(role)), queue_(64) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~Actor() {
    queue_.Close();
    if (thread_.joinable()) thread_.join();
  }

  /// Enqueues a statement; the future resolves when it finishes (possibly after
  /// blocking on locks).
  std::future<Status> Run(std::string sql) {
    auto task = std::make_shared<Task>();
    task->sql = std::move(sql);
    std::future<Status> f = task->done.get_future();
    queue_.Push(task);
    return f;
  }

  /// Runs and waits; convenience for non-blocking statements.
  Status RunSync(std::string sql) { return Run(std::move(sql)).get(); }

  Session* session() { return session_.get(); }

 private:
  struct Task {
    std::string sql;
    std::promise<Status> done;
  };

  void Loop() {
    while (auto task = queue_.Pop()) {
      auto result = session_->Execute((*task)->sql);
      (*task)->done.set_value(result.ok() ? Status::OK() : result.status());
    }
  }

  std::unique_ptr<Session> session_;
  BoundedQueue<std::shared_ptr<Task>> queue_;
  std::thread thread_;
};

/// True if the future is still pending after `ms` milliseconds (i.e. the
/// statement is blocked on a lock).
inline bool StillBlocked(std::future<Status>& f, int ms = 100) {
  return f.wait_for(std::chrono::milliseconds(ms)) != std::future_status::ready;
}

}  // namespace gphtap

#endif  // GPHTAP_TESTS_INTEGRATION_ACTOR_H_
