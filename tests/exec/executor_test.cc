// Unit tests for the push-based executor: operators driven through ExecuteNode
// and full plans through ExecutePlan on a real cluster.
#include "exec/executor.h"

#include <gtest/gtest.h>

#include "api/gphtap.h"

namespace gphtap {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    ClusterOptions o;
    o.num_segments = 2;
    cluster_ = std::make_unique<Cluster>(o);
    session_ = cluster_->Connect();
    EXPECT_TRUE(
        session_->Execute("CREATE TABLE t (k int, v int) DISTRIBUTED BY (k)").ok());
    EXPECT_TRUE(
        session_->Execute("INSERT INTO t SELECT i, i * 10 FROM generate_series(1, 20) i")
            .ok());
  }

  // Runs a plan whose leaves live on all segments, gathering to this thread.
  StatusOr<std::vector<Row>> Run(PlanPtr root) {
    QueryPlan plan;
    plan.root = std::move(root);
    for (int i = 0; i < cluster_->num_segments(); ++i) plan.gang.push_back(i);
    Gxid gxid;
    auto owner = cluster_->dtm().BeginTxn(&gxid);
    DistributedSnapshot snap = cluster_->dtm().TakeSnapshot();
    std::vector<Row> rows;
    Status s = ExecutePlan(cluster_.get(), plan, gxid, owner, snap, nullptr, nullptr,
                           [&](Row&& row) -> Status {
                             rows.push_back(std::move(row));
                             return Status::OK();
                           });
    cluster_->dtm().MarkAborted(gxid);
    cluster_->coordinator_locks().ReleaseAll(*owner);
    for (int i = 0; i < cluster_->num_segments(); ++i) {
      cluster_->segment(i)->locks().ReleaseAll(*owner);
    }
    if (!s.ok()) return s;
    return rows;
  }

  TableId TableIdOf(const char* name) { return cluster_->LookupTable(name)->id; }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Session> session_;
};

TEST_F(ExecutorTest, GatheredSeqScan) {
  auto rows = Run(MakeMotion(MotionKind::kGather, MakeSeqScan(TableIdOf("t"), 2), 1000));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);
}

TEST_F(ExecutorTest, ScanFilterPushdown) {
  ExprPtr filter =
      Expr::Binary(BinOp::kGt, Expr::Column(0), Expr::Const(Datum(int64_t{15})));
  auto rows =
      Run(MakeMotion(MotionKind::kGather, MakeSeqScan(TableIdOf("t"), 2, filter), 1001));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
}

TEST_F(ExecutorTest, ProjectComputesExpressions) {
  auto project = std::make_unique<PlanNode>();
  project->kind = PlanKind::kProject;
  project->exprs = {Expr::Binary(BinOp::kAdd, Expr::Column(0), Expr::Column(1))};
  project->output_arity = 1;
  project->children.push_back(MakeSeqScan(TableIdOf("t"), 2));
  auto rows = Run(MakeMotion(MotionKind::kGather, std::move(project), 1002));
  ASSERT_TRUE(rows.ok());
  int64_t sum = 0;
  for (const Row& r : *rows) sum += r[0].int_val();
  // sum(k + 10k) = 11 * sum(1..20) = 11 * 210.
  EXPECT_EQ(sum, 11 * 210);
}

TEST_F(ExecutorTest, RedistributeThenGatherPreservesRows) {
  PlanPtr redist = MakeMotion(MotionKind::kRedistribute,
                              MakeSeqScan(TableIdOf("t"), 2), 1003, {1});
  auto rows = Run(MakeMotion(MotionKind::kGather, std::move(redist), 1004));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);
}

TEST_F(ExecutorTest, BroadcastDuplicatesPerReceiver) {
  PlanPtr bcast =
      MakeMotion(MotionKind::kBroadcast, MakeSeqScan(TableIdOf("t"), 2), 1005);
  auto rows = Run(MakeMotion(MotionKind::kGather, std::move(bcast), 1006));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 40u);  // every row reaches both segments
}

TEST_F(ExecutorTest, PartialFinalAggPipeline) {
  auto partial = std::make_unique<PlanNode>();
  partial->kind = PlanKind::kHashAgg;
  partial->agg_phase = AggPhase::kPartial;
  partial->aggs = {AggSpec{AggFunc::kCountStar, nullptr},
                   AggSpec{AggFunc::kSum, Expr::Column(1)},
                   AggSpec{AggFunc::kAvg, Expr::Column(1)}};
  partial->output_arity = 4;  // count, sum, avg(sum,count)
  partial->children.push_back(MakeSeqScan(TableIdOf("t"), 2));

  auto final_agg = std::make_unique<PlanNode>();
  final_agg->kind = PlanKind::kHashAgg;
  final_agg->agg_phase = AggPhase::kFinal;
  final_agg->aggs = partial->aggs;
  final_agg->output_arity = 3;
  final_agg->children.push_back(
      MakeMotion(MotionKind::kGather, std::move(partial), 1007));

  auto rows = Run(std::move(final_agg));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].int_val(), 20);          // count
  EXPECT_EQ((*rows)[0][1].int_val(), 2100);        // sum(v)
  EXPECT_DOUBLE_EQ((*rows)[0][2].double_val(), 105.0);  // avg(v)
}

TEST_F(ExecutorTest, EmptyInputGlobalAggregateProducesOneRow) {
  EXPECT_TRUE(session_->Execute("CREATE TABLE empty_t (k int, v int)").ok());
  auto partial = std::make_unique<PlanNode>();
  partial->kind = PlanKind::kHashAgg;
  partial->agg_phase = AggPhase::kPartial;
  partial->aggs = {AggSpec{AggFunc::kCountStar, nullptr}};
  partial->output_arity = 1;
  partial->children.push_back(MakeSeqScan(TableIdOf("empty_t"), 2));
  auto final_agg = std::make_unique<PlanNode>();
  final_agg->kind = PlanKind::kHashAgg;
  final_agg->agg_phase = AggPhase::kFinal;
  final_agg->aggs = partial->aggs;
  final_agg->output_arity = 1;
  final_agg->children.push_back(
      MakeMotion(MotionKind::kGather, std::move(partial), 1008));
  auto rows = Run(std::move(final_agg));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].int_val(), 0);
}

TEST_F(ExecutorTest, SortAndLimitStopProducersEarly) {
  auto sort = std::make_unique<PlanNode>();
  sort->kind = PlanKind::kSort;
  sort->sort_keys = {SortKey{0, false}};
  sort->output_arity = 2;
  sort->children.push_back(
      MakeMotion(MotionKind::kGather, MakeSeqScan(TableIdOf("t"), 2), 1009));
  auto limit = std::make_unique<PlanNode>();
  limit->kind = PlanKind::kLimit;
  limit->limit = 3;
  limit->output_arity = 2;
  limit->children.push_back(std::move(sort));
  auto rows = Run(std::move(limit));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0].int_val(), 20);
  EXPECT_EQ((*rows)[2][0].int_val(), 18);
}

TEST_F(ExecutorTest, GenerateSeriesAndValuesNodes) {
  auto series = std::make_unique<PlanNode>();
  series->kind = PlanKind::kGenerateSeries;
  series->series_start = 5;
  series->series_end = 9;
  series->output_arity = 1;
  auto rows = Run(MakeMotion(MotionKind::kGather, std::move(series), 1010));
  ASSERT_TRUE(rows.ok());
  // Each gang member produces the series: 5 values x 2 segments.
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(ExecutorTest, CancellationAbortsQuery) {
  Gxid gxid;
  auto owner = cluster_->dtm().BeginTxn(&gxid);
  DistributedSnapshot snap = cluster_->dtm().TakeSnapshot();
  QueryPlan plan;
  plan.root = MakeMotion(MotionKind::kGather, MakeSeqScan(TableIdOf("t"), 2), 1011);
  for (int i = 0; i < cluster_->num_segments(); ++i) plan.gang.push_back(i);
  owner->Cancel(Status::Aborted("user cancel"));
  Status s = ExecutePlan(cluster_.get(), plan, gxid, owner, snap, nullptr, nullptr,
                         [&](Row&&) -> Status { return Status::OK(); });
  EXPECT_TRUE(s.IsAbortLike()) << s.ToString();
  cluster_->dtm().MarkAborted(gxid);
}

TEST_F(ExecutorTest, MemoryAccountEnforcedBySort) {
  // A sort through a 0-byte memory account must be cancelled, not crash.
  VmemTracker tiny(0);
  auto group = std::make_shared<GroupMemory>("g", 0, 0, 1);
  QueryMemoryAccount account(&tiny, group);
  Gxid gxid;
  auto owner = cluster_->dtm().BeginTxn(&gxid);
  DistributedSnapshot snap = cluster_->dtm().TakeSnapshot();
  QueryPlan plan;
  auto sort = std::make_unique<PlanNode>();
  sort->kind = PlanKind::kSort;
  sort->sort_keys = {SortKey{0, true}};
  sort->output_arity = 2;
  sort->children.push_back(
      MakeMotion(MotionKind::kGather, MakeSeqScan(TableIdOf("t"), 2), 1012));
  plan.root = std::move(sort);
  for (int i = 0; i < cluster_->num_segments(); ++i) plan.gang.push_back(i);
  Status s = ExecutePlan(cluster_.get(), plan, gxid, owner, snap, nullptr, &account,
                         [&](Row&&) -> Status { return Status::OK(); });
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  cluster_->dtm().MarkAborted(gxid);
}

}  // namespace
}  // namespace gphtap
