// Figure 17: OLTP throughput (queries per minute) under concurrent OLAP load.
// Paper shape: GPDB6 loses ~3x OLTP QPM when 20 OLAP clients run alongside;
// GPDB5 shows no difference because its QPM ceiling is the relation lock, not
// system resources.
#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

ChBenchConfig BenchCh() {
  ChBenchConfig c;
  c.warehouses = 8;
  c.districts_per_warehouse = 10;
  c.customers_per_district = 100;
  c.items = 2000;
  c.initial_orders_per_district = 100;
  return c;
}

void RunHtapPoint(::benchmark::State& state, const std::string& series, bool gpdb6) {
  int oltp_clients = static_cast<int>(state.range(0));
  int olap_clients = static_cast<int>(state.range(1));
  for (auto _ : state) {
    ClusterOptions options = gpdb6 ? Gpdb6Options() : Gpdb5Options();
    options.exec_cpu_ns_per_row = 6000;
    options.total_cores = 32;
    Cluster cluster(options);
    HtapConfig config;
    config.chbench = BenchCh();
    Status load = LoadChBench(&cluster, config.chbench);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    config.olap_clients = olap_clients;
    config.oltp_clients = oltp_clients;
    config.duration_ms = PointMs() * 2;
    HtapResult r = RunHtapWorkload(&cluster, config);
    state.counters["oltp_qpm"] = r.OltpQpm();
    state.counters["olap_qph"] = r.OlapQph();
    state.counters["oltp_p95_ms"] =
        static_cast<double>(r.oltp.latency_us.Percentile(95)) / 1000.0;
    JsonFields mix = {{"olap_clients", static_cast<double>(olap_clients)},
                      {"oltp_clients", static_cast<double>(oltp_clients)},
                      {"olap_qph", r.OlapQph()},
                      {"oltp_qpm", r.OltpQpm()}};
    ReportPoint(state, series + "/oltp", oltp_clients, r.oltp, &cluster, mix);
    RecordPoint(series + "/olap", oltp_clients, [&] {
      JsonFields fields;
      AddDriverFields(r.olap, &fields);
      for (const auto& f : mix) fields.push_back(f);
      return fields;
    }());
  }
}

void RegisterAll() {
  for (bool gpdb6 : {true, false}) {
    std::string series = gpdb6 ? "Fig17/OltpQpm/GPDB6" : "Fig17/OltpQpm/GPDB5";
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(), [series, gpdb6](::benchmark::State& state) {
          RunHtapPoint(state, series, gpdb6);
        });
    for (int64_t oltp : Points({10, 25, 50, 100})) {
      b->Args({oltp, 0});
      b->Args({oltp, 20});
    }
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "fig17_oltp_htap",
                                  gphtap::bench::RegisterAll);
}
