// Figure 16: OLAP throughput (queries per hour) under concurrent OLTP load.
// Paper shape: on GPDB6, adding 100 OLTP clients costs the OLAP side >2x QPH;
// on GPDB5 there is no visible difference because its OLTP throughput is too
// small to pressure anything.
#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

ChBenchConfig BenchCh() {
  ChBenchConfig c;
  c.warehouses = 8;
  c.districts_per_warehouse = 10;
  c.customers_per_district = 100;
  c.items = 2000;
  c.initial_orders_per_district = 100;
  return c;
}

void RunHtapPoint(::benchmark::State& state, const std::string& series, bool gpdb6) {
  int olap_clients = static_cast<int>(state.range(0));
  int oltp_clients = static_cast<int>(state.range(1));
  for (auto _ : state) {
    ClusterOptions options = gpdb6 ? Gpdb6Options() : Gpdb5Options();
    options.exec_cpu_ns_per_row = 6000;  // OLAP scans consume simulated CPU
    options.total_cores = 32;
    Cluster cluster(options);
    HtapConfig config;
    config.chbench = BenchCh();
    Status load = LoadChBench(&cluster, config.chbench);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    config.olap_clients = olap_clients;
    config.oltp_clients = oltp_clients;
    config.duration_ms = PointMs() * 2;
    HtapResult r = RunHtapWorkload(&cluster, config);
    state.counters["olap_qph"] = r.OlapQph();
    state.counters["oltp_qpm"] = r.OltpQpm();
    state.counters["olap_p95_ms"] =
        static_cast<double>(r.olap.latency_us.Percentile(95)) / 1000.0;
    JsonFields mix = {{"olap_clients", static_cast<double>(olap_clients)},
                      {"oltp_clients", static_cast<double>(oltp_clients)},
                      {"olap_qph", r.OlapQph()},
                      {"oltp_qpm", r.OltpQpm()}};
    ReportPoint(state, series + "/olap", olap_clients, r.olap, &cluster, mix);
    RecordPoint(series + "/oltp", olap_clients, [&] {
      JsonFields fields;
      AddDriverFields(r.oltp, &fields);
      for (const auto& f : mix) fields.push_back(f);
      return fields;
    }());
  }
}

// Vectorized-vs-row ablation: pure OLAP (no OLTP pressure) over AO-column fact
// tables, real executor CPU only (exec_cpu_ns_per_row=0 — the simulated
// per-row charge would otherwise drown the batch engine's gains).
void RunVecAblationPoint(::benchmark::State& state, const std::string& series,
                         bool vectorized) {
  int olap_clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ClusterOptions options = Gpdb6Options();
    options.exec_cpu_ns_per_row = 0;
    options.vectorized_execution_enabled = vectorized;
    Cluster cluster(options);
    HtapConfig config;
    config.chbench = BenchCh();
    config.chbench.column_storage = true;
    Status load = LoadChBench(&cluster, config.chbench);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    config.olap_clients = olap_clients;
    config.oltp_clients = 0;
    config.duration_ms = PointMs() * 2;
    HtapResult r = RunHtapWorkload(&cluster, config);
    state.counters["olap_qph"] = r.OlapQph();
    JsonFields mix = {{"olap_clients", static_cast<double>(olap_clients)},
                      {"olap_qph", r.OlapQph()},
                      {"vectorized", vectorized ? 1.0 : 0.0}};
    ReportPoint(state, series, olap_clients, r.olap, &cluster, mix);
  }
}

void RegisterAll() {
  for (bool gpdb6 : {true, false}) {
    std::string series = gpdb6 ? "Fig16/OlapQph/GPDB6" : "Fig16/OlapQph/GPDB5";
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(), [series, gpdb6](::benchmark::State& state) {
          RunHtapPoint(state, series, gpdb6);
        });
    for (int64_t olap : Points({2, 5, 10, 20})) {
      b->Args({olap, 0});
      b->Args({olap, 100});
    }
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
  for (bool vectorized : {true, false}) {
    std::string series =
        vectorized ? "Fig16/VecAblation/Vectorized" : "Fig16/VecAblation/RowEngine";
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(), [series, vectorized](::benchmark::State& state) {
          RunVecAblationPoint(state, series, vectorized);
        });
    for (int64_t olap : Points({4})) b->Args({olap});
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "fig16_olap_htap",
                                  gphtap::bench::RegisterAll);
}
