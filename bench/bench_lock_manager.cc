// Microbenchmarks for the lock manager (Table 1 machinery): conflict checks,
// uncontended acquire/release, wait-graph collection.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lock/lock_manager.h"

namespace gphtap {
namespace {

void BM_ConflictCheck(benchmark::State& state) {
  int i = 0;
  bench::RunMicro(state, "LockManager/ConflictCheck", 0, [&] {
    LockMode a = static_cast<LockMode>(1 + (i % 8));
    LockMode b = static_cast<LockMode>(1 + ((i / 8) % 8));
    benchmark::DoNotOptimize(LockConflicts(a, b));
    ++i;
  });
}
BENCHMARK(BM_ConflictCheck);

void BM_UncontendedAcquireRelease(benchmark::State& state) {
  LockManager lm(0);
  auto owner = std::make_shared<LockOwner>(1);
  LockTag tag = LockTag::Relation(42);
  bench::RunMicro(state, "LockManager/UncontendedAcquireRelease", 0, [&] {
    lm.Acquire(owner, tag, LockMode::kRowExclusive);
    lm.Release(*owner, tag, LockMode::kRowExclusive);
  });
}
BENCHMARK(BM_UncontendedAcquireRelease);

void BM_SharedAcquireManyHolders(benchmark::State& state) {
  LockManager lm(0);
  std::vector<std::shared_ptr<LockOwner>> owners;
  LockTag tag = LockTag::Relation(42);
  for (int i = 0; i < state.range(0); ++i) {
    owners.push_back(std::make_shared<LockOwner>(static_cast<uint64_t>(i + 1)));
    lm.Acquire(owners.back(), tag, LockMode::kAccessShare);
  }
  auto me = std::make_shared<LockOwner>(9999);
  bench::RunMicro(state, "LockManager/SharedAcquireManyHolders", state.range(0), [&] {
    lm.Acquire(me, tag, LockMode::kAccessShare);
    lm.Release(*me, tag, LockMode::kAccessShare);
  });
  for (auto& o : owners) lm.ReleaseAll(*o);
}
BENCHMARK(BM_SharedAcquireManyHolders)->Arg(1)->Arg(16)->Arg(128);

void BM_ReleaseAll(benchmark::State& state) {
  LockManager lm(0);
  int64_t num_locks = state.range(0);
  Histogram lat;
  Stopwatch total;
  for (auto _ : state) {
    state.PauseTiming();
    auto owner = std::make_shared<LockOwner>(1);
    for (int64_t i = 0; i < num_locks; ++i) {
      lm.Acquire(owner, LockTag::Relation(static_cast<uint32_t>(i)),
                 LockMode::kAccessShare);
    }
    state.ResumeTiming();
    Stopwatch sw;
    lm.ReleaseAll(*owner);
    lat.Record(sw.ElapsedMicros());
  }
  bench::RecordMicroPoint("LockManager/ReleaseAll", num_locks, lat,
                          total.ElapsedSeconds());
}
BENCHMARK(BM_ReleaseAll)->Arg(4)->Arg(64);

void BM_CollectWaitGraph(benchmark::State& state) {
  // N blocked waiters on one lock (a realistic hot-table pileup).
  LockManager lm(0);
  auto holder = std::make_shared<LockOwner>(1);
  LockTag tag = LockTag::Relation(42);
  lm.Acquire(holder, tag, LockMode::kAccessExclusive);
  std::vector<std::thread> waiters;
  std::vector<std::shared_ptr<LockOwner>> owners;
  int n = static_cast<int>(state.range(0));
  // Create every owner before spawning: the threads index into `owners`, so it
  // must not reallocate underneath them.
  for (int i = 0; i < n; ++i) {
    owners.push_back(std::make_shared<LockOwner>(static_cast<uint64_t>(i + 2)));
  }
  for (int i = 0; i < n; ++i) {
    waiters.emplace_back(
        [&, i] { lm.Acquire(owners[static_cast<size_t>(i)], tag, LockMode::kAccessShare); });
  }
  while (lm.CollectWaitGraph().edges.size() < static_cast<size_t>(n)) {
    std::this_thread::yield();
  }
  bench::RunMicro(state, "LockManager/CollectWaitGraph", state.range(0), [&] {
    benchmark::DoNotOptimize(lm.CollectWaitGraph());
  });
  lm.ReleaseAll(*holder);
  for (auto& t : waiters) t.join();
  for (auto& o : owners) lm.ReleaseAll(*o);
}
BENCHMARK(BM_CollectWaitGraph)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "lock_manager", nullptr);
}
