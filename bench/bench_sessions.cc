// Front-door session scaling: thousands of *logical* sessions multiplexed
// over a fixed pool of workers (src/frontend/), versus the classic
// thread-per-session driver at equal worker count.
//
// Three series:
//   Sessions/Steady/Frontend  - prepared TPC-B through the front door at
//                               1k / 10k / 50k logical sessions over the same
//                               8-worker pool. Throughput should hold roughly
//                               flat across the sweep: the pool, not the
//                               session count, is the capacity.
//   Sessions/Compare/Frontend + Sessions/Direct/Baseline
//                             - interleaved best-of-3 on one cluster: 1000
//                               front-door sessions vs 8 direct sessions on
//                               8 OS threads (one per pool worker). The
//                               tier-1 gate checks front-door steady tps
//                               lands within 10% of the direct baseline.
//   Sessions/Storm/Connect    - a 50k-session connection storm with the
//                               frontend.accept_drop fault armed: measures
//                               connect p99 (retries included), the shed
//                               rate, pool utilization, and verifies balance
//                               conservation across every committed transfer.
//                               Any invariant violation fails the binary.
#include "bench_common.h"

#include "common/fault_injector.h"

namespace gphtap {
namespace bench {
namespace {

// The fixed pool: every series runs with this many executing threads so the
// logical-session axis is the only variable.
constexpr int kPoolWorkers = 8;

bool& ViolationFlag() {
  static bool failed = false;
  return failed;
}

ClusterOptions SessionsClusterOptions() {
  ClusterOptions o = Gpdb6Options();
  o.num_segments = SmokeFlag() ? 2 : 4;  // statement cost, not fan-out, matters here
  o.frontend.enabled = true;
  o.frontend.workers = kPoolWorkers;
  o.frontend.max_sessions = 100'000;
  return o;
}

// pgbench-style sizing rule: scale >= clients, so the branch-row hotspot does
// not dominate. With 1000+ *open* transactions multiplexed over the pool, the
// stock 100-branch sizing would put ~10 sessions on every branch row and the
// comparison would measure lock queueing (which grows with open-txn count by
// design — the storm point covers that), not dispatch overhead.
TpcbConfig SessionsTpcb() {
  TpcbConfig c;
  c.scale = 1'000;
  c.accounts_per_branch = 20;  // 20k accounts, 10k tellers, 1000 branches
  return c;
}

double ShedRate(const FrontDoor::Stats& fd) {
  double attempts = static_cast<double>(fd.accepted + fd.shed_connects + fd.queued +
                                        fd.inline_dispatched + fd.shed_statements);
  double sheds = static_cast<double>(fd.shed_connects + fd.shed_statements);
  return attempts > 0 ? sheds / attempts : 0;
}

void AddFrontendFields(const FrontendWorkloadResult& r, const FrontDoor::Stats& fd,
                       JsonFields* fields) {
  // Steady-state figure: commits past the warmup boundary (whole-run when no
  // warmup was set), so ramp + PREPARE init don't dilute the series' claim.
  fields->push_back({"throughput_tps", r.SteadyTps()});
  fields->push_back({"whole_run_tps", r.Tps()});
  fields->push_back({"steady_committed", static_cast<double>(r.steady_committed)});
  fields->push_back({"p50_us", static_cast<double>(r.latency_us.Percentile(50))});
  fields->push_back({"p95_us", static_cast<double>(r.latency_us.Percentile(95))});
  fields->push_back({"p99_us", static_cast<double>(r.latency_us.Percentile(99))});
  fields->push_back({"committed", static_cast<double>(r.committed)});
  fields->push_back({"aborted", static_cast<double>(r.aborted)});
  fields->push_back(
      {"connect_p50_us", static_cast<double>(r.connect_latency_us.Percentile(50))});
  fields->push_back(
      {"connect_p99_us", static_cast<double>(r.connect_latency_us.Percentile(99))});
  fields->push_back({"connect_ok", static_cast<double>(r.connect_ok)});
  fields->push_back({"connect_sheds", static_cast<double>(r.connect_sheds)});
  fields->push_back({"connect_failed", static_cast<double>(r.connect_failed)});
  fields->push_back({"shed_statements", static_cast<double>(r.shed)});
  fields->push_back({"retryable", static_cast<double>(r.retryable)});
  fields->push_back({"reconnects", static_cast<double>(r.reconnects)});
  fields->push_back({"shed_rate", ShedRate(fd)});
  double pool_us = static_cast<double>(kPoolWorkers) * r.seconds * 1e6;
  fields->push_back(
      {"pool_utilization", pool_us > 0 ? static_cast<double>(fd.busy_us) / pool_us : 0});
}

// Steady state: prepared TPC-B, N logical sessions, fixed pool. Duration gets
// a per-session allowance so the 50k ramp + PREPARE init does not consume the
// whole measured window at the top of the sweep.
void RunSteadyPoint(::benchmark::State& state, const std::string& series) {
  int sessions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(SessionsClusterOptions());
    TpcbConfig config = SessionsTpcb();
    Status load = LoadTpcb(&cluster, config);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    FrontendWorkloadOptions opts;
    opts.logical_sessions = sessions;
    // Per-session allowance so the ramp + PREPARE init fit at the top of the
    // sweep; the first half of the run is warmup, steady tps is the rest.
    opts.duration_ms = 2 * PointMs() + sessions / 25;
    opts.warmup_ms = opts.duration_ms / 2;
    opts.seed = 42;
    opts.session_init = TpcbPrepareScript();
    opts.ramp_threads = 8;
    FrontendWorkloadResult r = RunFrontendWorkload(
        &cluster, opts, [config](Rng& rng) { return TpcbTransactionScript(rng, config); });
    if (!r.fatal.ok()) {
      ViolationFlag() = true;
      state.SkipWithError(r.fatal.ToString().c_str());
      return;
    }
    Status invariant = CheckTpcbInvariant(&cluster);
    if (!invariant.ok()) {
      ViolationFlag() = true;
      state.SkipWithError(invariant.ToString().c_str());
      return;
    }
    FrontDoor::Stats fd = cluster.frontend()->stats();
    JsonFields fields;
    AddFrontendFields(r, fd, &fields);
    fields.push_back({"sessions", static_cast<double>(sessions)});
    fields.push_back({"violations", 0});
    AddClusterCounters(&cluster, &fields);
    RecordPoint(series, sessions, std::move(fields));
    state.counters["tps"] = r.Tps();
    state.counters["connect_p99_us"] =
        static_cast<double>(r.connect_latency_us.Percentile(99));
    state.counters["pool_utilization"] =
        r.seconds > 0 ? static_cast<double>(fd.busy_us) / (kPoolWorkers * r.seconds * 1e6)
                      : 0;
  }
}

// The 10%-gate pair: front-door (1000 logical sessions) vs direct sessions at
// equal worker count, interleaved best-of-N on ONE shared cluster — the same
// trick as bench_stats, because on a small CI box run-to-run machine noise
// swings a single-shot tps by far more than the 10% being gated.
void RunComparePoint(::benchmark::State& state) {
  constexpr int kReps = 3;
  constexpr int kCompareSessions = 1'000;
  for (auto _ : state) {
    Cluster cluster(SessionsClusterOptions());
    TpcbConfig config = SessionsTpcb();
    Status load = LoadTpcb(&cluster, config);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    double best_front = 0, best_direct = 0;
    FrontendWorkloadResult best_fr;
    DriverResult best_dr;
    for (int rep = 0; rep < kReps; ++rep) {
      FrontendWorkloadOptions fo;
      fo.logical_sessions = kCompareSessions;
      fo.duration_ms = 2 * PointMs();
      fo.warmup_ms = PointMs();  // ramp + PREPARE init happen inside warmup
      fo.seed = 42 + static_cast<uint64_t>(rep);
      fo.session_init = TpcbPrepareScript();
      FrontendWorkloadResult fr = RunFrontendWorkload(
          &cluster, fo,
          [config](Rng& rng) { return TpcbTransactionScript(rng, config); });
      if (!fr.fatal.ok()) {
        ViolationFlag() = true;
        state.SkipWithError(fr.fatal.ToString().c_str());
        return;
      }
      if (fr.SteadyTps() > best_front) {
        best_front = fr.SteadyTps();
        best_fr = std::move(fr);
      }
      DriverOptions dopts;
      dopts.num_clients = kPoolWorkers;
      dopts.duration_ms = PointMs();
      dopts.seed = 42 + static_cast<uint64_t>(rep);
      DriverResult dr = RunWorkload(&cluster, dopts, [&](Session* s, Rng& rng) {
        return RunTpcbTransaction(s, rng, config);
      });
      if (dr.Tps() > best_direct) {
        best_direct = dr.Tps();
        best_dr = std::move(dr);
      }
    }
    Status invariant = CheckTpcbInvariant(&cluster);
    if (!invariant.ok()) {
      ViolationFlag() = true;
      state.SkipWithError(invariant.ToString().c_str());
      return;
    }
    {
      JsonFields fields;
      fields.push_back({"throughput_tps", best_front});
      fields.push_back({"best_tps", best_front});
      fields.push_back(
          {"p50_us", static_cast<double>(best_fr.latency_us.Percentile(50))});
      fields.push_back(
          {"p95_us", static_cast<double>(best_fr.latency_us.Percentile(95))});
      fields.push_back(
          {"p99_us", static_cast<double>(best_fr.latency_us.Percentile(99))});
      fields.push_back({"committed", static_cast<double>(best_fr.committed)});
      RecordPoint("Sessions/Compare/Frontend", kCompareSessions, std::move(fields));
    }
    {
      JsonFields fields;
      fields.push_back({"throughput_tps", best_direct});
      fields.push_back({"best_tps", best_direct});
      fields.push_back(
          {"p50_us", static_cast<double>(best_dr.latency_us.Percentile(50))});
      fields.push_back(
          {"p95_us", static_cast<double>(best_dr.latency_us.Percentile(95))});
      fields.push_back(
          {"p99_us", static_cast<double>(best_dr.latency_us.Percentile(99))});
      fields.push_back({"committed", static_cast<double>(best_dr.committed)});
      RecordPoint("Sessions/Direct/Baseline", kPoolWorkers, std::move(fields));
    }
    state.counters["front_tps"] = best_front;
    state.counters["direct_tps"] = best_direct;
    state.counters["ratio"] = best_direct > 0 ? best_front / best_direct : 0;
  }
}

// Connection storm: ramp 50k logical sessions while frontend.accept_drop is
// armed, drive markerless account transfers, and verify the account balance
// sum is conserved (every commit applied exactly once, no ghost writes).
void RunStormPoint(::benchmark::State& state, const std::string& series) {
  int sessions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(SessionsClusterOptions());
    TpcbConfig config = SessionsTpcb();
    Status load = LoadTpcb(&cluster, config);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    cluster.faults().ArmProbability(fault_points::kFrontendAcceptDrop, 0.02, 42);
    FrontendWorkloadOptions opts;
    opts.logical_sessions = sessions;
    // The window scales with the target: ramping 50k sessions through the
    // accept path (while the pool executes under it) is the measured event,
    // and it must fit inside the run even on a small CI box.
    opts.duration_ms = std::max<int64_t>(2 * PointMs(), sessions / 4);
    opts.seed = 42;
    opts.ramp_threads = 8;
    int64_t accounts = config.num_accounts();
    FrontendWorkloadResult r =
        RunFrontendWorkload(&cluster, opts, [accounts](Rng& rng) {
          int64_t from = rng.UniformRange(1, accounts);
          int64_t to = rng.UniformRange(1, accounts);
          if (to == from) to = to % accounts + 1;
          std::string d = std::to_string(rng.UniformRange(1, 100));
          return std::vector<std::string>{
              "BEGIN",
              "UPDATE pgbench_accounts SET abalance = abalance + " + d +
                  " WHERE aid = " + std::to_string(from),
              "UPDATE pgbench_accounts SET abalance = abalance - " + d +
                  " WHERE aid = " + std::to_string(to),
              "COMMIT",
          };
        });
    cluster.faults().Disarm(fault_points::kFrontendAcceptDrop);
    if (!r.fatal.ok()) {
      ViolationFlag() = true;
      state.SkipWithError(r.fatal.ToString().c_str());
      return;
    }
    // Balance conservation: transfers move money between accounts, so the sum
    // must still be the loader's zero no matter what was shed or retried.
    int violations = 0;
    auto session = cluster.Connect();
    StatusOr<QueryResult> sum =
        session->Execute("SELECT sum(abalance) FROM pgbench_accounts");
    if (!sum.ok()) {
      ViolationFlag() = true;
      state.SkipWithError(sum.status().ToString().c_str());
      return;
    }
    int64_t total = sum->rows.empty() || sum->rows[0][0].is_null()
                        ? 0
                        : sum->rows[0][0].int_val();
    if (total != 0) {
      violations = 1;
      ViolationFlag() = true;
    }
    FrontDoor::Stats fd = cluster.frontend()->stats();
    JsonFields fields;
    AddFrontendFields(r, fd, &fields);
    fields.push_back({"sessions", static_cast<double>(sessions)});
    fields.push_back({"violations", static_cast<double>(violations)});
    fields.push_back({"balance_sum", static_cast<double>(total)});
    AddClusterCounters(&cluster, &fields);
    RecordPoint(series, sessions, std::move(fields));
    std::printf("%s\n", r.Summary().c_str());
    if (violations != 0) {
      state.SkipWithError("balance conservation violated under connection storm");
      return;
    }
    state.counters["connect_ok"] = static_cast<double>(r.connect_ok);
    state.counters["connect_p99_us"] =
        static_cast<double>(r.connect_latency_us.Percentile(99));
    state.counters["shed_rate"] = ShedRate(fd);
  }
}

void RegisterAll() {
  {
    std::string series = "Sessions/Steady/Frontend";
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(),
        [series](::benchmark::State& state) { RunSteadyPoint(state, series); });
    for (int64_t sessions : Points({1'000, 10'000, 50'000})) b->Arg(sessions);
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
  {
    auto* b = ::benchmark::RegisterBenchmark(
        "Sessions/Compare",
        [](::benchmark::State& state) { RunComparePoint(state); });
    b->Arg(kPoolWorkers);
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
  {
    // The 50k point runs in smoke too — sustaining 50k logical sessions over
    // the fixed pool is exactly what the tier-1 gate checks.
    std::string series = "Sessions/Storm/Connect";
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(),
        [series](::benchmark::State& state) { RunStormPoint(state, series); });
    b->Arg(50'000);
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  int rc = gphtap::bench::BenchMain(argc, argv, "sessions", gphtap::bench::RegisterAll);
  if (gphtap::bench::ViolationFlag()) {
    std::fprintf(stderr, "session-front-door invariants violated\n");
    return 1;
  }
  return rc;
}
