// Figure 15: insert-only workload (every insert routed to one segment) with
// one-phase commit on vs off, plus the per-transaction message and fsync
// counts behind Figure 10. Paper shape: ~5x throughput from skipping PREPARE.
#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

void RunInsertPoint(::benchmark::State& state, const std::string& series, int mode) {
  // mode 0 = 2PC, 1 = 1PC, 2 = 1PC + Figure 11(b) piggybacked commit.
  int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ClusterOptions options = Gpdb6Options();
    options.one_phase_commit_enabled = mode >= 1;
    options.onephase_piggyback_enabled = mode == 2;
    Cluster cluster(options);
    TpcbConfig config = BenchTpcb();
    Status load = LoadTpcb(&cluster, config);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    // Snapshot protocol counters around the run (Figure 10 evidence).
    SimNet& net = cluster.net();
    uint64_t prepares_before = net.count(MsgKind::kPrepare);
    uint64_t commits_before = net.count(MsgKind::kCommit);
    uint64_t fsyncs_before = 0;
    for (int i = 0; i < cluster.num_segments(); ++i) {
      fsyncs_before += cluster.segment(i)->wal().fsyncs();
    }
    fsyncs_before += cluster.coordinator_wal().fsyncs();

    DriverOptions opts;
    opts.num_clients = clients;
    opts.duration_ms = PointMs();
    DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
      return RunInsertOnlyTransaction(s, rng, config);
    });

    uint64_t fsyncs_after = cluster.coordinator_wal().fsyncs();
    for (int i = 0; i < cluster.num_segments(); ++i) {
      fsyncs_after += cluster.segment(i)->wal().fsyncs();
    }
    double txns = std::max<double>(1.0, static_cast<double>(r.committed));
    double prepare_per_txn =
        static_cast<double>(net.count(MsgKind::kPrepare) - prepares_before) / txns;
    double commit_per_txn =
        static_cast<double>(net.count(MsgKind::kCommit) - commits_before) / txns;
    double fsyncs_per_txn = static_cast<double>(fsyncs_after - fsyncs_before) / txns;
    state.counters["prepare_msgs_per_txn"] = prepare_per_txn;
    state.counters["commit_msgs_per_txn"] = commit_per_txn;
    state.counters["fsyncs_per_txn"] = fsyncs_per_txn;
    ReportPoint(state, series, clients, r, &cluster,
                {{"prepare_msgs_per_txn", prepare_per_txn},
                 {"commit_msgs_per_txn", commit_per_txn},
                 {"fsyncs_per_txn", fsyncs_per_txn}});
  }
}

void RegisterAll() {
  const char* names[] = {"Fig15/InsertOnly/2PC", "Fig15/InsertOnly/1PC",
                         "Fig15/InsertOnly/1PC_piggyback(Fig11b)"};
  for (int mode : {1, 0, 2}) {
    std::string series = names[mode];
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(), [series, mode](::benchmark::State& state) {
          RunInsertPoint(state, series, mode);
        });
    for (int64_t clients : Points({10, 50, 100, 200})) b->Arg(clients);
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "fig15_insert_only",
                                  gphtap::bench::RegisterAll);
}
