// Figure 18: OLTP latency under the three resource-group configurations from
// Section 7.3 — (I) even soft CPU shares, (II) cpuset 0-3 for OLAP / 4-31 for
// OLTP, (III) cpuset 0-15 / 16-31 — with 20 OLAP clients running throughout.
// Paper shape: isolating CPUs for the OLTP group cuts its latency; more
// isolated cores keep helping.
#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

// Sized so the load is dominated by *simulated* CPU (the governor's domain)
// rather than by host threads fighting over real cores.
ChBenchConfig BenchCh() {
  ChBenchConfig c;
  c.warehouses = 8;
  c.districts_per_warehouse = 10;
  c.customers_per_district = 100;
  c.items = 500;
  c.initial_orders_per_district = 30;
  return c;
}

// The paper's three CREATE RESOURCE GROUP configurations, verbatim.
const char* kConfigs[][2] = {
    // Configuration I: even soft shares.
    {"CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, MEMORY_LIMIT=15, "
     "CPU_RATE_LIMIT=20)",
     "CREATE RESOURCE GROUP oltp_group WITH (CONCURRENCY=50, MEMORY_LIMIT=15, "
     "CPU_RATE_LIMIT=20)"},
    // Configuration II: OLAP pinned to cores 0-3.
    {"CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, MEMORY_LIMIT=15, "
     "CPU_SET=0-3)",
     "CREATE RESOURCE GROUP oltp_group WITH (CONCURRENCY=50, MEMORY_LIMIT=15, "
     "CPU_SET=4-31)"},
    // Configuration III: 16/16 split.
    {"CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, MEMORY_LIMIT=15, "
     "CPU_SET=0-15)",
     "CREATE RESOURCE GROUP oltp_group WITH (CONCURRENCY=50, MEMORY_LIMIT=15, "
     "CPU_SET=16-31)"},
};

void RunResgroupPoint(::benchmark::State& state) {
  int config_index = static_cast<int>(state.range(0)) - 1;
  for (auto _ : state) {
    ClusterOptions options = Gpdb6Options();
    options.resource_groups_enabled = true;
    options.exec_cpu_ns_per_row = 40000;
    options.total_cores = 32;
    Cluster cluster(options);

    auto admin = cluster.Connect();
    for (const char* ddl : kConfigs[config_index]) {
      Status s = admin->Execute(ddl).status();
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
    }
    admin->Execute("CREATE ROLE olap_role RESOURCE GROUP olap_group");
    admin->Execute("CREATE ROLE oltp_role RESOURCE GROUP oltp_group");

    HtapConfig config;
    config.chbench = BenchCh();
    Status load = LoadChBench(&cluster, config.chbench);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    config.olap_clients = 10;
    config.oltp_clients = 12;
    config.olap_role = "olap_role";
    config.oltp_role = "oltp_role";
    config.duration_ms = PointMs() * 3;
    HtapResult r = RunHtapWorkload(&cluster, config);
    state.counters["oltp_avg_ms"] = r.oltp.latency_us.Mean() / 1000.0;
    state.counters["oltp_p95_ms"] =
        static_cast<double>(r.oltp.latency_us.Percentile(95)) / 1000.0;
    state.counters["oltp_qpm"] = r.OltpQpm();
    state.counters["olap_qph"] = r.OlapQph();
    ReportPoint(state, "Fig18/OltpLatencyByResourceGroupConfig/oltp",
                config_index + 1, r.oltp, &cluster,
                {{"oltp_avg_ms", r.oltp.latency_us.Mean() / 1000.0},
                 {"oltp_qpm", r.OltpQpm()},
                 {"olap_qph", r.OlapQph()}});
  }
}

void RegisterAll() {
  auto* b = ::benchmark::RegisterBenchmark("Fig18/OltpLatencyByResourceGroupConfig",
                                           RunResgroupPoint);
  for (int64_t c : Points({1, 2, 3})) b->Arg(c);  // configurations I, II, III
  b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "fig18_resgroup",
                                  gphtap::bench::RegisterAll);
}
