// Chaos harness under measurement: runs the seeded fault schedule against the
// TPC-B-style transfer + scan mix (src/workload/chaos.h) and reports the
// resilience rates — committed/abort/retry/shed — plus crash-recovery latency
// percentiles. The safety invariants are enforced here too: any violation
// fails the binary (non-zero exit), so the tier-1 chaos smoke gates on them.
//
// GPHTAP_CHAOS_MS overrides the schedule length (run_tier1.sh uses 10000).
#include "bench_common.h"

#include "workload/chaos.h"

namespace gphtap {
namespace bench {
namespace {

bool& ViolationFlag() {
  static bool failed = false;
  return failed;
}

int64_t ChaosMs() {
  const char* ms = std::getenv("GPHTAP_CHAOS_MS");
  if (ms != nullptr) return std::atoll(ms);
  return SmokeFlag() ? 1500 : 4000;
}

ClusterOptions ChaosClusterOptions() {
  ClusterOptions o;
  o.num_segments = SmokeFlag() ? 3 : 4;
  o.gdd_enabled = true;
  o.mirrors_enabled = true;
  o.crash_recovery_enabled = true;
  o.fts_enabled = true;
  o.breaker_enabled = true;
  o.commit_retry_deadline_us = 2'000'000;
  return o;
}

void RunChaosPoint(::benchmark::State& state, const std::string& series) {
  uint64_t seed = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(ChaosClusterOptions());
    ChaosConfig cfg;
    cfg.seed = seed;
    cfg.duration_ms = ChaosMs();
    cfg.transfer_sessions = 6;
    cfg.scan_sessions = 2;
    cfg.statement_timeout_ms = 1500;
    Status setup = SetupChaosTables(&cluster, cfg);
    if (!setup.ok()) {
      state.SkipWithError(setup.ToString().c_str());
      return;
    }
    Stopwatch sw;
    ChaosReport r = RunChaosWorkload(&cluster, cfg);
    double seconds = sw.ElapsedSeconds();
    std::printf("%s\n", r.ToString().c_str());
    if (!r.invariants_ok()) {
      ViolationFlag() = true;
      state.SkipWithError("chaos invariant violation (see report above)");
      return;
    }

    Histogram recovery;
    for (int64_t us : r.recovery_latencies_us) recovery.Record(us);
    double attempts = static_cast<double>(r.transfers_attempted + r.scans_attempted);
    double aborts = static_cast<double>(r.deadlock_victims + r.timeouts + r.shed +
                                        r.unavailable + r.aborted_other);
    uint64_t stmt_retries = 0;
    for (const auto& [name, value] : cluster.StatsSnapshot().counters) {
      if (name == "resilience.statement_retries") stmt_retries = value;
    }

    JsonFields fields;
    fields.push_back({"throughput_tps",
                      seconds > 0 ? static_cast<double>(r.transfers_committed) / seconds
                                  : 0});
    // Latency percentiles: crash -> back-up recovery latency (the run's
    // availability figure of merit; the recovery_p95_us alias keeps the name
    // self-describing).
    fields.push_back({"p50_us", static_cast<double>(recovery.Percentile(50))});
    fields.push_back({"p95_us", static_cast<double>(recovery.Percentile(95))});
    fields.push_back({"p99_us", static_cast<double>(recovery.Percentile(99))});
    fields.push_back({"recovery_p95_us", static_cast<double>(recovery.Percentile(95))});
    fields.push_back({"transfers_committed", static_cast<double>(r.transfers_committed)});
    fields.push_back({"transfers_ambiguous", static_cast<double>(r.transfers_ambiguous)});
    fields.push_back({"abort_rate", attempts > 0 ? aborts / attempts : 0});
    fields.push_back(
        {"retry_rate", attempts > 0 ? static_cast<double>(stmt_retries) / attempts : 0});
    fields.push_back({"shed_rate", attempts > 0 ? static_cast<double>(r.shed) / attempts
                                                : 0});
    fields.push_back({"timeout_rate",
                      attempts > 0 ? static_cast<double>(r.timeouts) / attempts : 0});
    fields.push_back({"faults_injected", static_cast<double>(r.faults_injected)});
    fields.push_back({"crashes", static_cast<double>(r.crashes)});
    fields.push_back({"mirror_promotions", static_cast<double>(r.mirror_promotions)});
    fields.push_back({"scans_retried_ok", static_cast<double>(r.scans_retried_ok)});
    AddClusterCounters(&cluster, &fields);
    RecordPoint(series, static_cast<int64_t>(seed), std::move(fields));

    state.counters["committed"] = static_cast<double>(r.transfers_committed);
    state.counters["abort_rate"] = attempts > 0 ? aborts / attempts : 0;
    state.counters["recovery_p95_us"] = static_cast<double>(recovery.Percentile(95));
  }
}

void RegisterAll() {
  std::string series = "Chaos/Invariants";
  auto* b = ::benchmark::RegisterBenchmark(
      series.c_str(),
      [series](::benchmark::State& state) { RunChaosPoint(state, series); });
  for (int64_t seed : Points({42, 1337})) b->Arg(seed);
  b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  int rc = gphtap::bench::BenchMain(argc, argv, "chaos", gphtap::bench::RegisterAll);
  if (gphtap::bench::ViolationFlag()) {
    std::fprintf(stderr, "chaos invariants violated\n");
    return 1;
  }
  return rc;
}
