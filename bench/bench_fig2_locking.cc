// Figure 2: share of query runtime spent waiting on locks vs connection count
// under the pre-GDD (GPDB5) locking regime, compared with GDD enabled.
// Paper shape: >25% lock time at a handful of connections, "unacceptable"
// beyond ~100 — because every UPDATE takes a table-level ExclusiveLock.
#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

int64_t TotalLockWaitUs(Cluster* cluster) {
  int64_t total = cluster->coordinator_locks().stats().total_wait_us;
  for (int i = 0; i < cluster->num_segments(); ++i) {
    total += cluster->segment(i)->locks().stats().total_wait_us;
  }
  return total;
}

void RunLockingPoint(::benchmark::State& state, const std::string& series,
                     bool gdd_enabled) {
  int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ClusterOptions options = gdd_enabled ? Gpdb6Options() : Gpdb5Options();
    Cluster cluster(options);
    TpcbConfig config = BenchTpcb();
    Status load = LoadTpcb(&cluster, config);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    int64_t wait_before = TotalLockWaitUs(&cluster);
    DriverOptions opts;
    opts.num_clients = clients;
    opts.duration_ms = PointMs();
    DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
      return RunUpdateOnlyTransaction(s, rng, config);
    });
    int64_t waited = TotalLockWaitUs(&cluster) - wait_before;
    // Total "query running time" = clients * wall time.
    double total_runtime_us = static_cast<double>(clients) * r.seconds * 1e6;
    double lock_wait_pct =
        total_runtime_us > 0 ? 100.0 * static_cast<double>(waited) / total_runtime_us
                             : 0;
    state.counters["lock_wait_pct"] = lock_wait_pct;
    ReportPoint(state, series, clients, r, &cluster,
                {{"lock_wait_pct", lock_wait_pct}});
  }
}

void RegisterAll() {
  for (bool gdd : {false, true}) {
    std::string series =
        gdd ? "Fig2/LockWaitShare/GDD_on" : "Fig2/LockWaitShare/GDD_off(GPDB5)";
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(), [series, gdd](::benchmark::State& state) {
          RunLockingPoint(state, series, gdd);
        });
    for (int64_t clients : Points({2, 5, 10, 50, 100, 200})) b->Arg(clients);
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "fig2_locking", gphtap::bench::RegisterAll);
}
