// Stats-collector overhead: TPC-B throughput with the statement-stats
// collector + history daemon on vs fully off. The acceptance gate (checked by
// run_tier1.sh) is <= 2% tps overhead: fingerprinting is one lexer pass per
// statement and the per-statement Sample is a handful of relaxed atomic adds,
// so the collector must be effectively free. Repeats are interleaved
// (on/off/on/off...) and the best run per mode is reported so machine noise
// does not masquerade as overhead.
#include <algorithm>

#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

constexpr int kRepeats = 4;

ClusterOptions StatsOptions(bool stats_on) {
  ClusterOptions o = Gpdb6Options();
  o.stats_enabled = stats_on;
  o.stats_history_period_us = stats_on ? 100'000 : 0;
  return o;
}

double RunOnce(const ClusterOptions& options, int clients, DriverResult* out) {
  Cluster cluster(options);
  TpcbConfig config = BenchTpcb();
  Status load = LoadTpcb(&cluster, config);
  if (!load.ok()) return -1.0;
  DriverOptions opts;
  opts.num_clients = clients;
  opts.duration_ms = PointMs();
  DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
    return RunTpcbTransaction(s, rng, config);
  });
  if (!CheckTpcbInvariant(&cluster).ok()) return -1.0;
  // With the collector on, the run itself must have populated the registry
  // with fingerprinted TPC-B statements and gang-attributed resources.
  if (options.stats_enabled) {
    uint64_t calls = 0, cpu = 0;
    for (const auto& e : cluster.statement_stats().Snapshot()) {
      calls += e.calls;
      cpu += e.exec_cpu_ns;
    }
    if (calls == 0 || cpu == 0) return -1.0;
  }
  *out = std::move(r);
  return out->Tps();
}

void RunOverheadPoint(::benchmark::State& state) {
  int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<double> tps_on, tps_off;
    DriverResult last_on, last_off;
    // Interleave the modes so drift hits both equally.
    for (int i = 0; i < kRepeats; ++i) {
      double on = RunOnce(StatsOptions(true), clients, &last_on);
      double off = RunOnce(StatsOptions(false), clients, &last_off);
      if (on < 0 || off < 0) {
        state.SkipWithError("stats-overhead run failed");
        return;
      }
      tps_on.push_back(on);
      tps_off.push_back(off);
    }
    // Best-of-N per mode: ambient machine noise only ever slows a run down,
    // so the fastest repeat is the least-contaminated estimate of each mode's
    // true capability. Interleaving plus best-of-N keeps a transient load
    // spike from masquerading as collector overhead.
    double best_on = *std::max_element(tps_on.begin(), tps_on.end());
    double best_off = *std::max_element(tps_off.begin(), tps_off.end());
    double overhead_pct = best_off > 0 ? (best_off - best_on) / best_off * 100.0 : 0.0;

    state.counters["tps_on"] = best_on;
    state.counters["overhead_pct"] = overhead_pct;
    JsonFields on_fields;
    AddDriverFields(last_on, &on_fields);
    on_fields.push_back({"best_tps", best_on});
    on_fields.push_back({"overhead_pct", overhead_pct});
    RecordPoint("Stats/Overhead/StatsOn", clients, std::move(on_fields));
    JsonFields off_fields;
    AddDriverFields(last_off, &off_fields);
    off_fields.push_back({"best_tps", best_off});
    RecordPoint("Stats/Overhead/StatsOff", clients, std::move(off_fields));
  }
}

void RegisterAll() {
  auto* b = ::benchmark::RegisterBenchmark("Stats/Overhead", RunOverheadPoint);
  for (int64_t clients : Points({20, 100})) b->Arg(clients);
  b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "stats", gphtap::bench::RegisterAll);
}
