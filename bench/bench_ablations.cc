// Ablations for the design choices DESIGN.md calls out:
//   * direct dispatch on/off for point selects,
//   * heuristic vs cost-based ("Orca") planning for skewed joins,
//   * AO-column projected scans vs full-width scans,
//   * compression codec throughput,
//   * GDD detection period vs deadlock-abort latency is covered in tests; here
//     we measure the daemon's steady-state overhead at different periods.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "storage/compression.h"

namespace gphtap {
namespace bench {
namespace {

// ---- direct dispatch ----

void BM_PointSelect(benchmark::State& state) {
  bool direct = state.range(0) != 0;
  ClusterOptions options = Gpdb6Options();
  options.direct_dispatch_enabled = direct;
  Cluster cluster(options);
  TpcbConfig config = BenchTpcb();
  if (!LoadTpcb(&cluster, config).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  auto session = cluster.Connect();
  Rng rng(5);
  Histogram lat;
  Stopwatch total;
  for (auto _ : state) {
    Stopwatch sw;
    Status s = RunSelectOnlyTransaction(session.get(), rng, config);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    lat.Record(sw.ElapsedMicros());
  }
  RecordMicroPoint(direct ? "Ablation/PointSelect/direct_dispatch"
                          : "Ablation/PointSelect/broadcast_dispatch",
                   state.range(0), lat, total.ElapsedSeconds(), &cluster);
}
BENCHMARK(BM_PointSelect)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("direct_dispatch")
    ->Unit(benchmark::kMicrosecond);

// ---- planner mode on a skewed join ----

void BM_SkewedJoin(benchmark::State& state) {
  bool orca = state.range(0) != 0;
  ClusterOptions options = Gpdb6Options();
  options.use_orca = orca;
  options.net_latency_us = 0;  // isolate motion volume, not wire latency
  Cluster cluster(options);
  auto session = cluster.Connect();
  session->Execute("CREATE TABLE big (k int, v int) DISTRIBUTED BY (k)");
  session->Execute("CREATE TABLE small (v int, name int) DISTRIBUTED BY (v)");
  session->Execute("INSERT INTO big SELECT i, i % 50 FROM generate_series(1, 20000) i");
  session->Execute("INSERT INTO small SELECT i, i FROM generate_series(0, 49) i");
  Histogram lat;
  Stopwatch total;
  for (auto _ : state) {
    // Join on big.v = small.name: big must move under the heuristic planner;
    // Orca broadcasts the 50-row side instead.
    Stopwatch sw;
    auto r = session->Execute(
        "SELECT count(*) FROM big JOIN small ON big.v = small.name");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    lat.Record(sw.ElapsedMicros());
  }
  state.counters["tuple_msgs"] =
      static_cast<double>(cluster.net().count(MsgKind::kTupleData));
  RecordMicroPoint(orca ? "Ablation/SkewedJoin/orca" : "Ablation/SkewedJoin/heuristic",
                   state.range(0), lat, total.ElapsedSeconds(), &cluster);
}
BENCHMARK(BM_SkewedJoin)->Arg(0)->Arg(1)->ArgName("orca")->Unit(benchmark::kMillisecond);

// ---- AO-column projection ----

void BM_AoColumnScan(benchmark::State& state) {
  bool projected = state.range(0) != 0;
  ClusterOptions options;
  options.num_segments = 4;
  Cluster cluster(options);
  auto session = cluster.Connect();
  session->Execute(
      "CREATE TABLE wide (a int, b text, c text, d text, e int) "
      "WITH (appendonly=true, orientation=column) DISTRIBUTED BY (a)");
  {
    std::vector<Row> rows;
    for (int64_t i = 0; i < 20000; ++i) {
      rows.push_back(Row{Datum(i), Datum(std::string(64, 'x')),
                         Datum(std::string(64, 'y')), Datum(std::string(64, 'z')),
                         Datum(i % 7)});
    }
    auto def = cluster.LookupTable("wide");
    session->ExecuteInsert(*def, rows);
  }
  const char* query = projected ? "SELECT sum(e) FROM wide"
                                : "SELECT count(*), min(b), max(c), min(d), sum(e) "
                                  "FROM wide";
  auto total_bytes = [&] {
    uint64_t bytes = 0;
    auto def = cluster.LookupTable("wide");
    for (int i = 0; i < cluster.num_segments(); ++i) {
      bytes += cluster.segment(i)->GetTable(def->id)->BytesScanned();
    }
    return bytes;
  };
  uint64_t before = total_bytes();
  Histogram lat;
  Stopwatch total;
  for (auto _ : state) {
    Stopwatch sw;
    auto r = session->Execute(query);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    lat.Record(sw.ElapsedMicros());
  }
  state.counters["bytes_per_query"] =
      static_cast<double>(total_bytes() - before) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
  RecordMicroPoint(projected ? "Ablation/AoColumnScan/narrow_projection"
                             : "Ablation/AoColumnScan/full_width",
                   state.range(0), lat, total.ElapsedSeconds(), &cluster);
}
BENCHMARK(BM_AoColumnScan)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("narrow_projection")
    ->Unit(benchmark::kMillisecond);

// ---- codec throughput ----

void BM_Compress(benchmark::State& state) {
  auto kind = static_cast<CompressionKind>(state.range(0));
  Rng rng(3);
  std::vector<Datum> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(Datum(static_cast<int64_t>(rng.Uniform(64))));
  }
  Histogram lat;
  Stopwatch total;
  for (auto _ : state) {
    Stopwatch sw;
    CompressedBlock block;
    CompressColumn(kind, TypeId::kInt64, values, &block);
    benchmark::DoNotOptimize(block);
    state.counters["bytes"] = static_cast<double>(block.bytes.size());
    lat.Record(sw.ElapsedMicros());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  RecordMicroPoint("Ablation/Compress", state.range(0), lat, total.ElapsedSeconds());
}
BENCHMARK(BM_Compress)
    ->Arg(static_cast<int>(CompressionKind::kNone))
    ->Arg(static_cast<int>(CompressionKind::kRle))
    ->Arg(static_cast<int>(CompressionKind::kDelta))
    ->Arg(static_cast<int>(CompressionKind::kDict))
    ->Arg(static_cast<int>(CompressionKind::kLz))
    ->ArgName("codec")
    ->Unit(benchmark::kMicrosecond);

// ---- GDD period overhead on a busy cluster ----

void BM_GddPeriodOverhead(benchmark::State& state) {
  int64_t period_us = state.range(0);
  for (auto _ : state) {
    ClusterOptions options = Gpdb6Options();
    options.gdd_period_us = period_us;
    Cluster cluster(options);
    TpcbConfig config = BenchTpcb();
    if (!LoadTpcb(&cluster, config).ok()) {
      state.SkipWithError("load failed");
      return;
    }
    DriverOptions opts;
    opts.num_clients = 50;
    opts.duration_ms = PointMs();
    DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
      return RunUpdateOnlyTransaction(s, rng, config);
    });
    state.counters["gdd_runs"] = static_cast<double>(cluster.gdd()->stats().runs);
    ReportPoint(state, "Ablation/GddPeriodOverhead", period_us, r, &cluster);
  }
}
BENCHMARK(BM_GddPeriodOverhead)
    ->Arg(1'000)
    ->Arg(20'000)
    ->Arg(500'000)
    ->ArgName("period_us")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "ablations", nullptr);
}
