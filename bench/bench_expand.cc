// Online expansion under load: TPC-B-style transfers hammer a 3-segment
// cluster, then the cluster grows by two segments and rebalances the tables
// while the transfers keep flowing. Reports throughput before / during /
// after the rebalance, the cutover pause (the brief AccessExclusive window
// writers stall in), and proof the new segments actually serve data.
//
// GPHTAP_BENCH_MS overrides the per-phase length (run_tier1.sh uses 300).
#include "bench_common.h"

#include <atomic>
#include <thread>

namespace gphtap {
namespace bench {
namespace {

constexpr int kAccounts = 64;
constexpr int kTransferThreads = 4;

ClusterOptions ExpandClusterOptions() {
  ClusterOptions o;
  o.num_segments = 3;
  o.gdd_enabled = true;
  o.crash_recovery_enabled = true;
  return o;
}

// Phases a transfer's latency sample can land in.
enum Phase { kBefore = 0, kDuring = 1, kAfter = 2 };

struct PhaseStats {
  Histogram latency_us;
  uint64_t committed = 0;
  int64_t elapsed_us = 0;
};

Status SetupTables(Cluster* cluster) {
  auto session = cluster->Connect();
  GPHTAP_RETURN_IF_ERROR(
      session
          ->Execute("CREATE TABLE bench_accounts (aid int, balance int) "
                    "DISTRIBUTED BY (aid)")
          .status());
  GPHTAP_RETURN_IF_ERROR(
      session
          ->Execute("INSERT INTO bench_accounts SELECT i, 0 FROM "
                    "generate_series(1, " +
                    std::to_string(kAccounts) + ") i")
          .status());
  return Status::OK();
}

void TransferLoop(Cluster* cluster, uint64_t seed, std::atomic<int>* phase,
                  std::atomic<bool>* stop, std::array<PhaseStats, 3>* stats,
                  std::mutex* stats_mu) {
  auto session = cluster->Connect();
  session->set_statement_timeout_us(2'000'000);
  Rng rng(seed);
  while (!stop->load(std::memory_order_acquire)) {
    int64_t from = rng.UniformRange(1, kAccounts);
    int64_t to = rng.UniformRange(1, kAccounts);
    if (to == from) to = to % kAccounts + 1;
    int64_t delta = rng.UniformRange(1, 100);
    int p = phase->load(std::memory_order_acquire);
    int64_t start = MonotonicMicros();
    Status s = session->Execute("BEGIN").status();
    if (s.ok()) {
      s = session
              ->Execute("UPDATE bench_accounts SET balance = balance + " +
                        std::to_string(delta) +
                        " WHERE aid = " + std::to_string(from))
              .status();
    }
    if (s.ok()) {
      s = session
              ->Execute("UPDATE bench_accounts SET balance = balance - " +
                        std::to_string(delta) +
                        " WHERE aid = " + std::to_string(to))
              .status();
    }
    if (!s.ok()) {
      session->Rollback();
      continue;
    }
    if (!session->Execute("COMMIT").ok()) continue;
    int64_t us = MonotonicMicros() - start;
    std::lock_guard<std::mutex> g(*stats_mu);
    (*stats)[static_cast<size_t>(p)].latency_us.Record(us);
    ++(*stats)[static_cast<size_t>(p)].committed;
  }
}

void RunExpandPoint(::benchmark::State& state, const std::string& series) {
  uint64_t seed = static_cast<uint64_t>(state.range(0));
  int64_t phase_ms = PointMs() < 200 ? 200 : PointMs();
  for (auto _ : state) {
    Cluster cluster(ExpandClusterOptions());
    Status setup = SetupTables(&cluster);
    if (!setup.ok()) {
      state.SkipWithError(setup.ToString().c_str());
      return;
    }

    std::atomic<int> phase{kBefore};
    std::atomic<bool> stop{false};
    std::array<PhaseStats, 3> stats;
    std::mutex stats_mu;
    std::vector<std::thread> workers;
    for (int i = 0; i < kTransferThreads; ++i) {
      workers.emplace_back(TransferLoop, &cluster, seed * 31 + i, &phase, &stop,
                           &stats, &stats_mu);
    }

    // Phase 1: steady state at the old width.
    int64_t t0 = MonotonicMicros();
    PreciseSleepUs(phase_ms * 1000);
    stats[kBefore].elapsed_us = MonotonicMicros() - t0;

    // Phase 2: grow the cluster and rebalance while transfers keep flowing.
    phase.store(kDuring, std::memory_order_release);
    int64_t t1 = MonotonicMicros();
    StatusOr<int> grow = cluster.AddSegments(2);
    if (!grow.ok()) {
      state.SkipWithError(grow.status().ToString().c_str());
      stop.store(true);
      for (auto& w : workers) w.join();
      return;
    }
    auto admin = cluster.Connect();
    double rows_moved = 0, catchup_records = 0, cutover_pause_us = 0;
    Status reb;
    for (int attempt = 0; attempt < 20; ++attempt) {
      auto r = admin->Execute("REBALANCE TABLE bench_accounts");
      reb = r.status();
      if (!reb.ok()) continue;
      const Row& row = r->rows[0];
      rows_moved += static_cast<double>(row[0].int_val());
      catchup_records += static_cast<double>(row[1].int_val());
      cutover_pause_us = std::max(
          cutover_pause_us, static_cast<double>(row[3].int_val()));
      if (row[4].int_val() == 1) break;  // cutover_complete
    }
    if (!reb.ok()) {
      state.SkipWithError(("rebalance failed: " + reb.ToString()).c_str());
      stop.store(true);
      for (auto& w : workers) w.join();
      return;
    }
    stats[kDuring].elapsed_us = MonotonicMicros() - t1;

    // Phase 3: steady state at the new width.
    phase.store(kAfter, std::memory_order_release);
    int64_t t2 = MonotonicMicros();
    PreciseSleepUs(phase_ms * 1000);
    stats[kAfter].elapsed_us = MonotonicMicros() - t2;
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();

    // The new segments must actually serve data after the cutover.
    auto def = cluster.LookupTable("bench_accounts");
    if (!def.ok()) {
      state.SkipWithError("bench_accounts missing from catalog");
      return;
    }
    double new_segment_rows = 0;
    for (int s = 3; s < cluster.num_segments(); ++s) {
      Table* t = cluster.segment(s)->GetTable(def->id);
      if (t != nullptr) new_segment_rows += static_cast<double>(t->StoredVersionCount());
    }
    // And the invariant held: sum(balance) is still zero.
    auto sum = admin->Execute("SELECT sum(balance) FROM bench_accounts");
    if (!sum.ok() || sum->rows.empty() || sum->rows[0][0].int_val() != 0) {
      state.SkipWithError("balance conservation violated after rebalance");
      return;
    }

    const char* phase_names[] = {"Before", "During", "After"};
    for (int p = kBefore; p <= kAfter; ++p) {
      const PhaseStats& ps = stats[static_cast<size_t>(p)];
      double seconds = static_cast<double>(ps.elapsed_us) / 1e6;
      JsonFields fields;
      fields.push_back({"throughput_tps",
                        seconds > 0 ? static_cast<double>(ps.committed) / seconds : 0});
      fields.push_back({"p50_us", static_cast<double>(ps.latency_us.Percentile(50))});
      fields.push_back({"p95_us", static_cast<double>(ps.latency_us.Percentile(95))});
      fields.push_back({"p99_us", static_cast<double>(ps.latency_us.Percentile(99))});
      fields.push_back({"committed", static_cast<double>(ps.committed)});
      if (p == kDuring) {
        fields.push_back({"rows_moved", rows_moved});
        fields.push_back({"catchup_records", catchup_records});
        fields.push_back({"cutover_pause_us", cutover_pause_us});
        fields.push_back({"new_segment_rows", new_segment_rows});
      }
      RecordPoint(series + "/" + phase_names[p], static_cast<int64_t>(seed),
                  std::move(fields));
      state.counters[std::string(phase_names[p]) + "_tps"] =
          seconds > 0 ? static_cast<double>(ps.committed) / seconds : 0;
    }
    state.counters["cutover_pause_us"] = cutover_pause_us;
    state.counters["rows_moved"] = rows_moved;
    state.counters["new_segment_rows"] = new_segment_rows;
  }
}

void RegisterAll() {
  std::string series = "Expand/Online";
  auto* b = ::benchmark::RegisterBenchmark(
      series.c_str(),
      [series](::benchmark::State& state) { RunExpandPoint(state, series); });
  for (int64_t seed : Points({42})) b->Arg(seed);
  b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "expand", gphtap::bench::RegisterAll);
}
