// GDD cost model: Algorithm 1 runtime vs wait-for graph size (the paper's
// "does not consume much resource" claim), plus the live collection cost on an
// idle cluster — the daemon's steady-state overhead.
#include <benchmark/benchmark.h>

#include "api/gphtap.h"
#include "bench_common.h"
#include "common/rng.h"
#include "gdd/gdd_algorithm.h"

namespace gphtap {
namespace {

std::vector<LocalWaitGraph> RandomGraphs(int nodes, int edges_per_node, uint64_t seed,
                                         bool plant_cycle) {
  Rng rng(seed);
  std::vector<LocalWaitGraph> graphs;
  for (int n = 0; n < nodes; ++n) {
    LocalWaitGraph g;
    g.node_id = n;
    for (int e = 0; e < edges_per_node; ++e) {
      uint64_t a = 1 + rng.Uniform(200);
      uint64_t b = 1 + rng.Uniform(200);
      if (a == b) continue;
      if (a > b) std::swap(a, b);  // acyclic unless planted
      g.edges.push_back(WaitEdge{a, b, rng.Chance(0.3)});
    }
    graphs.push_back(std::move(g));
  }
  if (plant_cycle && !graphs.empty()) {
    graphs[0].edges.push_back(WaitEdge{500, 501, false});
    graphs[0].edges.push_back(WaitEdge{501, 500, false});
  }
  return graphs;
}

void BM_GddAlgorithmAcyclic(benchmark::State& state) {
  auto graphs = RandomGraphs(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)), 7, false);
  bench::RunMicro(state, "GddDetector/AlgorithmAcyclic", state.range(0), [&] {
    benchmark::DoNotOptimize(RunGddAlgorithm(graphs));
  });
}
BENCHMARK(BM_GddAlgorithmAcyclic)
    ->Args({4, 16})
    ->Args({16, 64})
    ->Args({32, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_GddAlgorithmWithCycle(benchmark::State& state) {
  auto graphs = RandomGraphs(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)), 7, true);
  bench::RunMicro(state, "GddDetector/AlgorithmWithCycle", state.range(0), [&] {
    auto result = RunGddAlgorithm(graphs);
    benchmark::DoNotOptimize(result);
  });
}
BENCHMARK(BM_GddAlgorithmWithCycle)
    ->Args({4, 16})
    ->Args({32, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_LiveCollection(benchmark::State& state) {
  ClusterOptions options;
  options.num_segments = static_cast<int>(state.range(0));
  options.gdd_enabled = false;  // we drive collection by hand
  Cluster cluster(options);
  bench::RunMicro(state, "GddDetector/LiveCollection", state.range(0), [&] {
    benchmark::DoNotOptimize(cluster.CollectWaitGraphs());
  });
}
BENCHMARK(BM_LiveCollection)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "gdd_detector", nullptr);
}
