// Figure 14: update-only workload, GDD on vs off. Paper shape: ~100x — GPDB5
// serializes every UPDATE of the same table behind a table-level
// ExclusiveLock, while the GDD lets disjoint-tuple updates run concurrently.
#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

void RunUpdatePoint(::benchmark::State& state, const std::string& series,
                    bool gdd_enabled) {
  int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(gdd_enabled ? Gpdb6Options() : Gpdb5Options());
    TpcbConfig config = BenchTpcb();
    Status load = LoadTpcb(&cluster, config);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    DriverOptions opts;
    opts.num_clients = clients;
    opts.duration_ms = PointMs();
    DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
      return RunUpdateOnlyTransaction(s, rng, config);
    });
    if (cluster.gdd() != nullptr) {
      state.counters["gdd_victims"] =
          static_cast<double>(cluster.gdd()->stats().victims_killed);
    }
    ReportPoint(state, series, clients, r, &cluster);
  }
}

void RegisterAll() {
  for (bool gdd : {true, false}) {
    std::string series =
        gdd ? "Fig14/UpdateOnly/GPDB6_gdd_on" : "Fig14/UpdateOnly/GPDB5_gdd_off";
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(), [series, gdd](::benchmark::State& state) {
          RunUpdatePoint(state, series, gdd);
        });
    for (int64_t clients : Points({10, 50, 100, 200})) b->Arg(clients);
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "fig14_update_only",
                                  gphtap::bench::RegisterAll);
}
