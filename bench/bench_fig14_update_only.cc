// Figure 14: update-only workload, GDD on vs off. Paper shape: ~100x — GPDB5
// serializes every UPDATE of the same table behind a table-level
// ExclusiveLock, while the GDD lets disjoint-tuple updates run concurrently.
#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

void RunUpdatePoint(::benchmark::State& state, bool gdd_enabled) {
  int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(gdd_enabled ? Gpdb6Options() : Gpdb5Options());
    TpcbConfig config = BenchTpcb();
    Status load = LoadTpcb(&cluster, config);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    DriverOptions opts;
    opts.num_clients = clients;
    opts.duration_ms = PointMs();
    DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
      return RunUpdateOnlyTransaction(s, rng, config);
    });
    ReportDriver(state, r);
    if (cluster.gdd() != nullptr) {
      state.counters["gdd_victims"] =
          static_cast<double>(cluster.gdd()->stats().victims_killed);
    }
  }
}

void RegisterAll() {
  for (bool gdd : {true, false}) {
    auto* b = ::benchmark::RegisterBenchmark(
        gdd ? "Fig14/UpdateOnly/GPDB6_gdd_on" : "Fig14/UpdateOnly/GPDB5_gdd_off",
        [gdd](::benchmark::State& state) { RunUpdatePoint(state, gdd); });
    for (int clients : {10, 50, 100, 200}) b->Arg(clients);
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  gphtap::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
