// Figure 12: TPC-B throughput vs client count — GPDB6 vs GPDB5 vs PostgreSQL.
// Paper shape: GPDB6 scales with clients and beats GPDB5 by ~80x at high
// concurrency (GPDB5 serializes writers); single-node PostgreSQL is fastest at
// tiny scale but flattens (Figure 13 explores the data-size axis).
#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

void RunTpcbPoint(::benchmark::State& state, const std::string& series,
                  const ClusterOptions& options) {
  int clients = static_cast<int>(state.range(0));
  // GPHTAP_TRACE_OUT=<path>: trace every query and export the retained traces
  // as Chrome trace_event JSON when the point finishes (last point wins).
  const char* trace_out = std::getenv("GPHTAP_TRACE_OUT");
  ClusterOptions effective = options;
  if (trace_out != nullptr) effective.trace_queries = true;
  for (auto _ : state) {
    Cluster cluster(effective);
    TpcbConfig config = BenchTpcb();
    Status load = LoadTpcb(&cluster, config);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    DriverOptions opts;
    opts.num_clients = clients;
    opts.duration_ms = PointMs();
    DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
      return RunTpcbTransaction(s, rng, config);
    });
    Status invariant = CheckTpcbInvariant(&cluster);
    if (!invariant.ok()) {
      state.SkipWithError(invariant.ToString().c_str());
      return;
    }
    if (trace_out != nullptr) {
      Status dump = cluster.DumpChromeTrace(trace_out);
      if (!dump.ok()) {
        state.SkipWithError(dump.ToString().c_str());
        return;
      }
    }
    ReportPoint(state, series, clients, r, &cluster);
  }
}

void RegisterAll() {
  for (const char* mode : {"GPDB6", "GPDB5", "PostgreSQL"}) {
    ClusterOptions options = std::string(mode) == "GPDB6"   ? Gpdb6Options()
                             : std::string(mode) == "GPDB5" ? Gpdb5Options()
                                                            : PostgresOptions();
    std::string series = std::string("Fig12/TPCB/") + mode;
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(), [series, options](::benchmark::State& state) {
          RunTpcbPoint(state, series, options);
        });
    for (int64_t clients : Points({10, 50, 100, 200, 400})) b->Arg(clients);
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "fig12_tpcb", gphtap::bench::RegisterAll);
}
