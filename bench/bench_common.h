// Shared benchmark setup: the simulated "testbed" configurations standing in
// for the paper's 8-host x 4-segment cluster (see DESIGN.md substitutions),
// and the GPDB5 / GPDB6 / PostgreSQL mode presets.
#ifndef GPHTAP_BENCH_BENCH_COMMON_H_
#define GPHTAP_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/gphtap.h"
#include "common/clock.h"
#include "workload/chbench.h"
#include "workload/driver.h"
#include "workload/htap.h"
#include "workload/tpcb.h"

namespace gphtap {
namespace bench {

/// `--smoke`: CI-sized run — short points, small cluster, first arg of every
/// sweep only. Set by BenchMain before benchmark::Initialize.
inline bool& SmokeFlag() {
  static bool smoke = false;
  return smoke;
}

/// Per-point workload duration; override with GPHTAP_BENCH_MS for longer runs.
inline int64_t PointMs() {
  const char* ms = std::getenv("GPHTAP_BENCH_MS");
  if (ms != nullptr) return std::atoll(ms);
  return SmokeFlag() ? 100 : 800;
}

inline int NumSegments() {
  const char* env = std::getenv("GPHTAP_BENCH_SEGMENTS");
  if (env != nullptr) return std::atoi(env);
  return SmokeFlag() ? 4 : 16;
}

/// Sweep values for one benchmark axis; collapses to the first value under
/// --smoke so every registered series still produces one JSON point.
inline std::vector<int64_t> Points(std::initializer_list<int64_t> all) {
  std::vector<int64_t> v(all);
  if (SmokeFlag() && v.size() > 1) v.resize(1);
  return v;
}

/// GPDB6: all three paper contributions enabled.
inline ClusterOptions Gpdb6Options() {
  ClusterOptions o;
  o.num_segments = NumSegments();
  o.gdd_enabled = true;
  o.one_phase_commit_enabled = true;
  o.direct_dispatch_enabled = true;
  o.gdd_period_us = 20'000;
  o.net_latency_us = 30;  // simulated wire latency per message
  o.fsync_cost_us = 30;   // simulated fsync
  return o;
}

/// GPDB5 baseline: table-level ExclusiveLock for UPDATE/DELETE, always 2PC.
inline ClusterOptions Gpdb5Options() {
  ClusterOptions o = Gpdb6Options();
  o.gdd_enabled = false;
  o.one_phase_commit_enabled = false;
  return o;
}

/// "PostgreSQL": a single-node database — one segment, no interconnect cost.
inline ClusterOptions PostgresOptions() {
  ClusterOptions o = Gpdb6Options();
  o.num_segments = 1;
  o.net_latency_us = 0;
  return o;
}

/// Standard TPC-B sizing for the throughput benches. pgbench-style: enough
/// branches that the branch-row hotspot does not serialize high client counts.
inline TpcbConfig BenchTpcb() {
  TpcbConfig c;
  c.scale = 100;
  c.accounts_per_branch = 200;  // 20k accounts, 1k tellers, 100 branches
  return c;
}

inline void ReportDriver(::benchmark::State& state, const DriverResult& r) {
  state.counters["tps"] = r.Tps();
  state.counters["committed"] = static_cast<double>(r.committed);
  state.counters["aborted"] = static_cast<double>(r.aborted);
  state.counters["p50_us"] = static_cast<double>(r.latency_us.Percentile(50));
  state.counters["p95_us"] = static_cast<double>(r.latency_us.Percentile(95));
  state.counters["p99_us"] = static_cast<double>(r.latency_us.Percentile(99));
}

// ---------------------------------------------------------------------------
// BENCH_<name>.json emission: every binary records one JSON point per
// (series, arg) and writes the file on exit. The google-benchmark State has
// no series-name accessor in this version, so the series string is passed
// explicitly by the registration code.
// ---------------------------------------------------------------------------

using JsonFields = std::vector<std::pair<std::string, double>>;

struct BenchPoint {
  std::string series;
  int64_t arg = 0;
  JsonFields fields;
};

inline std::vector<BenchPoint>& JsonPoints() {
  static std::vector<BenchPoint> points;
  return points;
}

inline void RecordPoint(std::string series, int64_t arg, JsonFields fields) {
  static std::mutex mu;
  std::lock_guard<std::mutex> g(mu);
  // Google-benchmark re-runs a benchmark while tuning its iteration count;
  // keep only the final (longest, most settled) measurement per (series, arg).
  for (BenchPoint& p : JsonPoints()) {
    if (p.series == series && p.arg == arg) {
      p.fields = std::move(fields);
      return;
    }
  }
  JsonPoints().push_back(BenchPoint{std::move(series), arg, std::move(fields)});
}

/// The required keys: throughput + latency percentiles + commit counts.
inline void AddDriverFields(const DriverResult& r, JsonFields* fields) {
  fields->push_back({"throughput_tps", r.Tps()});
  fields->push_back({"p50_us", static_cast<double>(r.latency_us.Percentile(50))});
  fields->push_back({"p95_us", static_cast<double>(r.latency_us.Percentile(95))});
  fields->push_back({"p99_us", static_cast<double>(r.latency_us.Percentile(99))});
  fields->push_back({"committed", static_cast<double>(r.committed)});
  fields->push_back({"aborted", static_cast<double>(r.aborted)});
}

/// Non-zero subsystem counters from Cluster::StatsSnapshot(), as `ctr.<name>`.
inline void AddClusterCounters(Cluster* cluster, JsonFields* fields) {
  MetricsSnapshot snap = cluster->StatsSnapshot();
  for (const auto& [name, value] : snap.counters) {
    if (value != 0) fields->push_back({"ctr." + name, static_cast<double>(value)});
  }
}

/// Driver point: benchmark counters + JSON point in one call.
inline void ReportPoint(::benchmark::State& state, const std::string& series,
                        int64_t arg, const DriverResult& r, Cluster* cluster,
                        JsonFields extra = {}) {
  ReportDriver(state, r);
  JsonFields fields;
  AddDriverFields(r, &fields);
  for (auto& e : extra) fields.push_back(std::move(e));
  if (cluster != nullptr) AddClusterCounters(cluster, &fields);
  RecordPoint(series, arg, std::move(fields));
}

inline void WriteBenchJson(const std::string& bench_name) {
  std::string path = "BENCH_" + bench_name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"smoke\": %s,\n  \"points\": [\n",
               bench_name.c_str(), SmokeFlag() ? "true" : "false");
  const auto& points = JsonPoints();
  for (size_t i = 0; i < points.size(); ++i) {
    const BenchPoint& p = points[i];
    std::fprintf(f, "    {\"series\": \"%s\", \"arg\": %lld", p.series.c_str(),
                 static_cast<long long>(p.arg));
    for (const auto& [key, value] : p.fields) {
      double v = std::isfinite(value) ? value : 0.0;
      std::fprintf(f, ", \"%s\": %.6g", key.c_str(), v);
    }
    std::fprintf(f, "}%s\n", i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu points)\n", path.c_str(), points.size());
}

/// Shared main: strips --smoke, registers, runs, writes BENCH_<name>.json.
inline int BenchMain(int argc, char** argv, const std::string& json_name,
                     void (*register_all)()) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      SmokeFlag() = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  if (register_all != nullptr) register_all();
  ::benchmark::Initialize(&filtered_argc, args.data());
  ::benchmark::RunSpecifiedBenchmarks();
  WriteBenchJson(json_name);
  ::benchmark::Shutdown();
  return 0;
}

/// Micro-benchmark point: per-iteration latency histogram -> the same
/// required keys as the driver-based benches.
inline void RecordMicroPoint(const std::string& series, int64_t arg,
                             const Histogram& lat, double seconds,
                             Cluster* cluster = nullptr) {
  JsonFields fields;
  fields.push_back({"throughput_tps",
                    seconds > 0 ? static_cast<double>(lat.count()) / seconds : 0});
  fields.push_back({"p50_us", static_cast<double>(lat.Percentile(50))});
  fields.push_back({"p95_us", static_cast<double>(lat.Percentile(95))});
  fields.push_back({"p99_us", static_cast<double>(lat.Percentile(99))});
  fields.push_back({"iterations", static_cast<double>(lat.count())});
  if (cluster != nullptr) AddClusterCounters(cluster, &fields);
  RecordPoint(series, arg, std::move(fields));
}

/// Runs the benchmark loop timing every iteration; one JSON point on return.
/// Throughput is computed from the accumulated *active* per-iteration time,
/// not the wall clock of the whole loop: under a capped/short run the harness
/// overhead between iterations (KeepRunning bookkeeping, timer reads) is a
/// visible fraction of the loop and used to deflate fast series the most —
/// precisely the vectorized kernels this file exists to compare.
template <typename Fn>
inline void RunMicro(::benchmark::State& state, const std::string& series,
                     int64_t arg, Fn&& fn) {
  Histogram lat;
  int64_t active_us = 0;
  for (auto _ : state) {
    Stopwatch sw;
    fn();
    int64_t us = sw.ElapsedMicros();
    active_us += us;
    lat.Record(us);
  }
  RecordMicroPoint(series, arg, lat, static_cast<double>(active_us) / 1e6);
}

}  // namespace bench
}  // namespace gphtap

#endif  // GPHTAP_BENCH_BENCH_COMMON_H_
