// Shared benchmark setup: the simulated "testbed" configurations standing in
// for the paper's 8-host x 4-segment cluster (see DESIGN.md substitutions),
// and the GPDB5 / GPDB6 / PostgreSQL mode presets.
#ifndef GPHTAP_BENCH_BENCH_COMMON_H_
#define GPHTAP_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "api/gphtap.h"
#include "workload/chbench.h"
#include "workload/driver.h"
#include "workload/htap.h"
#include "workload/tpcb.h"

namespace gphtap {
namespace bench {

/// Per-point workload duration; override with GPHTAP_BENCH_MS for longer runs.
inline int64_t PointMs() {
  const char* ms = std::getenv("GPHTAP_BENCH_MS");
  return ms != nullptr ? std::atoll(ms) : 800;
}

inline int NumSegments() {
  const char* env = std::getenv("GPHTAP_BENCH_SEGMENTS");
  return env != nullptr ? std::atoi(env) : 16;
}

/// GPDB6: all three paper contributions enabled.
inline ClusterOptions Gpdb6Options() {
  ClusterOptions o;
  o.num_segments = NumSegments();
  o.gdd_enabled = true;
  o.one_phase_commit_enabled = true;
  o.direct_dispatch_enabled = true;
  o.gdd_period_us = 20'000;
  o.net_latency_us = 30;  // simulated wire latency per message
  o.fsync_cost_us = 30;   // simulated fsync
  return o;
}

/// GPDB5 baseline: table-level ExclusiveLock for UPDATE/DELETE, always 2PC.
inline ClusterOptions Gpdb5Options() {
  ClusterOptions o = Gpdb6Options();
  o.gdd_enabled = false;
  o.one_phase_commit_enabled = false;
  return o;
}

/// "PostgreSQL": a single-node database — one segment, no interconnect cost.
inline ClusterOptions PostgresOptions() {
  ClusterOptions o = Gpdb6Options();
  o.num_segments = 1;
  o.net_latency_us = 0;
  return o;
}

/// Standard TPC-B sizing for the throughput benches. pgbench-style: enough
/// branches that the branch-row hotspot does not serialize high client counts.
inline TpcbConfig BenchTpcb() {
  TpcbConfig c;
  c.scale = 100;
  c.accounts_per_branch = 200;  // 20k accounts, 1k tellers, 100 branches
  return c;
}

inline void ReportDriver(::benchmark::State& state, const DriverResult& r) {
  state.counters["tps"] = r.Tps();
  state.counters["committed"] = static_cast<double>(r.committed);
  state.counters["aborted"] = static_cast<double>(r.aborted);
  state.counters["p50_us"] = static_cast<double>(r.latency_us.Percentile(50));
  state.counters["p95_us"] = static_cast<double>(r.latency_us.Percentile(95));
}

}  // namespace bench
}  // namespace gphtap

#endif  // GPHTAP_BENCH_BENCH_COMMON_H_
