// Vectorized kernel microbenchmarks: the batch engine's filter / aggregate /
// end-to-end scan-query paths against their tuple-at-a-time equivalents on
// identical data. These measure real executor CPU (no simulated per-row
// charge), the quantity the Fig16 VecAblation series scales up.
#include "bench_common.h"
#include "exec/agg_ops.h"
#include "plan/expr.h"
#include "vec/column_batch.h"
#include "vec/vec_kernels.h"

namespace gphtap {
namespace bench {
namespace {

// col0: int64 ascending, col1: int64 pseudo-random, col2: double.
ColumnBatch MakeBatch(int64_t rows) {
  ColumnBatch b;
  b.Reset(3, static_cast<size_t>(rows));
  Rng rng(42);
  for (int64_t i = 0; i < rows; ++i) {
    b.columns[0].Append(Datum(i));
    b.columns[1].Append(Datum(static_cast<int64_t>(rng.Uniform(1000))));
    b.columns[2].Append(Datum(static_cast<double>(i) * 0.5));
  }
  b.rows = static_cast<size_t>(rows);
  b.SelectAll();
  return b;
}

ExprPtr BenchPredicate() {
  // col1 < 500 AND col0 % 3 != 0 — selective enough to exercise both branches.
  return Expr::Binary(
      BinOp::kAnd,
      Expr::Binary(BinOp::kLt, Expr::Column(1), Expr::Const(Datum(int64_t{500}))),
      Expr::Binary(BinOp::kNe,
                   Expr::Binary(BinOp::kMod, Expr::Column(0),
                                Expr::Const(Datum(int64_t{3}))),
                   Expr::Const(Datum(int64_t{0}))));
}

void BM_FilterVec(::benchmark::State& state) {
  int64_t rows = state.range(0);
  ColumnBatch base = MakeBatch(rows);
  ExprPtr pred = BenchPredicate();
  RunMicro(state, "VecKernels/Filter/Vectorized", rows, [&] {
    base.SelectAll();
    Status s = VecFilterBatch(*pred, &base);
    if (!s.ok()) std::abort();
    ::benchmark::DoNotOptimize(base.sel.size());
  });
}

void BM_FilterRow(::benchmark::State& state) {
  int64_t rows = state.range(0);
  ColumnBatch base = MakeBatch(rows);
  std::vector<Row> materialized;
  base.AppendTo(&materialized);
  ExprPtr pred = BenchPredicate();
  RunMicro(state, "VecKernels/Filter/RowEngine", rows, [&] {
    size_t kept = 0;
    for (const Row& row : materialized) {
      auto ok = EvalPredicate(*pred, row);
      if (!ok.ok()) std::abort();
      kept += *ok ? 1 : 0;
    }
    ::benchmark::DoNotOptimize(kept);
  });
}

void BM_AggVec(::benchmark::State& state) {
  int64_t rows = state.range(0);
  ColumnBatch base = MakeBatch(rows);
  RunMicro(state, "VecKernels/Agg/Vectorized", rows, [&] {
    AggState st;
    VecAggUpdate(AggFunc::kSum, base.columns[1], base.sel, &st);
    ::benchmark::DoNotOptimize(st.isum);
  });
}

void BM_AggRow(::benchmark::State& state) {
  int64_t rows = state.range(0);
  ColumnBatch base = MakeBatch(rows);
  std::vector<Row> materialized;
  base.AppendTo(&materialized);
  RunMicro(state, "VecKernels/Agg/RowEngine", rows, [&] {
    AggState st;
    for (const Row& row : materialized) {
      AggUpdateValue(AggFunc::kSum, &st, row[1]);
    }
    ::benchmark::DoNotOptimize(st.isum);
  });
}

// Redistribution routing. "RowEngine" is the old VecPartitionBatch behavior —
// materialize a full Row per selected tuple just to hash it — kept here as the
// before/after baseline for the column-direct hashing fix.
void BM_PartitionVec(::benchmark::State& state) {
  int64_t rows = state.range(0);
  ColumnBatch base = MakeBatch(rows);
  const std::vector<int> hash_cols = {1};
  const int targets = 4;
  // Routing assertion: the column-direct hash must agree with HashRowKey on
  // materialized rows for every tuple, or redistribution would mis-place data.
  {
    std::vector<ColumnBatch> parts;
    Status s = VecPartitionBatch(base, hash_cols, targets, &parts);
    if (!s.ok()) std::abort();
    size_t total = 0;
    for (int t = 0; t < targets; ++t) {
      for (int32_t r : parts[static_cast<size_t>(t)].sel) {
        Row row = parts[static_cast<size_t>(t)].MaterializeRow(r);
        if (static_cast<int>(HashRowKey(row, hash_cols) %
                             static_cast<uint64_t>(targets)) != t) {
          std::abort();
        }
        ++total;
      }
    }
    if (total != static_cast<size_t>(rows)) std::abort();
  }
  RunMicro(state, "VecKernels/Partition/Vectorized", rows, [&] {
    std::vector<ColumnBatch> parts;
    Status s = VecPartitionBatch(base, hash_cols, targets, &parts);
    if (!s.ok()) std::abort();
    ::benchmark::DoNotOptimize(parts[0].rows);
  });
}

void BM_PartitionRow(::benchmark::State& state) {
  int64_t rows = state.range(0);
  ColumnBatch base = MakeBatch(rows);
  const std::vector<int> hash_cols = {1};
  const int targets = 4;
  RunMicro(state, "VecKernels/Partition/RowEngine", rows, [&] {
    std::vector<ColumnBatch> parts(static_cast<size_t>(targets));
    for (auto& p : parts) p.Reset(base.NumColumns(), base.rows / targets + 1);
    for (int32_t r : base.sel) {
      Row row = base.MaterializeRow(r);  // the old per-tuple materialization
      int t = static_cast<int>(HashRowKey(row, hash_cols) %
                               static_cast<uint64_t>(targets));
      parts[static_cast<size_t>(t)].AppendRow(std::move(row));
    }
    ::benchmark::DoNotOptimize(parts[0].rows);
  });
}

// End to end: filtered aggregation over an AO-column table, batch engine
// against row engine, through the full SQL/plan/motion stack.
void RunScanQuery(::benchmark::State& state, const std::string& series,
                  bool vectorized) {
  int64_t rows = state.range(0);
  ClusterOptions options;
  options.num_segments = 2;
  options.vectorized_execution_enabled = vectorized;
  Cluster cluster(options);
  auto session = cluster.Connect();
  auto r = session->Execute(
      "CREATE TABLE vb (k int, v int, w double) WITH (storage=ao_column) "
      "DISTRIBUTED BY (k)");
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return;
  }
  TableDef def = *cluster.LookupTable("vb");
  std::vector<Row> data;
  Rng rng(7);
  for (int64_t i = 0; i < rows; ++i) {
    data.push_back(Row{Datum(i), Datum(static_cast<int64_t>(rng.Uniform(1000))),
                       Datum(static_cast<double>(i))});
  }
  if (!session->ExecuteInsert(def, data).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  RunMicro(state, series, rows, [&] {
    auto q = session->Execute(
        "SELECT count(*) AS n, sum(v) AS s FROM vb WHERE v < 500");
    if (!q.ok()) std::abort();
    ::benchmark::DoNotOptimize(q->rows);
  });
}

void BM_ScanQueryVec(::benchmark::State& state) {
  RunScanQuery(state, "VecKernels/ScanQuery/Vectorized", true);
}

void BM_ScanQueryRow(::benchmark::State& state) {
  RunScanQuery(state, "VecKernels/ScanQuery/RowEngine", false);
}

void RegisterAll() {
  for (auto* fn : {BM_FilterVec, BM_FilterRow, BM_AggVec, BM_AggRow,
                   BM_PartitionVec, BM_PartitionRow}) {
    const char* name = fn == BM_FilterVec      ? "VecKernels/Filter/Vectorized"
                       : fn == BM_FilterRow    ? "VecKernels/Filter/RowEngine"
                       : fn == BM_AggVec       ? "VecKernels/Agg/Vectorized"
                       : fn == BM_AggRow       ? "VecKernels/Agg/RowEngine"
                       : fn == BM_PartitionVec ? "VecKernels/Partition/Vectorized"
                                               : "VecKernels/Partition/RowEngine";
    auto* b = ::benchmark::RegisterBenchmark(name, fn);
    for (int64_t rows : Points({4096, 65536})) b->Args({rows});
    b->Unit(::benchmark::kMicrosecond);
  }
  for (auto* fn : {BM_ScanQueryVec, BM_ScanQueryRow}) {
    const char* name = fn == BM_ScanQueryVec ? "VecKernels/ScanQuery/Vectorized"
                                             : "VecKernels/ScanQuery/RowEngine";
    auto* b = ::benchmark::RegisterBenchmark(name, fn);
    for (int64_t rows : Points({20000})) b->Args({rows});
    b->Unit(::benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "vec_kernels",
                                  gphtap::bench::RegisterAll);
}
