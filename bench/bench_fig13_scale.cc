// Figure 13: GPDB6 vs single-node PostgreSQL as data size grows. Paper shape:
// PostgreSQL wins at small scale (no distributed overheads) but collapses once
// the working set exceeds its buffer cache, while the MPP cluster — holding
// 1/Nth of the data per segment — stays steady.
//
// The buffer pool is sized so the largest scale exceeds a single node's cache
// but still fits per-segment caches (see DESIGN.md substitutions).
#include "bench_common.h"

namespace gphtap {
namespace bench {
namespace {

// The disk-read cost is deliberately large relative to the (laptop-scale)
// transaction cost: it compresses the paper's 1.4 TB working-set effect into a
// 400k-row run. What matters is the shape: the single node starts missing its
// cache as data grows; each MPP segment keeps holding 1/16th of the data.
constexpr size_t kPoolPages = 600;      // per-node cache
constexpr int64_t kMissCostUs = 1500;   // simulated disk read

void RunScalePoint(::benchmark::State& state, const std::string& series,
                   bool postgres) {
  int accounts_per_branch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ClusterOptions options = postgres ? PostgresOptions() : Gpdb6Options();
    options.buffer_pool.capacity_pages = kPoolPages;
    options.buffer_pool.miss_cost_us = kMissCostUs;
    Cluster cluster(options);
    TpcbConfig config;
    config.scale = 8;  // few branches: the hot rows stay cached on both systems
    config.accounts_per_branch = accounts_per_branch;
    Status load = LoadTpcb(&cluster, config);
    if (!load.ok()) {
      state.SkipWithError(load.ToString().c_str());
      return;
    }
    DriverOptions opts;
    opts.num_clients = 16;
    opts.duration_ms = PointMs();
    DriverResult r = RunWorkload(&cluster, opts, [&](Session* s, Rng& rng) {
      return RunTpcbTransaction(s, rng, config);
    });
    // Aggregate buffer hit rate across nodes.
    uint64_t hits = 0, misses = 0;
    for (int i = 0; i < cluster.num_segments(); ++i) {
      auto st = cluster.segment(i)->pool().stats();
      hits += st.hits;
      misses += st.misses;
    }
    double cache_hit_pct =
        hits + misses > 0
            ? 100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 100.0;
    state.counters["cache_hit_pct"] = cache_hit_pct;
    state.counters["accounts"] = static_cast<double>(config.num_accounts());
    ReportPoint(state, series, accounts_per_branch, r, &cluster,
                {{"cache_hit_pct", cache_hit_pct},
                 {"accounts", static_cast<double>(config.num_accounts())}});
  }
}

void RegisterAll() {
  for (bool postgres : {false, true}) {
    std::string series = postgres ? "Fig13/Scale/PostgreSQL" : "Fig13/Scale/GPDB6";
    auto* b = ::benchmark::RegisterBenchmark(
        series.c_str(), [series, postgres](::benchmark::State& state) {
          RunScalePoint(state, series, postgres);
        });
    // Accounts per branch x 8 branches: 16k rows (250 pages, fits everywhere),
    // 120k rows (~1.9k pages, exceeds the single node's 400-page cache), 400k
    // rows (~6.3k pages, far exceeds it); 16 segments hold 1/16th each.
    for (int64_t apb : Points({2'000, 15'000, 40'000})) b->Arg(apb);
    b->Unit(::benchmark::kMillisecond)->Iterations(1)->UseRealTime();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "fig13_scale", gphtap::bench::RegisterAll);
}
