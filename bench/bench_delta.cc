// Columnar delta-store benchmarks: how fresh is "fresh", and what does it buy.
//
//   Delta/Freshness/Lag        — commit-to-columnar latency: time from a heap
//                                INSERT returning to the delta feed having
//                                applied every change-log record it produced.
//   Delta/Freshness/Merged     — grouped-aggregate tps over heap rows loaded
//                                moments earlier, served by the vectorized
//                                delta-merged scan.
//   Delta/Freshness/RowEngine  — the same query on the same fresh data with
//                                the row engine (SET vectorized_execution =
//                                off); the baseline the merged scan must beat.
//   Delta/Seal/Throughput      — rows/s drained from open delta runs into
//                                sealed compressed groups by forced seal
//                                passes under a steady insert feed.
#include "bench_common.h"
#include "delta/delta_index.h"

namespace gphtap {
namespace bench {
namespace {

ClusterOptions DeltaOptions() {
  ClusterOptions o;
  o.num_segments = 2;
  o.vectorized_execution_enabled = true;
  o.delta_store_enabled = true;
  o.delta_seal_period_us = 0;  // benches control sealing explicitly
  return o;
}

// Blocks until every segment's delta feed has applied its whole change log.
void WaitAllApplied(Cluster* cluster) {
  for (int i = 0; i < cluster->num_segments(); ++i) {
    DeltaIndex* di = cluster->delta_index(i);
    if (di == nullptr) std::abort();
    Status s = di->WaitForApplied(cluster->segment(i)->change_log()->size(),
                                  /*timeout_us=*/10'000'000);
    if (!s.ok()) std::abort();
  }
}

// Commit-to-columnar freshness: one single-row INSERT per iteration, timed
// until the change-log records it appended are applied on every segment.
void BM_FreshnessLag(::benchmark::State& state) {
  ClusterOptions options = DeltaOptions();
  options.delta_seal_period_us = 20'000;  // the daemon runs, as in production
  Cluster cluster(options);
  auto session = cluster.Connect();
  auto r = session->Execute(
      "CREATE TABLE lag (k int, v int) DISTRIBUTED BY (k)");
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return;
  }
  int64_t k = 0;
  RunMicro(state, "Delta/Freshness/Lag", 1, [&] {
    auto ins = session->Execute("INSERT INTO lag VALUES (" + std::to_string(k) +
                                ", " + std::to_string(k % 97) + ")");
    if (!ins.ok()) std::abort();
    ++k;
    WaitAllApplied(&cluster);
  });
}

// Fresh-data analytics: load heap rows, then hammer a CH-benCH-shaped grouped
// aggregate over them. `vectorized` toggles delta-merged vs row engine on the
// same session, same data, same statement.
void RunFreshScan(::benchmark::State& state, const std::string& series,
                  bool vectorized) {
  int64_t rows = state.range(0);
  Cluster cluster(DeltaOptions());
  auto session = cluster.Connect();
  auto r = session->Execute(
      "CREATE TABLE fresh (k int, grp int, v int) DISTRIBUTED BY (k)");
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return;
  }
  TableDef def = *cluster.LookupTable("fresh");
  std::vector<Row> data;
  Rng rng(7);
  for (int64_t i = 0; i < rows; ++i) {
    data.push_back(Row{Datum(i), Datum(static_cast<int64_t>(i % 11)),
                       Datum(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  if (!session->ExecuteInsert(def, data).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  if (!vectorized &&
      !session->Execute("SET vectorized_execution = off").ok()) {
    state.SkipWithError("override failed");
    return;
  }
  RunMicro(state, series, rows, [&] {
    auto q = session->Execute(
        "SELECT grp, count(*) AS n, sum(v) AS s FROM fresh "
        "WHERE v < 500 GROUP BY grp");
    if (!q.ok()) std::abort();
    ::benchmark::DoNotOptimize(q->rows);
  });
}

void BM_FreshScanMerged(::benchmark::State& state) {
  RunFreshScan(state, "Delta/Freshness/Merged", true);
}

void BM_FreshScanRow(::benchmark::State& state) {
  RunFreshScan(state, "Delta/Freshness/RowEngine", false);
}

// Seal throughput: each iteration feeds a burst of inserts and then forces a
// seal pass on every segment, timing only the seal. The JSON point reports
// rows drained per second of seal time.
void BM_SealThroughput(::benchmark::State& state) {
  int64_t burst = state.range(0);
  Cluster cluster(DeltaOptions());
  auto session = cluster.Connect();
  auto r = session->Execute(
      "CREATE TABLE seal (k int, v int) DISTRIBUTED BY (k)");
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return;
  }
  TableDef def = *cluster.LookupTable("seal");
  uint64_t sealed_before = cluster.StatsSnapshot().counter("delta.sealed_rows");
  Histogram lat;
  int64_t active_us = 0;
  int64_t k = 0;
  for (auto _ : state) {
    std::vector<Row> data;
    for (int64_t i = 0; i < burst; ++i, ++k) {
      data.push_back(Row{Datum(k), Datum(k % 13)});
    }
    if (!session->ExecuteInsert(def, data).ok()) std::abort();
    WaitAllApplied(&cluster);
    Stopwatch sw;
    for (int i = 0; i < cluster.num_segments(); ++i) {
      if (!cluster.SealDeltaNow(i).ok()) std::abort();
    }
    int64_t us = sw.ElapsedMicros();
    active_us += us;
    lat.Record(us);
  }
  uint64_t sealed =
      cluster.StatsSnapshot().counter("delta.sealed_rows") - sealed_before;
  JsonFields fields;
  fields.push_back({"throughput_tps",
                    active_us > 0 ? static_cast<double>(sealed) * 1e6 /
                                        static_cast<double>(active_us)
                                  : 0});
  fields.push_back({"p50_us", static_cast<double>(lat.Percentile(50))});
  fields.push_back({"p95_us", static_cast<double>(lat.Percentile(95))});
  fields.push_back({"p99_us", static_cast<double>(lat.Percentile(99))});
  fields.push_back({"rows_sealed", static_cast<double>(sealed)});
  AddClusterCounters(&cluster, &fields);
  RecordPoint("Delta/Seal/Throughput", burst, std::move(fields));
  state.counters["rows_sealed"] = static_cast<double>(sealed);
}

void RegisterAll() {
  {
    auto* b = ::benchmark::RegisterBenchmark("Delta/Freshness/Lag",
                                             BM_FreshnessLag);
    b->Args({1});
    b->Unit(::benchmark::kMicrosecond);
  }
  for (auto* fn : {BM_FreshScanMerged, BM_FreshScanRow}) {
    const char* name = fn == BM_FreshScanMerged ? "Delta/Freshness/Merged"
                                                : "Delta/Freshness/RowEngine";
    auto* b = ::benchmark::RegisterBenchmark(name, fn);
    for (int64_t rows : Points({20000, 100000})) b->Args({rows});
    b->Unit(::benchmark::kMicrosecond);
  }
  {
    auto* b = ::benchmark::RegisterBenchmark("Delta/Seal/Throughput",
                                             BM_SealThroughput);
    for (int64_t burst : Points({4096, 16384})) b->Args({burst});
    b->Unit(::benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gphtap

int main(int argc, char** argv) {
  return gphtap::bench::BenchMain(argc, argv, "delta",
                                  gphtap::bench::RegisterAll);
}
