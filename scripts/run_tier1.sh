#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency-heavy
# subset (locks, GDD, commit protocol, mirrors, crash recovery) again under
# ThreadSanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

cmake -B build-tsan -S . -DGPHTAP_SANITIZE=thread
cmake --build build-tsan -j
(cd build-tsan && ctest --output-on-failure -j "$(nproc)" -R \
  'lock_manager_test|lock_modes_test|gdd_daemon_test|gdd_algorithm_test|gdd_cases_test|commit_protocol_test|mirror_test|fault_injector_test|crash_recovery_test|failover_test')
