#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency-heavy
# subset (locks, GDD, commit protocol, mirrors, crash recovery, metrics)
# again under ThreadSanitizer, then one smoke-mode benchmark whose
# BENCH_*.json output is validated for the required keys.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

cmake -B build-tsan -S . -DGPHTAP_SANITIZE=thread
cmake --build build-tsan -j
(cd build-tsan && ctest --output-on-failure -j "$(nproc)" -R \
  'lock_manager_test|lock_modes_test|gdd_daemon_test|gdd_algorithm_test|gdd_cases_test|commit_protocol_test|mirror_test|fault_injector_test|crash_recovery_test|failover_test|metrics_test|observability_test|motion_exchange_test|column_batch_test|vec_executor_test|vec_differential_test|ao_visibility_test|ao_compaction_test|reorg_test|expand_test|wait_event_test|system_views_test|timeout_test|chaos_test|plan_cache_test|prepare_execute_test|delta_store_test|delta_scan_test|delta_differential_test|stats_test|stats_views_test|frontend_test')

# Advisory bench diffing: the previous run's BENCH_*.json is kept as .prev and
# a per-series tps/p99 delta table is printed after each fresh run. Informative
# only — smoke numbers are too noisy to gate on — so regressions surface in
# the log without failing the build.
snapshot_prev() { if [ -f "build/$1" ]; then cp "build/$1" "build/$1.prev"; fi; }
diff_prev() {
  if [ -f "build/$1.prev" ]; then
    python3 scripts/bench_diff.py "build/$1.prev" "build/$1"
  fi
}

# Smoke-run one benchmark and validate its machine-readable output. The run
# also exports a Chrome trace_event dump of the traced queries, validated
# below (loadable in Perfetto / about:tracing).
snapshot_prev BENCH_fig12_tpcb.json
(cd build && GPHTAP_BENCH_MS=100 GPHTAP_TRACE_OUT=TRACE_fig12_tpcb.json \
  ./bench/bench_fig12_tpcb --smoke)
diff_prev BENCH_fig12_tpcb.json
python3 - build/BENCH_fig12_tpcb.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "fig12_tpcb", doc
assert doc["points"], "no points recorded"
required = {"throughput_tps", "p50_us", "p95_us", "p99_us"}
for point in doc["points"]:
    missing = required - set(point)
    assert not missing, f"point {point.get('series')} missing {missing}"
print(f"BENCH json OK: {len(doc['points'])} points")
EOF

# Validate the Chrome trace export: well-formed trace_event JSON where every
# event is a complete ("X") span carrying ts + dur.
python3 - build/TRACE_fig12_tpcb.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "no trace events exported"
for ev in events:
    assert ev["ph"] == "X", ev
    assert isinstance(ev["ts"], int) and ev["ts"] >= 0, ev
    assert isinstance(ev["dur"], int) and ev["dur"] >= 0, ev
    assert "pid" in ev and "tid" in ev and "name" in ev, ev
names = {ev["name"] for ev in events}
assert any(n == "query" for n in names), f"no root query span in {sorted(names)[:10]}"
print(f"TRACE json OK: {len(events)} spans across {len({e['pid'] for e in events})} queries")
EOF

# Chaos smoke: a 10-second seeded fault schedule (crashes + failover + delay
# + drop) over concurrent transfers and scans. The binary exits non-zero on
# any safety-invariant violation; the JSON carries the resilience rates.
snapshot_prev BENCH_chaos.json
(cd build && GPHTAP_CHAOS_MS=10000 ./bench/bench_chaos --smoke)
diff_prev BENCH_chaos.json
python3 - build/BENCH_chaos.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "chaos", doc
assert doc["points"], "no points recorded"
required = {"throughput_tps", "p50_us", "p95_us", "p99_us",
            "abort_rate", "retry_rate", "shed_rate", "recovery_p95_us"}
for point in doc["points"]:
    missing = required - set(point)
    assert not missing, f"point {point.get('series')} missing {missing}"
    assert point["faults_injected"] > 0, f"no faults injected in {point['series']}"
print(f"BENCH chaos json OK: {len(doc['points'])} points")
EOF

# Expansion smoke: transfers flow while the cluster grows 3 -> 5 segments and
# rebalances online. Validates throughput before/during/after, a bounded
# cutover pause, rows actually moved, and data served from the new segments.
snapshot_prev BENCH_expand.json
(cd build && GPHTAP_BENCH_MS=300 ./bench/bench_expand --smoke)
diff_prev BENCH_expand.json
python3 - build/BENCH_expand.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "expand", doc
points = {p["series"]: p for p in doc["points"]}
required = {"throughput_tps", "p50_us", "p95_us", "p99_us"}
for name in ("Expand/Online/Before", "Expand/Online/During", "Expand/Online/After"):
    assert name in points, f"missing {name} in {sorted(points)}"
    missing = required - set(points[name])
    assert not missing, f"{name} missing {missing}"
during = points["Expand/Online/During"]
assert during["rows_moved"] > 0, "rebalance moved no rows"
assert during["new_segment_rows"] > 0, "new segments serve no data"
assert during["cutover_pause_us"] > 0, "no cutover pause recorded"
for name in ("Expand/Online/Before", "Expand/Online/After"):
    assert points[name]["throughput_tps"] > 0, f"{name} made no progress"
print(f"BENCH expand json OK: cutover pause p99 {during['cutover_pause_us']:.0f}us, "
      f"{during['rows_moved']:.0f} rows moved")
EOF

# Vectorized-kernel microbench: smoke-run, validate the JSON, and assert the
# vectorized path actually wins — every Vectorized series must beat (or tie)
# its RowEngine twin at every swept arg.
snapshot_prev BENCH_vec_kernels.json
(cd build && GPHTAP_BENCH_MS=100 ./bench/bench_vec_kernels --smoke)
diff_prev BENCH_vec_kernels.json
python3 - build/BENCH_vec_kernels.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "vec_kernels", doc
assert doc["points"], "no points recorded"
required = {"throughput_tps", "p50_us", "p95_us", "p99_us"}
series = {p["series"] for p in doc["points"]}
for point in doc["points"]:
    missing = required - set(point)
    assert not missing, f"point {point.get('series')} missing {missing}"
by_key = {(p["series"], p["arg"]): p for p in doc["points"]}
for pair in ("Filter", "Agg", "ScanQuery", "Partition"):
    vec_name = f"VecKernels/{pair}/Vectorized"
    row_name = f"VecKernels/{pair}/RowEngine"
    assert vec_name in series, f"missing {pair} vec series"
    assert row_name in series, f"missing {pair} row series"
    for (name, arg), point in sorted(by_key.items()):
        if name != vec_name:
            continue
        row = by_key.get((row_name, arg))
        assert row is not None, f"{row_name} has no point at arg {arg}"
        vec_tps, row_tps = point["throughput_tps"], row["throughput_tps"]
        assert vec_tps >= row_tps, (
            f"{pair}@{arg}: vectorized {vec_tps:.0f} tps < row {row_tps:.0f} tps")
        print(f"  {pair}@{arg}: vec {vec_tps:.0f} tps vs row {row_tps:.0f} tps "
              f"({vec_tps / row_tps:.2f}x)")
print(f"BENCH vec json OK: {len(doc['points'])} points, vectorized wins everywhere")
EOF

# Delta-store bench: smoke-run, validate the JSON, and assert the vectorized
# delta-merged scan over fresh heap rows beats (or ties) the row engine on the
# same data at every swept arg, that the freshness lag was measured, and that
# forced seal passes actually drained rows.
snapshot_prev BENCH_delta.json
(cd build && GPHTAP_BENCH_MS=100 ./bench/bench_delta --smoke)
diff_prev BENCH_delta.json
python3 - build/BENCH_delta.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "delta", doc
assert doc["points"], "no points recorded"
required = {"throughput_tps", "p50_us", "p95_us", "p99_us"}
for point in doc["points"]:
    missing = required - set(point)
    assert not missing, f"point {point.get('series')} missing {missing}"
by_key = {(p["series"], p["arg"]): p for p in doc["points"]}
series = {p["series"] for p in doc["points"]}
assert "Delta/Freshness/Lag" in series, f"missing lag series in {sorted(series)}"
lag = next(p for p in doc["points"] if p["series"] == "Delta/Freshness/Lag")
assert lag["p95_us"] >= lag["p50_us"] >= 0, lag
merged_args = sorted(a for (n, a) in by_key if n == "Delta/Freshness/Merged")
assert merged_args, f"missing merged series in {sorted(series)}"
for arg in merged_args:
    merged = by_key[("Delta/Freshness/Merged", arg)]
    row = by_key.get(("Delta/Freshness/RowEngine", arg))
    assert row is not None, f"Delta/Freshness/RowEngine has no point at arg {arg}"
    m_tps, r_tps = merged["throughput_tps"], row["throughput_tps"]
    assert m_tps >= r_tps, (
        f"Freshness@{arg}: delta-merged {m_tps:.0f} tps < row engine {r_tps:.0f} tps")
    print(f"  Freshness@{arg}: merged {m_tps:.0f} tps vs row {r_tps:.0f} tps "
          f"({m_tps / r_tps:.2f}x), lag p50 {lag['p50_us']:.0f}us")
seal = next(p for p in doc["points"] if p["series"] == "Delta/Seal/Throughput")
assert seal["rows_sealed"] > 0, "seal passes drained no rows"
print(f"BENCH delta json OK: {len(doc['points'])} points, "
      f"seal {seal['throughput_tps']:.0f} rows/s")
EOF

# Stats-collector overhead: TPC-B with gp_stat_statements + the history
# daemon on vs off, interleaved repeats, median per mode. Gate: the collector
# costs at most 2% throughput (with slack for smoke-run noise handled by the
# interleaved-median measurement itself).
snapshot_prev BENCH_stats.json
(cd build && GPHTAP_BENCH_MS=200 ./bench/bench_stats --smoke)
diff_prev BENCH_stats.json
python3 - build/BENCH_stats.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "stats", doc
points = {p["series"]: p for p in doc["points"]}
required = {"throughput_tps", "p50_us", "p95_us", "p99_us", "best_tps"}
for name in ("Stats/Overhead/StatsOn", "Stats/Overhead/StatsOff"):
    assert name in points, f"missing {name} in {sorted(points)}"
    missing = required - set(points[name])
    assert not missing, f"{name} missing {missing}"
on = points["Stats/Overhead/StatsOn"]
off = points["Stats/Overhead/StatsOff"]
assert on["best_tps"] > 0 and off["best_tps"] > 0, (on, off)
overhead = on["overhead_pct"]
print(f"BENCH stats json OK: stats-on {on['best_tps']:.0f} tps vs "
      f"stats-off {off['best_tps']:.0f} tps ({overhead:+.2f}% overhead)")
assert overhead <= 2.0, (
    f"stats collector overhead {overhead:.2f}% exceeds the 2% budget")
EOF

# Front-door session scaling: 50k logical sessions must be admitted and
# sustained over the fixed 8-worker pool with zero invariant violations and a
# bounded shed rate, every shed classified as retryable (the binary itself
# exits non-zero on a violation), and steady-state front-door TPC-B tps must
# land within 10% of the direct-session baseline at equal worker count.
snapshot_prev BENCH_sessions.json
(cd build && GPHTAP_BENCH_MS=500 ./bench/bench_sessions --smoke)
diff_prev BENCH_sessions.json
python3 - build/BENCH_sessions.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "sessions", doc
assert doc["points"], "no points recorded"
by_key = {(p["series"], p["arg"]): p for p in doc["points"]}
required = {"throughput_tps", "p50_us", "p95_us", "p99_us"}
for point in doc["points"]:
    missing = required - set(point)
    assert not missing, f"point {point.get('series')} missing {missing}"

storm = by_key.get(("Sessions/Storm/Connect", 50000))
assert storm is not None, f"missing 50k storm point in {sorted(by_key)}"
assert storm["violations"] == 0, f"invariant violations under storm: {storm}"
assert storm["connect_ok"] >= 45000, (
    f"storm admitted only {storm['connect_ok']:.0f} of 50000 sessions")
assert storm["committed"] > 0, "storm made no forward progress"
assert storm["connect_p99_us"] > 0, "no connect latency recorded"
assert storm["shed_rate"] <= 0.95, (
    f"shed rate {storm['shed_rate']:.3f} unbounded under storm")

steady = next((p for p in doc["points"]
               if p["series"] == "Sessions/Steady/Frontend"), None)
assert steady is not None, "missing steady front-door point"
assert steady["violations"] == 0, f"steady-state invariant violation: {steady}"
assert steady["connect_ok"] == steady["sessions"], (
    f"steady ramp incomplete: {steady['connect_ok']:.0f}/{steady['sessions']:.0f}")
assert steady["pool_utilization"] > 0.5, (
    f"pool underutilized at saturation: {steady['pool_utilization']:.2f}")

front = by_key.get(("Sessions/Compare/Frontend", 1000))
direct = by_key.get(("Sessions/Direct/Baseline", 8))
assert front is not None, "missing front-door compare point"
assert direct is not None, "missing direct-session baseline point"
ratio = front["best_tps"] / direct["best_tps"]
assert ratio >= 0.9, (
    f"front-door tps {front['best_tps']:.0f} is {ratio:.2f}x the direct "
    f"baseline {direct['best_tps']:.0f} (must be >= 0.9x)")
print(f"BENCH sessions json OK: storm admitted {storm['connect_ok']:.0f} sessions "
      f"(connect p99 {storm['connect_p99_us']:.0f}us, shed rate "
      f"{storm['shed_rate']:.2f}), front-door {front['best_tps']:.0f} tps = "
      f"{ratio:.2f}x direct baseline, pool {steady['pool_utilization']:.0%} busy")
EOF
