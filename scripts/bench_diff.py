#!/usr/bin/env python3
"""Diff two BENCH_*.json files point-by-point.

Usage: bench_diff.py OLD.json NEW.json

Prints a per-(series, arg) table of throughput_tps and p99_us with absolute
and percent deltas, plus series present in only one file. Advisory only:
always exits 0 (run_tier1.sh runs it to surface regressions in the log, not
to gate on them — smoke-mode numbers are too noisy for a hard gate).
"""
import json
import sys


def load_points(path):
    with open(path) as f:
        doc = json.load(f)
    points = {}
    for p in doc.get("points", []):
        points[(p.get("series", "?"), p.get("arg", 0))] = p
    return doc.get("bench", "?"), points


def fmt_delta(old, new):
    if old is None or new is None:
        return "n/a"
    delta = new - old
    pct = (delta / old * 100.0) if old else 0.0
    return f"{delta:+.1f} ({pct:+.1f}%)"


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 0
    old_name, old_pts = load_points(sys.argv[1])
    new_name, new_pts = load_points(sys.argv[2])
    print(f"bench diff: {sys.argv[1]} ({old_name}) -> {sys.argv[2]} ({new_name})")

    shared = sorted(set(old_pts) & set(new_pts))
    if shared:
        rows = [("series", "arg", "tps old", "tps new", "tps delta",
                 "p99 old", "p99 new", "p99 delta")]
        for key in shared:
            o, n = old_pts[key], new_pts[key]
            o_tps, n_tps = o.get("throughput_tps"), n.get("throughput_tps")
            o_p99, n_p99 = o.get("p99_us"), n.get("p99_us")
            rows.append((
                key[0], str(key[1]),
                f"{o_tps:.1f}" if o_tps is not None else "n/a",
                f"{n_tps:.1f}" if n_tps is not None else "n/a",
                fmt_delta(o_tps, n_tps),
                f"{o_p99:.0f}" if o_p99 is not None else "n/a",
                f"{n_p99:.0f}" if n_p99 is not None else "n/a",
                fmt_delta(o_p99, n_p99),
            ))
        widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
        for r in rows:
            print("  " + "  ".join(c.ljust(w) for c, w in zip(r, widths)))
    else:
        print("  no shared (series, arg) points")

    for label, only in (("only in old", set(old_pts) - set(new_pts)),
                        ("only in new", set(new_pts) - set(old_pts))):
        for key in sorted(only):
            print(f"  {label}: {key[0]} @ {key[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
