// CH-benCHmark command-line runner: a pgbench-style tool over the in-process
// cluster. Loads the schema, runs a mixed OLTP+OLAP workload, and prints a
// per-class report.
//
//   $ ./chbench_cli [--oltp N] [--olap N] [--seconds S] [--segments N]
//                   [--gpdb5] [--isolate]
//
//   --gpdb5     run with the paper's baseline switches (no GDD, always 2PC)
//   --isolate   put the two client classes into cpuset-isolated resource groups
#include <cstdio>
#include <cstring>
#include <string>

#include "api/gphtap.h"
#include "workload/htap.h"

using namespace gphtap;  // NOLINT(build/namespaces): example code

namespace {

struct CliOptions {
  int oltp_clients = 8;
  int olap_clients = 4;
  int seconds = 3;
  int segments = 8;
  bool gpdb5 = false;
  bool isolate = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (const char* v = need_value("--oltp")) {
      out->oltp_clients = std::atoi(v);
    } else if (const char* v2 = need_value("--olap")) {
      out->olap_clients = std::atoi(v2);
    } else if (const char* v3 = need_value("--seconds")) {
      out->seconds = std::atoi(v3);
    } else if (const char* v4 = need_value("--segments")) {
      out->segments = std::atoi(v4);
    } else if (std::strcmp(argv[i], "--gpdb5") == 0) {
      out->gpdb5 = true;
    } else if (std::strcmp(argv[i], "--isolate") == 0) {
      out->isolate = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return 1;

  ClusterOptions options;
  options.num_segments = cli.segments;
  options.net_latency_us = 30;
  options.fsync_cost_us = 30;
  options.gdd_enabled = !cli.gpdb5;
  options.one_phase_commit_enabled = !cli.gpdb5;
  options.exec_cpu_ns_per_row = 5000;
  options.resource_groups_enabled = cli.isolate;
  Cluster cluster(options);

  HtapConfig config;
  config.chbench.warehouses = std::max(4, cli.oltp_clients / 2);
  config.chbench.items = 500;
  config.chbench.initial_orders_per_district = 30;
  std::printf("loading CH-benCHmark (%d warehouses, %d items)...\n",
              config.chbench.warehouses, config.chbench.items);
  Status load = LoadChBench(&cluster, config.chbench);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  if (cli.isolate) {
    auto admin = cluster.Connect();
    admin->Execute(
        "CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, MEMORY_LIMIT=15, "
        "CPU_SET=0-15)");
    admin->Execute(
        "CREATE RESOURCE GROUP oltp_group WITH (CONCURRENCY=50, MEMORY_LIMIT=15, "
        "CPU_SET=16-31)");
    admin->Execute("CREATE ROLE analyst RESOURCE GROUP olap_group");
    admin->Execute("CREATE ROLE app RESOURCE GROUP oltp_group");
    config.olap_role = "analyst";
    config.oltp_role = "app";
  }

  config.oltp_clients = cli.oltp_clients;
  config.olap_clients = cli.olap_clients;
  config.duration_ms = static_cast<int64_t>(cli.seconds) * 1000;
  std::printf("running %d OLTP + %d OLAP clients for %ds on %d segments (%s%s)...\n",
              cli.oltp_clients, cli.olap_clients, cli.seconds, cli.segments,
              cli.gpdb5 ? "GPDB5 mode" : "GPDB6 mode",
              cli.isolate ? ", isolated resource groups" : "");

  HtapResult r = RunHtapWorkload(&cluster, config);

  std::printf("\n--- OLTP (NewOrder/Payment mix) ---\n");
  std::printf("  committed:   %llu txns (%.0f per minute)\n",
              static_cast<unsigned long long>(r.oltp.committed), r.OltpQpm());
  std::printf("  aborted:     %llu\n", static_cast<unsigned long long>(r.oltp.aborted));
  std::printf("  latency:     %s\n", r.oltp.latency_us.Summary().c_str());
  std::printf("--- OLAP (%zu analytical queries round-robin) ---\n",
              ChAnalyticalQueries().size());
  std::printf("  completed:   %llu queries (%.0f per hour)\n",
              static_cast<unsigned long long>(r.olap.committed), r.OlapQph());
  std::printf("  latency:     %s\n", r.olap.latency_us.Summary().c_str());
  if (cluster.gdd() != nullptr) {
    auto stats = cluster.gdd()->stats();
    std::printf("--- GDD ---\n  runs=%llu deadlocks=%llu victims=%llu\n",
                static_cast<unsigned long long>(stats.runs),
                static_cast<unsigned long long>(stats.deadlocks_found),
                static_cast<unsigned long long>(stats.victims_killed));
  }
  return 0;
}
