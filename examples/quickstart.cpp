// Quickstart: spin up an in-process MPP cluster, create distributed tables,
// load data, and run transactional + analytical SQL against it.
//
//   $ ./quickstart
#include <cstdio>

#include "api/gphtap.h"

using gphtap::Cluster;
using gphtap::ClusterOptions;
using gphtap::QueryResult;

namespace {

void Run(gphtap::Session* session, const std::string& sql) {
  auto result = session->Execute(sql);
  std::printf("gphtap> %s\n", sql.c_str());
  if (!result.ok()) {
    std::printf("ERROR: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->ToString().c_str());
}

}  // namespace

int main() {
  // A coordinator plus four worker segments, all in this process.
  ClusterOptions options;
  options.num_segments = 4;
  Cluster cluster(options);
  auto session = cluster.Connect();

  // DDL: hash-distributed fact table and a replicated dimension table.
  Run(session.get(),
      "CREATE TABLE sales (sale_id int, region_id int, amount double) "
      "DISTRIBUTED BY (sale_id)");
  Run(session.get(),
      "CREATE TABLE regions (region_id int, name text) DISTRIBUTED REPLICATED");

  // Load: generate_series works like in the paper's examples.
  Run(session.get(),
      "INSERT INTO sales SELECT i, i % 4, i + 0.5 FROM generate_series(1, 1000) i");
  Run(session.get(),
      "INSERT INTO regions VALUES (0, 'north'), (1, 'south'), (2, 'east'), (3, 'west')");

  // Point query: direct-dispatched to the one segment owning sale_id 42.
  Run(session.get(), "SELECT amount FROM sales WHERE sale_id = 42");

  // Analytical query: distributed join + two-phase aggregation + sort.
  Run(session.get(),
      "SELECT r.name, count(*) AS sales, sum(s.amount) AS revenue "
      "FROM sales s JOIN regions r ON s.region_id = r.region_id "
      "GROUP BY r.name ORDER BY revenue DESC");

  // Transactions: snapshot isolation across sessions.
  auto other = cluster.Connect();
  Run(session.get(), "BEGIN");
  Run(session.get(), "UPDATE sales SET amount = amount + 100 WHERE sale_id = 1");
  std::printf("-- other session, before commit (sees the old value):\n");
  Run(other.get(), "SELECT amount FROM sales WHERE sale_id = 1");
  Run(session.get(), "COMMIT");
  std::printf("-- other session, after commit:\n");
  Run(other.get(), "SELECT amount FROM sales WHERE sale_id = 1");

  // Where did the rows actually go? One shard per segment.
  auto def = cluster.LookupTable("sales");
  for (int i = 0; i < cluster.num_segments(); ++i) {
    std::printf("segment %d holds %llu row versions of sales\n", i,
                static_cast<unsigned long long>(
                    cluster.segment(i)->GetTable(def->id)->StoredVersionCount()));
  }
  return 0;
}
