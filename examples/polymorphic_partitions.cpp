// Polymorphic partitioning demo (Figure 5 of the paper): one SALES table whose
// recent partition is a transactional heap, whose older partition is a
// compressed append-optimized column store, and whose archive partition is an
// external CSV file — queried transparently through the root table.
//
//   $ ./polymorphic_partitions
#include <cstdio>
#include <fstream>

#include "api/gphtap.h"

using namespace gphtap;  // NOLINT(build/namespaces): example code

int main() {
  ClusterOptions options;
  options.num_segments = 4;
  Cluster cluster(options);
  auto session = cluster.Connect();

  // The archive partition's external file (prior years' sales, Figure 5).
  std::string archive = "/tmp/gphtap_sales_archive.csv";
  {
    std::ofstream f(archive, std::ios::trunc);
    for (int day = 0; day < 100; ++day) {
      f << day << "," << (day * 3) << "\n";  // day, amount
    }
  }

  // days [0,100) = external archive; [100,200) = AO-column with RLE;
  // [200,300) = hot heap partition that takes the OLTP traffic.
  auto create = session->Execute(
      "CREATE TABLE sales (day int, amount int) DISTRIBUTED BY (day) "
      "PARTITION BY RANGE (day) ("
      "  PARTITION hot START 200 END 300,"
      "  PARTITION cold START 100 END 200 WITH (appendonly=true, orientation=column, "
      "                                         compresstype=rle),"
      "  PARTITION archive START 0 END 100 EXTERNAL '" + archive + "')");
  if (!create.ok()) {
    std::printf("create failed: %s\n", create.status().ToString().c_str());
    return 1;
  }

  // Bulk-load the cold partition; trickle the hot one like OLTP traffic.
  session->Execute("INSERT INTO sales SELECT i, i * 2 FROM generate_series(100, 199) i");
  session->Execute("INSERT INTO sales SELECT i, i FROM generate_series(200, 299) i");
  session->Execute("UPDATE sales SET amount = amount + 1000 WHERE day = 250");

  auto show = [&](const char* label, const std::string& sql) {
    auto r = session->Execute(sql);
    if (!r.ok()) {
      std::printf("%s: ERROR %s\n", label, r.status().ToString().c_str());
      return;
    }
    std::printf("%s\n%s\n", label, r->ToString().c_str());
  };

  // One query spanning heap + AO-column + external storage.
  show("-- total sales across all three storage tiers:",
       "SELECT count(*) AS rows, sum(amount) AS total FROM sales");
  show("-- archive tier only (reads the CSV):",
       "SELECT count(*), sum(amount) FROM sales WHERE day < 100");
  show("-- cold tier only (decompresses RLE column blocks):",
       "SELECT count(*), sum(amount) FROM sales WHERE day >= 100 AND day < 200");
  show("-- hot tier point read (sees the OLTP update):",
       "SELECT amount FROM sales WHERE day = 250");

  std::printf("The executor is storage-agnostic: the same scan operator read a heap,\n"
              "a compressed column store, and a CSV file behind one partitioned table.\n");
  std::remove(archive.c_str());
  return 0;
}
