// HTAP resource isolation demo (Section 6): run the CH-benCHmark OLTP mix and
// the analytical query set concurrently, first sharing CPU, then with the
// paper's cpuset-isolated resource groups, and compare OLTP latency.
//
//   $ ./htap_resource_groups
#include <cstdio>

#include "api/gphtap.h"
#include "workload/htap.h"

using namespace gphtap;  // NOLINT(build/namespaces): example code

namespace {

HtapResult RunOnce(bool isolated) {
  ClusterOptions options;
  options.num_segments = 8;
  options.net_latency_us = 30;
  options.fsync_cost_us = 30;
  options.resource_groups_enabled = true;
  options.exec_cpu_ns_per_row = 40000;  // simulated per-row executor CPU
  options.total_cores = 32;
  Cluster cluster(options);

  auto admin = cluster.Connect();
  if (isolated) {
    // Configuration III from the paper: dedicated cores per class.
    admin->Execute(
        "CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, MEMORY_LIMIT=15, "
        "CPU_SET=0-15)");
    admin->Execute(
        "CREATE RESOURCE GROUP oltp_group WITH (CONCURRENCY=50, MEMORY_LIMIT=15, "
        "CPU_SET=16-31)");
  } else {
    // Configuration I: both classes share the machine with soft shares.
    admin->Execute(
        "CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, MEMORY_LIMIT=15, "
        "CPU_RATE_LIMIT=20)");
    admin->Execute(
        "CREATE RESOURCE GROUP oltp_group WITH (CONCURRENCY=50, MEMORY_LIMIT=15, "
        "CPU_RATE_LIMIT=20)");
  }
  admin->Execute("CREATE ROLE analyst RESOURCE GROUP olap_group");
  admin->Execute("CREATE ROLE app RESOURCE GROUP oltp_group");

  HtapConfig config;
  config.chbench.warehouses = 8;
  config.chbench.items = 500;
  config.chbench.initial_orders_per_district = 30;
  Status load = LoadChBench(&cluster, config.chbench);
  if (!load.ok()) {
    std::printf("load failed: %s\n", load.ToString().c_str());
    return {};
  }
  config.olap_clients = 10;
  config.oltp_clients = 12;
  config.olap_role = "analyst";
  config.oltp_role = "app";
  config.duration_ms = 2000;
  return RunHtapWorkload(&cluster, config);
}

void Report(const char* label, const HtapResult& r) {
  std::printf("%-28s OLTP: %7.0f txn/min, avg %6.1f ms, p95 %6.1f ms   "
              "OLAP: %7.0f q/h\n",
              label, r.OltpQpm(), r.oltp.latency_us.Mean() / 1000.0,
              static_cast<double>(r.oltp.latency_us.Percentile(95)) / 1000.0,
              r.OlapQph());
}

}  // namespace

int main() {
  std::printf("Running 10 analytical + 12 transactional clients for 2s each...\n\n");
  HtapResult shared = RunOnce(/*isolated=*/false);
  HtapResult isolated = RunOnce(/*isolated=*/true);
  Report("shared CPU (config I):", shared);
  Report("isolated cpusets (config III):", isolated);
  if (isolated.oltp.latency_us.Mean() < shared.oltp.latency_us.Mean()) {
    std::printf("\nDedicating cores to the OLTP group cut its mean latency by %.0f%%.\n",
                100.0 * (1.0 - isolated.oltp.latency_us.Mean() /
                                   shared.oltp.latency_us.Mean()));
  }
  return 0;
}
