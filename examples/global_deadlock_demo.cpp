// Global deadlock demo: recreates Figure 6 of the paper live. Two transactions
// update tuples on two segments in opposite orders; each segment's local state
// is deadlock-free, but globally they wait on each other. The GDD daemon
// collects the wait-for graphs, runs the greedy reduction, and terminates the
// youngest transaction.
//
//   $ ./global_deadlock_demo
#include <cstdio>
#include <future>
#include <thread>

#include "api/gphtap.h"

using namespace gphtap;  // NOLINT(build/namespaces): example code

namespace {

void DumpWaitGraphs(Cluster* cluster) {
  std::printf("  global wait-for graph:\n");
  for (const auto& g : cluster->CollectWaitGraphs()) {
    if (g.edges.empty()) continue;
    std::printf("    node %2d:", g.node_id);
    for (const auto& e : g.edges) std::printf("  %s", WaitEdgeToString(e).c_str());
    std::printf("\n");
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_segments = 3;
  options.gdd_period_us = 100'000;  // slow enough to watch the deadlock form
  Cluster cluster(options);

  // Find keys that land on segments 0 and 1 (like the paper's c1=2 / c1=5).
  auto key_on = [&](int seg) {
    for (int64_t v = 1;; ++v) {
      if (cluster.SegmentForHash(Datum(v).Hash()) == seg) return v;
    }
  };
  int64_t k0 = key_on(0), k1 = key_on(1);

  auto setup = cluster.Connect();
  setup->Execute("CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)");
  setup->Execute("INSERT INTO t1 VALUES (" + std::to_string(k0) + ", 0), (" +
                 std::to_string(k1) + ", 0)");
  std::printf("t1 rows: c1=%lld on segment 0, c1=%lld on segment 1\n\n",
              static_cast<long long>(k0), static_cast<long long>(k1));

  auto a = cluster.Connect();
  auto b = cluster.Connect();
  a->Execute("BEGIN");
  b->Execute("BEGIN");

  std::printf("(1) txn A updates c1=%lld (locks the tuple on segment 0)\n",
              static_cast<long long>(k0));
  a->Execute("UPDATE t1 SET c2 = 10 WHERE c1 = " + std::to_string(k0));
  std::printf("(2) txn B updates c1=%lld (locks the tuple on segment 1)\n",
              static_cast<long long>(k1));
  b->Execute("UPDATE t1 SET c2 = 20 WHERE c1 = " + std::to_string(k1));

  std::printf("(3) txn B updates c1=%lld -> must wait for A on segment 0\n",
              static_cast<long long>(k0));
  auto b_future = std::async(std::launch::async, [&] {
    return b->Execute("UPDATE t1 SET c2 = 30 WHERE c1 = " + std::to_string(k0)).status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  DumpWaitGraphs(&cluster);

  std::printf("(4) txn A updates c1=%lld -> must wait for B on segment 1: DEADLOCK\n",
              static_cast<long long>(k1));
  auto a_future = std::async(std::launch::async, [&] {
    return a->Execute("UPDATE t1 SET c2 = 40 WHERE c1 = " + std::to_string(k1)).status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  DumpWaitGraphs(&cluster);

  Status a_status = a_future.get();
  Status b_status = b_future.get();
  std::printf("\n(5) the GDD daemon breaks the cycle:\n");
  std::printf("    txn A -> %s\n", a_status.ToString().c_str());
  std::printf("    txn B -> %s   (youngest transaction = victim)\n",
              b_status.ToString().c_str());
  auto stats = cluster.gdd()->stats();
  std::printf("    GDD stats: runs=%llu deadlocks=%llu victims=%llu\n",
              static_cast<unsigned long long>(stats.runs),
              static_cast<unsigned long long>(stats.deadlocks_found),
              static_cast<unsigned long long>(stats.victims_killed));

  a->Execute("COMMIT");
  b->Execute("ROLLBACK");
  auto check = cluster.Connect();
  auto rows = check->Execute("SELECT c1, c2 FROM t1 ORDER BY 1");
  std::printf("\nfinal table state (A's updates won):\n%s", rows->ToString().c_str());
  return 0;
}
