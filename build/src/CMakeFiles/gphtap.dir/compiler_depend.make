# Empty compiler generated dependencies file for gphtap.
# This may be replaced when dependencies are built.
