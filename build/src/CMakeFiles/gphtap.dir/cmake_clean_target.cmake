file(REMOVE_RECURSE
  "libgphtap.a"
)
