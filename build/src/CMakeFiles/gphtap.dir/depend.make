# Empty dependencies file for gphtap.
# This may be replaced when dependencies are built.
