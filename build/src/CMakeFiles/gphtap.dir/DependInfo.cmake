
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/datum.cc" "src/CMakeFiles/gphtap.dir/catalog/datum.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/catalog/datum.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/gphtap.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/catalog/schema.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/gphtap.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/mirror.cc" "src/CMakeFiles/gphtap.dir/cluster/mirror.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/cluster/mirror.cc.o.d"
  "/root/repo/src/cluster/session.cc" "src/CMakeFiles/gphtap.dir/cluster/session.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/cluster/session.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/gphtap.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/gphtap.dir/common/status.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/gphtap.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/gphtap.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/exec/executor.cc.o.d"
  "/root/repo/src/gdd/gdd_algorithm.cc" "src/CMakeFiles/gphtap.dir/gdd/gdd_algorithm.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/gdd/gdd_algorithm.cc.o.d"
  "/root/repo/src/gdd/gdd_daemon.cc" "src/CMakeFiles/gphtap.dir/gdd/gdd_daemon.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/gdd/gdd_daemon.cc.o.d"
  "/root/repo/src/lock/lock_defs.cc" "src/CMakeFiles/gphtap.dir/lock/lock_defs.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/lock/lock_defs.cc.o.d"
  "/root/repo/src/lock/lock_manager.cc" "src/CMakeFiles/gphtap.dir/lock/lock_manager.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/lock/lock_manager.cc.o.d"
  "/root/repo/src/net/motion_exchange.cc" "src/CMakeFiles/gphtap.dir/net/motion_exchange.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/net/motion_exchange.cc.o.d"
  "/root/repo/src/plan/expr.cc" "src/CMakeFiles/gphtap.dir/plan/expr.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/plan/expr.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/gphtap.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/plan/plan.cc.o.d"
  "/root/repo/src/plan/planner.cc" "src/CMakeFiles/gphtap.dir/plan/planner.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/plan/planner.cc.o.d"
  "/root/repo/src/resgroup/cpu_governor.cc" "src/CMakeFiles/gphtap.dir/resgroup/cpu_governor.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/resgroup/cpu_governor.cc.o.d"
  "/root/repo/src/resgroup/resource_group.cc" "src/CMakeFiles/gphtap.dir/resgroup/resource_group.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/resgroup/resource_group.cc.o.d"
  "/root/repo/src/resgroup/vmem_tracker.cc" "src/CMakeFiles/gphtap.dir/resgroup/vmem_tracker.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/resgroup/vmem_tracker.cc.o.d"
  "/root/repo/src/sql/analyzer.cc" "src/CMakeFiles/gphtap.dir/sql/analyzer.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/sql/analyzer.cc.o.d"
  "/root/repo/src/sql/driver.cc" "src/CMakeFiles/gphtap.dir/sql/driver.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/sql/driver.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/gphtap.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/gphtap.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/ao_table.cc" "src/CMakeFiles/gphtap.dir/storage/ao_table.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/storage/ao_table.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/gphtap.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/column_store.cc" "src/CMakeFiles/gphtap.dir/storage/column_store.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/storage/column_store.cc.o.d"
  "/root/repo/src/storage/compression.cc" "src/CMakeFiles/gphtap.dir/storage/compression.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/storage/compression.cc.o.d"
  "/root/repo/src/storage/external_table.cc" "src/CMakeFiles/gphtap.dir/storage/external_table.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/storage/external_table.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/CMakeFiles/gphtap.dir/storage/heap_table.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/storage/heap_table.cc.o.d"
  "/root/repo/src/storage/partitioned_table.cc" "src/CMakeFiles/gphtap.dir/storage/partitioned_table.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/storage/partitioned_table.cc.o.d"
  "/root/repo/src/storage/table_factory.cc" "src/CMakeFiles/gphtap.dir/storage/table_factory.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/storage/table_factory.cc.o.d"
  "/root/repo/src/txn/distributed_txn_manager.cc" "src/CMakeFiles/gphtap.dir/txn/distributed_txn_manager.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/txn/distributed_txn_manager.cc.o.d"
  "/root/repo/src/txn/local_txn_manager.cc" "src/CMakeFiles/gphtap.dir/txn/local_txn_manager.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/txn/local_txn_manager.cc.o.d"
  "/root/repo/src/txn/visibility.cc" "src/CMakeFiles/gphtap.dir/txn/visibility.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/txn/visibility.cc.o.d"
  "/root/repo/src/workload/chbench.cc" "src/CMakeFiles/gphtap.dir/workload/chbench.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/workload/chbench.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/gphtap.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/htap.cc" "src/CMakeFiles/gphtap.dir/workload/htap.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/workload/htap.cc.o.d"
  "/root/repo/src/workload/tpcb.cc" "src/CMakeFiles/gphtap.dir/workload/tpcb.cc.o" "gcc" "src/CMakeFiles/gphtap.dir/workload/tpcb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
