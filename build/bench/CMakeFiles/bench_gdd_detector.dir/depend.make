# Empty dependencies file for bench_gdd_detector.
# This may be replaced when dependencies are built.
