file(REMOVE_RECURSE
  "CMakeFiles/bench_gdd_detector.dir/bench_gdd_detector.cc.o"
  "CMakeFiles/bench_gdd_detector.dir/bench_gdd_detector.cc.o.d"
  "bench_gdd_detector"
  "bench_gdd_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gdd_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
