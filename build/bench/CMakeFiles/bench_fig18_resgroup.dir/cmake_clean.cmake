file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_resgroup.dir/bench_fig18_resgroup.cc.o"
  "CMakeFiles/bench_fig18_resgroup.dir/bench_fig18_resgroup.cc.o.d"
  "bench_fig18_resgroup"
  "bench_fig18_resgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_resgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
