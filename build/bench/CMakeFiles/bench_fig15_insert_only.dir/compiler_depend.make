# Empty compiler generated dependencies file for bench_fig15_insert_only.
# This may be replaced when dependencies are built.
