# Empty dependencies file for bench_fig12_tpcb.
# This may be replaced when dependencies are built.
