file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_tpcb.dir/bench_fig12_tpcb.cc.o"
  "CMakeFiles/bench_fig12_tpcb.dir/bench_fig12_tpcb.cc.o.d"
  "bench_fig12_tpcb"
  "bench_fig12_tpcb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_tpcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
