# Empty dependencies file for bench_fig13_scale.
# This may be replaced when dependencies are built.
