# Empty compiler generated dependencies file for bench_fig16_olap_htap.
# This may be replaced when dependencies are built.
