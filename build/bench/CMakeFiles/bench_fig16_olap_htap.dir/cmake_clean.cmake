file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_olap_htap.dir/bench_fig16_olap_htap.cc.o"
  "CMakeFiles/bench_fig16_olap_htap.dir/bench_fig16_olap_htap.cc.o.d"
  "bench_fig16_olap_htap"
  "bench_fig16_olap_htap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_olap_htap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
