# Empty dependencies file for bench_fig17_oltp_htap.
# This may be replaced when dependencies are built.
