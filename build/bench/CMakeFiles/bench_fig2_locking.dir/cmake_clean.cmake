file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_locking.dir/bench_fig2_locking.cc.o"
  "CMakeFiles/bench_fig2_locking.dir/bench_fig2_locking.cc.o.d"
  "bench_fig2_locking"
  "bench_fig2_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
