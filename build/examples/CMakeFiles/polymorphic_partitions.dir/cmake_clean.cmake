file(REMOVE_RECURSE
  "CMakeFiles/polymorphic_partitions.dir/polymorphic_partitions.cpp.o"
  "CMakeFiles/polymorphic_partitions.dir/polymorphic_partitions.cpp.o.d"
  "polymorphic_partitions"
  "polymorphic_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymorphic_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
