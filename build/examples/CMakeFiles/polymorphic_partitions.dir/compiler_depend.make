# Empty compiler generated dependencies file for polymorphic_partitions.
# This may be replaced when dependencies are built.
