# Empty compiler generated dependencies file for chbench_cli.
# This may be replaced when dependencies are built.
