file(REMOVE_RECURSE
  "CMakeFiles/chbench_cli.dir/chbench_cli.cpp.o"
  "CMakeFiles/chbench_cli.dir/chbench_cli.cpp.o.d"
  "chbench_cli"
  "chbench_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
