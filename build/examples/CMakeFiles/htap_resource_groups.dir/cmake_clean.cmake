file(REMOVE_RECURSE
  "CMakeFiles/htap_resource_groups.dir/htap_resource_groups.cpp.o"
  "CMakeFiles/htap_resource_groups.dir/htap_resource_groups.cpp.o.d"
  "htap_resource_groups"
  "htap_resource_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htap_resource_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
