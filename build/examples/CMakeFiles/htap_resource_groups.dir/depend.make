# Empty dependencies file for htap_resource_groups.
# This may be replaced when dependencies are built.
