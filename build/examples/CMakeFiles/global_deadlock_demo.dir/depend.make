# Empty dependencies file for global_deadlock_demo.
# This may be replaced when dependencies are built.
