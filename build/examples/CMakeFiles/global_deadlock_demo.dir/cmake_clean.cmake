file(REMOVE_RECURSE
  "CMakeFiles/global_deadlock_demo.dir/global_deadlock_demo.cpp.o"
  "CMakeFiles/global_deadlock_demo.dir/global_deadlock_demo.cpp.o.d"
  "global_deadlock_demo"
  "global_deadlock_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_deadlock_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
