file(REMOVE_RECURSE
  "CMakeFiles/gdd_daemon_test.dir/gdd/gdd_daemon_test.cc.o"
  "CMakeFiles/gdd_daemon_test.dir/gdd/gdd_daemon_test.cc.o.d"
  "gdd_daemon_test"
  "gdd_daemon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdd_daemon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
