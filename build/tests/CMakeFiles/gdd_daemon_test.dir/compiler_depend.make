# Empty compiler generated dependencies file for gdd_daemon_test.
# This may be replaced when dependencies are built.
