file(REMOVE_RECURSE
  "CMakeFiles/commit_protocol_test.dir/cluster/commit_protocol_test.cc.o"
  "CMakeFiles/commit_protocol_test.dir/cluster/commit_protocol_test.cc.o.d"
  "commit_protocol_test"
  "commit_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
