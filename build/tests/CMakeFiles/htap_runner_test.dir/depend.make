# Empty dependencies file for htap_runner_test.
# This may be replaced when dependencies are built.
