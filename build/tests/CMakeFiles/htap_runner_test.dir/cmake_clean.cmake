file(REMOVE_RECURSE
  "CMakeFiles/htap_runner_test.dir/integration/htap_runner_test.cc.o"
  "CMakeFiles/htap_runner_test.dir/integration/htap_runner_test.cc.o.d"
  "htap_runner_test"
  "htap_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htap_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
