file(REMOVE_RECURSE
  "CMakeFiles/gdd_algorithm_test.dir/gdd/gdd_algorithm_test.cc.o"
  "CMakeFiles/gdd_algorithm_test.dir/gdd/gdd_algorithm_test.cc.o.d"
  "gdd_algorithm_test"
  "gdd_algorithm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdd_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
