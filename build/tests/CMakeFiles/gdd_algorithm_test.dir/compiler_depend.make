# Empty compiler generated dependencies file for gdd_algorithm_test.
# This may be replaced when dependencies are built.
