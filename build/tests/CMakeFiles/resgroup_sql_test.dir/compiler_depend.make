# Empty compiler generated dependencies file for resgroup_sql_test.
# This may be replaced when dependencies are built.
