file(REMOVE_RECURSE
  "CMakeFiles/resgroup_sql_test.dir/resgroup/resgroup_sql_test.cc.o"
  "CMakeFiles/resgroup_sql_test.dir/resgroup/resgroup_sql_test.cc.o.d"
  "resgroup_sql_test"
  "resgroup_sql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resgroup_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
