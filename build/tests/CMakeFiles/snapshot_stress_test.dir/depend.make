# Empty dependencies file for snapshot_stress_test.
# This may be replaced when dependencies are built.
