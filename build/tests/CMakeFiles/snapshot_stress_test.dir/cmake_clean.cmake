file(REMOVE_RECURSE
  "CMakeFiles/snapshot_stress_test.dir/integration/snapshot_stress_test.cc.o"
  "CMakeFiles/snapshot_stress_test.dir/integration/snapshot_stress_test.cc.o.d"
  "snapshot_stress_test"
  "snapshot_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
