file(REMOVE_RECURSE
  "CMakeFiles/network_deadlock_test.dir/integration/network_deadlock_test.cc.o"
  "CMakeFiles/network_deadlock_test.dir/integration/network_deadlock_test.cc.o.d"
  "network_deadlock_test"
  "network_deadlock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_deadlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
