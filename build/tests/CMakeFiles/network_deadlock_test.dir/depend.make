# Empty dependencies file for network_deadlock_test.
# This may be replaced when dependencies are built.
