# Empty compiler generated dependencies file for resgroup_test.
# This may be replaced when dependencies are built.
