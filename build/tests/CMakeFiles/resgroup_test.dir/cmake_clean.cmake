file(REMOVE_RECURSE
  "CMakeFiles/resgroup_test.dir/resgroup/resgroup_test.cc.o"
  "CMakeFiles/resgroup_test.dir/resgroup/resgroup_test.cc.o.d"
  "resgroup_test"
  "resgroup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resgroup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
