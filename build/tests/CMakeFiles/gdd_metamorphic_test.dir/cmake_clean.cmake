file(REMOVE_RECURSE
  "CMakeFiles/gdd_metamorphic_test.dir/gdd/gdd_metamorphic_test.cc.o"
  "CMakeFiles/gdd_metamorphic_test.dir/gdd/gdd_metamorphic_test.cc.o.d"
  "gdd_metamorphic_test"
  "gdd_metamorphic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdd_metamorphic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
