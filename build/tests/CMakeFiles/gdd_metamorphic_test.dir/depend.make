# Empty dependencies file for gdd_metamorphic_test.
# This may be replaced when dependencies are built.
