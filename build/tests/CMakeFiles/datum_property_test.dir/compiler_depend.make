# Empty compiler generated dependencies file for datum_property_test.
# This may be replaced when dependencies are built.
