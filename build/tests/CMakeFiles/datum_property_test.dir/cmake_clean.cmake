file(REMOVE_RECURSE
  "CMakeFiles/datum_property_test.dir/catalog/datum_property_test.cc.o"
  "CMakeFiles/datum_property_test.dir/catalog/datum_property_test.cc.o.d"
  "datum_property_test"
  "datum_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datum_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
