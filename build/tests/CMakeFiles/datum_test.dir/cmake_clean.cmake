file(REMOVE_RECURSE
  "CMakeFiles/datum_test.dir/catalog/datum_test.cc.o"
  "CMakeFiles/datum_test.dir/catalog/datum_test.cc.o.d"
  "datum_test"
  "datum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
