# Empty dependencies file for datum_test.
# This may be replaced when dependencies are built.
