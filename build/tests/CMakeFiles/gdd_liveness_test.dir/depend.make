# Empty dependencies file for gdd_liveness_test.
# This may be replaced when dependencies are built.
