file(REMOVE_RECURSE
  "CMakeFiles/gdd_liveness_test.dir/integration/gdd_liveness_test.cc.o"
  "CMakeFiles/gdd_liveness_test.dir/integration/gdd_liveness_test.cc.o.d"
  "gdd_liveness_test"
  "gdd_liveness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdd_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
