file(REMOVE_RECURSE
  "CMakeFiles/lock_modes_test.dir/lock/lock_modes_test.cc.o"
  "CMakeFiles/lock_modes_test.dir/lock/lock_modes_test.cc.o.d"
  "lock_modes_test"
  "lock_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
