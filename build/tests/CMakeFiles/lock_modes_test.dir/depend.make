# Empty dependencies file for lock_modes_test.
# This may be replaced when dependencies are built.
