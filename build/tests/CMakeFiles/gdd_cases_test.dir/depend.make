# Empty dependencies file for gdd_cases_test.
# This may be replaced when dependencies are built.
