file(REMOVE_RECURSE
  "CMakeFiles/gdd_cases_test.dir/integration/gdd_cases_test.cc.o"
  "CMakeFiles/gdd_cases_test.dir/integration/gdd_cases_test.cc.o.d"
  "gdd_cases_test"
  "gdd_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdd_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
