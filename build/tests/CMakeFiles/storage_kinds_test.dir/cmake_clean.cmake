file(REMOVE_RECURSE
  "CMakeFiles/storage_kinds_test.dir/storage/storage_kinds_test.cc.o"
  "CMakeFiles/storage_kinds_test.dir/storage/storage_kinds_test.cc.o.d"
  "storage_kinds_test"
  "storage_kinds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_kinds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
