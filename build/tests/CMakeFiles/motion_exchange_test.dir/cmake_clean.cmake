file(REMOVE_RECURSE
  "CMakeFiles/motion_exchange_test.dir/net/motion_exchange_test.cc.o"
  "CMakeFiles/motion_exchange_test.dir/net/motion_exchange_test.cc.o.d"
  "motion_exchange_test"
  "motion_exchange_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motion_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
