# Empty dependencies file for motion_exchange_test.
# This may be replaced when dependencies are built.
