// Three-layer memory enforcement (Section 6, Vmemtracker): a query first
// consumes its SLOT quota (group non-shared memory / concurrency), then the
// GROUP SHARED pool, then the GLOBAL SHARED pool; only when all three are
// exhausted is the query cancelled.
#ifndef GPHTAP_RESGROUP_VMEM_TRACKER_H_
#define GPHTAP_RESGROUP_VMEM_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace gphtap {

class VmemTracker;

/// Per-group memory pools managed by the tracker.
class GroupMemory {
 public:
  GroupMemory(std::string name, int64_t limit_bytes, int shared_quota_pct,
              int concurrency)
      : name_(std::move(name)),
        limit_bytes_(limit_bytes),
        shared_bytes_(limit_bytes * shared_quota_pct / 100),
        slot_quota_bytes_(concurrency > 0
                              ? (limit_bytes - shared_bytes_) / concurrency
                              : limit_bytes - shared_bytes_) {}

  const std::string& name() const { return name_; }
  int64_t limit_bytes() const { return limit_bytes_; }
  int64_t slot_quota_bytes() const { return slot_quota_bytes_; }
  int64_t shared_bytes() const { return shared_bytes_; }

 private:
  friend class VmemTracker;
  friend class QueryMemoryAccount;
  std::string name_;
  int64_t limit_bytes_;
  int64_t shared_bytes_;       // MEMORY_SHARED_QUOTA pool
  int64_t slot_quota_bytes_;   // per-query first layer
  int64_t shared_used_ = 0;    // guarded by VmemTracker::mu_
};

/// One query's memory account; destruction releases everything it reserved.
class QueryMemoryAccount {
 public:
  QueryMemoryAccount(VmemTracker* tracker, std::shared_ptr<GroupMemory> group);
  ~QueryMemoryAccount();

  QueryMemoryAccount(const QueryMemoryAccount&) = delete;
  QueryMemoryAccount& operator=(const QueryMemoryAccount&) = delete;

  /// Reserves `bytes` through the slot -> group-shared -> global-shared layers.
  /// kResourceExhausted when all three are spent: the query must be cancelled.
  Status Reserve(int64_t bytes);
  void ReleaseAll();

  int64_t used_bytes() const { return slot_used() + group_shared_used() + global_used(); }
  int64_t slot_used() const { return slot_used_.load(std::memory_order_relaxed); }
  int64_t group_shared_used() const {
    return group_shared_used_.load(std::memory_order_relaxed);
  }
  int64_t global_used() const { return global_used_.load(std::memory_order_relaxed); }

 private:
  VmemTracker* const tracker_;
  std::shared_ptr<GroupMemory> group_;
  // Atomic: one query's parallel slices (per-segment DML workers, motion
  // receivers) reserve through the same account concurrently.
  std::atomic<int64_t> slot_used_{0};
  std::atomic<int64_t> group_shared_used_{0};
  std::atomic<int64_t> global_used_{0};
};

/// Cluster-wide tracker holding the global shared pool.
class VmemTracker {
 public:
  explicit VmemTracker(int64_t global_shared_bytes)
      : global_shared_bytes_(global_shared_bytes) {}

  int64_t global_shared_bytes() const { return global_shared_bytes_; }
  int64_t global_shared_used() const {
    std::lock_guard<std::mutex> g(mu_);
    return global_used_;
  }

  /// Registers the resgroup.vmem_cancels counter (reservation failures that
  /// cancel a query); null is a no-op.
  void set_metrics(MetricsRegistry* metrics) {
    if (metrics != nullptr) m_vmem_cancels_ = metrics->counter("resgroup.vmem_cancels");
  }

 private:
  friend class QueryMemoryAccount;
  const int64_t global_shared_bytes_;
  mutable std::mutex mu_;
  int64_t global_used_ = 0;
  Counter* m_vmem_cancels_ = nullptr;
};

}  // namespace gphtap

#endif  // GPHTAP_RESGROUP_VMEM_TRACKER_H_
