// CPU isolation (Section 6). The real system uses Linux cgroups; here every
// operator charges its simulated work to its resource group's token bucket.
// cpuset-style groups are HARD capped at their core count; cpu_rate_limit
// (cpu.shares) groups are SOFT: they may exceed their share while the system is
// uncontended, exactly like cgroup cpu.shares.
#ifndef GPHTAP_RESGROUP_CPU_GOVERNOR_H_
#define GPHTAP_RESGROUP_CPU_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gphtap {

class CpuGovernor {
 public:
  /// `total_cores` is the machine's virtual core count shared by all groups.
  explicit CpuGovernor(int total_cores);

  /// Registers or reconfigures a group. `cores` is its budget in core-units
  /// (cpuset size, or total_cores * rate_limit / 100); `hard` selects cpuset
  /// semantics.
  void ConfigureGroup(const std::string& name, double cores, bool hard);
  void RemoveGroup(const std::string& name);

  /// Charges `work_us` microseconds of CPU to `group`, sleeping as needed to
  /// keep the group within budget. Unknown groups run unthrottled.
  void Charge(const std::string& group, int64_t work_us);

  /// Total work charged (all groups), for tests/metrics.
  int64_t TotalChargedUs() const { return total_charged_us_.load(); }

  int total_cores() const { return total_cores_; }

  /// Work charged to one group so far.
  int64_t GroupChargedUs(const std::string& group) const;

 private:
  struct GroupState {
    double rate_cores = 1.0;  // work-us earned per wall-us
    bool hard = false;
    std::mutex mu;            // serializes refill/spend
    double tokens_us = 0;     // may go negative transiently
    int64_t last_refill_us = 0;
    std::atomic<int64_t> charged_us{0};
  };

  bool SystemContended(const std::string& self) const;
  /// Total charged work in the current window / machine capacity; >1 means the
  /// simulated machine is oversubscribed.
  double Saturation() const;
  void NoteWindowWork(const std::string& group, int64_t work_us);

  const int total_cores_;
  mutable std::mutex groups_mu_;
  std::unordered_map<std::string, std::shared_ptr<GroupState>> groups_;
  std::atomic<int64_t> total_charged_us_{0};
  // Sliding contention window: per-group work charged in the current 10ms
  // window. "Contended" means OTHER groups are also consuming CPU.
  mutable std::mutex window_mu_;
  mutable int64_t window_start_us_ = 0;
  mutable std::unordered_map<std::string, int64_t> window_work_us_;
};

}  // namespace gphtap

#endif  // GPHTAP_RESGROUP_CPU_GOVERNOR_H_
