// Resource groups (Section 6): concurrency admission + CPU budget + memory
// pools, created via CREATE RESOURCE GROUP and assigned to roles.
#ifndef GPHTAP_RESGROUP_RESOURCE_GROUP_H_
#define GPHTAP_RESGROUP_RESOURCE_GROUP_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "resgroup/cpu_governor.h"
#include "resgroup/vmem_tracker.h"

namespace gphtap {

struct ResourceGroupConfig {
  std::string name;
  int concurrency = 20;           // CONCURRENCY
  double cpu_rate_limit = 0;      // CPU_RATE_LIMIT percent (soft); 0 = unset
  int cpuset_begin = -1;          // CPU_SET begin core (hard); -1 = unset
  int cpuset_end = -1;            // CPU_SET end core, inclusive
  int64_t memory_limit_mb = 64;   // MEMORY_LIMIT (interpreted as MB here)
  int memory_shared_quota = 20;   // MEMORY_SHARED_QUOTA percent

  bool uses_cpuset() const { return cpuset_begin >= 0 && cpuset_end >= cpuset_begin; }
  double cores(int total_cores) const {
    if (uses_cpuset()) return cpuset_end - cpuset_begin + 1;
    if (cpu_rate_limit > 0) return total_cores * cpu_rate_limit / 100.0;
    return total_cores;
  }
};

class LockOwner;

class ResourceGroup {
 public:
  /// `metrics` (optional) registers resgroup.admitted / resgroup.slot_waits /
  /// resgroup.slot_wait_us counters, shared by every group.
  ResourceGroup(ResourceGroupConfig config, CpuGovernor* governor, VmemTracker* vmem,
                MetricsRegistry* metrics = nullptr);
  ~ResourceGroup();

  const ResourceGroupConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }

  /// Everything an admission attempt carries besides the group itself.
  struct AdmitRequest {
    // Cancellation + statement deadline of the requesting transaction; waiting
    // ends early when the owner is cancelled or its deadline passes.
    LockOwner* owner = nullptr;
    // Legacy cancel flag (kept for callers without a LockOwner).
    const std::atomic<bool>* cancelled = nullptr;
    // Admission (queue-wait) timeout; a request queued longer self-evicts with
    // kTimedOut. 0 = wait as long as the statement deadline allows.
    int64_t queue_timeout_us = 0;
    // Bounded wait queue: with `max_queue` > 0, a request arriving when that
    // many are already queued is shed with kResourceExhausted.
    int max_queue = 0;
    // Shed-on-saturation: never queue at all — reject with kResourceExhausted
    // the moment no slot is free (serve-or-shed overload mode).
    bool shed_on_saturation = false;
  };

  /// Admission control: blocks while `concurrency` slots are all taken, within
  /// the request's queue bounds/timeouts. Returns kAborted on cancellation,
  /// kTimedOut on deadline/queue-timeout expiry, kResourceExhausted on shed.
  Status Admit(const AdmitRequest& req);
  /// Back-compat convenience: unbounded wait, optional cancel flag.
  Status Admit(const std::atomic<bool>* cancelled = nullptr);
  void Leave();
  int active() const;

  /// Upper bound the front door applies to this group's in-flight (queued +
  /// executing) statements before shedding: the group's concurrency slots plus
  /// the admission queue it may legally fill downstream (`resgroup_max_queue`
  /// when that GUC bounds it, otherwise `overflow_per_slot` extra per slot as
  /// dispatch buffer). Keeping the front-door bound at or below this means a
  /// shed happens at accept time, before the statement ties up a pool worker
  /// just to park in PR 5's admission queue.
  int DispatchBound(int resgroup_max_queue, int overflow_per_slot) const;

  /// Overload-protection counters (gp_resgroup_status).
  struct OverloadStats {
    int queued_now = 0;            // requests currently parked in admission
    uint64_t queued_total = 0;     // admissions that had to queue
    uint64_t shed = 0;             // rejected with kResourceExhausted
    uint64_t admission_timeouts = 0;  // queue-wait/deadline evictions
  };
  OverloadStats overload_stats() const;

  /// Charges CPU work to this group (may throttle the calling thread).
  void ChargeCpu(int64_t work_us);

  /// New memory account drawing from this group's pools.
  std::unique_ptr<QueryMemoryAccount> NewMemoryAccount();

 private:
  const ResourceGroupConfig config_;
  CpuGovernor* const governor_;
  VmemTracker* const vmem_;
  std::shared_ptr<GroupMemory> memory_;

  mutable std::mutex mu_;
  std::condition_variable slot_available_;
  int active_ = 0;
  int queued_ = 0;
  uint64_t queued_total_ = 0;
  uint64_t shed_ = 0;
  uint64_t admission_timeouts_ = 0;
  Counter* m_admitted_ = nullptr;
  Counter* m_slot_waits_ = nullptr;
  Counter* m_slot_wait_us_ = nullptr;
  Counter* m_sheds_ = nullptr;
  Counter* m_admission_timeouts_ = nullptr;
};

/// Registry of groups + role assignments (CREATE/ALTER ROLE ... RESOURCE GROUP).
class ResourceGroupRegistry {
 public:
  ResourceGroupRegistry(CpuGovernor* governor, VmemTracker* vmem,
                        MetricsRegistry* metrics = nullptr);

  Status CreateGroup(const ResourceGroupConfig& config);
  Status DropGroup(const std::string& name);
  std::shared_ptr<ResourceGroup> Get(const std::string& name) const;
  /// All groups, sorted by name (gp_resgroup_status system view).
  std::vector<std::shared_ptr<ResourceGroup>> ListGroups() const;

  Status AssignRole(const std::string& role, const std::string& group);
  std::shared_ptr<ResourceGroup> GroupForRole(const std::string& role) const;

 private:
  CpuGovernor* const governor_;
  VmemTracker* const vmem_;
  MetricsRegistry* const metrics_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ResourceGroup>> groups_;
  std::unordered_map<std::string, std::string> role_to_group_;
};

}  // namespace gphtap

#endif  // GPHTAP_RESGROUP_RESOURCE_GROUP_H_
