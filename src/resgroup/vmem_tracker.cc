#include "resgroup/vmem_tracker.h"

#include <algorithm>

namespace gphtap {

QueryMemoryAccount::QueryMemoryAccount(VmemTracker* tracker,
                                       std::shared_ptr<GroupMemory> group)
    : tracker_(tracker), group_(std::move(group)) {}

QueryMemoryAccount::~QueryMemoryAccount() { ReleaseAll(); }

Status QueryMemoryAccount::Reserve(int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  int64_t remaining = bytes;

  // Layer 1: the slot quota. The account is per-query but a query's parallel
  // slices share it, so take from the quota with a CAS loop.
  if (group_ != nullptr) {
    int64_t quota = group_->slot_quota_bytes();
    int64_t cur = slot_used_.load(std::memory_order_relaxed);
    int64_t take;
    do {
      take = std::clamp<int64_t>(remaining, 0, std::max<int64_t>(quota - cur, 0));
    } while (take > 0 && !slot_used_.compare_exchange_weak(cur, cur + take,
                                                           std::memory_order_relaxed));
    remaining -= take;
    if (remaining == 0) return Status::OK();
  }

  std::lock_guard<std::mutex> g(tracker_->mu_);
  // Layer 2: group shared pool.
  if (group_ != nullptr) {
    int64_t room = group_->shared_bytes_ - group_->shared_used_;
    int64_t take = std::clamp<int64_t>(remaining, 0, std::max<int64_t>(room, 0));
    group_->shared_used_ += take;
    group_shared_used_.fetch_add(take, std::memory_order_relaxed);
    remaining -= take;
    if (remaining == 0) return Status::OK();
  }
  // Layer 3: global shared pool — the last defender.
  int64_t room = tracker_->global_shared_bytes_ - tracker_->global_used_;
  if (remaining <= room) {
    tracker_->global_used_ += remaining;
    global_used_.fetch_add(remaining, std::memory_order_relaxed);
    return Status::OK();
  }
  if (tracker_->m_vmem_cancels_ != nullptr) tracker_->m_vmem_cancels_->Add(1);
  return Status::ResourceExhausted(
      "vmem: slot, group-shared and global-shared pools exhausted (query in group " +
      (group_ ? group_->name() : std::string("<none>")) + ")");
}

void QueryMemoryAccount::ReleaseAll() {
  slot_used_.store(0, std::memory_order_relaxed);
  int64_t group_shared = group_shared_used_.exchange(0, std::memory_order_relaxed);
  int64_t global = global_used_.exchange(0, std::memory_order_relaxed);
  if (group_shared > 0 || global > 0) {
    std::lock_guard<std::mutex> g(tracker_->mu_);
    if (group_ != nullptr) group_->shared_used_ -= group_shared;
    tracker_->global_used_ -= global;
  }
}

}  // namespace gphtap
