#include "resgroup/vmem_tracker.h"

#include <algorithm>

namespace gphtap {

QueryMemoryAccount::QueryMemoryAccount(VmemTracker* tracker,
                                       std::shared_ptr<GroupMemory> group)
    : tracker_(tracker), group_(std::move(group)) {}

QueryMemoryAccount::~QueryMemoryAccount() { ReleaseAll(); }

Status QueryMemoryAccount::Reserve(int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  int64_t remaining = bytes;

  // Layer 1: the slot quota (no lock needed; slot quota is private to us).
  if (group_ != nullptr) {
    int64_t slot_room = group_->slot_quota_bytes() - slot_used_;
    int64_t take = std::clamp<int64_t>(remaining, 0, std::max<int64_t>(slot_room, 0));
    slot_used_ += take;
    remaining -= take;
    if (remaining == 0) return Status::OK();
  }

  std::lock_guard<std::mutex> g(tracker_->mu_);
  // Layer 2: group shared pool.
  if (group_ != nullptr) {
    int64_t room = group_->shared_bytes_ - group_->shared_used_;
    int64_t take = std::clamp<int64_t>(remaining, 0, std::max<int64_t>(room, 0));
    group_->shared_used_ += take;
    group_shared_used_ += take;
    remaining -= take;
    if (remaining == 0) return Status::OK();
  }
  // Layer 3: global shared pool — the last defender.
  int64_t room = tracker_->global_shared_bytes_ - tracker_->global_used_;
  if (remaining <= room) {
    tracker_->global_used_ += remaining;
    global_used_ += remaining;
    return Status::OK();
  }
  return Status::ResourceExhausted(
      "vmem: slot, group-shared and global-shared pools exhausted (query in group " +
      (group_ ? group_->name() : std::string("<none>")) + ")");
}

void QueryMemoryAccount::ReleaseAll() {
  slot_used_ = 0;
  if (group_shared_used_ > 0 || global_used_ > 0) {
    std::lock_guard<std::mutex> g(tracker_->mu_);
    if (group_ != nullptr) group_->shared_used_ -= group_shared_used_;
    tracker_->global_used_ -= global_used_;
    group_shared_used_ = 0;
    global_used_ = 0;
  }
}

}  // namespace gphtap
