#include "resgroup/cpu_governor.h"

#include <algorithm>

#include "common/clock.h"

namespace gphtap {

namespace {
constexpr int64_t kWindowUs = 10'000;          // contention accounting window
constexpr double kBucketCapacityMs = 20.0;     // burst capacity per core
}  // namespace

CpuGovernor::CpuGovernor(int total_cores) : total_cores_(total_cores) {}

void CpuGovernor::ConfigureGroup(const std::string& name, double cores, bool hard) {
  std::lock_guard<std::mutex> g(groups_mu_);
  auto& state = groups_[name];
  if (!state) state = std::make_shared<GroupState>();
  std::lock_guard<std::mutex> sg(state->mu);
  state->rate_cores = std::max(0.01, cores);
  state->hard = hard;
  state->tokens_us = 0;
  state->last_refill_us = MonotonicMicros();
}

void CpuGovernor::RemoveGroup(const std::string& name) {
  std::lock_guard<std::mutex> g(groups_mu_);
  groups_.erase(name);
}

void CpuGovernor::NoteWindowWork(const std::string& group, int64_t work_us) {
  std::lock_guard<std::mutex> g(window_mu_);
  int64_t now = MonotonicMicros();
  if (now - window_start_us_ > kWindowUs) {
    window_start_us_ = now;
    window_work_us_.clear();
  }
  window_work_us_[group] += work_us;
}

double CpuGovernor::Saturation() const {
  std::lock_guard<std::mutex> g(window_mu_);
  int64_t now = MonotonicMicros();
  int64_t elapsed = now - window_start_us_;
  if (elapsed <= 0 || elapsed > kWindowUs * 2) return 0;
  int64_t total = 0;
  for (const auto& [name, work] : window_work_us_) total += work;
  return static_cast<double>(total) /
         (static_cast<double>(total_cores_) * static_cast<double>(elapsed));
}

bool CpuGovernor::SystemContended(const std::string& self) const {
  std::lock_guard<std::mutex> g(window_mu_);
  int64_t now = MonotonicMicros();
  if (now - window_start_us_ > kWindowUs) return false;  // stale window: idle
  // Contended when OTHER groups' work in the window is a nontrivial share of
  // what the machine could execute in that window.
  int64_t others = 0;
  for (const auto& [name, work] : window_work_us_) {
    if (name != self) others += work;
  }
  return others > static_cast<int64_t>(0.2 * static_cast<double>(total_cores_) *
                                       static_cast<double>(now - window_start_us_ + 1));
}

void CpuGovernor::Charge(const std::string& group, int64_t work_us) {
  if (work_us <= 0) return;
  total_charged_us_.fetch_add(work_us, std::memory_order_relaxed);
  NoteWindowWork(group, work_us);

  std::shared_ptr<GroupState> state;
  {
    std::lock_guard<std::mutex> g(groups_mu_);
    auto it = groups_.find(group);
    if (it == groups_.end()) return;  // unknown group: unthrottled
    state = it->second;
  }
  state->charged_us.fetch_add(work_us, std::memory_order_relaxed);

  int64_t sleep_us = 0;
  bool over_budget = false;
  {
    std::lock_guard<std::mutex> sg(state->mu);
    int64_t now = MonotonicMicros();
    double capacity = kBucketCapacityMs * 1000.0 * state->rate_cores;
    state->tokens_us = std::min(
        capacity, state->tokens_us + static_cast<double>(now - state->last_refill_us) *
                                         state->rate_cores);
    state->last_refill_us = now;
    state->tokens_us -= static_cast<double>(work_us);
    if (state->tokens_us < 0) {
      over_budget = true;
      // Soft groups (cpu.shares) may overdraw while the system is idle.
      if (!state->hard && !SystemContended(group)) {
        state->tokens_us = 0;
      } else {
        sleep_us = static_cast<int64_t>(-state->tokens_us / state->rate_cores);
      }
    }
  }
  // Fair-share queueing delay: when the machine is oversubscribed, soft-group
  // work waits for a runnable core like any CFS thread would. Hard (cpuset)
  // groups own their cores and are insulated from the global runqueue — this
  // insulation is exactly what Figure 18 measures.
  if (!state->hard && sleep_us == 0 && !over_budget) {
    double saturation = Saturation();
    if (saturation > 1.0) {
      sleep_us = static_cast<int64_t>(
          static_cast<double>(work_us) * std::min(saturation - 1.0, 4.0));
    }
  }
  if (sleep_us > 0) PreciseSleepUs(sleep_us);
}

int64_t CpuGovernor::GroupChargedUs(const std::string& group) const {
  std::lock_guard<std::mutex> g(groups_mu_);
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second->charged_us.load();
}

}  // namespace gphtap
