#include "resgroup/resource_group.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/wait_event.h"

namespace gphtap {

ResourceGroup::ResourceGroup(ResourceGroupConfig config, CpuGovernor* governor,
                             VmemTracker* vmem, MetricsRegistry* metrics)
    : config_(std::move(config)), governor_(governor), vmem_(vmem) {
  if (metrics != nullptr) {
    m_admitted_ = metrics->counter("resgroup.admitted");
    m_slot_waits_ = metrics->counter("resgroup.slot_waits");
    m_slot_wait_us_ = metrics->counter("resgroup.slot_wait_us");
  }
  memory_ = std::make_shared<GroupMemory>(config_.name, config_.memory_limit_mb << 20,
                                          config_.memory_shared_quota,
                                          config_.concurrency);
  governor_->ConfigureGroup(config_.name, config_.cores(governor_->total_cores()),
                            config_.uses_cpuset());
}

ResourceGroup::~ResourceGroup() { governor_->RemoveGroup(config_.name); }

Status ResourceGroup::Admit(const std::atomic<bool>* cancelled) {
  std::unique_lock<std::mutex> lk(mu_);
  bool waited = false;
  std::unique_ptr<WaitEventScope> wait_scope;
  Stopwatch sw;
  while (active_ >= config_.concurrency) {
    if (!waited) {
      waited = true;
      if (m_slot_waits_ != nullptr) m_slot_waits_->Add(1);
      wait_scope = std::make_unique<WaitEventScope>(WaitEvent::kResGroupSlot);
    }
    if (cancelled != nullptr && cancelled->load(std::memory_order_acquire)) {
      return Status::Aborted("cancelled while queued for resource group " + name());
    }
    slot_available_.wait_for(lk, std::chrono::milliseconds(50));
  }
  wait_scope.reset();
  if (waited && m_slot_wait_us_ != nullptr) {
    m_slot_wait_us_->Add(static_cast<uint64_t>(sw.ElapsedMicros()));
  }
  ++active_;
  if (m_admitted_ != nullptr) m_admitted_->Add(1);
  return Status::OK();
}

void ResourceGroup::Leave() {
  std::lock_guard<std::mutex> lk(mu_);
  if (active_ > 0) --active_;
  slot_available_.notify_one();
}

int ResourceGroup::active() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_;
}

void ResourceGroup::ChargeCpu(int64_t work_us) { governor_->Charge(name(), work_us); }

std::unique_ptr<QueryMemoryAccount> ResourceGroup::NewMemoryAccount() {
  return std::make_unique<QueryMemoryAccount>(vmem_, memory_);
}

ResourceGroupRegistry::ResourceGroupRegistry(CpuGovernor* governor, VmemTracker* vmem,
                                             MetricsRegistry* metrics)
    : governor_(governor), vmem_(vmem), metrics_(metrics) {}

Status ResourceGroupRegistry::CreateGroup(const ResourceGroupConfig& config) {
  std::lock_guard<std::mutex> g(mu_);
  if (groups_.count(config.name)) {
    return Status::AlreadyExists("resource group " + config.name);
  }
  groups_[config.name] = std::make_shared<ResourceGroup>(config, governor_, vmem_, metrics_);
  return Status::OK();
}

Status ResourceGroupRegistry::DropGroup(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  if (groups_.erase(name) == 0) return Status::NotFound("resource group " + name);
  for (auto it = role_to_group_.begin(); it != role_to_group_.end();) {
    if (it->second == name) {
      it = role_to_group_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

std::shared_ptr<ResourceGroup> ResourceGroupRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = groups_.find(name);
  return it == groups_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<ResourceGroup>> ResourceGroupRegistry::ListGroups() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::shared_ptr<ResourceGroup>> out;
  out.reserve(groups_.size());
  for (const auto& [name, group] : groups_) out.push_back(group);
  std::sort(out.begin(), out.end(),
            [](const std::shared_ptr<ResourceGroup>& a,
               const std::shared_ptr<ResourceGroup>& b) { return a->name() < b->name(); });
  return out;
}

Status ResourceGroupRegistry::AssignRole(const std::string& role,
                                         const std::string& group) {
  std::lock_guard<std::mutex> g(mu_);
  if (!groups_.count(group)) return Status::NotFound("resource group " + group);
  role_to_group_[role] = group;
  return Status::OK();
}

std::shared_ptr<ResourceGroup> ResourceGroupRegistry::GroupForRole(
    const std::string& role) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = role_to_group_.find(role);
  if (it == role_to_group_.end()) return nullptr;
  auto git = groups_.find(it->second);
  return git == groups_.end() ? nullptr : git->second;
}

}  // namespace gphtap
