#include "resgroup/resource_group.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/wait_event.h"
#include "lock/lock_owner.h"

namespace gphtap {

ResourceGroup::ResourceGroup(ResourceGroupConfig config, CpuGovernor* governor,
                             VmemTracker* vmem, MetricsRegistry* metrics)
    : config_(std::move(config)), governor_(governor), vmem_(vmem) {
  if (metrics != nullptr) {
    m_admitted_ = metrics->counter("resgroup.admitted");
    m_slot_waits_ = metrics->counter("resgroup.slot_waits");
    m_slot_wait_us_ = metrics->counter("resgroup.slot_wait_us");
    m_sheds_ = metrics->counter("resilience.sheds");
    m_admission_timeouts_ = metrics->counter("resilience.admission_timeouts");
  }
  memory_ = std::make_shared<GroupMemory>(config_.name, config_.memory_limit_mb << 20,
                                          config_.memory_shared_quota,
                                          config_.concurrency);
  governor_->ConfigureGroup(config_.name, config_.cores(governor_->total_cores()),
                            config_.uses_cpuset());
}

ResourceGroup::~ResourceGroup() { governor_->RemoveGroup(config_.name); }

Status ResourceGroup::Admit(const std::atomic<bool>* cancelled) {
  AdmitRequest req;
  req.cancelled = cancelled;
  return Admit(req);
}

Status ResourceGroup::Admit(const AdmitRequest& req) {
  std::unique_lock<std::mutex> lk(mu_);
  // Fast path: a slot is free (uncontended admission never queues).
  if (active_ < config_.concurrency) {
    ++active_;
    if (m_admitted_ != nullptr) m_admitted_->Add(1);
    return Status::OK();
  }
  // Saturated: shed before queueing when the policy says so.
  if (req.shed_on_saturation || (req.max_queue > 0 && queued_ >= req.max_queue)) {
    ++shed_;
    if (m_sheds_ != nullptr) m_sheds_->Add(1);
    return Status::ResourceExhausted(
        "resource group " + name() +
        (req.shed_on_saturation ? " saturated (shed-on-saturation)"
                                : " admission queue full"));
  }
  ++queued_;
  ++queued_total_;
  if (m_slot_waits_ != nullptr) m_slot_waits_->Add(1);
  WaitEventScope wait_scope(WaitEvent::kResGroupSlot);
  Stopwatch sw;
  // Queue-wait timeout (relative) and the owner's statement deadline
  // (absolute) combine; the earlier evicts this request from the queue.
  const int64_t stmt_deadline = req.owner != nullptr ? req.owner->deadline_us() : 0;
  const int64_t queue_deadline =
      req.queue_timeout_us > 0 ? MonotonicMicros() + req.queue_timeout_us : 0;
  int64_t effective_deadline = stmt_deadline;
  if (queue_deadline != 0 &&
      (effective_deadline == 0 || queue_deadline < effective_deadline)) {
    effective_deadline = queue_deadline;
  }
  Status result = Status::OK();
  while (active_ >= config_.concurrency) {
    if ((req.cancelled != nullptr && req.cancelled->load(std::memory_order_acquire)) ||
        (req.owner != nullptr && req.owner->cancelled())) {
      result = req.owner != nullptr && req.owner->cancelled()
                   ? req.owner->cancel_reason()
                   : Status::Aborted("cancelled while queued for resource group " + name());
      break;
    }
    const int64_t now = MonotonicMicros();
    if (effective_deadline != 0 && now >= effective_deadline) {
      ++admission_timeouts_;
      if (m_admission_timeouts_ != nullptr) m_admission_timeouts_->Add(1);
      if (stmt_deadline != 0 && now >= stmt_deadline) {
        result = Status::TimedOut("statement timeout while queued for resource group " +
                                  name());
        if (req.owner != nullptr) req.owner->Cancel(result);
      } else {
        result = Status::TimedOut("admission timeout in resource group " + name());
      }
      break;
    }
    int64_t poll_us = 50'000;
    if (effective_deadline != 0) {
      int64_t remaining = effective_deadline - now;
      if (remaining < poll_us) poll_us = remaining > 0 ? remaining : 1;
    }
    slot_available_.wait_for(lk, std::chrono::microseconds(poll_us));
  }
  --queued_;
  if (m_slot_wait_us_ != nullptr) {
    m_slot_wait_us_->Add(static_cast<uint64_t>(sw.ElapsedMicros()));
  }
  if (!result.ok()) return result;
  ++active_;
  if (m_admitted_ != nullptr) m_admitted_->Add(1);
  return Status::OK();
}

int ResourceGroup::DispatchBound(int resgroup_max_queue, int overflow_per_slot) const {
  int bound = config_.concurrency;
  if (resgroup_max_queue > 0) {
    bound += resgroup_max_queue;
  } else {
    bound += config_.concurrency * std::max(overflow_per_slot, 0);
  }
  return std::max(bound, 1);
}

ResourceGroup::OverloadStats ResourceGroup::overload_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  OverloadStats s;
  s.queued_now = queued_;
  s.queued_total = queued_total_;
  s.shed = shed_;
  s.admission_timeouts = admission_timeouts_;
  return s;
}

void ResourceGroup::Leave() {
  std::lock_guard<std::mutex> lk(mu_);
  if (active_ > 0) --active_;
  slot_available_.notify_one();
}

int ResourceGroup::active() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_;
}

void ResourceGroup::ChargeCpu(int64_t work_us) { governor_->Charge(name(), work_us); }

std::unique_ptr<QueryMemoryAccount> ResourceGroup::NewMemoryAccount() {
  return std::make_unique<QueryMemoryAccount>(vmem_, memory_);
}

ResourceGroupRegistry::ResourceGroupRegistry(CpuGovernor* governor, VmemTracker* vmem,
                                             MetricsRegistry* metrics)
    : governor_(governor), vmem_(vmem), metrics_(metrics) {}

Status ResourceGroupRegistry::CreateGroup(const ResourceGroupConfig& config) {
  std::lock_guard<std::mutex> g(mu_);
  if (groups_.count(config.name)) {
    return Status::AlreadyExists("resource group " + config.name);
  }
  groups_[config.name] = std::make_shared<ResourceGroup>(config, governor_, vmem_, metrics_);
  return Status::OK();
}

Status ResourceGroupRegistry::DropGroup(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  if (groups_.erase(name) == 0) return Status::NotFound("resource group " + name);
  for (auto it = role_to_group_.begin(); it != role_to_group_.end();) {
    if (it->second == name) {
      it = role_to_group_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

std::shared_ptr<ResourceGroup> ResourceGroupRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = groups_.find(name);
  return it == groups_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<ResourceGroup>> ResourceGroupRegistry::ListGroups() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::shared_ptr<ResourceGroup>> out;
  out.reserve(groups_.size());
  for (const auto& [name, group] : groups_) out.push_back(group);
  std::sort(out.begin(), out.end(),
            [](const std::shared_ptr<ResourceGroup>& a,
               const std::shared_ptr<ResourceGroup>& b) { return a->name() < b->name(); });
  return out;
}

Status ResourceGroupRegistry::AssignRole(const std::string& role,
                                         const std::string& group) {
  std::lock_guard<std::mutex> g(mu_);
  if (!groups_.count(group)) return Status::NotFound("resource group " + group);
  role_to_group_[role] = group;
  return Status::OK();
}

std::shared_ptr<ResourceGroup> ResourceGroupRegistry::GroupForRole(
    const std::string& role) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = role_to_group_.find(role);
  if (it == role_to_group_.end()) return nullptr;
  auto git = groups_.find(it->second);
  return git == groups_.end() ? nullptr : git->second;
}

}  // namespace gphtap
