// Deterministic fault injection for robustness tests: named fault points in
// the commit, replication, and interconnect paths that tests arm per-run with
// one-shot, always-on, or probabilistic (seeded RNG) triggers.
//
// A fault point is a string name plus an optional integer scope (for us: the
// segment index, kAnyScope = match any). Production code calls Evaluate() at
// the point; it returns true when the test armed a matching trigger. The fast
// path — nothing armed anywhere — is a single relaxed atomic load.
#ifndef GPHTAP_COMMON_FAULT_INJECTOR_H_
#define GPHTAP_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/rng.h"

namespace gphtap {

// Canonical fault-point names. Tests may use arbitrary strings, but the points
// the commit/replication paths actually evaluate are catalogued here (and in
// DESIGN.md). Crash points take the segment index as scope.
namespace fault_points {
// 2PC: segment dies before its PREPARE became durable (transaction is lost).
inline constexpr char kCrashBeforePrepare[] = "segment.crash_before_prepare";
// 2PC: PREPARE is durable but the ack never reaches the coordinator.
inline constexpr char kCrashBeforePrepareAck[] = "segment.crash_before_prepare_ack";
// 2PC: segment dies between the coordinator's commit record and COMMIT
// PREPARED — the in-doubt window Section 5 resolves from the commit record.
inline constexpr char kCrashAfterPrepare[] = "segment.crash_after_prepare";
// 2PC: COMMIT PREPARED is durable but the ack is lost (retry must be
// idempotent).
inline constexpr char kCrashBeforeCommitPreparedAck[] =
    "segment.crash_before_commit_prepared_ack";
// 1PC: segment dies before the single-phase COMMIT became durable.
inline constexpr char kCrashBeforeCommit[] = "segment.crash_before_commit";
// 1PC: COMMIT is durable but the ack is lost.
inline constexpr char kCrashBeforeCommitAck[] = "segment.crash_before_commit_ack";
// Mirror replay pauses while armed (non-consuming; checked with IsArmed).
inline constexpr char kMirrorReplayStall[] = "mirror.replay_stall";
// FTS probe times out even though the wire delivered it (scope = segment).
inline constexpr char kFtsProbeTimeout[] = "fts.probe_timeout";
// Expansion: a source segment dies during the rebalance copy scan (scope =
// segment index). The statement aborts; the rebalancing flag stays up and the
// coordinator retries after recovery.
inline constexpr char kCrashDuringRebalanceCopy[] =
    "segment.crash_during_rebalance_copy";
// Front door: a pool worker stalls (delay point, EvaluateDelay) after
// dequeuing a statement and before executing it — a GC pause / hung disk.
inline constexpr char kFrontendWorkerStall[] = "frontend.worker_stall";
// Front door: an arriving connect is dropped at accept; surfaced to the
// client as a retryable shed (kUnavailable + retry-after), never a hang.
inline constexpr char kFrontendAcceptDrop[] = "frontend.accept_drop";
}  // namespace fault_points

/// Thread-safe registry of armed fault points. One per Cluster.
class FaultInjector {
 public:
  static constexpr int kAnyScope = -1;

  /// Fires exactly once, on the first matching Evaluate(), then disarms.
  void ArmOneShot(const std::string& point, int scope = kAnyScope);
  /// Fires on every matching Evaluate() until disarmed.
  void ArmAlways(const std::string& point, int scope = kAnyScope);
  /// Fires with probability `p` per matching Evaluate(), deterministically
  /// from `seed`.
  void ArmProbability(const std::string& point, double p, uint64_t seed,
                      int scope = kAnyScope);
  /// Arms a delay point: EvaluateDelay() returns `delay_us` while armed.
  void ArmDelay(const std::string& point, int64_t delay_us, int scope = kAnyScope);

  void Disarm(const std::string& point);
  void DisarmAll();

  /// True when an armed trigger matches; consumes one-shot triggers.
  bool Evaluate(const std::string& point, int scope = kAnyScope);
  /// Extra latency (us) to inject at this point, or 0.
  int64_t EvaluateDelay(const std::string& point, int scope = kAnyScope);
  /// Non-consuming check (used for stall-while-armed points).
  bool IsArmed(const std::string& point, int scope = kAnyScope) const;

  /// Times the point fired (evaluated true) since arming.
  uint64_t FireCount(const std::string& point) const;

  bool AnyArmed() const { return num_armed_.load(std::memory_order_relaxed) > 0; }

 private:
  enum class Mode { kOneShot, kAlways, kProbability };

  struct Spec {
    Mode mode = Mode::kAlways;
    int scope = kAnyScope;
    double probability = 1.0;
    Rng rng{0};
    int64_t delay_us = 0;
  };

  void Arm(const std::string& point, Spec spec);
  bool EvaluateLocked(Spec& spec, int scope);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Spec> points_;
  std::unordered_map<std::string, uint64_t> fired_;  // survives one-shot disarm
  std::atomic<int> num_armed_{0};
};

}  // namespace gphtap

#endif  // GPHTAP_COMMON_FAULT_INJECTOR_H_
