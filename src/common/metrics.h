// Cluster-wide metrics registry (observability layer).
//
// Subsystems register named metrics once (get-or-create) and then update them
// lock-free on the hot path: counters and gauges are plain atomics, histograms
// wrap the log-bucketed Histogram behind a mutex. Pointers returned by the
// registry are stable for the registry's lifetime, so a subsystem resolves its
// metrics once in set_metrics() and keeps raw pointers — every hook is
// nullptr-safe so subsystems still work standalone (unit tests, no registry).
//
// Naming scheme: dotted lowercase `<subsystem>.<metric>[.<tag>]`, e.g.
// `lock.waits`, `txn.one_phase_commits`, `net.sent.tuple_data`. See
// DESIGN.md "Observability" for the full catalogue.
#ifndef GPHTAP_COMMON_METRICS_H_
#define GPHTAP_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/histogram.h"

namespace gphtap {

/// Monotonically increasing event count. All operations are relaxed atomics:
/// metrics tolerate torn cross-counter reads, they never synchronize data.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, running transactions); can go down.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Thread-safe wrapper over the log-bucketed Histogram.
class HistogramMetric {
 public:
  void Record(int64_t v) {
    std::lock_guard<std::mutex> g(mu_);
    hist_.Record(v);
  }
  /// Copy of the current distribution (for percentile queries off-path).
  Histogram snapshot() const {
    std::lock_guard<std::mutex> g(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  /// Counter value by name; 0 when the metric was never registered.
  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  int64_t gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }

  /// Human-readable text dump, one `name = value` line per metric, sorted.
  std::string ToString() const;
};

/// Thread-safe name -> metric registry. Get-or-create: two subsystems asking
/// for the same name share the metric (e.g. all segments' lock managers
/// accumulate into one `lock.waits`).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  HistogramMetric* histogram(const std::string& name);

  MetricsSnapshot TakeSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace gphtap

#endif  // GPHTAP_COMMON_METRICS_H_
