#include "common/fault_injector.h"

namespace gphtap {

void FaultInjector::Arm(const std::string& point, Spec spec) {
  std::lock_guard<std::mutex> g(mu_);
  auto [it, inserted] = points_.insert_or_assign(point, std::move(spec));
  (void)it;
  if (inserted) num_armed_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::ArmOneShot(const std::string& point, int scope) {
  Spec s;
  s.mode = Mode::kOneShot;
  s.scope = scope;
  Arm(point, std::move(s));
}

void FaultInjector::ArmAlways(const std::string& point, int scope) {
  Spec s;
  s.mode = Mode::kAlways;
  s.scope = scope;
  Arm(point, std::move(s));
}

void FaultInjector::ArmProbability(const std::string& point, double p, uint64_t seed,
                                   int scope) {
  Spec s;
  s.mode = Mode::kProbability;
  s.scope = scope;
  s.probability = p;
  s.rng = Rng(seed);
  Arm(point, std::move(s));
}

void FaultInjector::ArmDelay(const std::string& point, int64_t delay_us, int scope) {
  Spec s;
  s.mode = Mode::kAlways;
  s.scope = scope;
  s.delay_us = delay_us;
  Arm(point, std::move(s));
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> g(mu_);
  if (points_.erase(point) > 0) num_armed_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> g(mu_);
  num_armed_.fetch_sub(static_cast<int>(points_.size()), std::memory_order_relaxed);
  points_.clear();
}

bool FaultInjector::EvaluateLocked(Spec& spec, int scope) {
  if (spec.scope != kAnyScope && scope != kAnyScope && spec.scope != scope) return false;
  switch (spec.mode) {
    case Mode::kOneShot:
    case Mode::kAlways:
      return true;
    case Mode::kProbability:
      return spec.rng.Chance(spec.probability);
  }
  return false;
}

bool FaultInjector::Evaluate(const std::string& point, int scope) {
  if (!AnyArmed()) return false;
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  if (!EvaluateLocked(it->second, scope)) return false;
  ++fired_[point];
  if (it->second.mode == Mode::kOneShot) {
    points_.erase(it);
    num_armed_.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

int64_t FaultInjector::EvaluateDelay(const std::string& point, int scope) {
  if (!AnyArmed()) return 0;
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || it->second.delay_us <= 0) return 0;
  if (!EvaluateLocked(it->second, scope)) return 0;
  ++fired_[point];
  return it->second.delay_us;
}

bool FaultInjector::IsArmed(const std::string& point, int scope) const {
  if (!AnyArmed()) return false;
  std::lock_guard<std::mutex> g(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  const Spec& spec = it->second;
  return spec.scope == kAnyScope || scope == kAnyScope || spec.scope == scope;
}

uint64_t FaultInjector::FireCount(const std::string& point) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = fired_.find(point);
  return it == fired_.end() ? 0 : it->second;
}

}  // namespace gphtap
