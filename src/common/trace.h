// Per-query distributed tracing and EXPLAIN ANALYZE support.
//
// A Trace is one query's span tree: the coordinator opens a root span, the
// planner and each executor slice (one per motion x gang member, running on a
// segment's producer thread) open child spans, all stamped with the monotonic
// clock. Spans carry the segment index they ran on (kCoordinatorNode for the
// coordinator) so tests and the text dump can show where time went.
//
// OperatorStatsCollector accumulates per-plan-operator actual rows / wall time
// keyed by PlanNode::node_id; Session::ExplainAnalyzeSelect renders it as an
// annotated plan. SlowQueryLog is a small ring buffer of statements that
// exceeded ClusterOptions::slow_query_threshold_us.
#ifndef GPHTAP_COMMON_TRACE_H_
#define GPHTAP_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gphtap {

struct TraceSpan {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  int node = -1;  // segment index, or kCoordinatorNode
  int64_t start_us = 0;
  int64_t end_us = 0;  // 0 while the span is open
  int64_t rows = 0;    // rows produced, where the instrumented site knows
  bool aborted = false;  // span was force-closed when its query aborted
};

/// One query's span collection. Thread-safe: executor producer threads on
/// different segments append concurrently.
class Trace {
 public:
  static constexpr int kCoordinatorNode = -1;

  explicit Trace(uint64_t trace_id = 0) : trace_id_(trace_id) {}

  uint64_t trace_id() const { return trace_id_; }

  /// Opens a span; returns its id (parent_id 0 makes it a root).
  uint64_t StartSpan(const std::string& name, uint64_t parent_id = 0,
                     int node = kCoordinatorNode);
  /// No-op if the span is already ended (CloseOpenSpans may have beaten us).
  void EndSpan(uint64_t span_id, int64_t rows = 0);

  /// Appends an already-finished span (wait intervals measure first, then
  /// record). Returns its id.
  uint64_t AddCompletedSpan(const std::string& name, uint64_t parent_id, int node,
                            int64_t start_us, int64_t end_us);

  /// Force-closes every still-open span at `now`; with `mark_aborted`, flags
  /// them so an aborted query's trace shows where execution was cut off
  /// instead of leaking open spans.
  void CloseOpenSpans(bool mark_aborted);

  std::vector<TraceSpan> Spans() const;
  /// Indented text rendering of the span tree with relative timestamps.
  std::string ToString() const;

 private:
  const uint64_t trace_id_;
  mutable std::mutex mu_;
  std::atomic<uint64_t> next_id_{1};
  std::vector<TraceSpan> spans_;
};

/// Per-operator actuals for EXPLAIN ANALYZE, keyed by PlanNode::node_id.
/// An operator that runs on several gang members records once per execution;
/// rows accumulate, time keeps the slowest execution (the critical path).
class OperatorStatsCollector {
 public:
  struct OpStats {
    int64_t rows = 0;
    int64_t batches = 0;  // ColumnBatches emitted (vectorized operators only)
    int64_t executions = 0;
    int64_t total_time_us = 0;
    int64_t max_time_us = 0;
    // Motion nodes only: interconnect blocked time, reported separately from
    // operator wall time in EXPLAIN ANALYZE.
    int64_t send_wait_us = 0;
    int64_t recv_wait_us = 0;
    // Scan nodes only: visible rows served per physical store ("heap",
    // "ao-column", "delta-sealed", "delta-open", ...), accumulated across the
    // gang. EXPLAIN ANALYZE renders these on the scan line.
    std::map<std::string, int64_t> store_rows;
  };

  void Record(int node_id, int64_t rows, int64_t elapsed_us, int64_t batches = 0);
  /// Adds interconnect blocked time to a motion node's stats.
  void RecordMotionWait(int node_id, int64_t send_wait_us, int64_t recv_wait_us);
  /// Accumulates rows a scan served from one physical store.
  void RecordStoreRows(int node_id, const std::string& store, int64_t rows);
  /// Zero-valued OpStats when the node never executed.
  OpStats Get(int node_id) const;

 private:
  mutable std::mutex mu_;
  std::map<int, OpStats> stats_;
};

/// Fixed-capacity ring of the slowest-offending statements.
class SlowQueryLog {
 public:
  struct WaitItem {
    std::string event;  // "Class:event", e.g. "Lock:relation"
    uint64_t count = 0;
    int64_t total_us = 0;
  };

  struct Entry {
    std::string sql;
    int64_t duration_us = 0;
    int64_t at_us = 0;  // monotonic timestamp of completion
    /// The statement's top wait events by accumulated time (at most 3): a slow
    /// OLAP scan (empty / Net-heavy) reads differently from a lock-starved
    /// OLTP statement (Lock-heavy) at a glance.
    std::vector<WaitItem> top_waits;
    // Join key against gp_stat_statements ("" when fingerprinting is off),
    // plus the execution-shape facts that explain a one-off slow run: did it
    // miss the plan cache, and how many transparent retries did it take.
    std::string fingerprint;
    bool plan_cache_hit = false;
    uint64_t retries = 0;
  };

  explicit SlowQueryLog(size_t capacity = 128) : capacity_(capacity) {}

  void Record(const std::string& sql, int64_t duration_us, int64_t at_us,
              std::vector<WaitItem> top_waits = {}, std::string fingerprint = "",
              bool plan_cache_hit = false, uint64_t retries = 0);
  std::vector<Entry> Entries() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Entry> entries_;
};

}  // namespace gphtap

#endif  // GPHTAP_COMMON_TRACE_H_
