#include "common/status.h"

namespace gphtap {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlockDetected:
      return "DeadlockDetected";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kStopIteration:
      return "StopIteration";
  }
  return "Unknown";
}

bool IsRetryableFailure(const Status& s) {
  return s.code() == StatusCode::kUnavailable || s.code() == StatusCode::kTimedOut;
}

bool IsRetryableStatementFailure(const Status& s) {
  return s.code() == StatusCode::kUnavailable;
}

bool IsShedFailure(const Status& s) {
  return s.code() == StatusCode::kUnavailable && s.retry_after_us() > 0;
}

}  // namespace gphtap
