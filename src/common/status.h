// Status and StatusOr: error propagation without exceptions (RocksDB/Arrow idiom).
#ifndef GPHTAP_COMMON_STATUS_H_
#define GPHTAP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gphtap {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kAborted,            // transaction aborted (deadlock victim, serialization, cancel)
  kDeadlockDetected,   // aborted specifically as a deadlock victim
  kResourceExhausted,  // vmem limit / admission failure
  kTimedOut,
  kUnavailable,
  kInternal,
  kNotSupported,
  kStopIteration,  // internal: producer should stop early (LIMIT satisfied)
};

/// Returns a stable human-readable name for `code` ("Ok", "Aborted", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Aborted(std::string m) { return Status(StatusCode::kAborted, std::move(m)); }
  static Status DeadlockDetected(std::string m) {
    return Status(StatusCode::kDeadlockDetected, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status TimedOut(std::string m) { return Status(StatusCode::kTimedOut, std::move(m)); }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status StopIteration() { return Status(StatusCode::kStopIteration, ""); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Attaches a retry-after hint: the producer's estimate of how long the
  /// caller should back off before retrying. Carried by shed responses from
  /// the front door (accept/dispatch queue overflow) so clients pace their
  /// retries to the service rate instead of hammering a saturated pool.
  Status WithRetryAfter(int64_t retry_after_us) && {
    retry_after_us_ = retry_after_us;
    return std::move(*this);
  }
  Status WithRetryAfter(int64_t retry_after_us) const& {
    Status s = *this;
    s.retry_after_us_ = retry_after_us;
    return s;
  }
  /// Backoff hint in microseconds; 0 when the producer offered none.
  int64_t retry_after_us() const { return retry_after_us_; }

  /// True if the transaction holding this status must roll back (victim/cancel paths).
  bool IsAbortLike() const {
    return code_ == StatusCode::kAborted || code_ == StatusCode::kDeadlockDetected ||
           code_ == StatusCode::kResourceExhausted;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

 private:
  StatusCode code_;
  std::string msg_;
  int64_t retry_after_us_ = 0;  // producer backoff hint; not part of equality
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Shared retryable/non-retryable classification. Commit retry (PR 1's
/// CommitSegmentWithRetry) and coordinator statement retry both consult these
/// so the two policies cannot drift.
///
/// A failure is retryable when the remote segment may not have acted — or its
/// outcome is unknown — and repeating the request is safe or idempotent:
/// kUnavailable (segment down / failover in flight) and kTimedOut (request may
/// have been lost in transit).
bool IsRetryableFailure(const Status& s);

/// Retryability for whole *statements* at the coordinator. Narrower than
/// IsRetryableFailure: a kTimedOut here is the user's own deadline expiring,
/// which must surface, so only kUnavailable qualifies. Statements are only
/// retried when read-only (write retry past the commit decision point could
/// double-apply effects).
bool IsRetryableStatementFailure(const Status& s);

/// True when the front door (or any admission layer) shed the request to
/// protect itself: retryable kUnavailable carrying a retry-after hint. A shed
/// is guaranteed to have had no effect, so callers may retry writes too —
/// unlike a generic kUnavailable, whose outcome may be ambiguous.
bool IsShedFailure(const Status& s);

/// A Status or a value of type T.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok());
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gphtap

/// Propagates a non-OK Status to the caller.
#define GPHTAP_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::gphtap::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates `rexpr` (a StatusOr) and moves its value into `lhs`, or returns the error.
#define GPHTAP_ASSIGN_OR_RETURN(lhs, rexpr)     \
  auto GPHTAP_CONCAT_(_so, __LINE__) = (rexpr); \
  if (!GPHTAP_CONCAT_(_so, __LINE__).ok())      \
    return GPHTAP_CONCAT_(_so, __LINE__).status(); \
  lhs = std::move(GPHTAP_CONCAT_(_so, __LINE__)).value()

#define GPHTAP_CONCAT_IMPL_(a, b) a##b
#define GPHTAP_CONCAT_(a, b) GPHTAP_CONCAT_IMPL_(a, b)

#endif  // GPHTAP_COMMON_STATUS_H_
