// Deterministic pseudo-random number generation for workloads and tests.
#ifndef GPHTAP_COMMON_RNG_H_
#define GPHTAP_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gphtap {

/// xoshiro256** — fast, high-quality, seedable PRNG. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding.
    uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    auto rotl = [](uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

/// Zipfian distribution over [0, n) with parameter theta (YCSB-style). Precomputes zeta.
class Zipf {
 public:
  Zipf(uint64_t n, double theta) : n_(n), theta_(theta) {
    assert(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_)) %
           n_;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace gphtap

#endif  // GPHTAP_COMMON_RNG_H_
