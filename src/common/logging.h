// Minimal leveled logger. Thread-safe; intended for debugging and daemon tracing.
#ifndef GPHTAP_COMMON_LOGGING_H_
#define GPHTAP_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace gphtap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
class Logger {
 public:
  static Logger& Get() {
    static Logger* logger = new Logger();
    return *logger;
  }

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  void Write(LogLevel level, const std::string& msg) {
    if (level < this->level()) return;
    static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::lock_guard<std::mutex> g(mu_);
    std::fprintf(stderr, "[%s] %s\n", names[static_cast<int>(level)], msg.c_str());
  }

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarning};
  std::mutex mu_;
};

namespace log_internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Write(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace log_internal

}  // namespace gphtap

#define GPHTAP_LOG(level)                                                       \
  ::gphtap::log_internal::LogMessage(::gphtap::LogLevel::k##level).stream()

#endif  // GPHTAP_COMMON_LOGGING_H_
