#include "common/thread_pool.h"

namespace gphtap {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity) : tasks_(queue_capacity) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) { return tasks_.Push(std::move(task)); }

void ThreadPool::Shutdown() {
  tasks_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  while (auto task = tasks_.Pop()) {
    (*task)();
  }
}

}  // namespace gphtap
