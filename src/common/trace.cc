#include "common/trace.h"

#include <algorithm>
#include <sstream>

#include "common/clock.h"

namespace gphtap {

uint64_t Trace::StartSpan(const std::string& name, uint64_t parent_id, int node) {
  TraceSpan span;
  span.span_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent_id = parent_id;
  span.name = name;
  span.node = node;
  span.start_us = MonotonicMicros();
  std::lock_guard<std::mutex> g(mu_);
  spans_.push_back(std::move(span));
  return spans_.back().span_id;
}

void Trace::EndSpan(uint64_t span_id, int64_t rows) {
  const int64_t now = MonotonicMicros();
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->span_id == span_id) {
      if (it->end_us == 0) {
        it->end_us = now;
        it->rows = rows;
      }
      return;
    }
  }
}

uint64_t Trace::AddCompletedSpan(const std::string& name, uint64_t parent_id,
                                 int node, int64_t start_us, int64_t end_us) {
  TraceSpan span;
  span.span_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent_id = parent_id;
  span.name = name;
  span.node = node;
  span.start_us = start_us;
  span.end_us = end_us;
  std::lock_guard<std::mutex> g(mu_);
  spans_.push_back(std::move(span));
  return spans_.back().span_id;
}

void Trace::CloseOpenSpans(bool mark_aborted) {
  const int64_t now = MonotonicMicros();
  std::lock_guard<std::mutex> g(mu_);
  for (TraceSpan& s : spans_) {
    if (s.end_us == 0) {
      s.end_us = now;
      s.aborted = mark_aborted;
    }
  }
}

std::vector<TraceSpan> Trace::Spans() const {
  std::lock_guard<std::mutex> g(mu_);
  return spans_;
}

std::string Trace::ToString() const {
  std::vector<TraceSpan> spans = Spans();
  if (spans.empty()) return "(empty trace)\n";
  int64_t t0 = spans.front().start_us;
  for (const TraceSpan& s : spans) t0 = std::min(t0, s.start_us);

  std::ostringstream out;
  out << "trace " << trace_id_ << ":\n";
  // Render depth-first from the roots; spans_ is append-ordered so children
  // always appear after their parent in the vector.
  auto emit = [&](auto&& self, uint64_t parent, int depth) -> void {
    for (const TraceSpan& s : spans) {
      if (s.parent_id != parent) continue;
      out << std::string(static_cast<size_t>(depth) * 2, ' ') << s.name;
      if (s.node == Trace::kCoordinatorNode) {
        out << " [coordinator]";
      } else {
        out << " [seg " << s.node << "]";
      }
      out << " +" << (s.start_us - t0) << "us";
      if (s.end_us > 0) out << " dur=" << (s.end_us - s.start_us) << "us";
      if (s.rows > 0) out << " rows=" << s.rows;
      if (s.aborted) out << " ABORTED";
      out << "\n";
      self(self, s.span_id, depth + 1);
    }
  };
  emit(emit, 0, 0);
  return out.str();
}

void OperatorStatsCollector::Record(int node_id, int64_t rows, int64_t elapsed_us,
                                    int64_t batches) {
  std::lock_guard<std::mutex> g(mu_);
  OpStats& s = stats_[node_id];
  s.rows += rows;
  s.batches += batches;
  ++s.executions;
  s.total_time_us += elapsed_us;
  s.max_time_us = std::max(s.max_time_us, elapsed_us);
}

void OperatorStatsCollector::RecordMotionWait(int node_id, int64_t send_wait_us,
                                              int64_t recv_wait_us) {
  std::lock_guard<std::mutex> g(mu_);
  OpStats& s = stats_[node_id];
  s.send_wait_us += send_wait_us;
  s.recv_wait_us += recv_wait_us;
}

void OperatorStatsCollector::RecordStoreRows(int node_id, const std::string& store,
                                             int64_t rows) {
  std::lock_guard<std::mutex> g(mu_);
  stats_[node_id].store_rows[store] += rows;
}

OperatorStatsCollector::OpStats OperatorStatsCollector::Get(int node_id) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = stats_.find(node_id);
  return it == stats_.end() ? OpStats{} : it->second;
}

void SlowQueryLog::Record(const std::string& sql, int64_t duration_us, int64_t at_us,
                          std::vector<WaitItem> top_waits, std::string fingerprint,
                          bool plan_cache_hit, uint64_t retries) {
  std::lock_guard<std::mutex> g(mu_);
  entries_.push_back(Entry{sql, duration_us, at_us, std::move(top_waits),
                           std::move(fingerprint), plan_cache_hit, retries});
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> g(mu_);
  return std::vector<Entry>(entries_.begin(), entries_.end());
}

}  // namespace gphtap
