#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gphtap {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

// Buckets: [0], [1], then powers-of-two subdivided by 4 for ~18% resolution.
int Histogram::BucketFor(int64_t v) {
  if (v <= 0) return 0;
  if (v == 1) return 1;
  int log2 = 63 - __builtin_clzll(static_cast<uint64_t>(v));
  int64_t base = int64_t{1} << log2;
  int sub = static_cast<int>(((v - base) * 4) / base);  // 0..3
  int b = 2 + (log2 - 1) * 4 + sub;
  return std::min(b, kNumBuckets - 1);
}

int64_t Histogram::BucketLow(int b) {
  if (b <= 1) return b;
  int log2 = (b - 2) / 4 + 1;
  int sub = (b - 2) % 4;
  int64_t base = int64_t{1} << log2;
  return base + (base * sub) / 4;
}

int64_t Histogram::BucketHigh(int b) {
  if (b <= 1) return b;
  if (b >= kNumBuckets - 1) return INT64_MAX / 2;
  return BucketLow(b + 1) - 1;
}

void Histogram::Record(int64_t value_us) {
  if (count_ == 0) {
    min_ = max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  ++count_;
  sum_ += value_us;
  ++buckets_[BucketFor(value_us)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  int64_t target = static_cast<int64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  target = std::max<int64_t>(1, std::min(target, count_));
  if (target == count_) return max_;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] >= target) {
      // Interpolate by rank position inside the bucket instead of returning
      // the midpoint; the result is still an approximation, so clamp it to the
      // exactly-tracked [min_, max_] envelope (a bucket's nominal range can
      // extend past the extremes actually recorded).
      int64_t lo = BucketLow(i), hi = BucketHigh(i);
      int64_t rank_in_bucket = target - seen;  // 1..buckets_[i]
      int64_t v = lo + ((hi - lo) * rank_in_bucket) / buckets_[i];
      return std::max(min_, std::min(v, max_));
    }
    seen += buckets_[i];
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1fus p50=%lldus p95=%lldus p99=%lldus max=%lldus",
                static_cast<long long>(count_), Mean(),
                static_cast<long long>(Percentile(50)),
                static_cast<long long>(Percentile(95)),
                static_cast<long long>(Percentile(99)), static_cast<long long>(max_));
  return buf;
}

}  // namespace gphtap
