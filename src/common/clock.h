// Wall-clock helpers and a stopwatch for measurements.
#ifndef GPHTAP_COMMON_CLOCK_H_
#define GPHTAP_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace gphtap {

/// Monotonic nanoseconds since an arbitrary epoch.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t MonotonicMicros() { return MonotonicNanos() / 1000; }

/// Sleeps for `us` microseconds; busy-spins below 30us for accuracy at small costs.
inline void PreciseSleepUs(int64_t us) {
  if (us <= 0) return;
  if (us < 30) {
    const int64_t until = MonotonicNanos() + us * 1000;
    while (MonotonicNanos() < until) {
      // spin
    }
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Measures elapsed time since construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNanos()) {}
  void Restart() { start_ = MonotonicNanos(); }
  int64_t ElapsedNanos() const { return MonotonicNanos() - start_; }
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) / 1e9; }

 private:
  int64_t start_;
};

}  // namespace gphtap

#endif  // GPHTAP_COMMON_CLOCK_H_
