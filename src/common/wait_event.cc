#include "common/wait_event.h"

#include <algorithm>

#include "common/clock.h"
#include "lock/lock_owner.h"

namespace gphtap {

const char* WaitEventClassName(WaitEventClass c) {
  switch (c) {
    case WaitEventClass::kNone:
      return "None";
    case WaitEventClass::kLock:
      return "Lock";
    case WaitEventClass::kNet:
      return "Net";
    case WaitEventClass::kIO:
      return "IO";
    case WaitEventClass::kIpc:
      return "IPC";
    case WaitEventClass::kResGroup:
      return "ResGroup";
    case WaitEventClass::kFrontend:
      return "frontend";
  }
  return "?";
}

const char* WaitEventName(WaitEvent e) {
  switch (e) {
    case WaitEvent::kNone:
      return "";
    case WaitEvent::kLockRelation:
      return "relation";
    case WaitEvent::kLockTuple:
      return "tuple";
    case WaitEvent::kLockTransaction:
      return "transactionid";
    case WaitEvent::kMotionSend:
      return "motion_send";
    case WaitEvent::kMotionRecv:
      return "motion_recv";
    case WaitEvent::kWalFsync:
      return "wal_fsync";
    case WaitEvent::kBufferRead:
      return "buffer_read";
    case WaitEvent::kPrepareAck:
      return "prepare_ack";
    case WaitEvent::kCommitPreparedAck:
      return "commit_prepared_ack";
    case WaitEvent::kResGroupSlot:
      return "resgroup_slot";
    case WaitEvent::kDeltaFreshness:
      return "delta_freshness";
    case WaitEvent::kDeltaSealStall:
      return "delta_seal_stall";
    case WaitEvent::kFrontendDispatch:
      return "dispatch";
  }
  return "?";
}

WaitEventClass ClassOfEvent(WaitEvent e) {
  switch (e) {
    case WaitEvent::kNone:
      return WaitEventClass::kNone;
    case WaitEvent::kLockRelation:
    case WaitEvent::kLockTuple:
    case WaitEvent::kLockTransaction:
      return WaitEventClass::kLock;
    case WaitEvent::kMotionSend:
    case WaitEvent::kMotionRecv:
      return WaitEventClass::kNet;
    case WaitEvent::kWalFsync:
    case WaitEvent::kBufferRead:
      return WaitEventClass::kIO;
    case WaitEvent::kPrepareAck:
    case WaitEvent::kCommitPreparedAck:
      return WaitEventClass::kIpc;
    case WaitEvent::kResGroupSlot:
      return WaitEventClass::kResGroup;
    case WaitEvent::kDeltaFreshness:
      return WaitEventClass::kIpc;
    case WaitEvent::kDeltaSealStall:
      return WaitEventClass::kLock;
    case WaitEvent::kFrontendDispatch:
      return WaitEventClass::kFrontend;
  }
  return WaitEventClass::kNone;
}

void WaitEventRegistry::Record(WaitEvent event, int node, const std::string& group,
                               int64_t elapsed_us) {
  std::lock_guard<std::mutex> g(mu_);
  Entry& e = entries_[Key{static_cast<int>(event), node, group}];
  e.event = event;
  e.node = node;
  e.group = group;
  ++e.count;
  e.total_us += elapsed_us;
  e.max_us = std::max(e.max_us, elapsed_us);
  e.histogram.Record(elapsed_us);
}

std::vector<WaitEventRegistry::Entry> WaitEventRegistry::Snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  return out;
}

void QueryWaitProfile::Record(WaitEvent event, int64_t elapsed_us) {
  std::lock_guard<std::mutex> g(mu_);
  Item& it = items_[event];
  it.event = event;
  ++it.count;
  it.total_us += elapsed_us;
}

void QueryWaitProfile::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  items_.clear();
}

std::vector<QueryWaitProfile::Item> QueryWaitProfile::Top(size_t n) const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Item> out;
  out.reserve(items_.size());
  for (const auto& [event, item] : items_) out.push_back(item);
  std::sort(out.begin(), out.end(),
            [](const Item& a, const Item& b) { return a.total_us > b.total_us; });
  if (out.size() > n) out.resize(n);
  return out;
}

namespace {
thread_local WaitContext* tls_wait_context = nullptr;
}  // namespace

WaitContext* CurrentWaitContext() { return tls_wait_context; }

Status CheckAmbientInterrupt() {
  WaitContext* ctx = tls_wait_context;
  if (ctx == nullptr || ctx->owner == nullptr) return Status::OK();
  LockOwner* owner = ctx->owner;
  if (owner->cancelled()) return owner->cancel_reason();
  if (owner->DeadlineExpired(MonotonicMicros())) {
    // Cancel the whole transaction so every other slice/worker of this query
    // unwinds too, then report the timeout from this blocking point.
    Status timeout = Status::TimedOut("statement timeout");
    owner->Cancel(timeout);
    return timeout;
  }
  return Status::OK();
}

WaitContextGuard::WaitContextGuard(WaitContext ctx, bool only_if_absent)
    : ctx_(std::move(ctx)) {
  if (only_if_absent && tls_wait_context != nullptr) return;
  prev_ = tls_wait_context;
  tls_wait_context = &ctx_;
  installed_ = true;
}

WaitContextGuard::~WaitContextGuard() {
  if (installed_) tls_wait_context = prev_;
}

WaitEventScope::WaitEventScope(WaitEvent event) {
  WaitContext* ctx = tls_wait_context;
  Init(event, ctx != nullptr ? ctx->node : -1);
}

WaitEventScope::WaitEventScope(WaitEvent event, int node_override) {
  Init(event, node_override);
}

void WaitEventScope::Init(WaitEvent event, int node) {
  ctx_ = tls_wait_context;
  if (ctx_ == nullptr) return;
  event_ = event;
  node_ = node;
  start_us_ = MonotonicMicros();
  if (ctx_->session != nullptr) {
    // Waits nest (a WAL fsync inside a commit-ack round trip); publish the
    // innermost and restore the outer one on exit.
    prev_event_ = ctx_->session->event.exchange(static_cast<int>(event),
                                                std::memory_order_release);
    prev_start_us_ = ctx_->session->start_us.exchange(start_us_,
                                                      std::memory_order_release);
  }
}

WaitEventScope::~WaitEventScope() {
  if (ctx_ == nullptr) return;
  const int64_t end_us = MonotonicMicros();
  const int64_t elapsed = end_us - start_us_;
  if (ctx_->session != nullptr) {
    ctx_->session->event.store(prev_event_, std::memory_order_release);
    ctx_->session->start_us.store(prev_start_us_, std::memory_order_release);
  }
  if (ctx_->registry != nullptr) {
    ctx_->registry->Record(event_, node_, ctx_->group, elapsed);
  }
  if (ctx_->profile != nullptr) ctx_->profile->Record(event_, elapsed);
  if (ctx_->trace != nullptr) {
    ctx_->trace->AddCompletedSpan(
        std::string("wait:") + WaitEventClassName(ClassOfEvent(event_)) + ":" +
            WaitEventName(event_),
        ctx_->parent_span, node_, start_us_, end_us);
  }
}

}  // namespace gphtap
