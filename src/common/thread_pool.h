// Fixed-size thread pool used to run plan slices on segments.
#ifndef GPHTAP_COMMON_THREAD_POOL_H_
#define GPHTAP_COMMON_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"

namespace gphtap {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 4096);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks if the queue is full. Returns false after Shutdown.
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, drains the queue, and joins all workers.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace gphtap

#endif  // GPHTAP_COMMON_THREAD_POOL_H_
