// Attributable wait events (modeled on PostgreSQL's pg_stat_activity wait
// instrumentation): every blocking point in the system — lock-manager queue
// waits, motion send/recv stalls, WAL fsync, 2PC PREPARE / COMMIT PREPARED ack
// waits, resource-group admission, buffer-pool misses — publishes a
// (class, event) tag while it blocks and records the blocked duration when it
// resumes.
//
// The machinery is deliberately ambient: a session thread installs a
// WaitContext (thread-local) at its entry point, and any code below it opens a
// WaitEventScope around an actual block. The scope
//   * publishes the event on the session's SessionWaitState (so gp_stat_activity
//     shows what a stalled session is waiting on, live),
//   * accumulates (count, total, max, histogram) into the cluster-wide
//     WaitEventRegistry keyed by (event, node, resource group), backing
//     gp_wait_events,
//   * accumulates into the per-statement QueryWaitProfile (slow-query log
//     top-3 waits), and
//   * appends a completed "wait:<event>" child span to the query's Trace so
//     waits appear on the query timeline.
// All four sinks are optional; with no context installed a scope is a no-op,
// so library code (tests, benches) never pays for instrumentation it did not
// ask for.
#ifndef GPHTAP_COMMON_WAIT_EVENT_H_
#define GPHTAP_COMMON_WAIT_EVENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/trace.h"

namespace gphtap {

class LockOwner;
struct StatementResources;

enum class WaitEventClass {
  kNone = 0,
  kLock,      // lock-manager queue waits
  kNet,       // motion interconnect send/recv
  kIO,        // WAL fsync, buffer-pool miss
  kIpc,       // 2PC PREPARE / COMMIT PREPARED ack round trips
  kResGroup,  // resource-group admission slot
  kFrontend,  // front-door dispatch queue (statement waiting for a pool worker)
};

enum class WaitEvent {
  kNone = 0,
  kLockRelation,
  kLockTuple,
  kLockTransaction,
  kMotionSend,
  kMotionRecv,
  kWalFsync,
  kBufferRead,
  kPrepareAck,
  kCommitPreparedAck,
  kResGroupSlot,
  kDeltaFreshness,   // merged scan waiting for the delta feed to catch up
  kDeltaSealStall,   // seal daemon parked behind a down/recovering segment
  kFrontendDispatch,  // logical session's statement queued for a pool worker
};

const char* WaitEventClassName(WaitEventClass c);
const char* WaitEventName(WaitEvent e);
WaitEventClass ClassOfEvent(WaitEvent e);

/// Live wait state published on a session (read by gp_stat_activity).
/// Written only by the session's own threads; read by anyone.
struct SessionWaitState {
  std::atomic<int> event{0};           // WaitEvent as int; 0 = not waiting
  std::atomic<int64_t> start_us{0};    // monotonic start of the current wait
};

/// Cluster-wide accumulated wait statistics keyed by (event, node, resource
/// group). Backs the gp_wait_events system view.
class WaitEventRegistry {
 public:
  struct Entry {
    WaitEvent event = WaitEvent::kNone;
    int node = -1;  // segment index, or -1 for the coordinator
    std::string group;
    uint64_t count = 0;
    int64_t total_us = 0;
    int64_t max_us = 0;
    Histogram histogram;
  };

  void Record(WaitEvent event, int node, const std::string& group, int64_t elapsed_us);
  /// Copies of every entry, sorted by (event, node, group).
  std::vector<Entry> Snapshot() const;

 private:
  struct Key {
    int event;
    int node;
    std::string group;
    bool operator<(const Key& o) const {
      if (event != o.event) return event < o.event;
      if (node != o.node) return node < o.node;
      return group < o.group;
    }
  };
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
};

/// Per-statement wait accumulation; the slow-query log keeps the top entries.
class QueryWaitProfile {
 public:
  struct Item {
    WaitEvent event = WaitEvent::kNone;
    uint64_t count = 0;
    int64_t total_us = 0;
  };

  void Record(WaitEvent event, int64_t elapsed_us);
  void Reset();
  /// Up to `n` items, sorted by total_us descending.
  std::vector<Item> Top(size_t n) const;

 private:
  mutable std::mutex mu_;
  std::map<WaitEvent, Item> items_;
};

/// Ambient per-thread wait destination. All sinks optional.
struct WaitContext {
  WaitEventRegistry* registry = nullptr;
  SessionWaitState* session = nullptr;
  QueryWaitProfile* profile = nullptr;
  Trace* trace = nullptr;       // wait-interval spans land here when set
  uint64_t parent_span = 0;     // parent for wait spans
  int node = -1;                // node label for registry + spans (coordinator=-1)
  std::string group;            // resource group name ("" = none/default)
  // Cancellation + statement-deadline handle of the owning transaction, for
  // ambient interruption of blocking points that have no explicit owner
  // parameter (WAL fsync, motion queue waits). The session keeps the owner
  // alive for the statement's duration, so a raw pointer is safe here.
  LockOwner* owner = nullptr;
  // Gang-wide per-statement resource accumulator (src/stats/). The executor
  // copies the caller's context into every producer slice, so segment-side
  // code (buffer pool, motion) attributes to the statement ambiently. Owned by
  // the session; reset at statement start, read at statement end.
  StatementResources* resources = nullptr;
};

/// Cancellation/deadline state of the ambient owner (OK when none installed).
/// Blocking sites call this between timed waits so a parked thread notices a
/// GDD kill, user cancel, or statement-deadline expiry within one poll chunk.
Status CheckAmbientInterrupt();

/// Poll granularity for interruptible blocking points: every site that can
/// park (motion queues, WAL fsync, lock waits, admission) re-checks its
/// cancel/deadline state at least this often, which bounds how stale a timeout
/// can be observed (the "2x tick granularity" resilience contract).
inline constexpr int64_t kInterruptPollUs = 5000;

/// The thread's installed context, or nullptr. The pointer is mutable: the
/// session updates trace/parent_span in place as a query progresses.
WaitContext* CurrentWaitContext();

/// Installs `ctx` as the thread's wait context for the guard's lifetime and
/// restores the previous one after. With `only_if_absent`, an already-installed
/// context wins and the guard is a no-op — session entry points use this so
/// nested calls (Execute -> ExecuteSelect) install exactly once.
class WaitContextGuard {
 public:
  explicit WaitContextGuard(WaitContext ctx, bool only_if_absent = false);
  ~WaitContextGuard();

  WaitContextGuard(const WaitContextGuard&) = delete;
  WaitContextGuard& operator=(const WaitContextGuard&) = delete;

 private:
  WaitContext ctx_;
  WaitContext* prev_ = nullptr;
  bool installed_ = false;
};

/// RAII around one actual block. Construct only on the slow path (after a
/// non-blocking fast path failed) so unblocked operations stay untouched.
class WaitEventScope {
 public:
  /// Node label defaults to the context's; pass `node_override` where the
  /// blocking site knows better (a segment lock table inside a coordinator
  /// statement).
  explicit WaitEventScope(WaitEvent event);
  WaitEventScope(WaitEvent event, int node_override);
  ~WaitEventScope();

  WaitEventScope(const WaitEventScope&) = delete;
  WaitEventScope& operator=(const WaitEventScope&) = delete;

 private:
  void Init(WaitEvent event, int node);

  WaitContext* ctx_ = nullptr;
  WaitEvent event_ = WaitEvent::kNone;
  int node_ = -1;
  int64_t start_us_ = 0;
  int prev_event_ = 0;
  int64_t prev_start_us_ = 0;
};

}  // namespace gphtap

#endif  // GPHTAP_COMMON_WAIT_EVENT_H_
