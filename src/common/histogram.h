// Latency histogram with log-scaled buckets; used by the workload driver to report
// percentiles. Thread-compatible: merge per-thread histograms after a run.
#ifndef GPHTAP_COMMON_HISTOGRAM_H_
#define GPHTAP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gphtap {

class Histogram {
 public:
  Histogram();

  void Record(int64_t value_us);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double Mean() const;
  /// p in [0, 100]. Returns an approximate value at that percentile (bucket midpoint).
  int64_t Percentile(double p) const;

  std::string Summary() const;

 private:
  static constexpr int kNumBuckets = 128;
  static int BucketFor(int64_t v);
  static int64_t BucketLow(int b);
  static int64_t BucketHigh(int b);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace gphtap

#endif  // GPHTAP_COMMON_HISTOGRAM_H_
