// Blocking bounded MPMC queue with close semantics, used by the interconnect and
// the thread pool. Closing wakes all waiters; Pop returns false once drained.
#ifndef GPHTAP_COMMON_BOUNDED_QUEUE_H_
#define GPHTAP_COMMON_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace gphtap {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed; on failure `item` is
  /// left unmoved, so the caller may retry with the blocking Push.
  bool TryPush(T&& item) {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Result of a timed push attempt (distinguishes "no room yet" from closed).
  enum class PushResult { kPushed, kTimedOut, kClosed };

  /// Waits up to `timeout_us` for room. On kTimedOut the item is left unmoved
  /// so the caller can re-check its cancellation state and retry.
  PushResult PushFor(T& item, int64_t timeout_us) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait_for(lk, std::chrono::microseconds(timeout_us),
                       [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return PushResult::kClosed;
    if (items_.size() >= capacity_) return PushResult::kTimedOut;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return PushResult::kPushed;
  }

  /// Waits up to `timeout_us` for an item. Returns nullopt on timeout or when
  /// closed and drained; use closed() to distinguish if needed.
  std::optional<T> PopFor(int64_t timeout_us) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait_for(lk, std::chrono::microseconds(timeout_us),
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// After Close, pushes fail and pops drain remaining items then return nullopt.
  void Close() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace gphtap

#endif  // GPHTAP_COMMON_BOUNDED_QUEUE_H_
