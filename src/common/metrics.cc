#include "common/metrics.h"

#include <sstream>

namespace gphtap {

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, gv] : gauges_) snap.gauges[name] = gv->value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->snapshot();
  return snap;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters) out << name << " = " << v << "\n";
  for (const auto& [name, v] : gauges) out << name << " = " << v << "\n";
  for (const auto& [name, h] : histograms) {
    out << name << " = {count=" << h.count() << " p50=" << h.Percentile(50)
        << " p95=" << h.Percentile(95) << " p99=" << h.Percentile(99)
        << " max=" << h.max() << "}\n";
  }
  return out.str();
}

}  // namespace gphtap
