// Per-slice execution context: which node we run on, the transaction's
// visibility information there, motion exchanges, and resource accounting.
#ifndef GPHTAP_EXEC_EXEC_CONTEXT_H_
#define GPHTAP_EXEC_EXEC_CONTEXT_H_

#include <memory>
#include <unordered_map>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/trace.h"
#include "net/motion_exchange.h"
#include "resgroup/resource_group.h"

namespace gphtap {

struct StatementResources;

using ExchangeMap = std::unordered_map<int, std::shared_ptr<MotionExchange>>;

struct ExecContext {
  Cluster* cluster = nullptr;
  Segment* segment = nullptr;  // null when running on the coordinator
  int receiver_index = 0;      // our index within the slice's gang

  Gxid gxid = kInvalidGxid;
  std::shared_ptr<LockOwner> owner;
  const DistributedSnapshot* snapshot = nullptr;
  LocalSnapshot lsnap;  // local fallback snapshot for this node

  ExchangeMap* exchanges = nullptr;

  ResourceGroup* group = nullptr;       // may be null (resource groups off)
  QueryMemoryAccount* mem = nullptr;    // may be null

  // Simulated CPU work per row processed, charged to `group`.
  int64_t cpu_ns_per_row = 0;
  int64_t pending_cpu_ns = 0;  // accumulated, flushed in Tick batches

  // Absolute statement deadline (statement_timeout GUC); 0 = none. Checked in
  // Tick with a throttled clock read; expiry cancels the whole owner so every
  // other slice of the query unwinds at its own next blocking/tick point.
  int64_t deadline_us = 0;
  int64_t rows_until_deadline_check = 0;

  // EXPLAIN ANALYZE per-operator actuals; null = not collecting.
  OperatorStatsCollector* op_stats = nullptr;

  // Per-statement gang-wide resource accumulator (gp_stat_statements); null =
  // not collecting. Updated off the per-row hot path only (batch boundaries,
  // fallback events, slice teardown).
  StatementResources* resources = nullptr;

  // The slice's root node. ExecuteNode explodes a vectorize-marked subtree's
  // batches into rows for its caller; when that caller is a row operator
  // mid-plan the boundary is a genuine engine fallback (vec.fallbacks), but at
  // the slice root it is just final delivery and not counted.
  const void* slice_root = nullptr;

  /// Builds the visibility context for this node.
  VisibilityContext Vis() const {
    VisibilityContext v;
    if (segment != nullptr) {
      v.clog = &segment->clog();
      v.dlog = &segment->dlog();
      auto xid = segment->txns().LookupXid(gxid);
      v.my_xid = xid.value_or(kInvalidLocalXid);
    } else {
      v.clog = &cluster->coordinator_clog();
      v.dlog = &cluster->coordinator_dlog();
      auto xid = cluster->coordinator_txns().LookupXid(gxid);
      v.my_xid = xid.value_or(kInvalidLocalXid);
    }
    v.dsnap = snapshot;
    v.lsnap = &lsnap;
    return v;
  }

  /// Cancellation point + CPU accounting, called once per row-ish.
  Status Tick(int rows = 1) {
    if (owner != nullptr && owner->cancelled()) return owner->cancel_reason();
    if (deadline_us != 0) {
      rows_until_deadline_check -= rows;
      if (rows_until_deadline_check <= 0) {
        rows_until_deadline_check = 1024;  // amortize the clock read
        if (MonotonicMicros() >= deadline_us) {
          Status timeout = Status::TimedOut("statement timeout");
          if (owner != nullptr) owner->Cancel(timeout);
          return timeout;
        }
      }
    }
    if (cpu_ns_per_row > 0) {
      pending_cpu_ns += cpu_ns_per_row * rows;
      if (pending_cpu_ns >= 100'000) {  // flush every 100us of simulated work
        if (group != nullptr) group->ChargeCpu(pending_cpu_ns / 1000);
        pending_cpu_ns = 0;
      }
    }
    return Status::OK();
  }

  void FlushCpu() {
    if (group != nullptr && pending_cpu_ns > 0) group->ChargeCpu(pending_cpu_ns / 1000);
    pending_cpu_ns = 0;
  }
};

}  // namespace gphtap

#endif  // GPHTAP_EXEC_EXEC_CONTEXT_H_
