#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "common/logging.h"
#include "common/wait_event.h"
#include "exec/agg_ops.h"
#include "stats/statement_resources.h"
#include "storage/heap_table.h"
#include "vec/vec_executor.h"
#include "vec/vec_kernels.h"

namespace gphtap {

Status TableForNode(ExecContext& ctx, TableId id, Table** out) {
  Table* t = nullptr;
  if (ctx.segment != nullptr) {
    t = ctx.segment->GetTable(id);
  }
  if (t == nullptr) {
    return Status::NotFound("table id " + std::to_string(id) + " on node");
  }
  *out = t;
  return Status::OK();
}

Status AcquireScanLock(ExecContext& ctx, TableId table) {
  LockManager& locks =
      ctx.segment != nullptr ? ctx.segment->locks() : ctx.cluster->coordinator_locks();
  return locks.Acquire(ctx.owner, LockTag::Relation(table), LockMode::kAccessShare);
}

const char* ScanStoreLabel(StorageKind kind) {
  switch (kind) {
    case StorageKind::kHeap:
      return "heap";
    case StorageKind::kAoRow:
      return "ao-row";
    case StorageKind::kAoColumn:
      return "ao-column";
    case StorageKind::kExternal:
      return "external";
  }
  return "heap";
}

namespace {

// ---------- helpers ----------

uint64_t HashKeys(const Row& row, const std::vector<int>& keys) {
  return HashRowKey(row, keys);
}

bool KeysHaveNull(const Row& row, const std::vector<int>& keys) {
  for (int k : keys) {
    if (row[static_cast<size_t>(k)].is_null()) return true;
  }
  return false;
}

int64_t RowFootprint(const Row& row) {
  int64_t bytes = 32;
  for (const Datum& d : row) bytes += static_cast<int64_t>(d.FootprintBytes());
  return bytes;
}

// ---------- node execution ----------
// (Aggregation accumulators live in exec/agg_ops.h, shared with src/vec/.)

Status ExecScanCommon(const PlanNode& node, ExecContext& ctx, Table* table,
                      const RowSink& sink) {
  Status inner = Status::OK();
  VisibilityContext vis = ctx.Vis();
  int64_t visible_rows = 0;
  auto cb = [&](TupleId, const Row& row) {
    Status t = ctx.Tick();
    if (!t.ok()) {
      inner = t;
      return false;
    }
    ++visible_rows;
    if (node.filter) {
      auto pass = EvalPredicate(*node.filter, row);
      if (!pass.ok()) {
        inner = pass.status();
        return false;
      }
      if (!*pass) return true;
    }
    Row out = row;
    Status s = sink(std::move(out));
    if (!s.ok()) {
      inner = s;
      return false;
    }
    return true;
  };
  Status scan;
  if (!node.scan_cols.empty()) {
    scan = table->ScanColumns(vis, node.scan_cols, cb);
  } else {
    scan = table->Scan(vis, cb);
  }
  if (ctx.op_stats != nullptr && visible_rows > 0) {
    ctx.op_stats->RecordStoreRows(node.node_id, ScanStoreLabel(table->def().storage),
                                  visible_rows);
  }
  if (!inner.ok()) return inner;
  return scan;
}

Status ExecIndexScan(const PlanNode& node, ExecContext& ctx, const RowSink& sink) {
  Table* table = nullptr;
  GPHTAP_RETURN_IF_ERROR(TableForNode(ctx, node.table, &table));
  auto* heap = dynamic_cast<HeapTable*>(table);
  if (heap == nullptr || !heap->HasIndexOn(node.index_col)) {
    // Fall back to a filtered sequential scan.
    return ExecScanCommon(node, ctx, table, sink);
  }
  VisibilityContext vis = ctx.Vis();
  int64_t visible_rows = 0;
  for (TupleId tid : heap->IndexLookup(node.index_col, node.index_key)) {
    GPHTAP_RETURN_IF_ERROR(ctx.Tick());
    auto v = heap->Get(tid);
    if (!v.ok()) continue;  // vacuumed concurrently
    if (!TupleVisible(v->header.xmin, v->header.xmax, vis)) continue;
    ++visible_rows;
    if (node.filter) {
      GPHTAP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node.filter, v->row));
      if (!pass) continue;
    }
    GPHTAP_RETURN_IF_ERROR(sink(std::move(v->row)));
  }
  if (ctx.op_stats != nullptr && visible_rows > 0) {
    ctx.op_stats->RecordStoreRows(node.node_id, ScanStoreLabel(heap->def().storage),
                                  visible_rows);
  }
  return Status::OK();
}

Status ExecHashJoin(const PlanNode& node, ExecContext& ctx, const RowSink& sink) {
  // Build side = children[1] (inner), fully materialized first — this is also
  // the Appendix-B network-deadlock prophylactic.
  std::unordered_multimap<uint64_t, Row> build;
  int64_t reserved = 0;
  Status st = ExecuteNode(*node.children[1], ctx, [&](Row&& row) -> Status {
    if (KeysHaveNull(row, node.right_keys)) return Status::OK();
    int64_t bytes = RowFootprint(row);
    if (ctx.mem != nullptr) {
      GPHTAP_RETURN_IF_ERROR(ctx.mem->Reserve(bytes));
      reserved += bytes;
    }
    build.emplace(HashKeys(row, node.right_keys), std::move(row));
    return Status::OK();
  });
  GPHTAP_RETURN_IF_ERROR(st);

  // Probe side streams.
  return ExecuteNode(*node.children[0], ctx, [&](Row&& probe) -> Status {
    GPHTAP_RETURN_IF_ERROR(ctx.Tick());
    if (KeysHaveNull(probe, node.left_keys)) return Status::OK();
    auto range = build.equal_range(HashKeys(probe, node.left_keys));
    for (auto it = range.first; it != range.second; ++it) {
      // Verify key equality (hash collisions).
      bool match = true;
      for (size_t k = 0; k < node.left_keys.size(); ++k) {
        if (probe[static_cast<size_t>(node.left_keys[k])].Compare(
                it->second[static_cast<size_t>(node.right_keys[k])]) != 0) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Row combined = probe;
      combined.insert(combined.end(), it->second.begin(), it->second.end());
      if (node.filter) {
        GPHTAP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node.filter, combined));
        if (!pass) continue;
      }
      GPHTAP_RETURN_IF_ERROR(sink(std::move(combined)));
    }
    return Status::OK();
  });
}

Status ExecNestLoop(const PlanNode& node, ExecContext& ctx, const RowSink& sink) {
  std::vector<Row> inner;
  auto join_with_inner = [&](const Row& outer) -> Status {
    for (const Row& irow : inner) {
      GPHTAP_RETURN_IF_ERROR(ctx.Tick());
      Row combined = outer;
      combined.insert(combined.end(), irow.begin(), irow.end());
      if (node.filter) {
        GPHTAP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node.filter, combined));
        if (!pass) continue;
      }
      GPHTAP_RETURN_IF_ERROR(sink(std::move(combined)));
    }
    return Status::OK();
  };

  if (node.prefetch_inner) {
    // Safe order: drain the inner motion entirely before touching the outer.
    GPHTAP_RETURN_IF_ERROR(ExecuteNode(*node.children[1], ctx, [&](Row&& row) -> Status {
      if (ctx.mem != nullptr) GPHTAP_RETURN_IF_ERROR(ctx.mem->Reserve(RowFootprint(row)));
      inner.push_back(std::move(row));
      return Status::OK();
    }));
    return ExecuteNode(*node.children[0], ctx, [&](Row&& outer) -> Status {
      return join_with_inner(outer);
    });
  }

  // Deadlock-prone order (what Appendix B warns about): consume ONE outer
  // tuple, then drain the inner — while other slices' outer senders may be
  // blocked on full buffers.
  bool inner_loaded = false;
  return ExecuteNode(*node.children[0], ctx, [&](Row&& outer) -> Status {
    if (!inner_loaded) {
      inner_loaded = true;
      GPHTAP_RETURN_IF_ERROR(
          ExecuteNode(*node.children[1], ctx, [&](Row&& row) -> Status {
            inner.push_back(std::move(row));
            return Status::OK();
          }));
    }
    return join_with_inner(outer);
  });
}

Status ExecHashAgg(const PlanNode& node, ExecContext& ctx, const RowSink& sink) {
  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups;

  Status mem_status = Status::OK();
  auto group_for = [&](const Row& row, const std::vector<int>& cols) -> Group& {
    std::string key = GroupKeyString(row, cols);
    auto it = groups.find(key);
    if (it == groups.end()) {
      Group g;
      for (int c : cols) g.key.push_back(row[static_cast<size_t>(c)]);
      g.states.resize(node.aggs.size());
      // Memory grows with the number of groups, not the number of input rows.
      if (ctx.mem != nullptr && mem_status.ok()) {
        mem_status = ctx.mem->Reserve(RowFootprint(g.key) +
                                      64 * static_cast<int64_t>(node.aggs.size()));
      }
      it = groups.emplace(std::move(key), std::move(g)).first;
    }
    return it->second;
  };

  if (node.agg_phase == AggPhase::kFinal) {
    // Input layout: group cols, then each agg's partial state columns.
    std::vector<int> gcols(node.group_cols.size());
    for (size_t i = 0; i < gcols.size(); ++i) gcols[i] = static_cast<int>(i);
    GPHTAP_RETURN_IF_ERROR(ExecuteNode(*node.children[0], ctx, [&](Row&& row) -> Status {
      GPHTAP_RETURN_IF_ERROR(ctx.Tick());
      Group& g = group_for(row, gcols);
      GPHTAP_RETURN_IF_ERROR(mem_status);
      int col = static_cast<int>(node.group_cols.size());
      for (size_t a = 0; a < node.aggs.size(); ++a) {
        GPHTAP_RETURN_IF_ERROR(AggMergePartial(node.aggs[a], &g.states[a], row, col));
        col += AggStateArity(node.aggs[a].fn);
      }
      return Status::OK();
    }));
  } else {
    GPHTAP_RETURN_IF_ERROR(ExecuteNode(*node.children[0], ctx, [&](Row&& row) -> Status {
      GPHTAP_RETURN_IF_ERROR(ctx.Tick());
      Group& g = group_for(row, node.group_cols);
      GPHTAP_RETURN_IF_ERROR(mem_status);
      for (size_t a = 0; a < node.aggs.size(); ++a) {
        GPHTAP_RETURN_IF_ERROR(AggUpdate(node.aggs[a], &g.states[a], row));
      }
      return Status::OK();
    }));
  }

  // Global aggregates with zero input rows still produce one output group.
  if (groups.empty() && node.group_cols.empty()) {
    Group g;
    g.states.resize(node.aggs.size());
    groups.emplace("", std::move(g));
  }

  for (auto& [key, g] : groups) {
    Row out = g.key;
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      if (node.agg_phase == AggPhase::kPartial) {
        AggEmitPartial(node.aggs[a], g.states[a], &out);
      } else {
        AggEmitFinal(node.aggs[a], g.states[a], &out);
      }
    }
    Status s = sink(std::move(out));
    if (s.code() == StatusCode::kStopIteration) return s;
    GPHTAP_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Status ExecSort(const PlanNode& node, ExecContext& ctx, const RowSink& sink) {
  std::vector<Row> rows;
  GPHTAP_RETURN_IF_ERROR(ExecuteNode(*node.children[0], ctx, [&](Row&& row) -> Status {
    if (ctx.mem != nullptr) GPHTAP_RETURN_IF_ERROR(ctx.mem->Reserve(RowFootprint(row)));
    rows.push_back(std::move(row));
    return Status::OK();
  }));
  std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    for (const SortKey& k : node.sort_keys) {
      int c = a[static_cast<size_t>(k.column)].Compare(b[static_cast<size_t>(k.column)]);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  });
  for (Row& r : rows) {
    Status s = sink(std::move(r));
    if (s.code() == StatusCode::kStopIteration) return s;
    GPHTAP_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Status ExecMotionRecv(const PlanNode& node, ExecContext& ctx, const RowSink& sink) {
  auto it = ctx.exchanges->find(node.motion_id);
  if (it == ctx.exchanges->end()) {
    return Status::Internal("no exchange for motion " + std::to_string(node.motion_id));
  }
  MotionExchange& ex = *it->second;
  while (auto row = ex.Recv(ctx.receiver_index)) {
    GPHTAP_RETURN_IF_ERROR(ctx.Tick());
    Status s = sink(std::move(*row));
    if (s.code() == StatusCode::kStopIteration) {
      // LIMIT satisfied: stop consuming; the exchange gets aborted by the
      // query driver once the top slice finishes.
      return s;
    }
    GPHTAP_RETURN_IF_ERROR(s);
  }
  if (ex.aborted() && !(ctx.owner && ctx.owner->cancelled())) {
    return Status::Aborted("motion exchange aborted");
  }
  if (ctx.owner && ctx.owner->cancelled()) return ctx.owner->cancel_reason();
  return Status::OK();
}

// The raw dispatch; the public ExecuteNode wraps it with optional per-operator
// instrumentation (EXPLAIN ANALYZE).
Status ExecuteNodeImpl(const PlanNode& node, ExecContext& ctx, const RowSink& sink) {
  switch (node.kind) {
    case PlanKind::kSeqScan: {
      Table* table = nullptr;
      GPHTAP_RETURN_IF_ERROR(TableForNode(ctx, node.table, &table));
      GPHTAP_RETURN_IF_ERROR(AcquireScanLock(ctx, node.table));
      return ExecScanCommon(node, ctx, table, sink);
    }
    case PlanKind::kIndexScan: {
      GPHTAP_RETURN_IF_ERROR(AcquireScanLock(ctx, node.table));
      return ExecIndexScan(node, ctx, sink);
    }
    case PlanKind::kVirtualScan: {
      // System views materialize on the coordinator from live cluster state;
      // the planner never puts them in a segment slice.
      if (ctx.segment != nullptr) {
        return Status::Internal("virtual scan dispatched to a segment");
      }
      GPHTAP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              ctx.cluster->SystemViewRows(node.table));
      for (Row& row : rows) {
        GPHTAP_RETURN_IF_ERROR(ctx.Tick());
        if (node.filter) {
          GPHTAP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node.filter, row));
          if (!pass) continue;
        }
        Status s = sink(std::move(row));
        if (s.code() == StatusCode::kStopIteration) return s;
        GPHTAP_RETURN_IF_ERROR(s);
      }
      return Status::OK();
    }
    case PlanKind::kValues: {
      for (const Row& r : node.rows) {
        GPHTAP_RETURN_IF_ERROR(ctx.Tick());
        Row copy = r;
        Status s = sink(std::move(copy));
        if (s.code() == StatusCode::kStopIteration) return s;
        GPHTAP_RETURN_IF_ERROR(s);
      }
      return Status::OK();
    }
    case PlanKind::kGenerateSeries: {
      for (int64_t v = node.series_start; v <= node.series_end; ++v) {
        GPHTAP_RETURN_IF_ERROR(ctx.Tick());
        Status s = sink(Row{Datum(v)});
        if (s.code() == StatusCode::kStopIteration) return s;
        GPHTAP_RETURN_IF_ERROR(s);
      }
      return Status::OK();
    }
    case PlanKind::kFilter:
      return ExecuteNode(*node.children[0], ctx, [&](Row&& row) -> Status {
        GPHTAP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node.filter, row));
        if (!pass) return Status::OK();
        return sink(std::move(row));
      });
    case PlanKind::kProject:
      return ExecuteNode(*node.children[0], ctx, [&](Row&& row) -> Status {
        Row out;
        out.reserve(node.exprs.size());
        for (const ExprPtr& e : node.exprs) {
          GPHTAP_ASSIGN_OR_RETURN(Datum d, EvalExpr(*e, row));
          out.push_back(std::move(d));
        }
        return sink(std::move(out));
      });
    case PlanKind::kHashJoin:
      return ExecHashJoin(node, ctx, sink);
    case PlanKind::kNestLoop:
      return ExecNestLoop(node, ctx, sink);
    case PlanKind::kHashAgg:
      return ExecHashAgg(node, ctx, sink);
    case PlanKind::kSort:
      return ExecSort(node, ctx, sink);
    case PlanKind::kLimit: {
      int64_t remaining = node.limit;
      if (remaining == 0) return Status::OK();
      Status s = ExecuteNode(*node.children[0], ctx, [&](Row&& row) -> Status {
        GPHTAP_RETURN_IF_ERROR(sink(std::move(row)));
        if (--remaining <= 0) return Status::StopIteration();
        return Status::OK();
      });
      if (s.code() == StatusCode::kStopIteration) return Status::OK();
      return s;
    }
    case PlanKind::kMotion:
      return ExecMotionRecv(node, ctx, sink);
  }
  return Status::Internal("bad plan node");
}

}  // namespace

Status ExecuteNode(const PlanNode& node, ExecContext& ctx, const RowSink& sink) {
  // Vectorize-marked subtrees run on the batch engine; when the consumer is a
  // row operator (this call), batches are exploded back into rows at the
  // boundary. ExecuteNodeVec does its own per-operator instrumentation.
  if (node.vectorize && VecEngineSupports(node.kind)) {
    if (&node != ctx.slice_root) {
      if (ctx.cluster != nullptr) {
        ctx.cluster->metrics().counter("vec.fallbacks")->Add(1);
      }
      if (ctx.resources != nullptr) {
        ctx.resources->vec_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return ExecuteNodeVec(node, ctx, [&](ColumnBatch&& batch) -> Status {
      for (int32_t r : batch.sel) {
        Status s = sink(batch.MaterializeRow(r));
        if (!s.ok()) return s;
      }
      return Status::OK();
    });
  }
  if (ctx.op_stats == nullptr || node.node_id < 0) {
    return ExecuteNodeImpl(node, ctx, sink);
  }
  // Inclusive timing (children execute inside the parent's push pipeline),
  // same convention as PostgreSQL's EXPLAIN ANALYZE.
  int64_t rows = 0;
  Stopwatch sw;
  Status s = ExecuteNodeImpl(node, ctx, [&](Row&& row) -> Status {
    ++rows;
    return sink(std::move(row));
  });
  ctx.op_stats->Record(node.node_id, rows, sw.ElapsedMicros());
  return s;
}

namespace {

// Collects motion nodes in the order producers must start (bottom-up).
void CollectMotions(const PlanNode& node, std::vector<const PlanNode*>* out) {
  for (const auto& c : node.children) CollectMotions(*c, out);
  if (node.kind == PlanKind::kMotion) out->push_back(&node);
}

}  // namespace

Status ExecutePlan(Cluster* cluster, const QueryPlan& plan, Gxid gxid,
                   const std::shared_ptr<LockOwner>& owner,
                   const DistributedSnapshot& snapshot, ResourceGroup* group,
                   QueryMemoryAccount* mem, const RowSink& sink,
                   const ExecProfile* profile) {
  Trace* trace = profile != nullptr ? profile->trace : nullptr;
  OperatorStatsCollector* op_stats = profile != nullptr ? profile->op_stats : nullptr;
  const uint64_t parent_span = profile != nullptr ? profile->parent_span : 0;

  std::vector<const PlanNode*> motions;
  CollectMotions(*plan.root, &motions);

  ExchangeMap exchanges;
  for (const PlanNode* m : motions) {
    int senders = static_cast<int>(plan.gang.size());
    int receivers = m->motion == MotionKind::kGather ? 1 : static_cast<int>(plan.gang.size());
    exchanges[m->motion_id] = std::make_shared<MotionExchange>(
        senders, receivers, cluster->options().motion_buffer_rows, &cluster->net());
  }
  // Make the exchanges reachable from Cluster::CancelTxn (GDD kill, statement
  // timeout, user cancel) so receivers parked on an idle sender wake promptly.
  if (!exchanges.empty()) {
    std::vector<std::weak_ptr<MotionExchange>> weak_exchanges;
    weak_exchanges.reserve(exchanges.size());
    for (auto& [id, ex] : exchanges) weak_exchanges.push_back(ex);
    cluster->RegisterExchanges(gxid, std::move(weak_exchanges));
  }
  // The statement deadline travels in ExecContext (checked in Tick) and in the
  // ambient wait context (checked inside motion/fsync waits via the owner).
  const int64_t deadline_us = owner != nullptr ? owner->deadline_us() : 0;

  std::mutex err_mu;
  Status first_error;
  std::atomic<bool> query_done{false};  // set once the top slice succeeded
  auto record_error = [&](const Status& s) {
    if (s.ok() || s.code() == StatusCode::kStopIteration) return;
    // After a successful top slice we deliberately abort the exchanges to
    // unblock producers (LIMIT early-out); their resulting abort statuses are
    // expected, not query failures.
    if (query_done.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> g(err_mu);
    if (first_error.ok()) {
      first_error = s;
      for (auto& [id, ex] : exchanges) ex->Abort();
    }
  };

  // Producer threads: one per (motion, gang member). Each inherits the
  // caller's ambient wait context (registry / session / profile sinks) so
  // blocking inside a slice — motion back-pressure, segment locks, buffer
  // misses — is attributed to the owning statement, relabeled with the
  // segment it happened on and parented under the slice's span.
  const WaitContext* caller_wait = CurrentWaitContext();
  // Statement-level resource accumulator (gp_stat_statements): inherited from
  // the session's wait context, shared by every slice of the gang.
  StatementResources* res = caller_wait != nullptr ? caller_wait->resources : nullptr;
  std::vector<std::thread> producers;
  for (const PlanNode* m : motions) {
    for (size_t gi = 0; gi < plan.gang.size(); ++gi) {
      int seg_index = plan.gang[gi];
      producers.emplace_back([&, m, gi, seg_index] {
        uint64_t span = 0;
        if (trace != nullptr) {
          span = trace->StartSpan("slice:motion" + std::to_string(m->motion_id),
                                  parent_span, seg_index);
        }
        WaitContext slice_wait;
        if (caller_wait != nullptr) slice_wait = *caller_wait;
        slice_wait.node = seg_index;
        slice_wait.trace = trace;
        slice_wait.parent_span = span;
        slice_wait.owner = owner.get();
        WaitContextGuard wait_guard(slice_wait);
        // Service pin for the whole slice: a down segment fails the query with
        // a retryable error instead of reading torn state mid-recovery. Goes
        // through the per-segment circuit breaker when one is configured.
        auto pin = cluster->PinSegment(seg_index);
        if (!pin.ok()) {
          record_error(pin.status());
          exchanges[m->motion_id]->CloseSender();
          if (trace != nullptr) trace->EndSpan(span);
          return;
        }
        ExecContext ctx;
        ctx.cluster = cluster;
        ctx.segment = cluster->segment(seg_index);
        ctx.receiver_index = static_cast<int>(gi);
        ctx.gxid = gxid;
        ctx.owner = owner;
        ctx.snapshot = &snapshot;
        ctx.lsnap = ctx.segment->txns().TakeLocalSnapshot();
        ctx.exchanges = &exchanges;
        ctx.group = group;
        ctx.mem = mem;
        ctx.cpu_ns_per_row = cluster->options().exec_cpu_ns_per_row;
        ctx.op_stats = op_stats;
        ctx.deadline_us = deadline_us;
        ctx.resources = res;

        MotionExchange& ex = *exchanges[m->motion_id];
        const std::vector<int>& hash_cols = m->hash_cols;
        MotionKind kind = m->motion;
        int receivers = ex.num_receivers();
        int64_t rows_out = 0;
        Status s;
        const PlanNode& slice_root = *m->children[0];
        ctx.slice_root = &slice_root;
        Stopwatch slice_sw;
        if (slice_root.vectorize && VecEngineSupports(slice_root.kind)) {
          // Vectorized slice: ship whole ColumnBatch chunks instead of rows.
          s = ExecuteNodeVec(slice_root, ctx, [&](ColumnBatch&& batch) -> Status {
            if (batch.ActiveRows() == 0) return Status::OK();
            rows_out += static_cast<int64_t>(batch.ActiveRows());
            bool sent = true;
            switch (kind) {
              case MotionKind::kGather:
                sent = ex.SendBatch(0, std::make_shared<ColumnBatch>(std::move(batch)));
                break;
              case MotionKind::kBroadcast:
                sent = ex.SendBatchToAll(std::make_shared<ColumnBatch>(std::move(batch)));
                break;
              case MotionKind::kRedistribute: {
                std::vector<ColumnBatch> parts;
                GPHTAP_RETURN_IF_ERROR(
                    VecPartitionBatch(batch, hash_cols, receivers, &parts));
                for (int t = 0; t < receivers && sent; ++t) {
                  if (parts[static_cast<size_t>(t)].ActiveRows() == 0) continue;
                  sent = ex.SendBatch(t, std::make_shared<ColumnBatch>(
                                             std::move(parts[static_cast<size_t>(t)])));
                }
                break;
              }
            }
            if (!sent) return Status::StopIteration();
            return Status::OK();
          });
        } else {
          s = ExecuteNode(slice_root, ctx, [&](Row&& row) -> Status {
            ++rows_out;
            bool sent = true;
            switch (kind) {
              case MotionKind::kGather:
                sent = ex.Send(0, std::move(row));
                break;
              case MotionKind::kBroadcast:
                sent = ex.SendToAll(row);
                break;
              case MotionKind::kRedistribute: {
                int target = static_cast<int>(HashRowKey(row, hash_cols) %
                                              static_cast<uint64_t>(receivers));
                sent = ex.Send(target, std::move(row));
                break;
              }
            }
            // A closed exchange is either deliberate early termination (LIMIT)
            // or a failure someone else already recorded; stop quietly.
            if (!sent) return Status::StopIteration();
            return Status::OK();
          });
        }
        ctx.FlushCpu();
        if (res != nullptr) {
          res->exec_cpu_ns.fetch_add(static_cast<uint64_t>(slice_sw.ElapsedNanos()),
                                     std::memory_order_relaxed);
          res->RecordSliceUs(slice_sw.ElapsedMicros());
        }
        record_error(s);
        ex.CloseSender();
        if (trace != nullptr) trace->EndSpan(span, rows_out);
      });
    }
  }

  // Top slice on the caller's thread (coordinator). Re-install the caller's
  // wait context with the owner attached so motion waits on this thread are
  // interruptible even when the caller never set one up (tests, benches).
  WaitContext top_wait;
  if (caller_wait != nullptr) top_wait = *caller_wait;
  top_wait.owner = owner.get();
  WaitContextGuard top_wait_guard(top_wait);
  ExecContext top;
  top.cluster = cluster;
  top.segment = nullptr;
  top.receiver_index = 0;
  top.gxid = gxid;
  top.owner = owner;
  top.snapshot = &snapshot;
  top.lsnap = cluster->coordinator_txns().TakeLocalSnapshot();
  top.exchanges = &exchanges;
  top.group = group;
  top.mem = mem;
  top.cpu_ns_per_row = cluster->options().exec_cpu_ns_per_row;
  top.op_stats = op_stats;
  top.deadline_us = deadline_us;
  top.resources = res;
  top.slice_root = plan.root.get();

  uint64_t top_span = 0;
  int64_t top_rows = 0;
  RowSink top_sink = sink;
  if (trace != nullptr) {
    top_span = trace->StartSpan("slice:top", parent_span, Trace::kCoordinatorNode);
    top_sink = [&](Row&& row) -> Status {
      ++top_rows;
      return sink(std::move(row));
    };
  }
  Stopwatch top_sw;
  Status top_status = ExecuteNode(*plan.root, top, top_sink);
  if (top_status.code() == StatusCode::kStopIteration) top_status = Status::OK();
  top.FlushCpu();
  if (res != nullptr) {
    res->exec_cpu_ns.fetch_add(static_cast<uint64_t>(top_sw.ElapsedNanos()),
                               std::memory_order_relaxed);
    res->RecordSliceUs(top_sw.ElapsedMicros());
  }
  if (trace != nullptr) trace->EndSpan(top_span, top_rows);
  // A cancellation (GDD kill, statement timeout) aborts the exchanges, which a
  // receiver observes as a clean end-of-stream — so an ok top status does not
  // prove completeness. Surface the cancel instead of truncated results.
  if (top_status.ok() && owner != nullptr && owner->cancelled()) {
    top_status = owner->cancel_reason();
  }
  if (top_status.ok()) {
    query_done.store(true, std::memory_order_release);
  } else {
    record_error(top_status);
  }
  // Unblock any still-running producers (error path, or LIMIT stopped the
  // consumer before draining) and join them.
  for (auto& [id, ex] : exchanges) ex->Abort();
  for (auto& t : producers) t.join();
  cluster->UnregisterExchanges(gxid);

  // Interconnect blocked time, attributed per motion so EXPLAIN ANALYZE can
  // report "how long did this exchange stall" apart from operator time.
  if (op_stats != nullptr) {
    for (const PlanNode* m : motions) {
      MotionExchange& ex = *exchanges[m->motion_id];
      op_stats->RecordMotionWait(m->node_id, ex.send_wait_us(), ex.recv_wait_us());
    }
  }
  // Gang network attribution: total payload bytes shipped by this statement's
  // exchanges (same tally SimNet was charged with).
  if (res != nullptr) {
    for (auto& [id, ex] : exchanges) {
      res->net_bytes.fetch_add(ex->bytes_sent(), std::memory_order_relaxed);
    }
  }

  // The first recorded error is the root cause; later errors (e.g. the top
  // slice seeing "motion exchange aborted") are its echoes.
  if (!first_error.ok()) return first_error;
  return top_status;
}

}  // namespace gphtap
