// Push-based SPMD plan execution (Section 3.2): motion nodes cut the plan into
// slices; each (slice, gang member) runs as its own producer thread feeding a
// MotionExchange, and the top slice runs on the caller's thread, streaming rows
// into the caller's sink.
#ifndef GPHTAP_EXEC_EXECUTOR_H_
#define GPHTAP_EXEC_EXECUTOR_H_

#include <functional>

#include "exec/exec_context.h"
#include "plan/plan.h"

namespace gphtap {

/// Receives produced rows. Returning kStopIteration stops production early
/// (LIMIT); any other non-OK status aborts the query.
using RowSink = std::function<Status(Row&&)>;

/// Executes one plan node subtree within a slice, pushing rows into `sink`.
/// Exposed for unit tests; queries normally go through ExecutePlan.
Status ExecuteNode(const PlanNode& node, ExecContext& ctx, const RowSink& sink);

/// Resolves the plan node's table on the context's node. Shared with the
/// vectorized engine (src/vec/).
Status TableForNode(ExecContext& ctx, TableId id, Table** out);

/// Acquires the scan-level relation lock on this node (AccessShare), held to
/// transaction end per two-phase locking. Shared with src/vec/.
Status AcquireScanLock(ExecContext& ctx, TableId table);

/// EXPLAIN-facing physical store label ("heap", "ao-row", "ao-column",
/// "external") for per-store row accounting. Shared with src/vec/. Distinct
/// from StorageKindName, which is the catalog's storage-clause spelling.
const char* ScanStoreLabel(StorageKind kind);

struct QueryPlan {
  /// Shared + immutable so a cached plan can be executed by many statements
  /// (plan cache, prepared statements) without copying the tree.
  std::shared_ptr<const PlanNode> root;
  /// Segments executing the leaf slices (all segments, or one under direct
  /// dispatch). The top slice always runs on the coordinator.
  std::vector<int> gang;
};

/// Optional observability attachment for one query execution: a trace to hang
/// per-slice spans under, and/or an EXPLAIN ANALYZE operator-stats collector.
struct ExecProfile {
  Trace* trace = nullptr;
  uint64_t parent_span = 0;  // span id the slice spans become children of
  OperatorStatsCollector* op_stats = nullptr;
};

/// Runs the full sliced plan against the cluster. Producer threads are spawned
/// per (motion, gang member); the caller's thread drives the top slice.
/// `profile` (optional) collects spans / per-operator actuals.
Status ExecutePlan(Cluster* cluster, const QueryPlan& plan, Gxid gxid,
                   const std::shared_ptr<LockOwner>& owner,
                   const DistributedSnapshot& snapshot, ResourceGroup* group,
                   QueryMemoryAccount* mem, const RowSink& sink,
                   const ExecProfile* profile = nullptr);

}  // namespace gphtap

#endif  // GPHTAP_EXEC_EXECUTOR_H_
