// Aggregate accumulators shared by the row executor and the vectorized batch
// engine. One implementation of update / partial-state wire format / merge /
// final emission keeps the two engines bit-identical on aggregation results.
#ifndef GPHTAP_EXEC_AGG_OPS_H_
#define GPHTAP_EXEC_AGG_OPS_H_

#include <string>
#include <vector>

#include "catalog/datum.h"
#include "common/status.h"
#include "plan/plan.h"

namespace gphtap {

struct AggState {
  int64_t count = 0;
  bool has_value = false;
  Datum acc;       // sum / min / max accumulator
  double sum = 0;  // numeric sum for kSum / kAvg
  bool sum_is_int = true;
  int64_t isum = 0;
};

/// Folds one already-evaluated argument value into the state. NULLs are
/// ignored (except kCountStar, which ignores the value entirely).
void AggUpdateValue(AggFunc fn, AggState* s, const Datum& v);

/// Evaluates the agg's argument against `row`, then folds it in.
Status AggUpdate(const AggSpec& spec, AggState* s, const Row& row);

/// The SUM result datum (int until a double value widened the accumulator).
Datum AggSumDatum(const AggState& s);

/// Appends the partial state columns for one agg (wire format between the
/// partial and final phases).
void AggEmitPartial(const AggSpec& spec, const AggState& s, Row* out);

/// Merges one partial-state row segment into the final state. `col` points at
/// the first state column of this agg within the input row.
Status AggMergePartial(const AggSpec& spec, AggState* s, const Row& row, int col);

void AggEmitFinal(const AggSpec& spec, const AggState& s, Row* out);

/// Appends one group-key component (NULL-safe, unambiguous) to `key`.
void AppendGroupKeyPart(const Datum& d, std::string* key);

/// Serialized grouping key for hash aggregation over a row.
std::string GroupKeyString(const Row& row, const std::vector<int>& keys);

}  // namespace gphtap

#endif  // GPHTAP_EXEC_AGG_OPS_H_
