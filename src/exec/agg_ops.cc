#include "exec/agg_ops.h"

namespace gphtap {

void AggUpdateValue(AggFunc fn, AggState* s, const Datum& v) {
  if (fn == AggFunc::kCountStar) {
    ++s->count;
    return;
  }
  if (v.is_null()) return;
  switch (fn) {
    case AggFunc::kCount:
      ++s->count;
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      ++s->count;
      if (v.is_int() && s->sum_is_int) {
        s->isum += v.int_val();
      } else {
        if (s->sum_is_int) {
          s->sum = static_cast<double>(s->isum);
          s->sum_is_int = false;
        }
        s->sum += v.AsDouble();
      }
      s->has_value = true;
      break;
    case AggFunc::kMin:
      if (!s->has_value || v.Compare(s->acc) < 0) s->acc = v;
      s->has_value = true;
      break;
    case AggFunc::kMax:
      if (!s->has_value || v.Compare(s->acc) > 0) s->acc = v;
      s->has_value = true;
      break;
    case AggFunc::kCountStar:
      break;
  }
}

Status AggUpdate(const AggSpec& spec, AggState* s, const Row& row) {
  if (spec.fn == AggFunc::kCountStar) {
    ++s->count;
    return Status::OK();
  }
  GPHTAP_ASSIGN_OR_RETURN(Datum v, EvalExpr(*spec.arg, row));
  AggUpdateValue(spec.fn, s, v);
  return Status::OK();
}

Datum AggSumDatum(const AggState& s) {
  if (!s.has_value) return Datum::Null();
  return s.sum_is_int ? Datum(s.isum) : Datum(s.sum);
}

void AggEmitPartial(const AggSpec& spec, const AggState& s, Row* out) {
  switch (spec.fn) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      out->push_back(Datum(s.count));
      break;
    case AggFunc::kSum:
      out->push_back(AggSumDatum(s));
      break;
    case AggFunc::kAvg:
      out->push_back(AggSumDatum(s));
      out->push_back(Datum(s.count));
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      out->push_back(s.has_value ? s.acc : Datum::Null());
      break;
  }
}

Status AggMergePartial(const AggSpec& spec, AggState* s, const Row& row, int col) {
  const Datum& v0 = row[static_cast<size_t>(col)];
  switch (spec.fn) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      if (!v0.is_null()) s->count += v0.int_val();
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (!v0.is_null()) {
        if (v0.is_int() && s->sum_is_int) {
          s->isum += v0.int_val();
        } else {
          if (s->sum_is_int) {
            s->sum = static_cast<double>(s->isum);
            s->sum_is_int = false;
          }
          s->sum += v0.AsDouble();
        }
        s->has_value = true;
      }
      if (spec.fn == AggFunc::kAvg) {
        const Datum& c = row[static_cast<size_t>(col) + 1];
        if (!c.is_null()) s->count += c.int_val();
      }
      return Status::OK();
    }
    case AggFunc::kMin:
      if (!v0.is_null() && (!s->has_value || v0.Compare(s->acc) < 0)) s->acc = v0;
      if (!v0.is_null()) s->has_value = true;
      return Status::OK();
    case AggFunc::kMax:
      if (!v0.is_null() && (!s->has_value || v0.Compare(s->acc) > 0)) s->acc = v0;
      if (!v0.is_null()) s->has_value = true;
      return Status::OK();
  }
  return Status::Internal("bad agg");
}

void AggEmitFinal(const AggSpec& spec, const AggState& s, Row* out) {
  switch (spec.fn) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      out->push_back(Datum(s.count));
      break;
    case AggFunc::kSum:
      out->push_back(AggSumDatum(s));
      break;
    case AggFunc::kAvg: {
      if (s.count == 0) {
        out->push_back(Datum::Null());
      } else {
        double total = s.sum_is_int ? static_cast<double>(s.isum) : s.sum;
        out->push_back(Datum(total / static_cast<double>(s.count)));
      }
      break;
    }
    case AggFunc::kMin:
    case AggFunc::kMax:
      out->push_back(s.has_value ? s.acc : Datum::Null());
      break;
  }
}

void AppendGroupKeyPart(const Datum& d, std::string* key) {
  *key += d.is_null() ? std::string("\x01N") : d.ToString();
  *key += '\x02';
}

std::string GroupKeyString(const Row& row, const std::vector<int>& keys) {
  std::string s;
  for (int k : keys) AppendGroupKeyPart(row[static_cast<size_t>(k)], &s);
  return s;
}

}  // namespace gphtap
