#include "gdd/gdd_algorithm.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace gphtap {

namespace {

// Mutable working copy of the multigraph: one edge list per node, with a kept flag.
struct WorkEdge {
  int node;
  WaitEdge e;
  bool kept = true;
};

}  // namespace

GddResult RunGddAlgorithm(const std::vector<LocalWaitGraph>& locals) {
  std::vector<WorkEdge> edges;
  for (const auto& lg : locals) {
    for (const auto& e : lg.edges) edges.push_back(WorkEdge{lg.node_id, e, true});
  }

  auto global_out_degree = [&](std::unordered_map<uint64_t, int>* deg) {
    deg->clear();
    for (const auto& we : edges) {
      if (!we.kept) continue;
      (*deg)[we.e.waiter] += 1;
      // Ensure holders appear with (at least) zero degree.
      deg->emplace(we.e.holder, 0);
    }
  };

  bool removed = true;
  int iterations = 0;
  std::unordered_map<uint64_t, int> gdeg;
  while (removed) {
    removed = false;
    ++iterations;

    // Phase 1: drop all edges pointing to vertices with zero global out-degree.
    global_out_degree(&gdeg);
    for (auto& we : edges) {
      if (!we.kept) continue;
      auto it = gdeg.find(we.e.holder);
      if (it == gdeg.end() || it->second == 0) {
        we.kept = false;
        removed = true;
      }
    }

    // Phase 2: per node, drop dotted edges pointing to vertices with zero local
    // out-degree on that node.
    std::unordered_map<int, std::unordered_map<uint64_t, int>> ldeg;
    for (const auto& we : edges) {
      if (!we.kept) continue;
      ldeg[we.node][we.e.waiter] += 1;
    }
    for (auto& we : edges) {
      if (!we.kept || !we.e.dotted) continue;
      const auto& node_deg = ldeg[we.node];
      auto it = node_deg.find(we.e.holder);
      if (it == node_deg.end() || it->second == 0) {
        we.kept = false;
        removed = true;
      }
    }
  }

  GddResult result;
  result.iterations = iterations;
  std::unordered_map<int, LocalWaitGraph> by_node;
  std::vector<WaitEdge> flat;
  for (const auto& we : edges) {
    if (!we.kept) continue;
    auto& lg = by_node[we.node];
    lg.node_id = we.node;
    lg.edges.push_back(we.e);
    flat.push_back(we.e);
  }
  for (auto& [node, lg] : by_node) result.remaining.push_back(std::move(lg));
  std::sort(result.remaining.begin(), result.remaining.end(),
            [](const LocalWaitGraph& a, const LocalWaitGraph& b) {
              return a.node_id < b.node_id;
            });

  if (flat.empty()) return result;

  result.cycle_vertices = VerticesOnCycles(flat);
  if (!result.cycle_vertices.empty()) {
    result.deadlock = true;
    result.victim =
        *std::max_element(result.cycle_vertices.begin(), result.cycle_vertices.end());
  }
  return result;
}

std::vector<uint64_t> VerticesOnCycles(const std::vector<WaitEdge>& edges) {
  // Tarjan's SCC, iterative.
  std::unordered_map<uint64_t, std::vector<uint64_t>> adj;
  std::unordered_set<uint64_t> vertices;
  std::unordered_set<uint64_t> self_loops;
  for (const auto& e : edges) {
    vertices.insert(e.waiter);
    vertices.insert(e.holder);
    if (e.waiter == e.holder) {
      self_loops.insert(e.waiter);
      continue;
    }
    adj[e.waiter].push_back(e.holder);
  }

  std::unordered_map<uint64_t, int> index, lowlink;
  std::unordered_set<uint64_t> on_stack;
  std::vector<uint64_t> stack;
  int next_index = 0;
  std::vector<uint64_t> result(self_loops.begin(), self_loops.end());

  struct Frame {
    uint64_t v;
    size_t child = 0;
  };

  for (uint64_t root : vertices) {
    if (index.count(root)) continue;
    std::vector<Frame> frames;
    frames.push_back({root});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack.insert(root);

    while (!frames.empty()) {
      Frame& f = frames.back();
      auto& children = adj[f.v];
      if (f.child < children.size()) {
        uint64_t w = children[f.child++];
        if (!index.count(w)) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack.insert(w);
          frames.push_back({w});
        } else if (on_stack.count(w)) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          // Pop one SCC.
          std::vector<uint64_t> scc;
          while (true) {
            uint64_t w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.push_back(w);
            if (w == f.v) break;
          }
          if (scc.size() > 1) {
            result.insert(result.end(), scc.begin(), scc.end());
          }
        }
        uint64_t child_v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[child_v]);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::string GddResult::ToString() const {
  std::string s = deadlock ? "DEADLOCK victim=" + std::to_string(victim) : "no-deadlock";
  for (const auto& lg : remaining) {
    s += " | node " + std::to_string(lg.node_id) + ":";
    for (const auto& e : lg.edges) {
      s += " " + WaitEdgeToString(e);
    }
  }
  return s;
}

}  // namespace gphtap
