// The GDD daemon (Section 4.3): a coordinator-side thread that periodically
// collects per-node wait-for graphs, runs Algorithm 1, re-validates the result
// against live transactions, and terminates the youngest deadlocked transaction.
#ifndef GPHTAP_GDD_GDD_DAEMON_H_
#define GPHTAP_GDD_GDD_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "gdd/gdd_algorithm.h"
#include "lock/wait_graph.h"

namespace gphtap {

class GddDaemon {
 public:
  /// Callbacks into the cluster. `collect` gathers all local wait-for graphs
  /// (coordinator + segments). `txn_running(gxid)` reports whether the
  /// transaction still exists (the paper's final-state validation: stale graphs
  /// are discarded). `kill(gxid, status)` cancels the victim everywhere.
  struct Hooks {
    std::function<std::vector<LocalWaitGraph>()> collect;
    std::function<bool(uint64_t)> txn_running;
    std::function<void(uint64_t, Status)> kill;
  };

  struct Stats {
    uint64_t runs = 0;
    uint64_t deadlocks_found = 0;
    uint64_t victims_killed = 0;
    uint64_t stale_discards = 0;  // detection discarded because a txn finished
  };

  /// One confirmed deadlock, as recorded at kill time: the validated merged
  /// wait-for graph that survived greedy reduction, plus what was done about
  /// it. Backs the gp_dist_deadlocks system view and DumpDot().
  struct DeadlockRecord {
    uint64_t seq = 0;            // 1-based detection sequence number
    int64_t detected_at_us = 0;  // monotonic timestamp of the kill decision
    uint64_t victim = 0;
    std::string reason;          // the Status message handed to the kill hook
    int iterations = 0;          // reduction sweeps the final run needed
    struct Edge {
      uint64_t waiter = 0;
      uint64_t holder = 0;
      int node = -1;   // where the wait was observed (-1 = coordinator)
      bool dotted = false;
      bool on_cycle = false;  // both endpoints sit on a deadlock cycle
    };
    std::vector<Edge> edges;  // the post-reduction graph, every node merged
  };

  /// `metrics` (optional) registers gdd.rounds / gdd.deadlocks / gdd.victims /
  /// gdd.stale_discards / gdd.edges_collected / gdd.edges_reduced counters.
  GddDaemon(Hooks hooks, int64_t period_us, MetricsRegistry* metrics = nullptr);
  ~GddDaemon();

  GddDaemon(const GddDaemon&) = delete;
  GddDaemon& operator=(const GddDaemon&) = delete;

  /// Starts the background detection thread. Idempotent.
  void Start();
  /// Stops and joins the background thread. Idempotent.
  void Stop();

  /// Runs one detection round synchronously (used by tests and by the thread).
  /// Returns the algorithm result of the final (validated) run.
  GddResult RunOnce();

  Stats stats() const;
  int64_t period_us() const { return period_us_; }

  /// The most recent confirmed deadlocks, oldest first (bounded ring).
  std::vector<DeadlockRecord> DeadlockHistory() const;

  /// Graphviz DOT of the last confirmed deadlock's wait-for graph: solid vs
  /// dotted (style=dotted) edges, cycle members outlined, the victim filled
  /// red. Empty string when no deadlock has been recorded yet.
  std::string DumpDot() const;

 private:
  void Loop();
  void RecordDeadlock(const GddResult& result, const std::string& reason);

  Hooks hooks_;
  const int64_t period_us_;

  static constexpr size_t kDeadlockHistoryCapacity = 64;

  mutable std::mutex mu_;
  Stats stats_;
  std::deque<DeadlockRecord> deadlock_history_;
  uint64_t next_deadlock_seq_ = 0;
  Counter* m_rounds_ = nullptr;
  Counter* m_deadlocks_ = nullptr;
  Counter* m_victims_ = nullptr;
  Counter* m_stale_discards_ = nullptr;
  Counter* m_edges_collected_ = nullptr;
  Counter* m_edges_reduced_ = nullptr;

  std::atomic<bool> running_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::thread thread_;
};

}  // namespace gphtap

#endif  // GPHTAP_GDD_GDD_DAEMON_H_
