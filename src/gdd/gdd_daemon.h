// The GDD daemon (Section 4.3): a coordinator-side thread that periodically
// collects per-node wait-for graphs, runs Algorithm 1, re-validates the result
// against live transactions, and terminates the youngest deadlocked transaction.
#ifndef GPHTAP_GDD_GDD_DAEMON_H_
#define GPHTAP_GDD_GDD_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "gdd/gdd_algorithm.h"
#include "lock/wait_graph.h"

namespace gphtap {

class GddDaemon {
 public:
  /// Callbacks into the cluster. `collect` gathers all local wait-for graphs
  /// (coordinator + segments). `txn_running(gxid)` reports whether the
  /// transaction still exists (the paper's final-state validation: stale graphs
  /// are discarded). `kill(gxid, status)` cancels the victim everywhere.
  struct Hooks {
    std::function<std::vector<LocalWaitGraph>()> collect;
    std::function<bool(uint64_t)> txn_running;
    std::function<void(uint64_t, Status)> kill;
  };

  struct Stats {
    uint64_t runs = 0;
    uint64_t deadlocks_found = 0;
    uint64_t victims_killed = 0;
    uint64_t stale_discards = 0;  // detection discarded because a txn finished
  };

  /// `metrics` (optional) registers gdd.rounds / gdd.deadlocks / gdd.victims /
  /// gdd.stale_discards / gdd.edges_collected / gdd.edges_reduced counters.
  GddDaemon(Hooks hooks, int64_t period_us, MetricsRegistry* metrics = nullptr);
  ~GddDaemon();

  GddDaemon(const GddDaemon&) = delete;
  GddDaemon& operator=(const GddDaemon&) = delete;

  /// Starts the background detection thread. Idempotent.
  void Start();
  /// Stops and joins the background thread. Idempotent.
  void Stop();

  /// Runs one detection round synchronously (used by tests and by the thread).
  /// Returns the algorithm result of the final (validated) run.
  GddResult RunOnce();

  Stats stats() const;
  int64_t period_us() const { return period_us_; }

 private:
  void Loop();

  Hooks hooks_;
  const int64_t period_us_;

  mutable std::mutex mu_;
  Stats stats_;
  Counter* m_rounds_ = nullptr;
  Counter* m_deadlocks_ = nullptr;
  Counter* m_victims_ = nullptr;
  Counter* m_stale_discards_ = nullptr;
  Counter* m_edges_collected_ = nullptr;
  Counter* m_edges_reduced_ = nullptr;

  std::atomic<bool> running_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::thread thread_;
};

}  // namespace gphtap

#endif  // GPHTAP_GDD_GDD_DAEMON_H_
