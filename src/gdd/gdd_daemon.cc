#include "gdd/gdd_daemon.h"

#include <chrono>

#include "common/logging.h"

namespace gphtap {

GddDaemon::GddDaemon(Hooks hooks, int64_t period_us)
    : hooks_(std::move(hooks)), period_us_(period_us) {}

GddDaemon::~GddDaemon() { Stop(); }

void GddDaemon::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void GddDaemon::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> g(wake_mu_);
    wake_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void GddDaemon::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    RunOnce();
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait_for(lk, std::chrono::microseconds(period_us_),
                      [this] { return !running_.load(std::memory_order_relaxed); });
  }
}

GddResult GddDaemon::RunOnce() {
  {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.runs;
  }
  GddResult result = RunGddAlgorithm(hooks_.collect());
  if (!result.deadlock) return result;

  // Collection is asynchronous across nodes; re-validate before acting (the
  // paper: lock the final state, check all remaining transactions still exist,
  // otherwise discard and retry next period). We re-collect and require the
  // detection to reproduce with every implicated transaction still running.
  GddResult second = RunGddAlgorithm(hooks_.collect());
  if (!second.deadlock) {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.stale_discards;
    return second;
  }
  for (uint64_t v : second.cycle_vertices) {
    if (!hooks_.txn_running(v)) {
      std::lock_guard<std::mutex> g(mu_);
      ++stats_.stale_discards;
      return second;
    }
  }

  {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.deadlocks_found;
    ++stats_.victims_killed;
  }
  GPHTAP_LOG(Info) << "GDD: global deadlock detected, killing youngest victim gxid="
                   << second.victim;
  hooks_.kill(second.victim,
              Status::DeadlockDetected("victim of global deadlock (gxid=" +
                                       std::to_string(second.victim) + ")"));
  return second;
}

GddDaemon::Stats GddDaemon::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

}  // namespace gphtap
