#include "gdd/gdd_daemon.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_set>

#include "common/clock.h"
#include "common/logging.h"

namespace gphtap {

namespace {
size_t CountEdges(const std::vector<LocalWaitGraph>& graphs) {
  size_t n = 0;
  for (const LocalWaitGraph& g : graphs) n += g.edges.size();
  return n;
}
}  // namespace

GddDaemon::GddDaemon(Hooks hooks, int64_t period_us, MetricsRegistry* metrics)
    : hooks_(std::move(hooks)), period_us_(period_us) {
  if (metrics != nullptr) {
    m_rounds_ = metrics->counter("gdd.rounds");
    m_deadlocks_ = metrics->counter("gdd.deadlocks");
    m_victims_ = metrics->counter("gdd.victims");
    m_stale_discards_ = metrics->counter("gdd.stale_discards");
    m_edges_collected_ = metrics->counter("gdd.edges_collected");
    m_edges_reduced_ = metrics->counter("gdd.edges_reduced");
  }
}

GddDaemon::~GddDaemon() { Stop(); }

void GddDaemon::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void GddDaemon::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> g(wake_mu_);
    wake_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void GddDaemon::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    RunOnce();
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait_for(lk, std::chrono::microseconds(period_us_),
                      [this] { return !running_.load(std::memory_order_relaxed); });
  }
}

GddResult GddDaemon::RunOnce() {
  {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.runs;
  }
  if (m_rounds_ != nullptr) m_rounds_->Add(1);
  std::vector<LocalWaitGraph> graphs = hooks_.collect();
  const size_t edges_in = CountEdges(graphs);
  GddResult result = RunGddAlgorithm(graphs);
  if (m_edges_collected_ != nullptr) m_edges_collected_->Add(edges_in);
  if (m_edges_reduced_ != nullptr) {
    const size_t edges_left = CountEdges(result.remaining);
    m_edges_reduced_->Add(edges_in >= edges_left ? edges_in - edges_left : 0);
  }
  if (!result.deadlock) return result;

  // Collection is asynchronous across nodes; re-validate before acting (the
  // paper: lock the final state, check all remaining transactions still exist,
  // otherwise discard and retry next period). We re-collect and require the
  // detection to reproduce with every implicated transaction still running.
  GddResult second = RunGddAlgorithm(hooks_.collect());
  if (!second.deadlock) {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.stale_discards;
    if (m_stale_discards_ != nullptr) m_stale_discards_->Add(1);
    return second;
  }
  for (uint64_t v : second.cycle_vertices) {
    if (!hooks_.txn_running(v)) {
      std::lock_guard<std::mutex> g(mu_);
      ++stats_.stale_discards;
      if (m_stale_discards_ != nullptr) m_stale_discards_->Add(1);
      return second;
    }
  }

  {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.deadlocks_found;
    ++stats_.victims_killed;
  }
  if (m_deadlocks_ != nullptr) m_deadlocks_->Add(1);
  if (m_victims_ != nullptr) m_victims_->Add(1);
  GPHTAP_LOG(Info) << "GDD: global deadlock detected, killing youngest victim gxid="
                   << second.victim;
  const std::string reason =
      "victim of global deadlock (gxid=" + std::to_string(second.victim) + ")";
  RecordDeadlock(second, reason);
  hooks_.kill(second.victim, Status::DeadlockDetected(reason));
  return second;
}

void GddDaemon::RecordDeadlock(const GddResult& result, const std::string& reason) {
  DeadlockRecord rec;
  rec.detected_at_us = MonotonicMicros();
  rec.victim = result.victim;
  rec.reason = reason;
  rec.iterations = result.iterations;
  std::unordered_set<uint64_t> on_cycle(result.cycle_vertices.begin(),
                                        result.cycle_vertices.end());
  for (const LocalWaitGraph& lg : result.remaining) {
    for (const WaitEdge& e : lg.edges) {
      rec.edges.push_back(DeadlockRecord::Edge{
          e.waiter, e.holder, lg.node_id, e.dotted,
          on_cycle.count(e.waiter) > 0 && on_cycle.count(e.holder) > 0});
    }
  }
  std::lock_guard<std::mutex> g(mu_);
  rec.seq = ++next_deadlock_seq_;
  deadlock_history_.push_back(std::move(rec));
  while (deadlock_history_.size() > kDeadlockHistoryCapacity) {
    deadlock_history_.pop_front();
  }
}

std::vector<GddDaemon::DeadlockRecord> GddDaemon::DeadlockHistory() const {
  std::lock_guard<std::mutex> g(mu_);
  return std::vector<DeadlockRecord>(deadlock_history_.begin(), deadlock_history_.end());
}

std::string GddDaemon::DumpDot() const {
  DeadlockRecord rec;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (deadlock_history_.empty()) return "";
    rec = deadlock_history_.back();
  }
  std::ostringstream out;
  out << "digraph gdd_deadlock_" << rec.seq << " {\n";
  out << "  label=\"global deadlock #" << rec.seq << " victim=" << rec.victim
      << " iterations=" << rec.iterations << "\";\n";
  out << "  node [shape=ellipse];\n";
  // Declare vertices first: the victim filled red, other cycle members outlined.
  std::vector<uint64_t> vertices;
  std::unordered_set<uint64_t> cycle_vertices;
  for (const auto& e : rec.edges) {
    vertices.push_back(e.waiter);
    vertices.push_back(e.holder);
    if (e.on_cycle) {
      cycle_vertices.insert(e.waiter);
      cycle_vertices.insert(e.holder);
    }
  }
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()), vertices.end());
  for (uint64_t v : vertices) {
    out << "  \"" << v << "\" [label=\"gxid " << v << "\"";
    if (v == rec.victim) {
      out << ", style=filled, fillcolor=red";
    } else if (cycle_vertices.count(v) > 0) {
      out << ", color=red";
    }
    out << "];\n";
  }
  for (const auto& e : rec.edges) {
    out << "  \"" << e.waiter << "\" -> \"" << e.holder << "\" [label=\"node "
        << e.node << "\"";
    if (e.dotted) out << ", style=dotted";
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

GddDaemon::Stats GddDaemon::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

}  // namespace gphtap
