// The Global Deadlock Detection algorithm (Algorithm 1, Section 4.3).
//
// Input: the set of per-node local wait-for graphs with solid/dotted edge labels.
// The algorithm greedily removes edges that might disappear on their own:
//   * all edges pointing to a vertex with zero GLOBAL out-degree (that transaction
//     is not blocked anywhere, so it may finish and release everything), and
//   * dotted edges pointing to a vertex with zero LOCAL out-degree on that node
//     (the holder is not blocked on this node, so it may release its tuple lock
//     without ending the transaction).
// If no removal is possible and edges remain, the remaining graph is checked for
// cycles; transactions on a cycle are globally deadlocked.
#ifndef GPHTAP_GDD_GDD_ALGORITHM_H_
#define GPHTAP_GDD_GDD_ALGORITHM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lock/wait_graph.h"

namespace gphtap {

/// Outcome of one run of the detection algorithm.
struct GddResult {
  bool deadlock = false;
  /// Edges that survived greedy reduction (empty when no deadlock candidates).
  std::vector<LocalWaitGraph> remaining;
  /// All transactions that sit on some cycle of the remaining graph.
  std::vector<uint64_t> cycle_vertices;
  /// Suggested victim: the youngest transaction (largest gxid) on a cycle. 0 if none.
  uint64_t victim = 0;
  /// Greedy-reduction sweeps until fixpoint (the final no-removal sweep counts).
  int iterations = 0;

  std::string ToString() const;
};

/// Runs Algorithm 1 over the collected local graphs. Pure function: no locking,
/// no side effects — the daemon wraps it with collection and validation.
GddResult RunGddAlgorithm(const std::vector<LocalWaitGraph>& locals);

/// Strongly connected components of a directed graph given as edges; returns the
/// set of vertices that belong to a cycle (SCC of size > 1, or a self-loop).
std::vector<uint64_t> VerticesOnCycles(const std::vector<WaitEdge>& edges);

}  // namespace gphtap

#endif  // GPHTAP_GDD_GDD_ALGORITHM_H_
