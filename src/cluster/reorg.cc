// Online reorganization and elastic expansion: transactional CLUSTER rewrites,
// AO row-group compaction for VACUUM, and per-table online rebalancing onto a
// grown segment set (snapshot copy + change-log catchup + brief AccessExclusive
// cutover). Everything here runs under ordinary MVCC inside the calling
// session's transaction, so BEGIN; CLUSTER; ABORT — or a crash mid-rebalance —
// leaves the table intact and the operation retryable.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cluster/session.h"
#include "common/fault_injector.h"
#include "common/clock.h"
#include "storage/ao_group.h"
#include "storage/ao_table.h"
#include "storage/column_store.h"
#include "storage/heap_table.h"

namespace gphtap {

namespace {

// A sealed AO group is compacted once at least this fraction of its rows is
// dead: frequent enough to bound bloat, rare enough that a handful of deletes
// does not trigger a rewrite.
constexpr uint64_t kDeadHeavyPercent = 10;

bool ReorgEligible(const TableDef& def) {
  return !def.is_system_view && !def.partitions.has_value() &&
         def.storage != StorageKind::kExternal;
}

}  // namespace

Status Session::MarkDeletedResolved(Table* table, TupleId tid, LocalXid xid) {
  if (auto* heap = dynamic_cast<HeapTable*>(table)) {
    MarkDeleteResult r = heap->TryMarkDeleted(tid, xid);
    switch (r.outcome) {
      case MarkDeleteOutcome::kOk:
      case MarkDeleteOutcome::kSelfUpdated:
        return Status::OK();
      case MarkDeleteOutcome::kWait:
      case MarkDeleteOutcome::kFollow:
        // Callers hold ExclusiveLock or AccessExclusiveLock on the relation,
        // so every concurrent writer has resolved; a live xmax here means a
        // lock was skipped somewhere.
        return Status::Internal("concurrent writer surfaced during reorg");
    }
    return Status::Internal("unhandled mark-delete outcome");
  }
  if (auto* ao = dynamic_cast<AoRowTable*>(table)) return ao->MarkDeleted(tid, xid);
  if (auto* aoc = dynamic_cast<AoColumnTable*>(table)) return aoc->MarkDeleted(tid, xid);
  return Status::NotSupported("reorg on unsupported storage");
}

// ---------------------------------------------------------------------------
// AO VACUUM: whole-group reclamation + dead-heavy compaction
// ---------------------------------------------------------------------------

Status Session::VacuumAppendOptimizedSegment(Segment* seg, const TableDef& def,
                                             Table* table, int64_t* reclaimed) {
  auto* ao = dynamic_cast<AoRowTable*>(table);
  auto* aoc = dynamic_cast<AoColumnTable*>(table);
  if (ao == nullptr && aoc == nullptr) return Status::OK();

  // A row is reclaimable only when no live snapshot anywhere can still see it:
  // aborted xmin, or committed xmax whose distributed transaction precedes the
  // oldest live snapshot (a truncated dlog mapping means it long precedes it).
  const Gxid oldest_gxid = cluster_->dtm().OldestVisibleGxid();
  const CommitLog& clog = seg->clog();
  const DistributedLog& dlog = seg->dlog();
  AoRowDeadFn dead = [&](LocalXid xmin, LocalXid xmax) {
    if (clog.GetState(xmin) == TxnState::kAborted) return true;
    if (xmax == kInvalidLocalXid || !clog.IsCommitted(xmax)) return false;
    auto gxid = dlog.Lookup(xmax);
    return !gxid.has_value() || *gxid < oldest_gxid;
  };

  // Pass 1: free groups that are dead end to end. Replayed as kFreeGroup, so
  // the group keeps its index slot and tids stay reproducible.
  AoReclaimResult freed = ao != nullptr ? ao->ReclaimDeadGroups(dead)
                                        : aoc->ReclaimDeadGroups(dead);
  *reclaimed += static_cast<int64_t>(freed.rows_freed);

  // Pass 2: compact dead-heavy sealed groups — rewrite their live rows into
  // the open tail under this vacuum's transaction. The drained groups go
  // all-dead once it commits and the next vacuum frees them whole.
  std::vector<AoGroupInfo> infos =
      ao != nullptr ? ao->GroupInfos(dead) : aoc->GroupInfos(dead);
  std::unordered_set<size_t> heavy;
  for (const AoGroupInfo& info : infos) {
    if (!info.sealed || info.freed || info.live == 0 || info.rows == 0) continue;
    if (info.dead * 100 >= info.rows * kDeadHeavyPercent) heavy.insert(info.index);
  }
  if (heavy.empty()) return Status::OK();

  GPHTAP_RETURN_IF_ERROR(EnsureSegmentWrite(seg));
  GPHTAP_ASSIGN_OR_RETURN(LocalXid my_xid, seg->txns().AssignXid(gxid_));
  VisibilityContext vis;
  vis.clog = &seg->clog();
  vis.dlog = &seg->dlog();
  vis.dsnap = &snapshot_;
  LocalSnapshot lsnap = seg->txns().TakeLocalSnapshot();
  vis.lsnap = &lsnap;
  vis.my_xid = my_xid;

  const uint64_t group_size =
      ao != nullptr ? AoRowTable::kGroupSize : AoColumnTable::kRowGroupSize;
  std::vector<std::pair<TupleId, Row>> movers;
  GPHTAP_RETURN_IF_ERROR(table->Scan(vis, [&](TupleId tid, const Row& row) {
    if (heavy.count(static_cast<size_t>(tid / group_size)) != 0) {
      movers.emplace_back(tid, row);
    }
    return true;
  }));
  for (auto& [tid, row] : movers) {
    GPHTAP_RETURN_IF_ERROR(MarkDeletedResolved(table, tid, my_xid));
    GPHTAP_RETURN_IF_ERROR(table->Insert(my_xid, row).status());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CLUSTER <table> [USING <col>]
// ---------------------------------------------------------------------------

Status Session::ClusterSegment(Segment* seg, const TableDef& def, int order_col,
                               int64_t* rewritten) {
  Table* table = seg->GetTable(def.id);
  if (table == nullptr) return Status::NotFound("table missing on segment");
  GPHTAP_RETURN_IF_ERROR(EnsureSegmentWrite(seg));
  GPHTAP_ASSIGN_OR_RETURN(LocalXid my_xid, seg->txns().AssignXid(gxid_));

  VisibilityContext vis;
  vis.clog = &seg->clog();
  vis.dlog = &seg->dlog();
  vis.dsnap = &snapshot_;
  LocalSnapshot lsnap = seg->txns().TakeLocalSnapshot();
  vis.lsnap = &lsnap;
  vis.my_xid = my_xid;

  // Collect first (Halloween protection: the rewrite appends to the same
  // table the scan walks), then delete + re-insert under this transaction.
  std::vector<std::pair<TupleId, Row>> rows;
  GPHTAP_RETURN_IF_ERROR(table->Scan(vis, [&](TupleId tid, const Row& row) {
    rows.emplace_back(tid, row);
    return true;
  }));
  if (order_col >= 0) {
    std::stable_sort(rows.begin(), rows.end(),
                     [order_col](const auto& a, const auto& b) {
                       return a.second[static_cast<size_t>(order_col)].Compare(
                                  b.second[static_cast<size_t>(order_col)]) < 0;
                     });
  }
  for (auto& [tid, row] : rows) {
    GPHTAP_RETURN_IF_ERROR(MarkDeletedResolved(table, tid, my_xid));
    GPHTAP_RETURN_IF_ERROR(table->Insert(my_xid, row).status());
    ++*rewritten;
  }
  return Status::OK();
}

StatusOr<QueryResult> Session::ExecuteCluster(const TableDef& def, int order_col) {
  if (!ReorgEligible(def)) {
    return Status::NotSupported("CLUSTER supports plain heap/AO/AO-column tables");
  }
  return RunStatementErased([&]() -> StatusOr<QueryResult> {
    // ExclusiveLock: writers drain and stay out, readers keep flowing against
    // the pre-rewrite versions until we commit.
    GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(def, LockMode::kExclusive));
    // Lock-then-rescan: writers that committed while we queued for the lock
    // must be visible to the rewrite, or their versions would look live-but-
    // undeletable (kFollow) and abort the CLUSTER spuriously.
    GPHTAP_RETURN_IF_ERROR(TakeStatementSnapshot());
    ProgressRegistry::Handle progress =
        cluster_->progress().Begin(ProgressOp::kCluster, def.name);
    progress.SetPhase("rewrite");
    progress.SetTotal(cluster_->num_segments());
    int64_t rewritten = 0;
    for (int i = 0; i < cluster_->num_segments(); ++i) {
      progress.SetNode(i);
      Segment* seg = cluster_->segment(i);
      GPHTAP_ASSIGN_OR_RETURN(SegmentPin pin, seg->Pin());
      GPHTAP_RETURN_IF_ERROR(LockRelationSegment(seg, def, LockMode::kExclusive));
      GPHTAP_RETURN_IF_ERROR(ClusterSegment(seg, def, order_col, &rewritten));
      progress.Advance();
    }
    QueryResult r;
    r.affected = rewritten;
    return r;
  });
}

// ---------------------------------------------------------------------------
// REBALANCE TABLE — online expansion
// ---------------------------------------------------------------------------

Status Session::RebalanceHashTable(const TableDef& def, int new_span,
                                   RebalanceReport* report,
                                   ProgressRegistry::Handle* progress) {
  const int64_t copy_start = MonotonicMicros();
  progress->SetPhase("copy");
  const std::vector<int>& key_cols = def.distribution.key_cols;
  // Scan every serving segment, not just the recorded span: a previously
  // aborted attempt can leave rows at mixed homes, and this pass must herd
  // them all to hash % new_span wherever they sit.
  const int src_span = cluster_->num_segments();

  GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(def, LockMode::kRowExclusive));
  // Fresh snapshot under the lock: anything committed while we queued is
  // copied now instead of left for the cutover catchup.
  GPHTAP_RETURN_IF_ERROR(TakeStatementSnapshot());
  std::vector<SegmentPin> pins;
  for (int i = 0; i < src_span; ++i) {
    GPHTAP_ASSIGN_OR_RETURN(SegmentPin pin, cluster_->segment(i)->Pin());
    pins.push_back(std::move(pin));
  }

  // One local xid per segment we write (targets now, sources at cutover).
  std::vector<LocalXid> xids(static_cast<size_t>(src_span), kInvalidLocalXid);
  std::vector<bool> write_locked(static_cast<size_t>(src_span), false);
  auto writer_xid = [&](int i) -> StatusOr<LocalXid> {
    Segment* seg = cluster_->segment(i);
    if (!write_locked[static_cast<size_t>(i)]) {
      GPHTAP_RETURN_IF_ERROR(
          LockRelationSegment(seg, def, LockMode::kRowExclusive));
      GPHTAP_RETURN_IF_ERROR(EnsureSegmentWrite(seg));
      write_locked[static_cast<size_t>(i)] = true;
    }
    if (xids[static_cast<size_t>(i)] == kInvalidLocalXid) {
      GPHTAP_ASSIGN_OR_RETURN(LocalXid xid, seg->txns().AssignXid(gxid_));
      xids[static_cast<size_t>(i)] = xid;
    }
    return xids[static_cast<size_t>(i)];
  };

  // ---- Copy phase: writers keep flowing (sources under AccessShare). ----
  // Staged copies carry this transaction's xid, so they are invisible to
  // everyone until the cutover commits.
  struct Staged {
    int dst_seg;
    TupleId dst_tid;
  };
  // Per source segment: src_tid -> staged copy location.
  std::vector<std::unordered_map<TupleId, Staged>> staged(
      static_cast<size_t>(src_span));
  std::vector<size_t> marks(static_cast<size_t>(src_span), 0);

  auto stage_copy = [&](int src, TupleId src_tid, const Row& row,
                        int dst) -> Status {
    GPHTAP_ASSIGN_OR_RETURN(LocalXid dst_xid, writer_xid(dst));
    Table* dst_table = cluster_->segment(dst)->GetTable(def.id);
    if (dst_table == nullptr) return Status::NotFound("table missing on segment");
    GPHTAP_ASSIGN_OR_RETURN(TupleId dst_tid, dst_table->Insert(dst_xid, row));
    staged[static_cast<size_t>(src)][src_tid] = Staged{dst, dst_tid};
    ++report->rows_moved;
    progress->Advance();  // units = rows staged onto their new homes
    return Status::OK();
  };

  for (int s = 0; s < src_span; ++s) {
    progress->SetNode(s);
    Segment* src = cluster_->segment(s);
    if (cluster_->faults().Evaluate(fault_points::kCrashDuringRebalanceCopy, s)) {
      (void)src->Crash();
      return Status::Unavailable("segment " + std::to_string(s) +
                                 " crashed during rebalance copy");
    }
    GPHTAP_RETURN_IF_ERROR(LockRelationSegment(src, def, LockMode::kAccessShare));
    marks[static_cast<size_t>(s)] = src->change_log() != nullptr
                                        ? src->change_log()->size()
                                        : 0;
    Table* table = src->GetTable(def.id);
    if (table == nullptr) return Status::NotFound("table missing on segment");

    VisibilityContext vis;
    vis.clog = &src->clog();
    vis.dlog = &src->dlog();
    vis.dsnap = &snapshot_;
    LocalSnapshot lsnap = src->txns().TakeLocalSnapshot();
    vis.lsnap = &lsnap;

    // Collect before staging: staging inserts into sibling segments while this
    // scan holds the source latch, so keep the two steps apart.
    std::vector<std::pair<TupleId, Row>> movers;
    GPHTAP_RETURN_IF_ERROR(table->Scan(vis, [&](TupleId tid, const Row& row) {
      int dst = Cluster::SegmentForHash(HashRowKey(row, key_cols), new_span);
      if (dst != s) movers.emplace_back(tid, row);
      return true;
    }));
    for (auto& [tid, row] : movers) {
      int dst = Cluster::SegmentForHash(HashRowKey(row, key_cols), new_span);
      GPHTAP_RETURN_IF_ERROR(stage_copy(s, tid, row, dst));
    }
  }
  report->copy_us = MonotonicMicros() - copy_start;

  // ---- Cutover: brief AccessExclusive everywhere. ----
  // Acquisition drains in-flight writers (they hold RowExclusive until their
  // commit), so from here every xmin/xmax on this table is resolved and the
  // local clog alone decides visibility.
  const int64_t cutover_start = MonotonicMicros();
  progress->SetPhase("cutover");
  GPHTAP_RETURN_IF_ERROR(
      LockRelationCoordinator(def, LockMode::kAccessExclusive));
  for (int s = 0; s < src_span; ++s) {
    GPHTAP_RETURN_IF_ERROR(LockRelationSegment(cluster_->segment(s), def,
                                               LockMode::kAccessExclusive));
  }
  // The catchup delta: what writers appended to each change log mid-copy.
  for (int s = 0; s < src_span; ++s) {
    ChangeLog* log = cluster_->segment(s)->change_log();
    if (log == nullptr) continue;
    for (const ChangeRecord& rec : log->SnapshotFrom(marks[static_cast<size_t>(s)])) {
      if (rec.table != def.id) continue;
      if (rec.kind == ChangeKind::kInsert || rec.kind == ChangeKind::kSetXmax) {
        ++report->catchup_records;
      }
    }
  }
  // Catchup + delete originals, one resolved-visibility rescan per source:
  //   - a visible moving row already staged: delete the original;
  //   - a visible moving row not staged (committed mid-copy): stage it now,
  //     then delete the original;
  //   - a staged original no longer visible (deleted mid-copy): kill the
  //     staged copy by self-deleting it.
  for (int s = 0; s < src_span; ++s) {
    Segment* src = cluster_->segment(s);
    Table* table = src->GetTable(def.id);
    if (table == nullptr) return Status::NotFound("table missing on segment");
    GPHTAP_ASSIGN_OR_RETURN(LocalXid src_xid, writer_xid(s));

    VisibilityContext vis;
    vis.clog = &src->clog();
    vis.dlog = &src->dlog();
    vis.dsnap = nullptr;  // utility mode: clog + fresh local snapshot
    LocalSnapshot lsnap = src->txns().TakeLocalSnapshot();
    vis.lsnap = &lsnap;
    vis.my_xid = src_xid;

    std::vector<std::pair<TupleId, Row>> movers;
    GPHTAP_RETURN_IF_ERROR(table->Scan(vis, [&](TupleId tid, const Row& row) {
      int dst = Cluster::SegmentForHash(HashRowKey(row, key_cols), new_span);
      if (dst != s) movers.emplace_back(tid, row);
      return true;
    }));
    std::unordered_set<TupleId> seen;
    for (auto& [tid, row] : movers) {
      seen.insert(tid);
      if (staged[static_cast<size_t>(s)].count(tid) == 0) {
        int dst = Cluster::SegmentForHash(HashRowKey(row, key_cols), new_span);
        GPHTAP_RETURN_IF_ERROR(stage_copy(s, tid, row, dst));
      }
      GPHTAP_RETURN_IF_ERROR(MarkDeletedResolved(table, tid, src_xid));
    }
    for (const auto& [src_tid, st] : staged[static_cast<size_t>(s)]) {
      if (seen.count(src_tid) != 0) continue;
      // The original vanished after the copy snapshot; its staged copy must
      // never become visible. xmin == xmax == this transaction: dead on
      // arrival whichever way the transaction ends.
      GPHTAP_ASSIGN_OR_RETURN(LocalXid dst_xid, writer_xid(st.dst_seg));
      Table* dst_table = cluster_->segment(st.dst_seg)->GetTable(def.id);
      if (dst_table == nullptr) return Status::NotFound("table missing on segment");
      GPHTAP_RETURN_IF_ERROR(MarkDeletedResolved(dst_table, st.dst_tid, dst_xid));
    }
  }
  // Widen the routing span while writers are still fenced out. If the commit
  // below fails, the table is mixed-span but stays correct: the rebalancing
  // flag keeps reads full-fan-out, inserts route to valid segments either
  // way, and a retry herds everything to the new homes.
  GPHTAP_RETURN_IF_ERROR(cluster_->SetTableDistSegments(def.name, new_span));
  report->cutover_us = MonotonicMicros() - cutover_start;
  return Status::OK();
}

Status Session::RebalanceReplicatedTable(const TableDef& def, int new_span,
                                         RebalanceReport* report,
                                         ProgressRegistry::Handle* progress) {
  const int64_t start = MonotonicMicros();
  progress->SetPhase("copy");
  // Replicated sync is not online: the table is fenced for the duration of
  // the copy (it is expected to be small — that is why it is replicated).
  GPHTAP_RETURN_IF_ERROR(
      LockRelationCoordinator(def, LockMode::kAccessExclusive));
  std::vector<SegmentPin> pins;
  for (int i = 0; i < new_span; ++i) {
    GPHTAP_ASSIGN_OR_RETURN(SegmentPin pin, cluster_->segment(i)->Pin());
    pins.push_back(std::move(pin));
    GPHTAP_RETURN_IF_ERROR(LockRelationSegment(cluster_->segment(i), def,
                                               LockMode::kAccessExclusive));
  }
  const int old_span = std::max(1, std::min(def.dist_segments <= 0
                                                ? new_span
                                                : def.dist_segments,
                                            new_span));

  // Segment 0 always carries a complete copy; snapshot it with resolved
  // visibility (writers are drained by the AccessExclusive acquisition).
  Segment* src = cluster_->segment(0);
  Table* src_table = src->GetTable(def.id);
  if (src_table == nullptr) return Status::NotFound("table missing on segment");
  VisibilityContext src_vis;
  src_vis.clog = &src->clog();
  src_vis.dlog = &src->dlog();
  LocalSnapshot src_lsnap = src->txns().TakeLocalSnapshot();
  src_vis.lsnap = &src_lsnap;
  std::vector<Row> content;
  GPHTAP_RETURN_IF_ERROR(src_table->Scan(src_vis, [&](TupleId, const Row& row) {
    content.push_back(row);
    return true;
  }));

  // Resync each new segment from scratch: delete whatever is visible there
  // (leftovers from writer fan-out while the rebalancing flag was up, or from
  // an earlier completed copy) and re-stage the full content. Deletes and
  // inserts commit atomically with this transaction, so a retry after any
  // failure starts from the same clean rule.
  for (int t = old_span; t < new_span; ++t) {
    progress->SetNode(t);
    Segment* dst = cluster_->segment(t);
    Table* dst_table = dst->GetTable(def.id);
    if (dst_table == nullptr) return Status::NotFound("table missing on segment");
    GPHTAP_RETURN_IF_ERROR(EnsureSegmentWrite(dst));
    GPHTAP_ASSIGN_OR_RETURN(LocalXid dst_xid, dst->txns().AssignXid(gxid_));

    VisibilityContext vis;
    vis.clog = &dst->clog();
    vis.dlog = &dst->dlog();
    LocalSnapshot lsnap = dst->txns().TakeLocalSnapshot();
    vis.lsnap = &lsnap;
    vis.my_xid = dst_xid;
    std::vector<TupleId> existing;
    GPHTAP_RETURN_IF_ERROR(dst_table->Scan(vis, [&](TupleId tid, const Row&) {
      existing.push_back(tid);
      return true;
    }));
    for (TupleId tid : existing) {
      GPHTAP_RETURN_IF_ERROR(MarkDeletedResolved(dst_table, tid, dst_xid));
    }
    for (const Row& row : content) {
      GPHTAP_RETURN_IF_ERROR(dst_table->Insert(dst_xid, row).status());
      ++report->rows_moved;
      progress->Advance();
    }
  }
  report->copy_us = MonotonicMicros() - start;
  report->cutover_us = report->copy_us;
  return Status::OK();
}

StatusOr<RebalanceReport> Session::RebalanceTable(const std::string& name) {
  if (in_txn()) {
    return Status::InvalidArgument(
        "REBALANCE TABLE cannot run inside a transaction block");
  }
  GPHTAP_ASSIGN_OR_RETURN(TableDef def, cluster_->LookupTable(name));
  if (!ReorgEligible(def)) {
    return Status::NotSupported("REBALANCE supports plain heap/AO/AO-column tables");
  }
  const int new_span = cluster_->num_segments();
  Cluster::TableDistInfo dist = cluster_->TableDist(def.id);
  def.dist_segments = dist.dist_segments;  // fresh span, not the cached def's

  RebalanceReport report;
  if (dist.dist_segments == new_span && !dist.rebalancing) {
    report.cutover_complete = true;
    report.horizon_cleared = true;
    return report;  // already spans every serving segment
  }

  // Raise the flag before any row moves: direct dispatch goes off cluster-wide
  // and replicated writes fan to every serving segment. The flag only drops
  // after a successful cutover once the snapshot horizon has passed it, so an
  // abort or crash anywhere below leaves reads correct and the command
  // retryable.
  GPHTAP_RETURN_IF_ERROR(cluster_->SetTableRebalancing(def.name, true));

  Gxid rebalance_gxid = kInvalidGxid;
  const bool replicated = def.distribution.kind == DistributionKind::kReplicated;
  ProgressRegistry::Handle progress =
      cluster_->progress().Begin(ProgressOp::kRebalance, def.name);
  auto body = RunStatementErased([&]() -> StatusOr<QueryResult> {
    rebalance_gxid = gxid_;
    switch (def.distribution.kind) {
      case DistributionKind::kHash:
        GPHTAP_RETURN_IF_ERROR(RebalanceHashTable(def, new_span, &report, &progress));
        break;
      case DistributionKind::kReplicated:
        GPHTAP_RETURN_IF_ERROR(
            RebalanceReplicatedTable(def, new_span, &report, &progress));
        break;
      case DistributionKind::kRandom:
        // Round-robin placement has nothing to restore; widening the modulus
        // under a writer fence is the whole job.
        progress.SetPhase("cutover");
        GPHTAP_RETURN_IF_ERROR(
            LockRelationCoordinator(def, LockMode::kAccessExclusive));
        GPHTAP_RETURN_IF_ERROR(cluster_->SetTableDistSegments(def.name, new_span));
        break;
    }
    return QueryResult{};
  });
  if (!body.ok()) return body.status();
  progress.SetPhase("horizon-wait");

  // Clear the flag only when no live snapshot predates the cutover: an older
  // snapshot must keep full-fan-out reads (it still sees rows at their old
  // homes). Bounded wait — leaving the flag up is always correct, just slower.
  const int64_t deadline = MonotonicMicros() + 10'000'000;
  bool horizon_passed = true;
  while (cluster_->dtm().OldestVisibleGxid() <= rebalance_gxid) {
    if (MonotonicMicros() >= deadline) {
      horizon_passed = false;
      break;
    }
    PreciseSleepUs(200);
  }
  if (horizon_passed) {
    // Replicated tables widen their recorded span only now: until every live
    // snapshot postdates the copy, readers must stay bounded to the old span
    // (the new copies are invisible to older snapshots).
    if (replicated) {
      GPHTAP_RETURN_IF_ERROR(cluster_->SetTableDistSegments(def.name, new_span));
    }
    GPHTAP_RETURN_IF_ERROR(cluster_->SetTableRebalancing(def.name, false));
    report.horizon_cleared = true;
  }
  report.cutover_complete = true;
  return report;
}

StatusOr<QueryResult> Session::ExecuteRebalance(const std::string& name) {
  GPHTAP_ASSIGN_OR_RETURN(RebalanceReport report, RebalanceTable(name));
  QueryResult r;
  r.columns = {"rows_moved", "catchup_records", "copy_us", "cutover_us",
               "cutover_complete", "horizon_cleared"};
  r.rows.push_back(Row{Datum(static_cast<int64_t>(report.rows_moved)),
                       Datum(static_cast<int64_t>(report.catchup_records)),
                       Datum(report.copy_us), Datum(report.cutover_us),
                       Datum(static_cast<int64_t>(report.cutover_complete ? 1 : 0)),
                       Datum(static_cast<int64_t>(report.horizon_cleared ? 1 : 0))});
  r.affected = static_cast<int64_t>(report.rows_moved);
  return r;
}

}  // namespace gphtap
