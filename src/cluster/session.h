// A client session: transaction lifecycle (distributed snapshots, 1PC/2PC),
// DML execution with PostgreSQL-faithful tuple locking, SELECT planning and
// dispatch, and resource-group admission.
#ifndef GPHTAP_CLUSTER_SESSION_H_
#define GPHTAP_CLUSTER_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/wait_event.h"
#include "plan/planner.h"
#include "plan/select_query.h"
#include "stats/statement_resources.h"

namespace gphtap {

struct PreparedStatement;  // sql/prepared_statement.h (opaque to the session)

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected = 0;

  std::string ToString() const;
};

/// Outcome of one online table rebalance (REBALANCE TABLE <name>).
struct RebalanceReport {
  uint64_t rows_moved = 0;       // copies staged onto new home segments
  uint64_t catchup_records = 0;  // change-log records that landed mid-copy
  int64_t copy_us = 0;           // online copy phase (writers keep flowing)
  int64_t cutover_us = 0;        // AccessExclusive cutover window
  bool cutover_complete = false; // distribution span flipped to the new width
  bool horizon_cleared = false;  // rebalancing flag dropped (DD re-enabled)
};

class Session {
 public:
  Session(Cluster* cluster, std::string role);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes one SQL statement (see sql/ for the dialect).
  StatusOr<QueryResult> Execute(const std::string& sql);

  // ---- Programmatic statement API (what the SQL layer lowers into) ----
  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_txn() const { return gxid_ != kInvalidGxid; }
  bool txn_failed() const { return txn_failed_; }
  Gxid current_gxid() const { return gxid_; }

  /// Plans and executes a bound SELECT. When `cache_sql` is set, the freshly
  /// planned tree is published to the cluster plan cache under that text.
  StatusOr<QueryResult> ExecuteSelect(const SelectQuery& query,
                                      const std::string* cache_sql = nullptr);
  /// Executes an already-planned SELECT (plan-cache hit or EXECUTE of a
  /// prepared statement): skips parse/analyze/plan, re-acquires the
  /// parse-analyze locks, and runs the shared immutable plan tree.
  StatusOr<QueryResult> ExecuteCachedPlan(std::shared_ptr<const CachedPlan> plan);
  /// Plans the query and returns the plan text (EXPLAIN), without executing.
  StatusOr<QueryResult> ExplainSelect(const SelectQuery& query);
  /// EXPLAIN ANALYZE: executes the query (discarding its rows) and returns the
  /// plan annotated with per-operator actual rows / time.
  StatusOr<QueryResult> ExplainAnalyzeSelect(const SelectQuery& query);
  StatusOr<QueryResult> ExecuteInsert(const TableDef& def, const std::vector<Row>& rows);
  StatusOr<QueryResult> ExecuteUpdate(const TableDef& def,
                                      const std::vector<std::pair<int, ExprPtr>>& sets,
                                      const ExprPtr& where);
  StatusOr<QueryResult> ExecuteDelete(const TableDef& def, const ExprPtr& where);
  Status LockTable(const TableDef& def, LockMode mode);
  StatusOr<QueryResult> ExecuteVacuum(const TableDef& def);
  /// CLUSTER <table> [USING <col>]: transactionally rewrites every visible row
  /// into fresh storage (ordered by `order_col` when >= 0, storage order
  /// otherwise) and deletes the originals under MVCC, all in the surrounding
  /// transaction — BEGIN; CLUSTER; ABORT leaves the table untouched and the
  /// statement retryable. On AO/AO-column tables the rewrite drains dead-heavy
  /// row groups into fresh sealed groups; the emptied groups are reclaimed by
  /// the next VACUUM. Takes ExclusiveLock: readers keep flowing.
  StatusOr<QueryResult> ExecuteCluster(const TableDef& def, int order_col);
  /// Online rebalance: migrates a table's rows onto [0, num_segments()) —
  /// snapshot copy while writers keep flowing, change-log catchup, then a
  /// brief AccessExclusive cutover. Idempotent and retryable after abort or
  /// crash (the rebalancing flag keeps reads full-fan-out until a successful
  /// run completes and the snapshot horizon passes the cutover).
  StatusOr<RebalanceReport> RebalanceTable(const std::string& name);
  /// SQL surface of RebalanceTable (REBALANCE TABLE <name>).
  StatusOr<QueryResult> ExecuteRebalance(const std::string& name);
  /// TRUNCATE: discards all contents under AccessExclusiveLock. Immediate (not
  /// MVCC / not rollbackable), as a bulk maintenance operation.
  StatusOr<QueryResult> ExecuteTruncate(const TableDef& def);

  /// Changes the active role (SET ROLE), re-resolving the resource group.
  void SetRole(const std::string& role);
  const std::string& role() const { return role_; }

  // ---- Query-lifecycle timeouts (SET statement_timeout / lock_timeout /
  // admission_timeout). 0 disables; defaults come from ClusterOptions. The
  // statement timeout becomes an absolute deadline armed at statement start
  // and enforced at every blocking point (executor ticks, lock waits, motion
  // send/recv, resource-group admission, WAL fsync).
  void set_statement_timeout_us(int64_t us) { statement_timeout_us_ = us; }
  int64_t statement_timeout_us() const { return statement_timeout_us_; }
  void set_lock_timeout_us(int64_t us) { lock_timeout_us_ = us; }
  int64_t lock_timeout_us() const { return lock_timeout_us_; }
  void set_admission_timeout_us(int64_t us) { admission_timeout_us_ = us; }
  int64_t admission_timeout_us() const { return admission_timeout_us_; }

  // SET vectorized_execution = on/off/default: per-session override of the
  // cluster-wide vectorization switch (and with it the delta-merged scan
  // path, which requires vectorize). nullopt = follow ClusterOptions.
  void set_vectorize_override(std::optional<bool> v) { vectorize_override_ = v; }
  std::optional<bool> vectorize_override() const { return vectorize_override_; }
  // Plans shaped by a session override must not land in (or be served from)
  // the shared plan cache keyed by SQL text alone.
  bool PlanCacheEligible() const { return !vectorize_override_.has_value(); }

  Cluster* cluster() { return cluster_; }

  /// This session's gp_stat_activity entry. The front door publishes queued /
  /// dispatch state into it while the session has no thread of its own.
  const std::shared_ptr<SessionInfo>& session_info() const { return info_; }

  // ---- Prepared statements (PREPARE / EXECUTE / DEALLOCATE) ----
  // Session-local named statements, managed by the SQL driver; the session
  // only owns the storage so their lifetime matches the connection.
  std::shared_ptr<PreparedStatement> GetPrepared(const std::string& name) const;
  void PutPrepared(const std::string& name, std::shared_ptr<PreparedStatement> ps);
  bool RemovePrepared(const std::string& name);
  void ClearPrepared();
  /// Plans a bound SELECT generically (parameters left as placeholders) and
  /// stores the plan into `ps` for EXECUTE to clone per invocation.
  Status PlanForPrepare(const SelectQuery& query, PreparedStatement* ps);

  // ---- Tracing ----
  /// Traces every subsequent query in this session (also on cluster-wide via
  /// ClusterOptions::trace_queries).
  void set_trace_enabled(bool on) { trace_enabled_ = on; }
  /// The most recent query's trace; null when tracing was off.
  std::shared_ptr<Trace> last_trace() const { return last_trace_; }

  // ---- Statistics (per session) ----
  struct Stats {
    uint64_t txns_committed = 0;
    uint64_t txns_aborted = 0;
    uint64_t one_phase_commits = 0;
    uint64_t two_phase_commits = 0;
    uint64_t piggybacked_commits = 0;  // Figure 11(b) fast path taken
    uint64_t auto_prepares = 0;        // Figure 11(a) fast path taken
    // Commit/commit-prepared resends. Atomic: the 2PC commit fanout retries
    // concurrently from one thread per participant.
    std::atomic<uint64_t> commit_retries{0};
    uint64_t statements = 0;
    uint64_t statement_retries = 0;    // transparent read-only re-dispatches
    uint64_t statement_timeouts = 0;   // statements that failed with kTimedOut
  };
  const Stats& stats() const { return stats_; }

  // ---- Cumulative statement statistics hooks (gp_stat_statements) ----
  // Called by the SQL driver during dispatch; Execute() folds them into the
  // cluster's StatementStatsRegistry at statement end.
  /// The statement was served from the plan cache (or a prepared statement's
  /// generic plan) instead of being planned fresh.
  void NoteStmtPlanCacheHit() { stmt_plan_cache_hit_ = true; }
  /// Overrides the fingerprint the statement is accumulated under (EXECUTE of
  /// a prepared statement attributes to the prepared text).
  void SetStmtFingerprint(const std::string& fp) { stmt_fingerprint_override_ = fp; }

 private:
  // Wraps a statement in an implicit transaction when none is open.
  template <typename Fn>
  StatusOr<QueryResult> RunStatement(Fn&& fn);

  // Type-erased RunStatement for callers outside session.cc (the template
  // body lives there); reorg.cc drives CLUSTER / REBALANCE through this.
  StatusOr<QueryResult> RunStatementErased(
      const std::function<StatusOr<QueryResult>()>& fn);

  // Statement retry policy (read-only dispatch): reruns `fn` — a full
  // RunStatement invocation, so each attempt gets a fresh transaction,
  // snapshot and plan — when it fails with a retryable kUnavailable (segment
  // crashed, failover in flight) under capped exponential backoff. Only
  // implicit (single-statement) attempts retry; explicit-block failures and
  // writes always surface. Never retries past the statement deadline.
  template <typename Fn>
  StatusOr<QueryResult> RunReadOnlyStatement(Fn&& fn);

  // Planner inputs resolved from live cluster state (shared by ExecuteSelect /
  // ExplainSelect / ExplainAnalyzeSelect).
  PlannerOptions MakePlannerOptions();

  // The dispatch/trace/execute tail shared by the fresh-plan and cached-plan
  // select paths. Runs inside RunStatement.
  StatusOr<QueryResult> RunPlannedSelect(const CachedPlan& plan);

  // Arms/disarms the per-statement absolute deadline + lock timeout on the
  // transaction's LockOwner and publishes it to gp_stat_activity.
  void ArmStatementDeadline();
  void DisarmStatementDeadline();

  // The ambient wait-event context this session's statements install
  // (thread-local, via WaitContextGuard) so blocking points below attribute
  // to this session / resource group.
  WaitContext MakeWaitContext();

  Status EnsureTxn();
  Status TakeStatementSnapshot();
  // Declares `seg` a write participant: transaction lock + local xid.
  Status EnsureSegmentWrite(Segment* seg);
  // Relation lock on the coordinator at parse-analyze time (Section 4.2).
  Status LockRelationCoordinator(const TableDef& def, LockMode mode);
  Status LockRelationSegment(Segment* seg, const TableDef& def, LockMode mode);

  // Write-dependency barrier: blocks until `xid`'s distributed transaction
  // (if any) has left the coordinator's in-progress set. Called before
  // building an update on a version whose replacer is committed in the local
  // clog but whose phase two is still in flight elsewhere — committing on top
  // of it first would let a snapshot see this transaction finished while the
  // dependency still looks running (the pre-image and post-image both
  // visible). Honors cancellation and the statement deadline.
  Status WaitForDistributedCommitOf(Segment* seg, LocalXid xid);

  // The per-segment UPDATE/DELETE worker: finds visible matching tuples and
  // stamps them, waiting on tuple/transaction locks as PostgreSQL does.
  Status DmlWorker(Segment* seg, const TableDef& def,
                   const std::vector<std::pair<int, ExprPtr>>* sets, const ExprPtr& where,
                   int64_t* affected);
  Status DmlWorkerOnHeap(Segment* seg, const TableDef& def, class HeapTable* heap,
                         const std::vector<std::pair<int, ExprPtr>>* sets,
                         const ExprPtr& where, int64_t* affected);
  // AO tables: visibility-map deletes under relation ExclusiveLock (writers
  // serialize, so no tuple-lock dance is needed).
  Status DmlWorkerOnAppendOptimized(Segment* seg, const TableDef& def, Table* table,
                                    const std::vector<std::pair<int, ExprPtr>>* sets,
                                    const ExprPtr& where, int64_t* affected);

  // ---- Online reorg / expansion internals (cluster/reorg.cc) ----
  // AO/AO-column VACUUM: frees all-dead sealed row groups, then rewrites the
  // live rows out of dead-heavy groups into fresh groups under the vacuum's
  // own transaction.
  Status VacuumAppendOptimizedSegment(Segment* seg, const TableDef& def, Table* table,
                                      int64_t* reclaimed);
  // Per-segment CLUSTER rewrite: collect visible rows, optionally sort, then
  // delete + re-insert under this transaction's xid.
  Status ClusterSegment(Segment* seg, const TableDef& def, int order_col,
                        int64_t* rewritten);
  // Rebalance bodies, one distributed transaction each. Run inside
  // RunStatement by RebalanceTable, which owns the gp_stat_progress handle the
  // bodies advance (per staged row in the copy phase).
  Status RebalanceHashTable(const TableDef& def, int new_span, RebalanceReport* report,
                            ProgressRegistry::Handle* progress);
  Status RebalanceReplicatedTable(const TableDef& def, int new_span,
                                  RebalanceReport* report,
                                  ProgressRegistry::Handle* progress);
  // Deletes `tid` with `xid` on any storage kind; callers hold locks strong
  // enough that the tuple cannot be concurrently write-locked.
  Status MarkDeletedResolved(Table* table, TupleId tid, LocalXid xid);

  // Commit protocols (Section 5.2, Figure 10).
  Status CommitProtocol();
  // Delivers COMMIT (one_phase) or COMMIT PREPARED to one segment, retrying
  // retryable failures (segment down, message dropped) with capped exponential
  // backoff until the configured deadline. Evaluates the commit-side crash
  // fault points. `piggyback_first`: the first attempt rides the statement
  // dispatch (Figure 11(b)) and skips the wire round trip.
  Status CommitSegmentWithRetry(int seg_index, bool one_phase, bool piggyback_first);
  void AbortProtocol();
  void ReleaseAllLocks();
  /// ReleaseAllLocks minus `keep_segments` — the 2PC participants whose
  /// prepared state (and therefore pre-image locks) outlives the session call,
  /// owned by the dtx recovery daemon from then on.
  void ReleaseLocksExcept(const std::vector<int>& keep_segments);
  void ClearTxnState();

  // Resolves the target segments of a DML statement.
  std::vector<int> TargetSegmentsForWrite(const TableDef& def, const ExprPtr& where);
  int RouteInsert(const TableDef& def, const Row& row,
                  const Cluster::TableDistInfo& dist);

  Cluster* const cluster_;
  std::string role_;
  std::shared_ptr<ResourceGroup> group_;  // never null (default group)

  // Per-session timeout GUCs (microseconds; 0 = disabled).
  int64_t statement_timeout_us_ = 0;
  int64_t lock_timeout_us_ = 0;
  int64_t admission_timeout_us_ = 0;

  // Per-session engine override; nullopt follows the cluster option.
  std::optional<bool> vectorize_override_;

  // Transaction state.
  Gxid gxid_ = kInvalidGxid;
  std::shared_ptr<LockOwner> owner_;
  DistributedSnapshot snapshot_;
  bool snapshot_pinned_ = false;
  std::set<int> write_segments_;
  std::mutex write_reg_mu_;  // guards write_segments_ during parallel DML dispatch
  bool explicit_txn_ = false;
  bool txn_failed_ = false;
  // After an error inside BEGIN...COMMIT the transaction is rolled back
  // immediately (locks released, like PostgreSQL's AbortTransaction), but the
  // session stays in a failed block until COMMIT/ROLLBACK.
  bool failed_block_ = false;
  bool admitted_ = false;
  // True while committing an implicit (single-statement) transaction: the
  // Figure 11 piggyback optimizations only apply there.
  bool implicit_commit_ = false;
  uint64_t insert_round_robin_ = 0;

  Stats stats_;

  // Cluster-wide txn.* counters mirroring Stats (resolved once; never null).
  struct TxnMetrics {
    Counter* committed = nullptr;
    Counter* aborted = nullptr;
    Counter* one_phase = nullptr;
    Counter* two_phase = nullptr;
    Counter* piggybacked = nullptr;
    Counter* auto_prepares = nullptr;
    Counter* retries = nullptr;
    Counter* statements = nullptr;
    Counter* stmt_retries = nullptr;   // resilience.statement_retries
    Counter* stmt_timeouts = nullptr;  // resilience.statement_timeouts
  };
  TxnMetrics m_;

  bool trace_enabled_ = false;
  std::shared_ptr<Trace> last_trace_;

  mutable std::mutex prepared_mu_;
  std::unordered_map<std::string, std::shared_ptr<PreparedStatement>> prepared_;

  // Published live state (gp_stat_activity) — registered at connect,
  // unregistered at disconnect. Never null after construction.
  std::shared_ptr<SessionInfo> info_;
  // Per-statement wait accumulation; Execute() resets it per statement and
  // hands the top entries to the slow-query log.
  QueryWaitProfile wait_profile_;
  // Per-statement gang resource accumulator, carried on the wait context so
  // executor slices / buffer pool / motion attribute to it ambiently. Reset by
  // Execute() at statement start, read at statement end.
  StatementResources stmt_resources_;
  bool stmt_plan_cache_hit_ = false;
  std::string stmt_fingerprint_override_;
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_SESSION_H_
