#include "cluster/mirror.h"

#include <chrono>

#include "common/clock.h"
#include "storage/replay.h"

namespace gphtap {

Status MirrorSegment::CreateTable(const TableDef& def) {
  std::unique_lock<std::shared_mutex> g(tables_mu_);
  if (tables_.count(def.id)) return Status::AlreadyExists("table id on mirror");
  // Mirrors have no buffer-pool cost model of their own (replay is sequential).
  tables_[def.id] = gphtap::CreateTable(def, &clog_, nullptr);
  return Status::OK();
}

Status MirrorSegment::DropTable(TableId id) {
  std::unique_lock<std::shared_mutex> g(tables_mu_);
  tables_.erase(id);
  return Status::OK();
}

Table* MirrorSegment::GetTable(TableId id) {
  std::shared_lock<std::shared_mutex> g(tables_mu_);
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

void MirrorSegment::Start(ChangeLog* source) {
  if (running_.exchange(true)) return;
  source_ = source;
  replayer_ = std::thread([this] { ReplayLoop(); });
}

void MirrorSegment::Stop() {
  if (!running_.exchange(false)) return;
  if (source_ != nullptr) source_->Close();
  if (replayer_.joinable()) replayer_.join();
}

void MirrorSegment::ReplayLoop() {
  size_t next = 0;
  while (running_.load(std::memory_order_relaxed)) {
    auto record = source_->Read(next);
    if (!record.has_value()) break;  // stream closed
    // An armed "mirror.replay_stall" (scoped by primary index) freezes replay
    // with the record in hand, so applied lag is observable until disarmed.
    while (running_.load(std::memory_order_relaxed) && faults_ != nullptr &&
           faults_->IsArmed(fault_points::kMirrorReplayStall, primary_index_)) {
      PreciseSleepUs(100);
    }
    if (!running_.load(std::memory_order_relaxed)) break;
    Status s = Apply(*record);
    if (!s.ok()) {
      std::lock_guard<std::mutex> g(err_mu_);
      if (error_.ok()) error_ = s;
    }
    ++next;
    applied_.store(next, std::memory_order_release);
  }
}

Status MirrorSegment::Apply(const ChangeRecord& record) {
  switch (record.kind) {
    case ChangeKind::kTxnBegin:
      clog_.Register(record.xid);
      return Status::OK();
    case ChangeKind::kTxnPrepare:
      clog_.SetState(record.xid, TxnState::kPrepared);
      return Status::OK();
    case ChangeKind::kTxnCommit:
      clog_.SetState(record.xid, TxnState::kCommitted);
      return Status::OK();
    case ChangeKind::kTxnAbort:
      clog_.SetState(record.xid, TxnState::kAborted);
      return Status::OK();
    default:
      break;
  }

  Table* table = GetTable(record.table);
  if (table == nullptr) {
    return Status::NotFound("mirror replay: table " + std::to_string(record.table));
  }
  return ApplyDataChange(table, record);
}

Status MirrorSegment::CatchUp(int64_t timeout_ms) {
  size_t target = source_ != nullptr ? source_->size() : 0;
  int64_t deadline = MonotonicMicros() + timeout_ms * 1000;
  while (applied_.load(std::memory_order_acquire) < target) {
    if (MonotonicMicros() > deadline) {
      return Status::TimedOut("mirror catch-up: applied " +
                              std::to_string(applied_.load()) + " of " +
                              std::to_string(target));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return health();
}

Status MirrorSegment::health() const {
  std::lock_guard<std::mutex> g(err_mu_);
  return error_;
}

}  // namespace gphtap
