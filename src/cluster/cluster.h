// The cluster: coordinator state (catalog, distributed transactions, GDD
// daemon, resource groups) plus the worker segments, all in one process with
// simulated wire and disk costs.
#ifndef GPHTAP_CLUSTER_CLUSTER_H_
#define GPHTAP_CLUSTER_CLUSTER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/circuit_breaker.h"
#include "cluster/dtx_recovery.h"
#include "delta/delta_index.h"
#include "cluster/fts.h"
#include "cluster/mirror.h"
#include "cluster/segment.h"
#include "cluster/session_registry.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "frontend/frontend_options.h"
#include "common/trace.h"
#include "common/wait_event.h"
#include "gdd/gdd_daemon.h"
#include "net/sim_net.h"
#include "plan/plan_cache.h"
#include "resgroup/resource_group.h"
#include "stats/metrics_history.h"
#include "stats/progress.h"
#include "stats/statement_stats.h"
#include "txn/distributed_txn_manager.h"

namespace gphtap {

class FrontDoor;
class FrontendSession;
class MotionExchange;
class Session;

struct ClusterOptions {
  int num_segments = 4;

  // --- The paper's three contributions, as switches (GPDB5 = all three off,
  // --- modulo resource groups which GPDB5 lacked in this form).
  bool gdd_enabled = true;             // off => DML takes table ExclusiveLock
  bool one_phase_commit_enabled = true;
  bool resource_groups_enabled = false;

  // --- Figure 11 "future optimization" switches (Section 5.3): for implicit
  // --- (single-statement) transactions the commit decision is known when the
  // --- statement is dispatched, so protocol messages can ride along with it.
  // 11(a): segments PREPARE as part of executing the final statement; the
  // coordinator skips the separate PREPARE broadcast (acks still flow back).
  bool auto_prepare_enabled = false;
  // 11(b): a single-segment statement carries its own COMMIT; the coordinator
  // skips the commit round trip entirely.
  bool onephase_piggyback_enabled = false;

  int64_t gdd_period_us = 50'000;      // wait-for graph collection period
  bool direct_dispatch_enabled = true; // single-segment routing for point queries

  // Cost model.
  int64_t net_latency_us = 0;
  int64_t fsync_cost_us = 0;
  BufferPool::Options buffer_pool;
  LockManager::Options locks;

  // Resource-group machinery sizing.
  int total_cores = 32;
  int64_t global_shared_mem_mb = 256;

  // Planner: false = fast heuristic ("PostgreSQL-style"), true = cost-based
  // join ordering and motion choice ("Orca-style").
  bool use_orca = false;

  // Vectorized batch execution (src/vec/) over AO-column scans; false pins
  // every plan to the tuple-at-a-time row engine (the ablation switch).
  bool vectorized_execution_enabled = true;

  // Morsel-driven intra-slice parallelism: a vectorized AO-column scan with at
  // least `vec_morsel_min_groups` sealed row groups splits the groups across
  // this many decode workers (Hyrise-style), with an order-preserving merge.
  // <= 1 keeps scans single-threaded.
  int vec_morsel_workers = 1;
  size_t vec_morsel_min_groups = 2;

  // Coordinator plan cache: planned SELECTs memoized by SQL text, invalidated
  // by catalog-version bumps (DDL / expansion / rebalance). 0 disables.
  size_t plan_cache_capacity = 64;

  // In-memory columnar delta store (src/delta/): every plain heap table gets a
  // per-segment column index tailing the change log, and heap scans run as
  // vectorized delta-merged scans after a freshness wait. Implies the
  // crash-recovery change stream (segments must produce change records).
  bool delta_store_enabled = false;
  // Seal-daemon period: seal cold delta runs + reclaim all-dead groups on
  // every segment this often. 0 = no daemon (SealDeltaNow still works).
  int64_t delta_seal_period_us = 20'000;
  // How long a delta-merged scan waits for the feed to reach the log position
  // captured at scan start before falling back to the row engine.
  int64_t delta_freshness_timeout_us = 200'000;

  // Interconnect buffering (rows per receiver queue) for motions.
  size_t motion_buffer_rows = 8192;

  // Simulated per-row executor CPU work, charged to the session's resource
  // group (0 = off). This is what makes OLAP queries "heavy" in HTAP benches.
  int64_t exec_cpu_ns_per_row = 0;

  // Background horizon maintenance (xid-map truncation + vacuum) period; 0=off.
  int64_t maintenance_period_us = 0;

  // High availability: give every primary segment a mirror that continuously
  // replays its change stream (Section 3.1). Mirrors do not serve queries.
  bool mirrors_enabled = false;

  // Crash recovery: segments keep a change stream even without mirrors so a
  // "crashed" segment can be rebuilt (Segment::Recover). Implied by mirrors.
  bool crash_recovery_enabled = false;

  // Fault Tolerance Service (Section 3.1): probe segments over the simulated
  // interconnect and promote mirrors of unresponsive primaries.
  bool fts_enabled = false;
  int64_t fts_period_us = 10'000;
  int fts_misses_before_failover = 2;

  // Coordinator retry policy for the post-commit-record half of 2PC: COMMIT
  // PREPARED is retried with capped exponential backoff until the deadline
  // (the paper's coordinator "retries forever"; tests need a horizon).
  int64_t commit_retry_initial_backoff_us = 500;
  int64_t commit_retry_max_backoff_us = 50'000;
  int64_t commit_retry_deadline_us = 10'000'000;

  // --- Observability ---
  // Trace every query executed by every session (per-session enable also
  // exists: Session::set_trace_enabled).
  bool trace_queries = false;
  // Statements slower than this land in the slow-query log; 0 = disabled.
  int64_t slow_query_threshold_us = 0;
  // Cumulative per-fingerprint statement statistics (gp_stat_statements):
  // every Session::Execute records into the cluster StatementStatsRegistry.
  bool stats_enabled = true;
  // Metrics history daemon (gp_stat_history): snapshot the MetricsRegistry
  // every period into a bounded ring of per-metric deltas. 0 = daemon off
  // (Cluster::CaptureHistoryTick still works for manual capture).
  int64_t stats_history_period_us = 0;
  size_t stats_history_capacity = 120;

  // --- Query-lifecycle resilience ---
  // Cluster-wide defaults for the session timeout GUCs (SET statement_timeout
  // / lock_timeout / admission_timeout override per session). 0 = disabled.
  int64_t statement_timeout_us = 0;  // whole-statement absolute deadline
  int64_t lock_timeout_us = 0;       // per individual lock wait
  int64_t admission_timeout_us = 0;  // resource-group queue wait

  // Coordinator statement retry: read-only statements failing with a
  // retryable kUnavailable (segment crash, failover in flight) are re-planned
  // and re-dispatched with a fresh snapshot under capped exponential backoff.
  // Writes are never silently retried. <= 1 attempts disables retry.
  int statement_retry_max_attempts = 3;
  int64_t statement_retry_initial_backoff_us = 2'000;
  int64_t statement_retry_max_backoff_us = 200'000;

  // Per-segment circuit breaker: after `breaker_failure_threshold` consecutive
  // kUnavailable dispatch failures, fail fast for `breaker_cooldown_us` before
  // letting a probe through (half-open). Reset on recovery/failover.
  bool breaker_enabled = false;
  int breaker_failure_threshold = 3;
  int64_t breaker_cooldown_us = 200'000;

  // Resource-group admission overload protection: bound the per-group wait
  // queue (0 = unbounded; overflow is shed with kResourceExhausted), or shed
  // immediately whenever no slot is free (shed-on-saturation mode).
  int resgroup_max_queue = 0;
  bool resgroup_shed_on_saturation = false;

  // Background retry period for committed-but-unacked 2PC participants
  // (DtxRecoveryDaemon). The transaction stays in the distributed in-progress
  // set — invisible to every snapshot — until the daemon completes it.
  int64_t dtx_recovery_period_us = 5'000;

  // --- Million-session front door (src/frontend/) ---
  // Thread-decoupled logical sessions over a bounded worker pool, with
  // bounded accept/dispatch queues, per-resgroup backpressure, shed/retry-
  // after overload degradation and idle/login timeouts. Off by default;
  // direct Connect() sessions work the same either way.
  FrontDoorOptions frontend;
};

/// Point-in-time health of one segment (cluster health API).
struct SegmentHealthInfo {
  int index = 0;
  bool up = true;
  bool has_mirror = false;
  bool mirror_promoted = false;    // mirror already consumed by a failover
  uint64_t mirror_applied = 0;     // change records the mirror has replayed
  uint64_t change_log_size = 0;    // change records the primary has produced
  Status mirror_health;            // sticky replay error, OK when healthy
  // AO bloat (summed over the segment's AO / AO-column tables): rows whose
  // latest state is visible-committed vs. rows dead under clog rules, plus
  // how many whole row groups reclamation already freed.
  uint64_t ao_live_rows = 0;
  uint64_t ao_dead_rows = 0;
  uint64_t ao_reclaimed_groups = 0;
};

struct ClusterHealth {
  std::vector<SegmentHealthInfo> segments;
  FtsDaemon::Stats fts;
};

/// Catalog + distributed-transaction brain + segments.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterOptions& options() const { return options_; }

  /// Hard ceiling on the segment count; segment slots are pre-allocated so the
  /// registry can grow at runtime without locking the read path.
  static constexpr int kMaxSegments = 64;

  /// Segments currently serving queries. Grows via AddSegments.
  int num_segments() const { return serving_segments_.load(std::memory_order_acquire); }
  Segment* segment(int i) { return segments_[static_cast<size_t>(i)].get(); }

  // ---- Online expansion ----
  /// Registers `count` new (empty) segments at runtime: each gets every
  /// catalog table, a mirror and a circuit breaker when those are enabled, and
  /// joins FTS probing. Existing tables keep routing to their original span
  /// (TableDef::dist_segments) until Session::RebalanceTable migrates them.
  /// Returns the new serving count.
  StatusOr<int> AddSegments(int count);

  /// Per-table distribution span as the router must see it *now* (the catalog
  /// entry a session cached at plan time may predate an expansion).
  struct TableDistInfo {
    int dist_segments = 0;  // 0 = all serving segments (system views, legacy)
    bool rebalancing = false;
  };
  TableDistInfo TableDist(TableId id) const;
  Status SetTableDistSegments(const std::string& name, int dist_segments);
  Status SetTableRebalancing(const std::string& name, bool rebalancing);

  // ---- Catalog (coordinator-owned, replicated implicitly to segments) ----
  /// Assigns `def.id` and creates the table on every segment.
  Status CreateTable(TableDef def);
  Status DropTable(const std::string& name);
  /// Adds a hash index on `column` of `table` (catalog + every segment's heap).
  Status CreateIndex(const std::string& table, const std::string& column);
  StatusOr<TableDef> LookupTable(const std::string& name) const;
  StatusOr<TableDef> LookupTableById(TableId id) const;
  std::vector<TableDef> ListTables() const;

  // ---- Sessions ----
  std::unique_ptr<Session> Connect(const std::string& role = "");

  /// Front-door connect (options.frontend.enabled): a lightweight logical
  /// session multiplexed over the bounded worker pool. Under saturation this
  /// sheds with a retryable kUnavailable + retry-after hint instead of
  /// blocking; kNotSupported when the front door is off.
  StatusOr<std::shared_ptr<FrontendSession>> ConnectLogical(const std::string& role = "");

  /// The front door, or null when options.frontend.enabled is false.
  FrontDoor* frontend() { return frontend_.get(); }

  // ---- Distributed transaction machinery ----
  DistributedTxnManager& dtm() { return dtm_; }
  LockManager& coordinator_locks() { return coordinator_locks_; }
  LocalTxnManager& coordinator_txns() { return coordinator_txns_; }
  CommitLog& coordinator_clog() { return coordinator_clog_; }
  DistributedLog& coordinator_dlog() { return coordinator_dlog_; }
  SimNet& net() { return net_; }
  GddDaemon* gdd() { return gdd_.get(); }
  WalStub& coordinator_wal() { return coordinator_wal_; }

  /// Writes (and fsyncs) the coordinator's distributed-commit record — the 2PC
  /// commit point between PREPARE and COMMIT PREPARED (Figure 10), and the
  /// authority for resolving in-doubt prepared transactions after a crash.
  void CoordinatorCommitRecord(Gxid gxid) {
    coordinator_wal_.Append(WalRecordType::kDistributedCommit, 0, gxid);
  }

  /// True once the 2PC commit point for `gxid` is durable on the coordinator.
  bool HasDistributedCommitRecord(Gxid gxid) const {
    return coordinator_wal_.HasDistributedCommit(gxid);
  }

  // ---- Fault injection + crash recovery + failover ----
  FaultInjector& faults() { return faults_; }

  /// Simulated crash of a primary segment (volatile state lost, service down).
  Status CrashSegment(int index);

  /// Restarts a crashed segment from its own durable state (WAL + change log).
  /// In-doubt prepared transactions are resolved against the coordinator's
  /// distributed commit record (ResolveInDoubt).
  Status RecoverSegment(int index);

  /// Promotes segment `index`'s mirror: the primary is fenced (crashed if still
  /// up), the mirror catches up and stops, and the primary is rebuilt from the
  /// shipped stream. Called by the FTS daemon; also callable directly.
  Status FailoverToMirror(int index);

  /// Recovery policy for a prepared transaction found in a crashed segment's
  /// log: commit if the coordinator's commit record exists, keep prepared if
  /// the coordinator still runs it (phase two will arrive), abort otherwise.
  Segment::InDoubtDecision ResolveInDoubt(Gxid gxid);

  /// Background completion of committed-but-unacked 2PC transactions (the
  /// session hands over when CommitSegmentWithRetry exhausts its deadline).
  DtxRecoveryDaemon& dtx_recovery() { return *dtx_recovery_; }

  /// Per-segment up/down + mirror replication lag + FTS counters.
  ClusterHealth Health();

  // ---- Observability ----
  MetricsRegistry& metrics() { return metrics_; }
  SlowQueryLog& slow_query_log() { return slow_query_log_; }
  /// Monotonic id source for per-query traces.
  uint64_t NextTraceId() { return next_trace_id_.fetch_add(1) + 1; }

  /// Cluster-wide accumulated wait-event statistics (gp_wait_events).
  WaitEventRegistry& wait_events() { return wait_events_; }
  /// Live session directory (gp_stat_activity).
  SessionRegistry& sessions() { return sessions_; }

  /// Keeps a finished query trace for later export (bounded ring; oldest
  /// evicted). Sessions call this for every traced query.
  void RetainTrace(std::shared_ptr<Trace> trace);
  std::vector<std::shared_ptr<Trace>> RetainedTraces() const;
  /// Renders every retained trace — query/slice spans and their wait
  /// intervals — as Chrome trace_event JSON (load in Perfetto / about:tracing).
  std::string ChromeTraceJson() const;
  /// ChromeTraceJson() written to `path`.
  Status DumpChromeTrace(const std::string& path) const;

  /// Produces the current rows of one system view (catalog/system_views.h) from
  /// live cluster state. Coordinator-only; executed by PlanKind::kVirtualScan.
  StatusOr<std::vector<Row>> SystemViewRows(TableId view_id);

  /// Point-in-time copy of every registered metric, with liveness gauges
  /// (running distributed txns, resident buffer pages) refreshed first.
  MetricsSnapshot StatsSnapshot();
  /// Human-readable text dump of StatsSnapshot().
  std::string StatsDump();

  /// Cumulative per-fingerprint statement statistics (gp_stat_statements).
  StatementStatsRegistry& statement_stats() { return statement_stats_; }
  /// Metrics-history ring (gp_stat_history), fed by the history daemon.
  MetricsHistory& metrics_history() { return *metrics_history_; }
  /// Maintenance progress registry (gp_stat_progress).
  ProgressRegistry& progress() { return progress_; }
  /// Takes one history tick now (what the daemon does every period); the
  /// manual path for tests and deployments with the daemon off.
  void CaptureHistoryTick();
  /// Writes MetricsHistory::ToCsv() to `path` for offline plotting.
  Status DumpHistoryCsv(const std::string& path);

  /// Cancels a transaction everywhere: flags its owner, wakes any lock wait it
  /// is parked in (coordinator or segments), and aborts the query's registered
  /// motion exchanges so receivers parked in Recv/RecvBatch wake promptly.
  /// Used by the GDD kill hook and by statement-error propagation.
  void CancelTxn(Gxid gxid, Status reason);

  // ---- Query-lifecycle resilience ----
  /// Registers a running query's motion exchanges under its gxid so CancelTxn
  /// (GDD kill, statement timeout, user cancel) can abort them. The executor
  /// registers after creating the exchanges and unregisters before returning;
  /// weak_ptrs keep the registry from extending exchange lifetime.
  void RegisterExchanges(Gxid gxid, std::vector<std::weak_ptr<MotionExchange>> exchanges);
  void UnregisterExchanges(Gxid gxid);

  /// Breaker-guarded segment entry for dispatch paths: while segment `index`'s
  /// breaker is open this fails fast with kUnavailable (no service-lock probe);
  /// otherwise delegates to Segment::Pin and feeds the outcome back into the
  /// breaker. With the breaker disabled it is exactly Segment::Pin.
  StatusOr<SegmentPin> PinSegment(int index);

  /// The per-segment breaker, or null when options.breaker_enabled is false.
  CircuitBreaker* breaker(int index) {
    return breakers_[static_cast<size_t>(index)].get();
  }

  /// All local wait-for graphs (coordinator node id -1 plus each segment).
  std::vector<LocalWaitGraph> CollectWaitGraphs();

  /// Truncates every segment's local->distributed xid map below the oldest
  /// gxid any live snapshot can see (Section 5.1 horizon maintenance).
  uint64_t TruncateXidMaps();

  // ---- Resource groups ----
  ResourceGroupRegistry& resgroups() { return resgroups_; }
  CpuGovernor& governor() { return governor_; }
  VmemTracker& vmem() { return vmem_; }

  /// Segment index that hash value `h` routes to across all serving segments.
  int SegmentForHash(uint64_t h) const {
    return static_cast<int>(h % static_cast<uint64_t>(num_segments()));
  }

  /// Same, over an explicit span (a table's dist_segments modulus).
  static int SegmentForHash(uint64_t h, int modulus) {
    return static_cast<int>(h % static_cast<uint64_t>(modulus));
  }

  /// Monotonic motion-exchange id source.
  int NextMotionId() { return next_motion_id_.fetch_add(1); }

  // ---- Plan cache ----
  /// Coordinator plan cache (SELECTs keyed by SQL text). Entries planned at an
  /// older catalog_version() miss and are evicted at lookup.
  PlanCache& plan_cache() { return *plan_cache_; }
  /// Monotonic catalog version: bumped by any change that can invalidate a
  /// cached plan — CREATE/DROP TABLE, CREATE INDEX, segment expansion, and
  /// distribution-span changes during rebalance.
  uint64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }
  void BumpCatalogVersion() {
    catalog_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  // ---- Delta store (when options.delta_store_enabled) ----
  /// Segment `i`'s delta index, or null when the feature is off.
  DeltaIndex* delta_index(int i) const {
    return delta_indexes_[static_cast<size_t>(i)].get();
  }
  /// One synchronous seal+reclaim pass over segment `index`'s delta stores
  /// (what the seal daemon runs every delta_seal_period_us). Blocks behind a
  /// recovering segment (kDeltaSealStall) and fails fast on a down one.
  Status SealDeltaNow(int index);

  // ---- Mirrors (when options.mirrors_enabled) ----
  MirrorSegment* mirror(int i) { return mirrors_[static_cast<size_t>(i)].get(); }
  /// Waits for every mirror to apply everything its primary produced.
  Status CatchUpMirrors(int64_t timeout_ms = 5000);
  /// Quiesced-state check: every mirrored table's visible contents match the
  /// primary's, per segment. Call with no transactions in flight.
  Status VerifyMirrorsConsistent();

 private:
  void MaintenanceLoop();
  /// The table defs segment `index` was created with (external paths are only
  /// materialized on segment 0); used to rebuild the schema during recovery.
  std::vector<TableDef> DefsForSegment(int index) const;

  /// Builds segment slot `index` (segment + mirror + breaker per options) but
  /// does not publish it. Requires expand_mu_ held.
  Status BuildSegmentSlot(int index, const std::vector<TableDef>& defs);

  const ClusterOptions options_;
  Segment::Options seg_options_;  // stashed so AddSegments builds equal segments

  // Declared before every consumer: subsystems resolve metric pointers into
  // this registry at construction and may update them until their own dtors.
  MetricsRegistry metrics_;
  SlowQueryLog slow_query_log_;
  std::atomic<uint64_t> next_trace_id_{0};
  WaitEventRegistry wait_events_;
  SessionRegistry sessions_;
  StatementStatsRegistry statement_stats_;
  ProgressRegistry progress_;
  // unique_ptr: capacity comes from options at construction time.
  std::unique_ptr<MetricsHistory> metrics_history_;
  mutable std::mutex traces_mu_;
  std::deque<std::shared_ptr<Trace>> retained_traces_;  // newest at the back
  static constexpr size_t kRetainedTraceCapacity = 256;

  // Coordinator node state (node id -1).
  CommitLog coordinator_clog_;
  DistributedLog coordinator_dlog_;
  WalStub coordinator_wal_;
  LockManager coordinator_locks_;
  LocalTxnManager coordinator_txns_;
  DistributedTxnManager dtm_;
  SimNet net_;
  FaultInjector faults_;

  // Fixed-capacity slot arrays (kMaxSegments) so readers index without locks:
  // AddSegments fills a slot, then publishes it by bumping serving_segments_
  // (release); every reader bounds its loop by num_segments() (acquire).
  // Slots for mirrors/breakers stay null when the feature is disabled.
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<MirrorSegment>> mirrors_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  // Declared after segments_: a delta index tails its segment's change log,
  // so it must be destroyed (and is stopped) first.
  std::vector<std::unique_ptr<DeltaIndex>> delta_indexes_;
  std::atomic<int> serving_segments_{0};
  // Serializes expansion against catalog DDL's per-segment fanout, so every
  // table lands on every segment exactly once.
  mutable std::mutex expand_mu_;

  mutable std::mutex exchanges_mu_;
  std::unordered_map<Gxid, std::vector<std::weak_ptr<MotionExchange>>> query_exchanges_;

  mutable std::mutex catalog_mu_;
  std::unordered_map<std::string, TableDef> catalog_;
  TableId next_table_id_ = 1;
  // Bumped by every catalog change that can invalidate a cached plan.
  std::atomic<uint64_t> catalog_version_{1};
  // Constructed after metrics_ (binds plan_cache.* counters into it).
  std::unique_ptr<PlanCache> plan_cache_;

  CpuGovernor governor_;
  VmemTracker vmem_;
  ResourceGroupRegistry resgroups_;

  std::unique_ptr<GddDaemon> gdd_;
  std::unique_ptr<FtsDaemon> fts_;
  std::unique_ptr<DtxRecoveryDaemon> dtx_recovery_;
  std::atomic<int> next_motion_id_{0};
  std::mutex failover_mu_;  // serializes FTS-driven and manual failovers

  std::atomic<bool> maintenance_running_{false};
  std::thread maintenance_thread_;

  void DeltaSealLoop();
  std::atomic<bool> delta_seal_running_{false};
  std::thread delta_seal_thread_;

  void StatsHistoryLoop();
  std::atomic<bool> stats_history_running_{false};
  std::thread stats_history_thread_;

  // Constructed last (its sessions touch every subsystem) and stopped first
  // in ~Cluster, before anything its in-flight statements could be using.
  std::unique_ptr<FrontDoor> frontend_;
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_CLUSTER_H_
