// Coordinator-side distributed-transaction recovery daemon.
//
// The 2PC commit fanout (Session::CommitSegmentWithRetry) retries COMMIT
// PREPARED with backoff, but only up to commit_retry_deadline_us — the session
// must eventually return to the client. If a participant still has not acked
// by then, the transaction is durably committed (the coordinator's commit
// record exists) but that segment still holds it *prepared*. The transaction
// must NOT leave the distributed in-progress set yet: the moment it does,
// snapshots treat it as finished and defer to segment-local clog state, which
// disagrees across segments — a concurrent scan would see the committed half
// on the acked segment and the pre-images on the prepared one (the
// MarkCommitted contract in distributed_txn_manager.h).
//
// This daemon is the release valve, modeling Greenplum's dtx recovery
// process: unacked (gxid, segment) pairs are handed here, COMMIT PREPARED is
// retried in the background until every participant has a durable outcome
// (segment recovery resolving in doubt from the commit record also counts —
// the retried commit then lands on the idempotent already-finished path);
// the transaction is then marked committed in the DTM, and only after that
// are its remaining per-segment locks released (so writers blocked on them
// — the write-dependency barrier — never resume while the gxid still looks
// in progress to new snapshots).
#ifndef GPHTAP_CLUSTER_DTX_RECOVERY_H_
#define GPHTAP_CLUSTER_DTX_RECOVERY_H_

#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "lock/lock_owner.h"
#include "txn/xid.h"

namespace gphtap {

class DtxRecoveryDaemon {
 public:
  struct Hooks {
    /// One COMMIT PREPARED attempt against a segment (wire + pin + local
    /// commit). OK or a non-retryable verdict means the segment has a durable
    /// outcome; a retryable failure (down, message dropped) means try again
    /// next tick.
    std::function<Status(Gxid, int seg_index)> commit_segment;
    /// Releases the prepared transaction's locks on `seg_index`; called only
    /// after mark_committed so waiters blocked on its transaction locks never
    /// observe the gxid still in progress.
    std::function<void(const std::shared_ptr<LockOwner>&, int seg_index)> release_locks;
    /// Every participant finished: the transaction leaves the distributed
    /// in-progress set (DistributedTxnManager::MarkCommitted).
    std::function<void(Gxid)> mark_committed;
  };

  struct Stats {
    uint64_t enqueued = 0;   // transactions handed to the daemon
    uint64_t resolved = 0;   // transactions fully completed + marked committed
    uint64_t attempts = 0;   // individual per-segment commit attempts
  };

  DtxRecoveryDaemon(Hooks hooks, int64_t period_us, MetricsRegistry* metrics);
  ~DtxRecoveryDaemon();

  DtxRecoveryDaemon(const DtxRecoveryDaemon&) = delete;
  DtxRecoveryDaemon& operator=(const DtxRecoveryDaemon&) = delete;

  void Start();
  void Stop();

  /// Hands over an in-doubt-committed transaction: `pending` lists the
  /// segments whose COMMIT PREPARED ack never arrived. The owner keeps the
  /// prepared transaction's locks alive until each segment resolves.
  void Enqueue(Gxid gxid, std::shared_ptr<LockOwner> owner, std::vector<int> pending);

  /// Transactions still awaiting at least one participant.
  size_t PendingCount() const;

  Stats stats() const;

 private:
  struct Entry {
    Gxid gxid = kInvalidGxid;
    std::shared_ptr<LockOwner> owner;
    std::vector<int> pending;
    // Original pending set: these segments' locks are released only after the
    // whole transaction is marked committed (write-dependency barrier).
    std::vector<int> held;
  };

  void Loop();

  const Hooks hooks_;
  const int64_t period_us_;
  Counter* m_enqueued_ = nullptr;
  Counter* m_resolved_ = nullptr;
  Counter* m_attempts_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  std::list<Entry> entries_;
  Stats stats_;
  std::thread thread_;
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_DTX_RECOVERY_H_
