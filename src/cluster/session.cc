#include "cluster/session.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <thread>

#include "common/clock.h"
#include "exec/executor.h"
#include "sql/driver.h"
#include "sql/prepared_statement.h"
#include "stats/fingerprint.h"
#include "stats/statement_stats.h"
#include "storage/ao_table.h"
#include "storage/column_store.h"
#include "storage/heap_table.h"
#include "storage/partitioned_table.h"

namespace gphtap {

std::string QueryResult::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) out += " | ";
    out += columns[i];
  }
  if (!columns.empty()) out += "\n";
  for (const Row& r : rows) {
    out += RowToString(r);
    out += "\n";
  }
  if (columns.empty()) out += "affected: " + std::to_string(affected) + "\n";
  return out;
}

Session::Session(Cluster* cluster, std::string role)
    : cluster_(cluster), role_(std::move(role)) {
  SetRole(role_);
  info_ = cluster_->sessions().Register(role_, group_->name());
  const ClusterOptions& opts = cluster_->options();
  statement_timeout_us_ = opts.statement_timeout_us;
  lock_timeout_us_ = opts.lock_timeout_us;
  admission_timeout_us_ = opts.admission_timeout_us;
  MetricsRegistry& metrics = cluster_->metrics();
  m_.committed = metrics.counter("txn.committed");
  m_.aborted = metrics.counter("txn.aborted");
  m_.one_phase = metrics.counter("txn.one_phase_commits");
  m_.two_phase = metrics.counter("txn.two_phase_commits");
  m_.piggybacked = metrics.counter("txn.piggybacked_commits");
  m_.auto_prepares = metrics.counter("txn.auto_prepares");
  m_.retries = metrics.counter("txn.commit_retries");
  m_.statements = metrics.counter("txn.statements");
  m_.stmt_retries = metrics.counter("resilience.statement_retries");
  m_.stmt_timeouts = metrics.counter("resilience.statement_timeouts");
}

Session::~Session() {
  if (in_txn()) Rollback();
  cluster_->sessions().Unregister(info_->id);
}

void Session::SetRole(const std::string& role) {
  role_ = role;
  group_ = nullptr;
  if (cluster_->options().resource_groups_enabled && !role_.empty()) {
    group_ = cluster_->resgroups().GroupForRole(role_);
  }
  if (group_ == nullptr) group_ = cluster_->resgroups().Get("default_group");
  if (info_ != nullptr) {
    std::string group_name = group_->name();
    info_->SetStrings(&role_, &group_name, nullptr);
  }
}

std::shared_ptr<PreparedStatement> Session::GetPrepared(
    const std::string& name) const {
  std::lock_guard<std::mutex> g(prepared_mu_);
  auto it = prepared_.find(name);
  return it == prepared_.end() ? nullptr : it->second;
}

void Session::PutPrepared(const std::string& name,
                          std::shared_ptr<PreparedStatement> ps) {
  std::lock_guard<std::mutex> g(prepared_mu_);
  prepared_[name] = std::move(ps);
}

bool Session::RemovePrepared(const std::string& name) {
  std::lock_guard<std::mutex> g(prepared_mu_);
  return prepared_.erase(name) > 0;
}

void Session::ClearPrepared() {
  std::lock_guard<std::mutex> g(prepared_mu_);
  prepared_.clear();
}

Status Session::PlanForPrepare(const SelectQuery& query, PreparedStatement* ps) {
  const uint64_t catalog_version = cluster_->catalog_version();
  GPHTAP_ASSIGN_OR_RETURN(PlannedSelect planned,
                          PlanSelect(query, MakePlannerOptions()));
  ps->plan_root = std::move(planned.root);
  ps->gang = std::move(planned.gang);
  ps->columns = std::move(planned.columns);
  ps->tables = query.tables;
  ps->catalog_version = catalog_version;
  ps->has_plan = true;
  return Status::OK();
}

WaitContext Session::MakeWaitContext() {
  WaitContext ctx;
  ctx.registry = &cluster_->wait_events();
  ctx.session = &info_->wait;
  ctx.profile = &wait_profile_;
  ctx.node = -1;  // coordinator; slice/DML workers override per segment
  ctx.group = group_->name();
  // Statement resource accumulator rides along so slices / buffer pool /
  // motion charge this statement without explicit plumbing.
  ctx.resources = &stmt_resources_;
  // Ambient interruption: blocking points poll this owner's cancellation /
  // statement deadline. Null before the first transaction begins; RunStatement
  // patches the installed context once EnsureTxn creates the owner.
  ctx.owner = owner_.get();
  return ctx;
}

void Session::ArmStatementDeadline() {
  if (owner_ == nullptr) return;
  int64_t deadline = 0;
  if (statement_timeout_us_ > 0) deadline = MonotonicMicros() + statement_timeout_us_;
  owner_->set_deadline_us(deadline);
  owner_->set_lock_timeout_us(lock_timeout_us_);
  info_->deadline_us.store(deadline, std::memory_order_release);
}

void Session::DisarmStatementDeadline() {
  if (owner_ != nullptr) owner_->set_deadline_us(0);
  info_->deadline_us.store(0, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Transaction lifecycle
// ---------------------------------------------------------------------------

Status Session::EnsureTxn() {
  if (failed_block_) {
    return Status::Aborted(
        "current transaction is aborted, commands ignored until end of block");
  }
  if (in_txn()) {
    if (txn_failed_) {
      return Status::Aborted(
          "current transaction is aborted, commands ignored until end of block");
    }
    if (owner_->cancelled()) {
      txn_failed_ = true;
      return owner_->cancel_reason();
    }
    return Status::OK();
  }
  owner_ = cluster_->dtm().BeginTxn(&gxid_, MonotonicMicros());
  info_->gxid.store(gxid_, std::memory_order_release);
  txn_failed_ = false;
  write_segments_.clear();
  snapshot_pinned_ = false;
  // The statement deadline covers admission queueing too: arm it before
  // Admit() so a saturated group evicts this request on time.
  ArmStatementDeadline();
  if (cluster_->options().resource_groups_enabled && !admitted_) {
    ResourceGroup::AdmitRequest req;
    req.owner = owner_.get();
    req.queue_timeout_us = admission_timeout_us_;
    req.max_queue = cluster_->options().resgroup_max_queue;
    req.shed_on_saturation = cluster_->options().resgroup_shed_on_saturation;
    Status s = group_->Admit(req);
    if (!s.ok()) {
      cluster_->dtm().MarkAborted(gxid_);
      gxid_ = kInvalidGxid;
      info_->gxid.store(gxid_, std::memory_order_release);
      owner_.reset();
      info_->deadline_us.store(0, std::memory_order_release);
      return s;
    }
    admitted_ = true;
  }
  return Status::OK();
}

Status Session::TakeStatementSnapshot() {
  // Read committed: a fresh distributed snapshot per statement.
  snapshot_ = cluster_->dtm().TakeSnapshot();
  if (!snapshot_pinned_) {
    cluster_->dtm().PinSnapshot(gxid_, snapshot_.gxmin);
    snapshot_pinned_ = true;
  }
  return Status::OK();
}

Status Session::Begin() {
  WaitContextGuard wait_guard(MakeWaitContext(), /*only_if_absent=*/true);
  if (failed_block_) {
    return Status::Aborted(
        "current transaction is aborted, commands ignored until end of block");
  }
  if (in_txn()) return Status::InvalidArgument("transaction already in progress");
  GPHTAP_RETURN_IF_ERROR(EnsureTxn());
  explicit_txn_ = true;
  return Status::OK();
}

Status Session::Commit() {
  WaitContextGuard wait_guard(MakeWaitContext(), /*only_if_absent=*/true);
  if (failed_block_) {
    // COMMIT of a failed block is a no-op rollback acknowledgement.
    failed_block_ = false;
    return Status::OK();
  }
  if (!in_txn()) return Status::OK();
  if (txn_failed_ || owner_->cancelled()) {
    // COMMIT of a failed transaction is a rollback (PostgreSQL semantics).
    AbortProtocol();
    return Status::OK();
  }
  Status s = CommitProtocol();
  // Past the commit point CommitProtocol cleans up itself (in_txn() is false)
  // and the error is informational; before it, the transaction aborts.
  if (!s.ok() && in_txn()) AbortProtocol();
  return s;
}

Status Session::Rollback() {
  if (failed_block_) {
    failed_block_ = false;
    return Status::OK();
  }
  if (!in_txn()) return Status::OK();
  AbortProtocol();
  return Status::OK();
}

namespace {

// Errors that mean "the segment did not act on the message" or "the outcome is
// unknown": segment down, message dropped, wait cancelled by a crash. The
// coordinator retries these after the commit point; everything else (Aborted,
// Internal, ...) is a definitive verdict. Shares the classification with the
// statement retry policy (common/status.h) so the two can't drift.
bool RetryableCommitError(const Status& s) { return IsRetryableFailure(s); }

// Runs `fn` on scope exit (statement-state restoration on every return path).
template <typename Fn>
class ScopeExit {
 public:
  explicit ScopeExit(Fn fn) : fn_(std::move(fn)) {}
  ~ScopeExit() { fn_(); }
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;

 private:
  Fn fn_;
};

}  // namespace

Status Session::CommitSegmentWithRetry(int seg_index, bool one_phase,
                                       bool piggyback_first) {
  SimNet& net = cluster_->net();
  FaultInjector& faults = cluster_->faults();
  const ClusterOptions& opts = cluster_->options();
  Segment* seg = cluster_->segment(seg_index);
  const char* crash_point =
      one_phase ? fault_points::kCrashBeforeCommit : fault_points::kCrashAfterPrepare;
  const char* ack_crash_point = one_phase ? fault_points::kCrashBeforeCommitAck
                                          : fault_points::kCrashBeforeCommitPreparedAck;
  int64_t backoff_us = opts.commit_retry_initial_backoff_us;
  int64_t deadline = MonotonicMicros() + opts.commit_retry_deadline_us;
  // The coordinator is blocked on this segment's commit ack for the whole
  // retry loop (both 1PC COMMIT and 2PC COMMIT PREPARED acks count here).
  WaitEventScope ack_wait(WaitEvent::kCommitPreparedAck, seg_index);
  bool first_attempt = true;
  while (true) {
    // The segment dies before acting on this commit message. For 1PC this
    // loses the transaction; for 2PC the prepared transaction is in doubt and
    // recovery resolves it from the coordinator's commit record.
    if (faults.Evaluate(crash_point, seg_index)) seg->Crash();
    bool piggyback = piggyback_first && first_attempt;
    first_attempt = false;
    Status s = Status::OK();
    if (!piggyback && !net.Deliver(MsgKind::kCommit)) {
      s = Status::Unavailable("commit message to segment " + std::to_string(seg_index) +
                              " dropped");
    } else if (auto pin = seg->Pin(); !pin.ok()) {
      s = pin.status();
    } else {
      s = one_phase ? seg->txns().Commit(gxid_) : seg->txns().CommitPrepared(gxid_);
      if (s.ok()) {
        // Commit is durable on the segment but the ack never arrives; the
        // retry must land on the idempotent already-finished path.
        if (faults.Evaluate(ack_crash_point, seg_index)) {
          seg->Crash();
          s = Status::Unavailable("segment " + std::to_string(seg_index) +
                                  " crashed before commit ack");
        } else if (!piggyback && !net.Deliver(MsgKind::kCommitAck)) {
          s = Status::Unavailable("commit ack from segment " +
                                  std::to_string(seg_index) + " dropped");
        }
      }
    }
    if (s.ok() || !RetryableCommitError(s)) return s;
    if (MonotonicMicros() >= deadline) {
      return Status::TimedOut("commit retry deadline exceeded for segment " +
                              std::to_string(seg_index) + ": " + s.message());
    }
    ++stats_.commit_retries;
    m_.retries->Add(1);
    PreciseSleepUs(backoff_us);
    backoff_us = std::min(backoff_us * 2, opts.commit_retry_max_backoff_us);
  }
}

Status Session::CommitProtocol() {
  SimNet& net = cluster_->net();
  FaultInjector& faults = cluster_->faults();
  std::vector<int> participants(write_segments_.begin(), write_segments_.end());

  // The statement deadline is honored up to — but never past — the commit
  // decision point. Checked here, before any commit record or 1PC dispatch:
  // once the decision is durable the transaction IS committed and phase two
  // runs to completion regardless of deadlines (retrying, never aborting).
  if (owner_ != nullptr && owner_->DeadlineExpired(MonotonicMicros())) {
    Status timeout = Status::TimedOut("statement timeout before commit point");
    owner_->Cancel(timeout);
    return timeout;
  }

  if (participants.empty()) {
    // Read-only: nothing to make durable.
    cluster_->dtm().MarkCommitted(gxid_);
  } else if (participants.size() == 1 && cluster_->options().one_phase_commit_enabled) {
    // One-phase commit (Section 5.2): skip PREPARE; one round trip, one
    // segment fsync, no coordinator commit record. With the Figure 11(b)
    // optimization, an implicit transaction's COMMIT rides on the statement
    // dispatch itself and the round trip disappears too.
    int seg_index = participants[0];
    bool piggyback = implicit_commit_ && cluster_->options().onephase_piggyback_enabled;
    GPHTAP_RETURN_IF_ERROR(
        CommitSegmentWithRetry(seg_index, /*one_phase=*/true, piggyback));
    cluster_->dtm().MarkCommitted(gxid_);
    ++stats_.one_phase_commits;
    m_.one_phase->Add(1);
    if (piggyback) {
      ++stats_.piggybacked_commits;
      m_.piggybacked->Add(1);
    }
  } else {
    // Two-phase commit: PREPARE everywhere, coordinator commit record, then
    // COMMIT PREPARED everywhere. Phases fan out in parallel, as the real
    // dispatcher does.
    // Fanout threads inherit the session's wait context so per-segment ack
    // waits attribute to this session; `ack_event` (when set) tags the whole
    // per-segment exchange as the coordinator waiting on that ack.
    const WaitContext* commit_wait_ctx = CurrentWaitContext();
    auto fanout = [&](WaitEvent ack_event, auto&& fn) -> std::vector<Status> {
      std::vector<Status> results(participants.size());
      std::vector<std::thread> threads;
      threads.reserve(participants.size());
      for (size_t i = 0; i < participants.size(); ++i) {
        threads.emplace_back([&, i] {
          WaitContext wctx;
          if (commit_wait_ctx != nullptr) wctx = *commit_wait_ctx;
          WaitContextGuard guard(wctx);
          std::unique_ptr<WaitEventScope> ack_wait;
          if (ack_event != WaitEvent::kNone) {
            ack_wait = std::make_unique<WaitEventScope>(ack_event, participants[i]);
          }
          results[i] = fn(participants[i]);
        });
      }
      for (auto& t : threads) t.join();
      return results;
    };

    // Figure 11(a): for an implicit transaction the segments already know the
    // statement they just ran was the last one, so they prepare on their own —
    // the coordinator skips the PREPARE broadcast and only collects acks.
    bool auto_prepare = implicit_commit_ && cluster_->options().auto_prepare_enabled;
    std::vector<Status> prepared = fanout(WaitEvent::kPrepareAck, [&](int seg_index) -> Status {
      Segment* seg = cluster_->segment(seg_index);
      if (faults.Evaluate(fault_points::kCrashBeforePrepare, seg_index)) seg->Crash();
      if (!auto_prepare && !net.Deliver(MsgKind::kPrepare)) {
        return Status::Unavailable("prepare message to segment " +
                                   std::to_string(seg_index) + " dropped");
      }
      auto pin = seg->Pin();
      if (!pin.ok()) return pin.status();  // down: no process to answer
      Status s = seg->txns().Prepare(gxid_);
      if (s.ok() && faults.Evaluate(fault_points::kCrashBeforePrepareAck, seg_index)) {
        // PREPARE is durable but the coordinator never hears about it: the
        // transaction aborts here and recovery resolves the orphan.
        seg->Crash();
        return Status::Unavailable("segment " + std::to_string(seg_index) +
                                   " crashed before prepare ack");
      }
      // The (possibly negative) ack crosses the wire; a drop means the
      // coordinator cannot tell success from failure and must abort.
      if (!net.Deliver(MsgKind::kPrepareAck) && s.ok()) {
        s = Status::Unavailable("prepare ack from segment " +
                                std::to_string(seg_index) + " dropped");
      }
      return s;
    });
    // ANY prepare failure aborts the whole transaction — the caller's
    // AbortProtocol() sends ABORT to every reachable participant, including
    // those whose PREPARE succeeded.
    for (const Status& s : prepared) {
      GPHTAP_RETURN_IF_ERROR(s);
    }
    if (auto_prepare) {
      ++stats_.auto_prepares;
      m_.auto_prepares->Add(1);
    }

    // Prepare fsyncs are interruptible (the sleep is cut short once the
    // deadline passes, with the record already appended), so re-check the
    // deadline here — still strictly before the commit record, where aborting
    // is legal. The prepared participants roll back via AbortProtocol.
    if (owner_ != nullptr && owner_->DeadlineExpired(MonotonicMicros())) {
      Status timeout = Status::TimedOut("statement timeout during prepare");
      owner_->Cancel(timeout);
      return timeout;
    }

    // The distributed commit record is the commit point: from here the
    // transaction IS committed, and phase two is retried, never aborted.
    cluster_->CoordinatorCommitRecord(gxid_);

    // CommitSegmentWithRetry opens its own kCommitPreparedAck scope.
    std::vector<Status> committed = fanout(WaitEvent::kNone, [&](int seg_index) -> Status {
      return CommitSegmentWithRetry(seg_index, /*one_phase=*/false,
                                    /*piggyback_first=*/false);
    });
    Status worst = Status::OK();
    std::vector<int> unacked;
    for (size_t i = 0; i < committed.size(); ++i) {
      if (!committed[i].ok()) {
        worst = committed[i];
        unacked.push_back(participants[static_cast<size_t>(i)]);
      }
    }
    if (unacked.empty()) {
      cluster_->dtm().MarkCommitted(gxid_);
    } else {
      // The transaction is durably committed (the commit record exists), but
      // some participant never acked COMMIT PREPARED and may still hold it
      // *prepared*. It must stay in the distributed in-progress set —
      // invisible to every snapshot — until each such segment has a durable
      // outcome, or a concurrent scan would see the acked half only
      // (visibility defers to segment-local clog state once a snapshot says
      // "finished"). The dtx recovery daemon completes phase two in the
      // background, releases the locks still pinning the pre-images on those
      // segments, and then marks the transaction committed.
      cluster_->dtx_recovery().Enqueue(gxid_, owner_, unacked);
    }
    ++stats_.two_phase_commits;
    m_.two_phase->Add(1);
    if (!worst.ok()) {
      // Informational: the commit decision is durable, but an ack is still
      // outstanding. Clean up (keeping the unacked segments' locks for the
      // recovery daemon) so the session is usable.
      ReleaseLocksExcept(unacked);
      ++stats_.txns_committed;
      m_.committed->Add(1);
      ClearTxnState();
      return worst;
    }
  }

  ReleaseAllLocks();
  ++stats_.txns_committed;
  m_.committed->Add(1);
  ClearTxnState();
  return Status::OK();
}

void Session::AbortProtocol() {
  SimNet& net = cluster_->net();
  // Record the abort verdict on the coordinator FIRST: a segment recovering
  // concurrently resolves in-doubt prepared transactions by asking the
  // coordinator, and must not re-prepare one we are about to abort.
  cluster_->dtm().MarkAborted(gxid_);
  for (int seg_index : write_segments_) {
    Segment* seg = cluster_->segment(seg_index);
    auto pin = seg->Pin();
    if (!pin.ok()) continue;  // down: recovery aborts it via the coordinator
    net.Deliver(MsgKind::kAbort);
    seg->txns().Abort(gxid_);
    net.Deliver(MsgKind::kAbortAck);
  }
  ReleaseAllLocks();
  ++stats_.txns_aborted;
  m_.aborted->Add(1);
  ClearTxnState();
}

void Session::ReleaseAllLocks() { ReleaseLocksExcept({}); }

void Session::ReleaseLocksExcept(const std::vector<int>& keep_segments) {
  cluster_->coordinator_locks().ReleaseAll(*owner_);
  for (int i = 0; i < cluster_->num_segments(); ++i) {
    if (std::find(keep_segments.begin(), keep_segments.end(), i) !=
        keep_segments.end()) {
      // Still prepared there: the locks keep concurrent writers off the
      // pre-images until the dtx recovery daemon lands COMMIT PREPARED (a
      // lock-free write would branch the update chain and lose one delta).
      continue;
    }
    cluster_->segment(i)->locks().ReleaseAll(*owner_);
  }
}

void Session::ClearTxnState() {
  gxid_ = kInvalidGxid;
  info_->gxid.store(gxid_, std::memory_order_release);
  // The ambient wait context may still point at this owner; clear it before
  // the owner handle drops so no blocking point polls a dead pointer.
  if (WaitContext* cur = CurrentWaitContext()) cur->owner = nullptr;
  info_->deadline_us.store(0, std::memory_order_release);
  owner_.reset();
  write_segments_.clear();
  explicit_txn_ = false;
  txn_failed_ = false;
  snapshot_pinned_ = false;
  if (admitted_) {
    group_->Leave();
    admitted_ = false;
  }
}

// ---------------------------------------------------------------------------
// Statement plumbing
// ---------------------------------------------------------------------------

template <typename Fn>
StatusOr<QueryResult> Session::RunStatement(Fn&& fn) {
  ++stats_.statements;
  m_.statements->Add(1);
  // only_if_absent: Execute() installs the context for the SQL path; direct
  // programmatic calls install it here.
  WaitContextGuard wait_guard(MakeWaitContext(), /*only_if_absent=*/true);
  info_->state.store(static_cast<int>(SessionState::kActive), std::memory_order_release);
  ScopeExit state_reset([this] {
    info_->state.store(static_cast<int>(in_txn() ? SessionState::kIdleInTransaction
                                                 : SessionState::kIdle),
                       std::memory_order_release);
  });
  bool implicit = !in_txn();
  // Re-arm the deadline for a statement inside an explicit transaction (the
  // timeout is per statement, measured from statement start) BEFORE admission
  // and lock acquisition; EnsureTxn arms a freshly created owner itself.
  ArmStatementDeadline();
  ScopeExit deadline_reset([this] { DisarmStatementDeadline(); });
  GPHTAP_RETURN_IF_ERROR(EnsureTxn());
  // The wait context was installed before the owner existed (first statement
  // of a transaction); patch the live one so blocking points see the owner.
  if (WaitContext* cur = CurrentWaitContext()) cur->owner = owner_.get();
  GPHTAP_RETURN_IF_ERROR(TakeStatementSnapshot());
  StatusOr<QueryResult> result = fn();
  if (!result.ok()) {
    // Errors abort the transaction right away, releasing every lock (as
    // PostgreSQL's AbortTransaction does); an explicit block additionally
    // rejects statements until the user ends it.
    AbortProtocol();
    if (!implicit) failed_block_ = true;
    if (result.status().code() == StatusCode::kTimedOut) {
      ++stats_.statement_timeouts;
      m_.stmt_timeouts->Add(1);
    }
    return result;
  }
  if (implicit) {
    implicit_commit_ = true;
    Status commit = Commit();
    implicit_commit_ = false;
    if (!commit.ok()) {
      if (commit.code() == StatusCode::kTimedOut) {
        ++stats_.statement_timeouts;
        m_.stmt_timeouts->Add(1);
      }
      return commit;
    }
  }
  return result;
}

StatusOr<QueryResult> Session::RunStatementErased(
    const std::function<StatusOr<QueryResult>()>& fn) {
  return RunStatement(fn);
}

template <typename Fn>
StatusOr<QueryResult> Session::RunReadOnlyStatement(Fn&& fn) {
  const ClusterOptions& opts = cluster_->options();
  // The retry budget shares the statement deadline: attempts stop once the
  // user's own timeout would have fired, whatever the attempt cap says.
  const int64_t overall_deadline =
      statement_timeout_us_ > 0 ? MonotonicMicros() + statement_timeout_us_ : 0;
  info_->retries.store(0, std::memory_order_release);
  int64_t backoff_us = opts.statement_retry_initial_backoff_us;
  for (int attempt = 1;; ++attempt) {
    bool was_implicit = !in_txn();
    StatusOr<QueryResult> result = fn();
    if (result.ok()) return result;
    // Only implicit (single-statement) read-only dispatches retry: a failure
    // inside an explicit block must surface (the block is failed), and writes
    // never reach this wrapper. kUnavailable means a segment crashed or a
    // failover is in flight — replanning against the recovered/promoted
    // cluster with a fresh snapshot is transparent to the client.
    if (!was_implicit || !IsRetryableStatementFailure(result.status())) return result;
    if (attempt >= opts.statement_retry_max_attempts) return result;
    if (overall_deadline != 0 && MonotonicMicros() >= overall_deadline) return result;
    ++stats_.statement_retries;
    m_.stmt_retries->Add(1);
    info_->retries.fetch_add(1, std::memory_order_acq_rel);
    // A shed response carries the producer's own backoff estimate (front-door
    // retry-after hint); never retry sooner than the producer asked.
    PreciseSleepUs(std::max(backoff_us, result.status().retry_after_us()));
    backoff_us = std::min(backoff_us * 2, opts.statement_retry_max_backoff_us);
  }
}

Status Session::EnsureSegmentWrite(Segment* seg) {
  // Serialized: parallel DML workers register concurrently.
  std::lock_guard<std::mutex> g(write_reg_mu_);
  if (write_segments_.count(seg->index())) return Status::OK();
  // Transaction lock: every writer holds ExclusiveLock on its own transaction
  // on that segment; blocked updaters take ShareLock on it (solid wait edges).
  // Acquiring our own transaction lock never blocks.
  GPHTAP_RETURN_IF_ERROR(seg->locks().Acquire(owner_, LockTag::Transaction(gxid_),
                                              LockMode::kExclusive));
  GPHTAP_RETURN_IF_ERROR(seg->txns().AssignXid(gxid_).status());
  write_segments_.insert(seg->index());
  return Status::OK();
}

Status Session::LockRelationCoordinator(const TableDef& def, LockMode mode) {
  return cluster_->coordinator_locks().Acquire(owner_, LockTag::Relation(def.id), mode);
}

Status Session::LockRelationSegment(Segment* seg, const TableDef& def, LockMode mode) {
  return seg->locks().Acquire(owner_, LockTag::Relation(def.id), mode);
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

PlannerOptions Session::MakePlannerOptions() {
  PlannerOptions popts;
  popts.num_segments = cluster_->num_segments();
  popts.use_orca = cluster_->options().use_orca;
  popts.direct_dispatch = cluster_->options().direct_dispatch_enabled;
  popts.vectorize =
      vectorize_override_.value_or(cluster_->options().vectorized_execution_enabled);
  // Delta-merged scans ride the vectorized engine: both switches must be on.
  popts.delta_store = cluster_->options().delta_store_enabled && popts.vectorize;
  popts.next_motion_id = [this] { return cluster_->NextMotionId(); };
  popts.table_dist = [this](TableId id) {
    Cluster::TableDistInfo d = cluster_->TableDist(id);
    return std::make_pair(d.dist_segments, d.rebalancing);
  };
  popts.row_estimate = [this](TableId id) -> uint64_t {
    Segment* seg0 = cluster_->segment(0);
    auto pin = seg0->Pin();
    if (!pin.ok()) return 1000;  // down: fall back to a default estimate
    Table* t = seg0->GetTable(id);
    if (t == nullptr) return 1000;
    return t->StoredVersionCount() * static_cast<uint64_t>(cluster_->num_segments()) + 1;
  };
  return popts;
}

StatusOr<QueryResult> Session::RunPlannedSelect(const CachedPlan& plan) {
  // Per-query distributed trace: a root "query" span on the coordinator;
  // ExecutePlan opens one child span per slice (coordinator + segments).
  std::shared_ptr<Trace> trace;
  uint64_t root_span = 0;
  if (trace_enabled_ || cluster_->options().trace_queries) {
    trace = std::make_shared<Trace>(cluster_->NextTraceId());
    root_span = trace->StartSpan("query");
    last_trace_ = trace;
    // Coordinator-side waits during this query (locks, commit acks) become
    // wait-interval child spans of the root; ExecutePlan re-parents per
    // slice for the producer threads.
    if (WaitContext* cur = CurrentWaitContext()) {
      cur->trace = trace.get();
      cur->parent_span = root_span;
    }
  }

  for (size_t i = 0; i < plan.gang.size(); ++i) {
    cluster_->net().Deliver(MsgKind::kDispatch);
  }
  auto mem = group_->NewMemoryAccount();
  QueryResult result;
  result.columns = plan.columns;
  QueryPlan qp;
  qp.root = plan.root;
  qp.gang = plan.gang;
  ExecProfile profile;
  profile.trace = trace.get();
  profile.parent_span = root_span;
  Status s = ExecutePlan(cluster_, qp, gxid_, owner_, snapshot_, group_.get(),
                         mem.get(),
                         [&](Row&& row) -> Status {
                           result.rows.push_back(std::move(row));
                           return Status::OK();
                         },
                         trace ? &profile : nullptr);
  cluster_->net().Deliver(MsgKind::kResult);
  if (trace) {
    if (s.ok()) {
      trace->EndSpan(root_span, static_cast<int64_t>(result.rows.size()));
    } else {
      // Aborted queries used to leak open spans (producers bail between
      // StartSpan and EndSpan); close them all and flag them aborted.
      trace->CloseOpenSpans(/*mark_aborted=*/true);
    }
    if (WaitContext* cur = CurrentWaitContext()) {
      cur->trace = nullptr;
      cur->parent_span = 0;
    }
    cluster_->RetainTrace(trace);
  }
  GPHTAP_RETURN_IF_ERROR(s);
  result.affected = static_cast<int64_t>(result.rows.size());
  return result;
}

StatusOr<QueryResult> Session::ExecuteSelect(const SelectQuery& query,
                                             const std::string* cache_sql) {
  return RunReadOnlyStatement([&] {
    return RunStatement([&]() -> StatusOr<QueryResult> {
    // Parse-analyze locks on the coordinator. System views are lock-free
    // snapshots of live state — observing a stuck cluster must not itself
    // queue behind anything.
    for (const TableDef& t : query.tables) {
      if (t.is_system_view) continue;
      GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(t, LockMode::kAccessShare));
    }

    // Stamp the catalog version before planning: a concurrent DDL landing
    // mid-plan leaves the entry stale-stamped, so later lookups re-plan.
    const uint64_t catalog_version = cluster_->catalog_version();
    GPHTAP_ASSIGN_OR_RETURN(PlannedSelect planned,
                            PlanSelect(query, MakePlannerOptions()));

    auto cached = std::make_shared<CachedPlan>();
    cached->root = std::move(planned.root);
    cached->gang = std::move(planned.gang);
    cached->columns = std::move(planned.columns);
    cached->tables = query.tables;
    cached->catalog_version = catalog_version;
    if (cache_sql != nullptr && PlanCacheEligible()) {
      cluster_->plan_cache().Insert(*cache_sql, cached);
    }
    return RunPlannedSelect(*cached);
    });
  });
}

StatusOr<QueryResult> Session::ExecuteCachedPlan(
    std::shared_ptr<const CachedPlan> plan) {
  return RunReadOnlyStatement([&] {
    return RunStatement([&]() -> StatusOr<QueryResult> {
      // Same parse-analyze locks a fresh plan would take; the plan tree itself
      // is immutable shared state.
      for (const TableDef& t : plan->tables) {
        if (t.is_system_view) continue;
        GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(t, LockMode::kAccessShare));
      }
      return RunPlannedSelect(*plan);
    });
  });
}

StatusOr<QueryResult> Session::ExplainSelect(const SelectQuery& query) {
  GPHTAP_ASSIGN_OR_RETURN(PlannedSelect planned,
                          PlanSelect(query, MakePlannerOptions()));

  QueryResult result;
  result.columns = {"QUERY PLAN"};
  std::string gang = "gang: segments {";
  for (size_t i = 0; i < planned.gang.size(); ++i) {
    if (i) gang += ",";
    gang += std::to_string(planned.gang[i]);
  }
  gang += planned.gang.size() == 1 ? "}  (direct dispatch)" : "}";
  result.rows.push_back(Row{Datum(gang)});
  // Split the plan tree rendering into one row per line, like EXPLAIN output.
  std::string text = planned.root->ToString();
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) result.rows.push_back(Row{Datum(text.substr(start, end - start))});
    start = end + 1;
  }
  result.affected = static_cast<int64_t>(result.rows.size());
  return result;
}

StatusOr<QueryResult> Session::ExplainAnalyzeSelect(const SelectQuery& query) {
  return RunReadOnlyStatement([&] {
    return RunStatement([&]() -> StatusOr<QueryResult> {
    for (const TableDef& t : query.tables) {
      if (t.is_system_view) continue;
      GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(t, LockMode::kAccessShare));
    }

    GPHTAP_ASSIGN_OR_RETURN(PlannedSelect planned,
                            PlanSelect(query, MakePlannerOptions()));
    AssignPlanNodeIds(planned.root.get());

    for (size_t i = 0; i < planned.gang.size(); ++i) {
      cluster_->net().Deliver(MsgKind::kDispatch);
    }
    auto mem = group_->NewMemoryAccount();
    OperatorStatsCollector op_stats;
    ExecProfile profile;
    profile.op_stats = &op_stats;
    QueryPlan qp;
    qp.root = std::move(planned.root);
    qp.gang = planned.gang;
    int64_t rows_out = 0;
    Stopwatch sw;
    Status s = ExecutePlan(cluster_, qp, gxid_, owner_, snapshot_, group_.get(),
                           mem.get(),
                           [&](Row&&) -> Status {
                             ++rows_out;
                             return Status::OK();
                           },
                           &profile);
    int64_t total_us = sw.ElapsedMicros();
    cluster_->net().Deliver(MsgKind::kResult);
    GPHTAP_RETURN_IF_ERROR(s);

    QueryResult result;
    result.columns = {"QUERY PLAN"};
    std::string gang = "gang: segments {";
    for (size_t i = 0; i < qp.gang.size(); ++i) {
      if (i) gang += ",";
      gang += std::to_string(qp.gang[i]);
    }
    gang += qp.gang.size() == 1 ? "}  (direct dispatch)" : "}";
    result.rows.push_back(Row{Datum(gang)});

    // One row per node: the node's own header line (first line of its
    // rendering) annotated with the measured actuals. Times are inclusive of
    // children (push-model pipeline), summed across gang members.
    auto emit = [&](auto&& self, const PlanNode& node, int indent) -> void {
      std::string text = node.ToString(indent);
      size_t eol = text.find('\n');
      std::string line = text.substr(0, eol == std::string::npos ? text.size() : eol);
      OperatorStatsCollector::OpStats os = op_stats.Get(node.node_id);
      // A labeled scan's batch count rides directly on the store label
      // ("store=delta-merged (vectorized) batches=12"), answering which engine
      // served the scan and how in one glance.
      bool store_batches = os.batches > 0 && !node.scan_store.empty();
      if (store_batches) line += " batches=" + std::to_string(os.batches);
      char buf[128];
      if (os.batches > 0 && !store_batches) {
        std::snprintf(buf, sizeof(buf),
                      "  (actual rows=%lld batches=%lld loops=%lld time=%.3f ms)",
                      static_cast<long long>(os.rows),
                      static_cast<long long>(os.batches),
                      static_cast<long long>(os.executions),
                      static_cast<double>(os.total_time_us) / 1000.0);
      } else {
        std::snprintf(buf, sizeof(buf), "  (actual rows=%lld loops=%lld time=%.3f ms)",
                      static_cast<long long>(os.rows),
                      static_cast<long long>(os.executions),
                      static_cast<double>(os.total_time_us) / 1000.0);
      }
      line += buf;
      if (!os.store_rows.empty()) {
        // Visible rows the scan drew from each physical store, pre-filter.
        line += "  (stores:";
        for (const auto& [store, n] : os.store_rows) {
          line += " " + store + "=" + std::to_string(n);
        }
        line += ")";
      }
      if (node.kind == PlanKind::kMotion) {
        // Time spent blocked on the exchange, reported separately from the
        // inclusive operator time: send = producers on a full queue, recv =
        // consumers on an empty one.
        char wbuf[96];
        std::snprintf(wbuf, sizeof(wbuf),
                      "  (motion wait: send=%.3f ms recv=%.3f ms)",
                      static_cast<double>(os.send_wait_us) / 1000.0,
                      static_cast<double>(os.recv_wait_us) / 1000.0);
        line += wbuf;
      }
      result.rows.push_back(Row{Datum(line)});
      for (const auto& child : node.children) self(self, *child, indent + 1);
    };
    emit(emit, *qp.root, 0);

    char total[64];
    std::snprintf(total, sizeof(total), "Execution time: %.3f ms (%lld rows)",
                  static_cast<double>(total_us) / 1000.0,
                  static_cast<long long>(rows_out));
    result.rows.push_back(Row{Datum(std::string(total))});
    result.affected = static_cast<int64_t>(result.rows.size());
    return result;
    });
  });
}

// ---------------------------------------------------------------------------
// INSERT
// ---------------------------------------------------------------------------

int Session::RouteInsert(const TableDef& def, const Row& row,
                         const Cluster::TableDistInfo& dist) {
  // Partitions with external leaves live on segment 0 only.
  if (def.partitions.has_value()) {
    const Datum& key = row[static_cast<size_t>(def.partitions->partition_col)];
    int leaf = def.partitions->RouteValue(key);
    if (leaf >= 0 &&
        def.partitions->ranges[static_cast<size_t>(leaf)].storage ==
            StorageKind::kExternal) {
      return 0;
    }
  }
  if (def.storage == StorageKind::kExternal) return 0;
  // Routing modulus is the table's own span (fresh from the catalog — the
  // session's cached def can be stale across a rebalance cutover), not the
  // live segment count: rows must keep landing where readers look for them
  // until a rebalance widens the span.
  int modulus = dist.dist_segments;
  if (modulus <= 0 || modulus > cluster_->num_segments()) {
    modulus = cluster_->num_segments();
  }
  switch (def.distribution.kind) {
    case DistributionKind::kHash:
      return Cluster::SegmentForHash(HashRowKey(row, def.distribution.key_cols),
                                     modulus);
    case DistributionKind::kRandom:
      return static_cast<int>(insert_round_robin_++ %
                              static_cast<uint64_t>(modulus));
    case DistributionKind::kReplicated:
      return -1;  // every segment carrying a copy
  }
  return 0;
}

StatusOr<QueryResult> Session::ExecuteInsert(const TableDef& def,
                                             const std::vector<Row>& rows) {
  return RunStatement([&]() -> StatusOr<QueryResult> {
    GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(def, LockMode::kRowExclusive));
    for (const Row& row : rows) {
      GPHTAP_RETURN_IF_ERROR(def.schema.CheckRow(row));
    }

    // Bucket rows per target segment, then dispatch per segment. Distribution
    // info comes fresh from the catalog (under the coordinator relation lock,
    // so a concurrent rebalance cutover — which takes AccessExclusive —
    // cannot move the span mid-statement).
    Cluster::TableDistInfo dist = cluster_->TableDist(def.id);
    int replicated_span = dist.dist_segments;
    if (replicated_span <= 0 || replicated_span > cluster_->num_segments() ||
        dist.rebalancing) {
      // Mid-expansion, replicated writes fan to every serving segment so the
      // new copies never miss a row.
      replicated_span = cluster_->num_segments();
    }
    std::map<int, std::vector<const Row*>> buckets;
    for (const Row& row : rows) {
      int target = RouteInsert(def, row, dist);
      if (target < 0) {
        for (int s = 0; s < replicated_span; ++s) buckets[s].push_back(&row);
      } else {
        buckets[target].push_back(&row);
      }
    }

    int64_t inserted = 0;
    for (auto& [seg_index, seg_rows] : buckets) {
      // The per-segment apply is this statement's "slice": charge its wall
      // time to the statement resources so DML shows exec CPU and per-segment
      // skew in gp_stat_statements just like gang-dispatched reads do.
      Stopwatch seg_sw;
      Segment* seg = cluster_->segment(seg_index);
      cluster_->net().Deliver(MsgKind::kDispatch);
      GPHTAP_ASSIGN_OR_RETURN(SegmentPin pin, seg->Pin());
      GPHTAP_RETURN_IF_ERROR(LockRelationSegment(seg, def, LockMode::kRowExclusive));
      GPHTAP_RETURN_IF_ERROR(EnsureSegmentWrite(seg));
      Table* table = seg->GetTable(def.id);
      if (table == nullptr) return Status::NotFound("table missing on segment");
      GPHTAP_ASSIGN_OR_RETURN(LocalXid xid, seg->txns().AssignXid(gxid_));
      for (const Row* row : seg_rows) {
        GPHTAP_ASSIGN_OR_RETURN(TupleId tid, table->Insert(xid, *row));
        (void)tid;
        ++inserted;
      }
      cluster_->net().Deliver(MsgKind::kResult);
      stmt_resources_.exec_cpu_ns.fetch_add(
          static_cast<uint64_t>(seg_sw.ElapsedNanos()), std::memory_order_relaxed);
      stmt_resources_.RecordSliceUs(seg_sw.ElapsedMicros());
    }
    QueryResult r;
    r.affected = def.distribution.kind == DistributionKind::kReplicated
                     ? static_cast<int64_t>(rows.size())
                     : inserted;
    return r;
  });
}

// ---------------------------------------------------------------------------
// UPDATE / DELETE
// ---------------------------------------------------------------------------

std::vector<int> Session::TargetSegmentsForWrite(const TableDef& def, const ExprPtr& where) {
  Cluster::TableDistInfo dist = cluster_->TableDist(def.id);
  int span = dist.dist_segments;
  if (span <= 0 || span > cluster_->num_segments()) span = cluster_->num_segments();
  if (dist.rebalancing) {
    // Rows may transiently live at both old and new homes (visibility sorts
    // them out per snapshot); fan the write across every serving segment and
    // skip direct dispatch.
    span = cluster_->num_segments();
  } else if (cluster_->options().direct_dispatch_enabled && where != nullptr) {
    std::vector<ExprPtr> quals = {where};
    int seg = DirectDispatchSegment(def, quals, 0, span);
    if (seg >= 0) return {seg};
  }
  std::vector<int> all(static_cast<size_t>(span));
  std::iota(all.begin(), all.end(), 0);
  return all;
}

Status Session::DmlWorker(Segment* seg, const TableDef& def,
                          const std::vector<std::pair<int, ExprPtr>>* sets,
                          const ExprPtr& where, int64_t* affected) {
  // The worker is this statement's per-segment "slice"; charge its wall time
  // on every exit path so UPDATE/DELETE show exec CPU and per-segment skew in
  // gp_stat_statements (relaxed adds — workers run concurrently).
  struct SliceCharge {
    Stopwatch sw;
    StatementResources* res;
    ~SliceCharge() {
      res->exec_cpu_ns.fetch_add(static_cast<uint64_t>(sw.ElapsedNanos()),
                                 std::memory_order_relaxed);
      res->RecordSliceUs(sw.ElapsedMicros());
    }
  } charge{Stopwatch(), &stmt_resources_};
  // Service pin for the whole worker: held across lock waits (a crash cancels
  // the wait and the pin drains), released before the commit protocol runs.
  GPHTAP_ASSIGN_OR_RETURN(SegmentPin pin, seg->Pin());
  GPHTAP_RETURN_IF_ERROR(LockRelationSegment(seg, def, LockMode::kRowExclusive));
  GPHTAP_RETURN_IF_ERROR(EnsureSegmentWrite(seg));
  Table* table = seg->GetTable(def.id);
  if (table == nullptr) return Status::NotFound("table missing on segment");
  auto* heap = dynamic_cast<HeapTable*>(table);
  if (heap == nullptr) {
    if (auto* part = dynamic_cast<PartitionedTable*>(table)) {
      // Updates against partitioned roots: operate on every heap leaf.
      Status st;
      for (size_t i = 0; i < part->num_leaves(); ++i) {
        auto* leaf_heap = dynamic_cast<HeapTable*>(part->leaf(i));
        if (leaf_heap == nullptr) continue;  // AO/external leaves are read-only
        GPHTAP_RETURN_IF_ERROR(
            DmlWorkerOnHeap(seg, def, leaf_heap, sets, where, affected));
      }
      return st;
    }
    if (def.storage == StorageKind::kAoRow || def.storage == StorageKind::kAoColumn) {
      return DmlWorkerOnAppendOptimized(seg, def, table, sets, where, affected);
    }
    return Status::NotSupported("UPDATE/DELETE on " +
                                std::string(StorageKindName(def.storage)) + " storage");
  }
  return DmlWorkerOnHeap(seg, def, heap, sets, where, affected);
}

Status Session::DmlWorkerOnAppendOptimized(
    Segment* seg, const TableDef& def, Table* table,
    const std::vector<std::pair<int, ExprPtr>>* sets, const ExprPtr& where,
    int64_t* affected) {
  // AO writers serialize on the relation: the segment-level ExclusiveLock (the
  // coordinator already holds one) means no concurrent writer can race the
  // visibility map.
  GPHTAP_RETURN_IF_ERROR(LockRelationSegment(seg, def, LockMode::kExclusive));
  GPHTAP_ASSIGN_OR_RETURN(LocalXid my_xid, seg->txns().AssignXid(gxid_));

  VisibilityContext vis;
  vis.clog = &seg->clog();
  vis.dlog = &seg->dlog();
  vis.dsnap = &snapshot_;
  LocalSnapshot lsnap = seg->txns().TakeLocalSnapshot();
  vis.lsnap = &lsnap;
  vis.my_xid = my_xid;

  // Collect targets first (Halloween protection for the UPDATE re-inserts).
  std::vector<std::pair<TupleId, Row>> targets;
  Status inner = Status::OK();
  GPHTAP_RETURN_IF_ERROR(table->Scan(vis, [&](TupleId tid, const Row& row) {
    if (where != nullptr) {
      auto pass = EvalPredicate(*where, row);
      if (!pass.ok()) {
        inner = pass.status();
        return false;
      }
      if (!*pass) return true;
    }
    targets.emplace_back(tid, row);
    return true;
  }));
  GPHTAP_RETURN_IF_ERROR(inner);

  auto mark = [&](TupleId tid) -> Status {
    if (auto* ao = dynamic_cast<AoRowTable*>(table)) return ao->MarkDeleted(tid, my_xid);
    if (auto* aoc = dynamic_cast<AoColumnTable*>(table)) {
      return aoc->MarkDeleted(tid, my_xid);
    }
    return Status::Internal("not an AO table");
  };
  for (auto& [tid, row] : targets) {
    GPHTAP_RETURN_IF_ERROR(mark(tid));
    if (sets != nullptr) {
      Row new_row = row;
      for (const auto& [col, expr] : *sets) {
        GPHTAP_ASSIGN_OR_RETURN(Datum d, EvalExpr(*expr, row));
        new_row[static_cast<size_t>(col)] = std::move(d);
      }
      GPHTAP_RETURN_IF_ERROR(def.schema.CheckRow(new_row));
      GPHTAP_RETURN_IF_ERROR(table->Insert(my_xid, new_row).status());
    }
    ++*affected;
  }
  return Status::OK();
}

Status Session::WaitForDistributedCommitOf(Segment* seg, LocalXid xid) {
  if (xid == kInvalidLocalXid) return Status::OK();
  auto gxid = seg->dlog().Lookup(xid);
  // No mapping: a purely local / long-truncated transaction — by the
  // truncation horizon it finished before any live snapshot.
  if (!gxid.has_value()) return Status::OK();
  while (cluster_->dtm().IsRunning(*gxid)) {
    if (owner_->cancelled()) return owner_->cancel_reason();
    if (owner_->DeadlineExpired(MonotonicMicros())) {
      Status timeout = Status::TimedOut(
          "statement timeout while waiting for distributed commit of txn " +
          std::to_string(*gxid));
      owner_->Cancel(timeout);
      return timeout;
    }
    // The committer holds its transaction lock on this segment until it is
    // marked distributively committed, so a share-lock wait blocks exactly
    // until then (and shows up as a solid GDD edge; the committer itself
    // never waits on locks here, so no cycle can form through it).
    WaitEventScope wait(WaitEvent::kLockTransaction, seg->index());
    GPHTAP_RETURN_IF_ERROR(
        seg->locks().Acquire(owner_, LockTag::Transaction(*gxid), LockMode::kShare));
    seg->locks().Release(*owner_, LockTag::Transaction(*gxid), LockMode::kShare);
    // The dtx recovery daemon owns the locks of a half-acked commit and may
    // briefly leave the gxid in-progress with this segment's lock already
    // free; don't spin hot while it finishes phase two elsewhere.
    if (cluster_->dtm().IsRunning(*gxid)) PreciseSleepUs(200);
  }
  return Status::OK();
}

Status Session::DmlWorkerOnHeap(Segment* seg, const TableDef& def, HeapTable* heap,
                                const std::vector<std::pair<int, ExprPtr>>* sets,
                                const ExprPtr& where, int64_t* affected) {
  GPHTAP_ASSIGN_OR_RETURN(LocalXid my_xid, seg->txns().AssignXid(gxid_));

  // Phase 1: collect candidate tuple ids (avoids the Halloween problem: the
  // target list is fixed before any new versions are written).
  VisibilityContext vis;
  vis.clog = &seg->clog();
  vis.dlog = &seg->dlog();
  vis.dsnap = &snapshot_;
  LocalSnapshot lsnap = seg->txns().TakeLocalSnapshot();
  vis.lsnap = &lsnap;
  vis.my_xid = my_xid;

  std::vector<TupleId> targets;
  int64_t rows_examined = 0;
  bool used_index = false;
  if (where != nullptr) {
    for (int icol : def.indexed_cols) {
      Datum key;
      if (ExtractEqualityConst(*where, icol, &key) && heap->HasIndexOn(icol)) {
        for (TupleId tid : heap->IndexLookup(icol, key)) {
          ++rows_examined;
          auto v = heap->Get(tid);
          if (!v.ok()) continue;
          if (!TupleVisible(v->header.xmin, v->header.xmax, vis)) continue;
          auto pass = EvalPredicate(*where, v->row);
          if (!pass.ok()) return pass.status();
          if (*pass) targets.push_back(tid);
        }
        used_index = true;
        break;
      }
    }
  }
  if (!used_index) {
    Status inner = Status::OK();
    Status scan = heap->Scan(vis, [&](TupleId tid, const Row& row) {
      ++rows_examined;
      if (where != nullptr) {
        auto pass = EvalPredicate(*where, row);
        if (!pass.ok()) {
          inner = pass.status();
          return false;
        }
        if (!*pass) return true;
      }
      targets.push_back(tid);
      return true;
    });
    GPHTAP_RETURN_IF_ERROR(inner);
    GPHTAP_RETURN_IF_ERROR(scan);
  }

  // DML scans consume CPU like any other executor work; charge it to the
  // session's resource group (this is what lets Figure 18's cpuset isolation
  // shorten OLTP transactions).
  int64_t cpu_ns = cluster_->options().exec_cpu_ns_per_row * rows_examined;
  if (cpu_ns > 0) group_->ChargeCpu(cpu_ns / 1000);

  // Phase 2: stamp each target, waiting out concurrent writers.
  for (TupleId target : targets) {
    TupleId cur = target;
    while (true) {
      if (owner_->cancelled()) return owner_->cancel_reason();
      MarkDeleteResult r = heap->TryMarkDeleted(cur, my_xid);
      if (r.outcome == MarkDeleteOutcome::kSelfUpdated) break;
      if (r.outcome == MarkDeleteOutcome::kFollow) {
        // A committed writer replaced the row: follow the version chain and
        // re-check the predicate against the new version (EvalPlanQual).
        // "Committed" above means the segment-local clog — but for conflicting
        // writers the commit point is the *distributed* commit. If the
        // replacer's gxid is still in the coordinator's in-progress set (phase
        // two in flight on some other segment), building our update on its
        // version and committing first would let a concurrent snapshot see
        // this transaction as finished while its dependency still looks
        // running — i.e. both the pre-image and our post-image visible at
        // once. Block until the dependency's distributed commit completes.
        GPHTAP_RETURN_IF_ERROR(WaitForDistributedCommitOf(seg, r.wait_xid));
        if (r.next == kInvalidTupleId) break;  // deleted outright
        cur = r.next;
        auto v = heap->Get(cur);
        if (!v.ok()) break;
        if (where != nullptr) {
          GPHTAP_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*where, v->row));
          if (!pass) break;
        }
        continue;
      }
      if (r.outcome == MarkDeleteOutcome::kWait) {
        // Tuple lock first (short-term; dotted wait edges hang off it), then
        // the holder's transaction lock (solid edge), then retry.
        LockTag tuple_tag = LockTag::Tuple(def.id, cur);
        GPHTAP_RETURN_IF_ERROR(
            seg->locks().Acquire(owner_, tuple_tag, LockMode::kExclusive));
        MarkDeleteResult r2 = heap->TryMarkDeleted(cur, my_xid);
        if (r2.outcome == MarkDeleteOutcome::kWait) {
          auto holder_gxid = seg->txns().GxidOfRunning(r2.wait_xid);
          if (holder_gxid.has_value()) {
            Status s = seg->locks().Acquire(
                owner_, LockTag::Transaction(*holder_gxid), LockMode::kShare);
            if (!s.ok()) {
              seg->locks().Release(*owner_, tuple_tag, LockMode::kExclusive);
              return s;
            }
            seg->locks().Release(*owner_, LockTag::Transaction(*holder_gxid),
                                 LockMode::kShare);
          }
          seg->locks().Release(*owner_, tuple_tag, LockMode::kExclusive);
          continue;  // holder finished; retry the stamp
        }
        seg->locks().Release(*owner_, tuple_tag, LockMode::kExclusive);
        if (r2.outcome == MarkDeleteOutcome::kSelfUpdated) break;
        if (r2.outcome == MarkDeleteOutcome::kFollow) {
          // Same write-dependency barrier as the lock-free follow above.
          GPHTAP_RETURN_IF_ERROR(WaitForDistributedCommitOf(seg, r2.wait_xid));
          if (r2.next == kInvalidTupleId) break;
          cur = r2.next;
          continue;
        }
        r = r2;  // kOk
      }
      // kOk: we own the delete of `cur`.
      if (sets != nullptr) {
        auto v = heap->Get(cur);
        if (!v.ok()) return v.status();
        Row new_row = v->row;
        for (const auto& [col, expr] : *sets) {
          GPHTAP_ASSIGN_OR_RETURN(Datum d, EvalExpr(*expr, v->row));
          new_row[static_cast<size_t>(col)] = std::move(d);
        }
        GPHTAP_RETURN_IF_ERROR(def.schema.CheckRow(new_row));
        GPHTAP_ASSIGN_OR_RETURN(TupleId new_tid, heap->Insert(my_xid, new_row));
        heap->LinkNewVersion(cur, new_tid);
      }
      ++*affected;
      break;
    }
  }
  return Status::OK();
}

StatusOr<QueryResult> Session::ExecuteUpdate(
    const TableDef& def, const std::vector<std::pair<int, ExprPtr>>& sets,
    const ExprPtr& where) {
  // Updating the distribution key would require moving tuples across segments;
  // like classic Greenplum we reject it.
  for (const auto& [col, expr] : sets) {
    if (def.distribution.kind == DistributionKind::kHash) {
      for (int key_col : def.distribution.key_cols) {
        if (col == key_col) {
          return Status::NotSupported("UPDATE of the distribution key column " +
                                      def.schema.column(static_cast<size_t>(col)).name);
        }
      }
    }
  }
  return RunStatement([&]() -> StatusOr<QueryResult> {
    // The pre-GDD locking regime serializes writers on the whole relation;
    // append-optimized tables keep the ExclusiveLock even under GDD (as in
    // Greenplum: the visibility map is not safe for concurrent writers).
    bool ao = def.storage == StorageKind::kAoRow || def.storage == StorageKind::kAoColumn;
    LockMode mode = cluster_->options().gdd_enabled && !ao ? LockMode::kRowExclusive
                                                           : LockMode::kExclusive;
    GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(def, mode));
    // Lock-then-rescan (read committed): the statement snapshot predates the
    // lock wait, so a rebalance cutover that committed while we queued would
    // leave the old-home versions visible but committed-dead — the write
    // would silently match zero rows. Re-snapshot now that the lock is held.
    GPHTAP_RETURN_IF_ERROR(TakeStatementSnapshot());
    std::vector<int> segs = TargetSegmentsForWrite(def, where);
    std::vector<Status> results(segs.size());
    std::vector<int64_t> counts(segs.size(), 0);
    std::vector<std::thread> threads;
    for (size_t i = 0; i < segs.size(); ++i) {
      cluster_->net().Deliver(MsgKind::kDispatch);
    }
    if (segs.size() == 1) {
      GPHTAP_RETURN_IF_ERROR(
          DmlWorker(cluster_->segment(segs[0]), def, &sets, where, &counts[0]));
    } else {
      // Parallel per-segment workers, like the dispatcher's gangs. A worker
      // may block on another transaction mid-statement while its siblings keep
      // running — the behaviour the global deadlock cases exercise. Each
      // inherits the session's wait context so its lock waits attribute here.
      const WaitContext* dml_wait_ctx = CurrentWaitContext();
      for (size_t i = 0; i < segs.size(); ++i) {
        threads.emplace_back([&, i] {
          WaitContext wctx;
          if (dml_wait_ctx != nullptr) wctx = *dml_wait_ctx;
          wctx.node = segs[i];
          WaitContextGuard guard(wctx);
          results[i] = DmlWorker(cluster_->segment(segs[i]), def, &sets, where, &counts[i]);
        });
      }
      for (auto& t : threads) t.join();
    }
    for (size_t i = 0; i < segs.size(); ++i) {
      cluster_->net().Deliver(MsgKind::kResult);
    }
    int64_t total = 0;
    for (int64_t c : counts) total += c;
    for (const Status& s : results) {
      GPHTAP_RETURN_IF_ERROR(s);
    }
    QueryResult r;
    r.affected = total;
    return r;
  });
}

StatusOr<QueryResult> Session::ExecuteDelete(const TableDef& def, const ExprPtr& where) {
  return RunStatement([&]() -> StatusOr<QueryResult> {
    bool ao = def.storage == StorageKind::kAoRow || def.storage == StorageKind::kAoColumn;
    LockMode mode = cluster_->options().gdd_enabled && !ao ? LockMode::kRowExclusive
                                                           : LockMode::kExclusive;
    GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(def, mode));
    // Same lock-then-rescan rule as UPDATE (see above).
    GPHTAP_RETURN_IF_ERROR(TakeStatementSnapshot());
    std::vector<int> segs = TargetSegmentsForWrite(def, where);
    std::vector<Status> results(segs.size());
    std::vector<int64_t> counts(segs.size(), 0);
    for (size_t i = 0; i < segs.size(); ++i) cluster_->net().Deliver(MsgKind::kDispatch);
    if (segs.size() == 1) {
      GPHTAP_RETURN_IF_ERROR(
          DmlWorker(cluster_->segment(segs[0]), def, nullptr, where, &counts[0]));
    } else {
      std::vector<std::thread> threads;
      const WaitContext* dml_wait_ctx = CurrentWaitContext();
      for (size_t i = 0; i < segs.size(); ++i) {
        threads.emplace_back([&, i] {
          WaitContext wctx;
          if (dml_wait_ctx != nullptr) wctx = *dml_wait_ctx;
          wctx.node = segs[i];
          WaitContextGuard guard(wctx);
          results[i] = DmlWorker(cluster_->segment(segs[i]), def, nullptr, where,
                                 &counts[i]);
        });
      }
      for (auto& t : threads) t.join();
    }
    for (size_t i = 0; i < segs.size(); ++i) cluster_->net().Deliver(MsgKind::kResult);
    int64_t total = 0;
    for (int64_t c : counts) total += c;
    for (const Status& s : results) {
      GPHTAP_RETURN_IF_ERROR(s);
    }
    QueryResult r;
    r.affected = total;
    return r;
  });
}

// ---------------------------------------------------------------------------
// LOCK TABLE / VACUUM
// ---------------------------------------------------------------------------

Status Session::LockTable(const TableDef& def, LockMode mode) {
  ++stats_.statements;
  m_.statements->Add(1);
  WaitContextGuard wait_guard(MakeWaitContext(), /*only_if_absent=*/true);
  info_->state.store(static_cast<int>(SessionState::kActive), std::memory_order_release);
  ScopeExit state_reset([this] {
    info_->state.store(static_cast<int>(in_txn() ? SessionState::kIdleInTransaction
                                                 : SessionState::kIdle),
                       std::memory_order_release);
  });
  GPHTAP_RETURN_IF_ERROR(EnsureTxn());
  // LOCK TABLE only makes sense inside an explicit transaction (locks are
  // released at commit); we allow it implicitly too for symmetry.
  GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(def, mode));
  for (int i = 0; i < cluster_->num_segments(); ++i) {
    Segment* seg = cluster_->segment(i);
    auto pin = seg->Pin();
    if (!pin.ok()) {
      txn_failed_ = true;
      return pin.status();
    }
    Status s = seg->locks().Acquire(owner_, LockTag::Relation(def.id), mode);
    if (!s.ok()) {
      txn_failed_ = true;
      return s;
    }
  }
  if (!explicit_txn_) {
    return Commit();
  }
  return Status::OK();
}

StatusOr<QueryResult> Session::ExecuteVacuum(const TableDef& def) {
  return RunStatement([&]() -> StatusOr<QueryResult> {
    GPHTAP_RETURN_IF_ERROR(
        LockRelationCoordinator(def, LockMode::kShareUpdateExclusive));
    ProgressRegistry::Handle progress =
        cluster_->progress().Begin(ProgressOp::kVacuum, def.name);
    progress.SetTotal(cluster_->num_segments());
    int64_t reclaimed = 0;
    for (int i = 0; i < cluster_->num_segments(); ++i) {
      progress.SetNode(i);
      Segment* seg = cluster_->segment(i);
      GPHTAP_ASSIGN_OR_RETURN(SegmentPin pin, seg->Pin());
      GPHTAP_RETURN_IF_ERROR(
          LockRelationSegment(seg, def, LockMode::kShareUpdateExclusive));
      Table* table = seg->GetTable(def.id);
      if (table == nullptr) {
        progress.Advance();
        continue;
      }
      auto* heap = dynamic_cast<HeapTable*>(table);
      if (heap == nullptr) {
        // Append-optimized: free all-dead sealed groups, then compact
        // dead-heavy ones by rewriting their live rows into the open tail.
        progress.SetPhase("ao-reclaim");
        GPHTAP_RETURN_IF_ERROR(
            VacuumAppendOptimizedSegment(seg, def, table, &reclaimed));
        progress.Advance();
        continue;
      }
      progress.SetPhase("heap");
      // A deleted version is reclaimable only when every live distributed
      // snapshot already sees the deletion: read-only sessions never acquire a
      // local xid here, so the local running set alone is NOT a safe horizon.
      Gxid oldest_gxid = cluster_->dtm().OldestVisibleGxid();
      reclaimed += static_cast<int64_t>(
          heap->Vacuum([&](LocalXid xmax) {
            auto gxid = seg->dlog().Lookup(xmax);
            // Mapping truncated => the deleter predates every live snapshot.
            return !gxid.has_value() || *gxid < oldest_gxid;
          }));
      progress.Advance();
    }
    QueryResult r;
    r.affected = reclaimed;
    return r;
  });
}

StatusOr<QueryResult> Session::ExecuteTruncate(const TableDef& def) {
  return RunStatement([&]() -> StatusOr<QueryResult> {
    GPHTAP_RETURN_IF_ERROR(LockRelationCoordinator(def, LockMode::kAccessExclusive));
    for (int i = 0; i < cluster_->num_segments(); ++i) {
      Segment* seg = cluster_->segment(i);
      GPHTAP_ASSIGN_OR_RETURN(SegmentPin pin, seg->Pin());
      GPHTAP_RETURN_IF_ERROR(
          LockRelationSegment(seg, def, LockMode::kAccessExclusive));
      Table* table = seg->GetTable(def.id);
      if (table != nullptr) GPHTAP_RETURN_IF_ERROR(table->Truncate());
    }
    return QueryResult{};
  });
}

StatusOr<QueryResult> Session::Execute(const std::string& sql) {
  // Install the wait context for the whole statement (parse through commit)
  // and publish the query text for gp_stat_activity.
  WaitContextGuard wait_guard(MakeWaitContext(), /*only_if_absent=*/true);
  wait_profile_.Reset();
  stmt_resources_.Reset();
  stmt_plan_cache_hit_ = false;
  stmt_fingerprint_override_.clear();
  // Per-statement retry count: RunReadOnlyStatement resets it too, but write
  // statements never pass through there and must not inherit the previous
  // statement's count.
  info_->retries.store(0, std::memory_order_relaxed);
  info_->SetStrings(nullptr, nullptr, &sql);
  const int64_t threshold_us = cluster_->options().slow_query_threshold_us;
  const bool stats_enabled = cluster_->options().stats_enabled;
  Stopwatch sw;
  auto result = sql_driver::ExecuteSql(this, sql);
  const int64_t elapsed_us = sw.ElapsedMicros();
  const uint64_t retries = info_->retries.load(std::memory_order_relaxed);
  std::string fingerprint;
  if (stats_enabled || (threshold_us > 0 && elapsed_us >= threshold_us)) {
    // EXECUTE of a prepared statement set an override so it accumulates under
    // the prepared text, not under "execute name($1)".
    fingerprint = !stmt_fingerprint_override_.empty() ? stmt_fingerprint_override_
                                                      : FingerprintSql(sql);
  }
  if (stats_enabled) {
    StatementStatsRegistry::Sample sample;
    sample.ok = result.ok();
    sample.timed_out = !result.ok() && result.status().code() == StatusCode::kTimedOut;
    sample.retries = retries;
    sample.plan_cache_hit = stmt_plan_cache_hit_;
    // Writes report affected rows; reads report returned rows.
    if (result.ok()) {
      sample.rows = result->affected > 0 ? static_cast<uint64_t>(result->affected)
                                         : result->rows.size();
    }
    sample.elapsed_us = elapsed_us;
    sample.resources = &stmt_resources_;
    sample.top_waits = wait_profile_.Top(3);
    cluster_->statement_stats().Record(fingerprint, sample);
  }
  if (threshold_us > 0 && elapsed_us >= threshold_us) {
    std::vector<SlowQueryLog::WaitItem> waits;
    for (const QueryWaitProfile::Item& item : wait_profile_.Top(3)) {
      SlowQueryLog::WaitItem w;
      w.event = std::string(WaitEventClassName(ClassOfEvent(item.event))) + ":" +
                WaitEventName(item.event);
      w.count = item.count;
      w.total_us = item.total_us;
      waits.push_back(std::move(w));
    }
    cluster_->slow_query_log().Record(sql, elapsed_us, MonotonicMicros(),
                                      std::move(waits), fingerprint,
                                      stmt_plan_cache_hit_, retries);
  }
  // Errors that never reached the statement executor (parse/analyze time)
  // still abort an open explicit transaction, PostgreSQL-style.
  if (!result.ok() && in_txn()) {
    AbortProtocol();
    failed_block_ = true;
  }
  return result;
}

}  // namespace gphtap
