#include "cluster/dtx_recovery.h"

#include <chrono>

namespace gphtap {

DtxRecoveryDaemon::DtxRecoveryDaemon(Hooks hooks, int64_t period_us,
                                     MetricsRegistry* metrics)
    : hooks_(std::move(hooks)), period_us_(period_us) {
  if (metrics != nullptr) {
    m_enqueued_ = metrics->counter("resilience.dtx_recovery_enqueued");
    m_resolved_ = metrics->counter("resilience.dtx_recovery_resolved");
    m_attempts_ = metrics->counter("resilience.dtx_recovery_attempts");
  }
}

DtxRecoveryDaemon::~DtxRecoveryDaemon() { Stop(); }

void DtxRecoveryDaemon::Start() {
  std::lock_guard<std::mutex> g(mu_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void DtxRecoveryDaemon::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void DtxRecoveryDaemon::Enqueue(Gxid gxid, std::shared_ptr<LockOwner> owner,
                                std::vector<int> pending) {
  {
    std::lock_guard<std::mutex> g(mu_);
    Entry e{gxid, std::move(owner), std::move(pending), {}};
    e.held = e.pending;
    entries_.push_back(std::move(e));
    ++stats_.enqueued;
  }
  if (m_enqueued_ != nullptr) m_enqueued_->Add(1);
  cv_.notify_all();
}

size_t DtxRecoveryDaemon::PendingCount() const {
  std::lock_guard<std::mutex> g(mu_);
  return entries_.size();
}

DtxRecoveryDaemon::Stats DtxRecoveryDaemon::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void DtxRecoveryDaemon::Loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (running_) {
    if (entries_.empty()) {
      cv_.wait(lk, [&] { return !running_ || !entries_.empty(); });
    } else {
      cv_.wait_for(lk, std::chrono::microseconds(period_us_),
                   [&] { return !running_; });
    }
    if (!running_) break;
    // std::list iterators stay valid across the unlocked hook calls below:
    // Enqueue only push_backs, and only this thread erases.
    for (auto it = entries_.begin(); it != entries_.end();) {
      Entry& e = *it;
      for (auto seg_it = e.pending.begin(); seg_it != e.pending.end();) {
        int seg_index = *seg_it;
        ++stats_.attempts;
        lk.unlock();
        if (m_attempts_ != nullptr) m_attempts_->Add(1);
        Status s = hooks_.commit_segment(e.gxid, seg_index);
        // OK and definitive verdicts both mean the segment now has a durable
        // outcome for this transaction (a recovery-resolved commit answers OK
        // on the idempotent path); only retryable failures keep it pending.
        bool finished = s.ok() || !IsRetryableFailure(s);
        lk.lock();
        if (!running_) return;
        seg_it = finished ? e.pending.erase(seg_it) : std::next(seg_it);
      }
      if (e.pending.empty()) {
        Gxid gxid = e.gxid;
        auto owner = e.owner;
        auto held = e.held;
        lk.unlock();
        // Order matters: mark the transaction distributively committed FIRST,
        // then release its locks. Writers that found its versions locally
        // committed block on these transaction locks (the write-dependency
        // barrier in Session::WaitForDistributedCommitOf); releasing before
        // MarkCommitted would wake them while the gxid still looks in
        // progress to new snapshots — the exact visibility tear the barrier
        // exists to prevent. It also keeps waiters off the still-prepared
        // pre-images between per-segment commits.
        hooks_.mark_committed(gxid);
        for (int seg_index : held) hooks_.release_locks(owner, seg_index);
        if (m_resolved_ != nullptr) m_resolved_->Add(1);
        lk.lock();
        ++stats_.resolved;
        it = entries_.erase(it);
        if (!running_) return;
      } else {
        ++it;
      }
    }
  }
}

}  // namespace gphtap
