// Per-segment circuit breaker (classic closed -> open -> half-open automaton).
// Dispatch paths consult the breaker before pinning a segment: after a burst of
// consecutive Unavailable failures the breaker opens and callers fail fast with
// kUnavailable instead of each paying the probe/timeout cost while FTS is still
// confirming the crash. After a cooldown the breaker lets one probe through
// (half-open); success closes it, failure re-opens. Recovery/failover paths
// reset the breaker explicitly so a freshly promoted mirror is not shunned.
#ifndef GPHTAP_CLUSTER_CIRCUIT_BREAKER_H_
#define GPHTAP_CLUSTER_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/metrics.h"
#include "common/status.h"

namespace gphtap {

class CircuitBreaker {
 public:
  struct Options {
    int failure_threshold = 3;      // consecutive failures before tripping
    int64_t cooldown_us = 200'000;  // open -> half-open probe interval
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(Options opts) : opts_(opts) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// OK if a call may proceed (closed, or half-open probe slot available, or
  /// cooldown elapsed); kUnavailable fail-fast while open.
  Status Allow(int64_t now_us);

  /// Call outcome feedback from the dispatch path.
  void RecordSuccess();
  void RecordFailure(int64_t now_us);

  /// Segment recovered / mirror promoted: forget all failure history.
  void Reset();

  State state() const;
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

  /// Counter for resilience.breaker_trips; null is a no-op.
  void set_trip_counter(Counter* c) { m_trips_ = c; }

 private:
  const Options opts_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int64_t open_until_us_ = 0;
  bool probe_in_flight_ = false;
  std::atomic<uint64_t> trips_{0};
  Counter* m_trips_ = nullptr;
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_CIRCUIT_BREAKER_H_
