#include "cluster/session_registry.h"

#include <algorithm>

namespace gphtap {

const char* SessionStateName(SessionState s) {
  switch (s) {
    case SessionState::kIdle:
      return "idle";
    case SessionState::kActive:
      return "active";
    case SessionState::kIdleInTransaction:
      return "idle in transaction";
  }
  return "?";
}

std::shared_ptr<SessionInfo> SessionRegistry::Register(const std::string& role,
                                                       const std::string& group) {
  auto info = std::make_shared<SessionInfo>();
  info->SetStrings(&role, &group, nullptr);
  std::lock_guard<std::mutex> g(mu_);
  info->id = ++next_id_;
  sessions_.push_back(info);
  return info;
}

void SessionRegistry::Unregister(int64_t id) {
  std::lock_guard<std::mutex> g(mu_);
  sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                 [&](const std::shared_ptr<SessionInfo>& s) {
                                   return s->id == id;
                                 }),
                  sessions_.end());
}

std::vector<std::shared_ptr<SessionInfo>> SessionRegistry::Snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  return sessions_;
}

}  // namespace gphtap
