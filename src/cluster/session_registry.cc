#include "cluster/session_registry.h"

namespace gphtap {

const char* SessionStateName(SessionState s) {
  switch (s) {
    case SessionState::kIdle:
      return "idle";
    case SessionState::kActive:
      return "active";
    case SessionState::kIdleInTransaction:
      return "idle in transaction";
    case SessionState::kQueued:
      return "queued";
  }
  return "?";
}

std::shared_ptr<SessionInfo> SessionRegistry::Register(const std::string& role,
                                                       const std::string& group) {
  auto info = std::make_shared<SessionInfo>();
  info->SetStrings(&role, &group, nullptr);
  std::lock_guard<std::mutex> g(mu_);
  info->id = ++next_id_;
  sessions_.emplace(info->id, info);
  return info;
}

void SessionRegistry::Unregister(int64_t id) {
  std::lock_guard<std::mutex> g(mu_);
  sessions_.erase(id);
}

std::vector<std::shared_ptr<SessionInfo>> SessionRegistry::Snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::shared_ptr<SessionInfo>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, info] : sessions_) out.push_back(info);
  return out;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return sessions_.size();
}

}  // namespace gphtap
