#include "cluster/segment.h"

#include <algorithm>
#include <map>
#include <utility>

#include "storage/replay.h"

namespace gphtap {

Status Segment::Crash() {
  // try_lock, not lock: Crash() must never block (it is called from under
  // service pins), and if recovery holds the mutex the segment is already down
  // — crashing it again is a no-op.
  std::unique_lock<std::mutex> state(state_mu_, std::try_to_lock);
  if (!state.owns_lock() || !up()) return Status::OK();
  // Blocked lock waiters would otherwise sit until their timeout; a crashed
  // node answers nobody. Cancel them (and poison the table against late
  // arrivals) with a retryable error so their sessions abort promptly. Granted
  // locks die with the lock table in Recover(). This happens BEFORE the segment
  // is observably down: once up() is false a concurrent Recover() may start,
  // and it must not race with the teardown here.
  locks_.CancelAllWaiters(Status::Unavailable(
      "segment " + std::to_string(index_) + " crashed while transaction waited"));
  up_.store(false, std::memory_order_release);
  return Status::OK();
}

Status Segment::Recover(const std::vector<TableDef>& defs, const InDoubtResolver& resolver,
                        RecoverySource source) {
  std::lock_guard<std::mutex> state(state_mu_);
  if (up()) {
    return Status::Internal("segment " + std::to_string(index_) +
                            ": Recover() on a segment that is up");
  }
  if (change_log_ == nullptr) {
    return Status::NotSupported("segment " + std::to_string(index_) +
                                ": recovery requires a change log "
                                "(enable_recovery/enable_mirroring)");
  }
  // Drain in-flight pinned requests; new ones fail fast on the up_ check.
  std::unique_lock<std::shared_mutex> service(service_mu_);

  // --- Tear down all volatile state. ---
  {
    std::unique_lock<std::shared_mutex> g(tables_mu_);
    tables_.clear();
  }
  clog_.Reset();
  dlog_.Reset();
  locks_.Reset();

  // --- Recreate the schema, detached from the change log so replay does not
  // re-append history. Partitioned roots come back empty: leaf routing is not
  // in the stream (documented data loss, matching the mirroring limitation). ---
  {
    std::unique_lock<std::shared_mutex> g(tables_mu_);
    for (const TableDef& def : defs) {
      tables_[def.id] = gphtap::CreateTable(def, &clog_, &pool_);
    }
  }

  // --- Rebuild transaction states. kLocalWal replays this segment's own WAL;
  // kShippedStream trusts only what was shipped to the mirror (the txn records
  // in the change stream), modeling a promotion where the primary's disk died. ---
  struct TxnInfo {
    Gxid gxid = kInvalidGxid;
    TxnState state = TxnState::kInProgress;
  };
  std::map<LocalXid, TxnInfo> txns;
  LocalXid max_xid = 0;
  auto note = [&](LocalXid xid, Gxid gxid, TxnState state, bool begin) {
    if (xid == kInvalidLocalXid) return;
    max_xid = std::max(max_xid, xid);
    auto& info = txns[xid];
    if (begin) {
      info.gxid = gxid;
      info.state = TxnState::kInProgress;
    } else {
      info.state = state;
    }
  };
  if (source == RecoverySource::kLocalWal) {
    for (const WalRecord& rec : wal_.Snapshot()) {
      switch (rec.type) {
        case WalRecordType::kBegin:
          note(rec.xid, rec.gxid, TxnState::kInProgress, /*begin=*/true);
          break;
        case WalRecordType::kPrepare:
          note(rec.xid, rec.gxid, TxnState::kPrepared, /*begin=*/false);
          break;
        case WalRecordType::kCommit:
        case WalRecordType::kCommitPrepared:
          note(rec.xid, rec.gxid, TxnState::kCommitted, /*begin=*/false);
          break;
        case WalRecordType::kAbort:
          note(rec.xid, rec.gxid, TxnState::kAborted, /*begin=*/false);
          break;
        case WalRecordType::kDistributedCommit:
          break;  // coordinator-only record
      }
    }
  }

  // --- Replay the change stream: txn records (for kShippedStream) and data
  // records (both sources). Snapshot first; resolution below appends new
  // records that must not be replayed into the tables we are rebuilding. ---
  const std::vector<ChangeRecord> stream = change_log_->Snapshot(change_log_->size());
  for (const ChangeRecord& rec : stream) {
    switch (rec.kind) {
      case ChangeKind::kTxnBegin:
        if (source == RecoverySource::kShippedStream) {
          note(rec.xid, rec.gxid, TxnState::kInProgress, /*begin=*/true);
        }
        continue;
      case ChangeKind::kTxnPrepare:
        if (source == RecoverySource::kShippedStream) {
          note(rec.xid, rec.gxid, TxnState::kPrepared, /*begin=*/false);
        }
        continue;
      case ChangeKind::kTxnCommit:
        if (source == RecoverySource::kShippedStream) {
          note(rec.xid, rec.gxid, TxnState::kCommitted, /*begin=*/false);
        }
        continue;
      case ChangeKind::kTxnAbort:
        if (source == RecoverySource::kShippedStream) {
          note(rec.xid, rec.gxid, TxnState::kAborted, /*begin=*/false);
        }
        continue;
      default:
        break;
    }
    Table* table = GetTable(rec.table);
    if (table == nullptr) continue;  // dropped table / partitioned root
    Status s = ApplyDataChange(table, rec);
    if (!s.ok()) return s;
  }

  // --- Install transaction states and resolve what the log left open. ---
  std::vector<std::pair<Gxid, LocalXid>> reinstated;
  std::unordered_map<Gxid, TxnState> finished;
  auto finish = [&](LocalXid xid, Gxid gxid, TxnState state, WalRecordType wal_type,
                    ChangeKind stream_kind) {
    clog_.SetState(xid, state);
    wal_.Append(wal_type, xid, gxid);
    change_log_->Append(
        ChangeRecord{stream_kind, 0, kInvalidTupleId, kInvalidTupleId, xid, {}, gxid});
    if (gxid != kInvalidGxid) finished[gxid] = state;
  };
  for (const auto& [xid, info] : txns) {
    clog_.Register(xid);
    clog_.SetState(xid, info.state);
    if (info.gxid != kInvalidGxid) dlog_.Record(xid, info.gxid);
    switch (info.state) {
      case TxnState::kPrepared: {
        InDoubtDecision d =
            info.gxid != kInvalidGxid ? resolver(info.gxid) : InDoubtDecision::kAbort;
        if (d == InDoubtDecision::kCommit) {
          finish(xid, info.gxid, TxnState::kCommitted, WalRecordType::kCommitPrepared,
                 ChangeKind::kTxnCommit);
        } else if (d == InDoubtDecision::kAbort) {
          finish(xid, info.gxid, TxnState::kAborted, WalRecordType::kAbort,
                 ChangeKind::kTxnAbort);
        } else {
          reinstated.emplace_back(info.gxid, xid);
        }
        break;
      }
      case TxnState::kInProgress:
        // Volatile state (including any not-yet-prepared writes' fate) died
        // with the crash: the transaction aborts, as in PostgreSQL recovery.
        finish(xid, info.gxid, TxnState::kAborted, WalRecordType::kAbort,
               ChangeKind::kTxnAbort);
        break;
      case TxnState::kCommitted:
      case TxnState::kAborted:
        break;  // already final
    }
  }
  txns_.ResetForRecovery(max_xid + 1, reinstated, std::move(finished));

  // --- Reconnect the change stream and reopen for service. ---
  {
    std::unique_lock<std::shared_mutex> g(tables_mu_);
    for (const TableDef& def : defs) {
      auto it = tables_.find(def.id);
      if (it != tables_.end() && !def.partitions.has_value()) {
        it->second->SetChangeLog(change_log_.get());
      }
    }
  }
  up_.store(true, std::memory_order_release);
  return Status::OK();
}

}  // namespace gphtap
