#include "cluster/fts.h"

#include <algorithm>
#include <chrono>

namespace gphtap {

void FtsDaemon::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void FtsDaemon::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void FtsDaemon::Loop() {
  std::vector<int> misses(static_cast<size_t>(hooks_.num_segments), 0);
  while (running_.load(std::memory_order_relaxed)) {
    for (int i = 0; i < hooks_.num_segments; ++i) {
      if (!running_.load(std::memory_order_relaxed)) return;
      probes_.fetch_add(1, std::memory_order_relaxed);
      if (hooks_.probe(i)) {
        misses[static_cast<size_t>(i)] = 0;
        continue;
      }
      probe_misses_.fetch_add(1, std::memory_order_relaxed);
      if (++misses[static_cast<size_t>(i)] < options_.misses_before_failover) continue;
      misses[static_cast<size_t>(i)] = 0;
      if (hooks_.can_failover == nullptr || !hooks_.can_failover(i)) continue;
      if (hooks_.failover(i).ok()) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
      } else {
        failed_failovers_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Sleep the probe period in slices so Stop() is responsive.
    int64_t slept = 0;
    while (running_.load(std::memory_order_relaxed) && slept < options_.period_us) {
      int64_t slice = std::min<int64_t>(1'000, options_.period_us - slept);
      std::this_thread::sleep_for(std::chrono::microseconds(slice));
      slept += slice;
    }
  }
}

}  // namespace gphtap
