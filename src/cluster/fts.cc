#include "cluster/fts.h"

#include <algorithm>
#include <chrono>

namespace gphtap {

void FtsDaemon::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void FtsDaemon::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> g(wake_mu_);
    wake_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void FtsDaemon::Loop() {
  std::vector<int> misses;
  while (running_.load(std::memory_order_relaxed)) {
    const int n = hooks_.num_segments();
    if (misses.size() < static_cast<size_t>(n)) misses.resize(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      if (!running_.load(std::memory_order_relaxed)) return;
      probes_.fetch_add(1, std::memory_order_relaxed);
      if (m_probes_ != nullptr) m_probes_->Add(1);
      if (hooks_.probe(i)) {
        misses[static_cast<size_t>(i)] = 0;
        continue;
      }
      probe_misses_.fetch_add(1, std::memory_order_relaxed);
      if (m_probe_misses_ != nullptr) m_probe_misses_->Add(1);
      if (++misses[static_cast<size_t>(i)] < options_.misses_before_failover) continue;
      misses[static_cast<size_t>(i)] = 0;
      if (hooks_.can_failover == nullptr || !hooks_.can_failover(i)) continue;
      if (hooks_.failover(i).ok()) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
        if (m_failovers_ != nullptr) m_failovers_->Add(1);
      } else {
        failed_failovers_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Park on the wake CV for the probe period; Stop() notifies, so shutdown
    // does not wait out the period (and never lags it in 1ms slices).
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait_for(lk, std::chrono::microseconds(options_.period_us),
                      [this] { return !running_.load(std::memory_order_relaxed); });
  }
}

}  // namespace gphtap
