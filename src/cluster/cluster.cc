#include "cluster/cluster.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "catalog/system_views.h"
#include "cluster/session.h"
#include "common/clock.h"
#include "frontend/frontend.h"
#include "net/motion_exchange.h"
#include "storage/ao_table.h"
#include "storage/column_store.h"
#include "storage/heap_table.h"

namespace gphtap {

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      coordinator_wal_(options.fsync_cost_us),
      coordinator_locks_(-1, options.locks),
      coordinator_txns_(&coordinator_clog_, &coordinator_dlog_, &coordinator_wal_),
      net_(options.net_latency_us),
      governor_(options.total_cores),
      vmem_(options.global_shared_mem_mb << 20),
      resgroups_(&governor_, &vmem_, &metrics_) {
  plan_cache_ = std::make_unique<PlanCache>(options.plan_cache_capacity, &metrics_);
  net_.set_metrics(&metrics_);
  coordinator_wal_.set_metrics(&metrics_);
  coordinator_locks_.set_metrics(&metrics_);
  vmem_.set_metrics(&metrics_);
  // The built-in default group: every session not mapped to a user group
  // charges CPU here. Soft 100% share means it only throttles when the
  // machine's simulated capacity is saturated — which is exactly the
  // un-isolated interference the paper's Figures 16/17 show.
  ResourceGroupConfig default_group;
  default_group.name = "default_group";
  default_group.concurrency = 1'000'000;
  default_group.cpu_rate_limit = 100;
  default_group.memory_limit_mb = options.global_shared_mem_mb;
  resgroups_.CreateGroup(default_group);

  net_.set_fault_injector(&faults_);

  seg_options_.buffer_pool = options.buffer_pool;
  seg_options_.fsync_cost_us = options.fsync_cost_us;
  seg_options_.locks = options.locks;
  seg_options_.enable_mirroring = options.mirrors_enabled;
  // The delta feed tails the same change stream crash recovery replays.
  seg_options_.enable_recovery =
      options.crash_recovery_enabled || options.delta_store_enabled;
  seg_options_.metrics = &metrics_;
  // Fixed-capacity slot arrays: AddSegments fills slots past the serving count
  // at runtime, so the vectors themselves never reallocate under readers.
  segments_.resize(kMaxSegments);
  mirrors_.resize(kMaxSegments);
  breakers_.resize(kMaxSegments);
  delta_indexes_.resize(kMaxSegments);
  const int initial = std::min(options.num_segments, kMaxSegments);
  for (int i = 0; i < initial; ++i) {
    Status built = BuildSegmentSlot(i, {});
    (void)built;  // boot-time slot creation with an empty catalog cannot fail
  }
  serving_segments_.store(initial, std::memory_order_release);

  if (options.gdd_enabled) {
    GddDaemon::Hooks hooks;
    hooks.collect = [this] {
      net_.Deliver(MsgKind::kGddCollect);
      return CollectWaitGraphs();
    };
    hooks.txn_running = [this](Gxid gxid) { return dtm_.IsRunning(gxid); };
    hooks.kill = [this](Gxid gxid, Status reason) { CancelTxn(gxid, std::move(reason)); };
    gdd_ = std::make_unique<GddDaemon>(std::move(hooks), options.gdd_period_us, &metrics_);
    gdd_->Start();
  }

  if (options.fts_enabled) {
    FtsDaemon::Hooks hooks;
    hooks.num_segments = [this] { return num_segments(); };
    hooks.probe = [this](int i) {
      // Probe + response both cross the wire; either leg can be dropped or
      // delayed by a fault, and a down segment never answers.
      if (!net_.Deliver(MsgKind::kFtsProbe)) return false;
      Segment* seg = segment(i);
      if (!seg->up()) return false;
      if (faults_.Evaluate(fault_points::kFtsProbeTimeout, i)) return false;
      return net_.Deliver(MsgKind::kFtsProbe);
    };
    hooks.can_failover = [this](int i) {
      MirrorSegment* m = mirror(i);
      return m != nullptr && !m->promoted();
    };
    hooks.failover = [this](int i) { return FailoverToMirror(i); };
    FtsDaemon::Options fts_options;
    fts_options.period_us = options.fts_period_us;
    fts_options.misses_before_failover = options.fts_misses_before_failover;
    fts_ = std::make_unique<FtsDaemon>(std::move(hooks), fts_options, &metrics_);
    fts_->Start();
  }

  {
    // Always on: it is the correctness valve for 2PC transactions whose
    // commit fanout gave up on a participant (see dtx_recovery.h). Idle cost
    // is one parked thread.
    DtxRecoveryDaemon::Hooks hooks;
    hooks.commit_segment = [this](Gxid gxid, int seg_index) -> Status {
      // Same wire + pin + local-commit shape as CommitSegmentWithRetry, but
      // without a deadline: the daemon retries until the segment answers.
      // Segment::Pin (not the breaker-guarded PinSegment) on purpose — this
      // path must keep probing a down segment, not fail fast.
      if (!net_.Deliver(MsgKind::kCommit)) {
        return Status::Unavailable("commit message to segment " +
                                   std::to_string(seg_index) + " dropped");
      }
      Segment* seg = segment(seg_index);
      auto pin = seg->Pin();
      if (!pin.ok()) return pin.status();
      Status s = seg->txns().CommitPrepared(gxid);
      if (s.ok()) net_.Deliver(MsgKind::kCommitAck);  // outcome observed directly
      return s;
    };
    hooks.release_locks = [this](const std::shared_ptr<LockOwner>& owner,
                                 int seg_index) {
      segment(seg_index)->locks().ReleaseAll(*owner);
    };
    hooks.mark_committed = [this](Gxid gxid) { dtm_.MarkCommitted(gxid); };
    dtx_recovery_ = std::make_unique<DtxRecoveryDaemon>(
        std::move(hooks), options.dtx_recovery_period_us, &metrics_);
    dtx_recovery_->Start();
  }

  if (options.maintenance_period_us > 0) {
    maintenance_running_.store(true);
    maintenance_thread_ = std::thread([this] { MaintenanceLoop(); });
  }

  if (options.delta_store_enabled && options.delta_seal_period_us > 0) {
    delta_seal_running_.store(true);
    delta_seal_thread_ = std::thread([this] { DeltaSealLoop(); });
  }

  metrics_history_ = std::make_unique<MetricsHistory>(options.stats_history_capacity);
  if (options.stats_history_period_us > 0) {
    stats_history_running_.store(true);
    stats_history_thread_ = std::thread([this] { StatsHistoryLoop(); });
  }

  // Last: front-door sessions drive every subsystem above.
  if (options.frontend.enabled) {
    frontend_ = std::make_unique<FrontDoor>(this, options.frontend);
  }
}

Cluster::~Cluster() {
  // First: front-door workers may be mid-statement anywhere in the cluster.
  if (frontend_) {
    frontend_->Stop();
    frontend_.reset();
  }
  if (stats_history_running_.exchange(false) && stats_history_thread_.joinable()) {
    stats_history_thread_.join();
  }
  if (dtx_recovery_) dtx_recovery_->Stop();
  if (fts_) fts_->Stop();
  if (delta_seal_running_.exchange(false) && delta_seal_thread_.joinable()) {
    delta_seal_thread_.join();
  }
  for (auto& di : delta_indexes_) {
    if (di != nullptr) di->Stop();
  }
  for (auto& m : mirrors_) {
    if (m != nullptr) m->Stop();
  }
  if (gdd_) gdd_->Stop();
  if (maintenance_running_.exchange(false) && maintenance_thread_.joinable()) {
    maintenance_thread_.join();
  }
}

void Cluster::MaintenanceLoop() {
  while (maintenance_running_.load(std::memory_order_relaxed)) {
    TruncateXidMaps();
    std::this_thread::sleep_for(std::chrono::microseconds(options_.maintenance_period_us));
  }
}

Status Cluster::BuildSegmentSlot(int index, const std::vector<TableDef>& defs) {
  auto seg = std::make_unique<Segment>(index, seg_options_);
  for (const TableDef& def : defs) {
    GPHTAP_RETURN_IF_ERROR(seg->CreateTable(def));
  }
  if (options_.mirrors_enabled) {
    auto m = std::make_unique<MirrorSegment>(index);
    m->set_fault_injector(&faults_);
    for (const TableDef& def : defs) {
      GPHTAP_RETURN_IF_ERROR(m->CreateTable(def));
    }
    m->Start(seg->change_log());
    mirrors_[static_cast<size_t>(index)] = std::move(m);
  }
  if (options_.breaker_enabled) {
    CircuitBreaker::Options breaker_options;
    breaker_options.failure_threshold = options_.breaker_failure_threshold;
    breaker_options.cooldown_us = options_.breaker_cooldown_us;
    auto b = std::make_unique<CircuitBreaker>(breaker_options);
    b->set_trip_counter(metrics_.counter("resilience.breaker_trips"));
    breakers_[static_cast<size_t>(index)] = std::move(b);
  }
  if (options_.delta_store_enabled) {
    auto di = std::make_unique<DeltaIndex>(
        index, [this](TableId id) { return LookupTableById(id); }, &metrics_);
    di->Start(seg->change_log());
    delta_indexes_[static_cast<size_t>(index)] = std::move(di);
  }
  segments_[static_cast<size_t>(index)] = std::move(seg);
  return Status::OK();
}

void Cluster::DeltaSealLoop() {
  // The daemon thread gets its own wait context so seal stalls behind a
  // recovering segment show up in gp_wait_events as delta_seal_stall.
  WaitContext ctx;
  ctx.registry = &wait_events_;
  WaitContextGuard guard(ctx);
  // Daemon-lifetime progress entry (gp_stat_progress): phase "seal", node =
  // segment currently being sealed, units_done = completed per-segment passes.
  // Never finishes while the daemon runs; total stays 0 (unbounded).
  ProgressRegistry::Handle progress = progress_.Begin(ProgressOp::kDeltaSeal, "");
  progress.SetPhase("seal");
  while (delta_seal_running_.load(std::memory_order_relaxed)) {
    const int n = num_segments();
    for (int i = 0; i < n; ++i) {
      if (!delta_seal_running_.load(std::memory_order_relaxed)) return;
      progress.SetNode(i);
      Status s = SealDeltaNow(i);
      (void)s;  // a down segment skips its pass; the next one retries
      progress.Advance();
    }
    int64_t slept = 0;
    while (slept < options_.delta_seal_period_us &&
           delta_seal_running_.load(std::memory_order_relaxed)) {
      const int64_t chunk = std::min<int64_t>(options_.delta_seal_period_us - slept, 1000);
      std::this_thread::sleep_for(std::chrono::microseconds(chunk));
      slept += chunk;
    }
  }
}

Status Cluster::SealDeltaNow(int index) {
  DeltaIndex* di = delta_index(index);
  if (di == nullptr) return Status::NotSupported("delta store disabled");
  Segment* seg = segment(index);
  if (seg == nullptr) return Status::NotFound("segment " + std::to_string(index));
  // Pin fails fast when the segment is down and blocks behind Recover()'s
  // exclusive service lock — the seal-stall point.
  WaitEventScope stall(WaitEvent::kDeltaSealStall, index);
  auto pin = seg->Pin();
  if (!pin.ok()) return pin.status();
  const CommitLog& clog = seg->clog();
  DistributedLog& dlog = seg->dlog();
  // Same physical-reclamation horizon as heap VACUUM: an aborted creator is
  // dead to everyone; a committed deleter only once it predates every live
  // snapshot (clog-committed alone is NOT safe — an older snapshot may still
  // need the row).
  const Gxid oldest_gxid = dtm_.OldestVisibleGxid();
  AoRowDeadFn dead = [&clog, &dlog, oldest_gxid](LocalXid xmin, LocalXid xmax) {
    if (clog.GetState(xmin) == TxnState::kAborted) return true;
    if (xmax == kInvalidLocalXid || !clog.IsCommitted(xmax)) return false;
    auto gxid = dlog.Lookup(xmax);
    return !gxid.has_value() || *gxid < oldest_gxid;
  };
  di->SealAndReclaim(&clog, seg->change_log(), dead);
  return Status::OK();
}

StatusOr<int> Cluster::AddSegments(int count) {
  if (count <= 0) return Status::InvalidArgument("AddSegments: count must be > 0");
  std::lock_guard<std::mutex> expand(expand_mu_);
  const int before = num_segments();
  if (before + count > kMaxSegments) {
    return Status::InvalidArgument("AddSegments: " + std::to_string(before + count) +
                                   " segments exceeds the capacity of " +
                                   std::to_string(kMaxSegments));
  }
  for (int i = before; i < before + count; ++i) {
    // New segments get every catalog table (empty; rebalancing moves data
    // later) and publish one at a time: a reader that observes count i+1 also
    // observes slot i's fully-built segment.
    GPHTAP_RETURN_IF_ERROR(BuildSegmentSlot(i, DefsForSegment(i)));
    serving_segments_.store(i + 1, std::memory_order_release);
  }
  // Cached plans embed gangs sized to the old serving count.
  BumpCatalogVersion();
  return before + count;
}

Cluster::TableDistInfo Cluster::TableDist(TableId id) const {
  std::lock_guard<std::mutex> g(catalog_mu_);
  for (const auto& [name, def] : catalog_) {
    if (def.id == id) return TableDistInfo{def.dist_segments, def.rebalancing};
  }
  return TableDistInfo{};  // system views / unknown: span everything
}

Status Cluster::SetTableDistSegments(const std::string& name, int dist_segments) {
  if (dist_segments <= 0 || dist_segments > num_segments()) {
    return Status::InvalidArgument("dist_segments " + std::to_string(dist_segments) +
                                   " out of range");
  }
  std::lock_guard<std::mutex> g(catalog_mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return Status::NotFound("table " + name);
  it->second.dist_segments = dist_segments;
  BumpCatalogVersion();
  return Status::OK();
}

Status Cluster::SetTableRebalancing(const std::string& name, bool rebalancing) {
  std::lock_guard<std::mutex> g(catalog_mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return Status::NotFound("table " + name);
  it->second.rebalancing = rebalancing;
  BumpCatalogVersion();
  return Status::OK();
}

Status Cluster::CreateTable(TableDef def) {
  // Serialized against AddSegments so the table lands on every segment exactly
  // once (a concurrent expansion would otherwise race the fanout below).
  std::lock_guard<std::mutex> expand(expand_mu_);
  {
    std::lock_guard<std::mutex> g(catalog_mu_);
    if (catalog_.count(def.name)) return Status::AlreadyExists("table " + def.name);
    def.id = next_table_id_++;
    // New tables span every serving segment; expansion then only needs to
    // migrate tables that predate it.
    if (def.dist_segments <= 0 || def.dist_segments > num_segments()) {
      def.dist_segments = num_segments();
    }
    catalog_[def.name] = def;
  }
  for (int i = 0; i < num_segments(); ++i) {
    Segment* seg = segment(i);
    TableDef seg_def = def;
    // External tables share one backing file; only segment 0 materializes it so
    // the data is neither written nor scanned N times. The same applies to
    // external leaf partitions.
    if (seg->index() != 0) {
      if (seg_def.storage == StorageKind::kExternal) seg_def.external_path = "";
      if (seg_def.partitions.has_value()) {
        for (auto& range : seg_def.partitions->ranges) {
          if (range.storage == StorageKind::kExternal) range.external_path = "";
        }
      }
    }
    GPHTAP_RETURN_IF_ERROR(seg->CreateTable(seg_def));
  }
  for (int i = 0; i < num_segments(); ++i) {
    MirrorSegment* m = mirror(i);
    if (m == nullptr) continue;
    TableDef mirror_def = def;
    if (m->primary_index() != 0 && mirror_def.storage == StorageKind::kExternal) {
      mirror_def.external_path = "";
    }
    GPHTAP_RETURN_IF_ERROR(m->CreateTable(mirror_def));
  }
  BumpCatalogVersion();
  return Status::OK();
}

Status Cluster::CreateIndex(const std::string& table, const std::string& column) {
  std::lock_guard<std::mutex> expand(expand_mu_);
  TableId id;
  int col;
  {
    std::lock_guard<std::mutex> g(catalog_mu_);
    auto it = catalog_.find(table);
    if (it == catalog_.end()) return Status::NotFound("table " + table);
    col = it->second.schema.FindColumn(column);
    if (col < 0) return Status::NotFound("column " + column);
    if (it->second.storage != StorageKind::kHeap || it->second.partitions.has_value()) {
      return Status::NotSupported("hash indexes require plain heap tables");
    }
    for (int existing : it->second.indexed_cols) {
      if (existing == col) return Status::AlreadyExists("index on " + column);
    }
    it->second.indexed_cols.push_back(col);
    id = it->second.id;
  }
  for (int i = 0; i < num_segments(); ++i) {
    auto* heap = dynamic_cast<HeapTable*>(segment(i)->GetTable(id));
    if (heap != nullptr) heap->AddIndex(col);
  }
  BumpCatalogVersion();
  return Status::OK();
}

Status Cluster::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> expand(expand_mu_);
  TableId id;
  {
    std::lock_guard<std::mutex> g(catalog_mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) return Status::NotFound("table " + name);
    id = it->second.id;
    catalog_.erase(it);
  }
  for (int i = 0; i < num_segments(); ++i) segment(i)->DropTable(id);
  for (int i = 0; i < num_segments(); ++i) {
    if (mirror(i) != nullptr) mirror(i)->DropTable(id);
  }
  BumpCatalogVersion();
  return Status::OK();
}

StatusOr<TableDef> Cluster::LookupTable(const std::string& name) const {
  {
    std::lock_guard<std::mutex> g(catalog_mu_);
    auto it = catalog_.find(name);
    if (it != catalog_.end()) return it->second;
  }
  // System views resolve after user tables (a user table may shadow them).
  const TableDef* view = FindSystemView(name);
  if (view != nullptr) return *view;
  return Status::NotFound("table " + name);
}

StatusOr<TableDef> Cluster::LookupTableById(TableId id) const {
  {
    std::lock_guard<std::mutex> g(catalog_mu_);
    for (const auto& [name, def] : catalog_) {
      if (def.id == id) return def;
    }
  }
  const TableDef* view = FindSystemViewById(id);
  if (view != nullptr) return *view;
  return Status::NotFound("table id " + std::to_string(id));
}

std::vector<TableDef> Cluster::ListTables() const {
  std::lock_guard<std::mutex> g(catalog_mu_);
  std::vector<TableDef> out;
  out.reserve(catalog_.size());
  for (const auto& [name, def] : catalog_) out.push_back(def);
  return out;
}

std::unique_ptr<Session> Cluster::Connect(const std::string& role) {
  return std::make_unique<Session>(this, role);
}

StatusOr<std::shared_ptr<FrontendSession>> Cluster::ConnectLogical(
    const std::string& role) {
  if (frontend_ == nullptr) {
    return Status::NotSupported("front door disabled (ClusterOptions::frontend)");
  }
  return frontend_->Connect(role);
}

void Cluster::CancelTxn(Gxid gxid, Status reason) {
  auto owner = dtm_.OwnerOf(gxid);
  if (owner != nullptr) owner->Cancel(std::move(reason));
  coordinator_locks_.WakeWaitersOf(gxid);
  for (int i = 0; i < num_segments(); ++i) segment(i)->locks().WakeWaitersOf(gxid);
  // Abort the query's open motion exchanges: a receiver parked in
  // Recv/RecvBatch on an idle sender has no lock wait to be woken from and
  // would otherwise only notice the cancel at its next poll chunk.
  std::vector<std::weak_ptr<MotionExchange>> exchanges;
  {
    std::lock_guard<std::mutex> g(exchanges_mu_);
    auto it = query_exchanges_.find(gxid);
    if (it != query_exchanges_.end()) exchanges = it->second;
  }
  for (auto& weak : exchanges) {
    if (auto exchange = weak.lock()) exchange->Abort();
  }
}

void Cluster::RegisterExchanges(Gxid gxid,
                                std::vector<std::weak_ptr<MotionExchange>> exchanges) {
  std::lock_guard<std::mutex> g(exchanges_mu_);
  auto& slot = query_exchanges_[gxid];
  slot.insert(slot.end(), exchanges.begin(), exchanges.end());
}

void Cluster::UnregisterExchanges(Gxid gxid) {
  std::lock_guard<std::mutex> g(exchanges_mu_);
  query_exchanges_.erase(gxid);
}

StatusOr<SegmentPin> Cluster::PinSegment(int index) {
  CircuitBreaker* b = breaker(index);
  if (b == nullptr) return segment(index)->Pin();
  const int64_t now = MonotonicMicros();
  GPHTAP_RETURN_IF_ERROR(b->Allow(now));
  auto pin = segment(index)->Pin();
  if (pin.ok()) {
    b->RecordSuccess();
  } else if (pin.status().code() == StatusCode::kUnavailable) {
    b->RecordFailure(now);
  }
  return pin;
}

std::vector<LocalWaitGraph> Cluster::CollectWaitGraphs() {
  const int n = num_segments();
  std::vector<LocalWaitGraph> graphs;
  graphs.reserve(static_cast<size_t>(n) + 1);
  graphs.push_back(coordinator_locks_.CollectWaitGraph());
  for (int i = 0; i < n; ++i) graphs.push_back(segment(i)->locks().CollectWaitGraph());
  return graphs;
}

Status Cluster::CatchUpMirrors(int64_t timeout_ms) {
  for (int i = 0; i < num_segments(); ++i) {
    if (mirror(i) == nullptr) continue;
    GPHTAP_RETURN_IF_ERROR(mirror(i)->CatchUp(timeout_ms));
  }
  return Status::OK();
}

namespace {

// Visible rows of a table under clog-only rules (valid when quiesced).
StatusOr<std::vector<std::string>> SnapshotRows(Table* table, const CommitLog* clog) {
  VisibilityContext ctx;
  ctx.clog = clog;
  std::vector<std::string> rows;
  GPHTAP_RETURN_IF_ERROR(table->Scan(ctx, [&](TupleId tid, const Row& row) {
    rows.push_back(std::to_string(tid) + ":" + RowToString(row));
    return true;
  }));
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace

Status Cluster::VerifyMirrorsConsistent() {
  GPHTAP_RETURN_IF_ERROR(CatchUpMirrors());
  for (int mi = 0; mi < num_segments(); ++mi) {
    MirrorSegment* m = mirror(mi);
    if (m == nullptr) continue;
    Segment* primary = segment(m->primary_index());
    for (const TableDef& def : ListTables()) {
      if (def.partitions.has_value()) continue;  // not mirrored
      Table* ptab = primary->GetTable(def.id);
      Table* mtab = m->GetTable(def.id);
      if (ptab == nullptr || mtab == nullptr) continue;
      if (def.storage == StorageKind::kExternal) continue;  // shared file
      GPHTAP_ASSIGN_OR_RETURN(auto primary_rows, SnapshotRows(ptab, &primary->clog()));
      GPHTAP_ASSIGN_OR_RETURN(auto mirror_rows, SnapshotRows(mtab, &m->clog()));
      if (primary_rows != mirror_rows) {
        return Status::Internal(
            "mirror divergence on segment " + std::to_string(m->primary_index()) +
            " table " + def.name + ": primary " + std::to_string(primary_rows.size()) +
            " rows vs mirror " + std::to_string(mirror_rows.size()));
      }
    }
  }
  return Status::OK();
}

uint64_t Cluster::TruncateXidMaps() {
  Gxid horizon = dtm_.OldestVisibleGxid();
  uint64_t removed = coordinator_dlog_.TruncateBelow(horizon);
  for (int i = 0; i < num_segments(); ++i) {
    removed += segment(i)->dlog().TruncateBelow(horizon);
  }
  return removed;
}

std::vector<TableDef> Cluster::DefsForSegment(int index) const {
  std::vector<TableDef> defs = ListTables();
  if (index != 0) {
    // Mirror of CreateTable(): only segment 0 materializes external files.
    for (TableDef& def : defs) {
      if (def.storage == StorageKind::kExternal) def.external_path = "";
      if (def.partitions.has_value()) {
        for (auto& range : def.partitions->ranges) {
          if (range.storage == StorageKind::kExternal) range.external_path = "";
        }
      }
    }
  }
  return defs;
}

Status Cluster::CrashSegment(int index) {
  if (index < 0 || index >= num_segments()) {
    return Status::InvalidArgument("no segment " + std::to_string(index));
  }
  return segment(index)->Crash();
}

Segment::InDoubtDecision Cluster::ResolveInDoubt(Gxid gxid) {
  if (HasDistributedCommitRecord(gxid)) return Segment::InDoubtDecision::kCommit;
  // Still running on the coordinator: phase two has not been decided yet, so
  // keep the prepared transaction; COMMIT PREPARED or ABORT will arrive.
  if (dtm_.IsRunning(gxid)) return Segment::InDoubtDecision::kKeepPrepared;
  return Segment::InDoubtDecision::kAbort;
}

Status Cluster::RecoverSegment(int index) {
  if (index < 0 || index >= num_segments()) {
    return Status::InvalidArgument("no segment " + std::to_string(index));
  }
  Status s = segment(index)->Recover(
      DefsForSegment(index), [this](Gxid gxid) { return ResolveInDoubt(gxid); },
      Segment::RecoverySource::kLocalWal);
  if (s.ok() && breaker(index) != nullptr) breaker(index)->Reset();
  return s;
}

Status Cluster::FailoverToMirror(int index) {
  if (index < 0 || index >= num_segments()) {
    return Status::InvalidArgument("no segment " + std::to_string(index));
  }
  std::lock_guard<std::mutex> failover_guard(failover_mu_);
  MirrorSegment* m = mirror(index);
  if (m == nullptr) return Status::NotSupported("segment has no mirror");
  if (m->promoted()) {
    return Status::NotSupported("mirror of segment " + std::to_string(index) +
                                " already promoted");
  }
  Segment* seg = segment(index);
  // Fence the primary so it stops producing while we promote.
  if (seg->up()) GPHTAP_RETURN_IF_ERROR(seg->Crash());
  // Drain the shipped stream into the mirror, then freeze it.
  GPHTAP_RETURN_IF_ERROR(m->CatchUp());
  m->Stop();
  m->MarkPromoted();
  // Rebuild the primary in place from the stream the mirror replayed. The
  // mirror's copy and the stream are byte-identical (same ChangeLog), so this
  // is "the mirror takes over" without moving table objects between nodes.
  Status s = seg->Recover(DefsForSegment(index),
                          [this](Gxid gxid) { return ResolveInDoubt(gxid); },
                          Segment::RecoverySource::kShippedStream);
  if (s.ok() && breaker(index) != nullptr) breaker(index)->Reset();
  return s;
}

ClusterHealth Cluster::Health() {
  const int n = num_segments();
  const std::vector<TableDef> defs = ListTables();
  ClusterHealth health;
  health.segments.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Segment* seg = segment(i);
    SegmentHealthInfo info;
    info.index = seg->index();
    info.up = seg->up();
    info.change_log_size = seg->change_log() != nullptr ? seg->change_log()->size() : 0;
    MirrorSegment* m = mirror(seg->index());
    if (m != nullptr) {
      info.has_mirror = true;
      info.mirror_promoted = m->promoted();
      info.mirror_applied = m->applied();
      info.mirror_health = m->health();
    }
    // AO bloat under clog-only rules: a row is dead once its inserter aborted
    // or a deleter committed (whether it is *reclaimable* additionally depends
    // on the snapshot horizon; this column reports bloat, not reclaimability).
    const CommitLog& clog = seg->clog();
    AoRowDeadFn dead = [&clog](LocalXid xmin, LocalXid xmax) {
      if (clog.GetState(xmin) == TxnState::kAborted) return true;
      return xmax != kInvalidLocalXid && clog.IsCommitted(xmax);
    };
    for (const TableDef& def : defs) {
      std::vector<AoGroupInfo> groups;
      if (auto* ao = dynamic_cast<AoRowTable*>(seg->GetTable(def.id))) {
        groups = ao->GroupInfos(dead);
      } else if (auto* aoc = dynamic_cast<AoColumnTable*>(seg->GetTable(def.id))) {
        groups = aoc->GroupInfos(dead);
      }
      for (const AoGroupInfo& group : groups) {
        info.ao_live_rows += group.live;
        info.ao_dead_rows += group.dead;
        if (group.freed) ++info.ao_reclaimed_groups;
      }
    }
    health.segments.push_back(std::move(info));
  }
  if (fts_) health.fts = fts_->stats();
  return health;
}

MetricsSnapshot Cluster::StatsSnapshot() {
  // Refresh level gauges that no subsystem maintains incrementally.
  metrics_.gauge("txn.running")->Set(static_cast<int64_t>(dtm_.NumRunning()));
  int64_t resident = 0;
  for (int i = 0; i < num_segments(); ++i) {
    resident += static_cast<int64_t>(segment(i)->pool().resident_pages());
  }
  metrics_.gauge("bufferpool.resident_pages")->Set(resident);
  return metrics_.TakeSnapshot();
}

std::string Cluster::StatsDump() { return StatsSnapshot().ToString(); }

void Cluster::CaptureHistoryTick() {
  metrics_history_->Capture(StatsSnapshot(), MonotonicMicros());
}

void Cluster::StatsHistoryLoop() {
  while (stats_history_running_.load(std::memory_order_relaxed)) {
    CaptureHistoryTick();
    // Chunked sleep so Stop is prompt (same pattern as the seal daemon).
    int64_t slept = 0;
    while (slept < options_.stats_history_period_us &&
           stats_history_running_.load(std::memory_order_relaxed)) {
      const int64_t chunk =
          std::min<int64_t>(options_.stats_history_period_us - slept, 1000);
      std::this_thread::sleep_for(std::chrono::microseconds(chunk));
      slept += chunk;
    }
  }
}

Status Cluster::DumpHistoryCsv(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f.is_open()) return Status::Internal("cannot open " + path);
  f << metrics_history_->ToCsv();
  f.close();
  if (!f.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace gphtap
