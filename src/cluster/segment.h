// One worker segment: an "enhanced PostgreSQL instance" (Section 3.1) with its
// own lock table, transaction manager, commit log, WAL, buffer cache, and the
// shard of every table's data.
//
// Segments can "crash" (Crash(): volatile state — running transactions, the
// lock table, table data — becomes untrustworthy and all service stops) and be
// recovered (Recover(): tables are rebuilt by replaying the change log, the
// commit log / xid map are rebuilt from the WAL, prepared-but-unresolved
// transactions are reinstated or resolved against the coordinator's distributed
// commit record). Sessions enter a segment through Pin(), which holds off
// recovery while a request is in flight and fails fast with a retryable error
// when the segment is down.
#ifndef GPHTAP_CLUSTER_SEGMENT_H_
#define GPHTAP_CLUSTER_SEGMENT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "lock/lock_manager.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "storage/table_factory.h"
#include "txn/clog.h"
#include "txn/distributed_log.h"
#include "txn/local_txn_manager.h"
#include "txn/wal.h"

namespace gphtap {

/// RAII service pin: while alive, the segment cannot enter recovery (shared
/// side of the service lock). Obtained via Segment::Pin(); movable only.
class SegmentPin {
 public:
  SegmentPin() = default;
  explicit SegmentPin(std::shared_mutex& mu) : lock_(mu) {}
  SegmentPin(SegmentPin&&) = default;
  SegmentPin& operator=(SegmentPin&&) = default;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

class Segment {
 public:
  struct Options {
    BufferPool::Options buffer_pool;
    int64_t fsync_cost_us = 0;
    LockManager::Options locks;
    bool enable_mirroring = false;  // emit a logical change stream (WAL shipping)
    bool enable_recovery = false;   // keep a change stream for crash recovery
    MetricsRegistry* metrics = nullptr;  // cluster-wide observability (optional)
  };

  /// What recovery should do with a prepared transaction whose outcome is not
  /// decided by this segment's own WAL.
  enum class InDoubtDecision { kCommit, kAbort, kKeepPrepared };
  using InDoubtResolver = std::function<InDoubtDecision(Gxid)>;

  /// Where Recover() reads the change stream from: the segment's own log
  /// (restart after a crash) or a mirror's shipped copy (failover promotion).
  enum class RecoverySource { kLocalWal, kShippedStream };

  Segment(int index, const Options& options)
      : index_(index),
        wal_(options.fsync_cost_us),
        pool_(options.buffer_pool),
        locks_(index, options.locks),
        txns_(&clog_, &dlog_, &wal_) {
    if (options.enable_mirroring || options.enable_recovery) {
      change_log_ = std::make_unique<ChangeLog>();
      txns_.set_change_log(change_log_.get());
    }
    if (options.metrics != nullptr) {
      wal_.set_metrics(options.metrics);
      pool_.set_metrics(options.metrics);
      locks_.set_metrics(options.metrics);
    }
  }

  int index() const { return index_; }

  CommitLog& clog() { return clog_; }
  DistributedLog& dlog() { return dlog_; }
  WalStub& wal() { return wal_; }
  BufferPool& pool() { return pool_; }
  LockManager& locks() { return locks_; }
  LocalTxnManager& txns() { return txns_; }
  /// The replication stream, or null when mirroring and recovery are disabled.
  ChangeLog* change_log() { return change_log_.get(); }

  bool up() const { return up_.load(std::memory_order_acquire); }

  /// Enters the segment for one request. Fails with kUnavailable (retryable)
  /// when the segment is down. Pins must not nest (a second shared lock on the
  /// same thread can deadlock behind a queued recovery writer) — pin only at
  /// outermost entry points.
  StatusOr<SegmentPin> Pin() {
    SegmentPin pin(service_mu_);
    if (!up()) {
      return Status::Unavailable("segment " + std::to_string(index_) +
                                 " is down (retry after recovery)");
    }
    return pin;
  }

  /// Simulated crash: service stops immediately and every blocked lock waiter
  /// is cancelled with a retryable error. Non-blocking and idempotent; the
  /// actual teardown of volatile state is deferred to Recover().
  Status Crash();

  /// Rebuilds the segment from durable state. `defs` recreates the schema,
  /// the change stream (own log or a mirror's shipped copy, per `source`)
  /// replays the data, the WAL replays transaction states, and `resolver`
  /// decides in-doubt prepared transactions (normally backed by the
  /// coordinator's distributed commit record). Blocks until in-flight pinned
  /// requests drain. Requires the segment to be down and a change log attached.
  Status Recover(const std::vector<TableDef>& defs, const InDoubtResolver& resolver,
                 RecoverySource source);

  Status CreateTable(const TableDef& def) {
    if (!up()) return Status::Unavailable("segment " + std::to_string(index_) + " is down");
    std::unique_lock<std::shared_mutex> g(tables_mu_);
    if (tables_.count(def.id)) return Status::AlreadyExists("table id in segment");
    auto table = gphtap::CreateTable(def, &clog_, &pool_);
    // Partitioned roots are not mirrored (leaf routing is not in the stream).
    if (change_log_ != nullptr && !def.partitions.has_value()) {
      table->SetChangeLog(change_log_.get());
    }
    tables_[def.id] = std::move(table);
    return Status::OK();
  }

  Status DropTable(TableId id) {
    if (!up()) return Status::Unavailable("segment " + std::to_string(index_) + " is down");
    std::unique_lock<std::shared_mutex> g(tables_mu_);
    if (tables_.erase(id) == 0) return Status::NotFound("table id in segment");
    return Status::OK();
  }

  Table* GetTable(TableId id) {
    std::shared_lock<std::shared_mutex> g(tables_mu_);
    auto it = tables_.find(id);
    return it == tables_.end() ? nullptr : it->second.get();
  }

 private:
  const int index_;
  CommitLog clog_;
  DistributedLog dlog_;
  WalStub wal_;
  BufferPool pool_;
  LockManager locks_;
  LocalTxnManager txns_;
  std::unique_ptr<ChangeLog> change_log_;

  std::atomic<bool> up_{true};
  // Serializes the Crash()/Recover() state transitions themselves: without it a
  // fast Recover() racing a still-running Crash() could have its fresh lock
  // table poisoned by the tail of the crash. Crash() only try_locks (it must
  // never block); Recover() holds it for the whole rebuild.
  std::mutex state_mu_;
  // Shared side: one in-flight request (SegmentPin). Exclusive side: Recover().
  std::shared_mutex service_mu_;

  std::shared_mutex tables_mu_;
  std::unordered_map<TableId, std::unique_ptr<Table>> tables_;
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_SEGMENT_H_
