// One worker segment: an "enhanced PostgreSQL instance" (Section 3.1) with its
// own lock table, transaction manager, commit log, WAL, buffer cache, and the
// shard of every table's data.
#ifndef GPHTAP_CLUSTER_SEGMENT_H_
#define GPHTAP_CLUSTER_SEGMENT_H_

#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "lock/lock_manager.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "storage/table_factory.h"
#include "txn/clog.h"
#include "txn/distributed_log.h"
#include "txn/local_txn_manager.h"
#include "txn/wal.h"

namespace gphtap {

class Segment {
 public:
  struct Options {
    BufferPool::Options buffer_pool;
    int64_t fsync_cost_us = 0;
    LockManager::Options locks;
    bool enable_mirroring = false;  // emit a logical change stream (WAL shipping)
  };

  Segment(int index, const Options& options)
      : index_(index),
        wal_(options.fsync_cost_us),
        pool_(options.buffer_pool),
        locks_(index, options.locks),
        txns_(&clog_, &dlog_, &wal_) {
    if (options.enable_mirroring) {
      change_log_ = std::make_unique<ChangeLog>();
      txns_.set_change_log(change_log_.get());
    }
  }

  int index() const { return index_; }

  CommitLog& clog() { return clog_; }
  DistributedLog& dlog() { return dlog_; }
  WalStub& wal() { return wal_; }
  BufferPool& pool() { return pool_; }
  LockManager& locks() { return locks_; }
  LocalTxnManager& txns() { return txns_; }
  /// The replication stream, or null when mirroring is disabled.
  ChangeLog* change_log() { return change_log_.get(); }

  Status CreateTable(const TableDef& def) {
    std::unique_lock<std::shared_mutex> g(tables_mu_);
    if (tables_.count(def.id)) return Status::AlreadyExists("table id in segment");
    auto table = gphtap::CreateTable(def, &clog_, &pool_);
    // Partitioned roots are not mirrored (leaf routing is not in the stream).
    if (change_log_ != nullptr && !def.partitions.has_value()) {
      table->SetChangeLog(change_log_.get());
    }
    tables_[def.id] = std::move(table);
    return Status::OK();
  }

  Status DropTable(TableId id) {
    std::unique_lock<std::shared_mutex> g(tables_mu_);
    if (tables_.erase(id) == 0) return Status::NotFound("table id in segment");
    return Status::OK();
  }

  Table* GetTable(TableId id) {
    std::shared_lock<std::shared_mutex> g(tables_mu_);
    auto it = tables_.find(id);
    return it == tables_.end() ? nullptr : it->second.get();
  }

 private:
  const int index_;
  CommitLog clog_;
  DistributedLog dlog_;
  WalStub wal_;
  BufferPool pool_;
  LockManager locks_;
  LocalTxnManager txns_;
  std::unique_ptr<ChangeLog> change_log_;

  std::shared_mutex tables_mu_;
  std::unordered_map<TableId, std::unique_ptr<Table>> tables_;
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_SEGMENT_H_
