// Live session directory backing gp_stat_activity: every connected Session
// registers a SessionInfo whose fields its own thread updates as statements
// start and finish, and whose SessionWaitState the ambient wait-event
// machinery (common/wait_event.h) publishes blocking points into. Readers
// (the system-view scan) only ever snapshot; nothing here blocks a session.
#ifndef GPHTAP_CLUSTER_SESSION_REGISTRY_H_
#define GPHTAP_CLUSTER_SESSION_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/wait_event.h"

namespace gphtap {

/// Coarse session activity state (gp_stat_activity.state).
enum class SessionState : int {
  kIdle = 0,
  kActive = 1,
  kIdleInTransaction = 2,
  // A front-door logical session whose statement sits in the dispatch queue
  // waiting for a pool worker (wait_event frontend:dispatch while here).
  kQueued = 3,
};

const char* SessionStateName(SessionState s);

/// One connected session's published state. The owning session writes; view
/// scans read. Scalars are atomics; the strings sit behind a private mutex so
/// a reader never sees a half-replaced std::string.
struct SessionInfo {
  int64_t id = 0;
  SessionWaitState wait;
  std::atomic<uint64_t> gxid{0};  // current distributed xid, 0 = none
  std::atomic<int> state{static_cast<int>(SessionState::kIdle)};
  // Resilience state (gp_stat_activity): the running statement's absolute
  // deadline (0 = none) and how many times it was transparently retried.
  std::atomic<int64_t> deadline_us{0};
  std::atomic<int64_t> retries{0};
  // Front-door dispatch-queue depth observed when this session's statement
  // was enqueued (0 when the session is not queued). gp_stat_activity shows
  // it so a connection storm is diagnosable from the view alone.
  std::atomic<int64_t> queue_depth{0};

  void SetStrings(const std::string* role, const std::string* group,
                  const std::string* query) {
    std::lock_guard<std::mutex> g(mu_);
    if (role != nullptr) role_ = *role;
    if (group != nullptr) group_ = *group;
    if (query != nullptr) query_ = *query;
  }
  std::string role() const {
    std::lock_guard<std::mutex> g(mu_);
    return role_;
  }
  std::string group() const {
    std::lock_guard<std::mutex> g(mu_);
    return group_;
  }
  std::string query() const {
    std::lock_guard<std::mutex> g(mu_);
    return query_;
  }

 private:
  mutable std::mutex mu_;
  std::string role_;
  std::string group_;
  std::string query_;  // current statement, or the last one when idle
};

/// Registry of live sessions; Cluster owns one. Keyed by id so register /
/// unregister stay O(log n) — the front door churns tens of thousands of
/// logical sessions, and a linear unregister scan would go quadratic there.
class SessionRegistry {
 public:
  std::shared_ptr<SessionInfo> Register(const std::string& role,
                                        const std::string& group);
  void Unregister(int64_t id);

  /// Shared handles to every live session, ordered by session id.
  std::vector<std::shared_ptr<SessionInfo>> Snapshot() const;

  /// Number of live sessions.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  int64_t next_id_ = 0;
  std::map<int64_t, std::shared_ptr<SessionInfo>> sessions_;
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_SESSION_REGISTRY_H_
