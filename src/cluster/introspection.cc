// Cluster observability surfaces: system-view row production (the execution
// half of catalog/system_views.h), the retained-trace ring, and Chrome
// trace_event export. Everything here reads live state through snapshot APIs;
// none of it blocks a running session.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "catalog/system_views.h"
#include "cluster/cluster.h"
#include "common/clock.h"

namespace gphtap {

namespace {

Datum Str(const char* s) { return Datum(std::string(s)); }
Datum Int(int64_t v) { return Datum(v); }
Datum Uint(uint64_t v) { return Datum(static_cast<int64_t>(v)); }

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void Cluster::RetainTrace(std::shared_ptr<Trace> trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> g(traces_mu_);
  retained_traces_.push_back(std::move(trace));
  while (retained_traces_.size() > kRetainedTraceCapacity) {
    retained_traces_.pop_front();
  }
}

std::vector<std::shared_ptr<Trace>> Cluster::RetainedTraces() const {
  std::lock_guard<std::mutex> g(traces_mu_);
  return {retained_traces_.begin(), retained_traces_.end()};
}

std::string Cluster::ChromeTraceJson() const {
  // Chrome trace_event "X" (complete) events: one per span, pid = the query's
  // trace id, tid = the node (segment index; -1 = coordinator). Perfetto and
  // about:tracing then lay each query out as its own process row.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& trace : RetainedTraces()) {
    for (const TraceSpan& span : trace->Spans()) {
      int64_t end_us = span.end_us == 0 ? span.start_us : span.end_us;
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\":\"";
      AppendJsonEscaped(&out, span.name);
      out += "\",\"cat\":\"query\",\"ph\":\"X\"";
      out += ",\"ts\":" + std::to_string(span.start_us);
      out += ",\"dur\":" + std::to_string(std::max<int64_t>(0, end_us - span.start_us));
      out += ",\"pid\":" + std::to_string(trace->trace_id());
      out += ",\"tid\":" + std::to_string(span.node);
      out += ",\"args\":{\"span_id\":" + std::to_string(span.span_id);
      out += ",\"parent_id\":" + std::to_string(span.parent_id);
      out += ",\"rows\":" + std::to_string(span.rows);
      out += std::string(",\"aborted\":") + (span.aborted ? "true" : "false");
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

Status Cluster::DumpChromeTrace(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f.is_open()) return Status::Internal("cannot open " + path);
  f << ChromeTraceJson();
  f.close();
  if (!f) return Status::Internal("short write to " + path);
  return Status::OK();
}

StatusOr<std::vector<Row>> Cluster::SystemViewRows(TableId view_id) {
  std::vector<Row> rows;
  switch (static_cast<SystemViewId>(view_id)) {
    case SystemViewId::kStatActivity: {
      int64_t now = MonotonicMicros();
      for (const auto& s : sessions_.Snapshot()) {
        int ev = s->wait.event.load(std::memory_order_acquire);
        int64_t start = s->wait.start_us.load(std::memory_order_acquire);
        std::string cls, name;
        int64_t wait_us = 0;
        if (ev != 0) {
          WaitEvent we = static_cast<WaitEvent>(ev);
          cls = WaitEventClassName(ClassOfEvent(we));
          name = WaitEventName(we);
          wait_us = std::max<int64_t>(0, now - start);
        }
        int64_t deadline = s->deadline_us.load(std::memory_order_acquire);
        int64_t deadline_remaining = deadline == 0 ? -1 : deadline - now;
        rows.push_back(Row{
            Int(s->id), Datum(s->role()), Datum(s->group()),
            Uint(s->gxid.load(std::memory_order_acquire)),
            Str(SessionStateName(
                static_cast<SessionState>(s->state.load(std::memory_order_acquire)))),
            Datum(std::move(cls)), Datum(std::move(name)), Int(wait_us),
            Datum(s->query()), Int(deadline_remaining),
            Int(s->retries.load(std::memory_order_acquire)),
            Int(s->queue_depth.load(std::memory_order_acquire))});
      }
      return rows;
    }
    case SystemViewId::kLocks: {
      auto add = [&](const std::vector<LockManager::LockInfo>& infos) {
        for (const auto& li : infos) {
          rows.push_back(Row{Int(li.node), Str(LockObjectTypeName(li.tag.type)),
                             Int(li.tag.rel), Uint(li.tag.obj),
                             Str(LockModeName(li.mode)), Uint(li.gxid),
                             Int(li.granted ? 1 : 0)});
        }
      };
      add(coordinator_locks_.SnapshotLocks());
      const int n = num_segments();
      for (int i = 0; i < n; ++i) {
        add(segments_[static_cast<size_t>(i)]->locks().SnapshotLocks());
      }
      return rows;
    }
    case SystemViewId::kResgroupStatus: {
      for (const auto& group : resgroups_.ListGroups()) {
        ResourceGroup::OverloadStats os = group->overload_stats();
        rows.push_back(Row{Datum(group->name()), Int(group->config().concurrency),
                           Int(group->active()), Datum(group->config().cpu_rate_limit),
                           Int(group->config().memory_limit_mb), Int(os.queued_now),
                           Uint(os.queued_total), Uint(os.shed),
                           Uint(os.admission_timeouts)});
      }
      return rows;
    }
    case SystemViewId::kSegmentStatus: {
      for (const SegmentHealthInfo& info : Health().segments) {
        rows.push_back(Row{Int(info.index), Int(info.up ? 1 : 0),
                           Int(info.has_mirror ? 1 : 0),
                           Int(info.mirror_promoted ? 1 : 0),
                           Uint(info.mirror_applied), Uint(info.change_log_size),
                           Uint(info.ao_live_rows), Uint(info.ao_dead_rows),
                           Uint(info.ao_reclaimed_groups)});
      }
      return rows;
    }
    case SystemViewId::kWaitEvents: {
      for (const auto& e : wait_events_.Snapshot()) {
        rows.push_back(Row{Str(WaitEventClassName(ClassOfEvent(e.event))),
                           Str(WaitEventName(e.event)), Int(e.node), Datum(e.group),
                           Uint(e.count), Int(e.total_us), Int(e.max_us),
                           Int(e.histogram.Percentile(95))});
      }
      return rows;
    }
    case SystemViewId::kDistDeadlocks: {
      if (gdd_ == nullptr) return rows;
      for (const auto& rec : gdd_->DeadlockHistory()) {
        for (const auto& edge : rec.edges) {
          rows.push_back(Row{Uint(rec.seq), Int(rec.detected_at_us), Uint(rec.victim),
                             Uint(edge.waiter), Uint(edge.holder), Int(edge.node),
                             Str(edge.dotted ? "dotted" : "solid"),
                             Int(edge.on_cycle ? 1 : 0), Int(rec.iterations),
                             Datum(rec.reason)});
        }
      }
      return rows;
    }
    case SystemViewId::kDeltaStatus: {
      const int n = num_segments();
      for (int i = 0; i < n; ++i) {
        DeltaIndex* di = delta_index(i);
        Segment* seg = segment(i);
        if (di == nullptr || seg == nullptr) continue;
        ChangeLog* log = seg->change_log();
        const int64_t log_size =
            log == nullptr ? 0 : static_cast<int64_t>(log->size());
        const int64_t applied = static_cast<int64_t>(di->applied());
        const int64_t lag = std::max<int64_t>(0, log_size - applied);
        for (const DeltaIndex::TableStatus& ts : di->TableStatuses()) {
          rows.push_back(Row{Int(i), Datum(ts.name), Int(log_size), Int(applied),
                             Int(lag), Uint(ts.stats.open_rows),
                             Uint(ts.stats.sealed_groups), Uint(ts.stats.sealed_rows),
                             Uint(ts.stats.freed_groups), Uint(ts.stats.deletes),
                             Uint(ts.stats.pending_frees)});
        }
      }
      return rows;
    }
    case SystemViewId::kStatStatements: {
      for (const auto& e : statement_stats_.Snapshot()) {
        std::string top_wait;
        if (e.top_wait != WaitEvent::kNone) {
          top_wait = std::string(WaitEventClassName(ClassOfEvent(e.top_wait))) +
                     ":" + WaitEventName(e.top_wait);
        }
        rows.push_back(Row{Datum(e.fingerprint), Uint(e.calls), Uint(e.rows),
                           Uint(e.errors), Uint(e.timeouts), Uint(e.retries),
                           Uint(e.plan_cache_hits), Int(e.total_us), Int(e.min_us),
                           Int(e.max_us), Int(e.p95_us), Int(e.gang_p95_us),
                           Uint(e.vec_batches), Uint(e.vec_fallbacks),
                           Uint(e.exec_cpu_ns), Uint(e.net_bytes),
                           Uint(e.buffer_hits), Uint(e.buffer_misses),
                           Datum(std::move(top_wait)), Int(e.top_wait_us)});
      }
      return rows;
    }
    case SystemViewId::kStatHistory: {
      for (const MetricsHistory::Row& r : metrics_history_->Rows()) {
        rows.push_back(Row{Int(r.tick), Int(r.at_us), Datum(r.metric),
                           Int(r.value), Int(r.delta)});
      }
      return rows;
    }
    case SystemViewId::kStatProgress: {
      for (const auto& s : progress_.SnapshotAll()) {
        rows.push_back(Row{Int(s.op_id), Str(ProgressOpName(s.op)),
                           Datum(s.target), Int(s.node), Datum(s.phase),
                           Int(s.units_done), Int(s.units_total),
                           Int(s.elapsed_us), Int(s.finished ? 1 : 0)});
      }
      return rows;
    }
    case SystemViewId::kMetrics: {
      MetricsSnapshot snap = StatsSnapshot();
      for (const auto& [name, value] : snap.counters) {
        rows.push_back(Row{Datum(name), Str("counter"), Uint(value)});
      }
      for (const auto& [name, value] : snap.gauges) {
        rows.push_back(Row{Datum(name), Str("gauge"), Int(value)});
      }
      return rows;
    }
  }
  return Status::NotFound("no system view with id " + std::to_string(view_id));
}

}  // namespace gphtap
