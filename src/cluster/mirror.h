// Mirror segments (Section 3.1): each primary ships its logical change stream
// ("WAL") to a mirror that replays it on the fly on its own replica of the
// data. Mirrors do not participate in computing; they exist so that this
// repository models the paper's high-availability substrate and so tests can
// verify that replay reproduces the primary bit-for-bit.
//
// Partitioned roots are not mirrored (see DESIGN.md out-of-scope notes).
#ifndef GPHTAP_CLUSTER_MIRROR_H_
#define GPHTAP_CLUSTER_MIRROR_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <unordered_map>

#include "common/fault_injector.h"
#include "storage/change_log.h"
#include "storage/heap_table.h"
#include "storage/table_factory.h"
#include "txn/clog.h"

namespace gphtap {

class MirrorSegment {
 public:
  explicit MirrorSegment(int primary_index) : primary_index_(primary_index) {}
  ~MirrorSegment() { Stop(); }

  MirrorSegment(const MirrorSegment&) = delete;
  MirrorSegment& operator=(const MirrorSegment&) = delete;

  int primary_index() const { return primary_index_; }

  /// Mirrors hold the same tables as their primary (created empty; data
  /// arrives through replay).
  Status CreateTable(const TableDef& def);
  Status DropTable(TableId id);
  Table* GetTable(TableId id);
  CommitLog& clog() { return clog_; }

  /// Starts continuous replay from the primary's stream.
  void Start(ChangeLog* source);
  void Stop();

  /// Blocks until everything currently in the source stream has been applied.
  Status CatchUp(int64_t timeout_ms = 5000);

  uint64_t applied() const { return applied_.load(std::memory_order_acquire); }
  /// Replay errors are sticky; a healthy mirror reports OK.
  Status health() const;

  /// Attaches the cluster's fault injector; the "mirror.replay_stall" point
  /// (scoped by primary index) pauses replay to simulate a lagging mirror.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Failover bookkeeping: once promoted, the mirror's stream has been used to
  /// rebuild the primary in place and this replica must not be promoted again.
  void MarkPromoted() { promoted_.store(true, std::memory_order_release); }
  bool promoted() const { return promoted_.load(std::memory_order_acquire); }

 private:
  void ReplayLoop();
  Status Apply(const ChangeRecord& record);

  const int primary_index_;
  CommitLog clog_;

  std::shared_mutex tables_mu_;
  std::unordered_map<TableId, std::unique_ptr<Table>> tables_;

  ChangeLog* source_ = nullptr;
  FaultInjector* faults_ = nullptr;
  std::thread replayer_;
  std::atomic<bool> running_{false};
  std::atomic<bool> promoted_{false};
  std::atomic<uint64_t> applied_{0};
  mutable std::mutex err_mu_;
  Status error_;
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_MIRROR_H_
