#include "cluster/circuit_breaker.h"

namespace gphtap {

Status CircuitBreaker::Allow(int64_t now_us) {
  std::lock_guard<std::mutex> g(mu_);
  switch (state_) {
    case State::kClosed:
      return Status::OK();
    case State::kOpen:
      if (now_us >= open_until_us_) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;  // this caller is the probe
        return Status::OK();
      }
      return Status::Unavailable("circuit breaker open (segment suspected down)");
    case State::kHalfOpen:
      // One probe at a time; everyone else keeps failing fast until it reports.
      if (probe_in_flight_) {
        return Status::Unavailable("circuit breaker half-open (probe in flight)");
      }
      probe_in_flight_ = true;
      return Status::OK();
  }
  return Status::OK();
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> g(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure(int64_t now_us) {
  std::lock_guard<std::mutex> g(mu_);
  if (state_ == State::kHalfOpen) {
    // Probe failed: back to open for another cooldown.
    state_ = State::kOpen;
    open_until_us_ = now_us + opts_.cooldown_us;
    probe_in_flight_ = false;
    return;
  }
  if (state_ == State::kOpen) return;  // already tripped
  if (++consecutive_failures_ >= opts_.failure_threshold) {
    state_ = State::kOpen;
    open_until_us_ = now_us + opts_.cooldown_us;
    trips_.fetch_add(1, std::memory_order_relaxed);
    if (m_trips_ != nullptr) m_trips_->Add(1);
  }
}

void CircuitBreaker::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  open_until_us_ = 0;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> g(mu_);
  return state_;
}

}  // namespace gphtap
